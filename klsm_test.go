package klsm

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/xrand"
)

func TestPublicAPIQuickstart(t *testing.T) {
	q := New[string]()
	h := q.NewHandle()
	h.Insert(3, "three")
	h.Insert(1, "one")
	h.Insert(2, "two")
	if q.Size() != 3 {
		t.Fatalf("Size = %d", q.Size())
	}
	k, v, ok := h.TryDeleteMin()
	if !ok || k != 1 || v != "one" {
		t.Fatalf("TryDeleteMin = (%d, %q, %v)", k, v, ok)
	}
}

func TestOptionsCompose(t *testing.T) {
	q := New[int](WithRelaxation(16), WithoutLocalOrdering())
	if q.K() != 16 {
		t.Fatalf("K = %d", q.K())
	}
	q.NewHandle()
	q.NewHandle()
	if q.Rho() != 32 {
		t.Fatalf("Rho = %d", q.Rho())
	}
}

func TestNegativeKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative k did not panic")
		}
	}()
	New[int](WithRelaxation(-1))
}

func TestDistributedOnlyOption(t *testing.T) {
	q := New[int](WithDistributedOnly())
	h := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(100-i, 0)
	}
	var got []uint64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 100 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("DLSM drain incorrect: %d items", len(got))
	}
}

func TestSharedOnlyOption(t *testing.T) {
	q := New[int](WithSharedOnly(), WithRelaxation(0))
	h := q.NewHandle()
	h.Insert(2, 0)
	h.Insert(1, 0)
	if k, _, ok := h.TryDeleteMin(); !ok || k != 1 {
		t.Fatalf("got %d (%v), want 1", k, ok)
	}
}

func TestPeekMin(t *testing.T) {
	q := New[int](WithRelaxation(0))
	h := q.NewHandle()
	h.Insert(7, 70)
	k, v, ok := h.PeekMin()
	if !ok || k != 7 || v != 70 {
		t.Fatalf("PeekMin = (%d,%d,%v)", k, v, ok)
	}
	if q.Size() != 1 {
		t.Fatal("PeekMin removed the item")
	}
}

func TestNewWithDrop(t *testing.T) {
	stale := func(key uint64, _ int) bool { return key >= 1000 }
	q := NewWithDrop(stale, WithRelaxation(2))
	h := q.NewHandle()
	for i := uint64(0); i < 20; i++ {
		h.Insert(i, 0)
		h.Insert(1000+i, 0)
	}
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		if k >= 1000 {
			t.Fatalf("stale key %d returned", k)
		}
	}
}

func TestMeldPublic(t *testing.T) {
	a, b := New[int](), New[int]()
	ha, hb := a.NewHandle(), b.NewHandle()
	ha.Insert(1, 0)
	hb.Insert(2, 0)
	ha.Meld(b)
	ha.Meld(nil) // no-op
	count := 0
	for {
		if _, _, ok := ha.TryDeleteMin(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("drained %d after meld, want 2", count)
	}
}

// TestEndToEndConcurrent is the public-API version of the conservation test.
func TestEndToEndConcurrent(t *testing.T) {
	const workers = 8
	n := 3000
	if testing.Short() {
		n = 500
	}
	q := New[int](WithRelaxation(256))
	var wg sync.WaitGroup
	var deleted [workers][]uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			src := xrand.NewSeeded(uint64(id))
			for i := 0; i < n; i++ {
				h.Insert(uint64(id*n+i), id)
				if src.Intn(3) == 0 {
					if k, _, ok := h.TryDeleteMin(); ok {
						deleted[id] = append(deleted[id], k)
					}
				}
			}
			for {
				k, _, ok := h.TryDeleteMin()
				if !ok {
					return
				}
				deleted[id] = append(deleted[id], k)
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	total := 0
	for _, keys := range deleted {
		total += len(keys)
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("key %d deleted twice", k)
			}
			seen[k] = true
		}
	}
	if total != workers*n {
		t.Fatalf("deleted %d of %d inserted", total, workers*n)
	}
}
