package server

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement pins the placement contract persistence
// depends on: the ring is a pure function of (shards, vnodes), so a topic
// maps to the same shard in every process and across restarts.
func TestRingDeterministicPlacement(t *testing.T) {
	a := newRing(4, 64)
	b := newRing(4, 64)
	for i := 0; i < 1000; i++ {
		topic := fmt.Sprintf("topic-%d", i)
		if sa, sb := a.lookup(topic), b.lookup(topic); sa != sb {
			t.Fatalf("topic %q: ring built twice disagrees (%d vs %d)", topic, sa, sb)
		}
	}
}

func TestRingSingleShard(t *testing.T) {
	r := newRing(1, 0)
	for i := 0; i < 100; i++ {
		if s := r.lookup(fmt.Sprintf("t%d", i)); s != 0 {
			t.Fatalf("single-shard ring placed %q on shard %d", fmt.Sprintf("t%d", i), s)
		}
	}
}

// TestRingBalance sanity-checks the vnode spread: with the default 64
// vnodes per shard no shard should own a vanishing share of a large topic
// population. The threshold is loose — this guards against a broken hash
// or sort, not statistical perfection.
func TestRingBalance(t *testing.T) {
	const shards, topicsN = 4, 10_000
	r := newRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < topicsN; i++ {
		s := r.lookup(fmt.Sprintf("topic-%d-%d", i, i*7919))
		if s < 0 || s >= shards {
			t.Fatalf("lookup returned out-of-range shard %d", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < topicsN/shards/4 {
			t.Errorf("shard %d owns only %d of %d topics (degenerate spread %v)", s, c, topicsN, counts)
		}
	}
}
