package server_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"klsm"
	"klsm/internal/loadgen"
	"klsm/internal/server"
	"klsm/internal/walfault"
)

// failFS wraps a walfault.FS so the test can deterministically start failing
// every fsync at a chosen moment — after the server opened cleanly — instead
// of relying on probabilistic injection.
type failFS struct {
	walfault.FS
	armed atomic.Bool
}

func (f *failFS) Create(name string) (walfault.File, error) {
	h, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: h, fs: f}, nil
}

func (f *failFS) Append(name string) (walfault.File, error) {
	h, err := f.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: h, fs: f}, nil
}

type failFile struct {
	walfault.File
	fs *failFS
}

func (h *failFile) Sync() error {
	if h.fs.armed.Load() {
		return walfault.ErrSyncFault
	}
	return h.File.Sync()
}

func shutdownServerIgnoringError(srv *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), server.ShutdownTimeout)
	defer cancel()
	srv.Shutdown(ctx)
}

// TestEnqueueAccountingUnderSyncFailure is the regression test for the
// flusher's conservation bug: items a flush round published via InsertBatch
// were not counted in the shard's enqueued total when the round's Sync
// failed, so every sync-failed batch leaked out of the /statsz identity
// enqueued == dequeued + size even though the items sat in the queue (and
// would be dequeued and counted on that side). The fix counts at
// publication and reports the sync failure separately (sync_fails).
func TestEnqueueAccountingUnderSyncFailure(t *testing.T) {
	fs := &failFS{FS: walfault.NewMemFS(walfault.Faults{})}
	srv, cli := newTestServer(t, server.Config{
		Shards: 1,
		FS:     func(int) walfault.FS { return fs },
		QueueOptions: []klsm.Option{
			klsm.WithRelaxation(64),
			klsm.WithSyncInterval(time.Millisecond),
		},
	})
	defer func() {
		// Shutdown reports the WAL's sticky injected error; that is the
		// expected terminal state here, not a test failure.
		shutdownServerIgnoringError(srv)
	}()

	batch := func(base uint64, n int) []loadgen.Item {
		items := make([]loadgen.Item, n)
		for i := range items {
			items[i] = loadgen.Item{Key: base + uint64(i), Value: "v"}
		}
		return items
	}

	const perBatch = 10
	var sent int64
	for i := 0; i < 5; i++ {
		if err := cli.Enqueue("t", batch(uint64(i*perBatch), perBatch)); err != nil {
			t.Fatalf("enqueue before fault: %v", err)
		}
		sent += perBatch
	}

	fs.armed.Store(true)
	var failed int
	for i := 5; i < 15; i++ {
		err := cli.Enqueue("t", batch(uint64(i*perBatch), perBatch))
		if err != nil {
			failed++
		}
		// Failed or not, the batch reached the flusher and was published:
		// enqueue only errors after InsertBatch, via the covering Sync.
		sent += perBatch
	}
	if failed == 0 {
		t.Fatal("no enqueue failed with every fsync failing — fault injection did not reach the WAL")
	}

	st, err := cli.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Enqueued != sent {
		t.Errorf("enqueued = %d, want %d: sync-failed batches were published but not counted", st.Enqueued, sent)
	}
	if got := int64(st.Size) + st.Dequeued; st.Enqueued != got {
		t.Errorf("conservation broken: enqueued=%d, dequeued+size=%d", st.Enqueued, got)
	}
	var syncFails int64
	for _, sh := range st.Shards {
		syncFails += sh.SyncFails
	}
	if syncFails == 0 {
		t.Errorf("sync_fails = 0, want > 0: failed rounds must be reported separately")
	}
}
