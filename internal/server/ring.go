// Package server is the serving layer of the k-LSM: an HTTP service
// fronting N queue shards. Topics are placed on shards by a consistent-hash
// ring (ring.go), an in-process Router exposes the sharded queue to
// embedders and tests without the network (router.go), and the HTTP surface
// (server.go) adds per-shard group-commit batching for enqueues, streaming
// drains, backpressure, per-shard counters at /statsz, and a graceful
// shutdown that flushes and closes every shard.
//
// Sharding multiplies relaxation: with S shards of T handles each at
// relaxation k, a key returned by the router's global delete-min is among
// the S·T·k+1 smallest live keys (each shard hides at most T·k keys below
// its peek; see Router.DeleteMinGlobal for the argument and its caveat).
// The sharded rank-bound suite in the root package asserts this envelope
// with the ostat machinery.
package server

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the ring's virtual-node count per shard: enough that the
// largest shard owns within a few percent of the mean topic share, small
// enough that building the ring is negligible.
const defaultVNodes = 64

// ring is a consistent-hash ring mapping topic strings to shard indices.
// Placement depends only on (shard count, vnodes, topic), never on
// insertion order or clock, so a topic maps to the same shard across
// restarts — which persistence requires: a shard's WAL must replay into
// the shard that still owns the topic.
//
// Consistent hashing (rather than hash-mod-S) keeps the door open for
// resharding: growing from S to S+1 shards moves only the topics whose
// ring arcs the new shard's vnodes capture, ~1/(S+1) of them, instead of
// reshuffling nearly everything.
type ring struct {
	// points holds the vnode hashes, sorted; owner[i] is the shard owning
	// points[i].
	points []uint64
	owner  []int
}

// newRing builds the ring for shards × vnodes virtual nodes.
func newRing(shards, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	type pt struct {
		h     uint64
		shard int
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	r := &ring{points: make([]uint64, len(pts)), owner: make([]int, len(pts))}
	for i, p := range pts {
		r.points[i] = p.h
		r.owner[i] = p.shard
	}
	return r
}

// lookup returns the shard owning topic: the first vnode clockwise from the
// topic's hash.
func (r *ring) lookup(topic string) int {
	h := hash64(topic)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.owner[i]
}

// hash64 is FNV-1a over s. Stable across processes and Go versions (unlike
// hash/maphash), which the persistence contract needs.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
