package server_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klsm"
	"klsm/internal/loadgen"
	"klsm/internal/server"
)

// The crash suite kills a real klsmd process with SIGKILL mid-load and
// checks the durability contract over the HTTP API. The server under test
// is this test binary re-executed in child mode (TestMain dispatches on
// KLSMD_CRASH_CHILD), the process-level analog of the in-process fault
// injection in internal/walfault: no goroutine cleanup, no flushed caches —
// the kernel reclaims the process and only what was fsynced survives.

const (
	crashChildEnv  = "KLSMD_CRASH_CHILD"
	crashDirEnv    = "KLSMD_CRASH_DIR"
	crashShardsEnv = "KLSMD_CRASH_SHARDS"
	crashAddrEnv   = "KLSMD_CRASH_ADDRFILE"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		runCrashChild()
		return
	}
	os.Exit(m.Run())
}

// runCrashChild is the server side of the crash suite: a persistent server
// over the inherited directory, listening on a kernel-chosen port published
// through the addr file (written via rename so the parent never reads a
// partial line). It serves until killed.
func runCrashChild() {
	shards, err := strconv.Atoi(os.Getenv(crashShardsEnv))
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: bad shard count:", err)
		os.Exit(1)
	}
	srv, err := server.New(server.Config{
		Shards: shards,
		Dir:    os.Getenv(crashDirEnv),
		QueueOptions: []klsm.Option{
			klsm.WithRelaxation(64),
			klsm.WithSyncInterval(time.Millisecond),
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: server.New:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: listen:", err)
		os.Exit(1)
	}
	addrFile := os.Getenv(crashAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: addr file:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: addr file:", err)
		os.Exit(1)
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: serve:", err)
		os.Exit(1)
	}
}

// startCrashChild re-executes the test binary in child mode over dir and
// waits for it to publish its address and answer /healthz.
func startCrashChild(t *testing.T, dir string, shards int) (*exec.Cmd, *loadgen.Client) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashShardsEnv+"="+strconv.Itoa(shards),
		crashAddrEnv+"="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting child: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// Recovery replays the WAL before the address appears; give a race-
	// instrumented child on a loaded machine plenty of rope.
	deadline := time.Now().Add(30 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatal("child never published its address")
		}
		if b, err := os.ReadFile(addrFile); err == nil && strings.HasPrefix(string(b), "http://") {
			base = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cli := loadgen.NewClient(base)
	for {
		if time.Now().After(deadline) {
			t.Fatal("child never became healthy")
		}
		if resp, err := cli.HTTP.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cmd, cli
}

// killChild SIGKILLs the child and reaps it.
func killChild(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait()
}

// TestCrashRestartNoLostAcks is the durability acceptance test: cycles of
// boot → concurrent load → SIGKILL mid-insert → restart → full drain, with
// a client-side ledger checked against everything the HTTP API returned.
//
// The contract under test, phrased over the wire:
//   - an insert covered by a 200 survives the crash (exactly-once): it is
//     observed in exactly one dequeue/drain response, ever;
//   - an insert whose response was lost to the crash is indeterminate: it
//     appears at most once (the request died before or after the covering
//     group commit — both are legal, duplication is not);
//   - an item returned by a dequeue or drain response never reappears after
//     the crash (deletes are synced before the response is written).
//
// Dequeue workers are stopped — and their in-flight responses delivered —
// before the kill, so the ledger's "acked but not yet dequeued" set is
// exact at crash time; insert workers are still firing when the SIGKILL
// lands. Values are globally unique, making duplicates unambiguous.
func TestCrashRestartNoLostAcks(t *testing.T) {
	const shards = 2
	cycles := 3
	loadFor := 150 * time.Millisecond
	if testing.Short() {
		cycles = 2
		loadFor = 80 * time.Millisecond
	}
	dir := t.TempDir()

	var (
		mu            sync.Mutex
		pending       = map[string]bool{} // enqueue request sent, response not yet seen
		outstanding   = map[string]bool{} // acked inserts not yet observed in a response
		indeterminate = map[string]bool{} // inserts whose ack was lost: each may appear <= once
		observed      = map[string]bool{} // every value any dequeue/drain ever returned
		totalAcked    int64
	)
	// record checks one value coming back out of the service. A value still
	// pending is fine — the server can serve a pop from an insert whose ack
	// is still on the wire back to its worker; the worker reconciles when
	// the response lands.
	record := func(v string) {
		mu.Lock()
		defer mu.Unlock()
		if observed[v] {
			t.Errorf("value %q observed twice (duplicate across crash)", v)
		}
		observed[v] = true
		switch {
		case outstanding[v]:
			delete(outstanding, v)
		case indeterminate[v]:
			delete(indeterminate, v)
		case pending[v]:
		default:
			t.Errorf("value %q returned but never inserted (or already consumed)", v)
		}
	}

	for cycle := 0; cycle < cycles; cycle++ {
		cmd, cli := startCrashChild(t, dir, shards)

		var (
			insStop, deqStop atomic.Bool
			insWG, deqWG     sync.WaitGroup
		)
		// Insert workers: unique values, acked batches move into
		// outstanding, errored batches into indeterminate. They keep firing
		// through the kill; post-kill transport errors just extend the
		// indeterminate set.
		for w := 0; w < 2; w++ {
			insWG.Add(1)
			go func(w int) {
				defer insWG.Done()
				n := 0
				for !insStop.Load() {
					items := make([]loadgen.Item, 5)
					mu.Lock()
					for i := range items {
						items[i] = loadgen.Item{
							Key:   uint64((cycle*31+w*17+n)*2654435761) % (1 << 30),
							Value: fmt.Sprintf("c%d-w%d-%d", cycle, w, n),
						}
						pending[items[i].Value] = true
						n++
					}
					mu.Unlock()
					err := cli.Enqueue(fmt.Sprintf("topic-%d", n%8), items)
					mu.Lock()
					for _, it := range items {
						delete(pending, it.Value)
						if err == nil {
							totalAcked++
						}
						// A value the dequeuers already returned needs no
						// further tracking — it existed, it appeared once.
						if observed[it.Value] {
							continue
						}
						if err == nil {
							outstanding[it.Value] = true
						} else {
							indeterminate[it.Value] = true
						}
					}
					mu.Unlock()
				}
			}(w)
		}
		// Dequeue workers: alternate the global and a topic-scoped pop.
		// They stop before the kill, so every response they trigger is
		// delivered and recorded.
		for w := 0; w < 2; w++ {
			deqWG.Add(1)
			go func(w int) {
				defer deqWG.Done()
				n := 0
				for !deqStop.Load() {
					topic := "*"
					if n%2 == 1 {
						topic = fmt.Sprintf("topic-%d", n%8)
					}
					n++
					items, err := cli.Dequeue(topic, 4)
					if err != nil {
						t.Errorf("cycle %d: dequeue before kill failed: %v", cycle, err)
						return
					}
					for _, it := range items {
						record(it.Value)
					}
				}
			}(w)
		}

		time.Sleep(loadFor)
		deqStop.Store(true)
		deqWG.Wait()
		time.Sleep(20 * time.Millisecond) // keep inserts in flight across the kill
		killChild(t, cmd)
		insStop.Store(true)
		insWG.Wait()

		// Restart over the same directory and drain everything the WAL
		// recovered; record() catches losses, duplicates and fabrications.
		cmd2, cli := startCrashChild(t, dir, shards)
		if _, err := cli.Drain("*", -1, 256, func(it loadgen.Item) { record(it.Value) }); err != nil {
			t.Fatalf("cycle %d: drain after restart: %v", cycle, err)
		}

		mu.Lock()
		if len(pending) != 0 {
			t.Fatalf("cycle %d: %d values still pending after workers stopped (ledger bug)", cycle, len(pending))
		}
		lost := len(outstanding)
		if lost != 0 {
			i := 0
			for v := range outstanding {
				if i < 5 {
					t.Errorf("cycle %d: acked insert %q lost in crash", cycle, v)
				}
				i++
			}
			t.Fatalf("cycle %d: %d acked inserts lost (of %d acked so far)", cycle, lost, totalAcked)
		}
		t.Logf("cycle %d: acked so far %d, indeterminate in flight %d, all acked recovered",
			cycle, totalAcked, len(indeterminate))
		mu.Unlock()
		// The drain's deletes are synced, so killing the recovered child
		// here is safe: the next cycle opens the same directory (one owner
		// at a time) and recovers an empty queue plus its own load.
		killChild(t, cmd2)
	}
	if totalAcked == 0 {
		t.Fatal("no insert was ever acknowledged; the crash window never saw real load")
	}
}
