package server

import (
	"sync"
	"sync/atomic"

	"klsm"
)

// flushChunk caps the keys fed to one InsertBatch call by the flusher, so a
// burst of enqueues becomes a few level-⌈log₂flushChunk⌉ block publications
// instead of one giant block.
const flushChunk = 8192

// shardSrv is one shard's serving state: the queue, the flusher goroutine's
// private handle, the pending enqueue batch, and the shard's operation
// counters.
//
// Enqueue requests never call InsertBatch themselves. They append their
// items to the pending batch and wait; a single flusher goroutine drains
// the batch through one owned klsm.Handle and — on persistent shards —
// calls Sync once for the whole batch before waking the waiters. This is
// group commit at the serving layer: concurrent requests that arrive while
// a flush (and its fsync) is in progress accumulate into the next batch, so
// one InsertBatch publication and one fsync acknowledge them all. A 200
// response therefore means the items are in the queue and, on a persistent
// shard, covered by a nil-returning Sync — the exactly-once recovery
// contract of klsm.Open, surfaced through HTTP.
type shardSrv struct {
	q *klsm.Queue[string]

	// mu guards the pending batch and waiter list. wake (capacity 1) nudges
	// the flusher; closed stops it after a final drain.
	mu       sync.Mutex
	wake     chan struct{}
	pendKeys []uint64
	pendVals []string
	waiters  []chan error
	closed   bool
	done     chan struct{}

	// enqueued counts acknowledged inserted items, dequeued items returned
	// by dequeue/drain responses, flushes completed flusher rounds. Together
	// with Queue.Size they give /statsz its conservation identity
	// enqueued == dequeued + size (exact when quiescent).
	enqueued atomic.Int64
	dequeued atomic.Int64
	flushes  atomic.Int64
}

func newShardSrv(q *klsm.Queue[string]) *shardSrv {
	s := &shardSrv{q: q, wake: make(chan struct{}, 1), done: make(chan struct{})}
	go s.flusher()
	return s
}

// enqueue appends the batch to the pending set and blocks until the flush
// covering it completes, returning the flush's Sync error (nil on volatile
// shards). keys and values are copied before return — callers may reuse
// their slices — because the append below is the copy.
func (s *shardSrv) enqueue(keys []uint64, values []string) error {
	if len(keys) == 0 {
		return nil
	}
	ch := make(chan error, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return klsm.ErrClosed
	}
	s.pendKeys = append(s.pendKeys, keys...)
	s.pendVals = append(s.pendVals, values...)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return <-ch
}

// flusher is the shard's single writer: it swaps out the pending batch,
// publishes it in flushChunk-sized InsertBatch calls through its private
// handle, syncs once, and releases the batch's waiters with the result.
func (s *shardSrv) flusher() {
	defer close(s.done)
	h := s.q.NewHandle()
	defer h.Close()
	for {
		s.mu.Lock()
		for len(s.pendKeys) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.wake
			s.mu.Lock()
		}
		keys, vals, waiters := s.pendKeys, s.pendVals, s.waiters
		s.pendKeys, s.pendVals, s.waiters = nil, nil, nil
		s.mu.Unlock()

		for off := 0; off < len(keys); off += flushChunk {
			end := min(off+flushChunk, len(keys))
			h.InsertBatch(keys[off:end], vals[off:end])
		}
		err := s.q.Sync()
		if err == nil {
			s.enqueued.Add(int64(len(keys)))
		}
		s.flushes.Add(1)
		for _, ch := range waiters {
			ch <- err
		}
	}
}

// close stops accepting enqueues, waits for the flusher to drain the
// pending batch, and retires the flusher's handle. The queue itself is
// closed by the server afterwards.
func (s *shardSrv) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}
