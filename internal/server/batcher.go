package server

import (
	"sync"
	"sync/atomic"

	"klsm"
)

// flushChunk caps the keys fed to one InsertBatch call by the flusher, so a
// burst of enqueues becomes a few level-⌈log₂flushChunk⌉ block publications
// instead of one giant block.
const flushChunk = 8192

// ackPool recycles the one-shot acknowledgement channels enqueue waits on.
// Each channel carries exactly one send (by the flusher) and one receive
// (by the enqueuer that created it) per lease, so a returned channel is
// always empty and safe to reuse.
var ackPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// shardSrv is one shard's serving state: the queue, the flusher goroutine's
// private handle, the pending enqueue batch, and the shard's operation
// counters.
//
// Enqueue requests never call InsertBatch themselves. They append their
// items to the pending batch and wait; a single flusher goroutine drains
// the batch through one owned klsm.Handle and — on persistent shards —
// calls Sync once for the whole batch before waking the waiters. This is
// group commit at the serving layer: concurrent requests that arrive while
// a flush (and its fsync) is in progress accumulate into the next batch, so
// one InsertBatch publication and one fsync acknowledge them all. A 200
// response therefore means the items are in the queue and, on a persistent
// shard, covered by a nil-returning Sync — the exactly-once recovery
// contract of klsm.Open, surfaced through HTTP.
type shardSrv struct {
	q *klsm.Queue[string]

	// mu guards the pending batch, the spare (recycled) batch buffers and
	// the waiter list. wake (capacity 1) nudges the flusher; closed stops it
	// after a final drain.
	mu       sync.Mutex
	wake     chan struct{}
	pendKeys []uint64
	pendVals []string
	waiters  []chan error
	// spare* are last round's batch buffers, cleared and handed back by the
	// flusher so the swap ping-pongs between two buffer sets instead of
	// allocating fresh slices every round.
	spareKeys    []uint64
	spareVals    []string
	spareWaiters []chan error
	closed       bool
	done         chan struct{}

	// enqueued counts items published by InsertBatch — counted at
	// publication, not at acknowledgement, because a published item is in
	// the queue (and will be dequeued, drained and counted on that side)
	// whether or not the covering Sync succeeds. syncFails counts flusher
	// rounds whose Sync failed: those items were published but not
	// acknowledged (the waiters got the error). dequeued counts items
	// returned by dequeue/drain responses, flushes completed flusher
	// rounds. Together with Queue.Size, enqueued and dequeued give /statsz
	// its conservation identity enqueued == dequeued + size (exact when
	// quiescent).
	enqueued  atomic.Int64
	dequeued  atomic.Int64
	flushes   atomic.Int64
	syncFails atomic.Int64
}

func newShardSrv(q *klsm.Queue[string]) *shardSrv {
	s := &shardSrv{q: q, wake: make(chan struct{}, 1), done: make(chan struct{})}
	go s.flusher()
	return s
}

// enqueue appends the batch to the pending set and blocks until the flush
// covering it completes, returning the flush's Sync error (nil on volatile
// shards). keys and values are copied before return — callers may reuse
// their slices — because the append below is the copy.
func (s *shardSrv) enqueue(keys []uint64, values []string) error {
	if len(keys) == 0 {
		return nil
	}
	ch := ackPool.Get().(chan error)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ackPool.Put(ch)
		return klsm.ErrClosed
	}
	s.pendKeys = append(s.pendKeys, keys...)
	s.pendVals = append(s.pendVals, values...)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	err := <-ch
	ackPool.Put(ch)
	return err
}

// flusher is the shard's single writer: it swaps out the pending batch
// (double-buffered against last round's slices), publishes it in
// flushChunk-sized InsertBatch calls through its private handle, syncs once,
// and releases the batch's waiters with the result.
func (s *shardSrv) flusher() {
	defer close(s.done)
	h := s.q.NewHandle()
	defer h.Close()
	for {
		s.mu.Lock()
		for len(s.pendKeys) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.wake
			s.mu.Lock()
		}
		keys, vals, waiters := s.pendKeys, s.pendVals, s.waiters
		s.pendKeys = s.spareKeys[:0]
		s.pendVals = s.spareVals[:0]
		s.waiters = s.spareWaiters[:0]
		s.spareKeys, s.spareVals, s.spareWaiters = nil, nil, nil
		s.mu.Unlock()

		for off := 0; off < len(keys); off += flushChunk {
			end := min(off+flushChunk, len(keys))
			h.InsertBatch(keys[off:end], vals[off:end])
		}
		// Count at publication: the items are in the queue now, visible to
		// dequeuers, regardless of how the Sync below fares. Counting only
		// acknowledged items would leak every synced-failed batch out of the
		// enqueued == dequeued + size conservation identity.
		s.enqueued.Add(int64(len(keys)))
		err := s.q.Sync()
		if err != nil {
			s.syncFails.Add(1)
		}
		s.flushes.Add(1)
		for _, ch := range waiters {
			ch <- err
		}
		// Hand the drained buffers back as next round's pending set, dropping
		// the payload and channel references they pin.
		clear(vals)
		clear(waiters)
		s.mu.Lock()
		if s.spareKeys == nil {
			s.spareKeys = keys[:0]
			s.spareVals = vals[:0]
			s.spareWaiters = waiters[:0]
		}
		s.mu.Unlock()
	}
}

// close stops accepting enqueues, waits for the flusher to drain the
// pending batch, and retires the flusher's handle. The queue itself is
// closed by the server afterwards.
func (s *shardSrv) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}
