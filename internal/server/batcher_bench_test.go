package server

import (
	"testing"

	"klsm"
)

// BenchmarkFlusherRound measures the steady-state enqueue→flush→ack round
// trip on a volatile shard: with the double-buffered batch swap, the pooled
// ack channels and the queue's own item pooling, a round should run in
// (near-)zero allocations per op — the flusher recycles its slices instead
// of dropping them for the GC every round. Each op enqueues and drains the
// same small batch so the queue stays at a constant size.
func BenchmarkFlusherRound(b *testing.B) {
	s := newShardSrv(klsm.New[string](klsm.WithRelaxation(64)))
	defer s.close()
	const batch = 8
	keys := make([]uint64, batch)
	vals := make([]string, batch)
	for i := range keys {
		keys[i] = uint64(i + 1)
		vals[i] = "v"
	}
	dst := make([]klsm.KV[uint64, string], 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.enqueue(keys, vals); err != nil {
			b.Fatal(err)
		}
		dst = s.q.DrainMin(dst[:0], batch)
		if len(dst) != batch {
			b.Fatalf("drained %d, want %d", len(dst), batch)
		}
	}
}
