package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"klsm"
	"klsm/internal/walfault"
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of queue shards S (default 4). Topics map to
	// shards by consistent hashing; the composed relaxation bound is S·T·k.
	Shards int
	// VNodes is the consistent-hash ring's virtual-node count per shard
	// (<= 0 selects the default, 64). Must stay constant across restarts of
	// a persistent deployment: placement is part of the on-disk contract.
	VNodes int
	// Dir, when non-empty, makes every shard persistent: shard i opens
	// klsm.Open(Dir/shard-000i). Empty runs in memory.
	Dir string
	// FS, when non-nil, supplies each shard's filesystem instead of a real
	// directory: shard i opens klsm.OpenFS(FS(i), ...), and the server is
	// persistent regardless of Dir. The fault-injection tests use it to run
	// shards on a walfault.MemFS — injected fsync failures, crashes — through
	// the full HTTP stack.
	FS func(shard int) walfault.FS
	// QueueOptions configures every shard queue (relaxation, sync interval,
	// ...).
	QueueOptions []klsm.Option
	// MaxInFlightBytes bounds the summed Content-Length of requests being
	// served; beyond it new requests are rejected with 429 (default 32 MiB,
	// < 0 disables the bound).
	MaxInFlightBytes int64
	// MaxBodyBytes caps one request body (default 8 MiB).
	MaxBodyBytes int64
}

// Server is the klsmd HTTP service: S queue shards behind a consistent-hash
// router, group-commit enqueue batching, streaming drains, and per-shard
// counters at /statsz. Create with New, serve with Serve/ListenAndServe,
// stop with Shutdown (graceful: drains requests, flushes batches, closes
// every shard).
type Server struct {
	cfg    Config
	router *Router
	shards []*shardSrv

	// gmu serializes the global (cross-shard) dequeue path through gh, the
	// server's one router handle — Handle is single-goroutine like
	// klsm.Handle.
	gmu sync.Mutex
	gh  *Handle

	hs *http.Server

	inflight atomic.Int64
	rejected atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// item is the wire form of one key/payload pair.
type item struct {
	Key   uint64 `json:"key"`
	Value string `json:"value,omitempty"`
}

// enqueueRequest is the body of POST /v1/enqueue.
type enqueueRequest struct {
	Topic string `json:"topic"`
	Items []item `json:"items"`
}

// dequeueRequest is the body of POST /v1/dequeue. Topic "*" dequeues
// globally (smallest-peek shard first).
type dequeueRequest struct {
	Topic string `json:"topic"`
	Max   int    `json:"max"`
}

// New builds the server: opens (or creates) every shard queue and starts
// the per-shard flushers.
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.MaxInFlightBytes == 0 {
		cfg.MaxInFlightBytes = 32 << 20
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	queues := make([]*klsm.Queue[string], cfg.Shards)
	for i := range queues {
		var q *klsm.Queue[string]
		var err error
		switch {
		case cfg.FS != nil:
			q, err = klsm.OpenFS(cfg.FS(i), fmt.Sprintf("shard-%03d", i),
				klsm.StringValue{}, cfg.QueueOptions...)
		case cfg.Dir != "":
			dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", i))
			if err = os.MkdirAll(dir, 0o755); err == nil {
				q, err = klsm.Open(dir, klsm.StringValue{}, cfg.QueueOptions...)
			}
		default:
			q = klsm.New[string](cfg.QueueOptions...)
		}
		if err != nil {
			for _, p := range queues[:i] {
				p.Close()
			}
			return nil, fmt.Errorf("server: opening shard %d: %w", i, err)
		}
		queues[i] = q
	}
	s := &Server{cfg: cfg, router: NewRouter(queues, cfg.VNodes)}
	s.gh = s.router.NewHandle()
	s.shards = make([]*shardSrv, cfg.Shards)
	for i, q := range queues {
		s.shards[i] = newShardSrv(q)
	}
	s.hs = &http.Server{Handler: s.Handler()}
	return s, nil
}

// Router returns the server's in-process router (stats, embedding).
func (s *Server) Router() *Router { return s.router }

// Handler returns the server's HTTP handler (for tests and embedding; the
// Serve methods already use it).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/enqueue", s.handleEnqueue)
	mux.HandleFunc("POST /v1/dequeue", s.handleDequeue)
	mux.HandleFunc("GET /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return s.backpressure(mux)
}

// Serve serves on ln until Shutdown (or a listener error).
func (s *Server) Serve(ln net.Listener) error {
	err := s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ShutdownHTTP runs only step 1 of Shutdown — stop accepting and drain
// in-flight requests — leaving the shards open. cmd/klsmd uses it to get a
// quiescent server for Checkpoint before the final Shutdown.
func (s *Server) ShutdownHTTP(ctx context.Context) error {
	return s.hs.Shutdown(ctx)
}

// Shutdown stops the server gracefully, in dependency order: (1) stop
// accepting and wait for in-flight requests (so no handler is mid-enqueue
// or mid-drain), (2) flush every shard's pending batch and stop its
// flusher, (3) retire the router handles, (4) Close every shard queue —
// which drives reclamation to completion and, on persistent shards,
// flushes and fsyncs the WAL, acknowledging everything. ctx bounds only
// step 1; a cancelled ctx abandons stragglers but still runs 2–4.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.hs.Shutdown(ctx)
	s.closeOnce.Do(func() {
		for _, sh := range s.shards {
			sh.close()
		}
		s.gh.Close()
		for _, sh := range s.shards {
			if err := sh.q.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	if s.closeErr != nil {
		return s.closeErr
	}
	return httpErr
}

// backpressure wraps next with the in-flight byte bound: a request whose
// declared body size would push the served total past MaxInFlightBytes is
// rejected with 429 and a Retry-After hint instead of being buffered. The
// bound is admission control for memory — enqueue bursts beyond it queue in
// the clients, not in the server — and the contract the load generator
// leans on: a 429 is retryable by definition, nothing was enqueued.
// Bodies above MaxBodyBytes draw 413; POSTs must declare Content-Length
// (411) so admission happens before any buffering.
func (s *Server) backpressure(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := r.ContentLength
		if r.Method == http.MethodPost {
			if n < 0 {
				http.Error(w, "Content-Length required", http.StatusLengthRequired)
				return
			}
			if n > s.cfg.MaxBodyBytes {
				http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
				return
			}
		}
		if n > 0 && s.cfg.MaxInFlightBytes > 0 {
			if s.inflight.Add(n) > s.cfg.MaxInFlightBytes {
				s.inflight.Add(-n)
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "overloaded: in-flight byte budget exhausted", http.StatusTooManyRequests)
				return
			}
			defer s.inflight.Add(-n)
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next.ServeHTTP(w, r)
	})
}

// handleEnqueue appends the request's items to its shard's pending batch
// and responds once the flush covering them has completed — on persistent
// shards, once the covering Sync returned nil, so a 200 acknowledges
// durability (see shardSrv).
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req enqueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Topic == "" || req.Topic == "*" {
		http.Error(w, "bad request: enqueue needs a concrete topic", http.StatusBadRequest)
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, map[string]int{"acked": 0})
		return
	}
	keys := make([]uint64, len(req.Items))
	vals := make([]string, len(req.Items))
	for i, it := range req.Items {
		keys[i] = it.Key
		vals[i] = it.Value
	}
	sh := s.shards[s.router.Shard(req.Topic)]
	if err := sh.enqueue(keys, vals); err != nil {
		http.Error(w, "enqueue: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]int{"acked": len(keys)})
}

// handleDequeue pops up to max items and responds after the deletes are
// synced, so returned items never reappear after a crash (unacknowledged
// pops may — at-least-once, the klsm delete contract over HTTP).
func (s *Server) handleDequeue(w http.ResponseWriter, r *http.Request) {
	var req dequeueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	}
	if req.Max > 64<<10 {
		req.Max = 64 << 10
	}
	kvs, err := s.pop(req.Topic, nil, req.Max)
	if err != nil {
		http.Error(w, "dequeue: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	items := make([]item, len(kvs))
	for i, kv := range kvs {
		items[i] = item{Key: kv.Key, Value: kv.Value}
	}
	writeJSON(w, map[string][]item{"items": items})
}

// pop removes up to n items for topic ("*" = global smallest-peek-first)
// and syncs the covering deletes before returning them.
func (s *Server) pop(topic string, dst []klsm.KV[uint64, string], n int) ([]klsm.KV[uint64, string], error) {
	if topic == "" {
		return nil, errors.New("dequeue needs a topic (or \"*\" for global)")
	}
	if topic == "*" {
		s.gmu.Lock()
		for len(dst) < n {
			k, v, ok := s.gh.DeleteMinGlobal()
			if !ok {
				break
			}
			dst = append(dst, klsm.KV[uint64, string]{Key: k, Value: v})
		}
		s.gmu.Unlock()
		if err := s.syncAll(); err != nil {
			return dst, err
		}
		// Global pops span shards; attribute them to the shard of each key's
		// origin is unknowable here, so count them on shard 0's dequeued
		// total — the conservation identity in /statsz sums over shards.
		s.shards[0].dequeued.Add(int64(len(dst)))
		return dst, nil
	}
	sh := s.shards[s.router.Shard(topic)]
	dst = sh.q.DrainMin(dst, n)
	if err := sh.q.Sync(); err != nil {
		return dst, err
	}
	sh.dequeued.Add(int64(len(dst)))
	return dst, nil
}

// syncAll syncs every shard (the global pop path cannot know which shards
// its deletes landed on).
func (s *Server) syncAll() error {
	for _, sh := range s.shards {
		if err := sh.q.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// handleDrain streams items as NDJSON until the queue (or the max= budget)
// is exhausted: batches of batch= items (default 256) are popped, synced,
// then written and flushed, so every line the client has read is a durable
// delete. The final line is a summary object {"drained":N} — its presence
// tells the client the stream ended cleanly rather than mid-crash.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	topic := q.Get("topic")
	max := int64(1) << 62
	if v := q.Get("max"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		max = n
	}
	batch := 256
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 64<<10 {
			http.Error(w, "bad batch", http.StatusBadRequest)
			return
		}
		batch = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var drained int64
	var dst []klsm.KV[uint64, string]
	for drained < max {
		n := batch
		if rem := max - drained; rem < int64(n) {
			n = int(rem)
		}
		var err error
		dst, err = s.pop(topic, dst[:0], n)
		if err != nil {
			// Mid-stream failure: the summary line never arrives, which is
			// the signal; the status line already went out as 200.
			return
		}
		for _, kv := range dst {
			if err := enc.Encode(item{Key: kv.Key, Value: kv.Value}); err != nil {
				return
			}
		}
		drained += int64(len(dst))
		if flusher != nil {
			flusher.Flush()
		}
		if len(dst) < n {
			break
		}
	}
	enc.Encode(map[string]int64{"drained": drained})
}

// ShardStats is one shard's row in the /statsz document.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Size is the shard's current (approximate while busy) key count.
	Size int `json:"size"`
	// Enqueued counts acknowledged inserted items, Dequeued items returned
	// by dequeue/drain responses, Flushes group-commit flusher rounds.
	Enqueued int64 `json:"enqueued"`
	// Dequeued counts items returned by dequeue/drain responses.
	Dequeued int64 `json:"dequeued"`
	// Flushes counts completed flusher rounds (each is >= 1 InsertBatch
	// publication plus at most one Sync).
	Flushes int64 `json:"flushes"`
	// SyncFails counts flusher rounds whose covering Sync failed: the
	// round's items were published (and counted in Enqueued) but the
	// enqueuers were answered with the error instead of a 200.
	SyncFails int64 `json:"sync_fails,omitempty"`
	// Queue is the shard's structural counter snapshot.
	Queue klsm.Stats `json:"queue"`
	// Persist is the shard's durability counters; nil on volatile shards.
	Persist *klsm.PersistStats `json:"persist,omitempty"`
}

// Statsz is the /statsz document.
type Statsz struct {
	// Shards is the per-shard breakdown.
	Shards []ShardStats `json:"shards"`
	// Enqueued, Dequeued and Size are the shard sums; when the server is
	// quiescent they satisfy Enqueued == Dequeued + Size (the conservation
	// identity the smoke test asserts).
	Enqueued int64 `json:"enqueued"`
	// Dequeued is the shard sum of dequeued items.
	Dequeued int64 `json:"dequeued"`
	// Size is the shard sum of current key counts.
	Size int `json:"size"`
	// Rho is the composed relaxation bound S·T·k across shards.
	Rho int `json:"rho"`
	// InFlightBytes is the currently admitted request-body byte total.
	InFlightBytes int64 `json:"inflight_bytes"`
	// Rejected counts requests refused by the backpressure bound (429s).
	Rejected int64 `json:"rejected"`
	// Persistent reports whether the shards are durable (opened from Dir).
	Persistent bool `json:"persistent"`
}

// Stats assembles the /statsz document.
func (s *Server) Stats() Statsz {
	persistent := s.cfg.Dir != "" || s.cfg.FS != nil
	doc := Statsz{
		InFlightBytes: s.inflight.Load(),
		Rejected:      s.rejected.Load(),
		Rho:           s.router.Rho(),
		Persistent:    persistent,
	}
	for i, sh := range s.shards {
		row := ShardStats{
			Shard:     i,
			Size:      sh.q.Size(),
			Enqueued:  sh.enqueued.Load(),
			Dequeued:  sh.dequeued.Load(),
			Flushes:   sh.flushes.Load(),
			SyncFails: sh.syncFails.Load(),
			Queue:     sh.q.Stats(),
		}
		if persistent {
			ps := sh.q.PersistStats()
			row.Persist = &ps
		}
		doc.Shards = append(doc.Shards, row)
		doc.Enqueued += row.Enqueued
		doc.Dequeued += row.Dequeued
		doc.Size += row.Size
	}
	return doc
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ShutdownTimeout is the default grace period cmd/klsmd gives Shutdown.
const ShutdownTimeout = 10 * time.Second
