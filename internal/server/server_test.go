package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"klsm"
	"klsm/internal/loadgen"
	"klsm/internal/server"
)

// newTestServer boots a server on a loopback port and returns it with a
// client pointed at it. The caller shuts it down (shutdownServer) unless the
// test kills it deliberately.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *loadgen.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return srv, loadgen.NewClient("http://" + ln.Addr().String())
}

func shutdownServer(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), server.ShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestLoadgenSmoke is the end-to-end smoke: boot a volatile 4-shard server
// on a random port, run a bounded loadgen mix against it over real HTTP,
// and check the conservation identity at /statsz — every acknowledged
// insert is either dequeued or still in a shard, with the server-side
// counters agreeing exactly with the client-side ledger.
func TestLoadgenSmoke(t *testing.T) {
	srv, cli := newTestServer(t, server.Config{
		Shards:       4,
		QueueOptions: []klsm.Option{klsm.WithRelaxation(64)},
	})
	res, err := loadgen.Run(loadgen.Config{
		BaseURL:     cli.Base,
		Workers:     4,
		Ops:         4_000,
		InsertRatio: 0.6,
		Batch:       8,
		Topics:      8,
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("loadgen.Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if res.Inserts == 0 || res.Dequeued == 0 {
		t.Fatalf("degenerate mix: inserts=%d dequeued=%d", res.Inserts, res.Dequeued)
	}

	// The run is over and the server quiescent: client and server ledgers
	// must agree, and conservation must hold exactly.
	st, err := cli.Stats()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Enqueued != res.Inserts {
		t.Errorf("server enqueued %d, client acked %d inserts", st.Enqueued, res.Inserts)
	}
	if st.Dequeued != res.Dequeued {
		t.Errorf("server dequeued %d, client received %d", st.Dequeued, res.Dequeued)
	}
	if st.Enqueued != st.Dequeued+int64(st.Size) {
		t.Errorf("conservation violated: enqueued %d != dequeued %d + size %d",
			st.Enqueued, st.Dequeued, st.Size)
	}
	if want := srv.Router().Rho(); st.Rho != want {
		t.Errorf("statsz rho = %d, router says %d", st.Rho, want)
	}

	// Drain the remainder and re-check: the stream must deliver exactly the
	// residual size and leave the server empty.
	drained, err := cli.Drain("*", -1, 512, nil)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if drained != int64(st.Size) {
		t.Errorf("drained %d, statsz size was %d", drained, st.Size)
	}
	st2, err := cli.Stats()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st2.Size != 0 || st2.Enqueued != st2.Dequeued {
		t.Errorf("after drain: size=%d enqueued=%d dequeued=%d (want empty, balanced)",
			st2.Size, st2.Enqueued, st2.Dequeued)
	}
	shutdownServer(t, srv)
}

// TestBackpressure exercises the admission-control contract: a request
// whose declared body would blow the in-flight byte budget draws 429 with a
// Retry-After hint and enqueues nothing; oversized bodies draw 413; chunked
// POSTs (no Content-Length) draw 411; and a small request right after a
// rejection still succeeds — rejections must not leak budget.
func TestBackpressure(t *testing.T) {
	srv, cli := newTestServer(t, server.Config{
		Shards:           1,
		MaxInFlightBytes: 1 << 10,
		MaxBodyBytes:     8 << 10,
	})

	big := loadgen.Item{Value: strings.Repeat("x", 2<<10)}
	err := cli.Enqueue("t", []loadgen.Item{big})
	var st *loadgen.ErrStatus
	if !errors.As(err, &st) || st.Code != http.StatusTooManyRequests {
		t.Fatalf("2KiB body against a 1KiB budget: got %v, want 429", err)
	}

	// Raw request to see the Retry-After header the client hides.
	body := fmt.Sprintf(`{"topic":"t","items":[{"key":1,"value":%q}]}`, strings.Repeat("x", 2<<10))
	resp, err := http.Post(cli.Base+"/v1/enqueue", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("raw post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw oversized post: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}

	huge := loadgen.Item{Value: strings.Repeat("x", 16<<10)}
	if err := cli.Enqueue("t", []loadgen.Item{huge}); !errors.As(err, &st) || st.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("16KiB body against an 8KiB cap: got %v, want 413", err)
	}

	// io.MultiReader defeats NewRequest's length detection, producing a
	// chunked POST with no Content-Length.
	req, err := http.NewRequest("POST", cli.Base+"/v1/enqueue",
		io.MultiReader(strings.NewReader(`{"topic":"t","items":[{"key":1}]}`)))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("chunked post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusLengthRequired {
		t.Fatalf("chunked post: status %d, want 411", resp.StatusCode)
	}

	// Nothing above was admitted, so a well-formed request still fits.
	if err := cli.Enqueue("t", []loadgen.Item{{Key: 7, Value: "ok"}}); err != nil {
		t.Fatalf("small enqueue after rejections: %v", err)
	}
	stz, err := cli.Stats()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stz.Rejected < 2 {
		t.Errorf("statsz rejected = %d, want >= 2", stz.Rejected)
	}
	if stz.Enqueued != 1 || stz.Size != 1 {
		t.Errorf("after rejections: enqueued=%d size=%d, want exactly the one admitted item",
			stz.Enqueued, stz.Size)
	}
	shutdownServer(t, srv)
}

// TestEnqueueValidation pins the request-validation edges: enqueue needs a
// concrete topic ("" and the global wildcard "*" are rejected), and an
// empty item list acks zero without touching a shard.
func TestEnqueueValidation(t *testing.T) {
	srv, cli := newTestServer(t, server.Config{Shards: 2})
	var st *loadgen.ErrStatus
	if err := cli.Enqueue("", []loadgen.Item{{Key: 1}}); !errors.As(err, &st) || st.Code != http.StatusBadRequest {
		t.Errorf("empty topic: got %v, want 400", err)
	}
	if err := cli.Enqueue("*", []loadgen.Item{{Key: 1}}); !errors.As(err, &st) || st.Code != http.StatusBadRequest {
		t.Errorf("wildcard topic: got %v, want 400", err)
	}
	if err := cli.Enqueue("t", nil); err != nil {
		t.Errorf("empty item list: %v", err)
	}
	stz, err := cli.Stats()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stz.Enqueued != 0 || stz.Size != 0 {
		t.Errorf("rejected requests reached a shard: enqueued=%d size=%d", stz.Enqueued, stz.Size)
	}
	shutdownServer(t, srv)
}

// TestStreamingDrain checks the NDJSON drain end to end: every enqueued
// item arrives exactly once, the summary line count matches, and a max=
// budget stops the stream exactly at the budget with its own clean summary.
func TestStreamingDrain(t *testing.T) {
	srv, cli := newTestServer(t, server.Config{
		Shards:       2,
		QueueOptions: []klsm.Option{klsm.WithRelaxation(16)},
	})
	const total = 1000
	want := make(map[string]bool, total)
	var items []loadgen.Item
	for i := 0; i < total; i++ {
		v := fmt.Sprintf("v%04d", i)
		want[v] = true
		items = append(items, loadgen.Item{Key: uint64(i*7919) % total, Value: v})
		if len(items) == 100 {
			if err := cli.Enqueue(fmt.Sprintf("topic-%d", i%5), items); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
			items = items[:0]
		}
	}

	got := make(map[string]bool, total)
	visit := func(it loadgen.Item) {
		if got[it.Value] {
			t.Errorf("value %q drained twice", it.Value)
		}
		got[it.Value] = true
	}
	n, err := cli.Drain("*", 100, 32, visit)
	if err != nil {
		t.Fatalf("bounded drain: %v", err)
	}
	if n != 100 || len(got) != 100 {
		t.Fatalf("bounded drain: summary=%d received=%d, want exactly 100", n, len(got))
	}
	n, err = cli.Drain("*", -1, 64, visit)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n != total-100 {
		t.Errorf("residual drain summary = %d, want %d", n, total-100)
	}
	if len(got) != total {
		t.Fatalf("received %d distinct values, want %d", len(got), total)
	}
	for v := range got {
		if !want[v] {
			t.Errorf("drained value %q was never enqueued", v)
		}
	}
	shutdownServer(t, srv)
}

// TestPersistentCleanCloseReopen checks the durable lifecycle without a
// crash: acked inserts survive a graceful Shutdown, a new server over the
// same directory recovers them all, and the partial dequeues from the first
// life never reappear.
func TestPersistentCleanCloseReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Shards:       2,
		Dir:          dir,
		QueueOptions: []klsm.Option{klsm.WithRelaxation(16), klsm.WithSyncInterval(time.Millisecond)},
	}
	srv, cli := newTestServer(t, cfg)

	const total = 300
	inserted := make(map[string]bool, total)
	var items []loadgen.Item
	for i := 0; i < total; i++ {
		v := fmt.Sprintf("p%04d", i)
		inserted[v] = true
		items = append(items, loadgen.Item{Key: uint64(i), Value: v})
		if len(items) == 50 {
			if err := cli.Enqueue(fmt.Sprintf("topic-%d", i%7), items); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
			items = items[:0]
		}
	}
	popped, err := cli.Dequeue("*", 50)
	if err != nil {
		t.Fatalf("dequeue: %v", err)
	}
	seen := make(map[string]bool, total)
	for _, it := range popped {
		seen[it.Value] = true
	}
	shutdownServer(t, srv)

	srv2, cli2 := newTestServer(t, cfg)
	st, err := cli2.Stats()
	if err != nil {
		t.Fatalf("statsz after reopen: %v", err)
	}
	if !st.Persistent {
		t.Error("statsz does not report persistent shards")
	}
	if want := total - len(popped); st.Size != want {
		t.Errorf("recovered size %d, want %d", st.Size, want)
	}
	n, err := cli2.Drain("*", -1, 64, func(it loadgen.Item) {
		if seen[it.Value] {
			t.Errorf("value %q seen twice across shutdown", it.Value)
		}
		if !inserted[it.Value] {
			t.Errorf("recovered value %q was never enqueued", it.Value)
		}
		seen[it.Value] = true
	})
	if err != nil {
		t.Fatalf("drain after reopen: %v", err)
	}
	if int(n)+len(popped) != total || len(seen) != total {
		t.Errorf("recovered %d + dequeued %d != %d inserted (distinct seen %d)",
			n, len(popped), total, len(seen))
	}
	shutdownServer(t, srv2)
}
