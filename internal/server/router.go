package server

import (
	"klsm"
)

// Router places topics on shards and exposes the sharded queue in process,
// without the HTTP layer: the serving handlers route through it, and the
// sharded rank-bound quality suite drives it directly with the ostat
// machinery. Payloads are strings — the serving layer's wire type.
//
// The Router owns no handles itself; like klsm.Queue, per-goroutine access
// goes through a Handle (one klsm.Handle per shard), so the per-shard
// handle count T — and with it the composed bound S·T·k — is the number of
// Router handles created.
type Router struct {
	shards []*klsm.Queue[string]
	ring   *ring
}

// NewRouter builds a router over the given shard queues with vnodes virtual
// ring nodes per shard (<= 0 selects the default). The queues are owned by
// the caller: the router never closes them.
func NewRouter(shards []*klsm.Queue[string], vnodes int) *Router {
	if len(shards) == 0 {
		panic("server: NewRouter needs at least one shard")
	}
	return &Router{shards: shards, ring: newRing(len(shards), vnodes)}
}

// Shards returns the shard count S.
func (r *Router) Shards() int { return len(r.shards) }

// Shard returns the index of the shard owning topic.
func (r *Router) Shard(topic string) int { return r.ring.lookup(topic) }

// Queue returns shard i's queue (for stats and maintenance; operations
// should go through a Handle).
func (r *Router) Queue(i int) *klsm.Queue[string] { return r.shards[i] }

// Size returns the total key count across shards. Like klsm.Queue.Size it
// is approximate while operations are in flight, exact when quiescent.
func (r *Router) Size() int {
	n := 0
	for _, q := range r.shards {
		n += q.Size()
	}
	return n
}

// Rho returns the router's composed relaxation bound S·T·k, computed as the
// sum of the shards' ρ = T·k (shards may differ in T when callers also hold
// direct queue handles — the sum is the honest bound either way).
func (r *Router) Rho() int {
	rho := 0
	for _, q := range r.shards {
		rho += q.Rho()
	}
	return rho
}

// Handle is one goroutine's access point to the sharded queue: one
// klsm.Handle per shard. Like klsm.Handle it must not be used by two
// goroutines concurrently.
type Handle struct {
	r  *Router
	hs []*klsm.Handle[string]
}

// NewHandle registers a handle on every shard. Each call raises every
// shard's T by one, and so the composed bound by S·k.
func (r *Router) NewHandle() *Handle {
	h := &Handle{r: r, hs: make([]*klsm.Handle[string], len(r.shards))}
	for i, q := range r.shards {
		h.hs[i] = q.NewHandle()
	}
	return h
}

// Close retires the handle on every shard.
func (h *Handle) Close() {
	for _, sh := range h.hs {
		sh.Close()
	}
}

// Insert adds key with the given payload to topic's shard.
func (h *Handle) Insert(topic string, key uint64, value string) {
	h.hs[h.r.ring.lookup(topic)].Insert(key, value)
}

// InsertBatch inserts the batch into topic's shard as one structural
// operation (klsm.Handle.InsertBatch semantics, including the values
// contract).
func (h *Handle) InsertBatch(topic string, keys []uint64, values []string) {
	h.hs[h.r.ring.lookup(topic)].InsertBatch(keys, values)
}

// DrainTopic removes up to n items from topic's shard, appending them to
// dst in pop order (klsm.Handle.DrainMin semantics).
func (h *Handle) DrainTopic(topic string, dst []klsm.KV[uint64, string], n int) []klsm.KV[uint64, string] {
	return h.hs[h.r.ring.lookup(topic)].DrainMin(dst, n)
}

// DeleteMinGlobal removes and returns a small key across all shards: it
// peeks every shard and pops from the one whose peek is smallest.
//
// The composed bound: each shard's peek is among that shard's T·k+1
// smallest keys, so at most T·k keys per shard are smaller than its peek,
// and the popped key — taken from the shard with the minimal peek — has at
// most T·k smaller keys in its own shard (its own relaxation) and at most
// T·k in each other shard whenever it does not exceed that shard's peek.
// With single-owner shards and local ordering the pop returns exactly the
// peeked key (measured rank 0 per shard, E16), making the S·T·k envelope
// exact; under concurrency the pop may race past the peek by at most the
// shard's own relaxation, which the concurrent suite absorbs in the same
// P-1 linearization slack the unsharded suite uses.
func (h *Handle) DeleteMinGlobal() (key uint64, value string, ok bool) {
	best, bestKey := -1, uint64(0)
	for i, sh := range h.hs {
		if k, _, ok := sh.PeekMin(); ok && (best < 0 || k < bestKey) {
			best, bestKey = i, k
		}
	}
	if best >= 0 {
		if k, v, ok := h.hs[best].TryDeleteMin(); ok {
			return k, v, true
		}
	}
	// Every peek was empty, or the argmin pop lost a race to a concurrent
	// deleter: sweep the shards so emptiness is only reported when every
	// shard declined (a false here is as spurious as a false TryDeleteMin).
	for i := range h.hs {
		if i == best {
			continue
		}
		if k, v, ok := h.hs[i].TryDeleteMin(); ok {
			return k, v, true
		}
	}
	return 0, "", false
}
