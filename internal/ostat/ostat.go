// Package ostat implements an order-statistic treap over uint64 keys with
// duplicates.
//
// The rank-error (quality) harness needs, for every delete-min a queue
// performs, the rank of the returned key among all currently live keys —
// i.e. "how many strictly smaller keys were skipped". A treap with subtree
// sizes answers Rank, Insert and Delete in O(log n) expected time, keeping
// the measurement overhead far below the queue operations being measured.
package ostat

import "klsm/internal/xrand"

type node struct {
	key         uint64
	prio        uint64
	count       int // multiplicity of key
	size        int // total keys (with multiplicity) in subtree
	left, right *node
}

func (n *node) sz() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = n.count + n.left.sz() + n.right.sz()
}

// Tree is an order-statistic multiset. Not safe for concurrent use.
type Tree struct {
	root *node
	rng  *xrand.Source
}

// New returns an empty tree with a deterministic priority stream.
func New(seed uint64) *Tree {
	return &Tree{rng: xrand.NewSeeded(seed)}
}

// Len returns the number of stored keys, counting multiplicity.
func (t *Tree) Len() int { return t.root.sz() }

// Insert adds one occurrence of key.
func (t *Tree) Insert(key uint64) {
	t.root = t.insert(t.root, key)
}

func (t *Tree) insert(n *node, key uint64) *node {
	if n == nil {
		return &node{key: key, prio: t.rng.Uint64(), count: 1, size: 1}
	}
	switch {
	case key == n.key:
		n.count++
	case key < n.key:
		n.left = t.insert(n.left, key)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	default:
		n.right = t.insert(n.right, key)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	n.update()
	return n
}

// Delete removes one occurrence of key, reporting whether it was present.
func (t *Tree) Delete(key uint64) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, key)
	return deleted
}

func (t *Tree) delete(n *node, key uint64) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case key < n.key:
		n.left, deleted = t.delete(n.left, key)
	case key > n.key:
		n.right, deleted = t.delete(n.right, key)
	default:
		deleted = true
		if n.count > 1 {
			n.count--
		} else {
			// Rotate the node down to a leaf and drop it.
			if n.left == nil {
				return n.right, true
			}
			if n.right == nil {
				return n.left, true
			}
			if n.left.prio > n.right.prio {
				n = rotateRight(n)
				n.right, _ = t.delete(n.right, key)
			} else {
				n = rotateLeft(n)
				n.left, _ = t.delete(n.left, key)
			}
		}
	}
	n.update()
	return n, deleted
}

// Rank returns the number of stored keys strictly smaller than key.
func (t *Tree) Rank(key uint64) int {
	rank := 0
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			rank += n.left.sz() + n.count
			n = n.right
		default:
			return rank + n.left.sz()
		}
	}
	return rank
}

// Contains reports whether at least one occurrence of key is stored.
func (t *Tree) Contains(key uint64) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest stored key.
func (t *Tree) Min() (uint64, bool) {
	n := t.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Kth returns the k-th smallest key (0-based, counting multiplicity).
func (t *Tree) Kth(k int) (uint64, bool) {
	n := t.root
	if k < 0 || k >= n.sz() {
		return 0, false
	}
	for n != nil {
		ls := n.left.sz()
		switch {
		case k < ls:
			n = n.left
		case k < ls+n.count:
			return n.key, true
		default:
			k -= ls + n.count
			n = n.right
		}
	}
	return 0, false
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}
