package ostat

import (
	"sort"
	"testing"
	"testing/quick"

	"klsm/internal/xrand"
)

func TestEmpty(t *testing.T) {
	tr := New(1)
	if tr.Len() != 0 {
		t.Fatal("fresh tree non-empty")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty succeeded")
	}
	if tr.Delete(5) {
		t.Fatal("Delete on empty succeeded")
	}
	if tr.Rank(100) != 0 {
		t.Fatal("Rank on empty non-zero")
	}
	if _, ok := tr.Kth(0); ok {
		t.Fatal("Kth on empty succeeded")
	}
}

func TestInsertDeleteRank(t *testing.T) {
	tr := New(2)
	keys := []uint64{5, 3, 9, 3, 7}
	for _, k := range keys {
		tr.Insert(k)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {3, 0}, {4, 2}, {5, 2}, {6, 3}, {7, 3}, {8, 4}, {9, 4}, {10, 5},
	}
	for _, c := range cases {
		if got := tr.Rank(c.key); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	if !tr.Delete(3) || tr.Len() != 4 {
		t.Fatal("Delete of duplicate failed")
	}
	if got := tr.Rank(4); got != 1 {
		t.Fatalf("Rank(4) after one delete = %d, want 1", got)
	}
	if !tr.Contains(3) {
		t.Fatal("second occurrence of 3 lost")
	}
	tr.Delete(3)
	if tr.Contains(3) {
		t.Fatal("3 still present after deleting both")
	}
}

func TestMinAndKth(t *testing.T) {
	tr := New(3)
	for _, k := range []uint64{50, 10, 30, 10, 20} {
		tr.Insert(k)
	}
	if m, ok := tr.Min(); !ok || m != 10 {
		t.Fatalf("Min = %d (%v)", m, ok)
	}
	want := []uint64{10, 10, 20, 30, 50}
	for i, w := range want {
		if got, ok := tr.Kth(i); !ok || got != w {
			t.Fatalf("Kth(%d) = %d (%v), want %d", i, got, ok, w)
		}
	}
	if _, ok := tr.Kth(5); ok {
		t.Fatal("Kth out of range succeeded")
	}
}

// TestPropMatchesSortedSlice compares the treap against a sorted-slice
// reference over random operation sequences.
func TestPropMatchesSortedSlice(t *testing.T) {
	f := func(ops []uint64) bool {
		tr := New(7)
		var ref []uint64
		for _, op := range ops {
			key := op >> 1 % 64
			if op&1 == 0 || len(ref) == 0 {
				tr.Insert(key)
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= key })
				ref = append(ref, 0)
				copy(ref[i+1:], ref[i:])
				ref[i] = key
			} else {
				wantOK := false
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= key })
				if i < len(ref) && ref[i] == key {
					wantOK = true
					ref = append(ref[:i], ref[i+1:]...)
				}
				if tr.Delete(key) != wantOK {
					return false
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
			// Spot-check ranks.
			probe := key
			wantRank := sort.Search(len(ref), func(i int) bool { return ref[i] >= probe })
			if tr.Rank(probe) != wantRank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandom(t *testing.T) {
	tr := New(11)
	src := xrand.NewSeeded(13)
	const n = 50000
	for i := 0; i < n; i++ {
		tr.Insert(src.Uint64() % 100000)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Kth must be non-decreasing.
	prev := uint64(0)
	for i := 0; i < n; i += 997 {
		k, ok := tr.Kth(i)
		if !ok || k < prev {
			t.Fatalf("Kth(%d) = %d (%v), prev %d", i, k, ok, prev)
		}
		prev = k
	}
}

func BenchmarkInsertDeleteRank(b *testing.B) {
	tr := New(17)
	src := xrand.NewSeeded(19)
	for i := 0; i < 10000; i++ {
		tr.Insert(src.Uint64() % 1000000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := src.Uint64() % 1000000
		tr.Insert(k)
		tr.Rank(k)
		tr.Delete(k)
	}
}
