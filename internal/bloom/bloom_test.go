package bloom

import (
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var f Filter
	if !f.Empty() {
		t.Fatal("zero Filter not empty")
	}
	if f.MayContain(0) || f.MayContain(42) {
		t.Fatal("empty filter claims to contain an ID")
	}
	if f.PopCount() != 0 {
		t.Fatalf("empty filter popcount = %d", f.PopCount())
	}
}

// TestNoFalseNegatives is the property local ordering semantics depend on:
// once a handle ID is added it must always be found.
func TestNoFalseNegatives(t *testing.T) {
	f := func(ids []uint64, probe uint64) bool {
		var flt Filter
		for _, id := range ids {
			flt = flt.Add(id)
		}
		for _, id := range ids {
			if !flt.MayContain(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddIdempotent(t *testing.T) {
	var f Filter
	f = f.Add(7)
	if g := f.Add(7); g != f {
		t.Fatalf("adding same ID twice changed filter: %x vs %x", f, g)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(a, b []uint64) bool {
		var fa, fb Filter
		for _, id := range a {
			fa = fa.Add(id)
		}
		for _, id := range b {
			fb = fb.Add(id)
		}
		u := fa.Union(fb)
		for _, id := range a {
			if !u.MayContain(id) {
				return false
			}
		}
		for _, id := range b {
			if !u.MayContain(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFalsePositiveRate sanity-checks that the filter actually discriminates:
// with a handful of IDs inserted, the false positive rate over disjoint
// probes must be far below 1 (two bits of 64 set per ID => ~ (2m/64)^2 for m
// inserted IDs).
func TestFalsePositiveRate(t *testing.T) {
	var f Filter
	for id := uint64(0); id < 4; id++ {
		f = f.Add(id)
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(uint64(1000 + i)) {
			fp++
		}
	}
	// 4 IDs set at most 8 bits; expected FP rate <= (8/64)^2 ~ 1.6%. Allow 5%.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high for 4 inserted IDs", rate)
	}
}

func TestDifferentIDsDifferentBits(t *testing.T) {
	// Hash distinctness over small sequential IDs (the actual key
	// distribution: handle IDs are small integers).
	seen := map[Filter]uint64{}
	collisions := 0
	for id := uint64(0); id < 256; id++ {
		b := bits(id)
		if _, dup := seen[b]; dup {
			collisions++
		}
		seen[b] = id
	}
	// 64*63/2+64 = 2080 possible masks; 256 draws collide sometimes, but a
	// pile-up indicates broken tabulation tables.
	if collisions > 40 {
		t.Fatalf("%d/256 sequential IDs share exact bit masks", collisions)
	}
}

func TestPopCount(t *testing.T) {
	cases := []struct {
		f    Filter
		want int
	}{
		{0, 0},
		{1, 1},
		{3, 2},
		{1 << 63, 1},
		{^Filter(0), 64},
	}
	for _, c := range cases {
		if got := c.f.PopCount(); got != c.want {
			t.Errorf("PopCount(%x) = %d, want %d", uint64(c.f), got, c.want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The init tables are seeded with a constant, so masks are stable within
	// a binary. This test pins a couple of values to catch accidental
	// re-seeding; update if the seed constant changes intentionally.
	a, b := bits(1), bits(2)
	if a == 0 || b == 0 {
		t.Fatal("bits produced empty mask")
	}
	if a2 := bits(1); a2 != a {
		t.Fatal("bits(1) not deterministic within a run")
	}
	_ = b
}

func BenchmarkAdd(b *testing.B) {
	var f Filter
	for i := 0; i < b.N; i++ {
		f = f.Add(uint64(i & 1023))
	}
	_ = f
}

func BenchmarkMayContain(b *testing.B) {
	var f Filter
	for id := uint64(0); id < 16; id++ {
		f = f.Add(id)
	}
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = f.MayContain(uint64(i & 1023))
	}
	_ = sink
}
