// Package bloom implements the 64-bit Bloom filters the shared k-LSM uses to
// provide local ordering semantics (paper §4.1).
//
// Each Block carries a filter recording the IDs of all handles (threads) that
// contributed items to the block. find-min then only needs to inspect the
// block minima of blocks whose filter may contain the calling handle, and a
// handle is guaranteed never to skip its own items: Bloom filters have no
// false negatives. The paper uses 64-bit filters with two hash values obtained
// by tabulation hashing; filters are only mutated while a block is still
// private to the merging thread, so no synchronization is needed.
package bloom

import "klsm/internal/xrand"

// Filter is a 64-bit Bloom filter over handle IDs. The zero value is the
// empty filter. Filter is a value type: merging two blocks ORs their filters.
type Filter uint64

// tables holds the tabulation hashing tables: 8 tables of 256 random entries,
// one per input byte. Two independent 6-bit hash values are carved out of the
// same 64-bit tabulation product, which is the standard trick for
// twin-hash Bloom filters.
var tables [8][256]uint64

func init() {
	// A fixed seed keeps filters deterministic across runs, which makes
	// failures reproducible; tabulation hashing is 3-independent regardless
	// of the table contents as long as they are random-looking.
	src := xrand.NewSeeded(0xb10f11e8)
	for i := range tables {
		for j := range tables[i] {
			tables[i][j] = src.Uint64()
		}
	}
}

// hash computes the 64-bit tabulation hash of id.
func hash(id uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= tables[i][byte(id>>(8*uint(i)))]
	}
	return h
}

// bits returns the two filter bit masks for id.
func bits(id uint64) Filter {
	h := hash(id)
	b1 := h & 63
	b2 := (h >> 6) & 63
	return Filter(1<<b1 | 1<<b2)
}

// Add returns f with id recorded.
func (f Filter) Add(id uint64) Filter { return f | bits(id) }

// Mask returns the filter containing exactly id. Callers that tag many
// blocks with the same ID (each handle's DistLSM) precompute this once and
// OR it in, avoiding the tabulation hash on every insert.
func Mask(id uint64) Filter { return bits(id) }

// MayContain reports whether id may have been added to f. False positives are
// possible; false negatives are not.
func (f Filter) MayContain(id uint64) bool {
	b := bits(id)
	return f&b == b
}

// Union returns the filter containing everything recorded in f or g. Used
// when two blocks are merged.
func (f Filter) Union(g Filter) Filter { return f | g }

// Empty reports whether no ID has been added.
func (f Filter) Empty() bool { return f == 0 }

// PopCount returns the number of set bits, a rough indicator of saturation.
// With two bits per ID the filter saturates (all queries positive) around
// a few dozen distinct handles, after which local-ordering checks degrade
// gracefully to scanning every block minimum.
func (f Filter) PopCount() int {
	n := 0
	for x := uint64(f); x != 0; x &= x - 1 {
		n++
	}
	return n
}
