// Package distlsm implements the distributed LSM priority queue of paper
// §4.2 (Listing 4).
//
// Every handle (the paper's "thread") owns one Dist instance and is the only
// writer to it; other handles interact exclusively through Spy, which
// non-destructively copies block contents. Single-writer/multi-reader imposes
// the package's publication discipline:
//
//   - block slots and the size counter are atomics, and the owner orders its
//     stores so that every live item stays reachable through (blocks, size)
//     at every instant: new/merged blocks are stored before the blocks they
//     replace become unreachable, and transfers to the shared k-LSM complete
//     before the transferred blocks are dropped here. Spying threads may
//     consequently observe the same item twice (stale block plus merged
//     block), which the logical-deletion flag de-duplicates.
//   - published blocks are never mutated except for monotonically shrinking
//     their filled counter.
//
// When used inside the combined k-LSM (§4.3), the Dist is bounded: no block
// may reach level ⌊log2(k+1)⌋, so a handle's Dist holds at most k items —
// the property the ρ = T·k relaxation bound of Lemma 2 rests on. Blocks
// growing past the bound are handed to the overflow callback (the shared
// k-LSM) instead of being stored locally.
//
// Memory reclamation (§4.4): the owner draws blocks from its per-handle
// pool; private blocks (the per-insert level-0 block, merge intermediates)
// recycle the moment they are merged away, while published blocks are
// retired only after the stores that unlink them, gated by the queue-wide
// spy guard. With item reclamation on, an item's reference is acquired once
// at insert (the level-0 block) or at a spy copy, and every merge or
// compaction in this package *transfers* its inputs' references to the
// result (block.MergeTransferIn / ShrinkTransferIn) instead of
// re-acquiring them — zero refcount traffic per generation for surviving
// items. Items a merge filters out travel in the result's drops list and
// are parked in the pool's item limbo right after the stores that unlink
// their donor blocks; the pool releases every reference exactly when the
// reuse contract proves the holder dead, returning taken items to the
// handle's item pool. Blocks overflowing to the shared k-LSM carry their
// references with them. See DESIGN.md, "Deterministic item reclamation".
package distlsm

import (
	"sync/atomic"

	"klsm/internal/block"
	"klsm/internal/bloom"
	"klsm/internal/item"
)

// Stats is a snapshot of structural event counters for the ablation
// benchmarks and diagnostics.
type Stats struct {
	Merges       int64 // block merges performed by inserts
	Overflows    int64 // blocks transferred to the shared k-LSM
	Spies        int64 // successful spy operations
	SpiedBlocks  int64 // blocks copied by spy operations
	Consolidates int64 // consolidation passes
}

// statCounters is the live, owner-written representation; atomics so
// diagnostic snapshots may be taken concurrently.
type statCounters struct {
	merges       atomic.Int64
	overflows    atomic.Int64
	spies        atomic.Int64
	spiedBlocks  atomic.Int64
	consolidates atomic.Int64
}

// Dist is one handle's distributed LSM priority queue.
type Dist[V any] struct {
	blocks [block.MaxLevel + 1]atomic.Pointer[block.Block[V]]
	size   atomic.Int64

	// ownerID tags blocks with the owning handle for the shared k-LSM's
	// Bloom-filter-based local ordering; ownerMask is its precomputed
	// Bloom filter bit pattern.
	ownerID   uint64
	ownerMask bloom.Filter

	// maxLevel is the overflow threshold: a merged block reaching this level
	// is transferred to the shared k-LSM. maxLevel <= 0 disables local
	// storage entirely (k = 0); maxLevel > block.MaxLevel disables overflow
	// (standalone DLSM). It is atomic because the relaxation parameter can
	// be reconfigured at run time (paper §1) by a goroutine other than the
	// owner; the owner reads it on every insert.
	maxLevel atomic.Int64

	drop  block.DropFunc[V]
	stats statCounters

	// pool is the owner handle's §4.4 block free list (nil: pooling off).
	// Private blocks (the per-insert level-0 block, merge intermediates)
	// recycle immediately; published blocks that the owner unlinks go
	// through Retire, whose guard keeps them parked while any spy that
	// might still hold their pointer is active. All pools of one queue
	// share that queue's guard, which Spy brackets.
	pool *block.Pool[V]
	// retireScratch and consolidation scratch buffers avoid per-call slice
	// allocations on the owner's hot paths; itemScratch briefly holds
	// detached drop references on the overflow path.
	retireScratch []*block.Block[V]
	runScratch    []*block.Block[V]
	freshScratch  []bool
	itemScratch   []*item.Item[V]

	// Min cache: mins[i] is the live minimum of blocks[i] as of the last
	// owner scan, so the steady-state FindMin is a handful of key compares
	// instead of a ShrinkInPlace walk over every block. All fields are
	// owner-only (plain, not atomic): every mutation of the block array is
	// owner-only, and the cache is maintained precisely at each one. An
	// entry stays valid while its item is not taken — items referenced by a
	// published block are never recycled (§4.4 reuse contract), taken flags
	// never revert, and published blocks only ever shrink, so a live cached
	// item *is* still its block's minimum. A taken entry triggers a rescan
	// of that block only. cacheLen == current size marks the cache valid;
	// -1 invalidates it (the next FindMin repopulates with its full scan).
	minCache bool
	cacheLen int
	mins     [block.MaxLevel + 1]*item.Item[V]
}

// UnboundedLevel disables overflow: the Dist keeps every block locally.
const UnboundedLevel = block.MaxLevel + 1

// maxLevelFor computes the overflow threshold ⌊log2(k+1)⌋: levels
// 0..maxLevel-1 may be stored locally, so at most 2^maxLevel - 1 <= k items
// reside in the Dist. The result is clamped to block.MaxLevel: beyond it the
// naive shift overflows int (Go defines the over-wide shift as 0) and the
// loop would never terminate — the same bug class as LevelForCount's clamp —
// and no block may exceed block.MaxLevel anyway.
func maxLevelFor(k int) int {
	if k >= 1<<uint(block.MaxLevel)-1 {
		return block.MaxLevel
	}
	level := 0
	for 1<<uint(level+1) <= k+1 {
		level++
	}
	return level
}

// New returns a Dist owned by handle ownerID, bounded for relaxation
// parameter k. k < 0 means unbounded (standalone DLSM mode).
func New[V any](ownerID uint64, k int) *Dist[V] {
	d := &Dist[V]{ownerID: ownerID, ownerMask: bloom.Mask(ownerID), cacheLen: -1}
	if k < 0 {
		d.maxLevel.Store(UnboundedLevel)
	} else {
		d.maxLevel.Store(int64(maxLevelFor(k)))
	}
	return d
}

// SetK re-derives the overflow threshold from a new relaxation parameter
// (run-time reconfiguration, paper §1). Safe to call from any goroutine;
// the owner applies it — including evicting now-oversized blocks — on its
// next insert.
func (d *Dist[V]) SetK(k int) {
	if k < 0 {
		d.maxLevel.Store(UnboundedLevel)
		return
	}
	d.maxLevel.Store(int64(maxLevelFor(k)))
}

// SetDrop installs the lazy-deletion callback applied during merges.
func (d *Dist[V]) SetDrop(drop block.DropFunc[V]) { d.drop = drop }

// SetPool installs the owner handle's block free list (§4.4). Must be set
// before the Dist is used; the pool's guard must be shared by every pool of
// the queue so Spy and Retire agree on reader quiescence.
func (d *Dist[V]) SetPool(p *block.Pool[V]) { d.pool = p }

// SetMinCaching toggles the owner-local per-block min cache (owner only;
// set before first use). Off, every FindMin re-walks the block array.
func (d *Dist[V]) SetMinCaching(enabled bool) {
	d.minCache = enabled
	d.cacheLen = -1
}

// cacheValid reports whether the min cache mirrors blocks[0:sz].
func (d *Dist[V]) cacheValid(sz int) bool {
	return d.minCache && d.cacheLen == sz
}

// Stats returns a snapshot of the structural event counters. Safe to call
// from any goroutine.
func (d *Dist[V]) Stats() Stats {
	return Stats{
		Merges:       d.stats.merges.Load(),
		Overflows:    d.stats.overflows.Load(),
		Spies:        d.stats.spies.Load(),
		SpiedBlocks:  d.stats.spiedBlocks.Load(),
		Consolidates: d.stats.consolidates.Load(),
	}
}

// MaxLevel exposes the overflow threshold for tests.
func (d *Dist[V]) MaxLevel() int { return int(d.maxLevel.Load()) }

// evictOversized transfers blocks at or above maxLevel to the shared k-LSM
// (owner only). A private copy is published to the overflow target before
// the local slots are compacted, so reachability is never interrupted — and
// because the overflow target receives a block nothing else references, it
// is free to recycle it (Shared.Insert assumes exactly that). The evicted
// originals go through the guard-gated Retire once unlinked.
func (d *Dist[V]) evictOversized(maxLevel int, overflow func(*block.Block[V]) *block.Block[V]) {
	sz := int(d.size.Load())
	if sz == 0 {
		return
	}
	// Blocks are sorted by strictly decreasing level; oversized ones form a
	// prefix. Remember the originals: compaction overwrites their slots.
	unlinked := d.retireScratch[:0]
	evict := 0
	for evict < sz {
		b := d.blocks[evict].Load()
		if b == nil || b.Level() < maxLevel {
			break
		}
		nb := b.CopyIn(d.pool, b.Level())
		if nb.Empty() {
			d.pool.Put(nb) // only taken items: nothing to publish
		} else {
			s := nb.ShrinkIn(d.pool)
			if s != nb {
				d.pool.Put(nb)
			}
			if left := overflow(s); left != nil {
				// Plain copies are entry-acquired by the shared side, so a
				// leftover only appears on transfer lineages; retire it
				// with the originals below, after the unlink stores.
				unlinked = append(unlinked, left)
			}
			d.stats.overflows.Add(1)
		}
		unlinked = append(unlinked, b)
		evict++
	}
	if evict == 0 {
		d.retireScratch = unlinked[:0]
		return
	}
	// Compact left; transient duplicates are fine, lost items are not.
	for i := evict; i < sz; i++ {
		d.blocks[i-evict].Store(d.blocks[i].Load())
	}
	d.size.Store(int64(sz - evict))
	if d.cacheValid(sz) {
		// The surviving blocks kept their relative order: shift their
		// cached minima down with them.
		copy(d.mins[:sz-evict], d.mins[evict:sz])
		d.cacheLen = sz - evict
	} else {
		d.cacheLen = -1
	}
	// The originals are now unreachable to new spies: recycle under the
	// reuse contract.
	for j, b := range unlinked {
		unlinked[j] = nil
		d.pool.Retire(b)
	}
	d.retireScratch = unlinked[:0]
}

// Insert adds it to the Dist (owner only). Following Listing 4, a level-0
// block is merged with existing blocks from the small end until levels are
// strictly decreasing. If the resulting block reaches the overflow threshold
// it is passed to overflow (when non-nil) *before* the merged-away blocks
// are unlinked, so the items never become unreachable. Insert reports
// whether the item was kept locally (false means it overflowed).
func (d *Dist[V]) Insert(it *item.Item[V], overflow func(*block.Block[V]) *block.Block[V]) bool {
	b := d.pool.Get(0)
	b.SetBloom(d.ownerMask)
	b.Append(it)
	if b.Empty() {
		d.pool.Put(b) // never published: recycle immediately
		return true   // item was concurrently taken; nothing to do
	}
	// §4.4: the item's lineage reference is acquired once, here at birth;
	// every merge from now on transfers it instead of re-acquiring.
	b.AcquireRefs()
	return d.insertBlock(b, overflow)
}

// InsertBlock inserts a caller-built block of items through the same merge
// cascade Insert uses — the v2 batch-insert entry point (§4.1's structural
// batching surfaced at the API: n pre-sorted items arrive as one block at
// level ⌈log₂n⌉ instead of n level-0 merge cascades). b must be private to
// the owner, drawn from the owner's pool, non-empty, and sorted in
// non-increasing key order; the Dist stamps the owner's Bloom mask and
// acquires the block's lineage references here, and ownership of b — like an
// Insert item's — transfers to the structure. Blocks reaching the overflow
// threshold (including any b larger than k to begin with) are handed to
// overflow exactly as in Insert, so the ρ = T·k bound is preserved for every
// batch size. Reports whether the items stayed local (false: overflowed to
// the shared k-LSM).
func (d *Dist[V]) InsertBlock(b *block.Block[V], overflow func(*block.Block[V]) *block.Block[V]) bool {
	if b == nil {
		return true
	}
	b.SetBloom(d.ownerMask)
	if b.Empty() {
		d.pool.Put(b)
		return true
	}
	// §4.4: one lineage acquisition for the whole batch, at birth — the same
	// entry point as Insert's level-0 block, amortized over n items.
	b.AcquireRefs()
	return d.insertBlock(b, overflow)
}

// insertBlock runs the merge loop for a prepared block. Exposed within the
// package for spy-assisted bulk moves. b must be private to the owner.
func (d *Dist[V]) insertBlock(b *block.Block[V], overflow func(*block.Block[V]) *block.Block[V]) bool {
	maxLevel := int(d.maxLevel.Load())
	if overflow != nil {
		// Apply a run-time k reduction: evict blocks the new bound no
		// longer permits before growing the structure further.
		d.evictOversized(maxLevel, overflow)
	}
	sz := int(d.size.Load())
	cached := d.cacheValid(sz)
	i := sz
	// unlinked collects published blocks this operation merges away; they
	// are retired only after the publication stores below make them
	// unreachable to new spies (§4.4 reuse contract).
	unlinked := d.retireScratch[:0]
	for i > 0 {
		prev := d.blocks[i-1].Load()
		if prev == nil || prev.Empty() {
			// Empty slots can appear after consolidation races with nothing:
			// the owner wrote them; just absorb (the publication below
			// unlinks them).
			if prev != nil {
				unlinked = append(unlinked, prev)
			}
			i--
			continue
		}
		if prev.Level() > b.Level() {
			break
		}
		// Merge is non-destructive: prev stays reachable in its slot until
		// the final publication below. The merge transfers both inputs'
		// item references to the result (§4.4) — no refcount traffic here.
		merged := block.MergeTransferIn(d.pool, prev, b, d.drop)
		d.pool.Put(b) // b never escaped this thread: recycle immediately
		unlinked = append(unlinked, prev)
		b = merged
		d.stats.merges.Add(1)
		i--
	}
	keptLocal := true
	// The merge loop only consumed blocks at indices >= the final i, so a
	// valid cache keeps its entries for the untouched prefix 0..i-1; the
	// cases below just fix up the boundary entry and length.
	newLen := -1
	switch {
	case b.Empty():
		// Everything merged away (drop callback / logical deletions). With
		// reclamation on, b still owns the consumed blocks' item references
		// as drops, so it goes through Retire — releasing is safe only once
		// the size store has unlinked the consumed blocks and the guard is
		// quiescent. An obligation-free b (reclamation off) stays a plain
		// private block and recycles instantly.
		d.size.Store(int64(i))
		if b.HoldsRefs() || b.DropsLen() != 0 {
			d.pool.Retire(b)
		} else {
			d.pool.Put(b)
		}
		if cached {
			newLen = i
		}
	case overflow != nil && b.Level() >= maxLevel:
		// Publish to the shared k-LSM first; only then drop local
		// references (reachability is never interrupted, items are briefly
		// duplicated instead). Ownership of b — including its transferred
		// item references — moves to the shared k-LSM; only the dropped-
		// item references stay local, parked once the stores below unlink
		// their donor blocks.
		d.itemScratch = b.TakeDropsInto(d.itemScratch[:0])
		leftover := overflow(b)
		d.stats.overflows.Add(1)
		d.size.Store(int64(i))
		keptLocal = false
		if cached {
			newLen = i
		}
		// The detached drop references — and b itself, if the shared side
		// merged it away while it still carried its lineage's references —
		// park only now, after the size store unlinked their donor blocks.
		d.pool.RetireItems(d.itemScratch)
		clear(d.itemScratch)
		d.itemScratch = d.itemScratch[:0]
		d.pool.Retire(leftover)
	default:
		// Publication. AcquireRefs is the lineage entry point for a block
		// that was never merged (the bare level-0 fast path already
		// acquired at Insert, so this is a no-op there too).
		b.AcquireRefs()
		d.blocks[i].Store(b)
		d.size.Store(int64(i + 1))
		if cached {
			d.mins[i] = b.Min()
			newLen = i + 1
		}
		// Dropped-item references (items the merges filtered out) park
		// only now, after the size store unlinked every donor block.
		d.pool.RetireBlockDrops(b)
	}
	d.cacheLen = newLen
	for j, ub := range unlinked {
		unlinked[j] = nil
		d.pool.Retire(ub)
	}
	d.retireScratch = unlinked[:0]
	return keptLocal
}

// FindMin returns the live minimum item without removing it (owner only), or
// nil if the Dist holds no live item. It opportunistically trims logically
// deleted tails and triggers consolidation when blocks have died.
//
// With min caching on, a valid cache reduces the steady-state call to one
// key compare per block, rescanning only blocks whose cached minimum has
// been taken since the last scan (typically the one block a failed TryTake
// hit); without it — or after a structural mutation invalidated the cache —
// the call performs the full trimming scan and repopulates the cache.
func (d *Dist[V]) FindMin() *item.Item[V] {
	sz := int(d.size.Load())
	cached := d.cacheValid(sz)
	var best *item.Item[V]
	deadBlocks := 0
	for i := 0; i < sz; i++ {
		it := d.mins[i]
		if !cached || it == nil || it.Taken() {
			it = d.scanBlockMin(i)
			if d.minCache {
				d.mins[i] = it
			}
		}
		if it == nil {
			deadBlocks++
			continue
		}
		if best == nil || it.Key() < best.Key() {
			best = it
		}
	}
	if d.minCache {
		d.cacheLen = sz
	}
	if deadBlocks > 0 {
		d.Consolidate()
	}
	return best
}

// FillMin collects candidates for a per-handle deletion buffer (owner
// only): up to perBlock live items per block, ascending from each block's
// minimum, skipping keys above capKey. It returns dst extended and a guard
// key that lower-bounds every live key left uncollected — keys at or below
// min(capKey, guard) that FillMin returned are a complete ascending prefix
// of the Dist's live keys up to that bound, so popping them in order cannot
// skip a smaller key still stored here (the local-ordering requirement).
// guard is ^0 when every live key was collected.
//
// The entries are version-stamped, not taken: the caller validates each pop
// with TryTakeAt, and a discarded buffer leaves the items untouched in
// their blocks. Like FindMin, the walk repopulates the per-block min cache
// (the refill hook: one pass serves both the buffer and the cache) and
// trims logically deleted tails. The per-block walk is bounded, so a
// dead-item-riddled block costs O(perBlock) here and is left to
// consolidation.
func (d *Dist[V]) FillMin(dst []item.Snap[V], perBlock int, capKey uint64) ([]item.Snap[V], uint64) {
	sz := int(d.size.Load())
	guard := ^uint64(0)
	for i := 0; i < sz; i++ {
		b := d.blocks[i].Load()
		if b == nil || b.ShrinkInPlace() == 0 {
			if d.minCache {
				d.mins[i] = nil
			}
			continue
		}
		f := b.Filled()
		got := 0
		scan := perBlock*4 + 16
		foundMin := false
		// Blocks are sorted descending, so walking j from f-1 toward 0
		// yields ascending keys; b.Item(j).Key() lower-bounds every key at
		// an index <= j, collected or not — the basis of the guard.
		j := f - 1
		for ; j >= 0; j-- {
			if got >= perBlock || scan <= 0 {
				break
			}
			scan--
			it := b.Item(j)
			ver := it.Version()
			if ver&1 != 0 {
				continue
			}
			if !foundMin && d.minCache {
				d.mins[i] = it
				foundMin = true
			}
			k := it.Key()
			if k > capKey {
				break
			}
			dst = append(dst, item.Snap[V]{It: it, Ver: ver, Key: k})
			got++
		}
		if !foundMin && d.minCache {
			d.mins[i] = nil
		}
		if j >= 0 {
			if g := b.Item(j).Key(); g < guard {
				guard = g
			}
		}
	}
	if d.minCache {
		d.cacheLen = sz
	}
	return dst, guard
}

// scanBlockMin trims block i's logically deleted tail and returns its live
// minimum, or nil when the slot is empty or fully dead (owner only).
func (d *Dist[V]) scanBlockMin(i int) *item.Item[V] {
	b := d.blocks[i].Load()
	if b == nil {
		return nil
	}
	// Owner-side cheap cleanup: drop the logically deleted tail so the
	// next scan starts at a live minimum.
	if b.ShrinkInPlace() == 0 {
		return nil
	}
	it := b.Min()
	if it == nil || it.Taken() {
		// Taken between trim and read; treat as dead, consolidation cleans up.
		return nil
	}
	return it
}

// Consolidate compacts the block array (owner only): empty blocks are
// removed, underfull blocks shrunk, and level collisions re-merged, mirroring
// the paper's consolidate. References to old blocks are only dropped after
// their replacements are published (left-to-right overwrite, size last), so
// spying threads never lose sight of a live item.
//
// Recycling (§4.4): blocks created during this pass are private until the
// final publication, so the ones merged away again recycle immediately;
// original published blocks that do not survive are retired after the
// publication stores unlink them.
func (d *Dist[V]) Consolidate() {
	d.stats.consolidates.Add(1)
	sz := int(d.size.Load())
	runs := d.runScratch[:0]
	fresh := d.freshScratch[:0]
	unlinked := d.retireScratch[:0]
	for i := 0; i < sz; i++ {
		b := d.blocks[i].Load()
		if b == nil || b.Empty() {
			if b != nil {
				unlinked = append(unlinked, b)
			}
			continue
		}
		// ShrinkTransferIn may copy, donating b's item references to the
		// compacted copy; mutation of b is limited to lowering filled.
		s := b.ShrinkTransferIn(d.pool)
		sFresh := s != b
		if sFresh {
			unlinked = append(unlinked, b) // replaced by the compacted copy
		}
		if s.Empty() {
			// An empty fresh copy may still carry the original's references
			// as drops; Retire (via the unlinked list) gates their release
			// on the publication stores below and guard quiescence. An
			// obligation-free fresh copy recycles instantly as before.
			if sFresh && !s.HoldsRefs() && s.DropsLen() == 0 {
				d.pool.Put(s)
			} else {
				unlinked = append(unlinked, s)
			}
			continue
		}
		// Restore strictly decreasing levels with a merge stack; merges
		// transfer their inputs' item references to the result (§4.4).
		for len(runs) > 0 && runs[len(runs)-1].Level() <= s.Level() {
			top, topFresh := runs[len(runs)-1], fresh[len(fresh)-1]
			m := block.MergeTransferIn(d.pool, top, s, d.drop)
			d.stats.merges.Add(1)
			if topFresh {
				d.pool.Put(top)
			} else {
				unlinked = append(unlinked, top)
			}
			if sFresh {
				d.pool.Put(s)
			} else {
				unlinked = append(unlinked, s)
			}
			s, sFresh = m, true
			runs, fresh = runs[:len(runs)-1], fresh[:len(fresh)-1]
		}
		if !s.Empty() {
			runs, fresh = append(runs, s), append(fresh, sFresh)
		} else if sFresh && !s.HoldsRefs() && s.DropsLen() == 0 {
			d.pool.Put(s)
		} else {
			unlinked = append(unlinked, s)
		}
	}
	for i, r := range runs {
		// Publication: surviving originals and transfer-merged runs already
		// hold their item references (AcquireRefs is a defensive no-op);
		// the unlinked originals release theirs only in the Retire loop
		// below — donated ones release nothing.
		r.AcquireRefs()
		d.blocks[i].Store(r)
	}
	d.size.Store(int64(len(runs)))
	if d.minCache {
		// Rebuild the min cache from the surviving runs: each is non-empty
		// and its tail was live when built (staleness is caught by the
		// taken-flag check on the next FindMin).
		for i, r := range runs {
			d.mins[i] = r.Min()
		}
		d.cacheLen = len(runs)
	}
	// Published runs hand their dropped-item references to the item limbo
	// now that the stores above unlinked every donor block.
	for _, r := range runs {
		d.pool.RetireBlockDrops(r)
	}
	for j, ub := range unlinked {
		unlinked[j] = nil
		d.pool.Retire(ub)
	}
	clear(runs)
	d.runScratch = runs[:0]
	d.freshScratch = fresh[:0]
	d.retireScratch = unlinked[:0]
}

// Spy copies the victim's blocks into d (owner of d only; victim may be
// mutating concurrently). Copied blocks keep the victim's Bloom filter, and
// only blocks preserving d's strictly-decreasing level order are taken, as
// in Listing 4. Returns true if d is non-empty afterwards.
func (d *Dist[V]) Spy(victim *Dist[V]) bool {
	if victim == nil || victim == d {
		return d.size.Load() != 0
	}
	// Announce this reader to the queue-wide guard: while active, no owner
	// recycles a retired published block, so every pointer read below stays
	// valid even if the victim unlinks it mid-copy (§4.4).
	g := d.pool.Guard()
	g.Enter()
	defer g.Exit()
	copied := d.spyBlocks(victim, ^uint64(0))
	if copied > 0 {
		d.stats.spies.Add(1)
		d.stats.spiedBlocks.Add(copied)
	}
	return d.size.Load() != 0
}

// SpyBelow is the bounded-drain variant of Spy: it copies the victim's
// blocks into d only when the victim provably holds a live key at or below
// bound — the case where a deadline-bounded drain on this handle would
// otherwise strand a due item in an idle victim's local structure. Unlike
// Spy (which only fires when the spying handle is empty), SpyBelow is called
// while d may still hold items above the bound, so it reports whether any
// block was actually copied rather than whether d is non-empty. Owner of d
// only; the victim may be mutating concurrently.
func (d *Dist[V]) SpyBelow(victim *Dist[V], bound uint64) bool {
	if victim == nil || victim == d {
		return false
	}
	g := d.pool.Guard()
	g.Enter()
	defer g.Exit()
	// Pre-scan for a live key <= bound. LiveMin is read-only and safe on a
	// foreign block; the victim's owner-local min cache is NOT consulted
	// (it is unsynchronized plain state).
	vsz := int(victim.size.Load())
	due := false
	for i := 0; i < vsz && !due; i++ {
		b := victim.blocks[i].Load()
		if b == nil || b.Empty() {
			continue
		}
		if it, _ := b.LiveMin(); it != nil && it.Key() <= bound {
			due = true
		}
	}
	if !due {
		return false
	}
	copied := d.spyBlocks(victim, bound)
	if copied > 0 {
		d.stats.spies.Add(1)
		d.stats.spiedBlocks.Add(copied)
	}
	return copied > 0
}

// spyBlocks is the shared Spy/SpyBelow copy loop: it appends copies of the
// victim's level-compatible blocks to d and returns how many were taken.
// bound filters which blocks are worth taking: a block whose live minimum
// exceeds it cannot contain a due key and is skipped, so a bounded spy
// copies only the slice of the victim that can actually serve the drain —
// Spy passes ^uint64(0) to take everything. Must run under an entered
// guard (see Spy).
func (d *Dist[V]) spyBlocks(victim *Dist[V], bound uint64) int64 {
	vsz := int(victim.size.Load())
	copied := int64(0)
	for i := 0; i < vsz; i++ {
		b := victim.blocks[i].Load()
		if b == nil || b.Empty() {
			continue
		}
		if bound != ^uint64(0) {
			if it, _ := b.LiveMin(); it == nil || it.Key() > bound {
				continue
			}
		}
		sz := int(d.size.Load())
		level := b.Level()
		if sz != 0 {
			last := d.blocks[sz-1].Load()
			if last != nil && level >= last.Level() {
				// Would violate strictly decreasing levels; the victim
				// mutated under us or our own tail is already smaller. Stop
				// taking blocks — spy is best-effort.
				continue
			}
		}
		nb := b.CopyIn(d.pool, level)
		if nb.Empty() {
			d.pool.Put(nb)
			continue
		}
		// Publication under the guard: the victim's block cannot release
		// its references while this reader is active, so acquiring ours
		// here never races a final release.
		nb.AcquireRefs()
		d.blocks[sz].Store(nb)
		d.size.Store(int64(sz + 1))
		if d.cacheValid(sz) {
			// Spy only appends: existing cache entries stay aligned.
			d.mins[sz] = nb.Min()
			d.cacheLen = sz + 1
		} else {
			d.cacheLen = -1
		}
		copied++
	}
	return copied
}

// Purge physically removes drop-filtered items from every block (owner
// only): each published block whose contents the filter touches is replaced
// by a CopyDropIn copy, then a Consolidate pass restores the level invariant
// and recompacts. The copy re-acquires its own item references before
// publication (the spy-copy protocol), and the unlinked originals release
// theirs through Retire — items the filter claims are released exactly once,
// by the original block's retirement. Without a configured drop filter this
// is just Consolidate.
func (d *Dist[V]) Purge() {
	if d.drop == nil {
		d.Consolidate()
		return
	}
	sz := int(d.size.Load())
	unlinked := d.retireScratch[:0]
	for i := 0; i < sz; i++ {
		b := d.blocks[i].Load()
		if b == nil || b.Empty() {
			continue
		}
		nb := b.CopyDropIn(d.pool, b.Level(), d.drop)
		if nb.Filled() == b.Filled() {
			// Nothing dropped or dead: keep the original (the copy never
			// acquired references, so recycling it releases nothing).
			d.pool.Put(nb)
			continue
		}
		// Same protocol as Spy: acquire the copy's references before the
		// store unlinks the original, so no item is ever reference-free
		// while reachable.
		nb.AcquireRefs()
		d.blocks[i].Store(nb)
		unlinked = append(unlinked, b)
	}
	d.cacheLen = -1
	for j, ub := range unlinked {
		unlinked[j] = nil
		d.pool.Retire(ub)
	}
	d.retireScratch = unlinked[:0]
	d.Consolidate()
}

// DrainTo publishes compacted copies of every block to overflow and then
// empties the Dist (owner only). Used when a handle retires: its items move
// to the shared k-LSM so the Dist no longer needs to be spy-reachable.
// Publication strictly precedes unlinking, so reachability is never
// interrupted (items are briefly duplicated, which logical deletion
// resolves).
func (d *Dist[V]) DrainTo(overflow func(*block.Block[V]) *block.Block[V]) {
	sz := int(d.size.Load())
	unlinked := d.retireScratch[:0]
	for i := 0; i < sz; i++ {
		b := d.blocks[i].Load()
		if b == nil {
			continue
		}
		unlinked = append(unlinked, b)
		if b.Empty() {
			continue
		}
		nb := b.CopyIn(d.pool, b.Level())
		if nb.Empty() {
			d.pool.Put(nb)
			continue
		}
		s := nb.ShrinkIn(d.pool)
		if s != nb {
			d.pool.Put(nb)
		}
		if left := overflow(s); left != nil {
			unlinked = append(unlinked, left)
		}
		d.stats.overflows.Add(1)
	}
	d.size.Store(0)
	if d.minCache {
		d.cacheLen = 0
	}
	// Retire the drained originals once the size store above unlinks them.
	// The pool dies with the closing handle, so for pure block reuse this
	// would be pointless — but with item reclamation on, Retire releases the
	// originals' item references (immediately when the guard is quiescent,
	// which is the common case on close), without which every item that
	// passed through this handle would stay GC-backstopped forever.
	for j, b := range unlinked {
		unlinked[j] = nil
		d.pool.Retire(b)
	}
	d.retireScratch = unlinked[:0]
}

// Empty reports whether the owner currently sees no blocks. Live items may
// still exist transiently during maintenance of other structures; callers
// needing certainty combine this with FindMin.
func (d *Dist[V]) Empty() bool { return d.size.Load() == 0 }

// Blocks returns the number of published blocks (racy snapshot; for tests).
func (d *Dist[V]) Blocks() int { return int(d.size.Load()) }

// BlockAt returns the published block in slot i, or nil. Safe from any
// goroutine; used by spy-style bulk readers (meld).
func (d *Dist[V]) BlockAt(i int) *block.Block[V] {
	if i < 0 || i > block.MaxLevel {
		return nil
	}
	return d.blocks[i].Load()
}

// LiveCount scans all blocks and counts live items (owner only; for tests
// and size estimation).
func (d *Dist[V]) LiveCount() int {
	sz := int(d.size.Load())
	n := 0
	for i := 0; i < sz; i++ {
		if b := d.blocks[i].Load(); b != nil {
			n += b.LiveCount()
		}
	}
	return n
}

// CheckInvariants verifies strictly decreasing levels and per-block order
// (owner only; for tests).
func (d *Dist[V]) CheckInvariants() bool {
	sz := int(d.size.Load())
	prevLevel := block.MaxLevel + 2
	for i := 0; i < sz; i++ {
		b := d.blocks[i].Load()
		if b == nil || b.Empty() {
			return false
		}
		if b.Level() >= prevLevel {
			return false
		}
		if !b.SortedDesc() {
			return false
		}
		prevLevel = b.Level()
	}
	return true
}
