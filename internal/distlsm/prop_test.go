package distlsm

import (
	"sort"
	"testing"
	"testing/quick"

	"klsm/internal/block"
	"klsm/internal/item"
)

// TestPropOwnerSequenceMatchesOracle: arbitrary owner-side op sequences
// (insert / find-min+take) agree with a sorted-slice oracle, and the block
// structure invariants hold throughout.
func TestPropOwnerSequenceMatchesOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New[int](1, -1)
		var ref []uint64
		for _, op := range ops {
			if op&1 == 0 || len(ref) == 0 {
				key := uint64(op >> 1)
				d.Insert(item.New(key, 0), nil)
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= key })
				ref = append(ref, 0)
				copy(ref[i+1:], ref[i:])
				ref[i] = key
			} else {
				it := d.FindMin()
				if it == nil || it.Key() != ref[0] {
					return false
				}
				if !it.TryTake() {
					return false
				}
				ref = ref[1:]
			}
			if !d.CheckInvariants() {
				return false
			}
		}
		return d.LiveCount() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropBoundNeverExceeded: for arbitrary insert sequences and k, the
// Dist never holds more than k items locally.
func TestPropBoundNeverExceeded(t *testing.T) {
	f := func(keys []uint64, kSel uint8) bool {
		ks := []int{0, 1, 3, 7, 15, 64, 255}
		k := ks[int(kSel)%len(ks)]
		d := New[int](1, k)
		sink := func(*block.Block[int]) *block.Block[int] { return nil }
		for _, key := range keys {
			d.Insert(item.New(key, 0), sink)
			if d.LiveCount() > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSpyIsComplete: after quiescence, a spy of a victim sees every
// live item the victim holds.
func TestPropSpyIsComplete(t *testing.T) {
	f := func(keys []uint64, deletions uint8) bool {
		victim := New[int](1, -1)
		for _, k := range keys {
			victim.Insert(item.New(k, 0), nil)
		}
		for i := 0; i < int(deletions)%(len(keys)+1); i++ {
			if it := victim.FindMin(); it != nil {
				it.TryTake()
			}
		}
		want := victim.LiveCount()
		thief := New[int](2, -1)
		thief.Spy(victim)
		return thief.LiveCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
