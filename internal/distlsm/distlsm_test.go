package distlsm

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// drain repeatedly takes the minimum from d (owner-style delete-min) until
// empty, returning the key sequence.
func drain(d *Dist[int]) []uint64 {
	var out []uint64
	for {
		it := d.FindMin()
		if it == nil {
			return out
		}
		if it.TryTake() {
			out = append(out, it.Key())
		}
	}
}

func TestMaxLevelFor(t *testing.T) {
	cases := []struct{ k, want int }{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {6, 2}, {7, 3}, {255, 8}, {256, 8}, {511, 9}, {4096, 12},
	}
	for _, c := range cases {
		if got := maxLevelFor(c.k); got != c.want {
			t.Errorf("maxLevelFor(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	// Bound property: 2^maxLevel - 1 <= k for all k.
	for k := 0; k < 10000; k++ {
		m := maxLevelFor(k)
		if (1<<uint(m))-1 > k {
			t.Fatalf("k=%d: capacity bound 2^%d-1 = %d exceeds k", k, m, (1<<uint(m))-1)
		}
	}
}

func TestInsertFindMinSequential(t *testing.T) {
	d := New[int](1, -1)
	keys := []uint64{9, 3, 7, 1, 5}
	for _, k := range keys {
		if !d.Insert(item.New(k, 0), nil) {
			t.Fatal("unbounded insert overflowed")
		}
	}
	if !d.CheckInvariants() {
		t.Fatal("invariants violated after inserts")
	}
	got := drain(d)
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestSortedDrainLarge(t *testing.T) {
	d := New[int](1, -1)
	src := xrand.NewSeeded(31)
	const n = 5000
	for i := 0; i < n; i++ {
		d.Insert(item.New(src.Uint64()%100000, 0), nil)
	}
	got := drain(d)
	if len(got) != n {
		t.Fatalf("drained %d items, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("drain not sorted")
	}
}

func TestOverflowAtBound(t *testing.T) {
	const k = 7 // maxLevel = 3, local capacity 2^3-1 = 7 items
	var overflowed []*block.Block[int]
	take := func(b *block.Block[int]) *block.Block[int] { overflowed = append(overflowed, b); return nil }
	d := New[int](1, k)
	for i := uint64(0); i < 16; i++ {
		d.Insert(item.New(i, 0), take)
		if live := d.LiveCount(); live > k {
			t.Fatalf("after %d inserts: %d items local, bound %d", i+1, live, k)
		}
		if !d.CheckInvariants() {
			t.Fatalf("invariants violated after insert %d", i)
		}
	}
	if len(overflowed) == 0 {
		t.Fatal("no block overflowed despite exceeding bound")
	}
	// All 16 items must be reachable across local + overflowed blocks.
	total := d.LiveCount()
	for _, b := range overflowed {
		total += b.LiveCount()
	}
	if total != 16 {
		t.Fatalf("items lost: %d reachable of 16", total)
	}
	for _, b := range overflowed {
		if b.Level() < d.MaxLevel() {
			t.Fatalf("overflowed block level %d below threshold %d", b.Level(), d.MaxLevel())
		}
	}
}

func TestKZeroEverythingOverflows(t *testing.T) {
	var got []uint64
	d := New[int](1, 0)
	take := func(b *block.Block[int]) *block.Block[int] {
		for _, it := range b.Items() {
			got = append(got, it.Key())
		}
		return nil
	}
	for i := uint64(0); i < 8; i++ {
		if d.Insert(item.New(i, 0), take) {
			t.Fatal("k=0 insert kept item locally")
		}
	}
	if !d.Empty() || len(got) != 8 {
		t.Fatalf("k=0: local empty=%v, overflowed %d items", d.Empty(), len(got))
	}
}

func TestBloomOwnership(t *testing.T) {
	const owner = 42
	var blocks []*block.Block[int]
	d := New[int](owner, 1) // maxLevel 1: pairs overflow
	take := func(b *block.Block[int]) *block.Block[int] { blocks = append(blocks, b); return nil }
	for i := uint64(0); i < 8; i++ {
		d.Insert(item.New(i, 0), take)
	}
	for _, b := range blocks {
		if !b.Bloom().MayContain(owner) {
			t.Fatal("overflowed block lost owner ID in bloom filter")
		}
	}
}

func TestSpyCopiesWithoutStealing(t *testing.T) {
	victim := New[int](1, -1)
	for i := uint64(0); i < 100; i++ {
		victim.Insert(item.New(i, 0), nil)
	}
	before := victim.LiveCount()
	thief := New[int](2, -1)
	if !thief.Spy(victim) {
		t.Fatal("spy of non-empty victim failed")
	}
	if victim.LiveCount() != before {
		t.Fatalf("spy stole items: victim has %d, had %d", victim.LiveCount(), before)
	}
	if thief.LiveCount() != before {
		t.Fatalf("thief copied %d items, want %d", thief.LiveCount(), before)
	}
	if !thief.CheckInvariants() {
		t.Fatal("thief invariants violated after spy")
	}
	// Deleting via the thief marks the shared Items, so the victim's view
	// shrinks too: exactly-once deletion across both references.
	got := drain(thief)
	if len(got) != before {
		t.Fatalf("thief drained %d, want %d", len(got), before)
	}
	if victim.LiveCount() != 0 {
		t.Fatalf("victim still sees %d live items after thief drained all", victim.LiveCount())
	}
}

func TestSpyEmptyVictim(t *testing.T) {
	victim := New[int](1, -1)
	thief := New[int](2, -1)
	if thief.Spy(victim) {
		t.Fatal("spy of empty victim reported success")
	}
	if thief.Spy(nil) {
		t.Fatal("spy of nil victim reported success")
	}
	if thief.Spy(thief) {
		t.Fatal("self-spy on empty reported success")
	}
}

func TestConsolidateRemovesDeadBlocks(t *testing.T) {
	d := New[int](1, -1)
	items := make([]*item.Item[int], 64)
	for i := range items {
		items[i] = item.New(uint64(i), 0)
		d.Insert(items[i], nil)
	}
	// Kill everything but key 63 (in the big block's head).
	for i := 0; i < 63; i++ {
		items[i].TryTake()
	}
	d.Consolidate()
	if !d.CheckInvariants() {
		t.Fatal("invariants violated after consolidate")
	}
	if live := d.LiveCount(); live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}
	it := d.FindMin()
	if it == nil || it.Key() != 63 {
		t.Fatalf("FindMin after consolidate = %v", it)
	}
}

func TestFindMinSkipsTaken(t *testing.T) {
	d := New[int](1, -1)
	a, b, c := item.New(1, 0), item.New(2, 0), item.New(3, 0)
	d.Insert(a, nil)
	d.Insert(b, nil)
	d.Insert(c, nil)
	a.TryTake()
	if it := d.FindMin(); it == nil || it.Key() != 2 {
		t.Fatalf("FindMin = %v, want key 2", it)
	}
}

// TestConcurrentSpyWhileInserting: one owner keeps inserting and deleting;
// several spies copy concurrently. Checks (under -race) that the publication
// protocol has no races and that spies never crash on torn state; exact-once
// semantics across the copies is enforced by draining everything at the end.
func TestConcurrentSpyWhileInserting(t *testing.T) {
	const items = 20000
	owner := New[int](1, -1)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	spiedKeys := make([][]uint64, 3)
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				thief := New[int](uint64(10+id), -1)
				if thief.Spy(owner) {
					for {
						it := thief.FindMin()
						if it == nil {
							break
						}
						if it.TryTake() {
							spiedKeys[id] = append(spiedKeys[id], it.Key())
						}
					}
				}
			}
		}(s)
	}

	ownerKeys := make([]uint64, 0, items)
	src := xrand.NewSeeded(8)
	for i := 0; i < items; i++ {
		owner.Insert(item.New(src.Uint64()%1_000_000, 0), nil)
		if i%3 == 0 {
			if it := owner.FindMin(); it != nil && it.TryTake() {
				ownerKeys = append(ownerKeys, it.Key())
			}
		}
	}
	close(stop)
	wg.Wait()
	// Owner drains the rest.
	ownerKeys = append(ownerKeys, drain(owner)...)

	total := len(ownerKeys)
	for _, sk := range spiedKeys {
		total += len(sk)
	}
	if total != items {
		t.Fatalf("exactly-once violated: %d items extracted of %d inserted", total, items)
	}
}

func TestStatsCounters(t *testing.T) {
	d := New[int](1, 3) // maxLevel 2
	var overflows int
	for i := uint64(0); i < 32; i++ {
		d.Insert(item.New(i, 0), func(*block.Block[int]) *block.Block[int] { overflows++; return nil })
	}
	st := d.Stats()
	if st.Merges == 0 {
		t.Fatal("no merges counted")
	}
	if int(st.Overflows) != overflows {
		t.Fatalf("Overflows = %d, callback saw %d", st.Overflows, overflows)
	}
}

func BenchmarkInsertUnbounded(b *testing.B) {
	d := New[struct{}](1, -1)
	src := xrand.NewSeeded(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(item.New(src.Uint64(), struct{}{}), nil)
	}
}

func BenchmarkInsertDeletePair(b *testing.B) {
	d := New[struct{}](1, -1)
	src := xrand.NewSeeded(1)
	for i := 0; i < 1024; i++ {
		d.Insert(item.New(src.Uint64(), struct{}{}), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(item.New(src.Uint64(), struct{}{}), nil)
		if it := d.FindMin(); it != nil {
			it.TryTake()
		}
	}
}
