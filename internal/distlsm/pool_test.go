package distlsm

import (
	"sync"
	"sync/atomic"
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// TestPooledDistSequential checks that a pooled Dist behaves like an
// unpooled one and actually recycles blocks.
func TestPooledDistSequential(t *testing.T) {
	plain := New[int](1, -1)
	pooled := New[int](2, -1)
	pooled.SetPool(block.NewPool[int](nil)) // single-threaded: nil guard

	rng := xrand.NewSeeded(21)
	var keys []uint64
	for i := 0; i < 4000; i++ {
		k := rng.Uint64n(1 << 30)
		keys = append(keys, k)
		plain.Insert(item.New(k, int(k)), nil)
		pooled.Insert(item.New(k, int(k)), nil)
	}
	for i := 0; i < len(keys); i++ {
		a, b := plain.FindMin(), pooled.FindMin()
		if (a == nil) != (b == nil) {
			t.Fatalf("FindMin presence diverged at %d", i)
		}
		if a == nil {
			break
		}
		if a.Key() != b.Key() {
			t.Fatalf("FindMin key diverged at %d: %d vs %d", i, a.Key(), b.Key())
		}
		if !a.TryTake() || !b.TryTake() {
			t.Fatal("sequential take failed")
		}
	}
	if plain.FindMin() != nil || pooled.FindMin() != nil {
		t.Fatal("queues not drained")
	}
	if !pooled.CheckInvariants() {
		t.Fatal("pooled invariants violated")
	}
}

// TestPooledEvictionPrivateCopies is the regression test for the eviction
// recycling bug: evictOversized must hand the overflow target a private
// copy (Shared.Insert may recycle what it receives) and retire the
// still-published originals through the guard, never directly. A spy runs
// concurrently throughout a run-time k reduction to give -race a shot at
// any premature reuse.
func TestPooledEvictionPrivateCopies(t *testing.T) {
	var g block.Guard
	d := New[int](1, -1) // unbounded: grow big local blocks first
	d.SetPool(block.NewPool[int](&g))

	rng := xrand.NewSeeded(41)
	inserted := 0
	for i := 0; i < 500; i++ {
		d.Insert(item.New(rng.Uint64n(1<<30), i), nil)
		inserted++
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			// A fresh spy each round keeps copying the full structure.
			spy := New[int](7, -1)
			spy.SetPool(block.NewPool[int](&g))
			spy.Spy(d)
			if !spy.CheckInvariants() {
				panic("spy invariants violated during eviction")
			}
		}
	}()

	// Reduce k at run time: the next inserts evict the oversized prefix.
	d.SetK(3)
	var overflowed []*block.Block[int]
	overflow := func(b *block.Block[int]) *block.Block[int] { overflowed = append(overflowed, b); return nil }
	for i := 0; i < 200; i++ {
		if d.Insert(item.New(rng.Uint64n(1<<30), i), overflow) {
			// kept locally
		}
		inserted++
	}
	stop.Store(true)
	wg.Wait()

	if len(overflowed) == 0 {
		t.Fatal("k reduction evicted nothing — test exercises nothing")
	}
	if !d.CheckInvariants() {
		t.Fatal("victim invariants violated after eviction")
	}
	// Overflowed blocks must be private copies: none of them may alias a
	// block still published in the Dist.
	for _, ob := range overflowed {
		for i := 0; i < d.Blocks(); i++ {
			if d.BlockAt(i) == ob {
				t.Fatal("overflow received a block still published in the Dist")
			}
		}
		if !ob.SortedDesc() {
			t.Fatal("overflowed block unsorted")
		}
	}
	// Conservation: every live item is reachable exactly once across the
	// local blocks and the overflowed copies (duplicates would show up as
	// a surplus; lost items as a deficit).
	live := d.LiveCount()
	for _, ob := range overflowed {
		live += ob.LiveCount()
	}
	if live != inserted {
		t.Fatalf("conservation violated: %d live of %d inserted", live, inserted)
	}
}

// TestPooledSpyConcurrent is the §4.4 distlsm safety check: a victim owner
// inserts and deletes (retiring published blocks into its pool) while
// spies copy from it through the shared guard. Under -race this verifies
// retired blocks are never recycled while a spy can still read them.
func TestPooledSpyConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency stress; skipped with -short")
	}
	var g block.Guard
	victim := New[int](1, -1)
	victim.SetPool(block.NewPool[int](&g))

	const ops = 30000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			spy := New[int](uint64(id)+10, -1)
			spy.SetPool(block.NewPool[int](&g))
			for !stop.Load() {
				spy.Spy(victim)
				// Drain the copies so the spy's own structure keeps cycling.
				for it := spy.FindMin(); it != nil; it = spy.FindMin() {
					it.TryTake()
				}
				if !spy.CheckInvariants() {
					panic("spy invariants violated")
				}
			}
		}(s)
	}

	rng := xrand.NewSeeded(31)
	for i := 0; i < ops; i++ {
		victim.Insert(item.New(rng.Uint64n(1<<28), i), nil)
		if i%3 == 0 {
			if it := victim.FindMin(); it != nil {
				it.TryTake()
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if !victim.CheckInvariants() {
		t.Fatal("victim invariants violated")
	}
	if victim.pool.Stats().Retired == 0 {
		t.Fatal("victim never retired a published block — test exercises nothing")
	}
}
