package distlsm

import (
	"math"
	"sync"
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// newCached returns a Dist with the per-block min cache on, as the combined
// queue configures it by default.
func newCached(ownerID uint64, k int) *Dist[int] {
	d := New[int](ownerID, k)
	d.SetMinCaching(true)
	return d
}

// TestMaxLevelForHugeK is the regression test for the shift overflow: for k
// near the int range the naive `1<<uint(level+1) <= k+1` loop shifts past
// the word width (Go defines that as 0) and never terminates. The threshold
// must clamp to block.MaxLevel instead.
func TestMaxLevelForHugeK(t *testing.T) {
	for _, k := range []int{
		1<<block.MaxLevel - 2, // one below the clamp: still computed exactly
		1<<block.MaxLevel - 1,
		1 << block.MaxLevel,
		1 << 60,
		1<<62 - 1,
		1 << 62,
		math.MaxInt - 1,
		math.MaxInt, // k+1 overflows int
	} {
		got := maxLevelFor(k)
		if got > block.MaxLevel {
			t.Fatalf("maxLevelFor(%d) = %d exceeds block.MaxLevel", k, got)
		}
		// Bound property: 2^level - 1 <= k must still hold at the clamp.
		if (1<<uint(got))-1 > k {
			t.Fatalf("maxLevelFor(%d) = %d violates capacity bound", k, got)
		}
	}
	if got := New[int](1, math.MaxInt).MaxLevel(); got != block.MaxLevel {
		t.Fatalf("New with huge k: MaxLevel() = %d, want %d", got, block.MaxLevel)
	}
	d := New[int](1, 0)
	d.SetK(math.MaxInt) // the run-time reconfiguration path must clamp too
	if got := d.MaxLevel(); got != block.MaxLevel {
		t.Fatalf("SetK with huge k: MaxLevel() = %d, want %d", got, block.MaxLevel)
	}
}

// TestMinCacheSequentialEquivalence runs the same randomized owner workload
// against a cached and an uncached Dist: every FindMin observation and the
// full drain order must be identical — the cache is a pure optimization.
func TestMinCacheSequentialEquivalence(t *testing.T) {
	cached := newCached(1, -1)
	plain := New[int](1, -1)
	rng := xrand.NewSeeded(99)
	for op := 0; op < 20_000; op++ {
		if rng.Intn(2) == 0 {
			k := rng.Uint64n(1 << 20)
			cached.Insert(item.New(k, 0), nil)
			plain.Insert(item.New(k, 0), nil)
		} else {
			a, b := cached.FindMin(), plain.FindMin()
			switch {
			case (a == nil) != (b == nil):
				t.Fatalf("op %d: cached FindMin %v, plain %v", op, a, b)
			case a == nil:
				continue
			case a.Key() != b.Key():
				t.Fatalf("op %d: cached min %d, plain min %d", op, a.Key(), b.Key())
			}
			if !a.TryTake() || !b.TryTake() {
				t.Fatalf("op %d: sequential TryTake failed", op)
			}
		}
	}
	got, want := drain(cached), drain(plain)
	if len(got) != len(want) {
		t.Fatalf("drain lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("drain diverges at %d: cached %d, plain %d", i, got[i], want[i])
		}
	}
}

// TestMinCacheOverflowAndSetK exercises the eviction paths that must keep
// the cache aligned: bounded inserts overflow blocks, and a run-time k
// reduction evicts via the compaction shift.
func TestMinCacheOverflowAndSetK(t *testing.T) {
	var overflowed []uint64
	overflow := func(b *block.Block[int]) *block.Block[int] {
		for _, it := range b.Items() {
			if !it.Taken() {
				overflowed = append(overflowed, it.Key())
			}
		}
		return nil
	}
	d := newCached(1, 255)
	rng := xrand.NewSeeded(5)
	inserted := map[uint64]bool{}
	for i := 0; i < 4_000; i++ {
		k := rng.Uint64n(1 << 30)
		if inserted[k] {
			continue
		}
		inserted[k] = true
		d.Insert(item.New(k, 0), overflow)
		if i%5 == 0 {
			d.FindMin() // interleave cached reads with the mutations
		}
		if i == 2_000 {
			d.SetK(3) // shrink the bound: the next insert evicts a prefix
		}
	}
	got := append(drain(d), overflowed...)
	if len(got) != len(inserted) {
		t.Fatalf("conservation violated: %d keys out, %d in", len(got), len(inserted))
	}
	for _, k := range got {
		if !inserted[k] {
			t.Fatalf("alien key %d", k)
		}
	}
}

// TestMinCacheSpyAppends: spying into a cached (and warmed) Dist must
// extend the cache consistently — the spied minima are immediately visible
// to FindMin.
func TestMinCacheSpyAppends(t *testing.T) {
	victim := New[int](2, -1)
	for _, k := range []uint64{80, 40, 60, 20} {
		victim.Insert(item.New(k, 0), nil)
	}
	d := newCached(1, -1)
	d.Insert(item.New(100, 0), nil)
	it := d.FindMin() // warm the cache
	if it == nil || it.Key() != 100 {
		t.Fatalf("pre-spy minimum = %v, want key 100", it)
	}
	if !it.TryTake() {
		t.Fatal("sequential TryTake failed")
	}
	if d.FindMin() != nil { // consolidates the dead block away, cache stays valid-empty
		t.Fatal("minimum visible after drain")
	}
	if !d.Spy(victim) {
		t.Fatal("spy found nothing")
	}
	if got := d.FindMin(); got == nil || got.Key() != 20 {
		t.Fatalf("post-spy FindMin = %v, want key 20", got)
	}
	if !d.CheckInvariants() {
		t.Fatal("invariants violated after spy")
	}
}

// TestMinCacheConcurrentTakers: while the owner runs a cached insert/find
// loop, other goroutines spy the owner's blocks and take items — the exact
// cross-thread invalidation the taken-flag validation must catch. Every key
// is extracted at most once, and owner + spies together account for all.
func TestMinCacheConcurrentTakers(t *testing.T) {
	const (
		spies = 4
		n     = 20_000
	)
	owner := newCached(1, -1)
	var wg sync.WaitGroup
	taken := make([][]uint64, spies+1)
	stop := make(chan struct{})
	for s := 0; s < spies; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d := New[int](uint64(id+2), -1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !d.Spy(owner) {
					continue
				}
				for {
					it := d.FindMin()
					if it == nil {
						break
					}
					if it.TryTake() {
						taken[id+1] = append(taken[id+1], it.Key())
					}
				}
			}
		}(s)
	}
	rng := xrand.NewSeeded(17)
	for i := 0; i < n; i++ {
		owner.Insert(item.New(uint64(i), 0), nil)
		if rng.Intn(2) == 0 {
			if it := owner.FindMin(); it != nil && it.TryTake() {
				taken[0] = append(taken[0], it.Key())
			}
		}
	}
	for {
		it := owner.FindMin()
		if it == nil {
			break
		}
		if it.TryTake() {
			taken[0] = append(taken[0], it.Key())
		}
	}
	close(stop)
	wg.Wait()
	seen := make(map[uint64]int)
	total := 0
	for _, keys := range taken {
		for _, k := range keys {
			seen[k]++
			total++
		}
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %d taken %d times", k, cnt)
		}
	}
	if total != n {
		t.Fatalf("extracted %d keys, want %d", total, n)
	}
}
