package segment

import (
	"errors"
	"fmt"
	"testing"

	"klsm/internal/walfault"
)

func sampleEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Key:   uint64(i * 3),
			Seq:   uint64(1000 + i),
			Value: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		in := sampleEntries(n)
		out, err := Parse(Append(nil, in))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != len(in) {
			t.Fatalf("n=%d: got %d entries", n, len(out))
		}
		for i := range in {
			if out[i].Key != in[i].Key || out[i].Seq != in[i].Seq || string(out[i].Value) != string(in[i].Value) {
				t.Fatalf("n=%d entry %d: got %+v want %+v", n, i, out[i], in[i])
			}
		}
	}
}

// Every single-byte flip anywhere in a segment must be detected.
func TestSegmentFlipAnyByte(t *testing.T) {
	buf := Append(nil, sampleEntries(5))
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x08
		if _, err := Parse(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err %v, want ErrCorrupt", i, err)
		}
	}
}

func TestSegmentTruncated(t *testing.T) {
	buf := Append(nil, sampleEntries(3))
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Parse(buf[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: err %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestSegmentWriteRead(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	in := sampleEntries(42)
	if err := Write(fs, "seg-000001", in); err != nil {
		t.Fatal(err)
	}
	if fs.SyncedLen("seg-000001") == 0 {
		t.Fatal("Write did not fsync")
	}
	out, err := Read(fs, "seg-000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d entries, want %d", len(out), len(in))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cases := []Manifest{
		{NextSeq: 0, WAL: "wal-000001"},
		{NextSeq: 12345, WAL: "wal-000009", Segments: []Ref{
			{Name: "seg-000001", Count: 100},
			{Name: "seg-000002", Count: 0},
		}},
	}
	for i, m := range cases {
		got, err := ParseManifest(AppendManifest(nil, m))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.NextSeq != m.NextSeq || got.WAL != m.WAL || len(got.Segments) != len(m.Segments) {
			t.Fatalf("case %d: got %+v want %+v", i, got, m)
		}
		for j := range m.Segments {
			if got.Segments[j] != m.Segments[j] {
				t.Fatalf("case %d segment %d: got %+v want %+v", i, j, got.Segments[j], m.Segments[j])
			}
		}
	}
}

// Any single-byte mutation of a manifest must be rejected.
func TestManifestFlipAnyByte(t *testing.T) {
	buf := AppendManifest(nil, Manifest{NextSeq: 77, WAL: "wal-000002", Segments: []Ref{{Name: "seg-000001", Count: 9}}})
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x04
		if _, err := ParseManifest(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err %v, want ErrCorrupt (manifest %q)", i, err, mut)
		}
	}
}

func TestManifestRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("hello\n"),
		[]byte("klsm-manifest v1\n"),
		[]byte("klsm-manifest v2\nnextseq 0\nwal w\ncrc 00000000\n"),
	}
	for i, b := range bad {
		if _, err := ParseManifest(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("case %d: err %v, want ErrCorrupt", i, err)
		}
	}
}

// WriteManifest publishes atomically: after a crash during publication the
// old manifest is still intact.
func TestManifestAtomicPublish(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	m1 := Manifest{NextSeq: 1, WAL: "wal-000001"}
	if err := WriteManifest(fs, m1); err != nil {
		t.Fatal(err)
	}
	m2 := Manifest{NextSeq: 2, WAL: "wal-000002"}
	if err := WriteManifest(fs, m2); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := ReadManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextSeq != 2 || got.WAL != "wal-000002" {
		t.Fatalf("after crash: %+v, want the newest manifest", got)
	}
}
