// Package segment implements the checkpoint half of the durability layer:
// sorted on-disk runs of live items plus the MANIFEST that names them.
//
// A k-LSM checkpoint is almost a structural no-op because the queue's
// in-memory form — immutable sorted blocks — already *is* the on-disk form
// (the LSM/SSTable duality). A checkpoint snapshots every live item under
// the Quiesce barrier, sorts them once, and writes size-capped segment
// files; recovery republishes each segment as a single pre-sorted block, so
// loading a segment costs one block publication instead of one insert per
// item.
//
// # Segment format
//
//	magic   "KLSMSEG1"
//	count   uvarint
//	entries count × (key uvarint, seq uvarint, vlen uvarint, value)
//	crc     uint32 LE — CRC32C over everything before it
//
// # MANIFEST format
//
// A short text file, atomically published by write-to-temp + rename:
//
//	klsm-manifest v1
//	nextseq <n>
//	wal <name>
//	frozen <name>              (zero or more)
//	segment <name> <count>     (zero or more)
//	crc <8 hex digits>         (CRC32C of every preceding byte)
//
// Frozen lines name retired WAL files a checkpoint rotated away from but has
// not yet compacted into segments: recovery replays them (oldest first)
// before the live WAL. A manifest without frozen lines — every manifest
// written before log-structured checkpoints existed — parses identically, so
// the format change is backward compatible.
//
// The MANIFEST is the recovery root: it names the live WAL file and the
// segment set, and everything in the directory it does not name is garbage
// from an interrupted checkpoint, deleted on open. Both parsers return
// typed errors (never panic) on arbitrary input and cap every allocation,
// which the fuzz suite enforces.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"klsm/internal/walfault"
)

// ManifestName is the fixed name of the recovery root in a queue directory.
const ManifestName = "MANIFEST"

// manifestTmp is the scratch name the manifest is staged under before the
// atomic rename.
const manifestTmp = "MANIFEST.tmp"

// MaxValue caps one entry's value length (decode-time allocation bound).
const MaxValue = 1 << 24

// MaxEntries caps the declared entry count of one segment file.
const MaxEntries = 1 << 28

// maxManifest caps the manifest size a parser will look at.
const maxManifest = 1 << 20

// ErrCorrupt reports a segment or manifest that fails structural
// validation or its checksum. It is a refusal, not a panic: durability
// callers surface it so the operator can decide, rather than silently
// recovering a partial queue.
var ErrCorrupt = errors.New("segment: corrupt")

var segMagic = []byte("KLSMSEG1")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one checkpointed item.
type Entry struct {
	// Key is the priority key.
	Key uint64
	// Seq is the durability sequence number the item was inserted under.
	Seq uint64
	// Value is the codec-encoded payload. Entries returned by Parse alias
	// the input buffer.
	Value []byte
}

// Append serializes entries into a segment image appended to dst.
func Append(dst []byte, entries []Entry) []byte {
	start := len(dst)
	dst = append(dst, segMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.Key)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// Write creates the named segment file on fs, writes entries, and fsyncs it.
func Write(fs walfault.FS, name string, entries []Entry) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	buf := Append(nil, entries)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Parse decodes a segment image. Returned values alias data. Damage of any
// kind — bad magic, bad checksum, counts or lengths that do not add up —
// returns an error wrapping ErrCorrupt; a checkpoint has no torn-tail
// tolerance because segments are only ever named by a manifest written
// after their fsync completed.
func Parse(data []byte) ([]Entry, error) {
	if len(data) < len(segMagic)+1+4 {
		return nil, fmt.Errorf("%w: segment too short (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
	}
	rest := body[len(segMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > MaxEntries {
		return nil, fmt.Errorf("%w: bad entry count", ErrCorrupt)
	}
	rest = rest[n:]
	// The checksum already vouches for the bytes; the bounds checks below
	// guard against a miswritten (not corrupted) file and hostile fuzz
	// input, where the checksum was computed over garbage.
	entries := make([]Entry, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		var e Entry
		e.Key, n = binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: entry %d: bad key", ErrCorrupt, i)
		}
		rest = rest[n:]
		e.Seq, n = binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: entry %d: bad seq", ErrCorrupt, i)
		}
		rest = rest[n:]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || vlen > MaxValue || uint64(len(rest)-n) < vlen {
			return nil, fmt.Errorf("%w: entry %d: bad value length", ErrCorrupt, i)
		}
		e.Value = rest[n : n+int(vlen)]
		rest = rest[n+int(vlen):]
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d entries", ErrCorrupt, len(rest), count)
	}
	return entries, nil
}

// Read loads and parses the named segment file.
func Read(fs walfault.FS, name string) ([]Entry, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	entries, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return entries, nil
}

// Ref names one segment in a manifest.
type Ref struct {
	// Name is the segment's file name.
	Name string
	// Count is the entry count recorded at checkpoint time, validated
	// against the parsed segment on load.
	Count int64
}

// Manifest is the recovery root of a queue directory.
type Manifest struct {
	// NextSeq is the first durability sequence number not yet assigned at
	// checkpoint time; recovery resumes the counter at or above it.
	NextSeq uint64
	// WAL is the name of the live write-ahead-log file.
	WAL string
	// Frozen are retired WAL files awaiting compaction, in append order
	// (oldest first): a checkpoint publishes the live WAL here before
	// rotating, and clears the list once their records are merged into
	// Segments. Recovery replays them before WAL.
	Frozen []string
	// Segments are the checkpoint segments, in load order.
	Segments []Ref
}

// AppendManifest serializes m (including the trailing crc line).
func AppendManifest(dst []byte, m Manifest) []byte {
	start := len(dst)
	dst = append(dst, "klsm-manifest v1\n"...)
	dst = append(dst, "nextseq "...)
	dst = strconv.AppendUint(dst, m.NextSeq, 10)
	dst = append(dst, '\n')
	dst = append(dst, "wal "...)
	dst = append(dst, m.WAL...)
	dst = append(dst, '\n')
	for _, f := range m.Frozen {
		dst = append(dst, "frozen "...)
		dst = append(dst, f...)
		dst = append(dst, '\n')
	}
	for _, s := range m.Segments {
		dst = append(dst, "segment "...)
		dst = append(dst, s.Name...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, s.Count, 10)
		dst = append(dst, '\n')
	}
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = append(dst, "crc "...)
	dst = fmt.Appendf(dst, "%08x", crc)
	return append(dst, '\n')
}

// ParseManifest decodes a manifest image, validating structure and the crc
// line. All failures wrap ErrCorrupt; input is never trusted for sizes.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) > maxManifest {
		return m, fmt.Errorf("%w: manifest too large (%d bytes)", ErrCorrupt, len(data))
	}
	text := string(data)
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" {
		return m, fmt.Errorf("%w: manifest not newline-terminated", ErrCorrupt)
	}
	lines = lines[:len(lines)-1]
	last := lines[len(lines)-1]
	sum, ok := strings.CutPrefix(last, "crc ")
	if !ok || len(sum) != 8 {
		return m, fmt.Errorf("%w: missing crc line", ErrCorrupt)
	}
	want, err := strconv.ParseUint(sum, 16, 32)
	if err != nil {
		return m, fmt.Errorf("%w: bad crc line", ErrCorrupt)
	}
	covered := len(text) - len(last) - 1
	if crc32.Checksum(data[:covered], castagnoli) != uint32(want) {
		return m, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	body := lines[:len(lines)-1]
	if len(body) < 3 || body[0] != "klsm-manifest v1" {
		return m, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	ns, ok := strings.CutPrefix(body[1], "nextseq ")
	if !ok {
		return m, fmt.Errorf("%w: missing nextseq", ErrCorrupt)
	}
	if m.NextSeq, err = strconv.ParseUint(ns, 10, 64); err != nil {
		return m, fmt.Errorf("%w: bad nextseq", ErrCorrupt)
	}
	if m.WAL, ok = strings.CutPrefix(body[2], "wal "); !ok || m.WAL == "" || strings.ContainsAny(m.WAL, "/\\ ") {
		return m, fmt.Errorf("%w: bad wal line", ErrCorrupt)
	}
	for _, line := range body[3:] {
		if name, ok := strings.CutPrefix(line, "frozen "); ok {
			if name == "" || strings.ContainsAny(name, "/\\ ") {
				return m, fmt.Errorf("%w: bad frozen line %q", ErrCorrupt, line)
			}
			if len(m.Segments) > 0 {
				return m, fmt.Errorf("%w: frozen line %q after segment lines", ErrCorrupt, line)
			}
			m.Frozen = append(m.Frozen, name)
			continue
		}
		rest, ok := strings.CutPrefix(line, "segment ")
		if !ok {
			return m, fmt.Errorf("%w: unknown line %q", ErrCorrupt, line)
		}
		name, countStr, ok := strings.Cut(rest, " ")
		if !ok || name == "" || strings.ContainsAny(name, "/\\") {
			return m, fmt.Errorf("%w: bad segment line %q", ErrCorrupt, line)
		}
		count, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || count < 0 || count > MaxEntries {
			return m, fmt.Errorf("%w: bad segment count in %q", ErrCorrupt, line)
		}
		m.Segments = append(m.Segments, Ref{Name: name, Count: count})
	}
	return m, nil
}

// WriteManifest atomically publishes m as the directory's MANIFEST: write
// to a temp file, fsync, rename over ManifestName, fsync the directory.
// After it returns nil, recovery will see exactly this manifest (or a
// complete older one — never a mix).
func WriteManifest(fs walfault.FS, m Manifest) error {
	f, err := fs.Create(manifestTmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(AppendManifest(nil, m)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(manifestTmp, ManifestName); err != nil {
		return err
	}
	return fs.SyncDir()
}

// ReadManifest loads and parses the directory's MANIFEST.
func ReadManifest(fs walfault.FS) (Manifest, error) {
	data, err := fs.ReadFile(ManifestName)
	if err != nil {
		return Manifest{}, err
	}
	return ParseManifest(data)
}
