// Package spin provides a test-and-test-and-set spinlock.
//
// The paper's throughput baseline "Heap + Lock" (Figure 3) protects a
// sequential binary heap with a spinlock, and the MultiQueue baseline
// (Rihani et al.) guards each of its c·T heaps with one. sync.Mutex parks
// goroutines in the runtime after brief spinning, which changes the contention
// profile these experiments are about, so we reproduce the classic TATAS lock
// with exponential backoff used by the original benchmarks.
package spin

import (
	"runtime"
	"sync/atomic"
)

// Mutex is a test-and-test-and-set spinlock with bounded exponential backoff.
// The zero value is an unlocked mutex. Mutex must not be copied after first
// use.
type Mutex struct {
	state atomic.Uint32
}

const (
	unlocked = 0
	locked   = 1

	// maxBackoff bounds the exponential backoff loop. Beyond ~1<<10 spins the
	// lock holder is almost certainly descheduled and Gosched is the right
	// call, which the slow path below reaches.
	maxBackoff = 1 << 10
)

// Lock acquires the mutex, spinning until it is available.
func (m *Mutex) Lock() {
	if m.state.CompareAndSwap(unlocked, locked) {
		return // fast path: uncontended
	}
	backoff := 1
	for {
		// Test-and-test-and-set: spin on a plain load first so waiting
		// threads hammer their local cache line copy instead of the bus.
		for m.state.Load() == locked {
			for i := 0; i < backoff; i++ {
				procYield()
			}
			if backoff < maxBackoff {
				backoff <<= 1
			} else {
				// Let the runtime schedule someone else (e.g. the holder)
				// when we are oversubscribed.
				runtime.Gosched()
			}
		}
		if m.state.CompareAndSwap(unlocked, locked) {
			return
		}
	}
}

// TryLock attempts to acquire the mutex without spinning and reports whether
// it succeeded. MultiQueue delete-min relies on TryLock to skip a queue that
// another thread is operating on.
func (m *Mutex) TryLock() bool {
	return m.state.Load() == unlocked && m.state.CompareAndSwap(unlocked, locked)
}

// Unlock releases the mutex. It panics if the mutex is not locked, which
// always indicates a bug in the caller.
func (m *Mutex) Unlock() {
	if old := m.state.Swap(unlocked); old != locked {
		panic("spin: unlock of unlocked Mutex")
	}
}

// procYield burns a few cycles without touching memory. On oversubscribed
// schedulers a pure busy loop starves the holder, so callers escalate to
// runtime.Gosched after maxBackoff.
//
//go:noinline
func procYield() {
	// The loop is kept opaque to the inliner so it is not optimized away.
	for i := 0; i < 4; i++ {
		_ = i
	}
}
