package spin

import (
	"runtime"
	"sync"
	"testing"
)

func TestLockUnlock(t *testing.T) {
	var m Mutex
	m.Lock()
	m.Unlock()
	m.Lock()
	m.Unlock()
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

// TestMutualExclusion increments a plain int under the lock from many
// goroutines; run with -race to let the race detector verify the
// happens-before edges of the CAS/Swap pair.
func TestMutualExclusion(t *testing.T) {
	const goroutines = 8
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	var m Mutex
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := goroutines * iters; counter != want {
		t.Fatalf("counter = %d, want %d (lost updates => lock broken)", counter, want)
	}
}

func TestTryLockUnderContention(t *testing.T) {
	var m Mutex
	var wg sync.WaitGroup
	counter := 0
	acquired := make([]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if m.TryLock() {
					counter++
					acquired[id]++
					m.Unlock()
				} else {
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, a := range acquired {
		total += a
	}
	if counter != total {
		t.Fatalf("counter %d != total acquisitions %d", counter, total)
	}
}

func BenchmarkUncontendedLock(b *testing.B) {
	var m Mutex
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

func BenchmarkContendedLock(b *testing.B) {
	var m Mutex
	var shared int
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Lock()
			shared++
			m.Unlock()
		}
	})
	_ = shared
}
