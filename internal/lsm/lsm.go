// Package lsm implements the sequential log-structured merge-tree priority
// queue of paper §3.
//
// The queue maintains a logarithmic number of sorted blocks with strictly
// decreasing levels (largest first). At most one block per level may exist;
// inserts create a level-0 block and merge from the small end until the
// invariant holds again, and delete-min shrinks blocks and re-merges as
// needed, giving O(log n) amortized operations.
//
// This package is single-threaded. It serves three roles: the conceptual
// basis the concurrent variants build on, the thread-local queue semantics
// reference in tests, and a fast sequential baseline.
package lsm

import (
	"klsm/internal/block"
	"klsm/internal/item"
)

// LSM is a sequential log-structured merge-tree priority queue. The zero
// value is not usable; call New.
type LSM[V any] struct {
	// blocks is ordered by strictly decreasing level: blocks[0] is the
	// largest run, blocks[len-1] the smallest.
	blocks []*block.Block[V]
	drop   block.DropFunc[V]
	// live tracks the exact number of live items: inserts minus delete-mins
	// minus items removed by the drop callback during maintenance.
	live int
}

// New returns an empty sequential LSM priority queue.
func New[V any]() *LSM[V] {
	return &LSM[V]{}
}

// SetDrop installs the lazy-deletion callback (paper §4.5). Items for which
// drop returns true are discarded whenever maintenance copies or merges
// blocks. Pass nil to disable.
func (l *LSM[V]) SetDrop(drop block.DropFunc[V]) { l.drop = drop }

// Insert adds key with its payload.
func (l *LSM[V]) Insert(key uint64, value V) {
	l.InsertItem(item.New(key, value))
}

// InsertItem adds a pre-wrapped item (paper Figure 2: create a level-0 block,
// then merge from the tail until no two blocks share a level).
func (l *LSM[V]) InsertItem(it *item.Item[V]) {
	nb := block.New[V](0)
	nb.Append(it)
	if nb.Empty() {
		return // item was already taken
	}
	l.live++
	l.pushMerging(nb)
}

// pushMerging appends nb (the smallest run) and restores the strictly
// decreasing level invariant by merging from the tail. When a drop callback
// is installed it is wrapped to keep the live count exact; without one,
// merges cannot change the live count (they only filter items that were
// already logically deleted and accounted for).
func (l *LSM[V]) pushMerging(nb *block.Block[V]) {
	drop := l.drop
	if drop != nil {
		inner := l.drop
		drop = func(key uint64, value V) bool {
			if inner(key, value) {
				l.live--
				return true
			}
			return false
		}
	}
	i := len(l.blocks)
	for i > 0 && l.blocks[i-1].Level() <= nb.Level() {
		nb = block.Merge(l.blocks[i-1], nb, drop)
		i--
	}
	l.blocks = append(l.blocks[:i], nb)
	if nb.Empty() {
		l.blocks = l.blocks[:i]
	}
}

// PeekMin returns the live minimum item without removing it, or nil if the
// queue is empty.
func (l *LSM[V]) PeekMin() *item.Item[V] {
	it, _ := l.minItem()
	return it
}

// minItem locates the block holding the live minimum.
func (l *LSM[V]) minItem() (*item.Item[V], int) {
	var best *item.Item[V]
	bestIdx := -1
	for i, b := range l.blocks {
		it, _ := b.LiveMin()
		if it == nil {
			continue
		}
		if best == nil || it.Key() < best.Key() {
			best, bestIdx = it, i
		}
	}
	return best, bestIdx
}

// DeleteMin removes and returns the minimum key and its payload. ok is false
// if the queue is empty. Items the drop callback reports stale are discarded
// here as well as during merges, so DeleteMin never returns a dropped item.
func (l *LSM[V]) DeleteMin() (key uint64, value V, ok bool) {
	for {
		it, idx := l.minItem()
		if it == nil {
			var zero V
			return 0, zero, false
		}
		it.TryTake()
		l.live--
		l.shrinkAt(idx)
		if l.drop != nil && l.drop(it.Key(), it.Value()) {
			continue
		}
		return it.Key(), it.Value(), true
	}
}

// shrinkAt shrinks the block at idx after a removal and restores the level
// invariant by re-merging the suffix if the block's level dropped.
func (l *LSM[V]) shrinkAt(idx int) {
	b := l.blocks[idx]
	s := b.Shrink()
	if s == b && !s.Empty() {
		return // level unchanged, invariant intact
	}
	// The block at idx shrank below its old level: it may now collide with
	// smaller blocks to its right. Rebuild the suffix via the same merging
	// push used by insert.
	suffix := append([]*block.Block[V](nil), l.blocks[idx+1:]...)
	l.blocks = l.blocks[:idx]
	if !s.Empty() {
		l.pushMerging(s)
	}
	for _, sb := range suffix {
		if !sb.Empty() {
			l.pushMerging(sb)
		}
	}
}

// Len returns the exact number of live items.
func (l *LSM[V]) Len() int { return l.live }

// Empty reports whether no live item remains.
func (l *LSM[V]) Empty() bool { return l.live == 0 }

// Blocks returns the current number of blocks; exposed for tests asserting
// the logarithmic-structure invariant.
func (l *LSM[V]) Blocks() int { return len(l.blocks) }

// CheckInvariants verifies the structural invariants (strictly decreasing
// levels, per-block descending order, level occupancy) and returns false on
// the first violation. Used by tests and the property suite.
func (l *LSM[V]) CheckInvariants() bool {
	for i, b := range l.blocks {
		if i > 0 && l.blocks[i-1].Level() <= b.Level() {
			return false
		}
		if !b.SortedDesc() {
			return false
		}
		if b.Filled() > b.Capacity() {
			return false
		}
		if b.Empty() {
			return false
		}
	}
	return true
}
