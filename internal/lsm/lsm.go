// Package lsm implements the sequential log-structured merge-tree priority
// queue of paper §3.
//
// The queue maintains a logarithmic number of sorted blocks with strictly
// decreasing levels (largest first). At most one block per level may exist;
// inserts create a level-0 block and merge from the small end until the
// invariant holds again, and delete-min shrinks blocks and re-merges as
// needed, giving O(log n) amortized operations.
//
// This package is single-threaded. It serves three roles: the conceptual
// basis the concurrent variants build on, the thread-local queue semantics
// reference in tests, and a fast sequential baseline.
package lsm

import (
	"klsm/internal/block"
	"klsm/internal/item"
)

// LSM is a sequential log-structured merge-tree priority queue. The zero
// value is not usable; call New.
type LSM[V any] struct {
	// blocks is ordered by strictly decreasing level: blocks[0] is the
	// largest run, blocks[len-1] the smallest.
	blocks []*block.Block[V]
	drop   block.DropFunc[V]
	// live tracks the exact number of live items: inserts minus delete-mins
	// minus items removed by the drop callback during maintenance.
	live int

	// pool/items are the §4.4 recycling free lists (NewPooled). The
	// sequential LSM is the one structure where the full scheme applies:
	// with a single thread and no spies, every item lives in exactly one
	// reachable block, so a block is recyclable the moment it is merged
	// away and an item the moment DeleteMin trims it — no guard needed
	// (a nil-guard pool treats Retire as an immediate Put).
	pool  *block.Pool[V]
	items *item.Pool[V]
	// scratch backs shrinkAt's suffix rebuild without a per-call allocation.
	scratch []*block.Block[V]
}

// New returns an empty sequential LSM priority queue.
func New[V any]() *LSM[V] {
	return &LSM[V]{}
}

// NewPooled returns an empty sequential LSM that recycles blocks and items
// through §4.4-style free lists. Items returned by DeleteMin are reused by
// later Inserts, so callers must not retain references into the queue across
// operations (InsertItem-provided items are exempt: the LSM never recycles
// items it did not allocate... it cannot tell them apart, so with pooling
// enabled InsertItem is disallowed and panics).
func NewPooled[V any]() *LSM[V] {
	return &LSM[V]{
		pool:  block.NewPool[V](nil),
		items: item.NewPool[V](),
	}
}

// SetDrop installs the lazy-deletion callback (paper §4.5). Items for which
// drop returns true are discarded whenever maintenance copies or merges
// blocks. Pass nil to disable.
func (l *LSM[V]) SetDrop(drop block.DropFunc[V]) { l.drop = drop }

// Insert adds key with its payload.
func (l *LSM[V]) Insert(key uint64, value V) {
	l.insertItem(l.items.Get(key, value))
}

// InsertItem adds a pre-wrapped item (paper Figure 2: create a level-0 block,
// then merge from the tail until no two blocks share a level). Disallowed on
// a pooled LSM: the queue would recycle the item on DeleteMin and clobber
// the caller's reference.
func (l *LSM[V]) InsertItem(it *item.Item[V]) {
	if l.items != nil {
		panic("lsm: InsertItem on a pooled LSM (the item would be recycled)")
	}
	l.insertItem(it)
}

func (l *LSM[V]) insertItem(it *item.Item[V]) {
	nb := l.pool.Get(0)
	nb.Append(it)
	if nb.Empty() {
		l.pool.Put(nb)
		return // item was already taken
	}
	l.live++
	l.pushMerging(nb)
}

// pushMerging appends nb (the smallest run) and restores the strictly
// decreasing level invariant by merging from the tail. When a drop callback
// is installed it is wrapped to keep the live count exact; without one,
// merges cannot change the live count (they only filter items that were
// already logically deleted and accounted for).
func (l *LSM[V]) pushMerging(nb *block.Block[V]) {
	drop := l.drop
	if drop != nil {
		inner := l.drop
		drop = func(key uint64, value V) bool {
			if inner(key, value) {
				l.live--
				return true
			}
			return false
		}
	}
	i := len(l.blocks)
	for i > 0 && l.blocks[i-1].Level() <= nb.Level() {
		merged := block.MergeIn(l.pool, l.blocks[i-1], nb, drop)
		// Single-threaded: both inputs are unreachable the moment the merge
		// replaces them, so they recycle immediately (§4.4).
		l.pool.Put(l.blocks[i-1])
		l.pool.Put(nb)
		nb = merged
		i--
	}
	l.blocks = append(l.blocks[:i], nb)
	if nb.Empty() {
		l.blocks = l.blocks[:i]
		l.pool.Put(nb)
	}
}

// PeekMin returns the live minimum item without removing it, or nil if the
// queue is empty.
func (l *LSM[V]) PeekMin() *item.Item[V] {
	it, _ := l.minItem()
	return it
}

// minItem locates the block holding the live minimum.
func (l *LSM[V]) minItem() (*item.Item[V], int) {
	var best *item.Item[V]
	bestIdx := -1
	for i, b := range l.blocks {
		it, _ := b.LiveMin()
		if it == nil {
			continue
		}
		if best == nil || it.Key() < best.Key() {
			best, bestIdx = it, i
		}
	}
	return best, bestIdx
}

// DeleteMin removes and returns the minimum key and its payload. ok is false
// if the queue is empty. Items the drop callback reports stale are discarded
// here as well as during merges, so DeleteMin never returns a dropped item.
func (l *LSM[V]) DeleteMin() (key uint64, value V, ok bool) {
	for {
		it, idx := l.minItem()
		if it == nil {
			var zero V
			return 0, zero, false
		}
		it.TryTake()
		l.live--
		l.shrinkAt(idx)
		key, value = it.Key(), it.Value()
		// After shrinkAt the taken item has been trimmed out of the only
		// block that referenced it (it was that block's live tail minimum),
		// so it is unreachable and recycles (§4.4). Pooled LSMs allocate
		// every item themselves (InsertItem is disallowed), so the pointer
		// is exclusively ours.
		l.items.Put(it)
		if l.drop != nil && l.drop(key, value) {
			continue
		}
		return key, value, true
	}
}

// shrinkAt shrinks the block at idx after a removal and restores the level
// invariant by re-merging the suffix if the block's level dropped.
func (l *LSM[V]) shrinkAt(idx int) {
	b := l.blocks[idx]
	s := b.ShrinkIn(l.pool)
	if s == b && !s.Empty() {
		return // level unchanged, invariant intact
	}
	if s != b {
		l.pool.Put(b) // replaced by a compacted copy: b is unreachable
	}
	// The block at idx shrank below its old level: it may now collide with
	// smaller blocks to its right. Rebuild the suffix via the same merging
	// push used by insert.
	suffix := append(l.scratch[:0], l.blocks[idx+1:]...)
	l.blocks = l.blocks[:idx]
	if !s.Empty() {
		l.pushMerging(s)
	} else {
		l.pool.Put(s)
	}
	for _, sb := range suffix {
		if !sb.Empty() {
			l.pushMerging(sb)
		}
	}
	clear(suffix)
	l.scratch = suffix[:0]
}

// Len returns the exact number of live items.
func (l *LSM[V]) Len() int { return l.live }

// Empty reports whether no live item remains.
func (l *LSM[V]) Empty() bool { return l.live == 0 }

// Blocks returns the current number of blocks; exposed for tests asserting
// the logarithmic-structure invariant.
func (l *LSM[V]) Blocks() int { return len(l.blocks) }

// CheckInvariants verifies the structural invariants (strictly decreasing
// levels, per-block descending order, level occupancy) and returns false on
// the first violation. Used by tests and the property suite.
func (l *LSM[V]) CheckInvariants() bool {
	for i, b := range l.blocks {
		if i > 0 && l.blocks[i-1].Level() <= b.Level() {
			return false
		}
		if !b.SortedDesc() {
			return false
		}
		if b.Filled() > b.Capacity() {
			return false
		}
		if b.Empty() {
			return false
		}
	}
	return true
}
