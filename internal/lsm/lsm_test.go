package lsm

import (
	"container/heap"
	"sort"
	"testing"

	"klsm/internal/xrand"
)

// refHeap is a container/heap min-heap oracle.
type refHeap []uint64

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestEmptyQueue(t *testing.T) {
	q := New[int]()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh queue not empty")
	}
	if _, _, ok := q.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty queue succeeded")
	}
	if q.PeekMin() != nil {
		t.Fatal("PeekMin on empty queue not nil")
	}
}

func TestSingleItem(t *testing.T) {
	q := New[string]()
	q.Insert(42, "x")
	if q.Len() != 1 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	if pk := q.PeekMin(); pk == nil || pk.Key() != 42 {
		t.Fatalf("PeekMin = %v", pk)
	}
	k, v, ok := q.DeleteMin()
	if !ok || k != 42 || v != "x" {
		t.Fatalf("DeleteMin = (%d, %q, %v)", k, v, ok)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after removing only item")
	}
}

func TestSortedExtraction(t *testing.T) {
	q := New[int]()
	keys := []uint64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		q.Insert(k, i)
	}
	if !q.CheckInvariants() {
		t.Fatal("invariants violated after inserts")
	}
	for want := uint64(0); want < 10; want++ {
		k, _, ok := q.DeleteMin()
		if !ok || k != want {
			t.Fatalf("DeleteMin = %d (%v), want %d", k, ok, want)
		}
		if !q.CheckInvariants() {
			t.Fatalf("invariants violated after deleting %d", want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty at end")
	}
}

func TestDuplicateKeys(t *testing.T) {
	q := New[int]()
	for i := 0; i < 5; i++ {
		q.Insert(7, i)
	}
	q.Insert(3, 100)
	q.Insert(11, 200)
	want := []uint64{3, 7, 7, 7, 7, 7, 11}
	for _, w := range want {
		k, _, ok := q.DeleteMin()
		if !ok || k != w {
			t.Fatalf("got %d (%v), want %d", k, ok, w)
		}
	}
}

func TestAgainstHeapOracle(t *testing.T) {
	const ops = 20000
	src := xrand.NewSeeded(2024)
	q := New[struct{}]()
	ref := &refHeap{}
	for i := 0; i < ops; i++ {
		if src.Intn(2) == 0 || ref.Len() == 0 {
			k := src.Uint64() % 10000
			q.Insert(k, struct{}{})
			heap.Push(ref, k)
		} else {
			k, _, ok := q.DeleteMin()
			want := heap.Pop(ref).(uint64)
			if !ok || k != want {
				t.Fatalf("op %d: DeleteMin = %d (%v), want %d", i, k, ok, want)
			}
		}
		if q.Len() != ref.Len() {
			t.Fatalf("op %d: Len = %d, oracle %d", i, q.Len(), ref.Len())
		}
	}
	// Drain and compare the remainder.
	for ref.Len() > 0 {
		k, _, ok := q.DeleteMin()
		want := heap.Pop(ref).(uint64)
		if !ok || k != want {
			t.Fatalf("drain: got %d (%v), want %d", k, ok, want)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after drain")
	}
}

func TestLogarithmicBlockCount(t *testing.T) {
	q := New[struct{}]()
	const n = 1 << 12
	src := xrand.NewSeeded(5)
	for i := 0; i < n; i++ {
		q.Insert(src.Uint64(), struct{}{})
	}
	// n items fit in at most log2(n)+1 blocks of distinct levels.
	if q.Blocks() > 13 {
		t.Fatalf("blocks = %d for %d items; structure not logarithmic", q.Blocks(), n)
	}
	if !q.CheckInvariants() {
		t.Fatal("invariants violated")
	}
}

func TestLazyDeletionDrop(t *testing.T) {
	q := New[int]()
	stale := map[uint64]bool{}
	q.SetDrop(func(key uint64, _ int) bool { return stale[key] })
	for k := uint64(0); k < 64; k++ {
		q.Insert(k, int(k))
	}
	// Mark the even keys stale; they must be purged during maintenance and
	// never returned.
	for k := uint64(0); k < 64; k += 2 {
		stale[k] = true
	}
	// Force maintenance merges by inserting more items.
	for k := uint64(64); k < 128; k++ {
		q.Insert(k, int(k))
	}
	var got []uint64
	for {
		k, _, ok := q.DeleteMin()
		if !ok {
			break
		}
		if k < 64 && k%2 == 0 {
			t.Fatalf("stale key %d returned", k)
		}
		got = append(got, k)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("extraction not sorted with lazy deletion enabled")
	}
	// 32 odd keys below 64 plus 64 keys above = 96.
	if len(got) != 96 {
		t.Fatalf("extracted %d keys, want 96", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0 (drop accounting broken)", q.Len())
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	q := New[struct{}]()
	src := xrand.NewSeeded(77)
	live := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			q.Insert(src.Uint64()%1000, struct{}{})
			live++
		}
		for i := 0; i < 60; i++ {
			if _, _, ok := q.DeleteMin(); ok {
				live--
			}
		}
		if q.Len() != live {
			t.Fatalf("round %d: Len = %d, want %d", round, q.Len(), live)
		}
		if !q.CheckInvariants() {
			t.Fatalf("round %d: invariants violated", round)
		}
	}
}

func TestMonotoneInsertAscending(t *testing.T) {
	q := New[struct{}]()
	const n = 1000
	for k := uint64(0); k < n; k++ {
		q.Insert(k, struct{}{})
	}
	for want := uint64(0); want < n; want++ {
		if k, _, _ := q.DeleteMin(); k != want {
			t.Fatalf("ascending: got %d want %d", k, want)
		}
	}
}

func TestMonotoneInsertDescending(t *testing.T) {
	q := New[struct{}]()
	const n = 1000
	for k := int64(n - 1); k >= 0; k-- {
		q.Insert(uint64(k), struct{}{})
	}
	for want := uint64(0); want < n; want++ {
		if k, _, _ := q.DeleteMin(); k != want {
			t.Fatalf("descending: got %d want %d", k, want)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	q := New[struct{}]()
	src := xrand.NewSeeded(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(src.Uint64(), struct{}{})
	}
}

func BenchmarkInsertDeletePair(b *testing.B) {
	q := New[struct{}]()
	src := xrand.NewSeeded(1)
	for i := 0; i < 1024; i++ {
		q.Insert(src.Uint64(), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(src.Uint64(), struct{}{})
		q.DeleteMin()
	}
}
