package lsm

import (
	"sort"
	"testing"

	"klsm/internal/item"
	"klsm/internal/xrand"
)

// TestPooledMatchesUnpooled replays an identical random workload on a pooled
// and an unpooled LSM and demands identical observable behavior.
func TestPooledMatchesUnpooled(t *testing.T) {
	plain, pooled := New[int](), NewPooled[int]()
	rng := xrand.NewSeeded(99)
	for op := 0; op < 20000; op++ {
		if rng.Bool() {
			k := rng.Uint64n(1 << 20)
			plain.Insert(k, int(k))
			pooled.Insert(k, int(k))
		} else {
			k1, v1, ok1 := plain.DeleteMin()
			k2, v2, ok2 := pooled.DeleteMin()
			if k1 != k2 || v1 != v2 || ok1 != ok2 {
				t.Fatalf("op %d: plain (%d,%d,%v) != pooled (%d,%d,%v)",
					op, k1, v1, ok1, k2, v2, ok2)
			}
		}
		if plain.Len() != pooled.Len() {
			t.Fatalf("op %d: Len %d != %d", op, plain.Len(), pooled.Len())
		}
	}
	if !pooled.CheckInvariants() {
		t.Fatal("pooled LSM invariants violated")
	}
	// Drain both and compare the full remaining order.
	var a, b []uint64
	for {
		k, _, ok := plain.DeleteMin()
		if !ok {
			break
		}
		a = append(a, k)
	}
	for {
		k, _, ok := pooled.DeleteMin()
		if !ok {
			break
		}
		b = append(b, k)
	}
	if len(a) != len(b) {
		t.Fatalf("drain lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drain order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("drain not ascending")
	}
}

// TestPooledSteadyStateAllocs: a warmed-up pooled LSM must run an
// insert/delete-min cycle without heap allocations — the point of §4.4.
func TestPooledSteadyStateAllocs(t *testing.T) {
	l := NewPooled[int]()
	rng := xrand.NewSeeded(7)
	for i := 0; i < 4096; i++ {
		l.Insert(rng.Uint64n(1<<30), i)
	}
	// Warm the free lists across the levels the workload touches.
	for i := 0; i < 4096; i++ {
		if rng.Bool() {
			l.Insert(rng.Uint64n(1<<30), i)
		} else {
			l.DeleteMin()
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		l.Insert(rng.Uint64n(1<<30), 1)
		l.DeleteMin()
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state pooled insert+delete allocates %.2f per cycle, want ~0", allocs)
	}
}

func TestPooledInsertItemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InsertItem on pooled LSM did not panic")
		}
	}()
	NewPooled[int]().InsertItem(item.New(1, 1))
}
