package lsm

import (
	"container/heap"
	"testing"
	"testing/quick"

	"klsm/internal/xrand"
)

// opSeq decodes a byte stream into an insert/delete operation sequence and
// cross-checks the LSM against a heap oracle, verifying structural
// invariants after every operation.
func runOpSequence(ops []byte) bool {
	q := New[struct{}]()
	ref := &refHeap{}
	for _, op := range ops {
		if op&1 == 0 || ref.Len() == 0 {
			key := uint64(op) * 31
			q.Insert(key, struct{}{})
			heap.Push(ref, key)
		} else {
			got, _, ok := q.DeleteMin()
			want := heap.Pop(ref).(uint64)
			if !ok || got != want {
				return false
			}
		}
		if q.Len() != ref.Len() {
			return false
		}
		if !q.CheckInvariants() {
			return false
		}
	}
	return true
}

// TestPropMatchesHeapOracle: arbitrary operation sequences agree with
// container/heap and preserve all structural invariants.
func TestPropMatchesHeapOracle(t *testing.T) {
	if err := quick.Check(runOpSequence, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropDrainIsSorted: for an arbitrary key multiset, draining the LSM
// yields a non-decreasing sequence of exactly the inserted keys.
func TestPropDrainIsSorted(t *testing.T) {
	f := func(keys []uint64) bool {
		q := New[struct{}]()
		counts := map[uint64]int{}
		for _, k := range keys {
			q.Insert(k, struct{}{})
			counts[k]++
		}
		prev := uint64(0)
		for range keys {
			k, _, ok := q.DeleteMin()
			if !ok || k < prev {
				return false
			}
			prev = k
			counts[k]--
			if counts[k] < 0 {
				return false
			}
		}
		_, _, ok := q.DeleteMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropLazyDeletionNeverReturnsDropped: with an arbitrary stale-set, no
// dropped key is ever returned and every live key is.
func TestPropLazyDeletionNeverReturnsDropped(t *testing.T) {
	f := func(keys []uint64, staleMask []bool) bool {
		stale := map[uint64]bool{}
		for i, k := range keys {
			if i < len(staleMask) && staleMask[i] {
				stale[k] = true
			}
		}
		q := New[struct{}]()
		q.SetDrop(func(key uint64, _ struct{}) bool { return stale[key] })
		liveCount := 0
		for _, k := range keys {
			q.Insert(k, struct{}{})
			if !stale[k] {
				liveCount++
			}
		}
		got := 0
		for {
			k, _, ok := q.DeleteMin()
			if !ok {
				break
			}
			if stale[k] {
				return false
			}
			got++
		}
		// Staleness is a function of the key, so duplicates agree: exactly
		// the live insertions must surface.
		return got == liveCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestStressChurn runs a long random mix, testing amortized maintenance
// paths (deep merge chains, shrink cascades).
func TestStressChurn(t *testing.T) {
	iters := 200000
	if testing.Short() {
		iters = 20000
	}
	q := New[struct{}]()
	src := xrand.NewSeeded(2026)
	live := 0
	for i := 0; i < iters; i++ {
		switch src.Intn(3) {
		case 0, 1:
			q.Insert(src.Uint64()%4096, struct{}{})
			live++
		default:
			if _, _, ok := q.DeleteMin(); ok {
				live--
			}
		}
	}
	if q.Len() != live {
		t.Fatalf("Len = %d, want %d", q.Len(), live)
	}
	if !q.CheckInvariants() {
		t.Fatal("invariants violated after churn")
	}
	// Full drain stays sorted.
	prev := uint64(0)
	for {
		k, _, ok := q.DeleteMin()
		if !ok {
			break
		}
		if k < prev {
			t.Fatal("drain unsorted after churn")
		}
		prev = k
	}
}
