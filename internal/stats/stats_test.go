package stats

import (
	"math"
	"testing"
)

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Sample stddev of 1..5 is sqrt(2.5).
	if !close(s.StdDev, math.Sqrt(2.5), 1e-9) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	// CI95 = t(4) * sd/sqrt(5) = 2.776 * 1.5811/2.2360 ≈ 1.9630
	if !close(s.CI95, 2.776*math.Sqrt(2.5)/math.Sqrt(5), 1e-6) {
		t.Fatalf("CI95 = %v", s.CI95)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.CI95 != 0 || s.Median != 7 {
		t.Fatalf("single sample summary wrong: %+v", s)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestConstantSample(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("constant sample has spread: %+v", s)
	}
}

func TestTQuantileFallback(t *testing.T) {
	if tQuantile(100) != 1.96 {
		t.Fatal("large-df fallback wrong")
	}
	if tQuantile(1) != 12.706 {
		t.Fatal("df=1 wrong")
	}
	if tQuantile(0) != 0 {
		t.Fatal("df=0 wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {90, 46},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !close(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Percentile(nil, 50)
}

func TestStringFormat(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
