// Package stats provides the summary statistics the paper's methodology
// calls for: experiments are repeated (30 times in §6) and mean values with
// confidence intervals are reported.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student's t for small n).
	CI95 float64
}

// tTable maps degrees of freedom to the two-sided 97.5% Student's t
// quantile; beyond 30 the normal approximation is used.
var tTable = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

// tQuantile returns the 97.5% t quantile for df degrees of freedom.
func tQuantile(df int) float64 {
	if df <= 0 {
		return 0
	}
	if t, ok := tTable[df]; ok {
		return t
	}
	return 1.96
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}

	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = tQuantile(len(xs)-1) * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s
}

// String formats the summary as "mean ±ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.CI95)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
