// Package loadgen drives insert/dequeue/drain mixes against a live klsmd
// server over HTTP and measures acknowledged throughput, mirroring the
// in-process harness (internal/harness.Throughput) closely enough that
// cmd/klsmload can emit the same BENCH_<tag>.json rows the throughput tool
// writes: ops are counted per acknowledged key, a dequeue that returns
// fewer items than asked counts one failed delete, and the metric is
// ops/worker/second.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/server"
	"klsm/internal/xrand"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Workers is the number of concurrent client goroutines, each holding
	// one keep-alive connection (the server's per-connection batching unit).
	Workers int
	// Ops bounds the run by acknowledged key count (>= 1); 0 switches to
	// timed mode over Duration.
	Ops int64
	// Duration bounds a timed run (ignored when Ops > 0; default 1s).
	Duration time.Duration
	// InsertRatio is the fraction of requests that enqueue (default 0.5).
	InsertRatio float64
	// Batch is the number of items per request, both enqueue batch size and
	// dequeue max (default 16).
	Batch int
	// Topics is the number of distinct topics the workers spread over
	// (default 16). Topics shard by consistent hashing server-side.
	Topics int
	// KeyRange bounds random keys (exclusive; 0 = full uint64).
	KeyRange uint64
	// Seed makes workloads reproducible.
	Seed uint64
	// Prefill enqueues this many keys before the measured phase (not
	// counted in Result.Ops).
	Prefill int
}

// Result is one measured run.
type Result struct {
	// Ops counts acknowledged keys moved: enqueued items covered by a 200,
	// plus items returned by dequeue responses.
	Ops int64
	// Inserts and Dequeued split Ops by direction.
	Inserts int64
	// Dequeued counts items returned by dequeue responses.
	Dequeued int64
	// FailedDeletes counts dequeue requests that returned fewer items than
	// asked (the empty-queue signal, as in the in-process harness).
	FailedDeletes int64
	// Rejected counts 429 backpressure rejections (retried, not fatal).
	Rejected int64
	// Errors counts non-2xx, non-429 responses and transport failures.
	Errors int64
	// Elapsed is the measured wall time and PerWorkerPerSec the Figure 3
	// style metric Ops/Elapsed/Workers.
	Elapsed time.Duration
	// PerWorkerPerSec is Ops per second per worker.
	PerWorkerPerSec float64
}

// Client is a thin JSON client for the klsmd HTTP API, shared by the load
// workers and the integration tests.
type Client struct {
	// Base is the server root URL.
	Base string
	// HTTP is the underlying client; nil uses a keep-alive transport sized
	// for many concurrent workers.
	HTTP *http.Client
}

// NewClient returns a client with a keep-alive transport.
func NewClient(base string) *Client {
	tr := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	return &Client{Base: base, HTTP: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

// Item is one key/payload pair on the wire.
type Item struct {
	// Key is the priority key.
	Key uint64 `json:"key"`
	// Value is the opaque payload.
	Value string `json:"value,omitempty"`
}

// ErrStatus reports a non-2xx response.
type ErrStatus struct {
	// Code is the HTTP status code.
	Code int
	// Body is the (truncated) response body.
	Body string
}

// Error implements error.
func (e *ErrStatus) Error() string { return fmt.Sprintf("http %d: %s", e.Code, e.Body) }

// post sends a JSON body and decodes a JSON reply into out.
func (c *Client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return &ErrStatus{Code: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Enqueue inserts items under topic; nil error means every item is
// acknowledged (durably, on a persistent server).
func (c *Client) Enqueue(topic string, items []Item) error {
	return c.post("/v1/enqueue", map[string]any{"topic": topic, "items": items}, nil)
}

// Dequeue pops up to max items from topic ("*" = global).
func (c *Client) Dequeue(topic string, max int) ([]Item, error) {
	var out struct {
		Items []Item `json:"items"`
	}
	if err := c.post("/v1/dequeue", map[string]any{"topic": topic, "max": max}, &out); err != nil {
		return nil, err
	}
	return out.Items, nil
}

// Drain streams topic's items ("*" = global) through the NDJSON drain
// endpoint, calling visit per item, and returns the server's drained count
// from the summary line. A missing summary line returns an error: the
// stream ended without the server's clean-completion marker.
func (c *Client) Drain(topic string, max int64, batch int, visit func(Item)) (int64, error) {
	url := fmt.Sprintf("%s/v1/drain?topic=%s&batch=%d", c.Base, topic, batch)
	if max >= 0 {
		url += fmt.Sprintf("&max=%d", max)
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return 0, &ErrStatus{Code: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Key     *uint64 `json:"key"`
			Value   string  `json:"value"`
			Drained *int64  `json:"drained"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("drain stream ended without summary line")
			}
			return 0, err
		}
		if line.Drained != nil {
			return *line.Drained, nil
		}
		if line.Key == nil {
			return 0, fmt.Errorf("drain stream: line has neither key nor summary")
		}
		if visit != nil {
			visit(Item{Key: *line.Key, Value: line.Value})
		}
	}
}

// Stats fetches and decodes /statsz.
func (c *Client) Stats() (server.Statsz, error) {
	var doc server.Statsz
	resp, err := c.HTTP.Get(c.Base + "/statsz")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return doc, &ErrStatus{Code: resp.StatusCode}
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// Run executes one load-generation run against cfg.BaseURL.
func Run(cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.Topics <= 0 {
		cfg.Topics = 16
	}
	if cfg.InsertRatio <= 0 {
		cfg.InsertRatio = 0.5
	}
	if cfg.Ops <= 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	c := NewClient(cfg.BaseURL)

	if cfg.Prefill > 0 {
		if err := prefill(c, cfg); err != nil {
			return Result{}, fmt.Errorf("loadgen: prefill: %w", err)
		}
	}

	var (
		budget  atomic.Int64 // remaining keys in bounded mode
		stop    atomic.Bool
		wg      sync.WaitGroup
		results = make([]Result, cfg.Workers)
	)
	budget.Store(cfg.Ops)
	begin := time.Now()
	if cfg.Ops <= 0 {
		timer := time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
		defer timer.Stop()
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(c, cfg, id, &budget, &stop, &results[id])
		}(w)
	}
	wg.Wait()

	var res Result
	for _, r := range results {
		res.Ops += r.Ops
		res.Inserts += r.Inserts
		res.Dequeued += r.Dequeued
		res.FailedDeletes += r.FailedDeletes
		res.Rejected += r.Rejected
		res.Errors += r.Errors
	}
	res.Elapsed = time.Since(begin)
	res.PerWorkerPerSec = float64(res.Ops) / res.Elapsed.Seconds() / float64(cfg.Workers)
	return res, nil
}

// prefill loads cfg.Prefill keys through one connection before the
// measured phase.
func prefill(c *Client, cfg Config) error {
	rng := xrand.NewSeeded(cfg.Seed*31 + 7)
	items := make([]Item, 0, 512)
	for left := cfg.Prefill; left > 0; {
		n := min(512, left)
		items = items[:0]
		for i := 0; i < n; i++ {
			items = append(items, Item{Key: draw(rng, cfg.KeyRange)})
		}
		if err := c.Enqueue(topicName(int(rng.Uint64n(uint64(cfg.Topics)))), items); err != nil {
			return err
		}
		left -= n
	}
	return nil
}

// worker is one client goroutine: a random insert/dequeue request mix, one
// request in flight at a time over a keep-alive connection.
func worker(c *Client, cfg Config, id int, budget *atomic.Int64, stop *atomic.Bool, out *Result) {
	rng := xrand.NewSeeded(cfg.Seed*1_000_003 + uint64(id))
	items := make([]Item, cfg.Batch)
	bounded := cfg.Ops > 0
	emptyStreak := 0 // consecutive all-empty dequeues (bounded-mode spin guard)
	for !stop.Load() {
		n := cfg.Batch
		if bounded {
			if claimed := budget.Add(int64(-n)); claimed < 0 {
				if n = int(claimed) + n; n <= 0 {
					return
				}
			}
		}
		if rng.Float64() < cfg.InsertRatio {
			batch := items[:n]
			for i := range batch {
				batch[i] = Item{
					Key:   draw(rng, cfg.KeyRange),
					Value: fmt.Sprintf("w%d-%d", id, out.Inserts+int64(i)),
				}
			}
			err := c.Enqueue(topicName(int(rng.Uint64n(uint64(cfg.Topics)))), batch)
			switch {
			case err == nil:
				out.Inserts += int64(n)
				out.Ops += int64(n)
			case isRetryable(err):
				out.Rejected++
				refund(budget, bounded, n)
				time.Sleep(time.Millisecond)
			default:
				out.Errors++
				refund(budget, bounded, n)
			}
		} else {
			got, err := c.Dequeue(topicName(int(rng.Uint64n(uint64(cfg.Topics)))), n)
			switch {
			case err == nil:
				out.Dequeued += int64(len(got))
				out.Ops += int64(len(got))
				if len(got) > 0 {
					emptyStreak = 0
				} else if emptyStreak++; bounded && emptyStreak > 64 {
					// Bounded mode must terminate even when the mix cannot
					// reach the op budget (dequeue-heavy against a drained
					// queue): a long all-empty streak means this worker's
					// share of the budget is unservable.
					return
				}
				if len(got) < n {
					out.FailedDeletes++
					refund(budget, bounded, n-len(got))
				}
			case isRetryable(err):
				out.Rejected++
				refund(budget, bounded, n)
				time.Sleep(time.Millisecond)
			default:
				out.Errors++
				refund(budget, bounded, n)
			}
		}
	}
}

// refund returns unused budget in bounded mode (failed or short requests),
// so the run converges on cfg.Ops acknowledged keys.
func refund(budget *atomic.Int64, bounded bool, n int) {
	if bounded && n > 0 {
		budget.Add(int64(n))
	}
}

// isRetryable reports backpressure rejections (429).
func isRetryable(err error) bool {
	var st *ErrStatus
	return errors.As(err, &st) && st.Code == http.StatusTooManyRequests
}

// topicName formats the i-th topic.
func topicName(i int) string { return fmt.Sprintf("topic-%03d", i) }

// draw returns a random key within keyRange (0 = full uint64).
func draw(rng *xrand.Source, keyRange uint64) uint64 {
	if keyRange == 0 {
		return rng.Uint64()
	}
	return rng.Uint64n(keyRange)
}
