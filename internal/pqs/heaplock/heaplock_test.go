package heaplock

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestConformance(t *testing.T) {
	pqtest.Run(t, "HeapLock", func(threads int) pqs.Queue { return New() }, pqtest.Options{
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestLen(t *testing.T) {
	q := New()
	h := q.NewHandle()
	h.Insert(1)
	h.Insert(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	h.TryDeleteMin()
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func BenchmarkContended(b *testing.B) {
	q := New()
	h := q.NewHandle()
	for i := 0; i < 1024; i++ {
		h.Insert(uint64(i))
	}
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}
