// Package heaplock implements the "Heap + Lock" baseline of the paper's
// Figure 3: a sequential binary heap protected by a single test-and-test-
// and-set spinlock.
//
// It provides exact (globally linearizable) priority queue semantics with
// the obvious scalability ceiling: every operation serializes on one lock,
// so throughput per thread decays roughly as 1/T. The paper uses it both as
// the sequential performance yardstick (the DLSM is "close to the binary
// heap" at one thread) and as the simplest contended baseline.
package heaplock

import (
	"klsm/internal/binheap"
	"klsm/internal/pqs"
	"klsm/internal/spin"
)

// Queue is a spinlock-protected binary min-heap.
type Queue struct {
	mu   spin.Mutex
	heap *binheap.Heap
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{heap: binheap.New(2)}
}

// NewHandle implements pqs.Queue. All handles share the single global heap.
func (q *Queue) NewHandle() pqs.Handle { return handle{q} }

type handle struct{ q *Queue }

// Insert implements pqs.Handle.
func (h handle) Insert(key uint64) {
	h.q.mu.Lock()
	h.q.heap.Push(key)
	h.q.mu.Unlock()
}

// TryDeleteMin implements pqs.Handle. It is exact: ok=false means the queue
// was empty at the linearization point.
func (h handle) TryDeleteMin() (uint64, bool) {
	h.q.mu.Lock()
	k, ok := h.q.heap.Pop()
	h.q.mu.Unlock()
	return k, ok
}

// Len returns the current size (takes the lock; for tests).
func (q *Queue) Len() int {
	q.mu.Lock()
	n := q.heap.Len()
	q.mu.Unlock()
	return n
}
