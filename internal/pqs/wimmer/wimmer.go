// Package wimmer reconstructs the k-relaxed priority queues of Wimmer,
// Versaci, Träff, Cederman and Tsigas ("Data structures for task-based
// priority scheduling", PPoPP 2014 — reference [29] of the paper), which the
// paper's SSSP benchmark (Figure 4) compares against.
//
// The originals are embedded in the Pheet task scheduler and are not
// standalone data structures (the paper says exactly this in §6); what the
// publication documents is their semantics: temporal k-relaxation where each
// thread may keep up to k recently produced items invisible to others.
// DESIGN.md records this reconstruction:
//
//   - Centralized k-PQ: one globally shared priority queue; each thread
//     buffers up to k freshly inserted items locally and flushes them in
//     bulk (amortizing the lock), and delete-min takes the better of the
//     local buffer minimum and the global minimum. All cross-thread traffic
//     funnels through the single global heap, which is exactly the
//     scalability profile Figure 4 shows degrading beyond ~10 threads.
//
//   - Hybrid k-PQ: per-thread local heaps bounded to k items, spilling
//     their larger half in bulk to the global heap when full; delete-min
//     prefers the local heap if its minimum beats the global one and
//     otherwise takes from the global heap. Threads with empty structures
//     fetch batches back from the global heap. This reconstructs the hybrid
//     local/global design point between the centralized queue and fully
//     distributed structures.
//
// Both provide k-relaxation in the same sense as [29]: at most k items per
// thread can be skipped by other threads' delete-mins.
package wimmer

import (
	"sync/atomic"

	"klsm/internal/binheap"
	"klsm/internal/pqs"
	"klsm/internal/spin"
)

// emptyMin is the cached-global-minimum sentinel (hint only).
const emptyMin = ^uint64(0)

// ---------------------------------------------------------------------------
// Centralized k-PQ
// ---------------------------------------------------------------------------

// Centralized is the centralized k-relaxed priority queue.
type Centralized struct {
	mu   spin.Mutex
	heap *binheap.Heap
	min  atomic.Uint64 // cached global minimum (hint)
	k    int
}

// NewCentralized returns an empty centralized k-PQ.
func NewCentralized(k int) *Centralized {
	if k < 0 {
		panic("wimmer: negative k")
	}
	c := &Centralized{heap: binheap.New(2), k: k}
	c.min.Store(emptyMin)
	return c
}

// NewHandle implements pqs.Queue.
func (c *Centralized) NewHandle() pqs.Handle {
	return &centralHandle{q: c}
}

type centralHandle struct {
	q *Centralized
	// buf holds up to k locally batched inserts (the temporal relaxation
	// window of [29]): invisible to other threads until flushed.
	buf []uint64
	// bufMinIdx caches the index of the buffer minimum.
}

// Insert implements pqs.Handle: buffer locally, flush in bulk at k.
func (h *centralHandle) Insert(key uint64) {
	if h.q.k == 0 {
		h.q.lockPush(key)
		return
	}
	h.buf = append(h.buf, key)
	if len(h.buf) >= h.q.k {
		h.flush()
	}
}

func (h *centralHandle) flush() {
	if len(h.buf) == 0 {
		return
	}
	q := h.q
	q.mu.Lock()
	q.heap.PushBulk(h.buf)
	m, _ := q.heap.Peek()
	q.min.Store(m)
	q.mu.Unlock()
	h.buf = h.buf[:0]
}

// Flush implements pqs.Flusher: publish all buffered keys.
func (h *centralHandle) Flush() { h.flush() }

func (c *Centralized) lockPush(key uint64) {
	c.mu.Lock()
	c.heap.Push(key)
	m, _ := c.heap.Peek()
	c.min.Store(m)
	c.mu.Unlock()
}

// TryDeleteMin implements pqs.Handle: the smaller of the local buffer
// minimum and the global minimum wins (local ordering within the buffer is
// preserved by taking exact minima on both sides).
func (h *centralHandle) TryDeleteMin() (uint64, bool) {
	q := h.q
	// Local buffer minimum.
	localIdx := -1
	localMin := emptyMin
	for i, k := range h.buf {
		if localIdx == -1 || k < localMin {
			localIdx, localMin = i, k
		}
	}
	if localIdx != -1 && localMin <= q.min.Load() {
		// Take from the buffer without touching the lock.
		h.buf[localIdx] = h.buf[len(h.buf)-1]
		h.buf = h.buf[:len(h.buf)-1]
		return localMin, true
	}
	q.mu.Lock()
	k, ok := q.heap.Pop()
	m, okPeek := q.heap.Peek()
	if !okPeek {
		m = emptyMin
	}
	q.min.Store(m)
	q.mu.Unlock()
	if ok {
		if localIdx != -1 && localMin < k {
			// The global heap moved under us and our buffered key is now
			// smaller: swap them to preserve the relaxation window.
			h.buf[localIdx] = k
			return localMin, true
		}
		return k, true
	}
	if localIdx != -1 {
		h.buf[localIdx] = h.buf[len(h.buf)-1]
		h.buf = h.buf[:len(h.buf)-1]
		return localMin, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Hybrid k-PQ
// ---------------------------------------------------------------------------

// Hybrid is the hybrid local/global k-relaxed priority queue.
type Hybrid struct {
	mu   spin.Mutex
	heap *binheap.Heap
	min  atomic.Uint64
	k    int
}

// NewHybrid returns an empty hybrid k-PQ.
func NewHybrid(k int) *Hybrid {
	if k < 0 {
		panic("wimmer: negative k")
	}
	h := &Hybrid{heap: binheap.New(2), k: k}
	h.min.Store(emptyMin)
	return h
}

// NewHandle implements pqs.Queue.
func (q *Hybrid) NewHandle() pqs.Handle {
	return &hybridHandle{q: q, local: binheap.New(2)}
}

type hybridHandle struct {
	q     *Hybrid
	local *binheap.Heap // bounded to k items
	spill []uint64      // scratch buffer for bulk spills
}

// Insert implements pqs.Handle: insert locally; when the local heap exceeds
// k, spill its larger half to the global heap in one lock acquisition.
func (h *hybridHandle) Insert(key uint64) {
	if h.q.k == 0 {
		h.q.lockPush(key)
		return
	}
	h.local.Push(key)
	if h.local.Len() > h.q.k {
		h.spillHalf()
	}
}

func (h *hybridHandle) spillHalf() {
	// Extract everything, keep the smaller half local, spill the rest:
	// preserves the property that the locally hidden items are the ones the
	// thread itself will consume soonest (the scheduler-affinity rationale
	// of [29]).
	n := h.local.Len()
	keep := n / 2
	h.spill = h.spill[:0]
	tmp := make([]uint64, 0, keep)
	for i := 0; i < n; i++ {
		k, _ := h.local.Pop()
		if i < keep {
			tmp = append(tmp, k)
		} else {
			h.spill = append(h.spill, k)
		}
	}
	h.local.PushBulk(tmp)
	q := h.q
	q.mu.Lock()
	q.heap.PushBulk(h.spill)
	m, _ := q.heap.Peek()
	q.min.Store(m)
	q.mu.Unlock()
}

func (q *Hybrid) lockPush(key uint64) {
	q.mu.Lock()
	q.heap.Push(key)
	m, _ := q.heap.Peek()
	q.min.Store(m)
	q.mu.Unlock()
}

// TryDeleteMin implements pqs.Handle: prefer the local heap when its
// minimum beats the cached global minimum; otherwise pop the global heap.
func (h *hybridHandle) TryDeleteMin() (uint64, bool) {
	q := h.q
	if lm, ok := h.local.Peek(); ok && lm <= q.min.Load() {
		k, _ := h.local.Pop()
		return k, true
	}
	q.mu.Lock()
	k, ok := q.heap.Pop()
	m, okPeek := q.heap.Peek()
	if !okPeek {
		m = emptyMin
	}
	q.min.Store(m)
	q.mu.Unlock()
	if ok {
		return k, true
	}
	// Global empty: fall back to whatever is local.
	if k, ok := h.local.Pop(); ok {
		return k, true
	}
	return 0, false
}

// Flush implements pqs.Flusher: spill the entire local heap to the global
// one.
func (h *hybridHandle) Flush() {
	if h.local.Empty() {
		return
	}
	h.spill = h.local.PopBulk(h.spill[:0], h.local.Len())
	q := h.q
	q.mu.Lock()
	q.heap.PushBulk(h.spill)
	m, _ := q.heap.Peek()
	q.min.Store(m)
	q.mu.Unlock()
	h.spill = h.spill[:0]
}
