package wimmer

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestCentralizedConformanceK0(t *testing.T) {
	pqtest.Run(t, "CentralizedK0", func(threads int) pqs.Queue { return NewCentralized(0) }, pqtest.Options{
		Exact:               true, // k=0: plain locked heap
		SequentialRankBound: 0,
	})
}

func TestCentralizedConformanceK64(t *testing.T) {
	pqtest.Run(t, "CentralizedK64", func(threads int) pqs.Queue { return NewCentralized(64) }, pqtest.Options{
		Exact:               false,
		SequentialRankBound: 64,
	})
}

func TestHybridConformanceK0(t *testing.T) {
	pqtest.Run(t, "HybridK0", func(threads int) pqs.Queue { return NewHybrid(0) }, pqtest.Options{
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestHybridConformanceK64(t *testing.T) {
	pqtest.Run(t, "HybridK64", func(threads int) pqs.Queue { return NewHybrid(64) }, pqtest.Options{
		Exact:               false,
		SequentialRankBound: 64,
	})
}

func TestCentralizedFlushPublishes(t *testing.T) {
	q := NewCentralized(100)
	a := q.NewHandle()
	b := q.NewHandle()
	for i := uint64(0); i < 10; i++ {
		a.Insert(i) // stays in a's buffer (k=100)
	}
	if _, ok := b.TryDeleteMin(); ok {
		t.Fatal("b saw a's buffered items before flush")
	}
	pqs.FlushHandle(a)
	if k, ok := b.TryDeleteMin(); !ok || k != 0 {
		t.Fatalf("after flush b got %d (%v)", k, ok)
	}
}

func TestHybridSpillsAtK(t *testing.T) {
	q := NewHybrid(4)
	a := q.NewHandle()
	b := q.NewHandle()
	// 5 inserts exceed k=4, forcing a spill of the larger half.
	for i := uint64(10); i < 15; i++ {
		a.Insert(i)
	}
	k, ok := b.TryDeleteMin()
	if !ok {
		t.Fatal("nothing spilled to global heap")
	}
	// b must see one of the spilled (larger-half) keys.
	if k < 10 || k > 14 {
		t.Fatalf("b got phantom key %d", k)
	}
}

func TestNegativeKPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"centralized": func() { NewCentralized(-1) },
		"hybrid":      func() { NewHybrid(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative k did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkCentralizedMix(b *testing.B) {
	q := NewCentralized(256)
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}

func BenchmarkHybridMix(b *testing.B) {
	q := NewHybrid(256)
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}
