// Package timingwheel is a mutex-guarded hierarchical timing wheel — the
// classical timer data structure (Varghese & Lauck) and the baseline
// cmd/timerbench compares the timerq subsystem against.
//
// The wheel hashes each timer into a slot by deadline: level 0 resolves one
// tick per slot, level 1 one wheel-revolution per slot, and so on, with
// wheelBits slots per level. Advancing time walks level-0 slots, cascading
// higher-level slots down as their windows open. Every operation — schedule,
// cancel, advance — takes one global mutex: the structure itself is O(1) per
// operation, but it serializes, which is exactly the contrast the benchmark
// exists to measure against the relaxed queue's scalable (but merge-paying)
// design. Cancellation here is eager and O(1): the timer's node unlinks from
// its slot list in place.
package timingwheel

import (
	"sync"
	"time"
)

const (
	// wheelBits gives 64 slots per level; 8 levels of 64 slots at
	// millisecond ticks cover ~8900 years, more than any deadline.
	wheelBits  = 6
	wheelSize  = 1 << wheelBits
	wheelMask  = wheelSize - 1
	wheelLevel = 8
)

// ID identifies one scheduled timer. IDs are dense from 1; 0 is never
// issued.
type ID uint64

// node is one pending timer, doubly linked within its slot so Cancel can
// unlink in place. lvl/idx record which slot holds it (cascades relocate
// nodes, so the position is state, not a pure hash of the deadline).
type node[P any] struct {
	id         ID
	deadline   int64 // ticks
	lvl, idx   int32
	payload    P
	prev, next *node[P]
}

// slot is a circular doubly-linked list head (sentinel-free: nil = empty).
type slot[P any] struct {
	head *node[P]
}

func (s *slot[P]) push(n *node[P]) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
}

func (s *slot[P]) remove(n *node[P]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
}

// take detaches and returns the whole list.
func (s *slot[P]) take() *node[P] {
	h := s.head
	s.head = nil
	return h
}

// Wheel is a hierarchical timing wheel with O(1) schedule and cancel and
// amortized-O(1) advance per tick. All methods are safe for concurrent use;
// one mutex guards everything.
type Wheel[P any] struct {
	mu     sync.Mutex
	levels [wheelLevel][wheelSize]slot[P]
	// now is the current tick; timers due at or before it have fired.
	now int64
	// tick is the wheel resolution.
	tick time.Duration
	// epoch anchors tick 0 in wall time.
	epoch   time.Time
	nodes   map[ID]*node[P]
	nextID  ID
	pending int
}

// New returns a wheel with the given tick resolution, anchored at epoch:
// a deadline d maps to tick (d - epoch) / tick. Deadlines before epoch are
// treated as due immediately.
func New[P any](epoch time.Time, tick time.Duration) *Wheel[P] {
	return &Wheel[P]{
		tick:  tick,
		epoch: epoch,
		nodes: make(map[ID]*node[P]),
	}
}

// ticksOf converts a wall-clock instant to a wheel tick (floor).
func (w *Wheel[P]) ticksOf(t time.Time) int64 {
	d := t.Sub(w.epoch)
	if d < 0 {
		return 0
	}
	return int64(d / w.tick)
}

// place links n into the slot its deadline hashes to, relative to the
// current tick. Called with mu held. minDelta is 1 when called from
// Schedule — the current tick's slot has already been drained, so an
// already-due timer must land on the next tick — and 0 from cascade, which
// runs before the current tick's level-0 slot drains, so an exactly-due
// node lands in it and fires on time.
func (w *Wheel[P]) place(n *node[P], minDelta int64) {
	delta := n.deadline - w.now
	if delta < minDelta {
		delta = minDelta
	}
	due := w.now + delta
	for lvl := 0; lvl < wheelLevel; lvl++ {
		if delta < int64(1)<<uint((lvl+1)*wheelBits) {
			idx := (due >> uint(lvl*wheelBits)) & wheelMask
			n.lvl, n.idx = int32(lvl), int32(idx)
			w.levels[lvl][idx].push(n)
			return
		}
	}
	// Beyond the top level's horizon: park in the top level's furthest
	// slot; it re-cascades each revolution.
	idx := (due >> uint((wheelLevel-1)*wheelBits)) & wheelMask
	n.lvl, n.idx = wheelLevel-1, int32(idx)
	w.levels[wheelLevel-1][idx].push(n)
}

// Schedule registers a timer firing at deadline and returns its ID.
func (w *Wheel[P]) Schedule(deadline time.Time, payload P) ID {
	w.mu.Lock()
	w.nextID++
	id := w.nextID
	n := &node[P]{id: id, deadline: w.ticksOf(deadline), payload: payload}
	w.nodes[id] = n
	w.place(n, 1)
	w.pending++
	w.mu.Unlock()
	return id
}

// Cancel removes a pending timer, reporting whether it was still pending.
// Eager O(1): the node unlinks from its slot immediately.
func (w *Wheel[P]) Cancel(id ID) bool {
	w.mu.Lock()
	n, ok := w.nodes[id]
	if ok {
		delete(w.nodes, id)
		w.levels[n.lvl][n.idx].remove(n)
		w.pending--
	}
	w.mu.Unlock()
	return ok
}

// Advance moves the wheel to now, invoking emit for every timer whose
// deadline has passed, and returns the number fired. Emit runs with the
// wheel lock held (the baseline measures raw structure cost, not callback
// scheduling).
func (w *Wheel[P]) Advance(now time.Time, emit func(id ID, payload P)) int {
	target := w.ticksOf(now)
	fired := 0
	w.mu.Lock()
	for w.now < target {
		w.now++
		idx := w.now & wheelMask
		if idx == 0 {
			w.cascade()
		}
		for n := w.levels[0][idx].take(); n != nil; {
			next := n.next
			n.prev, n.next = nil, nil
			if _, live := w.nodes[n.id]; live {
				delete(w.nodes, n.id)
				w.pending--
				fired++
				emit(n.id, n.payload)
			}
			n = next
		}
	}
	w.mu.Unlock()
	return fired
}

// cascade re-places every node in the higher-level slots whose windows just
// opened. Called with mu held, at each level-0 revolution boundary.
func (w *Wheel[P]) cascade() {
	for lvl := 1; lvl < wheelLevel; lvl++ {
		idx := (w.now >> uint(lvl*wheelBits)) & wheelMask
		for n := w.levels[lvl][idx].take(); n != nil; {
			next := n.next
			n.prev, n.next = nil, nil
			w.place(n, 0)
			n = next
		}
		if idx != 0 {
			// This revolution did not wrap the next level up; stop.
			return
		}
	}
}

// Len returns the number of pending timers.
func (w *Wheel[P]) Len() int {
	w.mu.Lock()
	n := w.pending
	w.mu.Unlock()
	return n
}
