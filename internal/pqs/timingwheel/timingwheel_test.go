package timingwheel

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestScheduleAdvance(t *testing.T) {
	w := New[int](epoch, time.Millisecond)
	deadlines := map[ID]int64{}
	for i := 0; i < 5000; i++ {
		// Spread across all levels: a few ticks out to far past the
		// level-0 horizon.
		d := int64(1 + rand.Intn(1<<18))
		id := w.Schedule(epoch.Add(time.Duration(d)*time.Millisecond), i)
		deadlines[id] = d
	}
	if w.Len() != 5000 {
		t.Fatalf("Len = %d", w.Len())
	}
	firedAt := map[ID]int64{}
	for step := int64(1000); step <= 1<<18+1000; step += 1000 {
		now := step
		w.Advance(epoch.Add(time.Duration(step)*time.Millisecond), func(id ID, _ int) {
			firedAt[id] = now
		})
	}
	if len(firedAt) != 5000 {
		t.Fatalf("fired %d, want 5000", len(firedAt))
	}
	for id, d := range deadlines {
		at, ok := firedAt[id]
		if !ok {
			t.Fatalf("timer %d (deadline %d) never fired", id, d)
		}
		// Fired on the first advance step at or after the deadline, never
		// before it.
		if at < d || at-d >= 1000 {
			t.Fatalf("timer %d deadline %d fired at %d", id, d, at)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len after drain = %d", w.Len())
	}
}

func TestCancel(t *testing.T) {
	w := New[int](epoch, time.Millisecond)
	ids := make([]ID, 0, 1000)
	for i := 0; i < 1000; i++ {
		ids = append(ids, w.Schedule(epoch.Add(time.Duration(1+i)*time.Millisecond), i))
	}
	for i, id := range ids {
		if i%2 == 0 {
			if !w.Cancel(id) {
				t.Fatalf("Cancel(live %d) = false", id)
			}
			if w.Cancel(id) {
				t.Fatalf("Cancel(canceled %d) = true", id)
			}
		}
	}
	if w.Len() != 500 {
		t.Fatalf("Len = %d, want 500", w.Len())
	}
	fired := 0
	w.Advance(epoch.Add(time.Hour), func(id ID, p int) {
		if p%2 == 0 {
			t.Fatalf("canceled timer %d fired", id)
		}
		fired++
	})
	if fired != 500 {
		t.Fatalf("fired %d, want 500", fired)
	}
}

// TestCancelAfterCascade cancels timers whose nodes have been relocated by
// a cascade, exercising the recorded-position unlink.
func TestCancelAfterCascade(t *testing.T) {
	w := New[int](epoch, time.Millisecond)
	// Far enough out to start on level >= 1.
	ids := make([]ID, 0, 100)
	for i := 0; i < 100; i++ {
		ids = append(ids, w.Schedule(epoch.Add(time.Duration(200+i)*time.Millisecond), i))
	}
	// Advance past a revolution boundary so the slots cascade to level 0.
	w.Advance(epoch.Add(190*time.Millisecond), func(ID, int) {
		t.Fatalf("nothing is due yet")
	})
	for _, id := range ids {
		if !w.Cancel(id) {
			t.Fatalf("Cancel(%d) after cascade = false", id)
		}
	}
	if n := w.Advance(epoch.Add(time.Hour), func(ID, int) {}); n != 0 {
		t.Fatalf("canceled timers fired: %d", n)
	}
}

func TestPastDeadline(t *testing.T) {
	w := New[int](epoch, time.Millisecond)
	w.Advance(epoch.Add(100*time.Millisecond), func(ID, int) {})
	w.Schedule(epoch.Add(50*time.Millisecond), 1) // already past
	fired := 0
	w.Advance(epoch.Add(101*time.Millisecond), func(ID, int) { fired++ })
	if fired != 1 {
		t.Fatalf("past-deadline timer fired %d times", fired)
	}
}

func TestConcurrent(t *testing.T) {
	w := New[int](epoch, time.Millisecond)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := map[ID]int{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				id := w.Schedule(epoch.Add(time.Duration(1+rng.Intn(5000))*time.Millisecond), g)
				if rng.Intn(2) == 0 {
					w.Cancel(id)
				}
				if i%100 == 0 {
					w.Advance(epoch.Add(time.Duration(rng.Intn(2000))*time.Millisecond), func(id ID, _ int) {
						mu.Lock()
						fired[id]++
						mu.Unlock()
					})
				}
			}
		}(g)
	}
	wg.Wait()
	w.Advance(epoch.Add(time.Hour), func(id ID, _ int) {
		mu.Lock()
		fired[id]++
		mu.Unlock()
	})
	for id, n := range fired {
		if n != 1 {
			t.Fatalf("timer %d fired %d times", id, n)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}
