// Package multiq implements the MultiQueue of Rihani, Sanders and Dementiev
// ("MultiQueues: Simpler, Faster, and Better Relaxed Concurrent Priority
// Queues", the comparison queue of the paper's Figure 3).
//
// The structure is c·T sequential heaps, each behind its own spinlock
// (c = 2 and 8-ary heaps in the paper's experiments, matching the Boost
// d-ary heap the original authors used). Insert pushes into a random queue;
// delete-min peeks two random queues and pops from the one with the smaller
// minimum — the classic power-of-two-choices load balancing. The expected
// rank error is O(T), but as the paper stresses, no worst-case bound exists:
// a stalled thread holding a lock can hide arbitrarily many small keys.
//
// Each queue caches its current minimum in an atomic so that the two-choice
// comparison runs without acquiring either lock; locks are only taken for
// the actual mutation, and TryLock failures reroute to fresh random queues
// rather than blocking (the queue is therefore lock-based but obstruction-
// avoiding in practice).
package multiq

import (
	"sync/atomic"

	"klsm/internal/binheap"
	"klsm/internal/pqs"
	"klsm/internal/spin"
	"klsm/internal/xrand"
)

// emptyKey is the cached-minimum sentinel for an empty local heap. Real keys
// with this value are handled correctly (the cache is a hint only), it just
// deprioritizes the queue in the two-choice comparison.
const emptyKey = ^uint64(0)

// Config parameterizes the MultiQueue.
type Config struct {
	// C is the queues-per-thread factor; the paper benchmarks c = 2.
	C int
	// Threads is the expected number of concurrent handles T; C*T local
	// heaps are created. More handles than Threads still work — they only
	// raise contention beyond the design point, as with the original.
	Threads int
	// Arity of the local heaps; the paper uses 8 (Boost d-ary heap).
	Arity int
}

// Queue is a MultiQueue.
type Queue struct {
	locals []local
}

type local struct {
	mu   spin.Mutex
	min  atomic.Uint64 // cached Peek of heap, emptyKey when empty
	heap *binheap.Heap
	// pad keeps locals on distinct cache lines; false sharing between the
	// spinlocks otherwise dominates at high thread counts.
	_ [40]byte
}

// New returns a MultiQueue for the given configuration; zero fields take
// the paper's defaults (C=2, Arity=8, Threads=1).
func New(cfg Config) *Queue {
	if cfg.C <= 0 {
		cfg.C = 2
	}
	if cfg.Arity <= 0 {
		cfg.Arity = 8
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	n := cfg.C * cfg.Threads
	q := &Queue{locals: make([]local, n)}
	for i := range q.locals {
		q.locals[i].heap = binheap.New(cfg.Arity)
		q.locals[i].min.Store(emptyKey)
	}
	return q
}

// NewHandle implements pqs.Queue.
func (q *Queue) NewHandle() pqs.Handle {
	return &handle{q: q, rng: xrand.New()}
}

type handle struct {
	q   *Queue
	rng *xrand.Source
}

// Insert implements pqs.Handle: lock a random queue (retrying TryLock on a
// fresh random choice under contention) and push.
func (h *handle) Insert(key uint64) {
	for {
		l := &h.q.locals[h.rng.Intn(len(h.q.locals))]
		if !l.mu.TryLock() {
			continue
		}
		l.heap.Push(key)
		m, _ := l.heap.Peek()
		l.min.Store(m)
		l.mu.Unlock()
		return
	}
}

// TryDeleteMin implements pqs.Handle: two-choice delete. ok=false means a
// full sweep over all local heaps found nothing — with concurrent inserts
// this can be spurious, as with every relaxed queue here.
func (h *handle) TryDeleteMin() (uint64, bool) {
	n := len(h.q.locals)
	for attempt := 0; attempt < 2*n; attempt++ {
		a := &h.q.locals[h.rng.Intn(n)]
		b := &h.q.locals[h.rng.Intn(n)]
		// Compare cached minima without locks.
		ka, kb := a.min.Load(), b.min.Load()
		best := a
		if kb < ka {
			best = b
		} else if ka == emptyKey && kb == emptyKey {
			continue // both likely empty; resample
		}
		if !best.mu.TryLock() {
			continue
		}
		k, ok := best.heap.Pop()
		m, okPeek := best.heap.Peek()
		if !okPeek {
			m = emptyKey
		}
		best.min.Store(m)
		best.mu.Unlock()
		if ok {
			return k, true
		}
	}
	// Random probing found nothing: sweep every queue once for a stronger
	// emptiness signal before giving up. The min cache is only a hint (a
	// real key can equal the sentinel), so the sweep locks unconditionally.
	for i := range h.q.locals {
		l := &h.q.locals[i]
		l.mu.Lock()
		k, ok := l.heap.Pop()
		m, okPeek := l.heap.Peek()
		if !okPeek {
			m = emptyKey
		}
		l.min.Store(m)
		l.mu.Unlock()
		if ok {
			return k, true
		}
	}
	return 0, false
}
