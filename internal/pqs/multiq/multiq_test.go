package multiq

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestConformance(t *testing.T) {
	pqtest.Run(t, "MultiQueue", func(threads int) pqs.Queue {
		return New(Config{C: 2, Threads: threads, Arity: 8})
	}, pqtest.Options{
		Exact:               false,
		SequentialRankBound: -1, // no worst-case bound, as the paper stresses
	})
}

func TestDefaults(t *testing.T) {
	q := New(Config{})
	if len(q.locals) != 2 {
		t.Fatalf("default C*Threads = %d, want 2", len(q.locals))
	}
	h := q.NewHandle()
	h.Insert(5)
	if k, ok := h.TryDeleteMin(); !ok || k != 5 {
		t.Fatalf("got %d (%v)", k, ok)
	}
}

// TestTwoChoiceQuality: with one thread and c=2 (2 queues), the returned key
// should usually be near the front. This is a smoke test of relaxation
// quality, not a bound (none exists).
func TestTwoChoiceQuality(t *testing.T) {
	q := New(Config{C: 2, Threads: 4})
	h := q.NewHandle()
	const n = 8192
	for i := uint64(0); i < n; i++ {
		h.Insert(i)
	}
	worst := uint64(0)
	for i := 0; i < 100; i++ {
		k, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		if k > worst {
			worst = k
		}
	}
	// 8 queues: the first 100 deletions should stay well inside the first
	// ~100 + slack ranks. Allow a generous factor to keep this non-flaky.
	if worst > 100*8*4 {
		t.Fatalf("two-choice deletion returned key %d among first 100 deletions", worst)
	}
}

func TestEmptyKeySentinelHarmless(t *testing.T) {
	q := New(Config{C: 1, Threads: 1})
	h := q.NewHandle()
	h.Insert(^uint64(0)) // the sentinel value as a real key
	h.Insert(3)
	seen := map[uint64]bool{}
	for {
		k, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		seen[k] = true
	}
	if !seen[3] || !seen[^uint64(0)] {
		t.Fatalf("lost keys with sentinel value present: %v", seen)
	}
}

func BenchmarkMixParallel(b *testing.B) {
	q := New(Config{C: 2, Threads: 8})
	h := q.NewHandle()
	for i := 0; i < 4096; i++ {
		h.Insert(uint64(i))
	}
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}
