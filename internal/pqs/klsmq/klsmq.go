// Package klsmq adapts the k-LSM queue (internal/core) to the benchmark
// harness interface. Benchmarks store bare keys, so the payload type is
// struct{} — the generic instantiation compiles to zero overhead.
package klsmq

import (
	"klsm/internal/core"
	"klsm/internal/pqs"
)

// Queue wraps a core k-LSM queue for the harness.
type Queue struct {
	q *core.Queue[struct{}]
}

// New returns a combined k-LSM with the given relaxation parameter.
func New(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:             k,
		Mode:          core.Combined,
		LocalOrdering: true,
	})}
}

// NewNoLocalOrdering returns a combined k-LSM without the Bloom-filter local
// ordering check (ablation E6).
func NewNoLocalOrdering(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:             k,
		Mode:          core.Combined,
		LocalOrdering: false,
	})}
}

// NewDLSM returns the standalone distributed LSM (Figure 3's DLSM).
func NewDLSM() *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{Mode: core.DistOnly})}
}

// NewNoPooling returns a combined k-LSM with the §4.4 block/item recycling
// disabled (allocation ablation).
func NewNoPooling(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:              k,
		Mode:           core.Combined,
		LocalOrdering:  true,
		DisablePooling: true,
	})}
}

// NewNoReclaim returns a combined k-LSM with pooling on but the §4.4
// deterministic item reclamation disabled — deleted items fall back to the
// garbage collector (reclamation ablation E11).
func NewNoReclaim(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:                      k,
		Mode:                   core.Combined,
		LocalOrdering:          true,
		DisableItemReclamation: true,
	})}
}

// NewNoMinCache returns a combined k-LSM with the delete-min fast path
// (per-block min cache, candidate window, skip-shared hint) disabled
// (min-cache ablation).
func NewNoMinCache(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:                 k,
		Mode:              core.Combined,
		LocalOrdering:     true,
		DisableMinCaching: true,
	})}
}

// NewNoDelBuf returns a combined k-LSM with the per-handle deletion buffer
// disabled (deletion-buffer ablation E16): every delete-min walks the
// candidate window / min-cache path directly.
func NewNoDelBuf(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:                     k,
		Mode:                  core.Combined,
		LocalOrdering:         true,
		DisableDeletionBuffer: true,
	})}
}

// NewNoSticky returns a combined k-LSM with the sticky skip-shared hint
// disabled (stickiness ablation): the hint dies with its array, as before
// the sticky generalization.
func NewNoSticky(k int) *Queue {
	return &Queue{q: core.NewQueue(core.Config[struct{}]{
		K:                 k,
		Mode:              core.Combined,
		LocalOrdering:     true,
		DisableStickyHint: true,
	})}
}

// NewWithDrop returns a combined k-LSM with the lazy-deletion callback
// (paper §4.5), used by the SSSP benchmark.
func NewWithDrop(k int, drop func(key uint64) bool) *Queue {
	cfg := core.Config[struct{}]{
		K:             k,
		Mode:          core.Combined,
		LocalOrdering: true,
	}
	if drop != nil {
		cfg.Drop = func(key uint64, _ struct{}) bool { return drop(key) }
	}
	return &Queue{q: core.NewQueue(cfg)}
}

// NewHandle implements pqs.Queue.
func (q *Queue) NewHandle() pqs.Handle {
	return &handle{h: q.q.NewHandle()}
}

type handle struct {
	h *core.Handle[struct{}]
}

// Insert implements pqs.Handle.
func (h *handle) Insert(key uint64) { h.h.Insert(key, struct{}{}) }

// TryDeleteMin implements pqs.Handle.
func (h *handle) TryDeleteMin() (uint64, bool) {
	k, _, ok := h.h.TryDeleteMin()
	return k, ok
}

// InsertBatch implements pqs.BatchHandle via the core batch entry point.
func (h *handle) InsertBatch(keys []uint64) { h.h.InsertBatch(keys, nil) }

// DrainMin implements pqs.BatchHandle.
func (h *handle) DrainMin(dst []uint64, n int) []uint64 {
	h.h.DrainMin(n, func(k uint64, _ struct{}) { dst = append(dst, k) })
	return dst
}
