package klsmq

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestConformanceK0(t *testing.T) {
	pqtest.Run(t, "kLSM0", func(threads int) pqs.Queue { return New(0) }, pqtest.Options{
		// Single handle with k=0 is exact (local ordering + strict shared).
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestConformanceK256(t *testing.T) {
	pqtest.Run(t, "kLSM256", func(threads int) pqs.Queue { return New(256) }, pqtest.Options{
		// Single handle is still exact thanks to local ordering.
		Exact:               true,
		SequentialRankBound: 256,
	})
}

func TestConformanceK4096NoLocalOrdering(t *testing.T) {
	pqtest.Run(t, "kLSM4096nlo", func(threads int) pqs.Queue { return NewNoLocalOrdering(4096) }, pqtest.Options{
		Exact:               false,
		SequentialRankBound: 4096,
	})
}

func TestConformanceDLSM(t *testing.T) {
	pqtest.Run(t, "DLSM", func(threads int) pqs.Queue { return NewDLSM() }, pqtest.Options{
		// Single handle: local ordering makes the DLSM exact sequentially.
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestNewWithDropFiltersStale(t *testing.T) {
	q := NewWithDrop(4, func(key uint64) bool { return key >= 100 })
	h := q.NewHandle()
	for i := uint64(0); i < 50; i++ {
		h.Insert(i)
		h.Insert(100 + i)
	}
	for {
		k, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		if k >= 100 {
			t.Fatalf("dropped key %d surfaced", k)
		}
	}
}

func TestNewWithNilDrop(t *testing.T) {
	q := NewWithDrop(4, nil)
	h := q.NewHandle()
	h.Insert(1)
	if k, ok := h.TryDeleteMin(); !ok || k != 1 {
		t.Fatalf("nil-drop queue broken: %d %v", k, ok)
	}
}
