// Package pqtest is the conformance suite every priority queue in this
// repository must pass, exact or relaxed.
//
// The load-bearing property for relaxed queues is *conservation*: every
// inserted key is deleted exactly once — never lost, never duplicated —
// regardless of relaxation, spying, batching or helping. Exact queues
// additionally guarantee sorted single-threaded extraction.
package pqtest

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/xrand"
)

// Factory builds a queue sized for the given expected number of concurrent
// handles (some queues, like the MultiQueue, size internal structures by T).
type Factory func(threads int) pqs.Queue

// Options tunes the suite for a queue's semantics.
type Options struct {
	// Exact queues must extract in globally sorted order single-threaded.
	Exact bool
	// SequentialRankBound, when >= 0, bounds the rank error of every
	// single-threaded delete-min (k-LSM with one handle: k).
	SequentialRankBound int
	// Short scales down iteration counts (used automatically when
	// testing.Short()).
	Short bool
}

// Run executes the full suite.
func Run(t *testing.T, name string, f Factory, opts Options) {
	if testing.Short() {
		opts.Short = true
	}
	t.Run(name+"/Empty", func(t *testing.T) { testEmpty(t, f) })
	t.Run(name+"/SingleItem", func(t *testing.T) { testSingleItem(t, f) })
	t.Run(name+"/SequentialConservation", func(t *testing.T) { testSequentialConservation(t, f, opts) })
	if opts.Exact {
		t.Run(name+"/SortedExtraction", func(t *testing.T) { testSortedExtraction(t, f, opts) })
	}
	if opts.SequentialRankBound >= 0 {
		t.Run(name+"/RankBound", func(t *testing.T) { testRankBound(t, f, opts) })
	}
	t.Run(name+"/ConcurrentConservation", func(t *testing.T) { testConcurrentConservation(t, f, opts) })
	t.Run(name+"/MixedStress", func(t *testing.T) { testMixedStress(t, f, opts) })
	t.Run(name+"/HandleChurn", func(t *testing.T) { testHandleChurn(t, f, opts) })
}

// testHandleChurn abandons handles mid-run and creates fresh ones,
// verifying that items held in abandoned handles' structures (DistLSMs,
// local heaps after Flush) remain reachable and conservation holds. This
// catches victim-registry and publication bugs that fixed-handle tests
// never exercise.
func testHandleChurn(t *testing.T, f Factory, opts Options) {
	const workers = 4
	rounds := 20
	perRound := 200
	if opts.Short {
		rounds, perRound = 6, 50
	}
	q := f(workers)
	var wg sync.WaitGroup
	extracted := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Fresh handle every round; the previous one is abandoned
				// with items potentially still in its local structures.
				h := q.NewHandle()
				base := uint64((id*rounds + r) * perRound)
				for i := 0; i < perRound; i++ {
					h.Insert(base + uint64(i))
				}
				// Delete roughly half before abandoning.
				for i := 0; i < perRound/2; i++ {
					if k, ok := h.TryDeleteMin(); ok {
						extracted[id] = append(extracted[id], k)
					}
				}
				pqs.FlushHandle(h)
			}
		}(w)
	}
	wg.Wait()
	extracted = append(extracted, drainAll(q.NewHandle()))
	seen := make(map[uint64]int)
	total := 0
	for _, keys := range extracted {
		total += len(keys)
		for _, k := range keys {
			seen[k]++
		}
	}
	want := workers * rounds * perRound
	if total != want {
		t.Fatalf("extracted %d of %d with handle churn", total, want)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d extracted %d times", k, c)
		}
	}
}

func testEmpty(t *testing.T, f Factory) {
	q := f(1)
	h := q.NewHandle()
	if k, ok := h.TryDeleteMin(); ok {
		t.Fatalf("TryDeleteMin on empty queue returned %d", k)
	}
}

func testSingleItem(t *testing.T, f Factory) {
	q := f(1)
	h := q.NewHandle()
	h.Insert(42)
	k, ok := h.TryDeleteMin()
	if !ok || k != 42 {
		t.Fatalf("got %d (%v), want 42", k, ok)
	}
	if k, ok := h.TryDeleteMin(); ok {
		t.Fatalf("second delete returned %d from single-item queue", k)
	}
}

// drainAll drains through h until a TryDeleteMin failure is repeated
// attempts times in a row (tolerating spurious failures in quiescence-free
// designs; in these tests the queue is quiescent so one failure suffices,
// but retrying is cheap insurance).
func drainAll(h pqs.Handle) []uint64 {
	var out []uint64
	fails := 0
	for fails < 3 {
		k, ok := h.TryDeleteMin()
		if !ok {
			fails++
			continue
		}
		fails = 0
		out = append(out, k)
	}
	return out
}

func testSequentialConservation(t *testing.T, f Factory, opts Options) {
	n := 5000
	if opts.Short {
		n = 500
	}
	q := f(1)
	h := q.NewHandle()
	src := xrand.NewSeeded(11)
	want := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		k := src.Uint64() % 100000
		h.Insert(k)
		want[k]++
	}
	got := drainAll(h)
	if len(got) != n {
		t.Fatalf("drained %d keys, inserted %d", len(got), n)
	}
	for _, k := range got {
		if want[k] == 0 {
			t.Fatalf("phantom or duplicated key %d", k)
		}
		want[k]--
	}
}

func testSortedExtraction(t *testing.T, f Factory, opts Options) {
	n := 5000
	if opts.Short {
		n = 500
	}
	q := f(1)
	h := q.NewHandle()
	src := xrand.NewSeeded(13)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = src.Uint64() % 100000
		h.Insert(keys[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, want := range keys {
		got, ok := h.TryDeleteMin()
		if !ok || got != want {
			t.Fatalf("pop %d: got %d (%v), want %d", i, got, ok, want)
		}
	}
}

func testRankBound(t *testing.T, f Factory, opts Options) {
	n := 2000
	if opts.Short {
		n = 300
	}
	bound := opts.SequentialRankBound
	q := f(1)
	h := q.NewHandle()
	src := xrand.NewSeeded(17)
	var live []uint64
	for i := 0; i < n; i++ {
		k := src.Uint64() % 1000000
		h.Insert(k)
		j := sort.Search(len(live), func(i int) bool { return live[i] >= k })
		live = append(live, 0)
		copy(live[j+1:], live[j:])
		live[j] = k
	}
	for len(live) > 0 {
		k, ok := h.TryDeleteMin()
		if !ok {
			t.Fatalf("queue empty with %d live keys", len(live))
		}
		rank := sort.Search(len(live), func(i int) bool { return live[i] >= k })
		if rank > bound {
			t.Fatalf("key %d has rank %d > bound %d", k, rank, bound)
		}
		j := sort.Search(len(live), func(i int) bool { return live[i] >= k })
		if j == len(live) || live[j] != k {
			t.Fatalf("deleted key %d not live", k)
		}
		live = append(live[:j], live[j+1:]...)
	}
}

func testConcurrentConservation(t *testing.T, f Factory, opts Options) {
	const workers = 8
	n := 4000
	if opts.Short {
		n = 600
	}
	q := f(workers)
	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			base := uint64(id * n)
			for i := 0; i < n; i++ {
				h.Insert(base + uint64(i))
			}
			for {
				k, ok := h.TryDeleteMin()
				if !ok {
					return
				}
				results[id] = append(results[id], k)
			}
		}(w)
	}
	wg.Wait()
	// Catch stragglers left behind by workers that saw a spurious failure.
	results = append(results, drainAll(q.NewHandle()))

	seen := make(map[uint64]int)
	total := 0
	for _, keys := range results {
		total += len(keys)
		for _, k := range keys {
			seen[k]++
		}
	}
	if total != workers*n {
		t.Fatalf("extracted %d keys, want %d", total, workers*n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d extracted %d times", k, c)
		}
		if k >= uint64(workers*n) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func testMixedStress(t *testing.T, f Factory, opts Options) {
	const workers = 8
	ops := 20000
	if opts.Short {
		ops = 3000
	}
	q := f(workers)
	var wg sync.WaitGroup
	inserted := make([]int64, workers)
	deleted := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			src := xrand.NewSeeded(uint64(id)*7 + 3)
			for i := 0; i < ops; i++ {
				if src.Bool() {
					h.Insert(src.Uint64() % 1_000_000)
					inserted[id]++
				} else if _, ok := h.TryDeleteMin(); ok {
					deleted[id]++
				}
			}
			pqs.FlushHandle(h)
		}(w)
	}
	wg.Wait()
	var totalIns, totalDel int64
	for w := 0; w < workers; w++ {
		totalIns += inserted[w]
		totalDel += deleted[w]
	}
	rest := int64(len(drainAll(q.NewHandle())))
	if totalDel+rest != totalIns {
		t.Fatalf("conservation violated: inserted %d, deleted %d, drained %d", totalIns, totalDel, rest)
	}
}
