// Package klsmp adapts the public persistent k-LSM (klsm.Open) to the
// benchmark harness interface, so the durability overhead can be measured
// with the exact Figure 3 machinery that measures the volatile queue. Each
// queue owns a fresh temporary directory; Close releases the WAL and
// removes it. Payloads are struct{} via klsm.NoValue — the benchmark
// measures the logging and group-commit cost, not value serialization.
package klsmp

import (
	"os"
	"time"

	"klsm"
	"klsm/internal/pqs"
)

// Queue wraps a persistent klsm queue for the harness.
type Queue struct {
	q   *klsm.Queue[struct{}]
	dir string
}

// New opens a persistent queue with relaxation k in a fresh temporary
// directory, group-committing on the given SyncInterval (0 means fsync only
// on explicit Sync/Close — the upper bound of what batching can hide).
// Benchmarks are not recovery consumers, so setup errors panic.
func New(k int, syncInterval time.Duration) *Queue {
	dir, err := os.MkdirTemp("", "klsmp-bench-")
	if err != nil {
		panic("klsmp: " + err.Error())
	}
	q, err := klsm.Open(dir, klsm.NoValue{},
		klsm.WithRelaxation(k), klsm.WithSyncInterval(syncInterval))
	if err != nil {
		os.RemoveAll(dir)
		panic("klsmp: " + err.Error())
	}
	return &Queue{q: q, dir: dir}
}

// NewHandle implements pqs.Queue.
func (q *Queue) NewHandle() pqs.Handle {
	return &handle{h: q.q.NewHandle()}
}

// Close flushes and closes the queue and deletes its directory. The final
// fsync is included so a timed phase cannot defer durability work past the
// measurement without the cost appearing somewhere.
func (q *Queue) Close() error {
	err := q.q.Close()
	if rerr := os.RemoveAll(q.dir); err == nil {
		err = rerr
	}
	return err
}

type handle struct {
	h *klsm.Handle[struct{}]
}

func (h *handle) Insert(key uint64) { h.h.Insert(key, struct{}{}) }

func (h *handle) TryDeleteMin() (uint64, bool) {
	k, _, ok := h.h.TryDeleteMin()
	return k, ok
}

// InsertBatch implements pqs.BatchHandle.
func (h *handle) InsertBatch(keys []uint64) { h.h.InsertBatch(keys, nil) }

// DrainMin implements pqs.BatchHandle.
func (h *handle) DrainMin(dst []uint64, n int) []uint64 {
	for _, kv := range h.h.DrainMin(nil, n) {
		dst = append(dst, kv.Key)
	}
	return dst
}
