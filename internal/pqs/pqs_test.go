package pqs

import "testing"

// fakeHandle implements Handle without Flusher.
type fakeHandle struct{ flushed bool }

func (f *fakeHandle) Insert(uint64)                {}
func (f *fakeHandle) TryDeleteMin() (uint64, bool) { return 0, false }

// flushingHandle also implements Flusher.
type flushingHandle struct {
	fakeHandle
}

func (f *flushingHandle) Flush() { f.flushed = true }

func TestFlushHandleNoop(t *testing.T) {
	h := &fakeHandle{}
	FlushHandle(h) // must not panic
	if h.flushed {
		t.Fatal("non-flusher marked flushed")
	}
}

func TestFlushHandleCallsFlush(t *testing.T) {
	h := &flushingHandle{}
	FlushHandle(h)
	if !h.flushed {
		t.Fatal("Flush not called on Flusher")
	}
}
