// Package pqs defines the uniform concurrent priority queue interface the
// benchmark harness drives, and the registry of implementations compared in
// the paper's evaluation (Figure 3 and Figure 4).
//
// All benchmark queues operate on bare uint64 keys: the paper's benchmarks
// store keys only, and the SSSP application packs its payload (node ID) into
// the key's low bits so that every queue — relaxed or exact — is exercised
// through the identical interface.
package pqs

// Queue is a concurrent priority queue under test.
type Queue interface {
	// NewHandle returns this goroutine's access point. Handles must not be
	// shared between concurrently running goroutines.
	NewHandle() Handle
}

// Handle is a single goroutine's view of a Queue.
type Handle interface {
	// Insert adds a key. It always succeeds.
	Insert(key uint64)
	// TryDeleteMin removes and returns a small key per the queue's
	// semantics (exact or relaxed). ok=false means no key was found, which
	// for some queues can be spurious under concurrency.
	TryDeleteMin() (key uint64, ok bool)
}

// BatchHandle is implemented by handles that support the v2 batch
// operations: InsertBatch publishes the keys in one structural operation
// and DrainMin pops up to n keys (append semantics), stopping early when
// the queue is relaxed-empty. The harness uses these when a benchmark
// requests a batch size; queues without batch support fall back to loops
// of single operations, which is exactly the baseline the batch API is
// measured against.
type BatchHandle interface {
	InsertBatch(keys []uint64)
	DrainMin(dst []uint64, n int) []uint64
}

// Flusher is implemented by handles that buffer inserted keys privately
// (the Wimmer et al. queues): Flush publishes any buffered keys so other
// handles can reach them. Workers must call Flush before abandoning a
// handle, mirroring scheduler threads flushing at termination. Flush is a
// no-op for queues whose items are always globally reachable.
type Flusher interface {
	Flush()
}

// FlushHandle calls Flush if h buffers privately.
func FlushHandle(h Handle) {
	if f, ok := h.(Flusher); ok {
		f.Flush()
	}
}
