// Package linden implements the Lindén & Jonsson skiplist-based concurrent
// priority queue (OPODIS 2013), the paper's representative exact (non-
// relaxed) lock-free priority queue in Figure 3.
//
// The algorithmic substance — single-CAS logical deletion by marking the
// victim's bottom-level next pointer, batched physical excision of the
// deleted prefix once it exceeds BoundOffset — lives in internal/skiplist;
// this package binds it to the harness interface.
package linden

import (
	"klsm/internal/pqs"
	"klsm/internal/skiplist"
	"klsm/internal/xrand"
)

// DefaultBoundOffset is the deleted-prefix length that triggers physical
// restructuring; the original evaluation found the best values in the tens
// to low hundreds.
const DefaultBoundOffset = 32

// Queue is a Lindén & Jonsson priority queue.
type Queue struct {
	list *skiplist.List
}

// New returns an empty queue. boundOffset <= 0 selects DefaultBoundOffset.
func New(boundOffset int) *Queue {
	if boundOffset <= 0 {
		boundOffset = DefaultBoundOffset
	}
	return &Queue{list: skiplist.New(boundOffset)}
}

// NewHandle implements pqs.Queue.
func (q *Queue) NewHandle() pqs.Handle {
	return &handle{q: q, rng: xrand.New()}
}

type handle struct {
	q   *Queue
	rng *xrand.Source
}

// Insert implements pqs.Handle.
func (h *handle) Insert(key uint64) {
	h.q.list.Insert(h.rng, key)
}

// TryDeleteMin implements pqs.Handle. The queue is exact: the returned key
// is the minimum at the linearization point, and ok=false means the queue
// was observed empty.
func (h *handle) TryDeleteMin() (uint64, bool) {
	return h.q.list.DeleteMin()
}

// Len counts live keys (quiescent callers only; for tests).
func (q *Queue) Len() int { return q.list.LiveLen() }
