package linden

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestConformance(t *testing.T) {
	pqtest.Run(t, "Linden", func(threads int) pqs.Queue { return New(0) }, pqtest.Options{
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestConformanceSmallBoundOffset(t *testing.T) {
	// Aggressive restructuring (bound 1) stresses the excision path.
	pqtest.Run(t, "LindenBound1", func(threads int) pqs.Queue { return New(1) }, pqtest.Options{
		Exact:               true,
		SequentialRankBound: 0,
	})
}

func TestLen(t *testing.T) {
	q := New(0)
	h := q.NewHandle()
	h.Insert(3)
	h.Insert(1)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func BenchmarkMixParallel(b *testing.B) {
	q := New(0)
	h := q.NewHandle()
	for i := 0; i < 4096; i++ {
		h.Insert(uint64(i) * 7)
	}
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}
