package spraylist

import (
	"testing"

	"klsm/internal/pqs"
	"klsm/internal/pqs/pqtest"
)

func TestConformance(t *testing.T) {
	pqtest.Run(t, "SprayList", func(threads int) pqs.Queue {
		return New(Config{Threads: threads})
	}, pqtest.Options{
		Exact:               false,
		SequentialRankBound: -1, // probabilistic relaxation, no hard bound
	})
}

func TestSprayParamsScaleWithThreads(t *testing.T) {
	small := New(Config{Threads: 1})
	big := New(Config{Threads: 64})
	if big.height <= small.height {
		t.Fatalf("spray height does not grow with T: %d vs %d", small.height, big.height)
	}
}

// TestSprayQuality: single-threaded sprays on a sorted range should land
// near the front. Statistical smoke test with a generous bound.
func TestSprayQuality(t *testing.T) {
	q := New(Config{Threads: 8})
	h := q.NewHandle()
	const n = 1 << 14
	for i := uint64(0); i < n; i++ {
		h.Insert(i)
	}
	var worst uint64
	for i := 0; i < 200; i++ {
		k, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		if k > worst {
			worst = k
		}
	}
	// T=8: O(T log^3 T) ≈ 8*9^3 ≈ 6k. The walk is approximate, so just
	// require the landings to stay in the first half of the list.
	if worst > n/2 {
		t.Fatalf("spray landed at rank ~%d of %d", worst, n)
	}
}

func TestCleanerRestructures(t *testing.T) {
	q := New(Config{Threads: 2, BoundOffset: 4})
	h := q.NewHandle()
	for i := uint64(0); i < 200; i++ {
		h.Insert(i)
	}
	for i := 0; i < 150; i++ {
		if _, ok := h.TryDeleteMin(); !ok {
			t.Fatal("premature empty")
		}
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
}

func BenchmarkMixParallel(b *testing.B) {
	q := New(Config{Threads: 8})
	h := q.NewHandle()
	for i := 0; i < 4096; i++ {
		h.Insert(uint64(i) * 3)
	}
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		i := uint64(0)
		for pb.Next() {
			if i%2 == 0 {
				h.Insert(i)
			} else {
				h.TryDeleteMin()
			}
			i++
		}
	})
}
