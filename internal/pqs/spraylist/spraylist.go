// Package spraylist implements the SprayList of Alistarh, Kopinsky, Li and
// Shavit (PPoPP 2015), the relaxed skiplist-based comparison queue of the
// paper's Figure 3.
//
// Delete-min performs a "spray": a random walk that starts a few levels up
// the skiplist, repeatedly jumps a uniformly random number of nodes forward
// and descends, and finally claims the node it lands on. The landing
// distribution is close to uniform over the O(T·log³T) smallest keys, which
// spreads contending threads across the head region instead of funneling
// them onto the single minimum. As the paper's comparison points out, the
// relaxation is probabilistic only — no worst-case skipping bound exists,
// and local ordering is not provided.
//
// Spray parameters follow the shape of the original (height ⌊log₂T⌋+K,
// per-level jump length uniform in [0, L]); the exact constants are scaled
// empirically since the original's are not fully documented (paper §6.1
// makes the same observation about the SprayList's constants).
//
// A small fraction of delete-min calls (≈1/T, as in the original) become
// "cleaners" that run an exact Lindén-style delete-min pass, physically
// excising the deleted prefix as they go.
package spraylist

import (
	"math/bits"

	"klsm/internal/pqs"
	"klsm/internal/skiplist"
	"klsm/internal/xrand"
)

// Config parameterizes the SprayList.
type Config struct {
	// Threads is the design-point thread count T used to size sprays.
	Threads int
	// K is added to the starting height ⌊log₂T⌋ (default 1).
	K int
	// M scales the per-level maximum jump length (default 2).
	M int
	// BoundOffset is the cleaner's restructuring threshold.
	BoundOffset int
}

// Queue is a SprayList.
type Queue struct {
	list    *skiplist.List
	threads int
	height  int // spray starting height
	jump    int // per-level max jump length L
}

// New returns an empty SprayList sized for cfg.Threads concurrent handles.
func New(cfg Config) *Queue {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	if cfg.M <= 0 {
		cfg.M = 2
	}
	if cfg.BoundOffset <= 0 {
		cfg.BoundOffset = 32
	}
	logT := bits.Len(uint(cfg.Threads)) // ⌊log₂T⌋+1 for T>0
	height := logT + cfg.K
	if height >= skiplist.MaxHeight {
		height = skiplist.MaxHeight - 1
	}
	// Per-level jump bound L ≈ M·T^(1/height): keeps the expected landing
	// rank within the O(T log³T) region of the original analysis.
	jump := cfg.M
	if cfg.Threads > 1 {
		root := 1
		for root < 64 && pow(root+1, height) <= cfg.Threads {
			root++
		}
		jump = cfg.M * root
	}
	if jump < 1 {
		jump = 1
	}
	return &Queue{
		list:    skiplist.New(cfg.BoundOffset),
		threads: cfg.Threads,
		height:  height,
		jump:    jump,
	}
}

// pow is a small integer power with overflow saturation.
func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
		if r > 1<<30 {
			return 1 << 30
		}
	}
	return r
}

// NewHandle implements pqs.Queue.
func (q *Queue) NewHandle() pqs.Handle {
	return &handle{q: q, rng: xrand.New()}
}

type handle struct {
	q   *Queue
	rng *xrand.Source
}

// Insert implements pqs.Handle (a plain lock-free skiplist insert).
func (h *handle) Insert(key uint64) {
	h.q.list.Insert(h.rng, key)
}

// TryDeleteMin implements pqs.Handle: spray, claim, retry; with probability
// 1/T act as a cleaner instead. ok=false means an exact scan found the list
// empty.
func (h *handle) TryDeleteMin() (uint64, bool) {
	q := h.q
	// Cleaner role: exact delete-min with prefix restructuring.
	if q.threads > 1 && h.rng.Intn(q.threads) == 0 {
		return q.list.DeleteMin()
	}
	const sprayAttempts = 4
	for attempt := 0; attempt < sprayAttempts; attempt++ {
		if key, ok := h.sprayOnce(); ok {
			return key, true
		}
	}
	// Sprays kept colliding or overshooting; fall back to the exact path,
	// which also gives a definitive emptiness answer.
	return q.list.DeleteMin()
}

// sprayOnce performs one spray descent and tries to claim the landing node
// or a near successor.
func (h *handle) sprayOnce() (uint64, bool) {
	q := h.q
	cur := q.list.Head()
	for level := q.height; level >= 0; level-- {
		steps := h.rng.Intn(q.jump + 1)
		for s := 0; s < steps; s++ {
			nxt := q.list.Next(cur, level)
			if nxt == nil {
				break
			}
			cur = nxt
		}
	}
	// Walk forward at the bottom until a live node is claimed; bound the
	// walk so a fully-deleted region retries the spray rather than scanning
	// the whole list.
	const claimWalk = 64
	for i := 0; i < claimWalk && cur != nil; i++ {
		if cur != q.list.Head() && !q.list.Deleted(cur) && q.list.TryClaim(cur) {
			return cur.Key(), true
		}
		cur = q.list.Next(cur, 0)
	}
	return 0, false
}

// Len counts live keys (quiescent callers only; for tests).
func (q *Queue) Len() int { return q.list.LiveLen() }
