// Package checkpointd implements the automatic half of the durability
// layer's checkpoint machinery: log-structured compaction of frozen WAL
// files into sorted segments, and the size/age-triggered scheduler that
// runs checkpoints and orphan-file GC off the mutators' hot path.
//
// # Compaction
//
// A checkpoint begins by rotating the live WAL: the old file is frozen —
// complete, durable, immutable — and named by a published manifest, so a
// crash at any later point loses nothing. Compact then merges every frozen
// WAL and every existing segment into a fresh sorted segment set, purely
// from those immutable on-disk inputs. It never reads the in-memory queue,
// which is what makes a checkpoint safe to run concurrently with inserts
// and deletes: mutators keep appending to the successor WAL while Compact
// reads files no one writes anymore.
//
// Compaction rewrites the full segment set each time, because a frozen
// delete may target an entry inside any existing segment and the segment
// format has no tombstones: applying deletes during the merge is what keeps
// recovery O(live items + live WAL), not O(history).
//
// # Delete resolution
//
// Every delete record is appended after the insert it consumes (queue
// program order, serialized by the WAL mutex), and rotation preserves
// append order across files. A delete found in a frozen WAL therefore has
// its insert in the same WAL, an older frozen WAL, or a segment — all
// inputs of the same Compact call — so the merge resolves every delete it
// is responsible for. Deletes in the live WAL against freshly-compacted
// entries are the one remaining kind; recovery cancels those at replay,
// exactly as it always has.
package checkpointd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/segment"
	"klsm/internal/wal"
	"klsm/internal/walfault"
)

// CompactStats describes one compaction's inputs and effect.
type CompactStats struct {
	// FrozenWALs and FrozenRecords count the retired WAL inputs.
	FrozenWALs    int
	FrozenRecords int64
	// SegmentsIn counts the pre-existing segment files merged.
	SegmentsIn int
	// Entries is the live entry count written out.
	Entries int64
	// DeletesApplied counts delete records whose insert the merge found and
	// cancelled; UnknownDeletes counts ones it did not (possible only after
	// operator surgery on the directory — counted, not fatal, mirroring
	// recovery).
	DeletesApplied int64
	UnknownDeletes int64
}

// Compact merges the frozen WAL files and existing segments into a fresh
// sorted segment set of at most chunk entries per file, naming each new file
// via nextSeg and fsyncing it before returning. On error every file it
// created is removed; the caller's manifest still names the inputs, so the
// checkpoint can simply be retried. Compact reads only immutable files and
// is safe to run concurrently with appends to the live (successor) WAL.
func Compact(fs walfault.FS, frozen []string, segs []segment.Ref, chunk int,
	nextSeg func() string) ([]segment.Ref, CompactStats, error) {
	var st CompactStats
	st.FrozenWALs = len(frozen)
	st.SegmentsIn = len(segs)

	// Deletes from every frozen WAL cancel entries wherever they live; a
	// frozen file is complete and durable (rotation fsynced it), so a torn
	// or corrupt record here is real damage, not a crash artifact.
	deleted := make(map[uint64]bool) // seq -> matched to its insert yet?
	type walInput struct {
		name string
		ops  []wal.Op
	}
	inputs := make([]walInput, 0, len(frozen))
	for _, name := range frozen {
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, st, fmt.Errorf("checkpointd: frozen WAL %s: %w", name, err)
		}
		in := walInput{name: name}
		res, err := wal.Scan(data, func(op wal.Op) {
			if op.Delete {
				deleted[op.Seq] = false
			} else {
				in.ops = append(in.ops, op)
			}
		})
		if err != nil {
			return nil, st, fmt.Errorf("checkpointd: frozen WAL %s: %w", name, err)
		}
		if res.Torn {
			return nil, st, fmt.Errorf("%w: checkpointd: frozen WAL %s has a torn tail (%d clean bytes)",
				wal.ErrCorrupt, name, res.GoodLen)
		}
		st.FrozenRecords += int64(res.Records)
		inputs = append(inputs, in)
	}

	var entries []segment.Entry
	keep := func(e segment.Entry) {
		if _, dead := deleted[e.Seq]; dead {
			deleted[e.Seq] = true
			st.DeletesApplied++
			return
		}
		entries = append(entries, e)
	}
	for _, ref := range segs {
		got, err := segment.Read(fs, ref.Name)
		if err != nil {
			return nil, st, fmt.Errorf("checkpointd: %w", err)
		}
		if int64(len(got)) != ref.Count {
			return nil, st, fmt.Errorf("%w: checkpointd: segment %s holds %d entries, manifest says %d",
				segment.ErrCorrupt, ref.Name, len(got), ref.Count)
		}
		for _, e := range got {
			keep(e)
		}
	}
	for _, in := range inputs {
		for _, op := range in.ops {
			keep(segment.Entry{Key: op.Key, Seq: op.Seq, Value: op.Value})
		}
	}
	for _, matched := range deleted {
		if !matched {
			st.UnknownDeletes++
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].Seq < entries[j].Seq
	})
	st.Entries = int64(len(entries))

	var refs []segment.Ref
	var staged []string
	abort := func(err error) ([]segment.Ref, CompactStats, error) {
		for _, n := range staged {
			fs.Remove(n)
		}
		return nil, st, err
	}
	for off := 0; off < len(entries); off += chunk {
		part := entries[off:min(off+chunk, len(entries))]
		name := nextSeg()
		if err := segment.Write(fs, name, part); err != nil {
			return abort(err)
		}
		staged = append(staged, name)
		refs = append(refs, segment.Ref{Name: name, Count: int64(len(part))})
	}
	return refs, st, nil
}

// Policy is the scheduler's trigger configuration.
type Policy struct {
	// MaxWALBytes triggers a checkpoint once the live WAL exceeds this many
	// bytes (0 disables the size trigger).
	MaxWALBytes int64
	// MaxAge triggers a checkpoint once this much time has passed since the
	// last one while un-checkpointed work exists (0 disables the age
	// trigger).
	MaxAge time.Duration
	// Poll is the trigger evaluation cadence; 0 derives it from the other
	// fields (a quarter of MaxAge, clamped to [10ms, 1s]).
	Poll time.Duration
	// GCEvery is the orphan-sweep cadence (0 = every 16th poll).
	GCEvery time.Duration
}

// Hooks connects a Scheduler to its queue. Every hook is called from the
// scheduler goroutine only.
type Hooks struct {
	// WALBytes reports the live WAL's current size plus any un-compacted
	// frozen backlog — the "work exists" signal both triggers gate on.
	WALBytes func() int64
	// Checkpoint runs one full checkpoint (rotate + compact + commit).
	Checkpoint func() error
	// SweepOrphans removes files named by no committed manifest and returns
	// how many it removed.
	SweepOrphans func() int
}

// SchedStats is a snapshot of a Scheduler's counters.
type SchedStats struct {
	// Runs counts completed automatic checkpoints; Failures counts attempts
	// that returned an error.
	Runs     int64
	Failures int64
	// OrphansRemoved sums the results of the timed orphan sweeps.
	OrphansRemoved int64
}

// Scheduler drives automatic checkpoints: a single goroutine polls the
// triggers and runs Checkpoint/SweepOrphans when they fire. It never runs
// two checkpoints concurrently (there is one goroutine), and the queue's
// own checkpoint mutex serializes it against manual Checkpoint calls.
type Scheduler struct {
	policy Policy
	hooks  Hooks
	stop   chan struct{}
	done   chan struct{}

	runs     atomic.Int64
	failures atomic.Int64
	orphans  atomic.Int64

	mu      sync.Mutex
	lastErr error
}

// Start launches the scheduler goroutine. Policy with neither trigger set
// still sweeps orphans on the GC cadence.
func Start(p Policy, h Hooks) *Scheduler {
	if p.Poll <= 0 {
		p.Poll = time.Second
		if p.MaxAge > 0 {
			p.Poll = max(p.MaxAge/4, 10*time.Millisecond)
		}
		p.Poll = min(p.Poll, time.Second)
	}
	if p.GCEvery <= 0 {
		p.GCEvery = 16 * p.Poll
	}
	s := &Scheduler{policy: p, hooks: h, stop: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s
}

// Stop terminates the scheduler, waiting for an in-flight checkpoint to
// finish. It is idempotent and safe to call before Close tears the queue
// down.
func (s *Scheduler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Stats returns the cumulative scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Runs:           s.runs.Load(),
		Failures:       s.failures.Load(),
		OrphansRemoved: s.orphans.Load(),
	}
}

// LastErr returns the most recent checkpoint failure (nil after a success).
func (s *Scheduler) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

func (s *Scheduler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.policy.Poll)
	defer tick.Stop()
	lastRun := time.Now()
	lastGC := time.Now()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		work := s.hooks.WALBytes()
		due := false
		if s.policy.MaxWALBytes > 0 && work >= s.policy.MaxWALBytes {
			due = true
		}
		if s.policy.MaxAge > 0 && work > 0 && time.Since(lastRun) >= s.policy.MaxAge {
			due = true
		}
		if due {
			// Reset on attempt, not success: a dead WAL fails every
			// checkpoint, and hot-looping it would burn the core the
			// scheduler exists to keep free.
			lastRun = time.Now()
			err := s.hooks.Checkpoint()
			s.mu.Lock()
			s.lastErr = err
			s.mu.Unlock()
			if err != nil {
				s.failures.Add(1)
			} else {
				s.runs.Add(1)
			}
		}
		if time.Since(lastGC) >= s.policy.GCEvery {
			lastGC = time.Now()
			s.orphans.Add(int64(s.hooks.SweepOrphans()))
		}
	}
}
