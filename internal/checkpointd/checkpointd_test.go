package checkpointd

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerSizeTrigger(t *testing.T) {
	var backlog atomic.Int64
	var ckpts atomic.Int64
	backlog.Store(100)
	s := Start(Policy{MaxWALBytes: 64, Poll: time.Millisecond}, Hooks{
		WALBytes: func() int64 { return backlog.Load() },
		Checkpoint: func() error {
			backlog.Store(0)
			ckpts.Add(1)
			return nil
		},
		SweepOrphans: func() int { return 0 },
	})
	defer s.Stop()
	waitFor(t, "size-triggered checkpoint", func() bool { return ckpts.Load() == 1 })
	// Backlog below the threshold and no age trigger: no further runs.
	time.Sleep(20 * time.Millisecond)
	if got := s.Stats().Runs; got != 1 {
		t.Fatalf("runs = %d after backlog dropped below threshold, want 1", got)
	}
	if err := s.LastErr(); err != nil {
		t.Fatalf("LastErr = %v after success, want nil", err)
	}
}

func TestSchedulerAgeTriggerNeedsWork(t *testing.T) {
	var backlog atomic.Int64
	var ckpts atomic.Int64
	s := Start(Policy{MaxAge: 2 * time.Millisecond, Poll: time.Millisecond}, Hooks{
		WALBytes: func() int64 { return backlog.Load() },
		Checkpoint: func() error {
			backlog.Store(0)
			ckpts.Add(1)
			return nil
		},
		SweepOrphans: func() int { return 0 },
	})
	defer s.Stop()
	// No un-checkpointed work: the age trigger must stay quiet.
	time.Sleep(20 * time.Millisecond)
	if got := ckpts.Load(); got != 0 {
		t.Fatalf("%d checkpoints with zero backlog, want 0", got)
	}
	backlog.Store(1)
	waitFor(t, "age-triggered checkpoint", func() bool { return ckpts.Load() >= 1 })
}

func TestSchedulerFailureBackoffAndRecovery(t *testing.T) {
	boom := errors.New("boom")
	var failing atomic.Bool
	var attempts atomic.Int64
	failing.Store(true)
	s := Start(Policy{MaxWALBytes: 1, Poll: time.Millisecond}, Hooks{
		WALBytes: func() int64 { return 10 },
		Checkpoint: func() error {
			attempts.Add(1)
			if failing.Load() {
				return boom
			}
			return nil
		},
		SweepOrphans: func() int { return 0 },
	})
	defer s.Stop()
	waitFor(t, "failed attempts", func() bool { return s.Stats().Failures >= 2 })
	if !errors.Is(s.LastErr(), boom) {
		t.Fatalf("LastErr = %v, want %v", s.LastErr(), boom)
	}
	failing.Store(false)
	waitFor(t, "recovery", func() bool { return s.Stats().Runs >= 1 })
	waitFor(t, "LastErr cleared", func() bool { return s.LastErr() == nil })
}

func TestSchedulerOrphanSweepCadence(t *testing.T) {
	var sweeps atomic.Int64
	s := Start(Policy{Poll: time.Millisecond, GCEvery: 2 * time.Millisecond}, Hooks{
		WALBytes:   func() int64 { return 0 },
		Checkpoint: func() error { return nil },
		SweepOrphans: func() int {
			sweeps.Add(1)
			return 3
		},
	})
	defer s.Stop()
	// Neither trigger is configured; the sweep must still run on cadence.
	waitFor(t, "orphan sweeps", func() bool { return sweeps.Load() >= 2 })
	waitFor(t, "orphan counter", func() bool { return s.Stats().OrphansRemoved >= 6 })
}

func TestSchedulerStopIdempotentAndWaits(t *testing.T) {
	inCkpt := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Bool
	s := Start(Policy{MaxWALBytes: 1, Poll: time.Millisecond}, Hooks{
		WALBytes: func() int64 { return 10 },
		Checkpoint: func() error {
			select {
			case inCkpt <- struct{}{}:
			default:
			}
			<-release
			done.Store(true)
			return nil
		},
		SweepOrphans: func() int { return 0 },
	})
	<-inCkpt
	stopped := make(chan struct{})
	go func() {
		s.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
		t.Fatal("Stop returned while a checkpoint was in flight")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-stopped
	if !done.Load() {
		t.Fatal("Stop returned before the in-flight checkpoint finished")
	}
	s.Stop() // idempotent
}
