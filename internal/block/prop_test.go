package block

import (
	"sort"
	"testing"
	"testing/quick"

	"klsm/internal/item"
	"klsm/internal/xrand"
)

// sortedDescKeys returns keys sorted descending.
func sortedDescKeys(keys []uint64) []uint64 {
	out := append([]uint64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// buildBlock constructs a block from arbitrary keys (sorted internally).
func buildBlock(keys []uint64) *Block[int] {
	sorted := sortedDescKeys(keys)
	b := New[int](LevelForCount(len(sorted)))
	for _, k := range sorted {
		b.Append(item.New(k, 0))
	}
	return b
}

// TestPropMergeIsSortedUnion: for arbitrary key multisets A and B, merging
// their blocks yields exactly the descending-sorted multiset A ∪ B.
func TestPropMergeIsSortedUnion(t *testing.T) {
	f := func(a, b []uint64) bool {
		if len(a) > 1<<MaxLevel || len(b) > 1<<MaxLevel {
			return true
		}
		m := Merge(buildBlock(a), buildBlock(b), nil)
		if !m.SortedDesc() {
			return false
		}
		want := sortedDescKeys(append(append([]uint64(nil), a...), b...))
		got := m.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Key() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropShrinkPreservesLiveItems: randomly delete a subset of a block's
// items; Shrink must keep exactly the live ones, in order, at a level whose
// capacity constraint holds.
func TestPropShrinkPreservesLiveItems(t *testing.T) {
	src := xrand.NewSeeded(123)
	f := func(keys []uint64, delMask []bool) bool {
		b := buildBlock(keys)
		var wantLive []uint64
		for i, it := range b.Items() {
			del := i < len(delMask) && delMask[i]
			// Also randomly delete beyond the mask length occasionally.
			if !del && len(delMask) > 0 && src.Intn(4) == 0 {
				del = true
			}
			if del {
				it.TryTake()
			} else {
				wantLive = append(wantLive, it.Key())
			}
		}
		s := b.Shrink()
		if !s.SortedDesc() {
			return false
		}
		// All live keys present (shrink may retain taken items mid-array
		// only if no copy was necessary, so compare live views).
		var gotLive []uint64
		for _, it := range s.Items() {
			if !it.Taken() {
				gotLive = append(gotLive, it.Key())
			}
		}
		if len(gotLive) != len(wantLive) {
			return false
		}
		for i := range wantLive {
			if gotLive[i] != wantLive[i] {
				return false
			}
		}
		// Level constraint: filled <= 2^level, and if level > 0 the block was
		// shrunk as far as the trimmed tail allows.
		if s.Filled() > s.Capacity() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCopyEqualsLiveView: Copy at the same level must contain exactly the
// live items.
func TestPropCopyEqualsLiveView(t *testing.T) {
	f := func(keys []uint64, delMask []bool) bool {
		b := buildBlock(keys)
		for i, it := range b.Items() {
			if i < len(delMask) && delMask[i] {
				it.TryTake()
			}
		}
		c := b.Copy(LevelForCount(len(keys)))
		var want []uint64
		for _, it := range b.Items() {
			if !it.Taken() {
				want = append(want, it.Key())
			}
		}
		got := c.Items()
		if len(got) != len(want) || c.LiveCount() != len(want) {
			return false
		}
		for i := range want {
			if got[i].Key() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMergeChainMatchesSort simulates the LSM insertion pattern: merge
// single-item blocks one at a time and verify the final content is the
// sorted input.
func TestPropMergeChainMatchesSort(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		acc := New[int](0)
		first := true
		for _, k := range keys {
			nb := New[int](0)
			nb.Append(item.New(k, 0))
			if first {
				acc, first = nb, false
			} else {
				acc = Merge(acc, nb, nil)
			}
		}
		want := sortedDescKeys(keys)
		got := acc.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Key() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMerge1K(b *testing.B) {
	keys := make([]uint64, 1024)
	src := xrand.NewSeeded(7)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	b1 := buildBlock(keys[:512])
	b2 := buildBlock(keys[512:])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Merge(b1, b2, nil)
	}
}

func BenchmarkShrinkClean(b *testing.B) {
	keys := make([]uint64, 1024)
	src := xrand.NewSeeded(9)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	blk := buildBlock(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = blk.Shrink()
	}
}
