package block

import (
	"testing"

	"klsm/internal/item"
)

// TestLevelForCountOverflowRegression covers the shift-overflow bug: for
// n > 2^62 the old loop's 1<<level overflowed int (Go defines the over-wide
// shift as 0) and never terminated. Out-of-range counts must panic instead.
func TestLevelForCountOverflowRegression(t *testing.T) {
	// The largest representable count still maps to MaxLevel.
	if got := LevelForCount(1 << uint(MaxLevel)); got != MaxLevel {
		t.Fatalf("LevelForCount(2^%d) = %d, want %d", MaxLevel, got, MaxLevel)
	}
	for _, n := range []int{1<<uint(MaxLevel) + 1, 1 << 62, int(^uint(0) >> 1), -1} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LevelForCount(%d) did not panic", n)
				}
			}()
			LevelForCount(n)
		}()
	}
}

func fillBlock(level, n int) *Block[int] {
	b := New[int](level)
	for i := n; i > 0; i-- {
		b.Append(item.New(uint64(i), i))
	}
	return b
}

func TestPoolGetPutReuse(t *testing.T) {
	p := NewPool[int](nil)
	b := p.Get(3)
	if b.Level() != 3 || b.Capacity() != 8 || !b.Empty() {
		t.Fatalf("bad pooled block: level=%d cap=%d", b.Level(), b.Capacity())
	}
	b.Append(item.New(1, 1))
	b.AddOwner(7)
	p.Put(b)
	got := p.Get(3)
	if got != b {
		t.Fatal("pool did not recycle the block")
	}
	if !got.Empty() || got.Bloom() != 0 {
		t.Fatal("recycled block not reset")
	}
	if got.items[0] != nil {
		t.Fatal("recycled block still references items")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Gets != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolLevelAndCapBounds(t *testing.T) {
	p := NewPool[int](nil)
	// Over-level blocks are never pooled.
	big := p.Get(maxPoolLevel + 1)
	p.Put(big)
	if p.Get(maxPoolLevel+1) == big {
		t.Fatal("pooled a block above maxPoolLevel")
	}
	// Free list caps drop the excess.
	var blocks []*Block[int]
	for i := 0; i < freeCap+2; i++ {
		blocks = append(blocks, New[int](5))
	}
	for _, b := range blocks {
		p.Put(b)
	}
	if got := len(p.free[5]); got != freeCap {
		t.Fatalf("free list len = %d, want cap %d", got, freeCap)
	}
	if p.Stats().Dropped < 2 {
		t.Fatalf("dropped = %d, want >= 2", p.Stats().Dropped)
	}
}

// TestRetireRespectsGuard is the §4.4 reuse contract: a retired published
// block must not re-enter circulation while a reader that might hold its
// pointer is active.
func TestRetireRespectsGuard(t *testing.T) {
	var g Guard
	p := NewPool[int](&g)

	g.Enter() // a spy is live
	b := fillBlock(2, 3)
	p.Retire(b)
	if got := p.Get(2); got == b {
		t.Fatal("retired block recycled while a reader was active")
	}

	g.Exit() // quiescent: limbo may drain
	if got := p.Get(2); got != b {
		t.Fatal("retired block not recycled after quiescence")
	}
}

func TestRetireImmediateWhenQuiescent(t *testing.T) {
	var g Guard
	p := NewPool[int](&g)
	b := fillBlock(1, 1)
	p.Retire(b)
	if got := p.Get(1); got != b {
		t.Fatal("quiescent retire did not recycle immediately")
	}
	// A nil guard (single-threaded pools) is always quiescent.
	p2 := NewPool[int](nil)
	b2 := fillBlock(1, 1)
	p2.Retire(b2)
	if got := p2.Get(1); got != b2 {
		t.Fatal("nil-guard retire did not recycle immediately")
	}
}

func TestLimboCapDropsToGC(t *testing.T) {
	var g Guard
	p := NewPool[int](&g)
	g.Enter()
	for i := 0; i < limboCap+5; i++ {
		p.Retire(New[int](1))
	}
	if len(p.limbo) != limboCap {
		t.Fatalf("limbo len = %d, want %d", len(p.limbo), limboCap)
	}
	g.Exit()
}

func TestNilPoolIsPlainAllocation(t *testing.T) {
	var p *Pool[int]
	b := p.Get(4)
	if b == nil || b.Level() != 4 {
		t.Fatal("nil pool Get failed")
	}
	p.Put(b)    // no-op
	p.Retire(b) // no-op
	if p.Stats() != (PoolStats{}) {
		t.Fatal("nil pool stats non-zero")
	}
}

// TestMergeInRecyclesIntermediates checks that the pooled merge/shrink path
// produces the same results as the allocating one and feeds its private
// intermediates back to the pool.
func TestMergeInRecyclesIntermediates(t *testing.T) {
	p := NewPool[int](nil)
	// Two level-2 blocks with one live item each: the level-3 merge output
	// shrinks to level 1, so MergeIn's dst is retired internally.
	mk := func(key uint64) *Block[int] {
		b := p.Get(2)
		dead := item.New[int](key+100, 0)
		dead.TryTake()
		b.Append(item.New(key, int(key)))
		b.Append(dead)
		return b
	}
	b1, b2 := mk(50), mk(40)
	m := MergeIn(p, b1, b2, nil)
	if m.Level() != 1 || m.Filled() != 2 || !m.SortedDesc() {
		t.Fatalf("merge result: level=%d filled=%d", m.Level(), m.Filled())
	}
	if m.Item(0).Key() != 50 || m.Item(1).Key() != 40 {
		t.Fatal("merge order wrong")
	}
	if p.Stats().Puts == 0 {
		t.Fatal("MergeIn recycled no intermediate")
	}
	// The pooled path must not allocate once the free lists are warm.
	p.Put(b1)
	p.Put(b2)
	p.Put(m)
	its := []*item.Item[int]{item.New(9, 9), item.New(8, 8)}
	allocs := testing.AllocsPerRun(50, func() {
		x, y := p.Get(0), p.Get(0)
		x.Append(its[0])
		y.Append(its[1])
		z := MergeIn(p, x, y, nil)
		p.Put(x)
		p.Put(y)
		p.Put(z)
	})
	if allocs > 0 {
		t.Fatalf("warm pooled merge allocates %.2f per op", allocs)
	}
}

func TestShrinkInRetiresCopies(t *testing.T) {
	p := NewPool[int](nil)
	// Level-4 block with 2 live items buried under a taken tail: shrink
	// copies down to level 1 via intermediate levels.
	b := p.Get(4)
	for i := 10; i > 2; i-- {
		it := item.New(uint64(i), i)
		b.Append(it)
		if i <= 8 {
			it.TryTake()
		}
	}
	s := b.ShrinkIn(p)
	if s.Level() != 1 || s.Filled() != 2 {
		t.Fatalf("shrink result: level=%d filled=%d", s.Level(), s.Filled())
	}
	if s == b {
		t.Fatal("expected a compacted copy")
	}
}
