package block

import (
	"testing"

	"klsm/internal/item"
)

// newReclaimPool returns a guarded pool with item reclamation on plus its
// item pool.
func newReclaimPool(g *Guard) (*Pool[int], *item.Pool[int]) {
	p := NewPool[int](g)
	ip := item.NewPool[int]()
	p.SetItemPool(ip)
	return p, ip
}

// fillTaken builds a level-l "published" block from p (references acquired,
// as a lineage does at its entry point) holding n freshly taken items.
func fillTaken(p *Pool[int], ip *item.Pool[int], l, n int) *Block[int] {
	b := p.Get(l)
	for i := n; i > 0; i-- {
		b.Append(ip.Get(uint64(i), i))
	}
	b.AcquireRefs()
	for _, it := range b.Items() {
		it.TryTake()
	}
	return b
}

func TestAcquireRefsAtLineageEntry(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := p.Get(2)
	it := ip.Get(1, 1)
	b.Append(it)
	// Private blocks hold no references until the lineage entry point.
	if it.Refs() != 0 {
		t.Fatalf("refs = %d before acquisition", it.Refs())
	}
	b.AcquireRefs()
	if it.Refs() != 1 || !b.HoldsRefs() {
		t.Fatalf("refs = %d, holds=%v after AcquireRefs", it.Refs(), b.HoldsRefs())
	}
	// Idempotent: a block carried across snapshots acquires only once.
	b.AcquireRefs()
	if it.Refs() != 1 {
		t.Fatalf("refs = %d after second AcquireRefs", it.Refs())
	}
	// Blocks from a plain pool never refcount.
	plain := NewPool[int](nil)
	nb := plain.Get(2)
	it2 := item.New[int](2, 2)
	nb.Append(it2)
	nb.AcquireRefs()
	if it2.Refs() != 0 {
		t.Fatalf("plain block acquired %d refs", it2.Refs())
	}
}

// TestMergeTransfersRefs: a transfer merge moves the donors' references to
// the result without a single count changing for surviving items, marks the
// donors donated (their release is a no-op), and captures filtered items in
// the result's drops.
func TestMergeTransfersRefs(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b1, b2 := p.Get(1), p.Get(1)
	lives := []*item.Item[int]{ip.Get(40, 0), ip.Get(30, 0), ip.Get(20, 0)}
	dead := ip.Get(10, 0)
	b1.Append(lives[0])
	b1.Append(lives[1])
	b2.Append(lives[2])
	b2.Append(dead)
	b1.AcquireRefs()
	b2.AcquireRefs()
	dead.TryTake()

	m := MergeTransferIn(p, b1, b2, nil)
	for i, it := range lives {
		if it.Refs() != 1 {
			t.Fatalf("live item %d has %d refs after transfer merge, want 1 (untouched)", i, it.Refs())
		}
	}
	if dead.Refs() != 1 {
		t.Fatalf("dropped item has %d refs, want 1 (carried by drops)", dead.Refs())
	}
	if !b1.Donated() || !b2.Donated() {
		t.Fatal("donors not marked donated")
	}
	if !m.HoldsRefs() || m.DropsLen() != 1 {
		t.Fatalf("merged block holds=%v drops=%d, want true/1", m.HoldsRefs(), m.DropsLen())
	}
	// Donated donors release nothing.
	p.Put(b1)
	p.Put(b2)
	if got := ip.Puts(); got != 0 {
		t.Fatalf("donated blocks released %d items", got)
	}
	// The merged block's release covers slots and drops exactly once.
	for _, it := range lives {
		it.TryTake()
	}
	p.Put(m)
	if got := ip.Puts(); got != 4 {
		t.Fatalf("released %d of 4 after lineage death", got)
	}
}

// TestShrinkTransferDonatesToCopy: a compacting shrink moves the original's
// references to the copy, including the references of the trimmed tail.
func TestShrinkTransferDonatesToCopy(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := p.Get(3)
	items := make([]*item.Item[int], 8)
	for i := range items {
		items[i] = ip.Get(uint64(100-i), i)
		b.Append(items[i])
	}
	b.AcquireRefs()
	// Take the six smallest (the tail) so the block becomes underfull.
	for _, it := range items[2:] {
		it.TryTake()
	}
	s := b.ShrinkTransferIn(p)
	if s == b {
		t.Fatal("expected a compacted copy")
	}
	if !b.Donated() || !s.HoldsRefs() {
		t.Fatalf("donated=%v holds=%v after transfer shrink", b.Donated(), s.HoldsRefs())
	}
	for i, it := range items {
		if it.Refs() != 1 {
			t.Fatalf("item %d refs = %d after shrink, want 1", i, it.Refs())
		}
	}
	p.Put(b) // donated original: releases nothing
	if got := ip.Puts(); got != 0 {
		t.Fatalf("donated original released %d items", got)
	}
	items[0].TryTake()
	items[1].TryTake()
	p.Put(s)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("released %d of 8 after copy death", got)
	}
}

// TestReleaseCoversShrunkTail: references span [0, refHi) even after the
// published block's filled shrank below it.
func TestReleaseCoversShrunkTail(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := fillTaken(p, ip, 3, 8)
	if got := b.ShrinkInPlace(); got != 0 {
		t.Fatalf("ShrinkInPlace left %d", got)
	}
	p.Put(b)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("released %d of 8 after tail shrink", got)
	}
}

func TestPutReleasesAndReclaims(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := fillTaken(p, ip, 3, 8)
	p.Put(b)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("reclaimed %d items, want 8", got)
	}
	if st := p.Stats(); st.ItemsReclaimed != 8 || st.ItemsLostLive != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The block went to the free list with all slots cleared: a recycled
	// incarnation must not double-release.
	nb := p.Get(3)
	if nb != b {
		t.Fatal("block was not recycled")
	}
	p.Put(nb)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("empty recycled block released %d extra items", got-8)
	}
}

// TestRetireItemsGatedOnGuard: dropped-item references parked through
// RetireItems release exactly once, and only at guard quiescence.
func TestRetireItemsGatedOnGuard(t *testing.T) {
	var g Guard
	p, ip := newReclaimPool(&g)
	items := make([]*item.Item[int], 6)
	for i := range items {
		items[i] = ip.Get(uint64(i), i)
		items[i].Ref()
		items[i].TryTake()
	}
	g.Enter()
	p.RetireItems(items)
	if got := ip.Puts(); got != 0 {
		t.Fatalf("%d items released while the guard was active", got)
	}
	g.Exit()
	if !p.DrainLimbo() {
		t.Fatal("item limbo did not drain at quiescence")
	}
	if got := ip.Puts(); got != int64(len(items)) {
		t.Fatalf("released %d items, want %d", got, len(items))
	}
	// Quiescent path: releases immediately.
	it := ip.Get(99, 99)
	it.Ref()
	it.TryTake()
	p.RetireItems([]*item.Item[int]{it})
	if got := ip.Puts(); got != int64(len(items))+1 {
		t.Fatalf("quiescent RetireItems did not release (puts=%d)", got)
	}
}

// TestDroppedBlockStillReleasesItems is the §4.4-proper guarantee on the
// drop paths: blocks the pool refuses to keep (free-list cap, level bound)
// must release their item references before falling to the GC.
func TestDroppedBlockStillReleasesItems(t *testing.T) {
	p, ip := newReclaimPool(nil)
	// Overfill level 3's free list (cap 4) so the fifth Put drops.
	blocks := make([]*Block[int], 5)
	for i := range blocks {
		blocks[i] = fillTaken(p, ip, 3, 4)
	}
	for _, b := range blocks {
		p.Put(b)
	}
	if got := ip.Puts(); got != 20 {
		t.Fatalf("reclaimed %d items, want all 20 despite the cap drop", got)
	}
	if st := p.Stats(); st.Dropped == 0 {
		t.Fatal("expected at least one block drop at the free-list cap")
	}

	// Same for the level bound: a block above maxPoolLevel is never pooled
	// but still releases.
	big := fillTaken(p, ip, maxPoolLevel+1, 16)
	before := ip.Puts()
	p.Put(big)
	if got := ip.Puts() - before; got != 16 {
		t.Fatalf("over-level block released %d of 16", got)
	}
}

// TestRetireLimboReleasesAfterQuiescence: references parked in limbo by an
// active guard release exactly once when the guard quiesces, and the
// reclaiming limbo accepts more than the plain cap before leaking.
func TestRetireLimboReleasesAfterQuiescence(t *testing.T) {
	var g Guard
	p, ip := newReclaimPool(&g)
	g.Enter()
	const blocks = limboCap + 32 // beyond the non-reclaiming bound
	for i := 0; i < blocks; i++ {
		p.Retire(fillTaken(p, ip, 0, 1))
	}
	if got := ip.Puts(); got != 0 {
		t.Fatalf("%d items released while the guard was active", got)
	}
	if st := p.Stats(); st.LimboLeaked != 0 {
		t.Fatalf("leaked %d blocks below the reclaim cap", st.LimboLeaked)
	}
	g.Exit()
	if !p.DrainLimbo() {
		t.Fatal("limbo did not drain at quiescence")
	}
	if got := ip.Puts(); got != blocks {
		t.Fatalf("released %d items, want exactly %d", got, blocks)
	}
}

// TestRetireLimboLeakIsCounted: past the reclaim cap the pool gives up and
// counts the leak instead of blocking.
func TestRetireLimboLeakIsCounted(t *testing.T) {
	var g Guard
	p, ip := newReclaimPool(&g)
	g.Enter()
	defer g.Exit()
	for i := 0; i < limboCapReclaim+10; i++ {
		p.Retire(fillTaken(p, ip, 0, 1))
	}
	if st := p.Stats(); st.LimboLeaked != 10 {
		t.Fatalf("LimboLeaked = %d, want 10", st.LimboLeaked)
	}
}

// TestDetachLimboHandsOverObligations: the close-path handoff moves parked
// blocks and item references to a surviving pool, which releases them at
// quiescence into its own item pool — nothing leaks with the guard busy at
// close time.
func TestDetachLimboHandsOverObligations(t *testing.T) {
	var g Guard
	closing, closingItems := newReclaimPool(&g)
	g.Enter()
	const blocks = 8
	for i := 0; i < blocks; i++ {
		closing.Retire(fillTaken(closing, closingItems, 0, 1))
	}
	dropped := closingItems.Get(77, 77)
	dropped.Ref()
	dropped.TryTake()
	closing.RetireItems([]*item.Item[int]{dropped})

	orphans, orphanItems := closing.DetachLimbo()
	if len(orphans) != blocks || len(orphanItems) != 1 {
		t.Fatalf("detached %d blocks / %d items, want %d / 1", len(orphans), len(orphanItems), blocks)
	}
	if b, it := closing.DetachLimbo(); b != nil || it != nil {
		t.Fatalf("second detach returned %d blocks / %d items", len(b), len(it))
	}

	survivor, survivorItems := newReclaimPool(&g)
	for _, b := range orphans {
		survivor.Retire(b)
	}
	survivor.RetireItems(orphanItems)
	if got := survivorItems.Puts(); got != 0 {
		t.Fatalf("%d items released under an active guard", got)
	}
	g.Exit()
	if !survivor.DrainLimbo() {
		t.Fatal("adopted limbo did not drain at quiescence")
	}
	if got := survivorItems.Puts(); got != blocks+1 {
		t.Fatalf("adopting pool released %d items, want %d", got, blocks+1)
	}
	if got := closingItems.Puts(); got != 0 {
		t.Fatalf("closing pool released %d items after the handoff", got)
	}
}
