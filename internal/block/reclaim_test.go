package block

import (
	"testing"

	"klsm/internal/item"
)

// newReclaimPool returns a guarded pool with item reclamation on plus its
// item pool.
func newReclaimPool(g *Guard) (*Pool[int], *item.Pool[int]) {
	p := NewPool[int](g)
	ip := item.NewPool[int]()
	p.SetItemPool(ip)
	return p, ip
}

// fillTaken builds a level-l "published" block from p (references acquired,
// as the owner does right before the publication store) holding n freshly
// taken items.
func fillTaken(p *Pool[int], ip *item.Pool[int], l, n int) *Block[int] {
	b := p.Get(l)
	for i := n; i > 0; i-- {
		b.Append(ip.Get(uint64(i), i))
	}
	b.AcquireRefs()
	for _, it := range b.Items() {
		it.TryTake()
	}
	return b
}

func TestAcquireRefsAtPublication(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := p.Get(2)
	it := ip.Get(1, 1)
	b.Append(it)
	// Private blocks hold no references — the merge hot paths stay free of
	// refcount traffic.
	if it.Refs() != 0 {
		t.Fatalf("refs = %d before publication", it.Refs())
	}
	b.AcquireRefs()
	if it.Refs() != 1 || !b.HoldsRefs() {
		t.Fatalf("refs = %d, holds=%v after AcquireRefs", it.Refs(), b.HoldsRefs())
	}
	// Idempotent: a block carried across snapshots acquires only once.
	b.AcquireRefs()
	if it.Refs() != 1 {
		t.Fatalf("refs = %d after second AcquireRefs", it.Refs())
	}
	// Blocks from a plain pool never refcount.
	plain := NewPool[int](nil)
	nb := plain.Get(2)
	it2 := item.New[int](2, 2)
	nb.Append(it2)
	nb.AcquireRefs()
	if it2.Refs() != 0 {
		t.Fatalf("plain block acquired %d refs", it2.Refs())
	}
}

// TestReleaseCoversShrunkTail: references span [0, refHi) even after the
// published block's filled shrank below it.
func TestReleaseCoversShrunkTail(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := fillTaken(p, ip, 3, 8)
	if got := b.ShrinkInPlace(); got != 0 {
		t.Fatalf("ShrinkInPlace left %d", got)
	}
	p.Put(b)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("released %d of 8 after tail shrink", got)
	}
}

func TestPutReleasesAndReclaims(t *testing.T) {
	p, ip := newReclaimPool(nil)
	b := fillTaken(p, ip, 3, 8)
	p.Put(b)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("reclaimed %d items, want 8", got)
	}
	if st := p.Stats(); st.ItemsReclaimed != 8 || st.ItemsLostLive != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The block went to the free list with all slots cleared: a recycled
	// incarnation must not double-release.
	nb := p.Get(3)
	if nb != b {
		t.Fatal("block was not recycled")
	}
	p.Put(nb)
	if got := ip.Puts(); got != 8 {
		t.Fatalf("empty recycled block released %d extra items", got-8)
	}
}

// TestDroppedBlockStillReleasesItems is the §4.4-proper guarantee on the
// drop paths: blocks the pool refuses to keep (free-list cap, level bound)
// must release their item references before falling to the GC.
func TestDroppedBlockStillReleasesItems(t *testing.T) {
	p, ip := newReclaimPool(nil)
	// Overfill level 3's free list (cap 4) so the fifth Put drops.
	blocks := make([]*Block[int], 5)
	for i := range blocks {
		blocks[i] = fillTaken(p, ip, 3, 4)
	}
	for _, b := range blocks {
		p.Put(b)
	}
	if got := ip.Puts(); got != 20 {
		t.Fatalf("reclaimed %d items, want all 20 despite the cap drop", got)
	}
	if st := p.Stats(); st.Dropped == 0 {
		t.Fatal("expected at least one block drop at the free-list cap")
	}

	// Same for the level bound: a block above maxPoolLevel is never pooled
	// but still releases.
	big := fillTaken(p, ip, maxPoolLevel+1, 16)
	before := ip.Puts()
	p.Put(big)
	if got := ip.Puts() - before; got != 16 {
		t.Fatalf("over-level block released %d of 16", got)
	}
}

// TestRetireLimboReleasesAfterQuiescence: references parked in limbo by an
// active guard release exactly once when the guard quiesces, and the
// reclaiming limbo accepts more than the plain cap before leaking.
func TestRetireLimboReleasesAfterQuiescence(t *testing.T) {
	var g Guard
	p, ip := newReclaimPool(&g)
	g.Enter()
	const blocks = limboCap + 32 // beyond the non-reclaiming bound
	for i := 0; i < blocks; i++ {
		p.Retire(fillTaken(p, ip, 0, 1))
	}
	if got := ip.Puts(); got != 0 {
		t.Fatalf("%d items released while the guard was active", got)
	}
	if st := p.Stats(); st.LimboLeaked != 0 {
		t.Fatalf("leaked %d blocks below the reclaim cap", st.LimboLeaked)
	}
	g.Exit()
	if !p.DrainLimbo() {
		t.Fatal("limbo did not drain at quiescence")
	}
	if got := ip.Puts(); got != blocks {
		t.Fatalf("released %d items, want exactly %d", got, blocks)
	}
}

// TestRetireLimboLeakIsCounted: past the reclaim cap the pool gives up and
// counts the leak instead of blocking.
func TestRetireLimboLeakIsCounted(t *testing.T) {
	var g Guard
	p, ip := newReclaimPool(&g)
	g.Enter()
	defer g.Exit()
	for i := 0; i < limboCapReclaim+10; i++ {
		p.Retire(fillTaken(p, ip, 0, 1))
	}
	if st := p.Stats(); st.LimboLeaked != 10 {
		t.Fatalf("LimboLeaked = %d, want 10", st.LimboLeaked)
	}
}
