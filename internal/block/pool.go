// Block and item recycling (paper §4.4).
//
// The C++ k-LSM's performance depends on never allocating in the hot paths:
// blocks and items are recycled through free lists, with versioned flags
// defeating ABA. Go's garbage collector changes the trade-off — safety never
// requires recycling — but the allocation rate still does: every insert
// creates a level-0 block and every merge a 2^level pointer slice, and that
// garbage dominates the operation cost. This file implements the Go
// translation of §4.4:
//
//   - Pool is a per-handle, level-indexed free list of blocks. It is owned
//     by exactly one goroutine (like the paper's thread-local free lists)
//     and never locked.
//   - Private blocks — created by the owner and not yet published — are
//     recycled immediately via Put the moment they are merged away.
//   - Published blocks — reachable through a DistLSM slot until the owner
//     unlinks them — go through Retire, which parks them in a limbo list
//     until the Guard proves no spy that might still hold the pointer is
//     active. This is the "reuse contract": a retired block re-enters the
//     free list only once it is unreachable from every published structure.
//   - Anything the contract cannot prove reusable is simply dropped and the
//     garbage collector reclaims it — the backstop the C++ version lacks.
package block

import "sync/atomic"

// Guard counts concurrently active readers of published blocks (spies and
// melds). Owners consult it before recycling a retired published block: if
// no reader is active at or after the moment the block became unreachable,
// no reader can still hold a pointer to it.
//
// The quiescence argument: readers obtain block pointers only through
// atomic slots (DistLSM block slots guarded by the size counter). An owner
// first unlinks a block (stores the replacement and the new size), then
// observes active == 0. Under Go's sequentially consistent atomics, any
// reader that enters afterwards loads the post-unlink state and cannot see
// the old pointer; any reader that entered before is counted, so the
// observation fails and the block stays in limbo.
//
// A nil *Guard is always quiescent — correct for single-threaded structures
// (the sequential LSM), where Retire degenerates to an immediate Put.
type Guard struct {
	active atomic.Int64
}

// Enter marks a reader active. Pair with Exit.
func (g *Guard) Enter() {
	if g != nil {
		g.active.Add(1)
	}
}

// Exit marks the reader inactive.
func (g *Guard) Exit() {
	if g != nil {
		g.active.Add(-1)
	}
}

// Quiescent reports whether no reader is currently active.
func (g *Guard) Quiescent() bool {
	return g == nil || g.active.Load() == 0
}

const (
	// freeCapLevel0 and freeCap bound the free list per level; level 0 is
	// the per-insert allocation and much hotter than the rest.
	freeCapLevel0 = 64
	freeCap       = 4
	// maxPoolLevel bounds which blocks are pooled at all: clearing a
	// retired block's slot array is O(capacity), which stops amortizing
	// against the merge that filled it somewhere around a few MB.
	maxPoolLevel = 20
	// limboCap bounds the not-yet-quiescent retired list; overflow is
	// dropped to the garbage collector.
	limboCap = 64
)

// PoolStats is a snapshot of pool counters for tests and diagnostics.
type PoolStats struct {
	Gets    int64 // total Get calls
	Hits    int64 // Gets served from the free list
	Puts    int64 // blocks recycled (immediately or via limbo)
	Retired int64 // Retire calls
	Dropped int64 // blocks abandoned to the GC (caps or level bound)
}

// Pool is a per-handle, level-indexed block free list (§4.4). Not safe for
// concurrent use: all methods are owner-only. A nil *Pool is valid and makes
// Get allocate, Put and Retire no-ops — the pooling-disabled mode.
type Pool[V any] struct {
	guard *Guard
	free  [maxPoolLevel + 1][]*Block[V]
	limbo []*Block[V]
	stats PoolStats
}

// NewPool returns an empty pool whose Retire path is guarded by g. g may be
// nil for single-threaded use (Retire recycles immediately).
func NewPool[V any](g *Guard) *Pool[V] {
	return &Pool[V]{guard: g}
}

// Get returns an empty private block of the given level, recycled when
// possible.
func (p *Pool[V]) Get(level int) *Block[V] {
	if p == nil {
		return New[V](level)
	}
	p.stats.Gets++
	p.reapLimbo()
	if level <= maxPoolLevel {
		if fl := p.free[level]; len(fl) > 0 {
			b := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			p.free[level] = fl[:len(fl)-1]
			p.stats.Hits++
			return b
		}
	}
	return New[V](level)
}

// Put recycles a block immediately. Contract: b is private — it was never
// published, or this call site can otherwise prove no other goroutine can
// reach it (single-threaded structures). The block's item references are
// dropped so pooled blocks do not pin items for the GC.
func (p *Pool[V]) Put(b *Block[V]) {
	if p == nil || b == nil {
		return
	}
	level := b.level
	if level > maxPoolLevel || len(p.free[level]) >= p.freeCap(level) {
		p.stats.Dropped++
		return
	}
	clear(b.items)
	b.filled.Store(0)
	b.filter = 0
	p.stats.Puts++
	p.free[level] = append(p.free[level], b)
}

// Retire recycles a block that was published and has now been unlinked by
// the owner (stores making it unreachable for new readers must precede this
// call). If the guard is quiescent the block is recycled immediately —
// together with any blocks parked earlier — otherwise it joins the limbo
// list until a later quiescent observation.
func (p *Pool[V]) Retire(b *Block[V]) {
	if p == nil || b == nil {
		return
	}
	p.stats.Retired++
	if p.guard.Quiescent() {
		p.drainLimbo()
		p.Put(b)
		return
	}
	if len(p.limbo) >= limboCap {
		p.stats.Dropped++
		return
	}
	p.limbo = append(p.limbo, b)
}

// reapLimbo opportunistically recycles parked blocks once quiescence is
// observed.
func (p *Pool[V]) reapLimbo() {
	if len(p.limbo) > 0 && p.guard.Quiescent() {
		p.drainLimbo()
	}
}

// drainLimbo moves every parked block to the free lists. Caller has observed
// quiescence.
func (p *Pool[V]) drainLimbo() {
	for i, b := range p.limbo {
		p.limbo[i] = nil
		p.Put(b)
	}
	p.limbo = p.limbo[:0]
}

// freeCap returns the free-list bound for a level.
func (p *Pool[V]) freeCap(level int) int {
	if level == 0 {
		return freeCapLevel0
	}
	return freeCap
}

// Guard returns the guard retire operations are gated on (nil for a nil or
// unguarded pool). Readers of published blocks bracket themselves with it.
func (p *Pool[V]) Guard() *Guard {
	if p == nil {
		return nil
	}
	return p.guard
}

// Stats returns a snapshot of the pool counters (owner-only, like every
// other method).
func (p *Pool[V]) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.stats
}
