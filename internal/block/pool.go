// Block and item recycling (paper §4.4).
//
// The C++ k-LSM's performance depends on never allocating in the hot paths:
// blocks and items are recycled through free lists, with versioned flags
// defeating ABA. Go's garbage collector changes the trade-off — safety never
// requires recycling — but the allocation rate still does: every insert
// creates a level-0 block and every merge a 2^level pointer slice, and that
// garbage dominates the operation cost. This file implements the Go
// translation of §4.4:
//
//   - Pool is a per-handle, level-indexed free list of blocks. It is owned
//     by exactly one goroutine (like the paper's thread-local free lists)
//     and never locked.
//   - Private blocks — created by the owner and not yet published — are
//     recycled immediately via Put the moment they are merged away.
//   - Published blocks — reachable through a DistLSM slot until the owner
//     unlinks them — go through Retire, which parks them in a limbo list
//     until the Guard proves no spy that might still hold the pointer is
//     active. This is the "reuse contract": a retired block re-enters the
//     free list only once it is unreachable from every published structure.
//   - Anything the contract cannot prove reusable is simply dropped and the
//     garbage collector reclaims it — the backstop the C++ version lacks.
//
// Item reclamation (§4.4 proper, lineage-batched): a pool with an item pool
// attached (SetItemPool) additionally maintains per-item reference counts
// at block-lineage granularity. Blocks it hands out are flagged so that
// AcquireRefs — called once when a lineage begins (insert's level-0 block,
// spy copies, entry into the shared k-LSM) — takes one reference per
// occupied slot, and the owner-local transfer merges move those references
// to each generation's successor instead of re-acquiring them. Items a
// transfer merge filters out land in the successor's drops list and are
// handed to RetireItems, the item-level limbo: they release under the same
// guard quiescence that gates block reuse. Every reffed, undonated block
// this pool recycles or drops releases its references first — releasing
// happens exactly where the reuse contract already proves the block
// unreachable, so the proofs carry over to the items. A release that drops
// an item's last reference returns the (taken) item to the attached item
// pool; blocks that overflow the free-list caps or the level bound still
// release their items before the garbage collector takes the block shell,
// so deterministic item reuse survives every drop decision except a limbo
// overflow (counted in LimboLeaked).
package block

import (
	"sync/atomic"

	"klsm/internal/item"
)

// Guard counts concurrently active readers of published blocks (spies and
// melds). Owners consult it before recycling a retired published block: if
// no reader is active at or after the moment the block became unreachable,
// no reader can still hold a pointer to it.
//
// The quiescence argument: readers obtain block pointers only through
// atomic slots (DistLSM block slots guarded by the size counter). An owner
// first unlinks a block (stores the replacement and the new size), then
// observes active == 0. Under Go's sequentially consistent atomics, any
// reader that enters afterwards loads the post-unlink state and cannot see
// the old pointer; any reader that entered before is counted, so the
// observation fails and the block stays in limbo.
//
// A nil *Guard is always quiescent — correct for single-threaded structures
// (the sequential LSM), where Retire degenerates to an immediate Put.
type Guard struct {
	active atomic.Int64
}

// Enter marks a reader active. Pair with Exit.
func (g *Guard) Enter() {
	if g != nil {
		g.active.Add(1)
	}
}

// Exit marks the reader inactive.
func (g *Guard) Exit() {
	if g != nil {
		g.active.Add(-1)
	}
}

// Quiescent reports whether no reader is currently active.
func (g *Guard) Quiescent() bool {
	return g == nil || g.active.Load() == 0
}

const (
	// freeCapLevel0 and freeCap bound the free list per level; level 0 is
	// the per-insert allocation and much hotter than the rest.
	freeCapLevel0 = 64
	freeCap       = 4
	// maxPoolLevel bounds which blocks are pooled at all: clearing a
	// retired block's slot array is O(capacity), which stops amortizing
	// against the merge that filled it somewhere around a few MB.
	maxPoolLevel = 20
	// limboCap bounds the not-yet-quiescent retired list; overflow is
	// dropped to the garbage collector. With item reclamation on, a dropped
	// limbo block would leak its item references (the items fall back to
	// the GC), so reclaiming pools use the larger bound before giving up.
	limboCap        = 64
	limboCapReclaim = 512
	// itemLimboCap bounds the dropped-item limbo (RetireItems); overflow
	// leaks the items' references to the GC, counted in LimboLeaked.
	itemLimboCap = 1 << 15
)

// PoolStats is a snapshot of pool counters for tests and diagnostics.
type PoolStats struct {
	Gets    int64 // total Get calls
	Hits    int64 // Gets served from the free list
	Puts    int64 // blocks recycled (immediately or via limbo)
	Retired int64 // Retire calls
	Dropped int64 // blocks abandoned to the GC (caps or level bound)

	// Item-reclamation counters (§4.4 proper); zero without SetItemPool.
	ItemsReclaimed int64 // taken items returned to the item pool by a final Unref
	ItemsLostLive  int64 // final Unref on a live item (indicates a bug; see releaseItemRef)
	LimboLeaked    int64 // blocks or item obligations dropped at a limbo cap, unreleased
}

// Pool is a per-handle, level-indexed block free list (§4.4). Not safe for
// concurrent use: all methods are owner-only. A nil *Pool is valid and makes
// Get allocate, Put and Retire no-ops — the pooling-disabled mode.
type Pool[V any] struct {
	guard *Guard
	// items, when set, turns on §4.4 item reclamation: blocks from this
	// pool refcount their slots and release them here on recycle or drop.
	items *item.Pool[V]
	free  [maxPoolLevel + 1][]*Block[V]
	limbo []*Block[V]
	// limboItems parks dropped-item references (transfer-merge drops)
	// until the guard proves their donor blocks unreadable.
	limboItems []*item.Item[V]
	stats      PoolStats
}

// NewPool returns an empty pool whose Retire path is guarded by g. g may be
// nil for single-threaded use (Retire recycles immediately).
func NewPool[V any](g *Guard) *Pool[V] {
	return &Pool[V]{guard: g}
}

// SetItemPool attaches the owning handle's item pool and enables item
// reclamation: blocks handed out afterwards refcount their slots, and
// releases flow into ip. Must be set before the pool is used and must be
// configured identically on every pool of one queue (a mix of refcounted
// and plain blocks would release items other blocks still reference).
func (p *Pool[V]) SetItemPool(ip *item.Pool[V]) {
	if p != nil {
		p.items = ip
	}
}

// Reclaiming reports whether item reclamation is enabled on this pool.
func (p *Pool[V]) Reclaiming() bool { return p != nil && p.items != nil }

// Get returns an empty private block of the given level, recycled when
// possible.
func (p *Pool[V]) Get(level int) *Block[V] {
	if p == nil {
		return New[V](level)
	}
	p.stats.Gets++
	p.reapLimbo()
	reclaim := p.items != nil
	if level <= maxPoolLevel {
		if fl := p.free[level]; len(fl) > 0 {
			b := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			p.free[level] = fl[:len(fl)-1]
			p.stats.Hits++
			b.refItems = reclaim
			return b
		}
	}
	b := New[V](level)
	b.refItems = reclaim
	return b
}

// releaseItemRef releases one lineage reference on it and reclaims the item
// if that was the last one (§4.4 proper). The caller supplies the proof
// that no reader can still acquire the item through the structure the
// reference guarded (guard quiescence, epoch quiescence, or privacy).
func (p *Pool[V]) releaseItemRef(it *item.Item[V]) {
	if !it.Unref() {
		return
	}
	if it.Taken() {
		// Last reference on a taken item: this pool's handle owns it
		// exclusively now — recycle (§4.4 proper).
		p.items.Put(it)
		p.stats.ItemsReclaimed++
	} else {
		// A live item at refcount zero is unreachable yet undeleted — a
		// reachability bug upstream. It falls to the GC; the counter lets
		// tests assert this never happens.
		p.stats.ItemsLostLive++
	}
}

// releaseItems releases the references b owns — one per slot in [0, refHi),
// the occupied range when the references were acquired or transferred
// (filled may have shrunk since; the trimmed slots keep their pointers and
// their references), plus any still-attached drops. Donated blocks release
// nothing: their references moved to a successor. The bookkeeping is
// cleared first, so a block can never double-release.
func (p *Pool[V]) releaseItems(b *Block[V]) {
	if b.donated {
		b.resetReclaim()
		return
	}
	hi := b.refHi
	drops := b.drops
	b.reffed = false
	b.refHi = 0
	b.drops = nil
	for _, it := range b.items[:hi] {
		p.releaseItemRef(it)
	}
	for i, it := range drops {
		drops[i] = nil
		p.releaseItemRef(it)
	}
	b.drops = drops[:0]
	b.donated = false
}

// Put recycles a block immediately. Contract: b is private — it was never
// published, or this call site can otherwise prove no other goroutine can
// reach it (single-threaded structures, quiescent limbo drains). The
// block's item references are released first (reclaiming taken items whose
// last reference died), even when the caps below make the block itself fall
// to the garbage collector.
func (p *Pool[V]) Put(b *Block[V]) {
	if p == nil || b == nil {
		return
	}
	if b.reffed {
		p.releaseItems(b)
	} else if len(b.drops) != 0 {
		// An unreffed block never owns drop obligations; reaching here
		// means a transfer path lost track of references.
		panic("block: Put discards pending drop references")
	}
	level := b.level
	if level > maxPoolLevel || len(p.free[level]) >= p.freeCap(level) {
		p.stats.Dropped++
		return
	}
	clear(b.items)
	b.filled.Store(0)
	b.filter = 0
	p.stats.Puts++
	p.free[level] = append(p.free[level], b)
}

// Retire recycles a block that was published and has now been unlinked by
// the owner (stores making it unreachable for new readers must precede this
// call). If the guard is quiescent the block is recycled immediately —
// together with any blocks parked earlier — otherwise it joins the limbo
// list until a later quiescent observation. Reclaiming pools use a larger
// limbo bound: a block dropped here would leak its item references to the
// GC (counted in LimboLeaked), the one nondeterministic escape left in the
// reclamation scheme.
func (p *Pool[V]) Retire(b *Block[V]) {
	if p == nil || b == nil {
		return
	}
	p.stats.Retired++
	if p.guard.Quiescent() {
		p.drainLimbo()
		p.Put(b)
		return
	}
	cap := limboCap
	if p.items != nil {
		cap = limboCapReclaim
	}
	if len(p.limbo) >= cap {
		p.stats.Dropped++
		if p.items != nil {
			p.stats.LimboLeaked++
		}
		return
	}
	p.limbo = append(p.limbo, b)
}

// RetireItems parks dropped-item references (a transfer merge's drops,
// detached by the owner) until guard quiescence proves no reader can still
// reach the items through their donors' blocks. The same contract as
// Retire: every store unlinking the donors must precede this call. The
// slice contents are consumed; the slice itself stays with the caller.
func (p *Pool[V]) RetireItems(items []*item.Item[V]) {
	if p == nil || len(items) == 0 || p.items == nil {
		return
	}
	if p.guard.Quiescent() {
		p.drainLimbo()
		for _, it := range items {
			p.releaseItemRef(it)
		}
		return
	}
	for i, it := range items {
		if len(p.limboItems) >= itemLimboCap {
			p.stats.LimboLeaked += int64(len(items) - i)
			return
		}
		p.limboItems = append(p.limboItems, it)
	}
}

// RetireBlockDrops detaches b's accumulated drops and parks them via
// RetireItems. Owners call it right after the publication/unlink stores of
// the operation that created b, so drops never travel across structure
// boundaries or pile up on long-lived blocks.
func (p *Pool[V]) RetireBlockDrops(b *Block[V]) {
	if p == nil || b == nil || len(b.drops) == 0 {
		return
	}
	p.RetireItems(b.drops)
	b.clearDrops()
}

// Adopt parks obligations handed over from a closing pool (DetachLimbo on
// the other side). Unlike Retire and RetireItems it applies no cap:
// dropping an adopted obligation would leak its references for good, and
// the volume per close is already bounded by the closing pool's own caps.
// Owner-only, like every other method.
func (p *Pool[V]) Adopt(blocks []*Block[V], items []*item.Item[V]) {
	if p == nil {
		return
	}
	p.stats.Retired += int64(len(blocks))
	if p.guard.Quiescent() {
		p.drainLimbo()
		for _, b := range blocks {
			p.Put(b)
		}
		for _, it := range items {
			p.releaseItemRef(it)
		}
		return
	}
	p.limbo = append(p.limbo, blocks...)
	p.limboItems = append(p.limboItems, items...)
}

// DrainLimbo recycles every parked block and dropped-item reference if the
// guard is quiescent and reports whether the limbo lists are empty
// afterwards. Owner-only, like every other method; used by shutdown/test
// quiesce paths that need the parked item references released
// deterministically.
func (p *Pool[V]) DrainLimbo() bool {
	if p == nil {
		return true
	}
	p.reapLimbo()
	return len(p.limbo) == 0 && len(p.limboItems) == 0
}

// DetachLimbo withdraws and returns the not-yet-quiescent retired blocks
// and dropped-item references, for handing a closing handle's release
// obligations to a surviving pool (the §4.4 limbo handoff). Obligations
// already provably releasable are released in place first; the pool must
// not Retire afterwards.
func (p *Pool[V]) DetachLimbo() ([]*Block[V], []*item.Item[V]) {
	if p == nil {
		return nil, nil
	}
	p.reapLimbo()
	blocks, items := p.limbo, p.limboItems
	p.limbo = nil
	p.limboItems = nil
	return blocks, items
}

// TrimFree drops every free-listed block shell to the garbage collector.
// Pools that only ever absorb obligations and never serve Get (the queue
// reaper) call it after drains so adopted shells — up to multi-MiB slot
// arrays — do not stay pinned for the pool's lifetime.
func (p *Pool[V]) TrimFree() {
	if p == nil {
		return
	}
	for level := range p.free {
		clear(p.free[level])
		p.free[level] = p.free[level][:0]
	}
}

// reapLimbo opportunistically recycles parked blocks once quiescence is
// observed.
func (p *Pool[V]) reapLimbo() {
	if (len(p.limbo) > 0 || len(p.limboItems) > 0) && p.guard.Quiescent() {
		p.drainLimbo()
	}
}

// drainLimbo moves every parked block to the free lists and releases every
// parked item reference. Caller has observed quiescence.
func (p *Pool[V]) drainLimbo() {
	for i, b := range p.limbo {
		p.limbo[i] = nil
		p.Put(b)
	}
	p.limbo = p.limbo[:0]
	for i, it := range p.limboItems {
		p.limboItems[i] = nil
		p.releaseItemRef(it)
	}
	p.limboItems = p.limboItems[:0]
}

// freeCap returns the free-list bound for a level.
func (p *Pool[V]) freeCap(level int) int {
	if level == 0 {
		return freeCapLevel0
	}
	return freeCap
}

// Guard returns the guard retire operations are gated on (nil for a nil or
// unguarded pool). Readers of published blocks bracket themselves with it.
func (p *Pool[V]) Guard() *Guard {
	if p == nil {
		return nil
	}
	return p.guard
}

// Stats returns a snapshot of the pool counters (owner-only, like every
// other method).
func (p *Pool[V]) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return p.stats
}
