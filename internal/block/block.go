// Package block implements the sorted storage unit of all LSM variants
// (paper §4, Listing 1).
//
// A Block of level l holds up to 2^l pointers to Items in *decreasing* key
// order, so the minimum lives at items[filled-1]: delete-min shrinks blocks
// from the tail, and the paper's shrink/find-min logic (scan the tail for
// logically deleted items, fall back to items[filled-1]) depends on this
// orientation.
//
// Concurrency contract: a Block is mutable only while it is private to the
// thread constructing it (Append/MergeInto). Once published — stored into a
// DistLSM slot or referenced from a shared BlockArray — its item slots are
// immutable; only the filled counter may still shrink (ShrinkInPlace), which
// is why filled is atomic. Items beyond filled are intentionally not nil'ed:
// a concurrent spy may have read a larger filled moments earlier and must
// still find valid (if logically deleted) pointers there. The garbage-
// collection delay this causes is bounded, because every copy or merge drops
// taken items.
//
// Note on the paper's Listing 1: its shrink loop reads
// `while (f > 0 && !items[f-1]->flag) --f`, which would discard *live* items;
// the surrounding prose ("scans the end of the block for logically deleted
// items") makes clear the negation is a typo. We implement the prose.
package block

import (
	"sync/atomic"

	"klsm/internal/bloom"
	"klsm/internal/item"
)

// MaxLevel bounds block levels; a level-48 block would hold 2^48 items, far
// beyond addressable workloads, so fixed-size arrays of block pointers in the
// LSM structures use MaxLevel+1 slots.
const MaxLevel = 48

// DropFunc is an application callback for the lazy deletion extension
// (paper §4.5): during copies and merges, items for which drop returns true
// are treated like logically deleted items and not carried over. SSSP uses
// this to discard queue entries whose distance label is already stale.
type DropFunc[V any] func(key uint64, value V) bool

// Block is a sorted run of item pointers. See the package comment for the
// mutability contract.
type Block[V any] struct {
	level  int
	filled atomic.Int64
	items  []*item.Item[V]
	filter bloom.Filter
	// refItems marks blocks participating in the §4.4 reference-count
	// scheme. Set by Pool.Get on every block it hands out (recycled or
	// fresh) while the pool has an item pool attached; blocks created by
	// New directly never refcount. All blocks of one queue are configured
	// identically, so an item's count tracks either all block lineages
	// holding it or none.
	//
	// A reffed block holds one reference per slot in [0, refHi) plus one
	// per entry of drops. References are acquired once per lineage:
	// AcquireRefs walks the occupied slots (the insert-time level-0 block,
	// spy copies, blocks entering the shared k-LSM) — and the owner-local
	// transfer merges (MergeTransferIn, ShrinkTransferIn) move references
	// from their donors to the merged block instead of re-acquiring, so the
	// counts never move while an item survives generation churn. Items the
	// transfer fill skips (logically deleted or dropped) land in drops,
	// carrying their donor's reference until the owner hands them to the
	// pool's quiescence-gated item limbo. A donated block's references have
	// moved to its successor; its release is a no-op.
	refItems bool
	reffed   bool
	donated  bool
	refHi    int64
	drops    []*item.Item[V]
}

// New returns an empty block of the given level (capacity 1<<level).
func New[V any](level int) *Block[V] {
	if level < 0 || level > MaxLevel {
		panic("block: level out of range")
	}
	return &Block[V]{
		level: level,
		items: make([]*item.Item[V], 1<<uint(level)),
	}
}

// LevelForCount returns the smallest level whose capacity holds n items.
// Counts beyond the MaxLevel capacity (or negative ones) panic: the shift in
// the naive loop would overflow int for n > 2^62 — Go defines the over-wide
// shift as 0 — and never terminate.
func LevelForCount(n int) int {
	if n < 0 || n > 1<<uint(MaxLevel) {
		panic("block: item count out of range")
	}
	level := 0
	for 1<<uint(level) < n {
		level++
	}
	return level
}

// Level returns the block's level; capacity is 1<<Level().
func (b *Block[V]) Level() int { return b.level }

// Capacity returns the item slot count.
func (b *Block[V]) Capacity() int { return len(b.items) }

// Filled returns the current number of occupied slots (live or logically
// deleted). Safe to call concurrently with ShrinkInPlace.
func (b *Block[V]) Filled() int { return int(b.filled.Load()) }

// Item returns the item in slot i. i must be < the value Filled returned to
// this caller (or a value it returned earlier; slots are never reused).
func (b *Block[V]) Item(i int) *item.Item[V] { return b.items[i] }

// Items returns the occupied prefix of the slot array as a read-only view.
func (b *Block[V]) Items() []*item.Item[V] { return b.items[:b.filled.Load()] }

// Bloom returns the filter of handle IDs that contributed items to b.
func (b *Block[V]) Bloom() bloom.Filter { return b.filter }

// AddOwner records a contributing handle ID in the block's Bloom filter.
// Must only be called while the block is private.
func (b *Block[V]) AddOwner(id uint64) { b.filter = b.filter.Add(id) }

// SetBloom overwrites the filter. Must only be called while private.
func (b *Block[V]) SetBloom(f bloom.Filter) { b.filter = f }

// Append adds it to the end of the block unless it has been logically
// deleted (Listing 1). The caller is responsible for preserving decreasing
// key order and for only appending to private blocks.
func (b *Block[V]) Append(it *item.Item[V]) {
	if it.Taken() {
		return
	}
	f := b.filled.Load()
	b.items[f] = it
	b.filled.Store(f + 1)
}

// AppendSorted bulk-appends its — already in non-increasing key order — to a
// private block, skipping logically deleted items, with a single store of the
// filled counter (the batch-insert fill path: one atomic store per block
// instead of two per item). The caller is responsible for order and capacity,
// exactly as with Append.
func (b *Block[V]) AppendSorted(its []*item.Item[V]) {
	f := b.filled.Load()
	for _, it := range its {
		f = b.appendAt(f, it, nil, false)
	}
	b.filled.Store(f)
}

// AcquireRefs takes one reference per occupied slot on behalf of this block
// (§4.4 proper) — the once-per-lineage acquisition used for level-0 insert
// blocks, spy copies, and blocks entering the shared k-LSM. The owner must
// call it before the block (or a transfer successor of it) is published,
// and always before any predecessor holding the same items is unlinked or
// recycled, so a live item's count never dips to zero in between. No-op
// unless the block came from a reclaiming pool, or if references are
// already held (a block that stays reachable across several published
// snapshots holds exactly one reference per slot, total).
func (b *Block[V]) AcquireRefs() {
	if !b.refItems || b.reffed {
		return
	}
	f := b.filled.Load()
	for _, it := range b.items[:f] {
		it.Ref()
	}
	b.reffed = true
	b.refHi = f
}

// HoldsRefs reports whether the block currently owns item references
// (acquired or transferred, and not yet donated), for tests.
func (b *Block[V]) HoldsRefs() bool { return b.reffed && !b.donated }

// Donated reports whether the block's references were transferred to a
// successor, for tests.
func (b *Block[V]) Donated() bool { return b.donated }

// DropsLen returns the number of dropped-item references the block still
// carries, for tests.
func (b *Block[V]) DropsLen() int { return len(b.drops) }

// TakeDropsInto appends the block's dropped-item references to dst and
// clears them; ownership of the obligations moves to the caller, which must
// hand them to a quiescence-gated release (Pool.RetireItems).
func (b *Block[V]) TakeDropsInto(dst []*item.Item[V]) []*item.Item[V] {
	dst = append(dst, b.drops...)
	b.clearDrops()
	return dst
}

// clearDrops empties the drops list, keeping its capacity.
func (b *Block[V]) clearDrops() {
	clear(b.drops)
	b.drops = b.drops[:0]
}

// resetReclaim clears all §4.4 bookkeeping for a block shell about to be
// recycled or dropped.
func (b *Block[V]) resetReclaim() {
	b.reffed = false
	b.donated = false
	b.refHi = 0
	if len(b.drops) != 0 {
		b.clearDrops()
	}
}

// absorb transfers donor's item references to b (§4.4 lineage transfer):
// the live slots the fill pass just copied keep their counts untouched,
// while everything else the donor was responsible for — the slots beyond
// the fRead the fill saw (trimmed tails up to refHi) and the donor's own
// pending drops — moves to b.drops. The donor is marked donated: its
// release becomes a no-op. Owner-only, like every transfer operation.
func (b *Block[V]) absorb(donor *Block[V], fRead int64) {
	if !donor.reffed || donor.donated {
		panic("block: transfer from a block that owns no references")
	}
	donor.donated = true
	if fRead < donor.refHi {
		b.drops = append(b.drops, donor.items[fRead:donor.refHi]...)
	}
	if len(donor.drops) > 0 {
		b.drops = append(b.drops, donor.drops...)
		donor.clearDrops()
	}
}

// commitTransfer records that b now owns one reference per occupied slot
// (all transferred from its donors) plus its drops.
func (b *Block[V]) commitTransfer() {
	b.reffed = true
	b.refHi = b.filled.Load()
}

// appendAt is the bulk-copy fast path of Append: the caller owns b (still
// private), tracks the filled count in f, and stores it once when the whole
// copy or merge is done — turning two atomic filled operations per item
// into one per block. Returns the new count. With capture set (transfer
// fills), skipped items are recorded in drops: they carry a donor reference
// the successor is now responsible for releasing.
func (b *Block[V]) appendAt(f int64, it *item.Item[V], drop DropFunc[V], capture bool) int64 {
	if it.Taken() {
		if capture {
			b.drops = append(b.drops, it)
		}
		return f
	}
	if drop != nil && drop(it.Key(), it.Value()) {
		// Claim the item so copies of it in other blocks (stale merges,
		// spied blocks) cannot resurrect it.
		it.TryTake()
		if capture {
			b.drops = append(b.drops, it)
		}
		return f
	}
	b.items[f] = it
	return f + 1
}

// Copy returns a new private block of the given level containing b's live
// items (logically deleted ones are filtered out, Listing 1). The Bloom
// filter is carried over.
func (b *Block[V]) Copy(level int) *Block[V] {
	return b.CopyDropIn(nil, level, nil)
}

// CopyDrop is Copy with the lazy-deletion callback applied.
func (b *Block[V]) CopyDrop(level int, drop DropFunc[V]) *Block[V] {
	return b.CopyDropIn(nil, level, drop)
}

// CopyIn is Copy allocating the destination from p (nil p allocates).
func (b *Block[V]) CopyIn(p *Pool[V], level int) *Block[V] {
	return b.CopyDropIn(p, level, nil)
}

// CopyDropIn is CopyDrop allocating the destination from p.
func (b *Block[V]) CopyDropIn(p *Pool[V], level int, drop DropFunc[V]) *Block[V] {
	nb := p.Get(level)
	nb.filter = b.filter
	f := nb.filled.Load()
	for _, it := range b.Items() {
		f = nb.appendAt(f, it, drop, false)
	}
	nb.filled.Store(f)
	return nb
}

// copyTransferIn is the transfer variant of CopyIn: the copy inherits b's
// references (live slots untouched, skipped items captured in drops) and b
// is marked donated. Owner-only; b must hold references.
func (b *Block[V]) copyTransferIn(p *Pool[V], level int) *Block[V] {
	nb := p.Get(level)
	nb.filter = b.filter
	src := b.Items()
	f := nb.filled.Load()
	for _, it := range src {
		f = nb.appendAt(f, it, nil, true)
	}
	nb.filled.Store(f)
	nb.absorb(b, int64(len(src)))
	nb.commitTransfer()
	return nb
}

// MergeInto fills dst (a fresh private block) with the two-way merge of b1
// and b2 in decreasing key order, filtering logically deleted and dropped
// items and uniting the Bloom filters. dst must have capacity for
// b1.Filled()+b2.Filled() items.
func MergeInto[V any](dst, b1, b2 *Block[V], drop DropFunc[V]) {
	dst.filter = b1.filter.Union(b2.filter)
	dst.mergeSlices(b1.Items(), b2.Items(), drop, false)
}

// mergeSlices runs the two-way merge loop over item slices the caller
// snapshotted (one Items() read each, so transfer bookkeeping agrees with
// exactly what the fill saw).
func (dst *Block[V]) mergeSlices(a, b []*item.Item[V], drop DropFunc[V], capture bool) {
	f := dst.filled.Load()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// >= keeps the merge stable and the order non-increasing.
		if a[i].Key() >= b[j].Key() {
			f = dst.appendAt(f, a[i], drop, capture)
			i++
		} else {
			f = dst.appendAt(f, b[j], drop, capture)
			j++
		}
	}
	for ; i < len(a); i++ {
		f = dst.appendAt(f, a[i], drop, capture)
	}
	for ; j < len(b); j++ {
		f = dst.appendAt(f, b[j], drop, capture)
	}
	dst.filled.Store(f)
}

// Merge allocates a block one level above the larger input and merges b1 and
// b2 into it, then shrinks it to the smallest fitting level. This is the
// "merge then shrink" step shared by all LSM insert paths.
func Merge[V any](b1, b2 *Block[V], drop DropFunc[V]) *Block[V] {
	return MergeIn[V](nil, b1, b2, drop)
}

// MergeIn is Merge drawing the destination (and any shrink copy) from p and
// returning intermediates to it. The inputs are untouched: whether they can
// be recycled is the caller's call (it knows which ones are private).
func MergeIn[V any](p *Pool[V], b1, b2 *Block[V], drop DropFunc[V]) *Block[V] {
	level := b1.level
	if b2.level > level {
		level = b2.level
	}
	dst := p.Get(level + 1)
	MergeInto(dst, b1, b2, drop)
	s := dst.ShrinkIn(p)
	if s != dst {
		p.Put(dst) // dst never left this function: private by construction
	}
	return s
}

// MergeTransferIn is MergeIn with §4.4 reference transfer: instead of the
// merged block re-acquiring a reference per item and the donors releasing
// theirs later (two atomic RMWs per item per generation), ownership of the
// donors' references moves to the result — zero refcount traffic for
// surviving items, with filtered items captured in the result's drops list.
// Both inputs must hold references (published blocks of the owner's
// structure, or earlier transfer results); they are marked donated and must
// still be unlinked/retired by the caller as usual. Owner-only and
// definitive — use only where the merge result is guaranteed to supersede
// its inputs (the DistLSM's single-writer paths, not the shared k-LSM's
// speculative snapshots). Falls back to plain MergeIn semantics when the
// pool does not reclaim items.
func MergeTransferIn[V any](p *Pool[V], b1, b2 *Block[V], drop DropFunc[V]) *Block[V] {
	if !p.Reclaiming() {
		return MergeIn(p, b1, b2, drop)
	}
	level := b1.level
	if b2.level > level {
		level = b2.level
	}
	dst := p.Get(level + 1)
	dst.filter = b1.filter.Union(b2.filter)
	a, bb := b1.Items(), b2.Items()
	dst.mergeSlices(a, bb, drop, true)
	dst.absorb(b1, int64(len(a)))
	dst.absorb(b2, int64(len(bb)))
	dst.commitTransfer()
	s := dst.ShrinkTransferIn(p)
	if s != dst {
		p.Put(dst) // donated to s (or empty): private shell, recycle
	}
	return s
}

// Shrink returns a block holding b's live items at the smallest adequate
// level (Listing 1). If b already satisfies its level constraint after
// trimming the logically deleted tail, b itself is returned with filled
// updated; otherwise a compacted copy at a smaller level is returned.
// Must only be called on private blocks (use ShrinkInPlace for published
// ones).
func (b *Block[V]) Shrink() *Block[V] {
	return b.ShrinkIn(nil)
}

// trimFit trims the logically deleted tail (storing the lowered filled)
// and returns the new count plus the smallest level whose occupancy
// constraint it satisfies — the shared skeleton of both shrink variants.
func (b *Block[V]) trimFit() (f int64, l int) {
	f = b.filled.Load()
	for f > 0 && b.items[f-1].Taken() {
		f--
	}
	l = b.level
	for l > 0 && f <= 1<<uint(l-1) {
		l--
	}
	b.filled.Store(f)
	return f, l
}

// ShrinkIn is Shrink drawing compaction copies from p and returning its
// intermediates to it. Whether b itself (when replaced) can be recycled is
// the caller's decision.
func (b *Block[V]) ShrinkIn(p *Pool[V]) *Block[V] {
	_, l := b.trimFit()
	if l < b.level {
		// Copy may clean out further items mid-array, so recurse as the
		// paper does.
		c := b.CopyIn(p, l)
		s := c.ShrinkIn(p)
		if s != c {
			p.Put(c) // c never escaped: private
		}
		return s
	}
	return b
}

// ShrinkTransferIn is ShrinkIn with §4.4 reference transfer: a compaction
// copy inherits the original's references (marking it donated) instead of
// re-acquiring them. In-place trims transfer nothing — the references stay
// with the block, whose release covers [0, refHi) regardless of filled.
// Owner-only and definitive, like MergeTransferIn; plain ShrinkIn behavior
// when b holds no references.
func (b *Block[V]) ShrinkTransferIn(p *Pool[V]) *Block[V] {
	if !b.refItems || !b.reffed {
		return b.ShrinkIn(p)
	}
	_, l := b.trimFit()
	if l < b.level {
		c := b.copyTransferIn(p, l)
		s := c.ShrinkTransferIn(p)
		if s != c {
			p.Put(c) // donated to s: private shell, recycle
		}
		return s
	}
	return b
}

// ShrinkInPlace trims the logically deleted tail of a possibly shared block
// by lowering filled. It never reallocates and never raises filled, so
// concurrent readers observe a monotonically shrinking, always-valid prefix.
// It returns the new filled value.
func (b *Block[V]) ShrinkInPlace() int {
	f := b.filled.Load()
	for f > 0 && b.items[f-1].Taken() {
		f--
	}
	// Another thread may have shrunk concurrently; only ever store a value
	// not larger than what we based the scan on.
	cur := b.filled.Load()
	if f < cur {
		b.filled.Store(f)
	}
	return int(f)
}

// Min returns the item in the minimum slot (items[filled-1]) without checking
// its deletion flag, or nil if the block is empty. Callers fall back to other
// candidates if the item is taken.
func (b *Block[V]) Min() *item.Item[V] {
	f := b.filled.Load()
	if f == 0 {
		return nil
	}
	return b.items[f-1]
}

// LiveMin scans from the tail past logically deleted items and returns the
// first live item and the number of deleted items skipped. It does not
// mutate the block, so it is safe on shared blocks. Returns nil if no live
// item exists.
func (b *Block[V]) LiveMin() (it *item.Item[V], skipped int) {
	f := b.filled.Load()
	for i := f - 1; i >= 0; i-- {
		if cand := b.items[i]; !cand.Taken() {
			return cand, int(f - 1 - i)
		}
	}
	return nil, int(f)
}

// LiveCount scans the whole block and counts live items. Intended for tests
// and size estimation, not hot paths.
func (b *Block[V]) LiveCount() int {
	n := 0
	for _, it := range b.Items() {
		if !it.Taken() {
			n++
		}
	}
	return n
}

// Empty reports whether the block has no occupied slots.
func (b *Block[V]) Empty() bool { return b.filled.Load() == 0 }

// Underfull reports whether the block violates its level's minimum occupancy
// (2^(l-1) < n for l > 0), indicating consolidation should shrink it.
func (b *Block[V]) Underfull() bool {
	if b.level == 0 {
		return b.filled.Load() == 0
	}
	return b.filled.Load() <= 1<<uint(b.level-1)
}

// SortedDesc reports whether the occupied prefix is in non-increasing key
// order. It exists for tests and invariant checks.
func (b *Block[V]) SortedDesc() bool {
	its := b.Items()
	for i := 1; i < len(its); i++ {
		if its[i-1].Key() < its[i].Key() {
			return false
		}
	}
	return true
}
