// Package block implements the sorted storage unit of all LSM variants
// (paper §4, Listing 1).
//
// A Block of level l holds up to 2^l pointers to Items in *decreasing* key
// order, so the minimum lives at items[filled-1]: delete-min shrinks blocks
// from the tail, and the paper's shrink/find-min logic (scan the tail for
// logically deleted items, fall back to items[filled-1]) depends on this
// orientation.
//
// Concurrency contract: a Block is mutable only while it is private to the
// thread constructing it (Append/MergeInto). Once published — stored into a
// DistLSM slot or referenced from a shared BlockArray — its item slots are
// immutable; only the filled counter may still shrink (ShrinkInPlace), which
// is why filled is atomic. Items beyond filled are intentionally not nil'ed:
// a concurrent spy may have read a larger filled moments earlier and must
// still find valid (if logically deleted) pointers there. The garbage-
// collection delay this causes is bounded, because every copy or merge drops
// taken items.
//
// Note on the paper's Listing 1: its shrink loop reads
// `while (f > 0 && !items[f-1]->flag) --f`, which would discard *live* items;
// the surrounding prose ("scans the end of the block for logically deleted
// items") makes clear the negation is a typo. We implement the prose.
package block

import (
	"sync/atomic"

	"klsm/internal/bloom"
	"klsm/internal/item"
)

// MaxLevel bounds block levels; a level-48 block would hold 2^48 items, far
// beyond addressable workloads, so fixed-size arrays of block pointers in the
// LSM structures use MaxLevel+1 slots.
const MaxLevel = 48

// DropFunc is an application callback for the lazy deletion extension
// (paper §4.5): during copies and merges, items for which drop returns true
// are treated like logically deleted items and not carried over. SSSP uses
// this to discard queue entries whose distance label is already stale.
type DropFunc[V any] func(key uint64, value V) bool

// Block is a sorted run of item pointers. See the package comment for the
// mutability contract.
type Block[V any] struct {
	level  int
	filled atomic.Int64
	items  []*item.Item[V]
	filter bloom.Filter
	// refItems marks blocks participating in the §4.4 reference-count
	// scheme. Set by Pool.Get on every block it hands out (recycled or
	// fresh) while the pool has an item pool attached; blocks created by
	// New directly never refcount. All blocks of one queue are configured
	// identically, so an item's count tracks either all published blocks
	// referencing it or none.
	//
	// References are acquired at publication, not per append: while a block
	// is private its owner is the reachability proof and the merge/copy hot
	// paths stay free of refcount traffic. AcquireRefs — called by the
	// owner immediately before the store that publishes the block, and
	// always before any predecessor holding the same items is unlinked —
	// takes one reference per occupied slot and records the range in refHi;
	// reffed blocks release exactly that range when their pool recycles or
	// drops them.
	refItems bool
	reffed   bool
	refHi    int64
}

// New returns an empty block of the given level (capacity 1<<level).
func New[V any](level int) *Block[V] {
	if level < 0 || level > MaxLevel {
		panic("block: level out of range")
	}
	return &Block[V]{
		level: level,
		items: make([]*item.Item[V], 1<<uint(level)),
	}
}

// LevelForCount returns the smallest level whose capacity holds n items.
// Counts beyond the MaxLevel capacity (or negative ones) panic: the shift in
// the naive loop would overflow int for n > 2^62 — Go defines the over-wide
// shift as 0 — and never terminate.
func LevelForCount(n int) int {
	if n < 0 || n > 1<<uint(MaxLevel) {
		panic("block: item count out of range")
	}
	level := 0
	for 1<<uint(level) < n {
		level++
	}
	return level
}

// Level returns the block's level; capacity is 1<<Level().
func (b *Block[V]) Level() int { return b.level }

// Capacity returns the item slot count.
func (b *Block[V]) Capacity() int { return len(b.items) }

// Filled returns the current number of occupied slots (live or logically
// deleted). Safe to call concurrently with ShrinkInPlace.
func (b *Block[V]) Filled() int { return int(b.filled.Load()) }

// Item returns the item in slot i. i must be < the value Filled returned to
// this caller (or a value it returned earlier; slots are never reused).
func (b *Block[V]) Item(i int) *item.Item[V] { return b.items[i] }

// Items returns the occupied prefix of the slot array as a read-only view.
func (b *Block[V]) Items() []*item.Item[V] { return b.items[:b.filled.Load()] }

// Bloom returns the filter of handle IDs that contributed items to b.
func (b *Block[V]) Bloom() bloom.Filter { return b.filter }

// AddOwner records a contributing handle ID in the block's Bloom filter.
// Must only be called while the block is private.
func (b *Block[V]) AddOwner(id uint64) { b.filter = b.filter.Add(id) }

// SetBloom overwrites the filter. Must only be called while private.
func (b *Block[V]) SetBloom(f bloom.Filter) { b.filter = f }

// Append adds it to the end of the block unless it has been logically
// deleted (Listing 1). The caller is responsible for preserving decreasing
// key order and for only appending to private blocks.
func (b *Block[V]) Append(it *item.Item[V]) {
	if it.Taken() {
		return
	}
	f := b.filled.Load()
	b.items[f] = it
	b.filled.Store(f + 1)
}

// AcquireRefs takes one reference per occupied slot on behalf of this block
// (§4.4 proper). The owner must call it immediately before the store that
// publishes the block — crucially, before any predecessor block holding the
// same items is unlinked or recycled, so a live item's count never dips to
// zero in between. No-op unless the block came from a reclaiming pool, or
// if references were already acquired (a block that stays reachable across
// several published snapshots holds exactly one reference per slot, total).
func (b *Block[V]) AcquireRefs() {
	if !b.refItems || b.reffed {
		return
	}
	f := b.filled.Load()
	for _, it := range b.items[:f] {
		it.Ref()
	}
	b.reffed = true
	b.refHi = f
}

// HoldsRefs reports whether AcquireRefs has run on this block, for tests.
func (b *Block[V]) HoldsRefs() bool { return b.reffed }

// appendAt is the bulk-copy fast path of Append: the caller owns b (still
// private), tracks the filled count in f, and stores it once when the whole
// copy or merge is done — turning two atomic filled operations per item
// into one per block. Returns the new count.
func (b *Block[V]) appendAt(f int64, it *item.Item[V], drop DropFunc[V]) int64 {
	if it.Taken() {
		return f
	}
	if drop != nil && drop(it.Key(), it.Value()) {
		// Claim the item so copies of it in other blocks (stale merges,
		// spied blocks) cannot resurrect it.
		it.TryTake()
		return f
	}
	b.items[f] = it
	return f + 1
}

// Copy returns a new private block of the given level containing b's live
// items (logically deleted ones are filtered out, Listing 1). The Bloom
// filter is carried over.
func (b *Block[V]) Copy(level int) *Block[V] {
	return b.CopyDropIn(nil, level, nil)
}

// CopyDrop is Copy with the lazy-deletion callback applied.
func (b *Block[V]) CopyDrop(level int, drop DropFunc[V]) *Block[V] {
	return b.CopyDropIn(nil, level, drop)
}

// CopyIn is Copy allocating the destination from p (nil p allocates).
func (b *Block[V]) CopyIn(p *Pool[V], level int) *Block[V] {
	return b.CopyDropIn(p, level, nil)
}

// CopyDropIn is CopyDrop allocating the destination from p.
func (b *Block[V]) CopyDropIn(p *Pool[V], level int, drop DropFunc[V]) *Block[V] {
	nb := p.Get(level)
	nb.filter = b.filter
	f := nb.filled.Load()
	for _, it := range b.Items() {
		f = nb.appendAt(f, it, drop)
	}
	nb.filled.Store(f)
	return nb
}

// MergeInto fills dst (a fresh private block) with the two-way merge of b1
// and b2 in decreasing key order, filtering logically deleted and dropped
// items and uniting the Bloom filters. dst must have capacity for
// b1.Filled()+b2.Filled() items.
func MergeInto[V any](dst, b1, b2 *Block[V], drop DropFunc[V]) {
	a, b := b1.Items(), b2.Items()
	dst.filter = b1.filter.Union(b2.filter)
	f := dst.filled.Load()
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// >= keeps the merge stable and the order non-increasing.
		if a[i].Key() >= b[j].Key() {
			f = dst.appendAt(f, a[i], drop)
			i++
		} else {
			f = dst.appendAt(f, b[j], drop)
			j++
		}
	}
	for ; i < len(a); i++ {
		f = dst.appendAt(f, a[i], drop)
	}
	for ; j < len(b); j++ {
		f = dst.appendAt(f, b[j], drop)
	}
	dst.filled.Store(f)
}

// Merge allocates a block one level above the larger input and merges b1 and
// b2 into it, then shrinks it to the smallest fitting level. This is the
// "merge then shrink" step shared by all LSM insert paths.
func Merge[V any](b1, b2 *Block[V], drop DropFunc[V]) *Block[V] {
	return MergeIn[V](nil, b1, b2, drop)
}

// MergeIn is Merge drawing the destination (and any shrink copy) from p and
// returning intermediates to it. The inputs are untouched: whether they can
// be recycled is the caller's call (it knows which ones are private).
func MergeIn[V any](p *Pool[V], b1, b2 *Block[V], drop DropFunc[V]) *Block[V] {
	level := b1.level
	if b2.level > level {
		level = b2.level
	}
	dst := p.Get(level + 1)
	MergeInto(dst, b1, b2, drop)
	s := dst.ShrinkIn(p)
	if s != dst {
		p.Put(dst) // dst never left this function: private by construction
	}
	return s
}

// Shrink returns a block holding b's live items at the smallest adequate
// level (Listing 1). If b already satisfies its level constraint after
// trimming the logically deleted tail, b itself is returned with filled
// updated; otherwise a compacted copy at a smaller level is returned.
// Must only be called on private blocks (use ShrinkInPlace for published
// ones).
func (b *Block[V]) Shrink() *Block[V] {
	return b.ShrinkIn(nil)
}

// ShrinkIn is Shrink drawing compaction copies from p and returning its
// intermediates to it. Whether b itself (when replaced) can be recycled is
// the caller's decision.
func (b *Block[V]) ShrinkIn(p *Pool[V]) *Block[V] {
	f := b.filled.Load()
	for f > 0 && b.items[f-1].Taken() {
		f--
	}
	l := b.level
	for l > 0 && f <= 1<<uint(l-1) {
		l--
	}
	if l < b.level {
		// Copy may clean out further items mid-array, so recurse as the
		// paper does.
		b.filled.Store(f)
		c := b.CopyIn(p, l)
		s := c.ShrinkIn(p)
		if s != c {
			p.Put(c) // c never escaped: private
		}
		return s
	}
	b.filled.Store(f)
	return b
}

// ShrinkInPlace trims the logically deleted tail of a possibly shared block
// by lowering filled. It never reallocates and never raises filled, so
// concurrent readers observe a monotonically shrinking, always-valid prefix.
// It returns the new filled value.
func (b *Block[V]) ShrinkInPlace() int {
	f := b.filled.Load()
	for f > 0 && b.items[f-1].Taken() {
		f--
	}
	// Another thread may have shrunk concurrently; only ever store a value
	// not larger than what we based the scan on.
	cur := b.filled.Load()
	if f < cur {
		b.filled.Store(f)
	}
	return int(f)
}

// Min returns the item in the minimum slot (items[filled-1]) without checking
// its deletion flag, or nil if the block is empty. Callers fall back to other
// candidates if the item is taken.
func (b *Block[V]) Min() *item.Item[V] {
	f := b.filled.Load()
	if f == 0 {
		return nil
	}
	return b.items[f-1]
}

// LiveMin scans from the tail past logically deleted items and returns the
// first live item and the number of deleted items skipped. It does not
// mutate the block, so it is safe on shared blocks. Returns nil if no live
// item exists.
func (b *Block[V]) LiveMin() (it *item.Item[V], skipped int) {
	f := b.filled.Load()
	for i := f - 1; i >= 0; i-- {
		if cand := b.items[i]; !cand.Taken() {
			return cand, int(f - 1 - i)
		}
	}
	return nil, int(f)
}

// LiveCount scans the whole block and counts live items. Intended for tests
// and size estimation, not hot paths.
func (b *Block[V]) LiveCount() int {
	n := 0
	for _, it := range b.Items() {
		if !it.Taken() {
			n++
		}
	}
	return n
}

// Empty reports whether the block has no occupied slots.
func (b *Block[V]) Empty() bool { return b.filled.Load() == 0 }

// Underfull reports whether the block violates its level's minimum occupancy
// (2^(l-1) < n for l > 0), indicating consolidation should shrink it.
func (b *Block[V]) Underfull() bool {
	if b.level == 0 {
		return b.filled.Load() == 0
	}
	return b.filled.Load() <= 1<<uint(b.level-1)
}

// SortedDesc reports whether the occupied prefix is in non-increasing key
// order. It exists for tests and invariant checks.
func (b *Block[V]) SortedDesc() bool {
	its := b.Items()
	for i := 1; i < len(its); i++ {
		if its[i-1].Key() < its[i].Key() {
			return false
		}
	}
	return true
}
