package block

import (
	"sort"
	"testing"

	"klsm/internal/item"
)

// desc builds a private block from keys, sorting them descending first.
func desc(t testing.TB, keys ...uint64) *Block[int] {
	t.Helper()
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	b := New[int](LevelForCount(len(sorted)))
	for i, k := range sorted {
		b.Append(item.New(k, i))
	}
	return b
}

// keysOf extracts the key sequence of the occupied prefix.
func keysOf(b *Block[int]) []uint64 {
	var out []uint64
	for _, it := range b.Items() {
		out = append(out, it.Key())
	}
	return out
}

func TestNewBlock(t *testing.T) {
	b := New[int](3)
	if b.Level() != 3 || b.Capacity() != 8 || b.Filled() != 0 || !b.Empty() {
		t.Fatalf("unexpected fresh block state: level=%d cap=%d filled=%d", b.Level(), b.Capacity(), b.Filled())
	}
}

func TestNewPanicsOnBadLevel(t *testing.T) {
	for _, level := range []int{-1, MaxLevel + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", level)
				}
			}()
			New[int](level)
		}()
	}
}

func TestLevelForCount(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := LevelForCount(c.n); got != c.want {
			t.Errorf("LevelForCount(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAppendSkipsTaken(t *testing.T) {
	b := New[int](2)
	live := item.New(10, 0)
	dead := item.New[int](20, 0)
	dead.TryTake()
	b.Append(dead)
	b.Append(live)
	if b.Filled() != 1 || b.Item(0) != live {
		t.Fatalf("Append did not skip taken item: filled=%d", b.Filled())
	}
}

func TestCopyFiltersTaken(t *testing.T) {
	b := desc(t, 50, 40, 30, 20, 10)
	b.Item(1).TryTake() // key 40
	b.Item(3).TryTake() // key 20
	c := b.Copy(b.Level())
	got := keysOf(c)
	want := []uint64{50, 30, 10}
	if len(got) != len(want) {
		t.Fatalf("copy kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("copy kept %v, want %v", got, want)
		}
	}
	if !c.SortedDesc() {
		t.Fatal("copy not sorted descending")
	}
}

func TestCopyDropAppliesCallback(t *testing.T) {
	b := desc(t, 5, 4, 3, 2, 1)
	c := b.CopyDrop(b.Level(), func(key uint64, _ int) bool { return key%2 == 0 })
	got := keysOf(c)
	want := []uint64{5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("CopyDrop kept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CopyDrop kept %v, want %v", got, want)
		}
	}
	// Dropped items must be claimed so other references cannot revive them.
	for _, it := range b.Items() {
		if it.Key()%2 == 0 && !it.Taken() {
			t.Fatalf("dropped item %d not taken", it.Key())
		}
	}
}

func TestMergeBasic(t *testing.T) {
	b1 := desc(t, 9, 7, 3)
	b2 := desc(t, 11, 4, 1)
	m := Merge(b1, b2, nil)
	got := keysOf(m)
	want := []uint64{11, 9, 7, 4, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestMergeWithDuplicateKeys(t *testing.T) {
	b1 := desc(t, 5, 5, 3)
	b2 := desc(t, 5, 3, 1)
	m := Merge(b1, b2, nil)
	if got := keysOf(m); len(got) != 6 || !m.SortedDesc() {
		t.Fatalf("merge with duplicates = %v", got)
	}
}

func TestMergeFiltersTaken(t *testing.T) {
	b1 := desc(t, 8, 6, 4)
	b2 := desc(t, 7, 5, 3)
	b1.Item(0).TryTake() // 8
	b2.Item(2).TryTake() // 3
	m := Merge(b1, b2, nil)
	got := keysOf(m)
	want := []uint64{7, 6, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestMergeEmptyBlocks(t *testing.T) {
	e1, e2 := New[int](0), New[int](0)
	m := Merge(e1, e2, nil)
	if !m.Empty() {
		t.Fatal("merge of empties not empty")
	}
	b := desc(t, 2, 1)
	m2 := Merge(b, New[int](0), nil)
	if got := keysOf(m2); len(got) != 2 || got[0] != 2 {
		t.Fatalf("merge with empty = %v", got)
	}
}

func TestMergeUnitesBlooms(t *testing.T) {
	b1, b2 := desc(t, 3), desc(t, 2)
	b1.AddOwner(1)
	b2.AddOwner(2)
	m := Merge(b1, b2, nil)
	if !m.Bloom().MayContain(1) || !m.Bloom().MayContain(2) {
		t.Fatal("merged bloom lost an owner")
	}
}

func TestShrinkTrimsDeletedTail(t *testing.T) {
	b := desc(t, 40, 30, 20, 10)
	b.Item(3).TryTake() // 10, the minimum
	b.Item(2).TryTake() // 20
	s := b.Shrink()
	if s.Filled() != 2 {
		t.Fatalf("shrink filled = %d, want 2", s.Filled())
	}
	if s.Level() != 1 {
		t.Fatalf("shrink level = %d, want 1", s.Level())
	}
	got := keysOf(s)
	if got[0] != 40 || got[1] != 30 {
		t.Fatalf("shrink kept %v", got)
	}
}

func TestShrinkNoopWhenFull(t *testing.T) {
	b := desc(t, 4, 3, 2)
	s := b.Shrink()
	if s != b {
		t.Fatal("shrink reallocated a block that satisfies its level")
	}
	if s.Filled() != 3 {
		t.Fatalf("filled = %d", s.Filled())
	}
}

func TestShrinkIgnoresMidArrayDeletions(t *testing.T) {
	// Shrink only considers the logically deleted *tail* (Listing 1); with a
	// live minimum the block keeps its level even if mid-array items died.
	// Mid-array garbage is reclaimed by the next copy/merge instead.
	b := desc(t, 80, 70, 60, 50, 40, 30, 20, 10)
	for _, i := range []int{1, 2, 3, 4, 5} {
		b.Item(i).TryTake()
	}
	s := b.Shrink()
	if s != b || s.Level() != 3 || s.Filled() != 8 {
		t.Fatalf("shrink with live tail changed block: level=%d filled=%d", s.Level(), s.Filled())
	}
	// A copy cleans mid-array deletions and a subsequent shrink compacts.
	c := s.Copy(s.Level()).Shrink()
	if c.LiveCount() != 3 || c.Filled() != 3 {
		t.Fatalf("copy+shrink live = %d filled = %d, want 3/3", c.LiveCount(), c.Filled())
	}
	if c.Level() > 2 {
		t.Fatalf("copy+shrink level = %d, want <= 2", c.Level())
	}
	if !c.SortedDesc() {
		t.Fatal("not sorted after copy+shrink")
	}
}

func TestShrinkEmptiesToLevelZero(t *testing.T) {
	b := desc(t, 3, 2, 1)
	for i := 0; i < 3; i++ {
		b.Item(i).TryTake()
	}
	s := b.Shrink()
	if !s.Empty() || s.Level() != 0 {
		t.Fatalf("shrink of dead block: filled=%d level=%d", s.Filled(), s.Level())
	}
}

func TestShrinkInPlace(t *testing.T) {
	b := desc(t, 40, 30, 20, 10)
	b.Item(3).TryTake()
	b.Item(2).TryTake()
	if got := b.ShrinkInPlace(); got != 2 {
		t.Fatalf("ShrinkInPlace = %d, want 2", got)
	}
	if b.Filled() != 2 {
		t.Fatalf("filled after in-place shrink = %d", b.Filled())
	}
	// Idempotent.
	if got := b.ShrinkInPlace(); got != 2 {
		t.Fatalf("second ShrinkInPlace = %d", got)
	}
}

func TestMinAndLiveMin(t *testing.T) {
	b := desc(t, 30, 20, 10)
	if b.Min().Key() != 10 {
		t.Fatalf("Min = %d, want 10", b.Min().Key())
	}
	it, skipped := b.LiveMin()
	if it.Key() != 10 || skipped != 0 {
		t.Fatalf("LiveMin = %d (skipped %d)", it.Key(), skipped)
	}
	b.Item(2).TryTake()
	it, skipped = b.LiveMin()
	if it.Key() != 20 || skipped != 1 {
		t.Fatalf("LiveMin after delete = %v (skipped %d)", it, skipped)
	}
	// LiveMin must not mutate.
	if b.Filled() != 3 {
		t.Fatal("LiveMin mutated filled")
	}
}

func TestLiveMinAllDead(t *testing.T) {
	b := desc(t, 2, 1)
	b.Item(0).TryTake()
	b.Item(1).TryTake()
	if it, skipped := b.LiveMin(); it != nil || skipped != 2 {
		t.Fatalf("LiveMin on dead block = %v (skipped %d)", it, skipped)
	}
	if New[int](0).Min() != nil {
		t.Fatal("Min of empty block not nil")
	}
}

func TestUnderfull(t *testing.T) {
	b := New[int](2) // capacity 4, needs > 2 items
	b.Append(item.New[int](3, 0))
	b.Append(item.New[int](2, 0))
	if !b.Underfull() {
		t.Fatal("2 items at level 2 should be underfull")
	}
	b.Append(item.New[int](1, 0))
	if b.Underfull() {
		t.Fatal("3 items at level 2 should not be underfull")
	}
	z := New[int](0)
	if !z.Underfull() {
		t.Fatal("empty level-0 block should be underfull")
	}
	z.Append(item.New[int](1, 0))
	if z.Underfull() {
		t.Fatal("full level-0 block should not be underfull")
	}
}
