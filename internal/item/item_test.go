package item

import (
	"sync"
	"testing"
)

func TestNewItem(t *testing.T) {
	it := New[string](42, "payload")
	if it.Key() != 42 {
		t.Fatalf("Key = %d, want 42", it.Key())
	}
	if it.Value() != "payload" {
		t.Fatalf("Value = %q, want payload", it.Value())
	}
	if it.Taken() {
		t.Fatal("fresh item already taken")
	}
}

func TestTryTakeOnce(t *testing.T) {
	it := New[struct{}](1, struct{}{})
	if !it.TryTake() {
		t.Fatal("first TryTake failed")
	}
	if !it.Taken() {
		t.Fatal("Taken false after successful TryTake")
	}
	if it.TryTake() {
		t.Fatal("second TryTake succeeded")
	}
}

// TestTryTakeExactlyOnceConcurrent is the core exactly-once-deletion
// guarantee: many goroutines race on TryTake, precisely one may win.
func TestTryTakeExactlyOnceConcurrent(t *testing.T) {
	const goroutines = 16
	const items = 2000
	its := make([]*Item[int], items)
	for i := range its {
		its[i] = New(uint64(i), i)
	}
	wins := make([]int, goroutines)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			start.Wait()
			for _, it := range its {
				if it.TryTake() {
					wins[id]++
				}
			}
		}(g)
	}
	start.Done()
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != items {
		t.Fatalf("total wins = %d, want exactly %d (each item taken exactly once)", total, items)
	}
	for _, it := range its {
		if !it.Taken() {
			t.Fatal("item not taken after the race")
		}
	}
}

func TestZeroKeyAndMaxKey(t *testing.T) {
	lo := New[struct{}](0, struct{}{})
	hi := New[struct{}](^uint64(0), struct{}{})
	if lo.Key() != 0 || hi.Key() != ^uint64(0) {
		t.Fatal("extreme keys not preserved")
	}
}

func BenchmarkTryTake(b *testing.B) {
	its := make([]*Item[struct{}], b.N)
	for i := range its {
		its[i] = New[struct{}](uint64(i), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		its[i].TryTake()
	}
}

func BenchmarkTakenLoad(b *testing.B) {
	it := New[struct{}](1, struct{}{})
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = it.Taken()
	}
	_ = sink
}
