package item

// slabSize is the number of Items allocated per slab. One slab allocation
// amortizes over slabSize inserts, taking the steady-state insert path to
// ~1/slabSize heap allocations per wrapped key.
const slabSize = 256

// Pool is a per-handle allocator and free list for Items (§4.4). It is not
// safe for concurrent use: every handle owns exactly one.
//
// Get prefers recycled items, then carves from a slab, allocating a new slab
// only when both run dry. Put recycles an item under the §4.4 reuse
// contract: the item must be taken AND unreachable from every published
// block. Two callers can supply that proof:
//
//   - the sequential LSM, where each item lives in exactly one block and is
//     provably sole-referenced the moment DeleteMin trims it, and
//   - the lineage reference-count scheme (§4.4 proper): block pools with
//     an attached item pool release a lineage's references when its blocks
//     and dropped items clear the §4.4 quiescence proofs, and hand the item
//     here when the last reference dies on a taken item.
//
// Without either (reclamation disabled), taken items are simply left to the
// garbage collector — the Go backstop the paper's C++ implementation lacks.
//
// A nil *Pool is valid and falls back to plain allocation, so pooling can be
// disabled by simply not creating pools.
type Pool[V any] struct {
	free []*Item[V]
	slab []Item[V]

	// allocs counts slab allocations, reuses counts Get calls served from
	// the free list; exposed for tests and diagnostics.
	allocs int64
	reuses int64
	// puts counts items recycled through Put — with reference counting on,
	// exactly one Put happens per taken incarnation, so the accounting tests
	// compare this against the number of successful deletes.
	puts int64
}

// NewPool returns an empty item pool.
func NewPool[V any]() *Pool[V] { return &Pool[V]{} }

// Get returns a live item holding key and value, recycling a retired item
// when one is available.
func (p *Pool[V]) Get(key uint64, value V) *Item[V] {
	if p == nil {
		return New(key, value)
	}
	if n := len(p.free); n > 0 {
		it := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		it.Reset(key, value)
		return it
	}
	if len(p.slab) == 0 {
		p.slab = make([]Item[V], slabSize)
		p.allocs++
	}
	it := &p.slab[0]
	p.slab = p.slab[1:]
	it.key = key
	it.value = value
	return it
}

// Put recycles an item. Contract: the item is taken and unreachable from
// every published structure (the caller owns the only remaining reference).
// Panics on a live item — that is always a contract violation.
func (p *Pool[V]) Put(it *Item[V]) {
	if p == nil || it == nil {
		return
	}
	if !it.Taken() {
		panic("item: Put of a live item")
	}
	// Drop the payload so recycled items do not pin caller memory while they
	// sit in the free list.
	var zero V
	it.value = zero
	p.puts++
	p.free = append(p.free, it)
}

// TrimFree drops free-listed items beyond max to the garbage collector.
// Pools that only ever absorb releases and never serve Get (the queue
// reaper) call it after drains so reclaimed items do not accumulate for
// the pool's lifetime; the items are taken and unreferenced, so letting
// the GC take them is safe and their ledger accounting (Puts) is already
// done.
func (p *Pool[V]) TrimFree(max int) {
	if p == nil || len(p.free) <= max {
		return
	}
	clear(p.free[max:])
	p.free = p.free[:max]
}

// Puts returns the number of items recycled through Put. With reference
// counting on this is the exactly-once release count the accounting tests
// assert against.
func (p *Pool[V]) Puts() int64 {
	if p == nil {
		return 0
	}
	return p.puts
}

// FreeLen returns the current free-list length, for tests.
func (p *Pool[V]) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Stats returns (slab allocations, recycled Gets) for tests and diagnostics.
func (p *Pool[V]) Stats() (allocs, reuses int64) {
	if p == nil {
		return 0, 0
	}
	return p.allocs, p.reuses
}
