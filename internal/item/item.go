// Package item implements the Item wrapper the k-LSM stores keys in
// (paper §4, "Shared components").
//
// Every key inserted into the queue is wrapped in exactly one Item. Blocks
// hold pointers to Items, and more than one pointer to the same Item may
// exist at a time (spying copies pointers, merges leave stale blocks briefly
// reachable). Deletion is logical: delete-min performs an atomic test-and-set
// on the Item's flag, so no matter how many blocks still reference the Item,
// exactly one delete-min ever returns it. Pointers to taken Items are lazily
// purged whenever blocks are copied, merged, or shrunk.
//
// Following the paper's §4.4 memory-management scheme, the flag is a
// versioned counter rather than a plain boolean: even values mean live, odd
// values mean taken, and the value only ever increases. This makes item
// reuse ABA-safe: TryTake compare-and-swaps against the exact version it
// observed, so a take attempt that raced with a recycle (take → Reset to a
// new even version) fails instead of deleting the item's next incarnation.
// Reuse itself is governed by the pool contract (see Pool): an Item may only
// be Reset once it is unreachable from every published LSM structure.
//
// # Reference counting (§4.4 proper, lineage-batched)
//
// The unreachability proof the pool contract demands is supplied by a
// per-item reference count — but unlike a naive scheme that pays two atomic
// RMWs per item per block generation, the count tracks block *lineages*:
// a reference is acquired once when an item first enters a lineage (its
// insert-time block, a spy copy, a meld copy) and released once when that
// lineage ends. Merges in between *transfer* ownership of their inputs'
// references to the merged block (see block.Block's transfer machinery), so
// the count never moves while an item survives generation churn. Items
// filtered out of a merge (logically deleted) travel to the §4.4 limbo
// machinery and release exactly once when the structure they were dropped
// from is provably unreachable. When Unref observes the count reach zero,
// no published structure and no concurrent reader can still reach the item;
// if the item is also taken at that point, the releasing handle returns it
// to its item Pool — exactly one release per incarnation can observe the
// zero, so an item is reclaimed exactly once. A live item can never hit
// zero: every path that unlinks a block first publishes a successor holding
// the live items (and their transferred references).
//
// The count says nothing about transient non-block references (a candidate
// pointer held across a FindMin retry, a min-cache entry): those are safe
// because the block they were read from is itself pinned by one of the
// block-reclamation proofs for as long as the reader may dereference the
// item — see DESIGN.md, "Deterministic item reclamation".
package item

import "sync/atomic"

// Item wraps a key and payload with a versioned logical-deletion flag. Items
// are created by insert and shared freely between blocks and queues; between
// Reset calls (which require exclusive ownership) only the flag and the
// reference count mutate.
type Item[V any] struct {
	key   uint64
	value V
	// seq is the durability sequence number (write-ahead-log identity) of
	// the current incarnation. It is meaningful only for queues running with
	// persistence, which stamp it on every insert via SetSeq before the item
	// is published; elsewhere it is stale or zero and never read. Like key
	// and value it is immutable between Reset calls, so merges, spies and
	// melds carry it along for free by sharing the Item pointer.
	seq uint64
	// flag is the §4.4 versioned deletion flag: even = live, odd = taken.
	// It increments monotonically — TryTake bumps even→odd, Reset bumps
	// odd→even — so stale CAS attempts from a previous incarnation fail.
	flag atomic.Uint64
	// refs counts the block lineages currently holding the item (§4.4
	// proper). Maintained only when the owning queue runs with item
	// reclamation enabled; zero-valued and untouched otherwise.
	refs atomic.Int64
}

// New returns a live Item holding key and value.
func New[V any](key uint64, value V) *Item[V] {
	return &Item[V]{key: key, value: value}
}

// Key returns the priority key. Smaller keys are higher priority.
func (it *Item[V]) Key() uint64 { return it.key }

// Value returns the payload stored alongside the key.
func (it *Item[V]) Value() V { return it.value }

// Seq returns the durability sequence number stamped by SetSeq. Zero (or a
// stale value from a previous incarnation) for queues without persistence.
func (it *Item[V]) Seq() uint64 { return it.seq }

// SetSeq stamps the durability sequence number. It must only be called
// between obtaining the item (New, Pool.Get) and publishing it into any
// structure — afterwards the field is shared and read-only, like key.
func (it *Item[V]) SetSeq(seq uint64) { it.seq = seq }

// Taken reports whether the item has been logically deleted. A false result
// may be stale by the time the caller acts on it; callers that need to claim
// the item must use TryTake.
func (it *Item[V]) Taken() bool { return it.flag.Load()&1 == 1 }

// Version returns the current flag value, for tests and diagnostics. The
// version increments once per take and once per reuse.
func (it *Item[V]) Version() uint64 { return it.flag.Load() }

// TryTake attempts to logically delete the item and reports whether this
// caller won. At most one TryTake per incarnation (Reset-to-Reset lifetime)
// returns true; this is the linearization point of a successful delete-min.
// The CAS is against the exact observed version, so a concurrent recycle
// (which bumps the version past it) makes the attempt fail rather than
// deleting the reused item.
func (it *Item[V]) TryTake() bool {
	v := it.flag.Load()
	return v&1 == 0 && it.flag.CompareAndSwap(v, v+1)
}

// TryTakeAt attempts to logically delete the item against a version captured
// earlier (an even value returned by Version while the item was pinned by one
// of the block-reclamation proofs). Unlike TryTake it never re-loads the
// flag: the CAS succeeds only when the item is still the same live
// incarnation the caller captured, so a reference held *without* any pin — a
// candidate-window entry or deletion-buffer entry that outlived its source
// snapshot — can be claimed safely: if the item was taken, or taken and
// recycled into a new incarnation, the version has moved and the attempt
// fails instead of deleting an item the caller never selected.
func (it *Item[V]) TryTakeAt(ver uint64) bool {
	return ver&1 == 0 && it.flag.CompareAndSwap(ver, ver+1)
}

// Ref acquires one reference on behalf of a block lineage about to hold the
// item. Callers must already hold a safe path to the item (a slot in a
// block that itself holds a reference, or exclusive ownership of a freshly
// created item), so the count can never be resurrected from zero by a
// racing reader.
func (it *Item[V]) Ref() { it.refs.Add(1) }

// Unref releases one reference and reports whether this call dropped the
// count to zero. At most one Unref per incarnation returns true; the caller
// that sees true owns the item exclusively (no lineage holds it, and the
// reclamation proofs guarantee no reader can still acquire it) and must
// either recycle it — if it is taken — or account it as lost. Panics if the
// count underflows, which indicates a transfer/release imbalance bug.
func (it *Item[V]) Unref() bool {
	n := it.refs.Add(-1)
	if n < 0 {
		panic("item: Unref below zero (ref/unref imbalance)")
	}
	return n == 0
}

// Refs returns the current reference count, for tests and diagnostics.
func (it *Item[V]) Refs() int64 { return it.refs.Load() }

// Snap is a version-stamped reference to an item: the pointer plus the even
// flag value and key observed while the holder still had a safe path to the
// item. Snaps are how the candidate window and the per-handle deletion
// buffer carry items across snapshot changes without any pin: Go's GC keeps
// the Item struct itself alive, and TryTakeAt(Ver) claims exactly the
// captured incarnation or fails. Key caches it.Key() from capture time — the
// key of an incarnation never mutates, so it stays correct for exactly as
// long as the version check passes.
type Snap[V any] struct {
	It  *Item[V]
	Ver uint64
	Key uint64
}

// Live reports whether the referenced incarnation is still live: the flag has
// not moved since capture. A true result may be stale immediately; claiming
// requires It.TryTakeAt(Ver).
func (s Snap[V]) Live() bool { return s.It.flag.Load() == s.Ver }

// Reset revives a taken item with a new key and payload for reuse (§4.4).
// The caller must guarantee exclusive ownership: the item must be taken and
// unreachable from every published block. Panics if the item is still live,
// which would indicate a pool-contract violation.
func (it *Item[V]) Reset(key uint64, value V) {
	v := it.flag.Load()
	if v&1 == 0 {
		panic("item: Reset of a live item")
	}
	it.key = key
	it.value = value
	it.flag.Store(v + 1) // odd → even: live again, new incarnation
}
