// Package item implements the Item wrapper the k-LSM stores keys in
// (paper §4, "Shared components").
//
// Every key inserted into the queue is wrapped in exactly one Item. Blocks
// hold pointers to Items, and more than one pointer to the same Item may
// exist at a time (spying copies pointers, merges leave stale blocks briefly
// reachable). Deletion is logical: delete-min performs an atomic test-and-set
// on the Item's flag, so no matter how many blocks still reference the Item,
// exactly one delete-min ever returns it. Pointers to taken Items are lazily
// purged whenever blocks are copied, merged, or shrunk.
//
// The paper's C++ version widens the flag to a versioned integer for ABA
// safety under manual memory reuse (§4.4); under Go's garbage collector an
// Item is never recycled while reachable, so a plain one-shot flag suffices.
package item

import "sync/atomic"

// Item wraps a key and payload with a logical-deletion flag. Items are
// created by insert, shared freely between blocks and queues, and never
// mutated except for the flag.
type Item[V any] struct {
	key   uint64
	value V
	taken atomic.Bool
}

// New returns a live Item holding key and value.
func New[V any](key uint64, value V) *Item[V] {
	return &Item[V]{key: key, value: value}
}

// Key returns the priority key. Smaller keys are higher priority.
func (it *Item[V]) Key() uint64 { return it.key }

// Value returns the payload stored alongside the key.
func (it *Item[V]) Value() V { return it.value }

// Taken reports whether the item has been logically deleted. A false result
// may be stale by the time the caller acts on it; callers that need to claim
// the item must use TryTake.
func (it *Item[V]) Taken() bool { return it.taken.Load() }

// TryTake attempts to logically delete the item and reports whether this
// caller won. At most one TryTake over the item's lifetime returns true;
// this is the linearization point of a successful delete-min.
func (it *Item[V]) TryTake() bool {
	return !it.taken.Load() && it.taken.CompareAndSwap(false, true)
}
