// Package item implements the Item wrapper the k-LSM stores keys in
// (paper §4, "Shared components").
//
// Every key inserted into the queue is wrapped in exactly one Item. Blocks
// hold pointers to Items, and more than one pointer to the same Item may
// exist at a time (spying copies pointers, merges leave stale blocks briefly
// reachable). Deletion is logical: delete-min performs an atomic test-and-set
// on the Item's flag, so no matter how many blocks still reference the Item,
// exactly one delete-min ever returns it. Pointers to taken Items are lazily
// purged whenever blocks are copied, merged, or shrunk.
//
// Following the paper's §4.4 memory-management scheme, the flag is a
// versioned counter rather than a plain boolean: even values mean live, odd
// values mean taken, and the value only ever increases. This makes item
// reuse ABA-safe: TryTake compare-and-swaps against the exact version it
// observed, so a take attempt that raced with a recycle (take → Reset to a
// new even version) fails instead of deleting the item's next incarnation.
// Reuse itself is governed by the pool contract (see Pool): an Item may only
// be Reset once it is unreachable from every published LSM structure.
package item

import "sync/atomic"

// Item wraps a key and payload with a versioned logical-deletion flag. Items
// are created by insert and shared freely between blocks and queues; between
// Reset calls (which require exclusive ownership) only the flag mutates.
type Item[V any] struct {
	key   uint64
	value V
	// flag is the §4.4 versioned deletion flag: even = live, odd = taken.
	// It increments monotonically — TryTake bumps even→odd, Reset bumps
	// odd→even — so stale CAS attempts from a previous incarnation fail.
	flag atomic.Uint64
}

// New returns a live Item holding key and value.
func New[V any](key uint64, value V) *Item[V] {
	return &Item[V]{key: key, value: value}
}

// Key returns the priority key. Smaller keys are higher priority.
func (it *Item[V]) Key() uint64 { return it.key }

// Value returns the payload stored alongside the key.
func (it *Item[V]) Value() V { return it.value }

// Taken reports whether the item has been logically deleted. A false result
// may be stale by the time the caller acts on it; callers that need to claim
// the item must use TryTake.
func (it *Item[V]) Taken() bool { return it.flag.Load()&1 == 1 }

// Version returns the current flag value, for tests and diagnostics. The
// version increments once per take and once per reuse.
func (it *Item[V]) Version() uint64 { return it.flag.Load() }

// TryTake attempts to logically delete the item and reports whether this
// caller won. At most one TryTake per incarnation (Reset-to-Reset lifetime)
// returns true; this is the linearization point of a successful delete-min.
// The CAS is against the exact observed version, so a concurrent recycle
// (which bumps the version past it) makes the attempt fail rather than
// deleting the reused item.
func (it *Item[V]) TryTake() bool {
	v := it.flag.Load()
	return v&1 == 0 && it.flag.CompareAndSwap(v, v+1)
}

// Reset revives a taken item with a new key and payload for reuse (§4.4).
// The caller must guarantee exclusive ownership: the item must be taken and
// unreachable from every published block. Panics if the item is still live,
// which would indicate a pool-contract violation.
func (it *Item[V]) Reset(key uint64, value V) {
	v := it.flag.Load()
	if v&1 == 0 {
		panic("item: Reset of a live item")
	}
	it.key = key
	it.value = value
	it.flag.Store(v + 1) // odd → even: live again, new incarnation
}
