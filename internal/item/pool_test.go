package item

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestVersionedFlagLifecycle(t *testing.T) {
	it := New[string](1, "a")
	if v := it.Version(); v != 0 {
		t.Fatalf("fresh version = %d, want 0", v)
	}
	if !it.TryTake() {
		t.Fatal("TryTake failed")
	}
	if v := it.Version(); v != 1 {
		t.Fatalf("taken version = %d, want 1", v)
	}
	it.Reset(2, "b")
	if it.Taken() {
		t.Fatal("reset item still taken")
	}
	if v := it.Version(); v != 2 {
		t.Fatalf("reset version = %d, want 2", v)
	}
	if it.Key() != 2 || it.Value() != "b" {
		t.Fatalf("reset contents = %d/%q", it.Key(), it.Value())
	}
	if !it.TryTake() {
		t.Fatal("TryTake on reset item failed")
	}
	if v := it.Version(); v != 3 {
		t.Fatalf("version after second take = %d, want 3", v)
	}
}

func TestResetPanicsOnLiveItem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset of a live item did not panic")
		}
	}()
	New[int](1, 1).Reset(2, 2)
}

func TestPoolPutPanicsOnLiveItem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a live item did not panic")
		}
	}()
	NewPool[int]().Put(New[int](1, 1))
}

// TestTryTakeReuseExactlyOnce is the ABA scenario §4.4 guards against: many
// goroutines race TryTake on the same items while the owner recycles each
// item as soon as it is taken. Every incarnation must be taken exactly once,
// which the final version count proves: one flag increment per take and one
// per revival means the version equals takes + resets.
func TestTryTakeReuseExactlyOnce(t *testing.T) {
	const (
		goroutines   = 4
		incarnations = 200
		items        = 8
	)
	its := make([]*Item[int], items)
	for i := range its {
		its[i] = New(uint64(i), i)
	}
	var wins atomic.Int64
	var wg sync.WaitGroup
	var stop atomic.Bool
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, it := range its {
					if it.TryTake() {
						wins.Add(1)
					}
				}
				runtime.Gosched()
			}
		}()
	}
	// The "owner": revive taken items until every item lived through
	// `incarnations` revivals.
	revived := make([]int, items)
	for {
		done := true
		for i, it := range its {
			if revived[i] < incarnations {
				done = false
				if it.Taken() {
					it.Reset(uint64(i), i)
					revived[i]++
				}
			}
		}
		if done {
			break
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	// Versions prove exactly-once: takes = wins, resets = incarnations per
	// item, and every take/reset bumped the flag exactly once.
	var versions, resets uint64
	for i, it := range its {
		versions += it.Version()
		resets += uint64(revived[i])
	}
	if got := uint64(wins.Load()) + resets; versions != got {
		t.Fatalf("version sum %d != takes %d + resets %d (double-take or lost take)",
			versions, wins.Load(), resets)
	}
}

func TestPoolRecyclesAndSlabs(t *testing.T) {
	p := NewPool[int]()
	first := p.Get(1, 10)
	if first.Key() != 1 || first.Value() != 10 || first.Taken() {
		t.Fatal("bad pooled item")
	}
	if !first.TryTake() {
		t.Fatal("take failed")
	}
	p.Put(first)
	second := p.Get(2, 20)
	if second != first {
		t.Fatal("pool did not recycle the retired item")
	}
	if second.Key() != 2 || second.Value() != 20 || second.Taken() {
		t.Fatal("recycled item not reset")
	}
	// Slab carving: consecutive Gets without Puts must not allocate per item.
	allocs := testing.AllocsPerRun(100, func() {
		it := p.Get(3, 30)
		it.TryTake() // keep the pool contract honest even though we drop it
	})
	if allocs > 0.05 {
		t.Fatalf("slab Get allocates %.2f per op, want ~1/%d", allocs, slabSize)
	}
	slabAllocs, reuses := p.Stats()
	if slabAllocs == 0 || reuses != 1 {
		t.Fatalf("stats = %d slabs, %d reuses", slabAllocs, reuses)
	}
}

func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool[int]
	it := p.Get(7, 70)
	if it == nil || it.Key() != 7 {
		t.Fatal("nil pool Get failed")
	}
	it.TryTake()
	p.Put(it) // must not panic
	if a, r := p.Stats(); a != 0 || r != 0 {
		t.Fatal("nil pool stats non-zero")
	}
}
