package item

import "testing"

func TestRefUnrefCounts(t *testing.T) {
	it := New(7, "x")
	if it.Refs() != 0 {
		t.Fatalf("fresh item has %d refs", it.Refs())
	}
	it.Ref()
	it.Ref()
	if it.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", it.Refs())
	}
	if it.Unref() {
		t.Fatal("first Unref of two reported zero")
	}
	if !it.Unref() {
		t.Fatal("final Unref did not report zero")
	}
}

func TestUnrefUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unref below zero did not panic")
		}
	}()
	New(1, 0).Unref()
}

func TestRefsSurviveTakeAndReset(t *testing.T) {
	// The refcount is orthogonal to the versioned flag: takes and resets
	// must not disturb it.
	it := New(3, 9)
	it.Ref()
	if !it.TryTake() {
		t.Fatal("take failed")
	}
	if it.Refs() != 1 {
		t.Fatalf("refs = %d after take", it.Refs())
	}
	if !it.Unref() {
		t.Fatal("unref did not hit zero")
	}
	it.Reset(4, 10)
	if it.Refs() != 0 {
		t.Fatalf("refs = %d after reset, want 0", it.Refs())
	}
}

func TestTrimFreeDropsToGC(t *testing.T) {
	p := NewPool[int]()
	items := make([]*Item[int], 8)
	for i := range items {
		items[i] = p.Get(uint64(i), i)
	}
	for _, it := range items {
		it.TryTake()
		p.Put(it)
	}
	p.TrimFree(3)
	if p.FreeLen() != 3 {
		t.Fatalf("free = %d after trim, want 3", p.FreeLen())
	}
	if p.Puts() != 8 {
		t.Fatalf("trim disturbed the Puts ledger: %d", p.Puts())
	}
	p.TrimFree(0)
	if p.FreeLen() != 0 {
		t.Fatalf("free = %d after trim to 0", p.FreeLen())
	}
	var np *Pool[int]
	np.TrimFree(0) // nil-safe
}

func TestPoolPutsCounter(t *testing.T) {
	p := NewPool[int]()
	it := p.Get(5, 50)
	it.TryTake()
	p.Put(it)
	if p.Puts() != 1 || p.FreeLen() != 1 {
		t.Fatalf("puts=%d freeLen=%d, want 1/1", p.Puts(), p.FreeLen())
	}
	// A nil pool stays a no-op.
	var np *Pool[int]
	if np.Puts() != 0 || np.FreeLen() != 0 {
		t.Fatal("nil pool reports nonzero counters")
	}
}
