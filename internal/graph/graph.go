// Package graph provides the input substrate for the paper's SSSP benchmark
// (§6): Erdős–Rényi random graphs in compressed-sparse-row form, plus a
// sequential Dijkstra oracle for correctness checks and for the
// "additional iterations vs. sequential execution" metric of Figure 4.
//
// The paper's configuration is n = 10000 nodes, edge probability 50%, and
// integer weights uniform in [1, 10^8]; tests and CI use smaller graphs and
// the experiment binaries expose flags for paper scale.
package graph

import (
	"fmt"
	"math"

	"klsm/internal/binheap"
	"klsm/internal/xrand"
)

// Unreached marks nodes with no path from the source.
const Unreached = ^uint64(0)

// CSR is a directed graph in compressed-sparse-row representation.
type CSR struct {
	N       int
	RowPtr  []int64  // len N+1; edges of u are Targets[RowPtr[u]:RowPtr[u+1]]
	Targets []uint32 //
	Weights []uint32 // parallel to Targets; weights are >= 1
}

// Edges returns the number of directed edges.
func (g *CSR) Edges() int { return len(g.Targets) }

// Neighbors returns the target and weight slices of node u.
func (g *CSR) Neighbors(u uint32) ([]uint32, []uint32) {
	lo, hi := g.RowPtr[u], g.RowPtr[u+1]
	return g.Targets[lo:hi], g.Weights[lo:hi]
}

// Validate checks structural integrity (for tests and after generation).
func (g *CSR) Validate() error {
	if len(g.RowPtr) != g.N+1 {
		return fmt.Errorf("RowPtr length %d, want %d", len(g.RowPtr), g.N+1)
	}
	if g.RowPtr[0] != 0 || g.RowPtr[g.N] != int64(len(g.Targets)) {
		return fmt.Errorf("RowPtr endpoints inconsistent")
	}
	if len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("Weights length mismatch")
	}
	for u := 0; u < g.N; u++ {
		if g.RowPtr[u] > g.RowPtr[u+1] {
			return fmt.Errorf("RowPtr not monotone at %d", u)
		}
	}
	for i, v := range g.Targets {
		if int(v) >= g.N {
			return fmt.Errorf("edge %d targets out-of-range node %d", i, v)
		}
		if g.Weights[i] == 0 {
			return fmt.Errorf("edge %d has zero weight", i)
		}
	}
	return nil
}

// ErdosRenyi generates a directed G(n, p) graph with weights uniform in
// [1, maxWeight], deterministically from seed. Each ordered pair (u,v),
// u != v, is an edge with probability p; the paper's "edge probability 50%"
// graphs arise from p = 0.5. Self-loops are excluded.
//
// Generation uses geometric skip sampling, so the cost is proportional to
// the number of edges rather than n².
func ErdosRenyi(n int, p float64, maxWeight uint32, seed uint64) *CSR {
	if n <= 0 {
		panic("graph: n must be positive")
	}
	if p < 0 || p > 1 {
		panic("graph: p out of [0,1]")
	}
	if maxWeight == 0 {
		panic("graph: maxWeight must be >= 1")
	}
	src := xrand.NewSeeded(seed)
	g := &CSR{N: n, RowPtr: make([]int64, n+1)}
	if p == 0 {
		return g
	}
	est := int(float64(n) * float64(n) * p)
	g.Targets = make([]uint32, 0, est)
	g.Weights = make([]uint32, 0, est)

	for u := 0; u < n; u++ {
		g.RowPtr[u] = int64(len(g.Targets))
		// Walk candidate targets 0..n-1 with geometric skips.
		v := skip(src, p)
		for v < n {
			if v != u {
				g.Targets = append(g.Targets, uint32(v))
				g.Weights = append(g.Weights, 1+uint32(src.Uint64n(uint64(maxWeight))))
			}
			v += 1 + skip(src, p)
		}
	}
	g.RowPtr[n] = int64(len(g.Targets))
	return g
}

// skip draws from the geometric distribution of gaps between successes of a
// Bernoulli(p) process (0 means the next candidate is an edge).
func skip(src *xrand.Source, p float64) int {
	if p >= 1 {
		return 0
	}
	// Inverse transform: floor(log(U)/log(1-p)). Float64 returns values in
	// [0,1); 0 maps to gap 0.
	u := src.Float64()
	if u <= 0 {
		return 0
	}
	g := int(math.Log(u) / math.Log(1-p))
	if g < 0 {
		return 0
	}
	return g
}

// Dijkstra computes exact single-source shortest paths sequentially using a
// binary heap with lazy deletion (re-insertion instead of decrease-key —
// the same scheme the parallel benchmark uses). It returns the distance
// array and the number of heap pops, which the Figure 4 harness uses as the
// sequential-iterations baseline.
func Dijkstra(g *CSR, src uint32) ([]uint64, int64) {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	h := binheap.New(2)
	shift := nodeShift(g.N)
	h.Push(0<<shift | uint64(src))
	var pops int64
	for {
		key, ok := h.Pop()
		if !ok {
			break
		}
		pops++
		d := key >> shift
		u := uint32(key & (1<<shift - 1))
		if d > dist[u] {
			continue // stale entry (lazy deletion)
		}
		targets, weights := g.Neighbors(u)
		for i, v := range targets {
			nd := d + uint64(weights[i])
			if nd < dist[v] {
				dist[v] = nd
				h.Push(nd<<shift | uint64(v))
			}
		}
	}
	return dist, pops
}

// nodeShift returns the number of low bits needed to store node IDs of a
// graph with n nodes when packing (dist, node) pairs into one uint64 key.
func nodeShift(n int) uint {
	s := uint(1)
	for 1<<s < n {
		s++
	}
	return s
}

// NodeShift is the exported packing helper shared with the parallel SSSP.
func NodeShift(n int) uint { return nodeShift(n) }
