package graph

import (
	"math"
	"testing"
)

func TestErdosRenyiStructure(t *testing.T) {
	g := ErdosRenyi(100, 0.3, 1000, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 100 {
		t.Fatalf("N = %d", g.N)
	}
	// Expected edges: n*(n-1)*p = 100*99*0.3 = 2970; allow ±15%.
	want := 2970.0
	if e := float64(g.Edges()); math.Abs(e-want) > 0.15*want {
		t.Fatalf("edges = %v, expected around %v", e, want)
	}
	// No self loops.
	for u := 0; u < g.N; u++ {
		targets, _ := g.Neighbors(uint32(u))
		for _, v := range targets {
			if int(v) == u {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 0.5, 100, 7)
	b := ErdosRenyi(50, 0.5, 100, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := ErdosRenyi(50, 0.5, 100, 8)
	if c.Edges() == a.Edges() {
		same := true
		for i := range a.Targets {
			if a.Targets[i] != c.Targets[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	empty := ErdosRenyi(10, 0, 100, 1)
	if empty.Edges() != 0 {
		t.Fatalf("p=0 graph has %d edges", empty.Edges())
	}
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	full := ErdosRenyi(20, 1, 100, 1)
	if full.Edges() != 20*19 {
		t.Fatalf("p=1 graph has %d edges, want %d", full.Edges(), 20*19)
	}
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsInRange(t *testing.T) {
	g := ErdosRenyi(50, 0.5, 10, 3)
	for _, w := range g.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight %d out of [1,10]", w)
		}
	}
}

func TestDijkstraLine(t *testing.T) {
	// Path graph 0 -> 1 -> 2 -> 3 with unit weights, hand-built.
	g := &CSR{
		N:       4,
		RowPtr:  []int64{0, 1, 2, 3, 3},
		Targets: []uint32{1, 2, 3},
		Weights: []uint32{1, 1, 1},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	dist, pops := Dijkstra(g, 0)
	for i, want := range []uint64{0, 1, 2, 3} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if pops < 4 {
		t.Fatalf("pops = %d", pops)
	}
	// Node 3 has no outgoing edges; 0 unreachable from 3.
	dist3, _ := Dijkstra(g, 3)
	if dist3[0] != Unreached || dist3[3] != 0 {
		t.Fatalf("dist from 3: %v", dist3)
	}
}

func TestDijkstraTriangleShortcut(t *testing.T) {
	// 0->2 direct weight 10; 0->1->2 total 3: Dijkstra must prefer 3.
	g := &CSR{
		N:       3,
		RowPtr:  []int64{0, 2, 3, 3},
		Targets: []uint32{2, 1, 2},
		Weights: []uint32{10, 1, 2},
	}
	dist, _ := Dijkstra(g, 0)
	if dist[2] != 3 {
		t.Fatalf("dist[2] = %d, want 3", dist[2])
	}
}

// TestDijkstraMatchesBellmanFord cross-validates against an independent
// O(VE) implementation on random graphs.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := ErdosRenyi(60, 0.1, 1000, seed)
		want := bellmanFord(g, 0)
		got, _ := Dijkstra(g, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dist[%d] = %d, Bellman-Ford %d", seed, i, got[i], want[i])
			}
		}
	}
}

func bellmanFord(g *CSR, src uint32) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for u := 0; u < g.N; u++ {
			if dist[u] == Unreached {
				continue
			}
			targets, weights := g.Neighbors(uint32(u))
			for i, v := range targets {
				if nd := dist[u] + uint64(weights[i]); nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestNodeShift(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}, {10000, 14},
	}
	for _, c := range cases {
		if got := NodeShift(c.n); got != c.want {
			t.Errorf("NodeShift(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := ErdosRenyi(10, 0.5, 10, 1)
	g.Targets[0] = 100 // out of range
	if g.Validate() == nil {
		t.Fatal("Validate missed out-of-range target")
	}
}

func BenchmarkErdosRenyi1K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ErdosRenyi(1000, 0.1, 1<<20, uint64(i))
	}
}

func BenchmarkDijkstra1K(b *testing.B) {
	g := ErdosRenyi(1000, 0.1, 1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, 0)
	}
}
