package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/walfault"
)

// ErrClosed is returned by operations on a closed (or abandoned) log.
var ErrClosed = errors.New("wal: closed")

// Options tunes the group-commit policy. The zero value syncs only on
// explicit Sync and Close — callers almost always want at least one of
// SyncEvery or SyncInterval.
type Options struct {
	// SyncEvery fsyncs after this many appended records (0 = no
	// count-based syncing). 1 syncs every write batch — still group
	// commit, since one batch carries every record appended while the
	// previous batch was on disk.
	SyncEvery int
	// SyncInterval fsyncs at most this long after an unsynced append
	// (0 = no timer-based syncing). This is the knob that bounds the
	// acknowledgement latency of group commit.
	SyncInterval time.Duration
	// BufferCap is the pending-byte high-water mark: Append blocks (in
	// memory, waiting for the writer goroutine — never on disk) once this
	// many bytes are buffered. 0 means the default 4 MiB.
	BufferCap int
	// WriteCoalesceBytes is the writer's batch growth target: after
	// swapping out the pending buffer, the writer keeps folding in bytes
	// that mutators appended meanwhile until the batch reaches this size
	// or the pending buffer runs dry, then issues one write() for the
	// whole run. Coalescing never waits — it only gathers work that
	// already exists — so it trades no latency for fewer syscalls.
	// 0 means the default 256 KiB; negative disables (one write per swap).
	WriteCoalesceBytes int
}

// Stats counts the log's I/O activity; all fields are cumulative.
type Stats struct {
	// Appends is the number of records appended.
	Appends int64
	// Bytes is the number of framed bytes written to the file.
	Bytes int64
	// Writes is the number of write() calls issued. Coalescing makes this
	// smaller than the number of pending-buffer swaps under load.
	Writes int64
	// Fsyncs is the number of Sync calls issued to the file.
	Fsyncs int64
	// SyncWaits is the number of explicit Sync calls that had to wait for
	// the writer (a measure of how often callers outrun group commit).
	SyncWaits int64
	// TimerFires counts SyncInterval timers that fired and actually woke
	// the writer for an fsync. A timer whose records an explicit Sync (or
	// SyncEvery) already made durable is canceled — or, losing that race,
	// detects staleness and does nothing — so it never shows up here.
	TimerFires int64
	// Rotations counts completed Rotate calls.
	Rotations int64
}

// Log is an append-only record log with group commit. The append fast path
// encodes the record — length-prefixed but with both CRC fields still zero —
// into an in-memory buffer under a short mutex and returns; a single
// background goroutine seals the CRCs in one pass per batch, drains the
// buffer to the file in coalesced write() calls, and decides when to fsync
// per Options. Appends therefore never block on disk (only, briefly, on the
// buffer mutex, or on BufferCap backpressure), pay no checksum on the
// mutator's critical path, and one fsync acknowledges every record buffered
// since the previous one — the group-commit batching that keeps WAL overhead
// sublinear in the sync policy.
type Log struct {
	fs   walfault.FS
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	name    string
	f       walfault.File // owned by the writer goroutine after Open
	pending []byte        // unsealed frames not yet handed to the writer
	spare   []byte        // recycled batch buffer
	pendRec int           // records in pending
	// appended is the LSN (1-based count) of the last record accepted by
	// Append; synced is the highest LSN known durable. Guarded by mu;
	// synced additionally readable via the atomic for stats.
	appended uint64
	syncReq  bool
	closed   bool
	abandon  bool
	err      error // sticky: first write/sync failure; the log is dead after
	done     chan struct{}

	// Interval-timer state: at most one timer is armed; timerTarget is the
	// highest LSN the armed timer must cover. An fsync that reaches the
	// target cancels the timer; a callback that loses the cancel race
	// observes synced >= timerTarget and stands down.
	timer       *time.Timer
	timerOn     bool
	timerTarget uint64

	// Rotation state: rotateTo/rotateName carry the successor file to the
	// writer; rotateGen increments when a rotation completes (or fails).
	rotateTo   walfault.File
	rotateName string
	rotateGen  uint64

	synced     atomic.Uint64
	appends    atomic.Int64
	bytes      atomic.Int64
	fileBytes  atomic.Int64
	writes     atomic.Int64
	fsyncs     atomic.Int64
	waits      atomic.Int64
	timerFires atomic.Int64
	rotations  atomic.Int64
}

// Open opens (creating or appending to) the named log file on fs and starts
// the writer goroutine. The caller must have already truncated any torn
// tail (see Scan) — Open itself does not read the file.
func Open(fs walfault.FS, name string, opts Options) (*Log, error) {
	f, err := fs.Append(name)
	if err != nil {
		return nil, err
	}
	if opts.BufferCap <= 0 {
		opts.BufferCap = 4 << 20
	}
	if opts.WriteCoalesceBytes == 0 {
		opts.WriteCoalesceBytes = 256 << 10
	}
	l := &Log{fs: fs, name: name, f: f, opts: opts, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.writer()
	return l, nil
}

// Append encodes op into the pending buffer and returns its LSN (the
// 1-based position in the record stream). The record is durable once
// Synced() reaches the returned LSN; Sync() blocks until everything
// appended so far is. Append never touches the file and never checksums:
// it blocks only on the buffer mutex and, above Options.BufferCap, on
// writer backpressure; the CRC32C work happens on the writer goroutine.
func (l *Log) Append(op Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) >= l.opts.BufferCap && l.err == nil && !l.closed {
		l.cond.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	l.pending = appendUnsealed(l.pending, op)
	l.pendRec++
	l.appended++
	l.appends.Add(1)
	if l.pendRec == 1 {
		// Empty→non-empty transition: the writer may be parked on the
		// cond. While pending stays non-empty the writer is provably awake
		// (it re-checks under this mutex before waiting), so steady-state
		// appends skip the wakeup syscall entirely.
		l.cond.Broadcast()
	}
	return l.appended, nil
}

// Sync blocks until every record appended before the call is durable (or
// the log has failed, returning the sticky error). Concurrent Sync callers
// share fsyncs: the writer issues one fsync for all of them.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	if l.synced.Load() >= target {
		return l.err
	}
	l.waits.Add(1)
	l.syncReq = true
	l.cond.Broadcast()
	for l.synced.Load() < target && l.err == nil && !(l.closed && l.abandon) {
		l.cond.Wait()
	}
	return l.err
}

// Rotate redirects the log to the named successor file, which must already
// exist (created and fsynced by the caller): the writer drains every record
// appended before the cut — written or still pending — to the current file,
// fsyncs it, closes it, and appends everything later to the successor.
// Record order is
// preserved across the cut, and the old file is fully durable before the
// new file receives its first byte, so the cross-file replay invariant — a
// durable record implies every earlier record is durable — holds exactly as
// within one file. LSNs and counters continue across the rotation.
//
// Rotate blocks until the switch is complete and must not run concurrently
// with itself or Close (the caller serializes — in klsm, under ckptMu). On
// a failed or closed log it returns the sticky error without switching.
func (l *Log) Rotate(name string) error {
	f, err := l.fs.Append(name)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil || l.closed {
		err := l.err
		f.Close()
		if err != nil {
			return err
		}
		return ErrClosed
	}
	gen := l.rotateGen
	l.rotateTo = f
	l.rotateName = name
	l.cond.Broadcast()
	for l.rotateGen == gen && l.err == nil && !(l.closed && l.abandon) {
		l.cond.Wait()
	}
	if l.rotateGen == gen {
		// The writer never took the handle (the log died first): reclaim it.
		if l.rotateTo == f {
			l.rotateTo = nil
			l.rotateName = ""
			f.Close()
		}
		if l.err != nil {
			return l.err
		}
		return ErrClosed
	}
	return l.err
}

// Synced returns the highest durable LSN.
func (l *Log) Synced() uint64 { return l.synced.Load() }

// Appended returns the LSN of the most recently appended record.
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Err returns the sticky error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// FileBytes returns the framed bytes written to the current file since Open
// or the last Rotate — the live file's growth, which auto-checkpoint
// policies use as their size trigger.
func (l *Log) FileBytes() int64 { return l.fileBytes.Load() }

// Stats returns the cumulative I/O counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:    l.appends.Load(),
		Bytes:      l.bytes.Load(),
		Writes:     l.writes.Load(),
		Fsyncs:     l.fsyncs.Load(),
		SyncWaits:  l.waits.Load(),
		TimerFires: l.timerFires.Load(),
		Rotations:  l.rotations.Load(),
	}
}

// Close flushes and fsyncs everything pending, stops the writer, and closes
// the file. Further Appends fail with ErrClosed. Close is idempotent; it
// returns the sticky error if the log failed earlier.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		<-l.done
		return err
	}
	l.closed = true
	l.syncReq = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	err := l.err
	f := l.f
	l.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon stops the writer goroutine without flushing or touching the file,
// simulating the process dying mid-run: buffered records are dropped
// exactly as a kill would drop them. Used by the crash-injection tests;
// production shutdown is Close.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.abandon = true
	if l.err == nil {
		// Anyone mid-Sync must not report durability that never happened:
		// the simulated crash kills their "process", so they observe an
		// error exactly as a real fsync caller would observe a torn-down
		// file descriptor.
		l.err = ErrClosed
	}
	l.pending = nil
	l.pendRec = 0
	l.syncReq = false
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	f := l.f
	l.mu.Unlock()
	f.Close()
}

// writer is the single background goroutine: it seals and drains pending
// batches to the file, performs rotations, and issues the group-commit
// fsyncs.
func (l *Log) writer() {
	defer close(l.done)
	var unsynced int  // records written to the file but not fsynced
	var wrote uint64  // LSN covered by the file writes so far
	var lastErr error // local view of the sticky error
	fail := func(err error) {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		lastErr = l.err
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.syncReq && l.rotateTo == nil && !l.closed {
			l.cond.Wait()
		}
		if l.abandon || (l.closed && len(l.pending) == 0 && !l.syncReq &&
			l.rotateTo == nil && unsynced == 0) {
			l.mu.Unlock()
			return
		}
		// Rotation cut: everything appended up to this observation of
		// rotateTo — written or still pending — is drained to, fsynced to,
		// and sealed in the old file; only later appends go to the
		// successor. Draining the pending tail here is what lets a
		// checkpoint rotate immediately after a burst and still freeze the
		// burst; order is preserved because the cut is a single point in
		// the pending stream.
		if rot := l.rotateTo; rot != nil {
			l.rotateTo = nil
			name := l.rotateName
			l.rotateName = ""
			old := l.f
			batch := l.pending
			recs := l.pendRec
			l.pending = l.spare[:0]
			l.spare = nil
			l.pendRec = 0
			lsn := l.appended
			l.syncReq = false
			l.mu.Unlock()
			var err error
			if lastErr == nil && len(batch) > 0 {
				sealFrames(batch)
				if _, werr := old.Write(batch); werr != nil {
					err = werr
				} else {
					l.bytes.Add(int64(len(batch)))
					l.fileBytes.Add(int64(len(batch)))
					l.writes.Add(1)
					unsynced += recs
					wrote = lsn
				}
			}
			if lastErr == nil && err == nil && unsynced > 0 {
				if err = old.Sync(); err == nil {
					l.fsyncs.Add(1)
					unsynced = 0
					l.synced.Store(wrote)
				}
			}
			if lastErr == nil && err == nil {
				err = old.Close()
			}
			l.mu.Lock()
			if l.spare == nil && cap(batch) <= 8<<20 {
				l.spare = batch[:0]
			}
			if l.timerOn && l.synced.Load() >= l.timerTarget && l.timer.Stop() {
				l.timerOn = false
			}
			if lastErr == nil && err == nil {
				l.f = rot
				l.name = name
				l.fileBytes.Store(0)
				l.rotations.Add(1)
			} else {
				rot.Close()
				if l.err == nil && err != nil {
					l.err = err
				}
				lastErr = l.err
			}
			l.rotateGen++
			l.cond.Broadcast()
			l.mu.Unlock()
			continue
		}
		batch := l.pending
		recs := l.pendRec
		l.pending = l.spare[:0]
		l.spare = nil
		l.pendRec = 0
		lsn := l.appended
		doSync := l.syncReq
		l.syncReq = false
		closing := l.closed
		f := l.f
		l.mu.Unlock()

		if lastErr == nil && len(batch) > 0 {
			// Coalesce: while the batch is below the growth target and
			// mutators have queued more frames meanwhile, fold them in and
			// write once. This only gathers work that already exists — the
			// writer never waits for a fuller batch — so it converts bursts
			// of small swaps into one write() without adding latency.
			for len(batch) < l.opts.WriteCoalesceBytes {
				l.mu.Lock()
				if len(l.pending) == 0 || l.rotateTo != nil {
					l.mu.Unlock()
					break
				}
				batch = append(batch, l.pending...)
				recs += l.pendRec
				l.pending = l.pending[:0]
				l.pendRec = 0
				lsn = l.appended
				doSync = doSync || l.syncReq
				l.syncReq = false
				l.cond.Broadcast() // release BufferCap backpressure
				l.mu.Unlock()
			}
			sealFrames(batch)
			if _, err := f.Write(batch); err != nil {
				fail(err)
			} else {
				l.bytes.Add(int64(len(batch)))
				l.fileBytes.Add(int64(len(batch)))
				l.writes.Add(1)
				unsynced += recs
				wrote = lsn
			}
		}
		// Return the drained buffer for reuse and release backpressure.
		l.mu.Lock()
		if l.spare == nil && cap(batch) <= 8<<20 {
			l.spare = batch[:0]
		}
		l.cond.Broadcast()
		l.mu.Unlock()

		if lastErr == nil && unsynced > 0 &&
			(doSync || closing || (l.opts.SyncEvery > 0 && unsynced >= l.opts.SyncEvery)) {
			if err := f.Sync(); err != nil {
				fail(err)
			} else {
				l.fsyncs.Add(1)
				unsynced = 0
				l.synced.Store(wrote)
				l.mu.Lock()
				// An armed interval timer whose records this fsync just
				// covered is stale: cancel it so it cannot fire a spurious
				// wakeup. Losing the Stop race is fine — the callback
				// re-checks the target and stands down.
				if l.timerOn && l.synced.Load() >= l.timerTarget && l.timer.Stop() {
					l.timerOn = false
				}
				l.cond.Broadcast()
				l.mu.Unlock()
			}
		} else if lastErr == nil && unsynced > 0 && l.opts.SyncInterval > 0 {
			l.armTimer(wrote)
		}
		if lastErr != nil {
			// Dead log: drain state so Close can finish, then park until
			// closed. Waiters were woken with the sticky error.
			l.mu.Lock()
			for !l.closed {
				l.cond.Wait()
			}
			l.mu.Unlock()
			return
		}
		if closing && unsynced == 0 {
			l.mu.Lock()
			empty := len(l.pending) == 0
			l.mu.Unlock()
			if empty {
				return
			}
		}
	}
}

// armTimer schedules a deferred group-commit fsync SyncInterval from now
// covering at least the given LSN, unless one is already armed (whose
// earlier deadline then covers the new records too) or the target is
// already durable.
func (l *Log) armTimer(target uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || target <= l.synced.Load() {
		return
	}
	if target > l.timerTarget {
		l.timerTarget = target
	}
	if l.timerOn {
		return
	}
	l.timerOn = true
	if l.timer == nil {
		l.timer = time.AfterFunc(l.opts.SyncInterval, l.timerFire)
	} else {
		l.timer.Reset(l.opts.SyncInterval)
	}
}

// timerFire is the interval timer's callback: it wakes the writer for a
// group-commit fsync — unless an explicit Sync (or SyncEvery) made the
// covered records durable first, in which case the fire is stale and does
// nothing (and is not counted).
func (l *Log) timerFire() {
	l.mu.Lock()
	if !l.timerOn {
		// Lost a cancel race that Stop won after this callback was already
		// scheduled: the fsync that canceled covered everything we would.
		l.mu.Unlock()
		return
	}
	l.timerOn = false
	if !l.closed && l.synced.Load() < l.timerTarget {
		l.syncReq = true
		l.timerFires.Add(1)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}
