package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/walfault"
)

// ErrClosed is returned by operations on a closed (or abandoned) log.
var ErrClosed = errors.New("wal: closed")

// Options tunes the group-commit policy. The zero value syncs only on
// explicit Sync and Close — callers almost always want at least one of
// SyncEvery or SyncInterval.
type Options struct {
	// SyncEvery fsyncs after this many appended records (0 = no
	// count-based syncing). 1 syncs every write batch — still group
	// commit, since one batch carries every record appended while the
	// previous batch was on disk.
	SyncEvery int
	// SyncInterval fsyncs at most this long after an unsynced append
	// (0 = no timer-based syncing). This is the knob that bounds the
	// acknowledgement latency of group commit.
	SyncInterval time.Duration
	// BufferCap is the pending-byte high-water mark: Append blocks (in
	// memory, waiting for the writer goroutine — never on disk) once this
	// many bytes are buffered. 0 means the default 4 MiB.
	BufferCap int
}

// Stats counts the log's I/O activity; all fields are cumulative.
type Stats struct {
	// Appends is the number of records appended.
	Appends int64
	// Bytes is the number of framed bytes written to the file.
	Bytes int64
	// Fsyncs is the number of Sync calls issued to the file.
	Fsyncs int64
	// SyncWaits is the number of explicit Sync calls that had to wait for
	// the writer (a measure of how often callers outrun group commit).
	SyncWaits int64
}

// Log is an append-only record log with group commit. The append fast path
// encodes the record into an in-memory buffer under a short mutex and
// returns; a single background goroutine drains the buffer to the file and
// decides when to fsync per Options. Appends therefore never block on disk
// (only, briefly, on the buffer mutex, or on BufferCap backpressure), and
// one fsync acknowledges every record buffered since the previous one —
// the group-commit batching that keeps WAL overhead sublinear in the
// sync policy.
type Log struct {
	fs   walfault.FS
	name string
	f    walfault.File
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte // encoded frames not yet handed to the writer
	spare   []byte // recycled batch buffer
	pendRec int    // records in pending
	// appended is the LSN (1-based count) of the last record accepted by
	// Append; synced is the highest LSN known durable. Guarded by mu;
	// synced additionally readable via the atomic for stats.
	appended uint64
	syncReq  bool
	timerOn  bool
	closed   bool
	abandon  bool
	err      error // sticky: first write/sync failure; the log is dead after
	done     chan struct{}

	synced  atomic.Uint64
	appends atomic.Int64
	bytes   atomic.Int64
	fsyncs  atomic.Int64
	waits   atomic.Int64
}

// Open opens (creating or appending to) the named log file on fs and starts
// the writer goroutine. The caller must have already truncated any torn
// tail (see Scan) — Open itself does not read the file.
func Open(fs walfault.FS, name string, opts Options) (*Log, error) {
	f, err := fs.Append(name)
	if err != nil {
		return nil, err
	}
	if opts.BufferCap <= 0 {
		opts.BufferCap = 4 << 20
	}
	l := &Log{fs: fs, name: name, f: f, opts: opts, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.writer()
	return l, nil
}

// Append encodes op into the pending buffer and returns its LSN (the
// 1-based position in the record stream). The record is durable once
// Synced() reaches the returned LSN; Sync() blocks until everything
// appended so far is. Append never touches the file: it blocks only on the
// buffer mutex and, above Options.BufferCap, on writer backpressure.
func (l *Log) Append(op Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) >= l.opts.BufferCap && l.err == nil && !l.closed {
		l.cond.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	l.pending = AppendRecord(l.pending, op)
	l.pendRec++
	l.appended++
	l.appends.Add(1)
	if l.pendRec == 1 {
		// Empty→non-empty transition: the writer may be parked on the
		// cond. While pending stays non-empty the writer is provably awake
		// (it re-checks under this mutex before waiting), so steady-state
		// appends skip the wakeup syscall entirely.
		l.cond.Broadcast()
	}
	return l.appended, nil
}

// Sync blocks until every record appended before the call is durable (or
// the log has failed, returning the sticky error). Concurrent Sync callers
// share fsyncs: the writer issues one fsync for all of them.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	if l.synced.Load() >= target {
		return l.err
	}
	l.waits.Add(1)
	l.syncReq = true
	l.cond.Broadcast()
	for l.synced.Load() < target && l.err == nil && !(l.closed && l.abandon) {
		l.cond.Wait()
	}
	return l.err
}

// Synced returns the highest durable LSN.
func (l *Log) Synced() uint64 { return l.synced.Load() }

// Appended returns the LSN of the most recently appended record.
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Err returns the sticky error, if the log has failed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns the cumulative I/O counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Bytes:     l.bytes.Load(),
		Fsyncs:    l.fsyncs.Load(),
		SyncWaits: l.waits.Load(),
	}
}

// Close flushes and fsyncs everything pending, stops the writer, and closes
// the file. Further Appends fail with ErrClosed. Close is idempotent; it
// returns the sticky error if the log failed earlier.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		<-l.done
		return err
	}
	l.closed = true
	l.syncReq = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon stops the writer goroutine without flushing or touching the file,
// simulating the process dying mid-run: buffered records are dropped
// exactly as a kill would drop them. Used by the crash-injection tests;
// production shutdown is Close.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.abandon = true
	if l.err == nil {
		// Anyone mid-Sync must not report durability that never happened:
		// the simulated crash kills their "process", so they observe an
		// error exactly as a real fsync caller would observe a torn-down
		// file descriptor.
		l.err = ErrClosed
	}
	l.pending = nil
	l.pendRec = 0
	l.syncReq = false
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.f.Close()
}

// writer is the single background goroutine: it drains pending batches to
// the file and issues the group-commit fsyncs.
func (l *Log) writer() {
	defer close(l.done)
	var unsynced int  // records written to the file but not fsynced
	var wrote uint64  // LSN covered by the file writes so far
	var lastErr error // local view of the sticky error
	fail := func(err error) {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		lastErr = l.err
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.syncReq && !l.closed {
			l.cond.Wait()
		}
		if l.abandon || (l.closed && len(l.pending) == 0 && !l.syncReq && unsynced == 0) {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		recs := l.pendRec
		l.pending = l.spare[:0]
		l.spare = nil
		l.pendRec = 0
		lsn := l.appended
		doSync := l.syncReq
		l.syncReq = false
		closing := l.closed
		l.mu.Unlock()

		if lastErr == nil && len(batch) > 0 {
			if _, err := l.f.Write(batch); err != nil {
				fail(err)
			} else {
				l.bytes.Add(int64(len(batch)))
				unsynced += recs
				wrote = lsn
			}
		}
		// Return the drained buffer for reuse and release backpressure.
		l.mu.Lock()
		if l.spare == nil && cap(batch) <= 8<<20 {
			l.spare = batch[:0]
		}
		l.cond.Broadcast()
		l.mu.Unlock()

		if lastErr == nil && unsynced > 0 &&
			(doSync || closing || (l.opts.SyncEvery > 0 && unsynced >= l.opts.SyncEvery)) {
			if err := l.f.Sync(); err != nil {
				fail(err)
			} else {
				l.fsyncs.Add(1)
				unsynced = 0
				l.synced.Store(wrote)
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			}
		} else if lastErr == nil && unsynced > 0 && l.opts.SyncInterval > 0 {
			l.armTimer()
		}
		if lastErr != nil {
			// Dead log: drain state so Close can finish, then park until
			// closed. Waiters were woken with the sticky error.
			l.mu.Lock()
			for !l.closed {
				l.cond.Wait()
			}
			l.mu.Unlock()
			return
		}
		if closing && unsynced == 0 {
			l.mu.Lock()
			empty := len(l.pending) == 0
			l.mu.Unlock()
			if empty {
				return
			}
		}
	}
}

// armTimer schedules a deferred group-commit fsync SyncInterval from now,
// if one is not already scheduled.
func (l *Log) armTimer() {
	l.mu.Lock()
	if l.timerOn || l.closed {
		l.mu.Unlock()
		return
	}
	l.timerOn = true
	l.mu.Unlock()
	time.AfterFunc(l.opts.SyncInterval, func() {
		l.mu.Lock()
		l.timerOn = false
		if !l.closed {
			l.syncReq = true
			l.cond.Broadcast()
		}
		l.mu.Unlock()
	})
}
