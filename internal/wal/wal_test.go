package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"klsm/internal/walfault"
)

// roundTrip encodes ops, scans them back, and compares.
func TestRecordRoundTrip(t *testing.T) {
	in := []Op{
		{Seq: 1, Key: 42, Value: []byte("hello")},
		{Seq: 2, Key: 0, Value: nil},
		{Delete: true, Seq: 1, Key: 42},
		{Seq: 1<<63 + 5, Key: ^uint64(0), Value: make([]byte, 300)},
	}
	var buf []byte
	for _, op := range in {
		buf = AppendRecord(buf, op)
	}
	var out []Op
	res, err := Scan(buf, func(op Op) {
		op.Value = append([]byte(nil), op.Value...)
		out = append(out, op)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.GoodLen != int64(len(buf)) || res.Records != len(in) {
		t.Fatalf("scan result %+v, want clean %d records over %d bytes", res, len(in), len(buf))
	}
	for i := range in {
		if out[i].Delete != in[i].Delete || out[i].Seq != in[i].Seq || out[i].Key != in[i].Key ||
			string(out[i].Value) != string(in[i].Value) {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

// A truncated final record is a torn tail: dropped, not an error.
func TestScanTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	clean := int64(len(buf))
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	for cut := clean + 1; cut < int64(len(buf)); cut++ {
		n := 0
		res, err := Scan(buf[:cut], func(Op) { n++ })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.Torn || res.GoodLen != clean || n != 1 {
			t.Fatalf("cut %d: got %+v (%d records), want torn with GoodLen %d", cut, res, n, clean)
		}
	}
}

// A damaged record with intact records after it must refuse with ErrCorrupt
// — for every byte of the first record.
func TestScanMidLogCorruption(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	first := len(buf)
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	for i := 0; i < first; i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		_, err := Scan(mut, func(Op) {})
		if err == nil {
			t.Fatalf("flip at byte %d: corruption not detected", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// A flipped bit in the *final* record is indistinguishable from a torn
// write and must truncate cleanly instead of erroring.
func TestScanGarbledTailTruncates(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	clean := int64(len(buf))
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	mut := append([]byte(nil), buf...)
	mut[len(mut)-2] ^= 0x10
	n := 0
	res, err := Scan(mut, func(Op) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.GoodLen != clean || n != 1 {
		t.Fatalf("got %+v (%d records), want torn with GoodLen %d", res, n, clean)
	}
}

// Group commit: concurrent appenders + Sync callers, then replay and check
// that every synced record is present and in seq order per appender.
func TestLogGroupCommitConcurrent(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 1})
	l, err := Open(fs, "wal", Options{SyncEvery: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := uint64(w*each + i + 1)
				if _, err := l.Append(Op{Seq: seq, Key: seq, Value: []byte(fmt.Sprintf("v%d", seq))}); err != nil {
					t.Error(err)
					return
				}
				if i%100 == 99 {
					if err := l.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.Synced(), uint64(workers*each); got != want {
		t.Fatalf("synced LSN %d, want %d", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	res, err := Scan(data, func(op Op) {
		if seen[op.Seq] {
			t.Fatalf("seq %d appears twice", op.Seq)
		}
		seen[op.Seq] = true
	})
	if err != nil || res.Torn {
		t.Fatalf("scan: %v torn=%v", err, res.Torn)
	}
	if len(seen) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(seen), workers*each)
	}
	if st := l.Stats(); st.Fsyncs == 0 || st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %+v", st)
	}
}

// After a crash, everything up to the last successful Sync must replay.
func TestLogCrashKeepsSyncedPrefix(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 7})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if _, err := l.Append(Op{Seq: seq, Key: seq}); err != nil {
			t.Fatal(err)
		}
		if seq == 60 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs.Crash()
	l.Abandon()
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	max := uint64(0)
	if _, err := Scan(data, func(op Op) { max = op.Seq }); err != nil {
		t.Fatal(err)
	}
	if max < 60 {
		t.Fatalf("synced prefix lost: max replayed seq %d < 60", max)
	}
}

// Injected fsync failures surface as sticky errors on Sync and Append.
func TestLogSyncFailureSticky(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{SyncFailRate: 1, Seed: 3})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Seq: 1, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Sync error %v, want ErrSyncFault", err)
	}
	if _, err := l.Append(Op{Seq: 2, Key: 2}); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Append after failure: %v, want sticky ErrSyncFault", err)
	}
	if err := l.Close(); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Close: %v, want sticky ErrSyncFault", err)
	}
}

// Short writes surface as sticky errors too (the log never silently skips).
func TestLogShortWriteFails(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{ShortWriteRate: 1, Seed: 11})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Op{Seq: 1, Key: 1, Value: make([]byte, 64)})
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded over an injected short write")
	}
	l.Close()
}

// gateFS wraps an FS so every Write on files it opens consumes a token,
// letting a test hold the writer goroutine mid-write while appends pile up.
type gateFS struct {
	walfault.FS
	gate chan struct{}
}

func (g *gateFS) Append(name string) (walfault.File, error) {
	f, err := g.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, gate: g.gate}, nil
}

type gateFile struct {
	walfault.File
	gate chan struct{}
}

func (f *gateFile) Write(p []byte) (int, error) {
	<-f.gate
	return f.File.Write(p)
}

// Appends that accumulate while the writer is busy must go out in one
// coalesced write(), not one syscall per record.
func TestWriteCoalescing(t *testing.T) {
	gate := make(chan struct{})
	fs := &gateFS{FS: walfault.NewMemFS(walfault.Faults{}), gate: gate}
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for seq := uint64(1); seq <= n; seq++ {
		if _, err := l.Append(Op{Seq: seq, Key: seq, Value: []byte("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	// Release the writer: however the swap raced the appends, everything
	// buffered behind the first blocked write must drain in at most one
	// more write call.
	go func() {
		for {
			gate <- struct{}{}
		}
	}()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Synced(); got != n {
		t.Fatalf("synced %d, want %d", got, n)
	}
	st := l.Stats()
	if st.Appends != n || st.Writes < 1 || st.Writes > 2 {
		t.Fatalf("expected %d appends in <= 2 coalesced writes, got %+v", n, st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Scan(data, func(Op) { count++ }); err != nil || count != n {
		t.Fatalf("replayed %d records (err %v), want %d", count, err, n)
	}
}

// An interval timer made stale by an explicit Sync must not fire a spurious
// fsync or wakeup; a timer with undurable records still must.
func TestStaleTimerCanceled(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	const interval = 100 * time.Millisecond
	l, err := Open(fs, "wal", Options{SyncInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Seq: 1, Key: 1}); err != nil {
		t.Fatal(err)
	}
	// The explicit Sync lands long before the timer's deadline and makes the
	// record durable; the timer must be canceled (or detect staleness).
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * interval)
	st := l.Stats()
	if st.Fsyncs != 1 || st.TimerFires != 0 {
		t.Fatalf("stale timer caused extra work: %+v (want 1 fsync, 0 timer fires)", st)
	}
	// Positive control: with no explicit Sync, the timer is the only thing
	// that makes the next record durable.
	if _, err := l.Append(Op{Seq: 2, Key: 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Synced() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("interval timer never synced record 2: %+v", l.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st = l.Stats()
	if st.TimerFires != 1 || st.Fsyncs != 2 {
		t.Fatalf("after timer commit: %+v (want 2 fsyncs, 1 timer fire)", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// createFile mirrors the persister's createEmpty: rotation targets must
// exist, empty and durable, before Rotate is called.
func createFile(t *testing.T, fs walfault.FS, name string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// Rotate must leave the old file complete and fully durable, route later
// appends to the successor, and keep LSNs/durability working across the cut.
func TestRotate(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	l, err := Open(fs, "wal-a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := l.Append(Op{Seq: seq, Key: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	createFile(t, fs, "wal-b")
	if err := l.Rotate("wal-b"); err != nil {
		t.Fatal(err)
	}
	aData, err := fs.ReadFile("wal-a")
	if err != nil {
		t.Fatal(err)
	}
	if fs.SyncedLen("wal-a") != int64(len(aData)) {
		t.Fatalf("old file not fully durable after rotate: %d of %d bytes synced",
			fs.SyncedLen("wal-a"), len(aData))
	}
	var aSeqs []uint64
	if _, err := Scan(aData, func(op Op) { aSeqs = append(aSeqs, op.Seq) }); err != nil {
		t.Fatal(err)
	}
	if len(aSeqs) != 5 || aSeqs[4] != 5 {
		t.Fatalf("old file holds %v, want seqs 1..5", aSeqs)
	}
	for seq := uint64(6); seq <= 8; seq++ {
		if _, err := l.Append(Op{Seq: seq, Key: seq}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Synced(); got != 8 {
		t.Fatalf("synced LSN %d after rotation, want 8", got)
	}
	if st := l.Stats(); st.Rotations != 1 {
		t.Fatalf("Rotations = %d, want 1", st.Rotations)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	bData, err := fs.ReadFile("wal-b")
	if err != nil {
		t.Fatal(err)
	}
	var bSeqs []uint64
	if _, err := Scan(bData, func(op Op) { bSeqs = append(bSeqs, op.Seq) }); err != nil {
		t.Fatal(err)
	}
	if len(bSeqs) != 3 || bSeqs[0] != 6 || bSeqs[2] != 8 {
		t.Fatalf("successor holds %v, want seqs 6..8", bSeqs)
	}
}

// Rotations racing a concurrent appender must preserve record order across
// the whole file chain and keep every pre-rotation file fully durable.
func TestRotateConcurrentAppends(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	files := []string{"wal-000001", "wal-000002", "wal-000003", "wal-000004"}
	l, err := Open(fs, files[0], Options{SyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(1); seq <= n; seq++ {
			if _, err := l.Append(Op{Seq: seq, Key: seq}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, next := range files[1:] {
		createFile(t, fs, next)
		if err := l.Rotate(next); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want := uint64(1)
	for i, name := range files {
		data, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		// Every file but the live one was closed by a rotation, which fsyncs
		// first: its entire contents must be durable.
		if i < len(files)-1 && fs.SyncedLen(name) != int64(len(data)) {
			t.Fatalf("%s: %d of %d bytes durable after rotation", name, fs.SyncedLen(name), len(data))
		}
		if _, err := Scan(data, func(op Op) {
			if op.Seq != want {
				t.Fatalf("%s: seq %d out of order, want %d", name, op.Seq, want)
			}
			want++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if want != n+1 {
		t.Fatalf("replayed %d records across the chain, want %d", want-1, n)
	}
}
