package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"klsm/internal/walfault"
)

// roundTrip encodes ops, scans them back, and compares.
func TestRecordRoundTrip(t *testing.T) {
	in := []Op{
		{Seq: 1, Key: 42, Value: []byte("hello")},
		{Seq: 2, Key: 0, Value: nil},
		{Delete: true, Seq: 1, Key: 42},
		{Seq: 1<<63 + 5, Key: ^uint64(0), Value: make([]byte, 300)},
	}
	var buf []byte
	for _, op := range in {
		buf = AppendRecord(buf, op)
	}
	var out []Op
	res, err := Scan(buf, func(op Op) {
		op.Value = append([]byte(nil), op.Value...)
		out = append(out, op)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.GoodLen != int64(len(buf)) || res.Records != len(in) {
		t.Fatalf("scan result %+v, want clean %d records over %d bytes", res, len(in), len(buf))
	}
	for i := range in {
		if out[i].Delete != in[i].Delete || out[i].Seq != in[i].Seq || out[i].Key != in[i].Key ||
			string(out[i].Value) != string(in[i].Value) {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

// A truncated final record is a torn tail: dropped, not an error.
func TestScanTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	clean := int64(len(buf))
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	for cut := clean + 1; cut < int64(len(buf)); cut++ {
		n := 0
		res, err := Scan(buf[:cut], func(Op) { n++ })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.Torn || res.GoodLen != clean || n != 1 {
			t.Fatalf("cut %d: got %+v (%d records), want torn with GoodLen %d", cut, res, n, clean)
		}
	}
}

// A damaged record with intact records after it must refuse with ErrCorrupt
// — for every byte of the first record.
func TestScanMidLogCorruption(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	first := len(buf)
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	for i := 0; i < first; i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		_, err := Scan(mut, func(Op) {})
		if err == nil {
			t.Fatalf("flip at byte %d: corruption not detected", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// A flipped bit in the *final* record is indistinguishable from a torn
// write and must truncate cleanly instead of erroring.
func TestScanGarbledTailTruncates(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Op{Seq: 1, Key: 10, Value: []byte("abc")})
	clean := int64(len(buf))
	buf = AppendRecord(buf, Op{Seq: 2, Key: 20, Value: []byte("defgh")})
	mut := append([]byte(nil), buf...)
	mut[len(mut)-2] ^= 0x10
	n := 0
	res, err := Scan(mut, func(Op) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.GoodLen != clean || n != 1 {
		t.Fatalf("got %+v (%d records), want torn with GoodLen %d", res, n, clean)
	}
}

// Group commit: concurrent appenders + Sync callers, then replay and check
// that every synced record is present and in seq order per appender.
func TestLogGroupCommitConcurrent(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 1})
	l, err := Open(fs, "wal", Options{SyncEvery: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := uint64(w*each + i + 1)
				if _, err := l.Append(Op{Seq: seq, Key: seq, Value: []byte(fmt.Sprintf("v%d", seq))}); err != nil {
					t.Error(err)
					return
				}
				if i%100 == 99 {
					if err := l.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.Synced(), uint64(workers*each); got != want {
		t.Fatalf("synced LSN %d, want %d", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	res, err := Scan(data, func(op Op) {
		if seen[op.Seq] {
			t.Fatalf("seq %d appears twice", op.Seq)
		}
		seen[op.Seq] = true
	})
	if err != nil || res.Torn {
		t.Fatalf("scan: %v torn=%v", err, res.Torn)
	}
	if len(seen) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(seen), workers*each)
	}
	if st := l.Stats(); st.Fsyncs == 0 || st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %+v", st)
	}
}

// After a crash, everything up to the last successful Sync must replay.
func TestLogCrashKeepsSyncedPrefix(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 7})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 100; seq++ {
		if _, err := l.Append(Op{Seq: seq, Key: seq}); err != nil {
			t.Fatal(err)
		}
		if seq == 60 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs.Crash()
	l.Abandon()
	data, err := fs.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	max := uint64(0)
	if _, err := Scan(data, func(op Op) { max = op.Seq }); err != nil {
		t.Fatal(err)
	}
	if max < 60 {
		t.Fatalf("synced prefix lost: max replayed seq %d < 60", max)
	}
}

// Injected fsync failures surface as sticky errors on Sync and Append.
func TestLogSyncFailureSticky(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{SyncFailRate: 1, Seed: 3})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Seq: 1, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Sync error %v, want ErrSyncFault", err)
	}
	if _, err := l.Append(Op{Seq: 2, Key: 2}); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Append after failure: %v, want sticky ErrSyncFault", err)
	}
	if err := l.Close(); !errors.Is(err, walfault.ErrSyncFault) {
		t.Fatalf("Close: %v, want sticky ErrSyncFault", err)
	}
}

// Short writes surface as sticky errors too (the log never silently skips).
func TestLogShortWriteFails(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{ShortWriteRate: 1, Seed: 11})
	l, err := Open(fs, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Op{Seq: 1, Key: 1, Value: make([]byte, 64)})
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded over an injected short write")
	}
	l.Close()
}
