// Package wal implements the write-ahead log of the durability layer: a
// length-prefixed, CRC32C-framed record stream with group commit.
//
// # Framing
//
// Every record is framed as
//
//	len   uint32 LE  — payload length
//	pcrc  uint32 LE  — CRC32C over the payload
//	hcrc  uint32 LE  — CRC32C over the preceding 8 bytes (len‖pcrc)
//	payload
//
// The separate header CRC is what lets recovery tell a torn tail from
// mid-log corruption: with a valid hcrc the length is trustworthy, so a
// payload that extends past EOF is a torn append (truncate), while a payload
// that is fully present but fails pcrc in the middle of the log is
// corruption (refuse). When the header itself is garbage, Scan probes
// forward for any later record that frames and checksums correctly: in an
// append-only log a torn write can never be followed by a complete record
// (bytes are flushed in order), so finding one proves the damage is mid-log.
//
// # Payload
//
//	op    byte    — OpInsert or OpDelete
//	seq   uvarint — the insert's durability sequence number
//	key   uvarint — the priority key
//	vlen  uvarint — value length (OpInsert only)
//	value bytes   — (OpInsert only)
//
// Inserts carry (seq, key, value); deletes carry (seq, key) and cancel the
// insert with the same seq during replay. Because records are appended in
// operation order into one file, a durable delete implies its insert is
// durable too (fsync covers a prefix), so replay never sees a delete whose
// insert it cannot locate in either the WAL or a checkpoint segment.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record types.
const (
	OpInsert = 1
	OpDelete = 2
)

// MaxRecord caps a record payload (and therefore every decode-time
// allocation): a flipped length byte must not OOM recovery.
const MaxRecord = 1 << 24

// headerSize is the fixed frame prefix: len + hcrc + pcrc.
const headerSize = 12

// ErrCorrupt reports mid-log corruption: a record that is provably damaged
// (rather than torn off by a crash) was found before the end of the log.
// Recovery refuses to proceed past it — silently dropping an interior record
// would un-acknowledge writes whose fsync succeeded.
var ErrCorrupt = errors.New("wal: corrupt record")

// castagnoli is the CRC32C table (the SSE4.2-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is one logical WAL record.
type Op struct {
	// Delete distinguishes the two record types.
	Delete bool
	// Seq is the insert's durability sequence number; a delete names the
	// seq of the insert it consumed.
	Seq uint64
	// Key is the priority key, logged on both record types so replay can
	// sanity-check and tests can assert without a side table.
	Key uint64
	// Value is the encoded payload (inserts only). Decoded Ops alias the
	// scanned buffer; copy before retaining.
	Value []byte
}

// AppendRecord appends the framed encoding of op to dst and returns the
// extended slice.
func AppendRecord(dst []byte, op Op) []byte {
	start := len(dst)
	dst = appendUnsealed(dst, op)
	sealFrames(dst[start:])
	return dst
}

// appendUnsealed appends op's frame with the length field filled and both
// CRC fields left zero. This is the mutator half of the split encode: Append
// runs it under the buffer mutex, and the writer goroutine seals the CRCs
// (sealFrames) off the hot path. The sealed bytes are exactly AppendRecord's.
func appendUnsealed(dst []byte, op Op) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	if op.Delete {
		dst = append(dst, OpDelete)
		dst = binary.AppendUvarint(dst, op.Seq)
		dst = binary.AppendUvarint(dst, op.Key)
	} else {
		dst = append(dst, OpInsert)
		dst = binary.AppendUvarint(dst, op.Seq)
		dst = binary.AppendUvarint(dst, op.Key)
		dst = binary.AppendUvarint(dst, uint64(len(op.Value)))
		dst = append(dst, op.Value...)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-headerSize))
	return dst
}

// sealFrames fills the pcrc/hcrc fields of every frame in buf, which must
// hold a whole number of frames with valid length fields (the writer's batch
// buffer — appendUnsealed is the only producer). One tight pass over the
// batch replaces a per-record checksum on the mutator's critical path.
func sealFrames(buf []byte) {
	for off := 0; off+headerSize <= len(buf); {
		plen := int(binary.LittleEndian.Uint32(buf[off:]))
		payload := buf[off+headerSize : off+headerSize+plen]
		binary.LittleEndian.PutUint32(buf[off+4:], crc32.Checksum(payload, castagnoli))
		binary.LittleEndian.PutUint32(buf[off+8:], crc32.Checksum(buf[off:off+8], castagnoli))
		off += headerSize + plen
	}
}

// decodePayload decodes one record payload.
func decodePayload(p []byte) (Op, error) {
	if len(p) == 0 {
		return Op{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	kind := p[0]
	rest := p[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return Op{}, fmt.Errorf("%w: bad seq varint", ErrCorrupt)
	}
	rest = rest[n:]
	key, n := binary.Uvarint(rest)
	if n <= 0 {
		return Op{}, fmt.Errorf("%w: bad key varint", ErrCorrupt)
	}
	rest = rest[n:]
	switch kind {
	case OpDelete:
		if len(rest) != 0 {
			return Op{}, fmt.Errorf("%w: %d trailing bytes on delete", ErrCorrupt, len(rest))
		}
		return Op{Delete: true, Seq: seq, Key: key}, nil
	case OpInsert:
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return Op{}, fmt.Errorf("%w: bad value-length varint", ErrCorrupt)
		}
		rest = rest[n:]
		if vlen != uint64(len(rest)) {
			return Op{}, fmt.Errorf("%w: value length %d, %d bytes present", ErrCorrupt, vlen, len(rest))
		}
		return Op{Seq: seq, Key: key, Value: rest}, nil
	default:
		return Op{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, kind)
	}
}

// ScanResult summarizes one log scan.
type ScanResult struct {
	// Records is the number of records emitted.
	Records int
	// GoodLen is the length of the clean prefix: the log should be
	// truncated to this before appending resumes.
	GoodLen int64
	// Torn reports whether a torn tail (GoodLen < len(data)) was dropped.
	Torn bool
}

// frameAt validates the frame at data[off:]. ok=false means the bytes do not
// form a complete well-checksummed record (torn or corrupt — the caller
// decides which).
func frameAt(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if int64(len(data))-off < headerSize {
		return nil, 0, false
	}
	h := data[off : off+headerSize]
	if crc32.Checksum(h[:8], castagnoli) != binary.LittleEndian.Uint32(h[8:12]) {
		return nil, 0, false
	}
	plen := int64(binary.LittleEndian.Uint32(h[:4]))
	if plen > MaxRecord || off+headerSize+plen > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+headerSize : off+headerSize+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(h[4:8]) {
		return nil, 0, false
	}
	return payload, off + headerSize + plen, true
}

// completeRecordAhead reports whether any offset in (off, len(data)] frames
// a complete, fully-checksummed record. In an append-only log, bytes are
// made durable strictly in write order, so nothing that follows a torn
// append can be complete: a hit proves the damage at off is mid-log
// corruption, not a crash artifact.
func completeRecordAhead(data []byte, off int64) bool {
	for p := off + 1; p+headerSize <= int64(len(data)); p++ {
		if _, _, ok := frameAt(data, p); ok {
			return true
		}
	}
	return false
}

// Scan replays the record stream in data, calling emit for each intact
// record in order. A damaged region at the physical end of the log (a torn
// append) is reported via ScanResult.Torn and excluded from GoodLen; a
// damaged record with intact records after it is mid-log corruption and
// fails with an error wrapping ErrCorrupt. Scan never panics on hostile
// input and never allocates more than MaxRecord bytes at a time.
func Scan(data []byte, emit func(Op)) (ScanResult, error) {
	var res ScanResult
	off := int64(0)
	for off < int64(len(data)) {
		payload, next, ok := frameAt(data, off)
		if !ok {
			// Either way the clean prefix ends here; on the corrupt return
			// GoodLen tells a repair tool where the damage starts.
			res.GoodLen = off
			if completeRecordAhead(data, off) {
				return res, fmt.Errorf("%w: damaged record at offset %d with intact records after it", ErrCorrupt, off)
			}
			res.Torn = true
			return res, nil
		}
		op, err := decodePayload(payload)
		if err != nil {
			// The frame checksums held, so the payload bytes are exactly
			// what the writer wrote — a decode failure is a corrupt (or
			// version-skewed) record, never a torn one.
			res.GoodLen = off
			return res, fmt.Errorf("record at offset %d: %w", off, err)
		}
		emit(op)
		res.Records++
		off = next
	}
	res.GoodLen = off
	return res, nil
}
