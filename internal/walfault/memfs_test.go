package walfault

import (
	"errors"
	"io"
	"testing"
)

// Crash keeps synced bytes intact and cuts unsynced bytes to a prefix.
func TestCrashKeepsSyncedPrefix(t *testing.T) {
	m := NewMemFS(Faults{Seed: 1})
	f, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable-"))
	f.Sync()
	f.Write([]byte("volatile"))
	m.Crash()
	data, err := m.ReadFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len("durable-") || string(data[:8]) != "durable-" {
		t.Fatalf("synced prefix damaged: %q", data)
	}
	if len(data) > len("durable-volatile") {
		t.Fatalf("crash grew the file: %q", data)
	}
}

// Handles opened before a crash are dead afterwards.
func TestCrashInvalidatesHandles(t *testing.T) {
	m := NewMemFS(Faults{Seed: 2})
	f, _ := m.Create("f")
	m.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write on stale handle: %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync on stale handle: %v, want ErrCrashed", err)
	}
	// A fresh handle works.
	g, err := m.Append("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
}

// Injected short writes persist a strict non-empty prefix.
func TestShortWriteInjection(t *testing.T) {
	m := NewMemFS(Faults{ShortWriteRate: 1, Seed: 3})
	f, _ := m.Create("f")
	n, err := f.Write(make([]byte, 100))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err %v, want ErrShortWrite", err)
	}
	if n <= 0 || n >= 100 {
		t.Fatalf("short write persisted %d bytes, want strict non-empty prefix", n)
	}
	data, _ := m.ReadFile("f")
	if len(data) != n {
		t.Fatalf("file has %d bytes, reported %d", len(data), n)
	}
}

// Injected fsync failures leave the bytes volatile: a crash may drop them.
func TestSyncFaultLeavesBytesVolatile(t *testing.T) {
	m := NewMemFS(Faults{SyncFailRate: 1, Seed: 4})
	f, _ := m.Create("f")
	f.Write([]byte("abc"))
	if err := f.Sync(); !errors.Is(err, ErrSyncFault) {
		t.Fatalf("err %v, want ErrSyncFault", err)
	}
	if m.SyncedLen("f") != 0 {
		t.Fatal("failed fsync must not mark bytes durable")
	}
}

// Rename replaces the target and survives crashes (rename atomicity).
func TestRenameAtomic(t *testing.T) {
	m := NewMemFS(Faults{Seed: 5})
	f, _ := m.Create("tmp")
	f.Write([]byte("new"))
	f.Sync()
	g, _ := m.Create("target")
	g.Write([]byte("old"))
	g.Sync()
	if err := m.Rename("tmp", "target"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	data, err := m.ReadFile("target")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new" {
		t.Fatalf("target = %q after rename+crash", data)
	}
	if _, err := m.ReadFile("tmp"); err == nil {
		t.Fatal("tmp still exists after rename")
	}
}

// FlipBit corrupts durable data only within bounds.
func TestFlipBit(t *testing.T) {
	m := NewMemFS(Faults{Seed: 6})
	f, _ := m.Create("f")
	f.Write([]byte{0x00})
	f.Sync()
	if err := m.FlipBit("f", 3); err != nil {
		t.Fatal(err)
	}
	data, _ := m.ReadFile("f")
	if data[0] != 0x08 {
		t.Fatalf("byte = %#x, want 0x08", data[0])
	}
	if err := m.FlipBit("f", 8); err == nil {
		t.Fatal("FlipBit past synced region must fail")
	}
}

// Truncate cuts the combined synced+unsynced view.
func TestTruncate(t *testing.T) {
	m := NewMemFS(Faults{Seed: 7})
	f, _ := m.Create("f")
	f.Write([]byte("abcd"))
	f.Sync()
	f.Write([]byte("efgh"))
	if err := m.Truncate("f", 6); err != nil {
		t.Fatal(err)
	}
	data, _ := m.ReadFile("f")
	if string(data) != "abcdef" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := m.Truncate("f", 2); err != nil {
		t.Fatal(err)
	}
	data, _ = m.ReadFile("f")
	if string(data) != "ab" {
		t.Fatalf("after second truncate: %q", data)
	}
	if err := m.Truncate("f", 100); err == nil {
		t.Fatal("truncate past EOF must fail")
	}
}
