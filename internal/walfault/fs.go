// Package walfault provides the filesystem seam of the durability layer and
// its fault-injection implementation.
//
// The write-ahead log (internal/wal) and the checkpoint machinery
// (internal/segment) never touch the os package directly: they operate on the
// FS interface below. Production uses OS, a thin wrapper over one directory.
// Tests use MemFS, an in-memory filesystem that models exactly the failure
// surface a WAL must survive:
//
//   - short writes (a Write persists only a prefix),
//   - fsync errors (Sync fails and the file enters an unknown state),
//   - torn tails (a crash preserves synced bytes but only an arbitrary
//     prefix of unsynced ones),
//   - bit flips (media corruption of already-synced bytes).
//
// MemFS.Crash simulates a kill: everything not fsynced is cut down to a
// random prefix (per file), optionally garbled, and the filesystem can then
// be "rebooted" into a fresh set of handles — which is how the
// crash-recovery stress test kills and reopens a queue hundreds of times per
// second without spawning processes.
package walfault

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable-file surface the durability layer needs. Reads go
// through FS.ReadFile (recovery always reads whole files).
type File interface {
	io.WriteCloser
	// Sync makes every byte written so far durable: after Sync returns nil,
	// the bytes survive a crash. On error the durable state of unsynced
	// bytes is unknown (the POSIX fsync contract).
	Sync() error
}

// FS is a flat (directory-free) filesystem rooted at one directory. Names
// are bare file names; implementations reject path separators.
type FS interface {
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname (the os.Rename
	// contract on POSIX). The durability layer relies on this atomicity for
	// MANIFEST publication.
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is an error.
	Remove(name string) error
	// Truncate cuts name down to size bytes (used to drop a torn WAL tail).
	Truncate(name string, size int64) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// SyncDir makes directory-level operations (Create, Rename, Remove)
	// durable.
	SyncDir() error
}

// osFS implements FS over one real directory.
type osFS struct {
	dir string
}

// OS returns the production FS rooted at dir, creating the directory (and
// parents) if needed.
func OS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &osFS{dir: dir}, nil
}

func (fs *osFS) path(name string) string { return filepath.Join(fs.dir, name) }

func (fs *osFS) Create(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (fs *osFS) Append(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (fs *osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(fs.path(name))
}

func (fs *osFS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

func (fs *osFS) Remove(name string) error { return os.Remove(fs.path(name)) }

func (fs *osFS) Truncate(name string, size int64) error {
	return os.Truncate(fs.path(name), size)
}

func (fs *osFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *osFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
