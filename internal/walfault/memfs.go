package walfault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"klsm/internal/xrand"
)

// Errors returned by MemFS.
var (
	// ErrCrashed is returned to writers whose file handle predates a Crash:
	// the process those writes belonged to is dead, so nothing they write
	// may reach the disk image.
	ErrCrashed = errors.New("walfault: file handle invalidated by crash")
	// ErrSyncFault is the injected fsync failure.
	ErrSyncFault = errors.New("walfault: injected fsync error")
)

// Faults configures the probabilistic fault injection of a MemFS. A rate N
// means "roughly one in N operations"; 0 disables that fault.
type Faults struct {
	// ShortWriteRate injects short writes: one in N Write calls persists
	// only a strict prefix of its buffer and returns io.ErrShortWrite.
	ShortWriteRate int
	// SyncFailRate injects fsync failures: one in N Sync calls fails with
	// ErrSyncFault, leaving the unsynced bytes volatile (they may be lost by
	// the next Crash) — the conservative reading of the POSIX contract.
	SyncFailRate int
	// TornGarbleRate garbles torn tails: one in N crashes that keep a
	// non-empty unsynced prefix also flips one random bit inside it,
	// modeling a sector written while power failed.
	TornGarbleRate int
	// Seed makes the injection deterministic.
	Seed uint64
}

// memFile is the disk image of one file: synced bytes survive a crash,
// unsynced bytes survive only as an arbitrary prefix.
type memFile struct {
	synced   []byte
	unsynced []byte
}

// MemFS is the in-memory crash-simulating FS. All methods are
// goroutine-safe; a background WAL writer and a test driver may race freely,
// exactly like a real writer racing a kill signal.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	rng     *xrand.Source
	faults  Faults
	epoch   uint64 // bumped by Crash; stale handles are rejected
	crashes int64
	flips   int64
}

// NewMemFS returns an empty MemFS with the given fault plan.
func NewMemFS(f Faults) *MemFS {
	return &MemFS{
		files:  make(map[string]*memFile),
		rng:    xrand.NewSeeded(f.Seed*0x9e3779b97f4a7c15 + 0x1234567),
		faults: f,
	}
}

func checkName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("walfault: bad file name %q", name)
	}
	return nil
}

// hit reports one-in-rate, rate 0 meaning never. Caller holds mu.
func (m *MemFS) hit(rate int) bool {
	return rate > 0 && m.rng.Intn(rate) == 0
}

// memHandle is a write handle bound to the epoch it was opened in.
type memHandle struct {
	fs    *MemFS
	name  string
	epoch uint64
}

func (h *memHandle) file() (*memFile, error) {
	f := h.fs.files[h.name]
	if h.epoch != h.fs.epoch {
		return nil, ErrCrashed
	}
	if f == nil {
		return nil, fs.ErrNotExist
	}
	return f, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if len(p) > 1 && h.fs.hit(h.fs.faults.ShortWriteRate) {
		n := 1 + h.fs.rng.Intn(len(p)-1) // strict non-empty prefix
		f.unsynced = append(f.unsynced, p[:n]...)
		return n, io.ErrShortWrite
	}
	f.unsynced = append(f.unsynced, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	if h.fs.hit(h.fs.faults.SyncFailRate) {
		return ErrSyncFault
	}
	f.synced = append(f.synced, f.unsynced...)
	f.unsynced = f.unsynced[:0]
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemFS) Create(name string) (File, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name, epoch: m.epoch}, nil
}

func (m *MemFS) Append(name string) (File, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name, epoch: m.epoch}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("walfault: %s: %w", name, fs.ErrNotExist)
	}
	out := make([]byte, 0, len(f.synced)+len(f.unsynced))
	out = append(out, f.synced...)
	return append(out, f.unsynced...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[oldname]
	if f == nil {
		return fmt.Errorf("walfault: %s: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files[name] == nil {
		return fmt.Errorf("walfault: %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("walfault: %s: %w", name, fs.ErrNotExist)
	}
	total := int64(len(f.synced) + len(f.unsynced))
	if size < 0 || size > total {
		return fmt.Errorf("walfault: truncate %s to %d (size %d)", name, size, total)
	}
	if size <= int64(len(f.synced)) {
		f.synced = f.synced[:size]
		f.unsynced = f.unsynced[:0]
	} else {
		f.unsynced = f.unsynced[:size-int64(len(f.synced))]
	}
	return nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir is a no-op: MemFS models directory operations (Create, Rename,
// Remove) as immediately durable, which matches the rename-atomicity
// assumption the MANIFEST protocol already makes of real filesystems. File
// *contents* are what crash-tearing targets.
func (m *MemFS) SyncDir() error { return nil }

// Crash simulates a kill -9 plus power loss: for every file, the synced
// bytes survive intact and the unsynced bytes are cut to an arbitrary
// (random, possibly empty, possibly complete) prefix — the torn tail.
// Depending on TornGarbleRate the kept prefix may additionally have one bit
// flipped. All open handles are invalidated: a background writer goroutine
// that outlives the "process" can no longer reach the disk image. The FS
// remains usable — reopening files afterwards models the post-reboot
// recovery.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	m.crashes++
	for _, f := range m.files {
		if len(f.unsynced) == 0 {
			continue
		}
		keep := m.rng.Intn(len(f.unsynced) + 1)
		tail := f.unsynced[:keep]
		if keep > 0 && m.hit(m.faults.TornGarbleRate) {
			bit := m.rng.Intn(keep * 8)
			tail[bit/8] ^= 1 << (bit % 8)
			m.flips++
		}
		f.synced = append(f.synced, tail...)
		f.unsynced = nil
	}
}

// FlipBit flips one bit of the durable image of name (bitOffset counts from
// the start of the file), modeling media corruption of already-synced data —
// the mid-log corruption recovery must refuse. The offset must lie within
// the synced region.
func (m *MemFS) FlipBit(name string, bitOffset int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("walfault: %s: %w", name, fs.ErrNotExist)
	}
	if bitOffset < 0 || bitOffset >= int64(len(f.synced))*8 {
		return fmt.Errorf("walfault: FlipBit offset %d outside synced %d bytes of %s",
			bitOffset, len(f.synced), name)
	}
	f.synced[bitOffset/8] ^= 1 << (bitOffset % 8)
	m.flips++
	return nil
}

// SyncedLen returns how many bytes of name are durable, for tests that
// want to corrupt or assert around the synced/unsynced boundary.
func (m *MemFS) SyncedLen(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.files[name]; f != nil {
		return int64(len(f.synced))
	}
	return 0
}

// Crashes returns how many times Crash ran; Flips how many bits were
// flipped (torn-tail garbling plus FlipBit).
func (m *MemFS) Crashes() int64 { return m.crashes }

// Flips returns the number of bits flipped so far.
func (m *MemFS) Flips() int64 { return m.flips }
