package core

import (
	"math"
	"sort"
	"testing"

	"klsm/internal/xrand"
)

// drainAll empties the queue through h and returns the popped keys in order.
func drainAllKeys(t *testing.T, h *Handle[int]) []uint64 {
	t.Helper()
	var got []uint64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	return got
}

// TestInsertBatchConservation checks, for every operating mode, that a mix
// of batch and single inserts yields exactly the inserted multiset back —
// no key lost, none duplicated — including batches large enough to overflow
// the DistLSM bound in one step.
func TestInsertBatchConservation(t *testing.T) {
	modes := []struct {
		name string
		cfg  Config[int]
	}{
		{"combined", Config[int]{K: 8, Mode: Combined, LocalOrdering: true}},
		{"distonly", Config[int]{Mode: DistOnly}},
		{"sharedonly", Config[int]{K: 8, Mode: SharedOnly, LocalOrdering: true}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			q := NewQueue(m.cfg)
			h := q.NewHandle()
			rng := xrand.NewSeeded(11)
			var want []uint64
			for _, n := range []int{1, 2, 3, 8, 64, 512} {
				keys := make([]uint64, n)
				vals := make([]int, n)
				for i := range keys {
					keys[i] = rng.Uint64n(1 << 32)
					want = append(want, keys[i])
				}
				h.InsertBatch(keys, vals)
			}
			for i := 0; i < 50; i++ {
				k := rng.Uint64n(1 << 32)
				want = append(want, k)
				h.Insert(k, 0)
			}
			if q.Size() != len(want) {
				t.Fatalf("Size = %d, want %d", q.Size(), len(want))
			}
			got := drainAllKeys(t, h)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("drained %d keys, inserted %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("multiset mismatch at %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestInsertBatchNilValuesAndMismatch pins the values contract: nil values
// insert zero payloads, a length mismatch panics.
func TestInsertBatchNilValuesAndMismatch(t *testing.T) {
	q := NewQueue(Config[int]{K: 4, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	h.InsertBatch([]uint64{3, 1, 2}, nil)
	if q.Size() != 3 {
		t.Fatalf("Size = %d after nil-values batch", q.Size())
	}
	k, v, ok := h.TryDeleteMin()
	if !ok || v != 0 {
		t.Fatalf("TryDeleteMin = (%d, %d, %v), want zero payload", k, v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	h.InsertBatch([]uint64{1, 2}, []int{1})
}

// TestDrainMinSingleHandleExact drains a k=0 single-handle queue with
// DrainMin and expects fully sorted output in one pass (with k=0 and one
// handle the relaxation bound is zero).
func TestDrainMinSingleHandleExact(t *testing.T) {
	q := NewQueue(Config[int]{K: 0, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(23)
	const n = 2000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64n(1 << 40)
	}
	h.InsertBatch(keys, nil)
	var got []uint64
	cnt := h.DrainMin(n+10, func(k uint64, _ int) { got = append(got, k) })
	if cnt != n || len(got) != n {
		t.Fatalf("DrainMin drained %d (emitted %d), want %d", cnt, len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("k=0 single-handle drain not sorted")
	}
	if extra := h.DrainMin(4, func(uint64, int) {}); extra != 0 {
		t.Fatalf("DrainMin on empty queue returned %d", extra)
	}
	if h.DrainMin(-3, func(uint64, int) {}) != 0 {
		t.Fatal("DrainMin with negative max must return 0")
	}
}

// TestInsertBatchReclaimLedger proves the exactly-once item ledger survives
// the batch path: after batch inserts, a full drain, handle close, and
// Quiesce, every item has been released to an item pool exactly once.
func TestInsertBatchReclaimLedger(t *testing.T) {
	q := NewQueue(Config[int]{K: 16, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(31)
	total := 0
	for round := 0; round < 8; round++ {
		keys := make([]uint64, 300)
		for i := range keys {
			keys[i] = rng.Uint64n(1 << 30)
		}
		h.InsertBatch(keys, nil)
		total += len(keys)
		// Interleave drains so candidates churn through the window.
		total -= h.DrainMin(120, func(uint64, int) {})
	}
	got := drainAllKeys(t, h)
	if len(got) != total {
		t.Fatalf("drained %d, want %d live", len(got), total)
	}
	h.Close()
	q.Quiesce()
	rs := q.ReclaimStats()
	if rs.ItemsLostLive != 0 {
		t.Fatalf("ItemsLostLive = %d", rs.ItemsLostLive)
	}
	if rs.LimboLeaked != 0 {
		t.Fatalf("LimboLeaked = %d", rs.LimboLeaked)
	}
	if rs.ItemsReclaimed != rs.ItemPuts {
		t.Fatalf("ItemsReclaimed %d != ItemPuts %d", rs.ItemsReclaimed, rs.ItemPuts)
	}
}

// TestInsertBatchPoolingOff exercises the batch path with pooling (and thus
// reclamation) disabled: the nil pools must be transparent.
func TestInsertBatchPoolingOff(t *testing.T) {
	q := NewQueue(Config[int]{K: 8, Mode: Combined, LocalOrdering: true, DisablePooling: true})
	h := q.NewHandle()
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(200 - i)
	}
	h.InsertBatch(keys, nil)
	got := drainAllKeys(t, h)
	if len(got) != len(keys) {
		t.Fatalf("drained %d, want %d", len(got), len(keys))
	}
}

// TestRelaxationClamp pins the SetRelaxation/NewQueue validation contract:
// negative k panics in both, absurd k clamps to MaxRelaxation, and ρ stays
// non-negative afterwards.
func TestRelaxationClamp(t *testing.T) {
	q := NewQueue(Config[int]{K: math.MaxInt, Mode: Combined, LocalOrdering: true})
	if q.K() != MaxRelaxation {
		t.Fatalf("NewQueue K = %d, want clamp to %d", q.K(), MaxRelaxation)
	}
	q.NewHandle()
	q.NewHandle()
	q.SetRelaxation(math.MaxInt)
	if q.K() != MaxRelaxation {
		t.Fatalf("SetRelaxation K = %d, want clamp to %d", q.K(), MaxRelaxation)
	}
	if q.Rho() < 0 {
		t.Fatalf("Rho overflowed: %d", q.Rho())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetRelaxation(-1) did not panic")
			}
		}()
		q.SetRelaxation(-1)
	}()
	// Validation applies to DistOnly queues too, where the value is
	// otherwise a documented no-op.
	dq := NewQueue(Config[int]{Mode: DistOnly})
	defer func() {
		if recover() == nil {
			t.Fatal("DistOnly SetRelaxation(-1) did not panic")
		}
	}()
	dq.SetRelaxation(-1)
}
