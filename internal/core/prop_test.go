package core

import (
	"container/heap"
	"testing"
	"testing/quick"

	"klsm/internal/ostat"
)

// oracleHeap is a minimal min-heap for cross-checking.
type oracleHeap []uint64

func (h oracleHeap) Len() int            { return len(h) }
func (h oracleHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// TestPropSingleHandleK0IsExact: with one handle and k=0 the combined queue
// must be indistinguishable from an exact priority queue on arbitrary
// operation sequences (the paper's strictest configuration).
func TestPropSingleHandleK0IsExact(t *testing.T) {
	f := func(ops []uint16) bool {
		q := combined(0)
		h := q.NewHandle()
		ref := &oracleHeap{}
		for _, op := range ops {
			if op&1 == 0 || ref.Len() == 0 {
				key := uint64(op >> 1)
				h.Insert(key, 0)
				heap.Push(ref, key)
			} else {
				got, _, ok := h.TryDeleteMin()
				want := heap.Pop(ref).(uint64)
				if !ok || got != want {
					return false
				}
			}
			if q.Size() != ref.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSingleHandleLocalOrderingExactAnyK: local ordering makes a single
// handle exact for *any* k — its own minimum always wins the comparison.
func TestPropSingleHandleLocalOrderingExactAnyK(t *testing.T) {
	f := func(ops []uint16, kSel uint8) bool {
		ks := []int{1, 4, 64, 1024, 65536}
		q := combined(ks[int(kSel)%len(ks)])
		h := q.NewHandle()
		ref := &oracleHeap{}
		for _, op := range ops {
			if op&1 == 0 || ref.Len() == 0 {
				key := uint64(op >> 1)
				h.Insert(key, 0)
				heap.Push(ref, key)
			} else {
				got, _, ok := h.TryDeleteMin()
				want := heap.Pop(ref).(uint64)
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRankBoundNoLocalOrdering: without the Bloom-filter local-ordering
// overlay, a single handle sees the raw k-relaxation — quick.Check drives
// arbitrary operation sequences against an order-statistic treap and every
// returned key must still rank within k among the live keys (ρ = T·k with
// T = 1). This is the property-level counterpart of the root package's
// k-bound suite, and it fails if the pivot machinery, candidate window, or
// min caches ever hand out a key beyond the structural bound.
func TestPropRankBoundNoLocalOrdering(t *testing.T) {
	f := func(ops []uint16, kSel uint8) bool {
		ks := []int{1, 4, 16, 64}
		k := ks[int(kSel)%len(ks)]
		q := NewQueue(Config[int]{K: k, Mode: Combined, LocalOrdering: false})
		h := q.NewHandle()
		tree := ostat.New(uint64(kSel) + 11)
		for _, op := range ops {
			if op&1 == 0 || tree.Len() == 0 {
				key := uint64(op >> 1)
				tree.Insert(key)
				h.Insert(key, 0)
				continue
			}
			key, _, ok := h.TryDeleteMin()
			if !ok {
				continue
			}
			if tree.Rank(key) > k {
				return false
			}
			if !tree.Delete(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropConservationTwoHandles: arbitrary interleavings across two
// handles conserve the key multiset (drained quiescently at the end).
func TestPropConservationTwoHandles(t *testing.T) {
	f := func(ops []uint16) bool {
		q := combined(16)
		h1, h2 := q.NewHandle(), q.NewHandle()
		inserted := map[uint64]int{}
		extracted := map[uint64]int{}
		insCount, delCount := 0, 0
		for i, op := range ops {
			h := h1
			if i&1 == 1 {
				h = h2
			}
			if op&1 == 0 {
				key := uint64(op >> 1)
				h.Insert(key, 0)
				inserted[key]++
				insCount++
			} else if k, _, ok := h.TryDeleteMin(); ok {
				extracted[k]++
				delCount++
			}
		}
		for {
			k, _, ok := h1.TryDeleteMin()
			if !ok {
				break
			}
			extracted[k]++
			delCount++
		}
		if insCount != delCount {
			return false
		}
		for k, c := range extracted {
			if inserted[k] < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
