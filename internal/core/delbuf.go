package core

import (
	"slices"

	"klsm/internal/item"
)

// Per-handle deletion buffer (MultiQueue-style, after "Engineering
// MultiQueues" — see ISSUE/DESIGN): TryDeleteMin refills a small owner-local
// buffer of version-stamped candidates from the shared candidate window and
// the DistLSM min scan in one pass, and the common delete becomes a buffer
// pop whose only shared-state touch is one pointer load (the anchor check)
// and the claiming CAS on the item itself.
//
// The buffer is a pure candidate *cache*: entries are never taken at fill
// time, so flushing it is a discard with zero obligations — the items stay
// live in their blocks, findable by every handle (the candidate window marks
// itself dirty when entries are consumed into a buffer, and rebuilds when it
// runs dry, so buffered-but-never-taken items are always recoverable).
// Buffered items therefore count toward the (k+1)·P relaxation accounting
// exactly as unbuffered live items do: they are live until the pop's
// TryTakeAt, which is the linearization point.
//
// Correctness of a buffered pop, validated entirely at pop time:
//
//   - ρ bound: every entry key is <= min(pivotKey, overlay, guard) of the
//     fill. While the shared pointer still equals the fill's anchor, at most
//     k live shared keys are below the pivot bound (FillCandidates'
//     contract), so a pop is within the k+1 smallest of the shared side plus
//     this handle's local items — the same per-handle bound every other
//     delete path meets. The anchor check runs before every pop; any shared
//     publication flushes the buffer.
//   - local ordering: entries are capped by the fill-time overlay bound (no
//     Bloom-matching shared block held a smaller key) and by the DistLSM
//     guard (the collected dist entries are a complete ascending prefix of
//     the handle's local live keys up to the cap). Both only move on the
//     handle's own mutations, each of which restores the invariant: an
//     insert splices itself in at its ascending position (bufInsert), a
//     batch insert truncates at the batch minimum (bufTruncate), spy and
//     meld flush outright (bufInvalidate).
//   - exactly-once: TryTakeAt claims the exact captured incarnation or
//     fails, so a stale entry (taken elsewhere, possibly recycled) is
//     skipped, never double-delivered.
//
// Pops drain in ascending key order — a documented deviation from the
// uniform-random draw, strictly better for rank quality — and ascending
// order is also what lets one guard key validate the whole dist prefix.
const (
	// defaultDelBufSize is the deletion-buffer capacity when the
	// configuration leaves DeletionBufferSize zero.
	defaultDelBufSize = 32
	// defaultStickyHintOps is the sticky-hint streak budget when the
	// configuration leaves StickyHintOps zero.
	defaultStickyHintOps = 64
	// delBufPerBlock bounds how many candidates one DistLSM block
	// contributes per fill.
	delBufPerBlock = 8
	// maxDrainFill caps the refill size DrainMin may request beyond the
	// configured capacity.
	maxDrainFill = 1024
)

// bufInvalidate discards the buffer after a mutation that invalidates the
// fill-time bounds wholesale (spy, meld) or retires the handle (close). The
// entries were never taken, so discarding them has no conservation effect.
func (h *Handle[V]) bufInvalidate() {
	if h.bufPos < len(h.buf) {
		h.BufFlushes.Add(1)
	}
	clear(h.buf)
	h.buf = h.buf[:0]
	h.bufPos = 0
	h.bufAnchor = nil
	h.bufCapKey = 0
}

// bufInsert splices the owner's freshly inserted item into the buffer at
// its ascending position, instead of flushing: the new key is then popped
// exactly at its turn, and the buffered entries above it — which a flush
// would discard and a refill re-collect — stay. The fill-time bounds are
// undisturbed because the insert landed in the handle's own DistLSM: the
// shared anchor and pivot did not move (an overflow publication moves the
// anchor, and the next pop's anchor check flushes everything including the
// spliced entry), and the dist-prefix completeness below bufCapKey is
// exactly what the splice maintains. Keys above bufCapKey need nothing:
// every buffered entry is at or below the cap, so none shadows them.
func (h *Handle[V]) bufInsert(it *item.Item[V], ver, key uint64) {
	if h.bufPos >= len(h.buf) || key > h.bufCapKey {
		return
	}
	i, _ := slices.BinarySearchFunc(h.buf[h.bufPos:], key, func(e item.Snap[V], k uint64) int {
		switch {
		case e.Key < k:
			return -1
		case e.Key > k:
			return 1
		default:
			return 0
		}
	})
	i += h.bufPos
	h.buf = append(h.buf, item.Snap[V]{})
	copy(h.buf[i+1:], h.buf[i:])
	h.buf[i] = item.Snap[V]{It: it, Ver: ver, Key: key}
	if len(h.buf)-h.bufPos > h.bufCap {
		// Keep the buffer bounded: the dropped tail entry stays live and
		// findable, like any flushed candidate. The cap must come down to
		// the largest remaining entry, though — at the old cap, a later
		// splice could admit a key above the dropped one, and its pop would
		// skip the dropped key while it is still live.
		n := len(h.buf) - 1
		h.buf[n] = item.Snap[V]{}
		h.buf = h.buf[:n]
		h.bufCapKey = h.buf[n-1].Key
	}
}

// bufTruncate drops the buffered candidates above key after the owner
// batch-inserted keys with minimum key. The buffer is sorted ascending, so
// only a tail is cut: the surviving entries are all <= key and ascending
// pops meet the batch keys at their turns (the refill after the buffer
// drains finds them in the structure), while entries at or below the
// minimum stay valid under the unchanged fill-time bounds — a local batch
// publication moves neither the shared anchor nor the pivot (an overflow
// does, and the anchor check catches it). Single inserts use the stronger
// bufInsert splice instead; a full flush here would discard candidates a
// refill immediately re-collects.
func (h *Handle[V]) bufTruncate(key uint64) {
	n := len(h.buf)
	for n > h.bufPos && h.buf[n-1].Key > key {
		n--
	}
	if n == len(h.buf) {
		return
	}
	h.BufFlushes.Add(1)
	clear(h.buf[n:])
	h.buf = h.buf[:n]
}

// bufNext returns the next buffered candidate, re-validating the anchor
// first: a shared publication since the fill voids the fill-time bounds, so
// the buffer is flushed and the caller falls back to the slow path. The
// entry itself is claimed by the caller via TryTakeAt.
func (h *Handle[V]) bufNext() (item.Snap[V], bool) {
	if h.bufPos >= len(h.buf) {
		return item.Snap[V]{}, false
	}
	if h.q.cfg.Mode != DistOnly && !h.q.shared.PtrIs(h.bufAnchor) {
		h.bufInvalidate()
		return item.Snap[V]{}, false
	}
	e := h.buf[h.bufPos]
	h.buf[h.bufPos] = item.Snap[V]{}
	h.bufPos++
	return e, true
}

// bufRefill rebuilds the buffer from both sides in one pass: shared window
// candidates via FillCandidates (which also supplies the anchor and the
// shared-side cap) and DistLSM minima via FillMin (which supplies the local
// guard). The merged entries are sorted ascending and truncated at the
// combined cap, so every surviving entry is provably poppable while the
// anchor holds. Reports whether any entries were buffered.
func (h *Handle[V]) bufRefill() bool {
	h.bufInvalidate()
	max := h.bufCap
	if h.fillHint > max {
		max = min(h.fillHint, maxDrainFill)
	}
	mode := h.q.cfg.Mode
	capKey := ^uint64(0)
	if mode != DistOnly {
		var ok bool
		h.buf, h.bufAnchor, capKey, ok = h.q.shared.FillCandidates(h.cursor, h.buf[:0], max)
		if !ok {
			return false // min caching off: no window to fill from
		}
	}
	if mode != SharedOnly {
		// Small fills spread their budget across blocks (delBufPerBlock);
		// drain-sized fills must not — after an InsertBatch published one
		// big block, an 8-entry allowance would put the guard at that
		// block's 9th key and truncate the whole fill to it.
		perBlock := delBufPerBlock
		if max > h.bufCap {
			perBlock = max
		}
		var guard uint64
		h.buf, guard = h.dist.FillMin(h.buf, perBlock, capKey)
		if guard < capKey {
			capKey = guard
		}
	}
	slices.SortFunc(h.buf, func(a, b item.Snap[V]) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		default:
			return 0
		}
	})
	// Truncate at the combined cap: shared entries above the dist guard
	// could skip a smaller local key, dist entries above the shared cap
	// could skip smaller shared keys. (Window entries dropped here were
	// consumed; the window's dirty rebuild recovers them.)
	n := len(h.buf)
	for n > 0 && h.buf[n-1].Key > capKey {
		n--
	}
	clear(h.buf[n:])
	h.buf = h.buf[:n]
	h.bufCapKey = capKey
	if n == 0 {
		return false
	}
	h.BufFills.Add(1)
	return true
}

// bufPeek returns the next live buffered candidate without consuming it, so
// PeekMin observes exactly the entry the next buffered pop would claim.
// Stale entries (taken elsewhere since the fill) are skipped destructively,
// and with a Drop callback, filter-positive entries are claimed and
// discarded in passing — identical to what the next pop would do — so the
// surviving head is a key TryDeleteMin can actually return. A false return
// means the buffer cannot serve (empty or invalidated); the caller decides
// whether to refill.
func (h *Handle[V]) bufPeek() (item.Snap[V], bool) {
	drop := h.q.cfg.Drop
	for h.bufPos < len(h.buf) {
		if h.q.cfg.Mode != DistOnly && !h.q.shared.PtrIs(h.bufAnchor) {
			h.bufInvalidate()
			return item.Snap[V]{}, false
		}
		e := h.buf[h.bufPos]
		if e.It.Version() == e.Ver {
			if drop == nil || !drop(e.It.Key(), e.It.Value()) {
				return e, true
			}
			if e.It.TryTakeAt(e.Ver) {
				h.deleted.Add(1)
			}
		}
		h.buf[h.bufPos] = item.Snap[V]{}
		h.bufPos++
	}
	return item.Snap[V]{}, false
}

// bufTryDeleteBounded is bufTryDelete restricted to keys at or below bound.
// The buffer pops ascending, so a head above the bound proves no buffered
// candidate qualifies; the head is left in place for a later unbounded pop
// and the caller falls to the slow path (which re-proves dryness against
// the live structure and runs the due-bounded spy).
func (h *Handle[V]) bufTryDeleteBounded(bound uint64) (key uint64, value V, seq uint64, hit bool) {
	drop := h.q.cfg.Drop
	for {
		if h.bufPos < len(h.buf) {
			if h.q.cfg.Mode != DistOnly && !h.q.shared.PtrIs(h.bufAnchor) {
				h.bufInvalidate()
				var zero V
				return 0, zero, 0, false
			}
			if h.buf[h.bufPos].Key > bound {
				var zero V
				return 0, zero, 0, false
			}
		}
		e, ok := h.bufNext()
		if !ok {
			if !h.bufRefill() {
				var zero V
				return 0, zero, 0, false
			}
			continue
		}
		if e.It.TryTakeAt(e.Ver) {
			h.deleted.Add(1)
			h.BufPops.Add(1)
			if drop == nil || !drop(e.It.Key(), e.It.Value()) {
				return e.It.Key(), e.It.Value(), e.It.Seq(), true
			}
		}
	}
}

// bufTryDelete pops buffered candidates until one take succeeds (skipping
// entries taken elsewhere and, with a Drop callback, discarding dropped
// items) or the buffer cannot serve (empty, invalidated, or refill found
// nothing). hit reports whether a key was returned.
func (h *Handle[V]) bufTryDelete() (key uint64, value V, seq uint64, hit bool) {
	drop := h.q.cfg.Drop
	for {
		e, ok := h.bufNext()
		if !ok {
			if !h.bufRefill() {
				var zero V
				return 0, zero, 0, false
			}
			continue
		}
		if e.It.TryTakeAt(e.Ver) {
			h.deleted.Add(1)
			h.BufPops.Add(1)
			if drop == nil || !drop(e.It.Key(), e.It.Value()) {
				return e.It.Key(), e.It.Value(), e.It.Seq(), true
			}
		}
	}
}
