package core

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/xrand"
)

func TestSetRelaxationTightensBound(t *testing.T) {
	q := combined(1024)
	h := q.NewHandle()
	src := xrand.NewSeeded(3)
	var live []uint64
	ins := func(key uint64) {
		h.Insert(key, 0)
		j := sort.Search(len(live), func(i int) bool { return live[i] >= key })
		live = append(live, 0)
		copy(live[j+1:], live[j:])
		live[j] = key
	}
	for i := 0; i < 2000; i++ {
		ins(src.Uint64() % 100000)
	}
	// Tighten to k=0 at run time; one insert applies the new DistLSM bound.
	q.SetRelaxation(0)
	if q.K() != 0 {
		t.Fatalf("K = %d after SetRelaxation(0)", q.K())
	}
	ins(src.Uint64() % 100000)
	// From here on, deletions must be exact (single handle, k=0).
	for len(live) > 0 {
		key, _, ok := h.TryDeleteMin()
		if !ok {
			t.Fatalf("empty with %d live keys", len(live))
		}
		if key != live[0] {
			t.Fatalf("after tightening to k=0: got %d, exact min %d", key, live[0])
		}
		live = live[1:]
	}
}

func TestSetRelaxationLoosens(t *testing.T) {
	q := combined(0)
	h := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, 0)
	}
	q.SetRelaxation(4096)
	if q.K() != 4096 {
		t.Fatalf("K = %d", q.K())
	}
	// Still conserves every key.
	seen := map[uint64]bool{}
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		if seen[k] {
			t.Fatalf("key %d twice", k)
		}
		seen[k] = true
	}
	if len(seen) != 100 {
		t.Fatalf("drained %d of 100 after loosening", len(seen))
	}
}

func TestSetRelaxationNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative k did not panic")
		}
	}()
	combined(4).SetRelaxation(-1)
}

func TestSetRelaxationDistOnlyNoop(t *testing.T) {
	q := NewQueue(Config[int]{Mode: DistOnly})
	q.SetRelaxation(7) // must not panic or change anything
	h := q.NewHandle()
	h.Insert(1, 0)
	if k, _, ok := h.TryDeleteMin(); !ok || k != 1 {
		t.Fatalf("DLSM broken after SetRelaxation: %d %v", k, ok)
	}
}

// TestSetRelaxationConcurrent reconfigures k while workers hammer the
// queue; conservation must hold across the transitions.
func TestSetRelaxationConcurrent(t *testing.T) {
	const workers = 4
	n := 4000
	if testing.Short() {
		n = 800
	}
	q := combined(256)
	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	stop := make(chan struct{})
	go func() {
		ks := []int{0, 4, 4096, 16, 256}
		src := xrand.NewSeeded(9)
		for {
			select {
			case <-stop:
				return
			default:
				q.SetRelaxation(ks[src.Intn(len(ks))])
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			base := uint64(id * n)
			for i := 0; i < n; i++ {
				h.Insert(base+uint64(i), id)
			}
			for {
				k, _, ok := h.TryDeleteMin()
				if !ok {
					return
				}
				results[id] = append(results[id], k)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	seen := make(map[uint64]int)
	total := 0
	for _, keys := range results {
		total += len(keys)
		for _, k := range keys {
			seen[k]++
		}
	}
	// Stragglers: drain with a fresh handle.
	h := q.NewHandle()
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		seen[k]++
		total++
	}
	if total != workers*n {
		t.Fatalf("extracted %d of %d during k reconfiguration", total, workers*n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d extracted %d times", k, c)
		}
	}
}

// TestStalledHandleDoesNotBlockOthers is the lock-freedom smoke test: a
// handle that inserted items and then stalls forever must not prevent other
// handles from completing inserts and deletes, and its items must remain
// reachable (the ρ-relaxation reachability requirement of §2).
func TestStalledHandleDoesNotBlockOthers(t *testing.T) {
	q := combined(16)
	stalled := q.NewHandle()
	for i := uint64(0); i < 500; i++ {
		stalled.Insert(i, 0)
	}
	// The stalled handle never runs again. Other handles must still see
	// and drain everything.
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < 200; i++ {
				h.Insert(10000+uint64(i), 0)
				h.TryDeleteMin()
			}
			for {
				k, _, ok := h.TryDeleteMin()
				if !ok {
					return
				}
				mu.Lock()
				seen[k] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// All of the stalled handle's keys must have been reachable: every key
	// 0..499 was either drained above or deleted during the mixed phase.
	if q.Size() != 0 {
		t.Fatalf("Size = %d with a stalled handle; items unreachable", q.Size())
	}
}
