package core

import (
	"testing"

	"klsm/internal/xrand"
)

// windowStats reads the cursor's candidate-window counters.
func windowStats[V any](h *Handle[V]) (builds, items int64) {
	return h.cursor.WindowBuilds.Load(), h.cursor.WindowItems.Load()
}

// TestWindowRebuildBoundedAtLargeK guards the candidate-window rebuild cost
// the ROADMAP flags for k ≥ 4096: the window materializes O(k) candidates
// per snapshot change, so under insert churn (every insert publishes a new
// shared snapshot in SharedOnly mode) the rebuild work per delete must stay
// within a small constant of k+1 — and must not explode to, say, a rebuild
// per candidate pop or windows unbounded by the pivot range. Until the lazy
// materialization follow-up lands, this test pins the current amortized
// cost so a regression (or the follow-up's improvement) is visible.
func TestWindowRebuildBoundedAtLargeK(t *testing.T) {
	const k = 8192
	q := NewQueue(Config[int]{K: k, Mode: SharedOnly, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(4242)

	const prefill = 3 * k / 2
	for i := 0; i < prefill; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
	}

	// Phase 1: insert churn — alternate insert and delete so every delete
	// faces a fresh snapshot and must rebuild its window.
	b0, i0 := windowStats(h)
	const churn = 512
	deletes := 0
	for i := 0; i < churn; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
		if _, _, ok := h.TryDeleteMin(); ok {
			deletes++
		}
	}
	builds, items := windowStats(h)
	builds, items = builds-b0, items-i0
	if deletes == 0 {
		t.Fatal("no deletes succeeded")
	}
	// One rebuild per snapshot change is the current design; inserts and
	// the deletes' own consolidations both change snapshots, so allow a
	// small constant per operation.
	if maxBuilds := int64(4 * churn); builds > maxBuilds {
		t.Fatalf("churn phase: %d window builds for %d ops (bound %d)", builds, churn, maxBuilds)
	}
	// The window is the pivot-range candidate set: O(k) per build. Guard
	// the amortized per-delete materialization cost at a small multiple of
	// k+1 — the known O(k) cost the lazy-materialization follow-up will
	// shrink, and the ceiling a regression would pierce.
	if maxItems := int64(4 * (k + 1) * deletes); items > maxItems {
		t.Fatalf("churn phase: %d candidates materialized for %d deletes (bound %d)",
			items, deletes, maxItems)
	}
	perDelete := items / int64(deletes)
	t.Logf("churn: %d builds, %d candidates, %d deletes (%d candidates/delete, k=%d)",
		builds, items, deletes, perDelete, k)

	// Phase 2: pure draining — with no snapshot churn between deletes, the
	// cached window must be popped across calls, NOT rebuilt per delete.
	// This is the min-caching property itself; without the cache (or with
	// an over-eager invalidation regression) builds track deletes 1:1.
	b1, i1 := windowStats(h)
	const drain = 2048
	drained := 0
	for i := 0; i < drain; i++ {
		if _, _, ok := h.TryDeleteMin(); ok {
			drained++
		}
	}
	builds2, items2 := windowStats(h)
	builds2, items2 = builds2-b1, items2-i1
	if drained != drain {
		t.Fatalf("drained %d of %d", drained, drain)
	}
	if maxBuilds := int64(drain / 8); builds2 > maxBuilds {
		t.Fatalf("drain phase: %d window builds for %d deletes (bound %d) — window not reused across calls",
			builds2, drain, maxBuilds)
	}
	t.Logf("drain: %d builds, %d candidates for %d deletes", builds2, items2, drained)
}
