package core

import (
	"testing"

	"klsm/internal/xrand"
)

// windowStats reads the cursor's candidate-window counters.
func windowStats[V any](h *Handle[V]) (builds, items int64) {
	return h.cursor.WindowBuilds.Load(), h.cursor.WindowItems.Load()
}

// TestWindowRebuildBoundedAtLargeK guards the candidate-window rebuild cost
// the ROADMAP flags for k ≥ 4096: the window materializes O(k) candidates
// per snapshot change, so under insert churn (every insert publishes a new
// shared snapshot in SharedOnly mode) the rebuild work per delete must stay
// within a small constant of k+1 — and must not explode to, say, a rebuild
// per candidate pop or windows unbounded by the pivot range. Until the lazy
// materialization follow-up lands, this test pins the current amortized
// cost so a regression (or the follow-up's improvement) is visible.
func TestWindowRebuildBoundedAtLargeK(t *testing.T) {
	const k = 8192
	q := NewQueue(Config[int]{K: k, Mode: SharedOnly, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(4242)

	const prefill = 3 * k / 2
	for i := 0; i < prefill; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
	}

	// Phase 1: insert churn — alternate insert and delete so every delete
	// faces a fresh snapshot and must rebuild its window.
	b0, i0 := windowStats(h)
	const churn = 512
	deletes := 0
	for i := 0; i < churn; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
		if _, _, ok := h.TryDeleteMin(); ok {
			deletes++
		}
	}
	builds, items := windowStats(h)
	builds, items = builds-b0, items-i0
	if deletes == 0 {
		t.Fatal("no deletes succeeded")
	}
	// One rebuild per snapshot change is the current design; inserts and
	// the deletes' own consolidations both change snapshots, so allow a
	// small constant per operation.
	if maxBuilds := int64(4 * churn); builds > maxBuilds {
		t.Fatalf("churn phase: %d window builds for %d ops (bound %d)", builds, churn, maxBuilds)
	}
	// The window is the pivot-range candidate set: O(k) per build. Guard
	// the amortized per-delete materialization cost at a small multiple of
	// k+1 — the known O(k) cost the lazy-materialization follow-up will
	// shrink, and the ceiling a regression would pierce.
	if maxItems := int64(4 * (k + 1) * deletes); items > maxItems {
		t.Fatalf("churn phase: %d candidates materialized for %d deletes (bound %d)",
			items, deletes, maxItems)
	}
	perDelete := items / int64(deletes)
	t.Logf("churn: %d builds, %d candidates, %d deletes (%d candidates/delete, k=%d)",
		builds, items, deletes, perDelete, k)

	// Phase 2: pure draining — with no snapshot churn between deletes, the
	// cached window must be popped across calls, NOT rebuilt per delete.
	// This is the min-caching property itself; without the cache (or with
	// an over-eager invalidation regression) builds track deletes 1:1.
	b1, i1 := windowStats(h)
	const drain = 2048
	drained := 0
	for i := 0; i < drain; i++ {
		if _, _, ok := h.TryDeleteMin(); ok {
			drained++
		}
	}
	builds2, items2 := windowStats(h)
	builds2, items2 = builds2-b1, items2-i1
	if drained != drain {
		t.Fatalf("drained %d of %d", drained, drain)
	}
	if maxBuilds := int64(drain / 8); builds2 > maxBuilds {
		t.Fatalf("drain phase: %d window builds for %d deletes (bound %d) — window not reused across calls",
			builds2, drain, maxBuilds)
	}
	t.Logf("drain: %d builds, %d candidates for %d deletes", builds2, items2, drained)
}

// windowCostCeiling is the pinned amortized window cost: candidates
// materialized per successful delete under worst-case insert churn at
// k = 8192. The incremental window (PR 6) repairs only changed blocks'
// pivot ranges, so the cost is O(new candidates), not O(k): measured ~19
// per delete where the eager rebuild paid ~k+1 ≈ 8193. The ceiling leaves
// ~6× headroom over the measured value while sitting ~32× below the old
// cost — loose enough to survive seed jitter, tight enough that any
// return to per-snapshot O(k) rebuilds fails loudly. CI greps for this
// test by name as the window-cost smoke check.
const windowCostCeiling = 128

// TestWindowCostCeiling pins the incremental candidate window's per-delete
// materialization cost at large k under insert churn — every insert in
// SharedOnly mode publishes a new shared snapshot, so every delete faces a
// changed snapshot and must repair. This is the E15 acceptance metric
// (≥ 5× below the eager-rebuild cost; the pinned ceiling is 64× below).
func TestWindowCostCeiling(t *testing.T) {
	const k = 8192
	q := NewQueue(Config[int]{K: k, Mode: SharedOnly, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(99)

	const prefill = 3 * k / 2
	for i := 0; i < prefill; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
	}

	_, i0 := windowStats(h)
	const churn = 512
	deletes := 0
	for i := 0; i < churn; i++ {
		h.Insert(rng.Uint64n(1<<40), i)
		if _, _, ok := h.TryDeleteMin(); ok {
			deletes++
		}
	}
	_, items := windowStats(h)
	items -= i0
	if deletes == 0 {
		t.Fatal("no deletes succeeded")
	}
	perDelete := items / int64(deletes)
	t.Logf("%d candidates over %d deletes: %d candidates/delete (ceiling %d, k=%d)",
		items, deletes, perDelete, windowCostCeiling, k)
	if perDelete > windowCostCeiling {
		t.Fatalf("window cost regressed: %d candidates/delete exceeds pinned ceiling %d (k=%d)",
			perDelete, windowCostCeiling, k)
	}
}

// TestBatchDrainWindowCost guards the E14 large-batch regression: a
// DrainMin of B ≥ k used to drain past the candidate window each call and
// pay an O(k) rebuild per refill, eating the batch-insert win. With the
// incremental window plus the drain-sized deletion buffer, the amortized
// window cost of an insert-churn batch loop at B ≥ k must stay a small
// constant per deleted key.
func TestBatchDrainWindowCost(t *testing.T) {
	const (
		k = 512
		b = 2 * k // B ≥ k: the regression regime
	)
	q := NewQueue(Config[int]{K: k, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(7)

	keys := make([]uint64, b)
	fill := func() {
		for i := range keys {
			keys[i] = rng.Uint64n(1 << 40)
		}
	}
	fill()
	h.InsertBatch(keys, nil)

	_, i0 := windowStats(h)
	deleted := 0
	const rounds = 16
	for r := 0; r < rounds; r++ {
		fill()
		h.InsertBatch(keys, nil) // churn: each round faces fresh snapshots
		deleted += h.DrainMin(b, func(uint64, int) {})
	}
	_, items := windowStats(h)
	items -= i0
	if deleted < rounds*b/2 {
		t.Fatalf("drained only %d of %d", deleted, rounds*b)
	}
	perKey := float64(items) / float64(deleted)
	t.Logf("%d candidates over %d drained keys: %.1f candidates/key (B=%d, k=%d)",
		items, deleted, perKey, b, k)
	// The eager rebuild paid ≥ k+1 candidates per refill with a refill per
	// ~buffer-size keys — tens of candidates per key. Pin well below that.
	if perKey > 8 {
		t.Fatalf("batch-drain window cost regressed: %.1f candidates/key (bound 8, B=%d ≥ k=%d)",
			perKey, b, k)
	}
}
