package core

import (
	"fmt"
	"testing"

	"klsm/internal/xrand"
)

// peekMatrix is the S-configuration grid PeekMin must behave identically
// on: the deletion buffer and min caching each toggled independently (the
// buffer requires caching, so {buf on, caching off} degenerates to buffer
// off — included anyway to pin the degeneration).
func peekMatrix() []struct {
	name string
	cfg  Config[uint64]
} {
	base := Config[uint64]{K: 64, Mode: Combined, LocalOrdering: true}
	grid := []struct {
		name string
		cfg  Config[uint64]
	}{
		{"buf+cache", base},
		{"nobuf+cache", base},
		{"buf+nocache", base},
		{"nobuf+nocache", base},
	}
	grid[1].cfg.DisableDeletionBuffer = true
	grid[2].cfg.DisableMinCaching = true
	grid[3].cfg.DisableDeletionBuffer = true
	grid[3].cfg.DisableMinCaching = true
	return grid
}

// TestPeekMinMatchesDelete is the single-handle consistency contract: with
// one handle and no concurrent mutation, every PeekMin must return exactly
// the key/value the immediately following TryDeleteMin pops — in every
// buffer × min-caching configuration. This pins the PR 10 fix where the
// buffered fast path and the peek slow path could disagree (peek rescanned
// the structure while delete popped from the buffer).
func TestPeekMinMatchesDelete(t *testing.T) {
	for _, tc := range peekMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue(tc.cfg)
			h := q.NewHandle()
			rng := xrand.NewSeeded(42)
			const n = 5000
			for i := 0; i < n; i++ {
				h.Insert(rng.Uint64n(1<<40), uint64(i))
			}
			for popped := 0; popped < n; popped++ {
				pk, pv, pok := h.PeekMin()
				if !pok {
					t.Fatalf("pop %d: PeekMin empty with %d items left", popped, n-popped)
				}
				dk, dv, dok := h.TryDeleteMin()
				if !dok || dk != pk || dv != pv {
					t.Fatalf("pop %d: PeekMin (%d,%d) but TryDeleteMin (%d,%d,%v)",
						popped, pk, pv, dk, dv, dok)
				}
			}
			if _, _, ok := h.PeekMin(); ok {
				t.Fatalf("PeekMin non-empty after full drain")
			}
		})
	}
}

// TestPeekMinInterleavedInserts re-checks peek/delete agreement when
// inserts interleave with the peek-then-delete pairs: inserts invalidate
// the deletion buffer and the min caches, which is exactly where a stale
// peek would slip through.
func TestPeekMinInterleavedInserts(t *testing.T) {
	for _, tc := range peekMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue(tc.cfg)
			h := q.NewHandle()
			rng := xrand.NewSeeded(7)
			live := 0
			for op := 0; op < 20_000; op++ {
				if live == 0 || rng.Intn(3) > 0 {
					h.Insert(rng.Uint64n(1<<32), uint64(op))
					live++
					continue
				}
				pk, pv, pok := h.PeekMin()
				dk, dv, dok := h.TryDeleteMin()
				if pok != dok || pk != dk || pv != dv {
					t.Fatalf("op %d: PeekMin (%d,%d,%v) != TryDeleteMin (%d,%d,%v)",
						op, pk, pv, pok, dk, dv, dok)
				}
				if dok {
					live--
				}
			}
		})
	}
}

// TestPeekMinNeverSurfacesDropped installs a Drop filter and checks that
// PeekMin never returns a filtered item in any configuration — the buffered
// path must apply the same drop check the slow path does, claiming
// filter-positive buffer heads instead of reporting them.
func TestPeekMinNeverSurfacesDropped(t *testing.T) {
	for _, tc := range peekMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			// Drop all odd values.
			cfg := tc.cfg
			cfg.Drop = func(_ uint64, v uint64) bool { return v%2 == 1 }
			q := NewQueue(cfg)
			h := q.NewHandle()
			rng := xrand.NewSeeded(99)
			const n = 4000
			evens := 0
			for i := 0; i < n; i++ {
				h.Insert(rng.Uint64n(1<<30), uint64(i))
				if i%2 == 0 {
					evens++
				}
			}
			seen := 0
			for {
				pk, pv, pok := h.PeekMin()
				if pok && pv%2 == 1 {
					t.Fatalf("PeekMin surfaced dropped value %d (key %d)", pv, pk)
				}
				dk, dv, dok := h.TryDeleteMin()
				if pok != dok || pk != dk || pv != dv {
					t.Fatalf("PeekMin (%d,%d,%v) != TryDeleteMin (%d,%d,%v)",
						pk, pv, pok, dk, dv, dok)
				}
				if !dok {
					break
				}
				if dv%2 == 1 {
					t.Fatalf("TryDeleteMin surfaced dropped value %d", dv)
				}
				seen++
			}
			if seen != evens {
				t.Fatalf("drained %d even values, want %d", seen, evens)
			}
		})
	}
}

// TestPeekMinIdempotent: consecutive peeks with no mutation in between must
// agree with each other in every configuration (a peek must not consume or
// rotate buffered candidates).
func TestPeekMinIdempotent(t *testing.T) {
	for _, tc := range peekMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue(tc.cfg)
			h := q.NewHandle()
			rng := xrand.NewSeeded(3)
			for i := 0; i < 1000; i++ {
				h.Insert(rng.Uint64(), uint64(i))
			}
			for i := 0; i < 200; i++ {
				k1, v1, ok1 := h.PeekMin()
				k2, v2, ok2 := h.PeekMin()
				if k1 != k2 || v1 != v2 || ok1 != ok2 {
					t.Fatalf("consecutive peeks disagree: (%d,%d,%v) then (%d,%d,%v)",
						k1, v1, ok1, k2, v2, ok2)
				}
				h.TryDeleteMin()
			}
		})
	}
}

// TestPeekMinAcrossHandles: a peek on one handle while another handle owns
// most of the structure goes through spy copies and shared snapshots
// rather than the owner-local caches. Cross-handle, peek and the following
// delete may legitimately return different keys — both are relaxed
// observations and delete's spy can surface a different candidate — so the
// contract checked here is weaker than the single-handle one: peek and
// delete must agree on emptiness at every step, and the reader must drain
// exactly the inserted population.
func TestPeekMinAcrossHandles(t *testing.T) {
	for _, tc := range peekMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQueue(tc.cfg)
			writer, reader := q.NewHandle(), q.NewHandle()
			rng := xrand.NewSeeded(11)
			const n = 3000
			for i := 0; i < n; i++ {
				writer.Insert(rng.Uint64n(1<<20), uint64(i))
			}
			popped := 0
			for {
				_, _, pok := reader.PeekMin()
				_, _, dok := reader.TryDeleteMin()
				if pok != dok {
					t.Fatalf("pop %d: PeekMin ok=%v but TryDeleteMin ok=%v", popped, pok, dok)
				}
				if !dok {
					break
				}
				popped++
			}
			if popped != n {
				t.Fatalf("reader drained %d of %d", popped, n)
			}
		})
	}
}

func init() {
	// Guard against the matrix silently collapsing: the four entries must
	// be distinct configurations.
	seen := map[string]bool{}
	for _, tc := range peekMatrix() {
		key := fmt.Sprintf("%v/%v", tc.cfg.DisableDeletionBuffer, tc.cfg.DisableMinCaching)
		if seen[key] {
			panic("peekMatrix: duplicate configuration " + tc.name)
		}
		seen[key] = true
	}
}
