package core

import (
	"sync"
	"testing"

	"klsm/internal/xrand"
)

// drainAll deletes until the queue reports empty, returning the number of
// successful deletes. Single-threaded (call after workers have joined).
func drainAll[V any](t *testing.T, q *Queue[V], h *Handle[V]) int64 {
	t.Helper()
	var deletes int64
	misses := 0
	for q.Size() > 0 {
		if _, _, ok := h.TryDeleteMin(); ok {
			deletes++
			misses = 0
			continue
		}
		misses++
		if misses > 1000 {
			t.Fatalf("queue reports Size=%d but TryDeleteMin keeps failing", q.Size())
		}
	}
	return deletes
}

// TestReclaimAccountingSequential is the exactly-once ledger in its
// simplest setting: one handle, insert/delete everything, quiesce, and
// every taken item must have been released to the item pool exactly once.
func TestReclaimAccountingSequential(t *testing.T) {
	q := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	rng := xrand.NewSeeded(17)

	const n = 20_000
	var inserted int64
	for i := 0; i < n; i++ {
		h.Insert(rng.Uint64(), i)
		inserted++
	}
	deleted := drainAll(t, q, h)
	if deleted != inserted {
		t.Fatalf("deleted %d of %d inserted", deleted, inserted)
	}
	q.Quiesce()
	rs := q.ReclaimStats()
	if rs.ItemPuts != inserted {
		t.Fatalf("item releases = %d, want exactly %d (reclaimed=%d leaked blocks=%d)",
			rs.ItemPuts, inserted, rs.ItemsReclaimed, rs.LimboLeaked)
	}
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero (reachability bug)", rs.ItemsLostLive)
	}
	if rs.LimboLeaked != 0 {
		t.Fatalf("%d blocks leaked at a limbo cap in a single-threaded run", rs.LimboLeaked)
	}

	// A second round must be served largely from recycled items: the §4.4
	// loop is closed when inserts observe reuse.
	for i := 0; i < n; i++ {
		h.Insert(rng.Uint64(), i)
	}
	drainAll(t, q, h)
	q.Quiesce()
	rs2 := q.ReclaimStats()
	if rs2.ItemReuses == 0 {
		t.Fatal("no insert was served from a recycled item")
	}
	if rs2.ItemPuts != 2*inserted {
		t.Fatalf("after round two: releases = %d, want %d", rs2.ItemPuts, 2*inserted)
	}
}

// TestReclaimAccountingStress is the acceptance stress test: several
// goroutines churn the queue concurrently (exercising spy copies, shared
// CAS races, and the limbo paths), then the queue is emptied and quiesced —
// and the ledger must still balance exactly: one release per insert, no
// double-free (Unref panics on underflow, item.Pool.Put panics on live
// items), no lost-live items. Run under -race in CI.
func TestReclaimAccountingStress(t *testing.T) {
	const (
		workers = 4
		ops     = 30_000
	)
	q := NewQueue(Config[uint64]{K: 128, Mode: Combined, LocalOrdering: true})
	handles := make([]*Handle[uint64], workers)
	for i := range handles {
		handles[i] = q.NewHandle()
	}

	var wg sync.WaitGroup
	inserts := make([]int64, workers)
	deletes := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := handles[w]
			rng := xrand.NewSeeded(uint64(w)*977 + 13)
			for i := 0; i < ops; i++ {
				// Insert-biased so the end state is non-trivial to drain.
				if rng.Intn(5) < 3 {
					h.Insert(rng.Uint64(), uint64(i))
					inserts[w]++
				} else if _, _, ok := h.TryDeleteMin(); ok {
					deletes[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	var inserted, deleted int64
	for w := 0; w < workers; w++ {
		inserted += inserts[w]
		deleted += deletes[w]
	}
	deleted += drainAll(t, q, handles[0])
	if deleted != inserted {
		t.Fatalf("deleted %d of %d inserted", deleted, inserted)
	}

	q.Quiesce()
	rs := q.ReclaimStats()
	t.Logf("inserted=%d releases=%d reuses=%d slabAllocs=%d limboLeaked=%d",
		inserted, rs.ItemPuts, rs.ItemReuses, rs.ItemSlabAllocs, rs.LimboLeaked)
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero (reachability bug)", rs.ItemsLostLive)
	}
	if rs.LimboLeaked != 0 {
		// The caps are sized so a run this small never starves; a leak here
		// means retires outpaced quiescence unexpectedly.
		t.Fatalf("%d blocks leaked at a limbo cap", rs.LimboLeaked)
	}
	if rs.ItemPuts != inserted {
		t.Fatalf("item releases = %d, want exactly %d", rs.ItemPuts, inserted)
	}
}

// TestReclaimToggleSemantics: WithItemReclamation must change only where
// item memory goes, never observable queue behavior.
func TestReclaimToggleSemantics(t *testing.T) {
	on := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true})
	off := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true,
		DisableItemReclamation: true})
	hOn, hOff := on.NewHandle(), off.NewHandle()
	rng := xrand.NewSeeded(29)
	for op := 0; op < 20_000; op++ {
		if rng.Bool() {
			k := rng.Uint64n(1 << 30)
			hOn.Insert(k, int(k))
			hOff.Insert(k, int(k))
		} else {
			k1, v1, ok1 := hOn.TryDeleteMin()
			k2, v2, ok2 := hOff.TryDeleteMin()
			if ok1 != ok2 || k1 != k2 || v1 != v2 {
				t.Fatalf("op %d: reclaiming (%d,%d,%v) != non-reclaiming (%d,%d,%v)",
					op, k1, v1, ok1, k2, v2, ok2)
			}
		}
	}
	if on.Size() != off.Size() {
		t.Fatalf("Size %d != %d", on.Size(), off.Size())
	}
	// The non-reclaiming queue must not have recycled a single item.
	rsOff := off.ReclaimStats()
	if rsOff.ItemPuts != 0 || rsOff.ItemsReclaimed != 0 {
		t.Fatalf("reclamation disabled but %d items were recycled", rsOff.ItemPuts)
	}
}

// TestReclaimSurvivesClose: closing a handle drains its items to the shared
// structure and retires its blocks; the remaining handles must still be able
// to delete everything, and the ledger must not double-release. (Item
// references parked in the closing handle's pool may legitimately fall to
// the GC — exactly-once means never-twice here, with the release count
// bounded by the insert count.)
func TestReclaimSurvivesClose(t *testing.T) {
	q := NewQueue(Config[int]{K: 32, Mode: Combined, LocalOrdering: true})
	h1, h2 := q.NewHandle(), q.NewHandle()
	rng := xrand.NewSeeded(41)
	const n = 5_000
	for i := 0; i < n; i++ {
		h1.Insert(rng.Uint64(), i)
		h2.Insert(rng.Uint64(), i)
	}
	h1.Close()
	deleted := drainAll(t, q, h2)
	if deleted != 2*n {
		t.Fatalf("deleted %d of %d", deleted, 2*n)
	}
	q.Quiesce()
	rs := q.ReclaimStats()
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero", rs.ItemsLostLive)
	}
	if rs.ItemPuts > 2*n {
		t.Fatalf("releases %d exceed inserts %d (double free)", rs.ItemPuts, 2*n)
	}
}

// TestReclaimAccountingFilteredMerges extends the acceptance stress test to
// the §4.5 lazy-deletion path: a Drop filter backed by a concurrently
// mutated cancel-set claims items during merges, deletes, spies and
// explicit Compact passes — and the refcount ledger must still balance
// exactly. Every insert acquires one lineage reference; whether the item
// leaves by TryDeleteMin or by a filter claim inside a merge, it must be
// released exactly once: ItemPuts == inserted, no live item freed, no limbo
// leak. Run under -race in CI (the name keeps it inside the TestReclaim
// quality regex).
func TestReclaimAccountingFilteredMerges(t *testing.T) {
	const (
		workers = 4
		ops     = 20_000
	)
	// The cancel-set the filter consults. Values are globally unique
	// (worker*ops + i), so a set of values identifies items exactly.
	var canceled sync.Map
	drop := func(_ uint64, v uint64) bool {
		_, ok := canceled.Load(v)
		return ok
	}
	q := NewQueue(Config[uint64]{K: 128, Mode: Combined, LocalOrdering: true, Drop: drop})
	handles := make([]*Handle[uint64], workers)
	for i := range handles {
		handles[i] = q.NewHandle()
	}

	var wg sync.WaitGroup
	inserts := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := handles[w]
			rng := xrand.NewSeeded(uint64(w)*1871 + 7)
			// Values this worker inserted and may later cancel.
			var mine []uint64
			for i := 0; i < ops; i++ {
				switch r := rng.Intn(10); {
				case r < 4: // insert
					v := uint64(w*ops + i)
					h.Insert(rng.Uint64(), v)
					mine = append(mine, v)
					inserts[w]++
				case r < 7: // cancel one of our own (popped-already is harmless)
					if len(mine) > 0 {
						j := rng.Intn(len(mine))
						canceled.Store(mine[j], struct{}{})
						mine[j] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
				case r < 9: // delete (the drop-aware path claims filtered items)
					h.TryDeleteMin()
				default:
					if i%4096 == 1 {
						// Occasional full purge concurrent with everything
						// else: dist CopyDropIn swaps and shared Purge CAS
						// races are the paths under test.
						h.Compact()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var inserted int64
	for w := 0; w < workers; w++ {
		inserted += inserts[w]
	}

	// Drain to physical emptiness. TryDeleteMin never surfaces filtered
	// items and Size() drifts under merge-time claims, so alternate
	// surface-drains with Compact passes until the physical footprint is
	// gone instead of trusting either signal alone.
	h := handles[0]
	for round := 0; ; round++ {
		misses := 0
		for misses < 3 {
			if _, _, ok := h.TryDeleteMin(); ok {
				misses = 0
			} else {
				misses++
			}
		}
		// Every handle compacts: a handle's Compact purges its own dist
		// (plus the shared structure), and other handles' dists hold
		// taken-by-spy slots and filter-positive items h0 cannot reach.
		for _, hh := range handles {
			hh.Compact()
		}
		if q.FootprintItems() == 0 {
			break
		}
		if round > 100 {
			t.Fatalf("footprint stuck at %d items after %d drain+compact rounds",
				q.FootprintItems(), round)
		}
	}

	q.Quiesce()
	rs := q.ReclaimStats()
	t.Logf("inserted=%d releases=%d reuses=%d limboLeaked=%d",
		inserted, rs.ItemPuts, rs.ItemReuses, rs.LimboLeaked)
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero (reachability bug)", rs.ItemsLostLive)
	}
	if rs.LimboLeaked != 0 {
		t.Fatalf("%d blocks leaked at a limbo cap", rs.LimboLeaked)
	}
	if rs.ItemPuts != inserted {
		t.Fatalf("item releases = %d, want exactly %d (filtered claims must release exactly once)", rs.ItemPuts, inserted)
	}
}
