package core

// QueueStats aggregates structural counters across all handles, exposing
// the data the ablation experiments (DESIGN.md E6–E8) are built on. The
// snapshot is taken without stopping the queue, so counters from handles
// that are mid-operation may be one event behind.
type QueueStats struct {
	// Handles is the number of registered handles (T in ρ = T·k).
	Handles int
	// Inserted and Deleted are the lifetime operation totals.
	Inserted int64
	Deleted  int64
	// Merges counts block merges across all DistLSMs.
	Merges int64
	// Overflows counts blocks transferred from DistLSMs to the shared
	// k-LSM (the batching frequency of §4.3).
	Overflows int64
	// Spies counts successful spy operations; SpiedBlocks the blocks
	// copied by them (§4.2).
	Spies       int64
	SpiedBlocks int64
	// SpyCalls counts delete-min rounds that resorted to spying.
	SpyCalls int64
	// Consolidates counts DistLSM consolidation passes.
	Consolidates int64
	// SharedConsolidatePushes counts successfully published consolidations
	// of the shared k-LSM; SharedInsertRetries counts failed insert CAS
	// attempts (the contention measure of §4.1's bottleneck discussion).
	SharedConsolidatePushes int64
	SharedInsertRetries     int64
	// WindowBuilds counts full candidate-window materializations,
	// WindowRepairs incremental ones, and WindowItems the total candidate
	// entries materialized by either — the per-delete window cost the
	// incremental window bounds (the E14/E15 metric).
	WindowBuilds  int64
	WindowRepairs int64
	WindowItems   int64
	// BufferFills/BufferPops/BufferFlushes count deletion-buffer refills,
	// deletes served from the buffer, and invalidation flushes that
	// discarded unconsumed entries.
	BufferFills   int64
	BufferPops    int64
	BufferFlushes int64
	// HintSkips counts shared-side queries skipped on a valid skip-shared
	// hint; HintSticks the sticky subset granted by minimum-key
	// re-validation across a shared publication (MultiQueue-style
	// stickiness).
	HintSkips  int64
	HintSticks int64
}

// ReclaimStats aggregates the §4.4 item-reclamation counters across all
// open handles. Unlike Stats, the underlying counters are owner-written
// plain fields, so ReclaimStats must only be called while no handle is
// operating (the Quiesce contract); it exists for the accounting tests and
// shutdown diagnostics.
type ReclaimStats struct {
	// ItemsReclaimed counts taken items reclaimed by slab zero crossings
	// and quiesce sweeps; ItemPuts is the same event counted at the item
	// pools. The two agree for the combined queue (every pool put is a
	// reclaim).
	ItemsReclaimed int64
	ItemPuts       int64
	// ItemReuses counts inserts served from recycled items; ItemSlabAllocs
	// counts fresh item slab allocations.
	ItemReuses     int64
	ItemSlabAllocs int64
	// ItemsLostLive counts final releases that found the item still live —
	// always zero unless reachability is broken somewhere (asserted by the
	// accounting tests).
	ItemsLostLive int64
	// LimboLeaked counts blocks dropped at a limbo cap with their item
	// references unreleased (per-handle pools plus the shared structure) —
	// the one GC fallback left with reclamation on.
	LimboLeaked int64
}

// ReclaimStats returns the aggregated reclamation counters, including
// those of closed handles (accumulated at close) and the queue's reaper.
// Callers must guarantee no handle is concurrently operating; see the type
// comment.
func (q *Queue[V]) ReclaimStats() ReclaimStats {
	var rs ReclaimStats
	for _, h := range q.handlesSnapshot() {
		ps := h.pool.Stats()
		rs.ItemsReclaimed += ps.ItemsReclaimed
		rs.ItemsLostLive += ps.ItemsLostLive
		rs.LimboLeaked += ps.LimboLeaked
		rs.ItemPuts += h.items.Puts()
		a, r := h.items.Stats()
		rs.ItemSlabAllocs += a
		rs.ItemReuses += r
	}
	q.reaperMu.Lock()
	cr := q.closedReclaim
	if q.reaperPool != nil {
		ps := q.reaperPool.Stats()
		cr.ItemsReclaimed += ps.ItemsReclaimed
		cr.ItemsLostLive += ps.ItemsLostLive
		cr.LimboLeaked += ps.LimboLeaked
		cr.ItemPuts += q.reaperItems.Puts()
	}
	q.reaperMu.Unlock()
	rs.ItemsReclaimed += cr.ItemsReclaimed
	rs.ItemPuts += cr.ItemPuts
	rs.ItemReuses += cr.ItemReuses
	rs.ItemSlabAllocs += cr.ItemSlabAllocs
	rs.ItemsLostLive += cr.ItemsLostLive
	rs.LimboLeaked += cr.LimboLeaked
	rs.LimboLeaked += q.shared.LimboLeaked()
	return rs
}

// Stats returns an aggregated snapshot of the queue's structural counters.
func (q *Queue[V]) Stats() QueueStats {
	q.mu.Lock()
	hs := append([]*Handle[V](nil), q.handles...)
	q.mu.Unlock()
	var s QueueStats
	s.Handles = len(hs)
	for _, h := range hs {
		s.Inserted += h.inserted.Load()
		s.Deleted += h.deleted.Load()
		ds := h.dist.Stats()
		s.Merges += ds.Merges
		s.Overflows += ds.Overflows
		s.Spies += ds.Spies
		s.SpiedBlocks += ds.SpiedBlocks
		s.Consolidates += ds.Consolidates
		s.SpyCalls += h.SpyCalls.Load()
		s.SharedConsolidatePushes += h.cursor.ConsolidatePushes.Load()
		s.SharedInsertRetries += h.cursor.InsertRetries.Load()
		s.WindowBuilds += h.cursor.WindowBuilds.Load()
		s.WindowRepairs += h.cursor.WindowRepairs.Load()
		s.WindowItems += h.cursor.WindowItems.Load()
		s.BufferFills += h.BufFills.Load()
		s.BufferPops += h.BufPops.Load()
		s.BufferFlushes += h.BufFlushes.Load()
		s.HintSkips += h.cursor.HintSkips.Load()
		s.HintSticks += h.cursor.HintSticks.Load()
	}
	return s
}
