package core

// QueueStats aggregates structural counters across all handles, exposing
// the data the ablation experiments (DESIGN.md E6–E8) are built on. The
// snapshot is taken without stopping the queue, so counters from handles
// that are mid-operation may be one event behind.
type QueueStats struct {
	// Handles is the number of registered handles (T in ρ = T·k).
	Handles int
	// Inserted and Deleted are the lifetime operation totals.
	Inserted int64
	Deleted  int64
	// Merges counts block merges across all DistLSMs.
	Merges int64
	// Overflows counts blocks transferred from DistLSMs to the shared
	// k-LSM (the batching frequency of §4.3).
	Overflows int64
	// Spies counts successful spy operations; SpiedBlocks the blocks
	// copied by them (§4.2).
	Spies       int64
	SpiedBlocks int64
	// SpyCalls counts delete-min rounds that resorted to spying.
	SpyCalls int64
	// Consolidates counts DistLSM consolidation passes.
	Consolidates int64
	// SharedConsolidatePushes counts successfully published consolidations
	// of the shared k-LSM; SharedInsertRetries counts failed insert CAS
	// attempts (the contention measure of §4.1's bottleneck discussion).
	SharedConsolidatePushes int64
	SharedInsertRetries     int64
}

// Stats returns an aggregated snapshot of the queue's structural counters.
func (q *Queue[V]) Stats() QueueStats {
	q.mu.Lock()
	hs := append([]*Handle[V](nil), q.handles...)
	q.mu.Unlock()
	var s QueueStats
	s.Handles = len(hs)
	for _, h := range hs {
		s.Inserted += h.inserted.Load()
		s.Deleted += h.deleted.Load()
		ds := h.dist.Stats()
		s.Merges += ds.Merges
		s.Overflows += ds.Overflows
		s.Spies += ds.Spies
		s.SpiedBlocks += ds.SpiedBlocks
		s.Consolidates += ds.Consolidates
		s.SpyCalls += h.SpyCalls.Load()
		s.SharedConsolidatePushes += h.cursor.ConsolidatePushes.Load()
		s.SharedInsertRetries += h.cursor.InsertRetries.Load()
	}
	return s
}
