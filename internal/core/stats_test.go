package core

import (
	"sync"
	"testing"
)

func TestStatsQuiescent(t *testing.T) {
	q := combined(4) // small k: plenty of overflows and merges
	h := q.NewHandle()
	for i := uint64(0); i < 1000; i++ {
		h.Insert(i, 0)
	}
	consumer := q.NewHandle()
	for {
		if _, _, ok := consumer.TryDeleteMin(); !ok {
			break
		}
	}
	s := q.Stats()
	if s.Handles != 2 {
		t.Fatalf("Handles = %d", s.Handles)
	}
	if s.Inserted != 1000 || s.Deleted != 1000 {
		t.Fatalf("Inserted/Deleted = %d/%d", s.Inserted, s.Deleted)
	}
	if s.Merges == 0 {
		t.Fatal("no merges recorded for 1000 inserts at k=4")
	}
	if s.Overflows == 0 {
		t.Fatal("no overflows recorded at k=4")
	}
	if s.SpyCalls == 0 {
		t.Fatal("consumer must have spied at least once")
	}
}

// TestStatsConcurrentReads verifies Stats is safe to call while the queue
// is under load (run with -race).
func TestStatsConcurrentReads(t *testing.T) {
	q := combined(64)
	var workers sync.WaitGroup
	for w := 0; w < 3; w++ {
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			h := q.NewHandle()
			for i := 0; i < 20000; i++ {
				if i%2 == 0 {
					h.Insert(uint64(id*20000+i), 0)
				} else {
					h.TryDeleteMin()
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// The value itself is racy-by-design (per-handle counters
				// are read at different instants); this loop exists to let
				// the race detector check the memory safety of concurrent
				// Stats calls.
				_ = q.Stats()
			}
		}
	}()
	workers.Wait()
	close(stop)
	reader.Wait()
}
