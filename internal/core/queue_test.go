package core

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/xrand"
)

func combined(k int) *Queue[int] {
	return NewQueue(Config[int]{K: k, Mode: Combined, LocalOrdering: true})
}

func drainHandle(h *Handle[int]) []uint64 {
	var out []uint64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

func TestEmptyQueue(t *testing.T) {
	for _, mode := range []Mode{Combined, DistOnly, SharedOnly} {
		q := NewQueue(Config[int]{K: 4, Mode: mode, LocalOrdering: true})
		h := q.NewHandle()
		if _, _, ok := h.TryDeleteMin(); ok {
			t.Fatalf("mode %v: TryDeleteMin on empty succeeded", mode)
		}
		if _, _, ok := h.PeekMin(); ok {
			t.Fatalf("mode %v: PeekMin on empty succeeded", mode)
		}
		if q.Size() != 0 {
			t.Fatalf("mode %v: Size = %d", mode, q.Size())
		}
	}
}

func TestSingleHandleExactWithKZero(t *testing.T) {
	q := combined(0)
	h := q.NewHandle()
	keys := []uint64{5, 3, 9, 1, 7, 2, 8}
	for _, k := range keys {
		h.Insert(k, int(k))
	}
	if q.Size() != len(keys) {
		t.Fatalf("Size = %d, want %d", q.Size(), len(keys))
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, w := range want {
		k, v, ok := h.TryDeleteMin()
		if !ok || k != w {
			t.Fatalf("got %d (%v), want %d", k, ok, w)
		}
		if uint64(v) != k {
			t.Fatalf("payload mismatch: key %d value %d", k, v)
		}
	}
}

// TestSingleHandleRankBound: with one handle, delete-min must return a key of
// rank <= k among live keys (ρ = 1·k).
func TestSingleHandleRankBound(t *testing.T) {
	for _, k := range []int{0, 4, 64, 256} {
		q := combined(k)
		h := q.NewHandle()
		src := xrand.NewSeeded(uint64(k)*31 + 5)
		var live []uint64
		for i := 0; i < 2000; i++ {
			key := src.Uint64() % 100000
			h.Insert(key, 0)
			j := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			live = append(live, 0)
			copy(live[j+1:], live[j:])
			live[j] = key
		}
		for len(live) > 0 {
			key, _, ok := h.TryDeleteMin()
			if !ok {
				t.Fatalf("k=%d: empty with %d live keys", k, len(live))
			}
			rank := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if rank > k {
				t.Fatalf("k=%d: key %d has rank %d > k", k, key, rank)
			}
			j := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if j == len(live) || live[j] != key {
				t.Fatalf("k=%d: deleted key %d not live", k, key)
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
}

// TestLocalOrderingPerHandle: a handle deletes its own inserts in exact
// order even when other handles flood the queue with smaller structures.
func TestLocalOrderingPerHandle(t *testing.T) {
	q := combined(1024)
	noise := q.NewHandle()
	mine := q.NewHandle()
	for i := uint64(0); i < 5000; i++ {
		noise.Insert(100000+i, 0)
	}
	myKeys := []uint64{50, 10, 30, 20, 40}
	for _, k := range myKeys {
		mine.Insert(k, 0)
	}
	// mine's keys are globally smallest; local ordering guarantees mine
	// receives them in ascending order.
	for _, want := range []uint64{10, 20, 30, 40, 50} {
		k, _, ok := mine.TryDeleteMin()
		if !ok || k != want {
			t.Fatalf("local ordering violated: got %d (%v), want %d", k, ok, want)
		}
	}
}

func TestSpyFindsOtherHandlesItems(t *testing.T) {
	q := NewQueue(Config[int]{K: 1 << 20, Mode: Combined, LocalOrdering: true})
	producer := q.NewHandle()
	consumer := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		producer.Insert(i, int(i))
	}
	// With a huge k nothing overflowed to the shared k-LSM, so the consumer
	// must spy to see anything.
	got := drainHandle(consumer)
	if len(got) != 100 {
		t.Fatalf("consumer extracted %d of 100 items via spying", len(got))
	}
	if consumer.SpyCalls.Load() == 0 {
		t.Fatal("consumer never spied")
	}
}

func TestDistOnlyMode(t *testing.T) {
	q := NewQueue(Config[int]{Mode: DistOnly})
	h := q.NewHandle()
	src := xrand.NewSeeded(3)
	const n = 2000
	for i := 0; i < n; i++ {
		h.Insert(src.Uint64()%10000, 0)
	}
	got := drainHandle(h)
	if len(got) != n {
		t.Fatalf("drained %d of %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("DistOnly single handle drain not sorted (local ordering broken)")
	}
}

func TestSharedOnlyMode(t *testing.T) {
	q := NewQueue(Config[int]{K: 8, Mode: SharedOnly, LocalOrdering: true})
	h := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, 0)
	}
	got := drainHandle(h)
	if len(got) != 100 {
		t.Fatalf("drained %d of 100", len(got))
	}
}

// TestConservationConcurrent: the fundamental exactly-once test across
// modes and relaxation settings under real concurrency.
func TestConservationConcurrent(t *testing.T) {
	workers := 8
	n := 5000
	if testing.Short() {
		n = 1000
	}
	configs := []Config[int]{
		{K: 0, Mode: Combined, LocalOrdering: true},
		{K: 4, Mode: Combined, LocalOrdering: true},
		{K: 256, Mode: Combined, LocalOrdering: true},
		{K: 4096, Mode: Combined, LocalOrdering: false},
		{Mode: DistOnly},
		{K: 16, Mode: SharedOnly, LocalOrdering: true},
	}
	for _, cfg := range configs {
		q := NewQueue(cfg)
		var wg sync.WaitGroup
		results := make([][]uint64, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				h := q.NewHandle()
				base := uint64(id * n)
				for i := 0; i < n; i++ {
					h.Insert(base+uint64(i), id)
				}
				for {
					k, _, ok := h.TryDeleteMin()
					if !ok {
						return
					}
					results[id] = append(results[id], k)
				}
			}(w)
		}
		wg.Wait()
		seen := make(map[uint64]int)
		total := 0
		for _, keys := range results {
			total += len(keys)
			for _, k := range keys {
				seen[k]++
			}
		}
		if total != workers*n {
			t.Fatalf("cfg %+v: extracted %d keys, want %d", cfg, total, workers*n)
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("cfg %+v: key %d extracted %d times", cfg, k, c)
			}
		}
		if q.Size() != 0 {
			t.Fatalf("cfg %+v: Size = %d after drain", cfg, q.Size())
		}
	}
}

// TestMixedWorkloadConcurrent exercises interleaved inserts and deletes (the
// throughput benchmark's access pattern) and then checks conservation.
func TestMixedWorkloadConcurrent(t *testing.T) {
	const workers = 6
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	q := combined(256)
	var wg sync.WaitGroup
	inserted := make([]int, workers)
	deleted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			src := xrand.NewSeeded(uint64(id) + 99)
			for i := 0; i < ops; i++ {
				if src.Bool() {
					h.Insert(src.Uint64()%1_000_000, id)
					inserted[id]++
				} else if _, _, ok := h.TryDeleteMin(); ok {
					deleted[id]++
				}
			}
		}(w)
	}
	wg.Wait()
	totalIns, totalDel := 0, 0
	for w := 0; w < workers; w++ {
		totalIns += inserted[w]
		totalDel += deleted[w]
	}
	// Drain the remainder with a fresh handle.
	h := q.NewHandle()
	rest := len(drainHandle(h))
	if totalDel+rest != totalIns {
		t.Fatalf("conservation violated: inserted %d, deleted %d + drained %d", totalIns, totalDel, rest)
	}
}

func TestRhoAndHandles(t *testing.T) {
	q := combined(16)
	if q.Rho() != 0 {
		t.Fatalf("Rho with no handles = %d", q.Rho())
	}
	q.NewHandle()
	q.NewHandle()
	q.NewHandle()
	if q.Handles() != 3 || q.Rho() != 48 {
		t.Fatalf("Handles = %d, Rho = %d", q.Handles(), q.Rho())
	}
}

func TestLazyDeletionDrop(t *testing.T) {
	stale := map[uint64]bool{}
	var mu sync.Mutex
	q := NewQueue(Config[int]{
		K: 4, Mode: Combined, LocalOrdering: true,
		Drop: func(key uint64, _ int) bool {
			mu.Lock()
			defer mu.Unlock()
			return stale[key]
		},
	})
	h := q.NewHandle()
	for i := uint64(0); i < 200; i++ {
		h.Insert(i, 0)
	}
	mu.Lock()
	for i := uint64(0); i < 200; i += 2 {
		stale[i] = true
	}
	mu.Unlock()
	got := drainHandle(h)
	for _, k := range got {
		if k%2 == 0 {
			// Some even keys may legitimately surface if they were never
			// copied after being marked stale; lazy deletion is best-effort.
			// But the count must not exceed the pre-marking copies.
			continue
		}
	}
	odd := 0
	for _, k := range got {
		if k%2 == 1 {
			odd++
		}
	}
	if odd != 100 {
		t.Fatalf("lazy deletion lost live items: %d odd keys of 100", odd)
	}
}

func TestMeld(t *testing.T) {
	a := combined(8)
	b := combined(8)
	ha := a.NewHandle()
	hb := b.NewHandle()
	for i := uint64(0); i < 50; i++ {
		ha.Insert(i, 1)
	}
	for i := uint64(50); i < 100; i++ {
		hb.Insert(i, 2)
	}
	ha.Meld(b)
	got := drainHandle(ha)
	if len(got) != 100 {
		t.Fatalf("after meld drained %d keys, want 100", len(got))
	}
	seen := map[uint64]bool{}
	for _, k := range got {
		if seen[k] {
			t.Fatalf("key %d extracted twice after meld", k)
		}
		seen[k] = true
	}
}

func TestPayloadIntegrity(t *testing.T) {
	type payload struct {
		A string
		B int
	}
	q := NewQueue(Config[payload]{K: 4, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	h.Insert(2, payload{"two", 2})
	h.Insert(1, payload{"one", 1})
	k, v, ok := h.TryDeleteMin()
	if !ok || v.A == "" || int(k) != v.B {
		t.Fatalf("payload corrupted: key %d payload %+v", k, v)
	}
}

func BenchmarkCombinedInsertK256(b *testing.B) {
	q := NewQueue(Config[struct{}]{K: 256, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	src := xrand.NewSeeded(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(src.Uint64(), struct{}{})
	}
}

func BenchmarkCombinedMixK256(b *testing.B) {
	q := NewQueue(Config[struct{}]{K: 256, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	src := xrand.NewSeeded(1)
	for i := 0; i < 4096; i++ {
		h.Insert(src.Uint64(), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if src.Bool() {
			h.Insert(src.Uint64(), struct{}{})
		} else {
			h.TryDeleteMin()
		}
	}
}
