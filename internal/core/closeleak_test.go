package core

import (
	"sync"
	"testing"

	"klsm/internal/xrand"
)

// TestCloseUnderBusyGuardLeaksNothing targets the §4.4 limbo handoff: a
// handle that closes while the queue-wide guard is busy cannot recycle its
// parked limbo blocks (or their item references) itself — before the
// handoff they simply died with the handle's pool and every item that
// passed through it leaked to the GC. With the handoff, the obligations
// move to the queue's reaper and the exactly-once ledger must still balance
// to the item: releases == inserts, zero lost-live, zero leaks.
func TestCloseUnderBusyGuardLeaksNothing(t *testing.T) {
	q := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true})
	rng := xrand.NewSeeded(101)

	const (
		rounds    = 8
		perHandle = 3_000
	)
	var inserted, deleted int64

	for r := 0; r < rounds; r++ {
		h := q.NewHandle()
		for i := 0; i < perHandle; i++ {
			// Make the guard busy for the tail of the round, so the final
			// operations' retires park in limbo instead of recycling — the
			// state a real spy race leaves behind at close time.
			if i == perHandle-200 {
				q.guard.Enter()
			}
			h.Insert(rng.Uint64n(1<<40), i)
			inserted++
			if i%3 == 0 {
				if _, _, ok := h.TryDeleteMin(); ok {
					deleted++
				}
			}
		}
		// Close with the guard busy: the handle cannot release its parked
		// obligations itself and must hand them to the queue's reaper.
		h.Close()
		q.guard.Exit()
	}

	h := q.NewHandle()
	deleted += drainAll(t, q, h)
	if deleted != inserted {
		t.Fatalf("deleted %d of %d inserted", deleted, inserted)
	}
	q.Quiesce()
	rs := q.ReclaimStats()
	t.Logf("inserted=%d releases=%d reclaimed=%d lostLive=%d limboLeaked=%d",
		inserted, rs.ItemPuts, rs.ItemsReclaimed, rs.ItemsLostLive, rs.LimboLeaked)
	if rs.LimboLeaked != 0 {
		t.Fatalf("%d obligations leaked at a limbo cap across closes", rs.LimboLeaked)
	}
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero", rs.ItemsLostLive)
	}
	if rs.ItemPuts != inserted {
		t.Fatalf("item releases = %d, want exactly %d (the close handoff lost obligations)",
			rs.ItemPuts, inserted)
	}
}

// TestCloseConcurrentWithSpiesBalancesLedger drives closes against live spy
// traffic (real guard activity, not a synthetic pin): workers churn
// insert/delete through short-lived handles while a consumer with an empty
// DistLSM forces spying, then everything is drained and the ledger checked.
// Run under -race in CI.
func TestCloseConcurrentWithSpiesBalancesLedger(t *testing.T) {
	q := NewQueue(Config[uint64]{K: 32, Mode: Combined, LocalOrdering: true})
	const (
		workers = 3
		ops     = 6_000
		// closeEvery keeps each handle segment's retire volume below the
		// per-handle limbo cap: the §4.4 caps legitimately drop overflow to
		// the GC (counted in LimboLeaked), and this test asserts the
		// zero-leak ledger for workloads inside the caps.
		closeEvery = 500
	)
	var wg sync.WaitGroup
	inserts := make([]int64, workers+1)
	deletes := make([]int64, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			rng := xrand.NewSeeded(uint64(w)*313 + 7)
			for i := 0; i < ops; i++ {
				if rng.Intn(5) < 3 {
					h.Insert(rng.Uint64n(1<<40), uint64(i))
					inserts[w]++
				} else if _, _, ok := h.TryDeleteMin(); ok {
					deletes[w]++
				}
				if i%closeEvery == closeEvery-1 {
					// Churn: close mid-stream so the handoff runs while
					// spies are active.
					h.Close()
					h = q.NewHandle()
				}
			}
			h.Close()
		}(w)
	}
	// The spy-heavy consumer: its DistLSM starts empty, so deletes must spy
	// into the workers' structures, keeping the guard busy for real.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := q.NewHandle()
		for i := 0; i < ops; i++ {
			if _, _, ok := h.TryDeleteMin(); ok {
				deletes[workers]++
			}
		}
		h.Close()
	}()
	wg.Wait()

	var inserted, deleted int64
	for i := range inserts {
		inserted += inserts[i]
		deleted += deletes[i]
	}
	h := q.NewHandle()
	deleted += drainAll(t, q, h)
	if deleted != inserted {
		t.Fatalf("deleted %d of %d inserted", deleted, inserted)
	}
	q.Quiesce()
	rs := q.ReclaimStats()
	if rs.LimboLeaked != 0 {
		t.Fatalf("%d obligations leaked at a limbo cap", rs.LimboLeaked)
	}
	if rs.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero", rs.ItemsLostLive)
	}
	if rs.ItemPuts != inserted {
		t.Fatalf("item releases = %d, want exactly %d across handle churn", rs.ItemPuts, inserted)
	}
}
