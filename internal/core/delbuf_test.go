package core

import (
	"testing"

	"klsm/internal/xrand"
)

// TestDeletionBufferServesPops: with the buffer on, a run of deletes is
// served mostly from the buffer (BufPops tracks deletes) and the results
// stay exact for a single handle: ascending, no loss, no duplication.
func TestDeletionBufferServesPops(t *testing.T) {
	q := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	const n = 1000
	for i := 0; i < n; i++ {
		h.Insert(uint64(n-i), i)
	}
	var prev uint64
	for i := 0; i < n; i++ {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			t.Fatalf("empty after %d of %d deletes", i, n)
		}
		if k < prev {
			t.Fatalf("single-handle pops out of order: %d after %d", k, prev)
		}
		prev = k
	}
	if _, _, ok := h.TryDeleteMin(); ok {
		t.Fatal("extra key after full drain")
	}
	if fills, pops := h.BufFills.Load(), h.BufPops.Load(); fills == 0 || pops == 0 {
		t.Fatalf("buffer unused: %d fills, %d pops", fills, pops)
	} else if pops < int64(n)/2 {
		t.Fatalf("buffer served only %d of %d deletes", pops, n)
	}
}

// TestDeletionBufferSpliceOnInsert: an insert by the owning handle may
// undercut every buffered candidate. The next delete must return the fresh
// smaller key, and it must come from the buffer without a refill: the
// insert splices itself in at its ascending position (bufInsert) instead of
// flushing the candidates above it.
func TestDeletionBufferSpliceOnInsert(t *testing.T) {
	q := NewQueue(Config[int]{K: 64, Mode: Combined, LocalOrdering: true})
	h := q.NewHandle()
	for i := 0; i < 100; i++ {
		h.Insert(uint64(1000+i), i)
	}
	if k, _, ok := h.TryDeleteMin(); !ok || k != 1000 {
		t.Fatalf("first delete = %d (%v), want 1000", k, ok)
	}
	if h.BufFills.Load() == 0 {
		t.Skip("buffer did not engage on this configuration")
	}
	fills, pops := h.BufFills.Load(), h.BufPops.Load()
	h.Insert(5, 0)
	if k, _, ok := h.TryDeleteMin(); !ok || k != 5 {
		t.Fatalf("delete after undercutting insert = %d (%v), want 5", k, ok)
	}
	if h.BufPops.Load() == pops {
		t.Fatal("undercutting insert was not served from the buffer")
	}
	if h.BufFills.Load() != fills {
		t.Fatal("undercutting insert forced a refill instead of a splice")
	}
}

// TestDeletionBufferConservation: buffered-but-unpopped candidates are
// never logically deleted, so flushing the buffer (here via Quiesce's
// consolidations and an explicit handle close) must lose nothing — the
// queue drains to exactly the inserted multiset.
func TestDeletionBufferConservation(t *testing.T) {
	q := NewQueue(Config[int]{K: 32, Mode: Combined, LocalOrdering: true})
	h1 := q.NewHandle()
	h2 := q.NewHandle()
	rng := xrand.NewSeeded(11)
	const n = 2000
	seen := make(map[uint64]int)
	for i := 0; i < n; i++ {
		k := rng.Uint64n(1 << 30)
		seen[k]++
		if i%2 == 0 {
			h1.Insert(k, i)
		} else {
			h2.Insert(k, i)
		}
	}
	take := func(h *Handle[int]) {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty queue")
		}
		if seen[k] == 0 {
			t.Fatalf("key %d deleted but not live", k)
		}
		seen[k]--
	}
	// Leave both handles with warm buffers, then force flush-inducing
	// events: a quiesce (publications break the anchors) and h2's close.
	for i := 0; i < 50; i++ {
		take(h1)
		take(h2)
	}
	q.Quiesce()
	for i := 0; i < 50; i++ {
		take(h2)
	}
	h2.Close()
	for deleted := 100 + 50; deleted < n; deleted++ {
		take(h1)
	}
	if _, _, ok := h1.TryDeleteMin(); ok {
		t.Fatal("extra key after full drain")
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("key %d lost (%d copies undrained)", k, c)
		}
	}
}

// TestDeletionBufferModes: the buffer composes with the single-structure
// modes — DistOnly fills from the local min scan only, SharedOnly from the
// candidate window only — and stays exact for a single handle.
func TestDeletionBufferModes(t *testing.T) {
	for _, mode := range []Mode{DistOnly, SharedOnly} {
		q := NewQueue(Config[int]{K: 16, Mode: mode, LocalOrdering: true})
		h := q.NewHandle()
		const n = 500
		for i := 0; i < n; i++ {
			h.Insert(uint64((i*7919)%n), i)
		}
		var prev uint64
		for i := 0; i < n; i++ {
			k, _, ok := h.TryDeleteMin()
			if !ok {
				t.Fatalf("mode %v: empty after %d of %d", mode, i, n)
			}
			if k < prev {
				t.Fatalf("mode %v: pops out of order: %d after %d", mode, k, prev)
			}
			prev = k
		}
		if _, _, ok := h.TryDeleteMin(); ok {
			t.Fatalf("mode %v: extra key after full drain", mode)
		}
		if h.BufFills.Load() == 0 {
			t.Fatalf("mode %v: buffer never filled", mode)
		}
	}
}

// TestDeletionBufferDisabled: DisableDeletionBuffer keeps every delete on
// the direct path; the buffer counters must stay zero.
func TestDeletionBufferDisabled(t *testing.T) {
	q := NewQueue(Config[int]{
		K: 16, Mode: Combined, LocalOrdering: true,
		DisableDeletionBuffer: true,
	})
	h := q.NewHandle()
	const n = 300
	for i := 0; i < n; i++ {
		h.Insert(uint64(i), i)
	}
	for i := 0; i < n; i++ {
		if _, _, ok := h.TryDeleteMin(); !ok {
			t.Fatalf("empty after %d of %d", i, n)
		}
	}
	if f, p := h.BufFills.Load(), h.BufPops.Load(); f != 0 || p != 0 {
		t.Fatalf("disabled buffer still used: %d fills, %d pops", f, p)
	}
}
