package core

import (
	"klsm/internal/block"
)

// Meld absorbs all items currently in other into q (paper §4.5). Melding is
// a natural LSM operation because it reduces to block merges, but — as the
// paper notes — it is *not* linearizable: items move over one at a block at
// a time, and operations concurrent with the meld may observe intermediate
// states in which an item is visible in both queues or (relaxedly) in
// neither's fast path. Item identity makes this safe: the underlying Items
// are shared, so exactly-once deletion holds across both queues throughout.
//
// The caller drives the meld through a handle of q (the destination).
// `other` must not receive new inserts during the meld or those items may be
// missed; concurrent delete-mins on either queue are fine when both queues
// run the same item-reclamation setting. With mismatched settings one queue
// holds unrefcounted pointers to items the other reclaims, so `other` must
// then be fully quiescent from the meld onward and discarded afterwards
// (the documented life cycle anyway).
func (h *Handle[V]) Meld(other *Queue[V]) {
	if other == nil || other.Queue() == h.q {
		return
	}
	if h.bufCap > 0 {
		// Melded-in keys may undercut the buffer's fill-time bounds. The
		// shared-side inserts below would invalidate the anchor anyway;
		// flushing up front keeps the reasoning local.
		h.bufInvalidate()
	}
	// Announce this reader to other's guard for the §4.4 reuse contract:
	// while active, none of other's handles recycles a retired published
	// block, so every block pointer read below stays valid.
	other.guard.Enter()
	// Move the contents of every handle-local DistLSM of other. Spy gives a
	// consistent-enough copy (it never misses an item that was present when
	// other went quiescent); inserting the copied blocks into q's shared
	// k-LSM makes them reachable to all of q's handles. Copies are drawn
	// from h's pool so that, with item reclamation on, they acquire item
	// references spanning both queues: neither queue can reclaim an item
	// the other still reaches.
	victims := *other.victims.Load()
	for _, v := range victims {
		tmp := newMeldCollector[V](h.pool)
		tmp.spyAll(v)
		for _, b := range tmp.blocks {
			h.q.shared.Insert(h.cursor, b)
		}
	}
	// Move the shared k-LSM content: snapshot its blocks and re-insert them.
	if snap := other.shared.Snapshot(); snap != nil {
		for i := 0; i < snap.Blocks(); i++ {
			b := snap.BlockAt(i)
			if b == nil || b.Empty() {
				continue
			}
			// Copy filters taken items so we do not balloon q with garbage.
			nb := b.CopyIn(h.pool, b.Level())
			if nb.Empty() {
				h.pool.Put(nb)
				continue
			}
			s := nb.ShrinkIn(h.pool)
			if s != nb {
				h.pool.Put(nb)
			}
			h.q.shared.Insert(h.cursor, s)
		}
	}
	other.guard.Exit()
	// Account the moved items on this handle so Size stays within its
	// relaxed bound: melded items were counted in other's handles; transfer
	// the balance.
	var moved int64
	for _, oh := range other.handlesSnapshot() {
		moved += oh.inserted.Load() - oh.deleted.Load()
		oh.inserted.Store(0)
		oh.deleted.Store(0)
	}
	if moved > 0 {
		h.inserted.Add(moved)
	}
}

// Queue returns the queue this handle belongs to.
func (h *Handle[V]) Queue() *Queue[V] { return h.q }

// Queue exposes itself for Meld's identity check.
func (q *Queue[V]) Queue() *Queue[V] { return q }

// handlesSnapshot returns a copy of the handle list.
func (q *Queue[V]) handlesSnapshot() []*Handle[V] {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*Handle[V](nil), q.handles...)
}

// meldCollector gathers copies of a DistLSM's blocks without the level
// restrictions of the regular spy (meld wants everything). Copies come from
// the melding handle's pool so they join its refcount domain.
type meldCollector[V any] struct {
	pool   *block.Pool[V]
	blocks []*block.Block[V]
}

func newMeldCollector[V any](p *block.Pool[V]) *meldCollector[V] {
	return &meldCollector[V]{pool: p}
}

// spyAll copies every non-empty block of v.
func (m *meldCollector[V]) spyAll(v interface {
	Blocks() int
	BlockAt(int) *block.Block[V]
}) {
	n := v.Blocks()
	for i := 0; i < n; i++ {
		b := v.BlockAt(i)
		if b == nil || b.Empty() {
			continue
		}
		nb := b.CopyIn(m.pool, b.Level())
		if nb.Empty() {
			m.pool.Put(nb)
			continue
		}
		s := nb.ShrinkIn(m.pool)
		if s != nb {
			m.pool.Put(nb)
		}
		m.blocks = append(m.blocks, s)
	}
}
