package core

import (
	"sync"
	"testing"
)

func TestCloseTransfersItems(t *testing.T) {
	q := NewQueue(Config[int]{K: 1 << 20, Mode: Combined, LocalOrdering: true})
	leaver := q.NewHandle()
	for i := uint64(0); i < 300; i++ {
		leaver.Insert(i, 0) // huge k: everything stays in leaver's DistLSM
	}
	leaver.Close()
	if q.Handles() != 0 {
		t.Fatalf("Handles = %d after close", q.Handles())
	}
	if q.Size() != 300 {
		t.Fatalf("Size = %d after close, want 300", q.Size())
	}
	// A fresh handle must find every item WITHOUT spying (they moved to
	// the shared structure).
	h := q.NewHandle()
	got := drainHandle(h)
	if len(got) != 300 {
		t.Fatalf("drained %d of 300 after close", len(got))
	}
	if h.SpyCalls.Load() > 1 {
		// One trailing spy for the final emptiness check is fine.
		t.Fatalf("items were not transferred to shared: %d spy calls", h.SpyCalls.Load())
	}
	if q.Size() != 0 {
		t.Fatalf("Size = %d after drain", q.Size())
	}
}

func TestCloseIdempotent(t *testing.T) {
	q := combined(4)
	h := q.NewHandle()
	h.Insert(1, 0)
	h.Close()
	h.Close() // second close must be a no-op
	if q.Handles() != 0 {
		t.Fatalf("Handles = %d", q.Handles())
	}
	if got := drainHandle(q.NewHandle()); len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
}

func TestCloseDistOnlyKeepsReachability(t *testing.T) {
	q := NewQueue(Config[int]{Mode: DistOnly})
	leaver := q.NewHandle()
	for i := uint64(0); i < 100; i++ {
		leaver.Insert(i, 0)
	}
	leaver.Close()
	// DistOnly has no shared structure; the retired DistLSM must stay
	// spy-able.
	h := q.NewHandle()
	got := drainHandle(h)
	if len(got) != 100 {
		t.Fatalf("drained %d of 100 after DistOnly close", len(got))
	}
}

func TestCloseReducesRho(t *testing.T) {
	q := combined(16)
	h1 := q.NewHandle()
	h2 := q.NewHandle()
	if q.Rho() != 32 {
		t.Fatalf("Rho = %d", q.Rho())
	}
	h1.Close()
	if q.Rho() != 16 {
		t.Fatalf("Rho after close = %d", q.Rho())
	}
	_ = h2
}

// TestCloseConcurrentWithWork: handles closing while others operate; all
// items conserved (run with -race).
func TestCloseConcurrentWithWork(t *testing.T) {
	q := combined(64)
	const workers = 4
	const n = 2000
	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle()
			base := uint64(id * n)
			for i := 0; i < n; i++ {
				h.Insert(base+uint64(i), 0)
				if i%3 == 0 {
					if k, _, ok := h.TryDeleteMin(); ok {
						results[id] = append(results[id], k)
					}
				}
				if i == n/2 {
					// Mid-run churn: retire and replace the handle.
					h.Close()
					h = q.NewHandle()
				}
			}
			h.Close()
		}(w)
	}
	wg.Wait()
	rest := drainHandle(q.NewHandle())
	seen := map[uint64]int{}
	total := len(rest)
	for _, k := range rest {
		seen[k]++
	}
	for _, keys := range results {
		total += len(keys)
		for _, k := range keys {
			seen[k]++
		}
	}
	if total != workers*n {
		t.Fatalf("conserved %d of %d across closes", total, workers*n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d seen %d times", k, c)
		}
	}
}
