package core

import (
	"sync"
	"testing"

	"klsm/internal/xrand"
)

// TestNoPoolingConcurrentStress exercises the pooling-disabled code paths —
// nil block pools, nil item pools, nil guard on the shared k-LSM — under
// real concurrency: a mixed insert/delete workload whose deletes force
// spying (consumers outdelete their own inserts), with handle churn mixed
// in. Every path that dereferences a pool must tolerate nil (pool methods
// are nil-receiver-safe); this is the dedicated concurrent regression for
// that mode, meant to run under -race.
func TestNoPoolingConcurrentStress(t *testing.T) {
	workers := 6
	perWorker := 4000
	if testing.Short() {
		workers, perWorker = 4, 1000
	}
	for _, mode := range []Mode{Combined, DistOnly, SharedOnly} {
		q := NewQueue(Config[int]{
			K:              64,
			Mode:           mode,
			LocalOrdering:  true,
			DisablePooling: true,
		})
		var (
			wg       sync.WaitGroup
			inserted = make([][]uint64, workers)
			deleted  = make([][]uint64, workers)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				h := q.NewHandle()
				rng := xrand.NewSeeded(uint64(id)*7919 + 3)
				base := uint64(id) << 32
				for i := 0; i < perWorker; i++ {
					key := base | uint64(i)
					h.Insert(key, int(id))
					inserted[id] = append(inserted[id], key)
					// Delete more often than we insert so our DistLSM runs
					// dry and TryDeleteMin exercises the spy path.
					for d := 0; d < 2; d++ {
						if k, _, ok := h.TryDeleteMin(); ok {
							deleted[id] = append(deleted[id], k)
						}
					}
					if rng.Intn(1024) == 0 && mode != DistOnly {
						// Handle churn: close and re-register mid-stream.
						h.Close()
						h = q.NewHandle()
					}
				}
			}(w)
		}
		wg.Wait()

		// Drain the remainder and check conservation: every inserted key
		// extracted exactly once, no aliens.
		h := q.NewHandle()
		rest := drainHandle(h)
		seen := make(map[uint64]int)
		total := 0
		for _, keys := range deleted {
			for _, k := range keys {
				seen[k]++
				total++
			}
		}
		for _, k := range rest {
			seen[k]++
			total++
		}
		want := 0
		for _, keys := range inserted {
			for _, k := range keys {
				want++
				if seen[k] != 1 {
					t.Fatalf("mode %v: key %d extracted %d times", mode, k, seen[k])
				}
			}
		}
		if total != want {
			t.Fatalf("mode %v: extracted %d keys, want %d", mode, total, want)
		}
	}
}

// TestNoPoolingMeldConcurrent stresses Meld with pooling off while both
// queues are being deleted from concurrently: exactly-once deletion must
// hold across the meld, and the nil-guard reader bracket must be a no-op
// rather than a crash.
func TestNoPoolingMeldConcurrent(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1000
	}
	dst := NewQueue(Config[int]{K: 16, Mode: Combined, LocalOrdering: true, DisablePooling: true})
	src := NewQueue(Config[int]{K: 16, Mode: Combined, LocalOrdering: true, DisablePooling: true})
	hDst := dst.NewHandle()
	hSrc := src.NewHandle()
	for i := 0; i < n; i++ {
		hSrc.Insert(uint64(i), i)
		hDst.Insert(uint64(n+i), n+i)
	}

	var (
		wg      sync.WaitGroup
		results = make([][]uint64, 3)
	)
	// Two concurrent deleters, one per queue, racing the meld.
	for g, qq := range []*Queue[int]{dst, src} {
		wg.Add(1)
		go func(slot int, q *Queue[int]) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < n; i++ {
				if k, _, ok := h.TryDeleteMin(); ok {
					results[slot] = append(results[slot], k)
				}
			}
		}(g, qq)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		hDst.Meld(src)
	}()
	wg.Wait()

	// Post-meld, everything still reachable lives in dst (melded items may
	// transiently be reachable in src too; exactly-once TryTake dedups).
	results[2] = drainHandle(hDst)
	results[2] = append(results[2], drainHandle(src.NewHandle())...)

	seen := make(map[uint64]int)
	total := 0
	for _, keys := range results {
		for _, k := range keys {
			seen[k]++
			total++
		}
	}
	if total != 2*n {
		t.Fatalf("extracted %d keys, want %d", total, 2*n)
	}
	for k, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("key %d extracted %d times", k, cnt)
		}
	}
}
