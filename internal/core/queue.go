// Package core implements the combined k-LSM relaxed priority queue of
// paper §4.3 (Listing 5): one distributed LSM per handle for insertion
// batching plus a single shared k-LSM for global ordering guarantees, glued
// together by the overflow rule (a merged block reaching level ⌊log2(k+1)⌋
// moves from the handle-local DistLSM to the shared k-LSM).
//
// Guarantees (paper §5):
//
//   - insert is lock-free and linearizable; a key is reachable by every
//     handle from its linearization point until it is logically deleted.
//   - try-delete-min is lock-free and linearizable with structural
//     ρ-relaxation, ρ = T·k for T registered handles: it returns a key among
//     the ρ+1 smallest, or fails. Failures may be spurious under concurrency
//     but repeated calls eventually succeed while items remain.
//   - local ordering: a handle never skips keys it inserted itself, so
//     per-handle insert/delete sequences behave like an exact priority queue.
//
// The package also provides the standalone operating modes used by the
// paper's evaluation: DistOnly is the DLSM of Figure 3 (local ordering only,
// no ρ bound), SharedOnly exposes the shared k-LSM without insertion
// batching (the k-LSM with k=0 degenerates to this shape naturally).
package core

import (
	"slices"
	"sync"
	"sync/atomic"

	"klsm/internal/block"
	"klsm/internal/distlsm"
	"klsm/internal/item"
	"klsm/internal/sharedlsm"
	"klsm/internal/xrand"
)

// Mode selects which components of the combined queue are active.
type Mode int

const (
	// Combined is the full k-LSM of §4.3.
	Combined Mode = iota
	// DistOnly is the standalone distributed LSM (DLSM in Figure 3):
	// maximum scalability, local ordering only, no global relaxation bound.
	DistOnly
	// SharedOnly bypasses insertion batching: every item goes straight to
	// the shared k-LSM as a singleton block.
	SharedOnly
)

// MaxRelaxation is the largest accepted relaxation parameter. Beyond it the
// DistLSM overflow threshold saturates at block.MaxLevel anyway (a handle can
// never hold more than 2^48-1 items locally), so larger k buys nothing —
// while leaving k unbounded lets ρ = T·k arithmetic overflow int for absurd
// inputs. NewQueue and SetRelaxation clamp to this bound; negative k panics
// in both.
const MaxRelaxation = 1<<uint(block.MaxLevel) - 1

// clampK validates a relaxation parameter: negative k panics, absurd k
// clamps to MaxRelaxation. Shared by NewQueue and SetRelaxation so the two
// entry points enforce the identical contract.
func clampK(k int) int {
	if k < 0 {
		panic("core: negative relaxation parameter k")
	}
	if k > MaxRelaxation {
		return MaxRelaxation
	}
	return k
}

// Config configures a Queue.
type Config[V any] struct {
	// K is the relaxation parameter: delete-min may return any of the
	// T·K+1 smallest keys. K = 0 gives the strictest (slowest) setting.
	K int
	// Mode selects the combined queue or one of the standalone components.
	Mode Mode
	// LocalOrdering enables the Bloom-filter check in the shared k-LSM.
	// The paper's implementation has it always on; the ablation benchmark
	// measures its cost.
	LocalOrdering bool
	// Drop, if non-nil, is the lazy-deletion callback (§4.5): items for
	// which it returns true are discarded during block maintenance and
	// never returned from delete-min.
	Drop block.DropFunc[V]
	// DisablePooling turns off the §4.4 block/item recycling free lists.
	// The zero value (pooling on) is the paper's configuration; disabling
	// exists for the allocation ablation benchmarks and as an escape hatch.
	DisablePooling bool
	// DisableMinCaching turns off the delete-min fast path: the DistLSM
	// per-block min cache, the shared k-LSM candidate window, and the
	// skip-shared hint. The zero value (caching on) is the performant
	// configuration; disabling exists for the ablation benchmarks and as an
	// escape hatch. Semantics are identical either way.
	DisableMinCaching bool
	// DisableItemReclamation turns off the §4.4 per-block item reference
	// counts: taken items are then reclaimed only where a structural proof
	// exists (the sequential LSM) and fall back to the garbage collector
	// everywhere else. The zero value (reclamation on) is the paper's
	// deterministic scheme; it requires pooling and is implicitly off when
	// DisablePooling is set. Semantics are identical either way.
	DisableItemReclamation bool
	// DisableDeletionBuffer turns off the per-handle deletion buffer: the
	// MultiQueue-style fast path where TryDeleteMin refills a small
	// owner-local buffer of version-stamped candidates from the shared
	// candidate window and the DistLSM min scan in one pass, and the common
	// delete is a buffer pop validated only by the item's version. The zero
	// value (buffer on) is the performant configuration; the buffer requires
	// min caching and is implicitly off when DisableMinCaching is set.
	// Semantics — the ρ = T·k bound and local ordering — are identical
	// either way.
	DisableDeletionBuffer bool
	// DeletionBufferSize is the per-handle deletion-buffer capacity; 0 means
	// the default (32). Larger buffers amortize refills further but pin the
	// handle to its anchored view longer, surfacing staler (still
	// bound-respecting) keys.
	DeletionBufferSize int
	// DisableStickyHint turns off the sticky skip-shared hint: the
	// generalization of the exact-pointer MinHint that re-validates across
	// shared publications against the new array's minimum-key floor, for a
	// bounded streak of operations. Implicitly off when DisableMinCaching is
	// set. Semantics are identical either way.
	DisableStickyHint bool
	// StickyHintOps is the sticky-hint streak budget: the number of
	// consecutive cross-publication re-validations allowed before the hint
	// must run a full shared-side query. 0 means the default (64).
	StickyHintOps int
}

// Queue is the combined k-LSM relaxed priority queue. Create handles with
// NewHandle; all queue operations go through handles.
type Queue[V any] struct {
	cfg    Config[V]
	shared *sharedlsm.Shared[V]

	mu      sync.Mutex
	handles []*Handle[V]
	// victims is a copy-on-write snapshot of all handle DistLSMs, read
	// lock-free on the spy path.
	victims atomic.Pointer[[]*distlsm.Dist[V]]
	nextID  atomic.Uint64
	// kCurrent tracks the run-time-configurable relaxation parameter
	// (SetRelaxation); cfg.K is only its initial value.
	kCurrent atomic.Int64
	// closedInserted/closedDeleted accumulate the operation totals of
	// closed handles so Size stays correct across handle churn. Guarded by
	// mu.
	closedInserted int64
	closedDeleted  int64
	// zombies holds DistLSMs of closed handles that still contain items
	// (DistOnly mode only, where no shared structure can absorb them); they
	// must stay spy-able. Guarded by mu.
	zombies []*distlsm.Dist[V]

	// guard is the queue-wide reader guard of the §4.4 recycling scheme:
	// spies and melds announce themselves here, and no handle recycles a
	// retired published block while a reader is active. One guard per queue
	// — every handle pool and the shared k-LSM share it.
	guard block.Guard

	// The reaper adopts the §4.4 release obligations of closing handles:
	// limbo blocks and dropped-item references a busy guard kept parked,
	// which would otherwise die with the handle's pool, leaking their
	// items to the GC uncounted. reaperMu serializes the adoption and
	// drain paths — close and Quiesce, never the operation hot paths.
	// Nil without item reclamation: a non-reclaiming limbo block carries
	// no obligations.
	reaperMu    sync.Mutex
	reaperPool  *block.Pool[V]
	reaperItems *item.Pool[V]
	// closedReclaim accumulates the reclamation counters of closed handles
	// so the exactly-once ledger stays auditable across handle churn.
	// Guarded by reaperMu.
	closedReclaim ReclaimStats
}

// rebuildVictims refreshes the copy-on-write spy-victim snapshot from the
// registered handles plus any zombie DistLSMs. Caller must hold mu.
func (q *Queue[V]) rebuildVictims() {
	next := make([]*distlsm.Dist[V], 0, len(q.handles)+len(q.zombies))
	for _, hh := range q.handles {
		next = append(next, hh.dist)
	}
	next = append(next, q.zombies...)
	q.victims.Store(&next)
}

// NewQueue returns an empty queue with the given configuration. Negative
// cfg.K panics; cfg.K beyond MaxRelaxation is clamped to it.
func NewQueue[V any](cfg Config[V]) *Queue[V] {
	cfg.K = clampK(cfg.K)
	q := &Queue[V]{cfg: cfg}
	q.kCurrent.Store(int64(cfg.K))
	q.shared = sharedlsm.New[V](cfg.K, cfg.LocalOrdering)
	q.shared.SetMinCaching(!cfg.DisableMinCaching)
	if !cfg.DisableMinCaching && !cfg.DisableStickyHint {
		ops := cfg.StickyHintOps
		if ops <= 0 {
			ops = defaultStickyHintOps
		}
		q.shared.SetStickyHint(ops)
	}
	if cfg.Drop != nil {
		q.shared.SetDrop(cfg.Drop)
	}
	if !cfg.DisablePooling {
		q.shared.SetGuard(&q.guard)
		if !cfg.DisableItemReclamation {
			q.reaperItems = item.NewPool[V]()
			q.reaperPool = block.NewPool[V](&q.guard)
			q.reaperPool.SetItemPool(q.reaperItems)
		}
	}
	empty := []*distlsm.Dist[V]{}
	q.victims.Store(&empty)
	return q
}

// K returns the current relaxation parameter.
func (q *Queue[V]) K() int { return q.shared.K() }

// SetRelaxation changes k at run time (paper §1: "the parameter k can be
// configured at run-time"). The change propagates lazily but promptly:
// the shared k-LSM uses the new k for every subsequent snapshot, and each
// handle applies the new DistLSM bound — evicting now-oversized local
// blocks — on its next insert. Until every handle has inserted once, the
// effective bound is max(old, new) per handle.
//
// Validation matches NewQueue: negative k panics (also for DistOnly queues,
// where the value is otherwise ignored — an invalid argument should never
// pass silently), and k beyond MaxRelaxation is clamped.
func (q *Queue[V]) SetRelaxation(k int) {
	k = clampK(k)
	if q.cfg.Mode == DistOnly {
		return // no shared component; the DLSM has no global bound
	}
	q.shared.SetK(k)
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, h := range q.handles {
		h.dist.SetK(k)
	}
	q.kCurrent.Store(int64(k))
}

// Mode returns the configured operating mode.
func (q *Queue[V]) Mode() Mode { return q.cfg.Mode }

// Handles returns the number of registered handles (the T in ρ = T·k).
func (q *Queue[V]) Handles() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.handles)
}

// Rho returns the current worst-case relaxation bound T·k.
func (q *Queue[V]) Rho() int { return q.Handles() * int(q.kCurrent.Load()) }

// Size returns the number of live keys, accurate to within the relaxation
// bound ρ (the paper's size operation): concurrent operations may be counted
// or missed while in flight.
func (q *Queue[V]) Size() int {
	q.mu.Lock()
	hs := append([]*Handle[V](nil), q.handles...)
	n := q.closedInserted - q.closedDeleted
	q.mu.Unlock()
	for _, h := range hs {
		n += h.inserted.Load() - h.deleted.Load()
	}
	if n < 0 {
		n = 0
	}
	return int(n)
}

// SetDrop installs the lazy-deletion filter (§4.5) after construction but
// strictly before the first handle is registered: merges, deletes and purges
// then treat any item the callback reports stale as logically deleted.
// Construction-time wiring (Config.Drop) is preferred; SetDrop exists for
// callers that must build the queue before the state the filter closes over
// (a cancellation registry, say). It panics once a handle exists — the
// filter is copied into per-handle structures at NewHandle and into the
// shared k-LSM before it is shared, so a later install would be silently
// ignored by existing handles.
func (q *Queue[V]) SetDrop(drop block.DropFunc[V]) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.handles) > 0 || q.nextID.Load() != 0 {
		panic("core: SetDrop after NewHandle")
	}
	q.cfg.Drop = drop
	q.shared.SetDrop(drop)
}

// FootprintItems returns the number of physical item slots currently held by
// published blocks — live items plus logically deleted or drop-filtered ones
// not yet compacted away. It is a racy diagnostic snapshot (blocks may be
// merged or retired mid-walk); its value is bounding the structure's memory
// in tests and benchmarks, where Size cannot serve: merge-time drop claims
// are invisible to the inserted/deleted counters.
func (q *Queue[V]) FootprintItems() int {
	n := 0
	for _, d := range *q.victims.Load() {
		for i := 0; i < d.Blocks(); i++ {
			if b := d.BlockAt(i); b != nil {
				n += b.Filled()
			}
		}
	}
	if snap := q.shared.Snapshot(); snap != nil {
		for i := 0; i < snap.Blocks(); i++ {
			if b := snap.BlockAt(i); b != nil {
				n += b.Filled()
			}
		}
	}
	return n
}

// NewHandle registers and returns a handle. A handle must only be used by
// one goroutine at a time; every goroutine operating on the queue needs its
// own handle. Handles are the unit of the relaxation bound: ρ = T·k with T
// the number of handles created.
func (q *Queue[V]) NewHandle() *Handle[V] {
	id := q.nextID.Add(1)
	h := &Handle[V]{
		q:   q,
		id:  id,
		rng: xrand.NewSeeded(id*0x9e3779b97f4a7c15 + 0x6a09e667),
	}
	kBound := int(q.kCurrent.Load())
	if q.cfg.Mode == DistOnly {
		kBound = -1 // unbounded: no overflow target exists
	}
	h.dist = distlsm.New[V](id, kBound)
	h.dist.SetMinCaching(!q.cfg.DisableMinCaching)
	if q.cfg.Drop != nil {
		h.dist.SetDrop(q.cfg.Drop)
	}
	h.cursor = q.shared.NewCursor(id, xrand.NewSeeded(id*0xbf58476d1ce4e5b9+0x3c6ef372))
	if !q.cfg.DisablePooling {
		// §4.4 recycling: one block pool and one item pool per handle, all
		// block pools gated by the queue-wide guard.
		h.pool = block.NewPool[V](&q.guard)
		h.items = item.NewPool[V]()
		if !q.cfg.DisableItemReclamation {
			// §4.4 proper: blocks from this pool refcount their item
			// slots and release them into the handle's item pool when the
			// block is recycled or dropped.
			h.pool.SetItemPool(h.items)
		}
		h.dist.SetPool(h.pool)
		h.cursor.SetPool(h.pool)
	}
	h.overflow = func(b *block.Block[V]) *block.Block[V] {
		return h.q.shared.Insert(h.cursor, b)
	}
	if !q.cfg.DisableDeletionBuffer && !q.cfg.DisableMinCaching {
		h.bufCap = q.cfg.DeletionBufferSize
		if h.bufCap <= 0 {
			h.bufCap = defaultDelBufSize
		}
	}

	q.mu.Lock()
	q.handles = append(q.handles, h)
	q.rebuildVictims()
	q.mu.Unlock()
	return h
}

// Handle is one goroutine's access point to the queue, bundling the paper's
// thread-local state: the DistLSM, the shared-k-LSM snapshot cursor, and a
// private RNG.
type Handle[V any] struct {
	q        *Queue[V]
	dist     *distlsm.Dist[V]
	cursor   *sharedlsm.Cursor[V]
	rng      *xrand.Source
	id       uint64
	overflow func(*block.Block[V]) *block.Block[V]

	// pool and items are the handle's §4.4 free lists (nil: pooling off).
	pool  *block.Pool[V]
	items *item.Pool[V]

	// batchScratch holds the wrapped items of an in-flight InsertBatch so
	// steady-state batch inserts allocate nothing beyond the block itself.
	// Owner-only, cleared after every use.
	batchScratch []*item.Item[V]

	// inserted/deleted are owner-incremented, read by Queue.Size.
	inserted atomic.Int64
	deleted  atomic.Int64

	// Deletion buffer (see delbuf.go): buf[bufPos:] holds version-stamped
	// candidates popped in ascending key order; bufAnchor is the shared
	// array they were validated against (nil anchors an empty shared
	// structure). bufCapKey is the fill-time cap every buffered entry is at
	// or below — the bound owner inserts are spliced against. bufCap == 0
	// disables the buffer. fillHint temporarily raises the refill size
	// inside DrainMin. All owner-only.
	buf       []item.Snap[V]
	bufPos    int
	bufAnchor *sharedlsm.BlockArray[V]
	bufCapKey uint64
	bufCap    int
	fillHint  int

	// BufFills/BufPops/BufFlushes count deletion-buffer refills, successful
	// buffered pops, and invalidation flushes that discarded entries.
	// Atomic so Queue.Stats can read them concurrently.
	BufFills   atomic.Int64
	BufPops    atomic.Int64
	BufFlushes atomic.Int64

	// SpyCalls counts spy attempts for the ablation benchmarks. Atomic so
	// Queue.Stats can read it concurrently.
	SpyCalls atomic.Int64
}

// ID returns the handle's identity (used in Bloom filters).
func (h *Handle[V]) ID() uint64 { return h.id }

// Close retires the handle: its locally batched items are transferred to
// the shared k-LSM (so they stay reachable without the handle), and the
// handle is deregistered — it no longer counts toward ρ = T·k and its
// DistLSM stops being a spy victim. The handle must not be used afterwards.
//
// In DistOnly mode there is no shared structure to absorb the items, so the
// DistLSM stays registered as a spy victim (its items remain reachable);
// only the operation counters move. This mirrors the paper's model, which
// has no thread departure story at all — see DESIGN.md.
func (h *Handle[V]) Close() {
	if h.bufCap > 0 {
		// Buffered candidates were never taken; discarding them leaves the
		// items live in their blocks.
		h.bufInvalidate()
	}
	if h.q.cfg.Mode != DistOnly {
		h.dist.DrainTo(h.overflow)
	}

	q := h.q
	q.mu.Lock()
	defer q.mu.Unlock()
	keep := q.handles[:0]
	for _, other := range q.handles {
		if other != h {
			keep = append(keep, other)
		}
	}
	if len(keep) == len(q.handles) {
		return // already closed
	}
	q.handles = keep
	if q.cfg.Mode == DistOnly && h.dist.Blocks() > 0 {
		// Keep the retired DistLSM spy-able; it holds live items.
		q.zombies = append(q.zombies, h.dist)
	}
	q.rebuildVictims()
	// Preserve the operation totals for Size.
	q.closedInserted += h.inserted.Load()
	q.closedDeleted += h.deleted.Load()
	// Withdraw the cursor from the reclamation epoch scheme so an idle
	// closed handle does not pin retired blocks forever.
	q.shared.RetireCursor(h.cursor)
	// Hand the §4.4 release obligations that would die with this handle to
	// the queue's reaper: limbo blocks and dropped-item references a busy
	// guard kept parked. Without the handoff those references are never
	// released and their items leak to the GC whenever a close races an
	// active spy or meld.
	if h.pool.Reclaiming() {
		limbo, limboItems := h.pool.DetachLimbo()
		q.reaperMu.Lock()
		ps := h.pool.Stats()
		q.closedReclaim.ItemsReclaimed += ps.ItemsReclaimed
		q.closedReclaim.ItemsLostLive += ps.ItemsLostLive
		q.closedReclaim.LimboLeaked += ps.LimboLeaked
		q.closedReclaim.ItemPuts += h.items.Puts()
		a, r := h.items.Stats()
		q.closedReclaim.ItemSlabAllocs += a
		q.closedReclaim.ItemReuses += r
		q.reaperPool.Adopt(limbo, limboItems)
		// The reaper's pools only ever absorb obligations — nothing draws
		// from them — so drop what the adoption just reclaimed (items and
		// block shells) to the GC instead of pinning it for the queue's
		// lifetime. The ledger (Puts) is already counted.
		q.reaperItems.TrimFree(0)
		q.reaperPool.TrimFree()
		q.reaperMu.Unlock()
	}
}

// Quiesce drives every deferred reclamation step to completion: it
// consolidates each handle's DistLSM (retiring fully dead blocks), runs a
// shared-k-LSM maintenance pass per handle, advances every cursor's epoch
// stamp, and drains the shared and per-handle limbo lists. After Quiesce on
// a queue whose items have all been deleted, every block has been recycled
// or dropped and — with item reclamation on — every taken item has been
// released to an item pool exactly once.
//
// Quiesce is NOT safe to run concurrently with handle operations: the
// caller must guarantee that no goroutine is operating on any handle
// (shutdown, checkpoints, tests). On a queue still holding live items it is
// best-effort — blocks referenced by the live structure stay put, which is
// correct but reclaims nothing from them.
func (q *Queue[V]) Quiesce() {
	hs := q.handlesSnapshot()
	// Two maintenance passes: the first consolidates dead structure and
	// pushes the cleanups (parking superseded blocks in limbo at fresh
	// epochs), the second catches blocks the first pass's mutations only
	// just made dead.
	for pass := 0; pass < 2; pass++ {
		for _, h := range hs {
			if q.cfg.Mode != SharedOnly {
				h.dist.Consolidate()
			}
			if q.cfg.Mode != DistOnly {
				q.shared.FindMin(h.cursor)
			}
		}
	}
	if q.cfg.Mode != DistOnly {
		// Lift every cursor's epoch pin first, then drain: entries parked
		// by the passes above carry epochs newer than the stamps the passes
		// left behind.
		for _, h := range hs {
			q.shared.RefreshStamp(h.cursor)
		}
		for _, h := range hs {
			q.shared.DrainRetired(h.cursor)
		}
	}
	for _, h := range hs {
		h.pool.DrainLimbo()
	}
	// Drain the reaper's adopted limbo: obligations handed over by closed
	// handles release here once the guard is quiescent. Nothing draws from
	// the reaper's item pool, so reclaimed items fall to the GC once their
	// ledger entry is counted.
	q.reaperMu.Lock()
	q.reaperPool.DrainLimbo()
	q.reaperItems.TrimFree(0)
	q.reaperPool.TrimFree()
	q.reaperMu.Unlock()
}

// SnapshotLive emits every live (not logically deleted) item currently in
// the queue exactly once: all handle-local DistLSMs, the zombie DistLSMs of
// closed DistOnly handles, and the shared k-LSM snapshot. Items reachable
// from several blocks (spy copies, stale merge inputs) share one Item
// pointer, so deduplication is exact pointer identity. The caller must hold
// the same barrier Quiesce requires — no concurrent handle operation — which
// is what makes the walk a consistent cut: nothing is mid-publication, and
// the taken flag of every item is settled. This is the checkpoint scan of
// the persistence layer.
func (q *Queue[V]) SnapshotLive(emit func(key uint64, seq uint64, value V)) {
	seen := make(map[*item.Item[V]]struct{})
	emitBlock := func(b *block.Block[V]) {
		if b == nil {
			return
		}
		for _, it := range b.Items() {
			if it == nil || it.Taken() {
				continue
			}
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			emit(it.Key(), it.Seq(), it.Value())
		}
	}
	for _, d := range *q.victims.Load() {
		for i := 0; i < d.Blocks(); i++ {
			emitBlock(d.BlockAt(i))
		}
	}
	if snap := q.shared.Snapshot(); snap != nil {
		for i := 0; i < snap.Blocks(); i++ {
			emitBlock(snap.BlockAt(i))
		}
	}
}

// DistStats exposes the handle's DistLSM counters for benchmarks.
func (h *Handle[V]) DistStats() distlsm.Stats { return h.dist.Stats() }

// PoolStats exposes the handle's block-pool counters (zero value when
// pooling is disabled). Owner-only, like all pool operations.
func (h *Handle[V]) PoolStats() block.PoolStats { return h.pool.Stats() }

// Insert adds key with its payload to the queue (Listing 5). It always
// succeeds and is lock-free.
func (h *Handle[V]) Insert(key uint64, value V) {
	h.insertItem(h.items.Get(key, value))
}

// InsertSeq is Insert with a durability sequence number stamped on the item
// before publication. The persistence layer assigns each insert a unique seq
// and logs it to the write-ahead log; stamping it here lets the matching
// delete record (TryDeleteMinSeq) identify exactly which insert it consumed,
// no matter how many merges, spies or melds the item traveled through.
func (h *Handle[V]) InsertSeq(key uint64, value V, seq uint64) {
	it := h.items.Get(key, value)
	it.SetSeq(seq)
	h.insertItem(it)
}

// insertItem publishes a freshly obtained (unpublished) item; the shared
// tail of Insert and InsertSeq.
func (h *Handle[V]) insertItem(it *item.Item[V]) {
	key := it.Key()
	ver := it.Version()
	h.inserted.Add(1)
	switch h.q.cfg.Mode {
	case DistOnly:
		h.dist.Insert(it, nil)
		if h.bufCap > 0 {
			h.bufInsert(it, ver, key)
		}
	case SharedOnly:
		// The publication moves the shared pointer, so the next buffered
		// pop's anchor check flushes the buffer — nothing to do here.
		nb := h.pool.Get(0)
		nb.AddOwner(h.id)
		nb.Append(it)
		h.q.shared.Insert(h.cursor, nb)
	default:
		h.dist.Insert(it, h.overflow)
		if h.bufCap > 0 {
			// Splice the new key into the buffer at its ascending position
			// (see bufInsert); an overflow publication is caught by the
			// anchor check like any other shared movement.
			h.bufInsert(it, ver, key)
		}
	}
}

// InsertBatch adds len(keys) keys with their payloads in one structural
// operation: the batch is wrapped in items, sorted once (descending, the
// block orientation), and published as a single pre-built block at level
// ⌈log₂n⌉ — one merge cascade for the whole batch instead of n level-0
// cascades, the same structural batching the LSM exploits internally (§4.1)
// surfaced at the API. Each key's insertion linearizes at the publication of
// that block; the relaxation bound is maintained exactly as for Insert
// (oversized blocks overflow to the shared k-LSM before the bound is
// exceeded). values may be nil (zero-value payloads); otherwise its length
// must equal len(keys) or InsertBatch panics.
func (h *Handle[V]) InsertBatch(keys []uint64, values []V) {
	h.InsertBatchSeqs(keys, values, nil)
}

// InsertBatchSeqs is InsertBatch with per-key durability sequence numbers:
// key i is stamped with seqs[i] before publication (see InsertSeq). seqs may
// be nil (no stamping — identical to InsertBatch) but a non-nil seqs must
// have len(seqs) == len(keys) or the call panics. The persistence layer uses
// this for both live batch inserts and recovery, where each checkpoint
// segment is re-published as one pre-sorted block carrying its items'
// original sequence numbers.
func (h *Handle[V]) InsertBatchSeqs(keys []uint64, values []V, seqs []uint64) {
	n := len(keys)
	if values != nil && len(values) != n {
		panic("core: InsertBatch keys/values length mismatch")
	}
	if seqs != nil && len(seqs) != n {
		panic("core: InsertBatch keys/seqs length mismatch")
	}
	if n == 0 {
		return
	}
	if n == 1 {
		var v V
		if values != nil {
			v = values[0]
		}
		if seqs != nil {
			h.InsertSeq(keys[0], v, seqs[0])
		} else {
			h.Insert(keys[0], v)
		}
		return
	}
	if h.bufCap > 0 {
		// Truncate at the batch minimum: only buffered candidates above it
		// can shadow a batch key.
		minKey := keys[0]
		for _, k := range keys[1:] {
			if k < minKey {
				minKey = k
			}
		}
		h.bufTruncate(minKey)
	}
	its := h.batchScratch[:0]
	for i, k := range keys {
		var v V
		if values != nil {
			v = values[i]
		}
		it := h.items.Get(k, v)
		if seqs != nil {
			it.SetSeq(seqs[i])
		}
		its = append(its, it)
	}
	// Sort once for the whole batch. pdqsort is O(n) on already-sorted or
	// reverse-sorted input, so pre-sorted batches pay a single scan.
	slices.SortFunc(its, func(a, b *item.Item[V]) int {
		switch {
		case a.Key() > b.Key():
			return -1
		case a.Key() < b.Key():
			return 1
		default:
			return 0
		}
	})
	b := h.pool.Get(block.LevelForCount(n))
	b.AppendSorted(its)
	h.inserted.Add(int64(n))
	switch h.q.cfg.Mode {
	case DistOnly:
		h.dist.InsertBlock(b, nil)
	case SharedOnly:
		// Shared.Insert acquires the entry references itself (mirroring the
		// single-insert path), so the block goes in bare.
		b.AddOwner(h.id)
		h.q.shared.Insert(h.cursor, b)
	default:
		h.dist.InsertBlock(b, h.overflow)
	}
	clear(its)
	h.batchScratch = its[:0]
}

// DrainMin removes up to max items through the relaxed delete-min, invoking
// emit for each key/payload in pop order, and returns the number removed. It
// stops early when TryDeleteMin fails — which, after its unsuccessful spy
// pass, is the strongest emptiness signal the structure offers. Every pop
// individually satisfies the ρ = T·k bound and local ordering; with min
// caching on, the candidate window persists across the pops, so a
// steady-state drain costs one window build plus max O(1) pops rather than
// max full scans.
func (h *Handle[V]) DrainMin(max int, emit func(key uint64, value V)) int {
	return h.DrainMinSeq(max, func(k uint64, v V, _ uint64) { emit(k, v) })
}

// DrainMinSeq is DrainMin with the durability sequence number of each popped
// item passed to emit (see TryDeleteMinSeq); the persistence layer drains
// through it so every pop can be logged as a (key, seq) delete record.
func (h *Handle[V]) DrainMinSeq(max int, emit func(key uint64, value V, seq uint64)) int {
	if h.bufCap > 0 && max > h.bufCap {
		// Let refills inside this drain batch up to the drain size, so a
		// large drain costs O(max / fill) refills instead of max / bufCap.
		h.fillHint = max
		defer func() { h.fillHint = 0 }()
	}
	for n := 0; n < max; n++ {
		k, v, s, ok := h.TryDeleteMinSeq()
		if !ok {
			return n
		}
		emit(k, v, s)
	}
	if max < 0 {
		return 0
	}
	return max
}

// findMinCandidate returns the better of the DistLSM minimum and the shared
// k-LSM candidate, as in Listing 5's inner loop.
func (h *Handle[V]) findMinCandidate() *item.Item[V] {
	var local *item.Item[V]
	switch h.q.cfg.Mode {
	case SharedOnly:
		return h.q.shared.FindMin(h.cursor)
	case DistOnly:
		return h.dist.FindMin()
	default:
		local = h.dist.FindMin()
	}
	shared := h.q.shared.FindMin(h.cursor)
	switch {
	case local == nil:
		return shared
	case shared == nil:
		return local
	case shared.Key() < local.Key():
		return shared
	default:
		return local
	}
}

// TryDeleteMin attempts to delete a minimal key per the relaxed semantics
// (Listing 5). On success it returns the key, its payload and true. A false
// result means no key was found; it may be spurious under concurrent
// modification, but repeated calls eventually succeed while live keys
// remain reachable.
//
// With a Drop callback configured, items the callback reports stale are
// claimed and discarded here instead of being returned, so TryDeleteMin
// never surfaces a dropped item (slightly stronger than the paper's
// maintenance-time-only lazy deletion).
//
// The common case is a deletion-buffer pop (see delbuf.go): one anchor
// check, one version-stamped CAS, zero shared-structure walks. When the
// buffer cannot serve, the inner loop below tracks which side — the
// handle's DistLSM or the shared k-LSM — supplied each candidate: claiming
// or losing an item only changes that side, so only it is re-queried, while
// the other side's candidate is kept (a stale keeper is caught by its
// version like any other candidate). On top of that, when the sticky hint
// proves nothing smaller can be on the shared side
// (sharedlsm.SkipShared), the shared side is skipped outright — both the ρ
// bound and local ordering hold for the local minimum.
func (h *Handle[V]) TryDeleteMin() (key uint64, value V, ok bool) {
	key, value, _, ok = h.TryDeleteMinSeq()
	return key, value, ok
}

// TryDeleteMinSeq is TryDeleteMin additionally returning the durability
// sequence number stamped on the deleted item by InsertSeq (zero for items
// inserted without one). The persistence layer logs a delete record as
// (key, seq) so recovery can cancel exactly the consumed insert.
func (h *Handle[V]) TryDeleteMinSeq() (key uint64, value V, seq uint64, ok bool) {
	if h.bufCap > 0 {
		if k, v, s, hit := h.bufTryDelete(); hit {
			return k, v, s, true
		}
	}
	drop := h.q.cfg.Drop
	mode := h.q.cfg.Mode
	for {
		var local *item.Item[V]
		var shared item.Snap[V]
		var haveShared, sharedOK bool
		// In DistOnly mode there is no shared side; pretend it was fetched
		// (and found empty) so the loop below never consults it.
		haveShared = mode == DistOnly
		if mode != SharedOnly {
			local = h.dist.FindMin()
		}
		for {
			if !haveShared {
				if local != nil && h.q.shared.SkipShared(h.cursor, local.Key()) {
					// Skip-shared fast path: nothing smaller over there.
				} else {
					shared, sharedOK = h.q.shared.FindMinSnap(h.cursor)
					haveShared = true
				}
			}
			var it *item.Item[V]
			var ver uint64
			fromShared := false
			if local != nil {
				it, ver = local, 0
			}
			if sharedOK && (local == nil || shared.Key < local.Key()) {
				it, ver, fromShared = shared.It, shared.Ver, true
			}
			if it == nil {
				break // both sides empty: fall through to spy
			}
			var won bool
			if fromShared {
				// Shared candidates may be window entries retained across
				// snapshots; the version-stamped CAS claims exactly the
				// captured incarnation or fails.
				won = it.TryTakeAt(ver)
			} else {
				won = it.TryTake()
			}
			if won {
				h.deleted.Add(1)
				if drop == nil || !drop(it.Key(), it.Value()) {
					return it.Key(), it.Value(), it.Seq(), true
				}
				// Stale: discard and keep looking on the side that lost it.
			}
			// Re-query only the side whose candidate was consumed (by us or
			// by a faster handle); the failed take implies another handle
			// progressed, so retrying preserves lock-freedom.
			if fromShared {
				shared, sharedOK = h.q.shared.FindMinSnap(h.cursor)
			} else {
				local = h.dist.FindMin()
				if mode == Combined {
					haveShared = haveShared && sharedOK
				}
			}
		}
		if !h.spy() {
			var zero V
			return 0, zero, 0, false
		}
	}
}

// PeekMin returns a key/payload that TryDeleteMin could return, without
// deleting it. The view is relaxed exactly like TryDeleteMin's, and the two
// observe the same candidate source: with the deletion buffer enabled,
// PeekMin reads (and refills) the buffer head TryDeleteMin would pop next,
// so on a single handle the peeked key is exactly the next deleted key.
// Like TryDeleteMin, PeekMin never surfaces an item the Drop filter reports
// stale — filter-positive candidates are claimed and discarded in passing.
func (h *Handle[V]) PeekMin() (key uint64, value V, ok bool) {
	if h.bufCap > 0 {
		if e, hit := h.bufPeek(); hit {
			return e.Key, e.It.Value(), true
		}
		if h.bufRefill() {
			if e, hit := h.bufPeek(); hit {
				return e.Key, e.It.Value(), true
			}
		}
	}
	drop := h.q.cfg.Drop
	for {
		it := h.findMinCandidate()
		if it == nil {
			// Mirror TryDeleteMin's emptiness protocol: items may sit in
			// other handles' DistLSMs, so an empty local+shared view spies
			// before reporting empty — otherwise peek and delete would
			// disagree about a non-empty queue.
			if !h.spy() {
				var zero V
				return 0, zero, false
			}
			continue
		}
		if drop != nil && drop(it.Key(), it.Value()) {
			// Same lazy-deletion rule as TryDeleteMin: claim the stale item
			// so no handle surfaces it, then look again.
			if it.TryTake() {
				h.deleted.Add(1)
			}
			continue
		}
		return it.Key(), it.Value(), true
	}
}

// spy copies blocks from other handles' DistLSMs into h's (paper §4.2).
// Following Listing 5 a random victim is tried first; if that yields
// nothing, the remaining victims are scanned once from a random start so
// that a false return gives a much stronger (though still relaxed) emptiness
// signal. The scan is bounded and wait-free apart from the copies
// themselves.
func (h *Handle[V]) spy() bool {
	if h.q.cfg.Mode == SharedOnly {
		return false
	}
	victims := *h.q.victims.Load()
	if len(victims) == 0 {
		return false
	}
	h.SpyCalls.Add(1)
	start := h.rng.Intn(len(victims))
	for i := 0; i < len(victims); i++ {
		v := victims[(start+i)%len(victims)]
		if v == h.dist {
			continue
		}
		if h.dist.Spy(v) {
			if h.bufCap > 0 {
				// Spied-in items may undercut the fill-time local guard.
				h.bufInvalidate()
			}
			return true
		}
	}
	return false
}

// spyDue is the bounded-drain liveness pass: an ordinary spy only fires when
// the spying handle is empty, so a due item (key <= bound) sitting in an
// idle handle's DistLSM would be invisible to a bounded drain running on
// this one — reachable by nobody until its owner happens to operate. spyDue
// sweeps every victim whose blocks provably hold a live key at or below the
// bound (distlsm.SpyBelow) and copies them in, returning whether anything
// was copied. A false return is the bounded-emptiness signal: no reachable
// structure held a key <= bound at the time of the sweep.
func (h *Handle[V]) spyDue(bound uint64) bool {
	if h.q.cfg.Mode == SharedOnly {
		return false
	}
	victims := *h.q.victims.Load()
	copied := false
	for _, v := range victims {
		if v == h.dist {
			continue
		}
		if h.dist.SpyBelow(v, bound) {
			copied = true
		}
	}
	if copied {
		h.SpyCalls.Add(1)
		if h.bufCap > 0 {
			h.bufInvalidate()
		}
	}
	return copied
}

// TryDeleteMinBounded is TryDeleteMin restricted to keys at or below bound:
// it claims and returns a relaxed-minimal item only when that item's key is
// <= bound, and returns false without claiming anything once every reachable
// candidate exceeds the bound. It is the deadline primitive ("pop everything
// due by now") the timer subsystem drains through. A false return means no
// key <= bound was reachable — including, unlike TryDeleteMin's emptiness,
// keys stranded in idle handles' local structures, which a due-bounded spy
// pass (spyDue) pulls in before concluding dryness. Candidates above the
// bound are left untouched and unordered relative to this call.
func (h *Handle[V]) TryDeleteMinBounded(bound uint64) (key uint64, value V, ok bool) {
	key, value, _, ok = h.TryDeleteMinBoundedSeq(bound)
	return key, value, ok
}

// TryDeleteMinBoundedSeq is TryDeleteMinBounded additionally returning the
// item's durability sequence number, mirroring TryDeleteMinSeq.
func (h *Handle[V]) TryDeleteMinBoundedSeq(bound uint64) (key uint64, value V, seq uint64, ok bool) {
	if h.bufCap > 0 {
		if k, v, s, hit := h.bufTryDeleteBounded(bound); hit {
			return k, v, s, true
		}
	}
	drop := h.q.cfg.Drop
	mode := h.q.cfg.Mode
	spied := false
	for {
		var local *item.Item[V]
		var shared item.Snap[V]
		var haveShared, sharedOK bool
		haveShared = mode == DistOnly
		if mode != SharedOnly {
			local = h.dist.FindMin()
		}
		for {
			if !haveShared {
				if local != nil && h.q.shared.SkipShared(h.cursor, local.Key()) {
					// Skip-shared fast path: nothing smaller over there.
				} else {
					shared, sharedOK = h.q.shared.FindMinSnap(h.cursor)
					haveShared = true
				}
			}
			var it *item.Item[V]
			var ver uint64
			fromShared := false
			if local != nil {
				it, ver = local, 0
			}
			if sharedOK && (local == nil || shared.Key < local.Key()) {
				it, ver, fromShared = shared.It, shared.Ver, true
			}
			if it == nil || it.Key() > bound {
				// Both sides dry below the bound. (A candidate above the
				// bound proves dryness the same way emptiness does: it is a
				// relaxed minimum, so everything reachable from here is >=
				// it > bound.) Fall through to the due-bounded spy.
				break
			}
			var won bool
			if fromShared {
				won = it.TryTakeAt(ver)
			} else {
				won = it.TryTake()
			}
			if won {
				h.deleted.Add(1)
				if drop == nil || !drop(it.Key(), it.Value()) {
					return it.Key(), it.Value(), it.Seq(), true
				}
				// Filter-positive: discard and keep looking.
			}
			if fromShared {
				shared, sharedOK = h.q.shared.FindMinSnap(h.cursor)
			} else {
				local = h.dist.FindMin()
				if mode == Combined {
					haveShared = haveShared && sharedOK
				}
			}
		}
		if spied || !h.spyDue(bound) {
			var zero V
			return 0, zero, 0, false
		}
		spied = true
	}
}

// DrainMinBounded removes up to max items with keys at or below bound,
// invoking emit for each in pop order, and returns the number removed. It
// stops early when TryDeleteMinBounded fails — after its due-bounded spy
// pass, the strongest "nothing due" signal the structure offers. Each pop
// individually satisfies the ρ = T·k bound and local ordering; relative
// order of pops within the bound is relaxed exactly like DrainMin's.
func (h *Handle[V]) DrainMinBounded(bound uint64, max int, emit func(key uint64, value V)) int {
	return h.DrainMinBoundedSeq(bound, max, func(k uint64, v V, _ uint64) { emit(k, v) })
}

// DrainMinBoundedSeq is DrainMinBounded with each pop's durability sequence
// number passed to emit, mirroring DrainMinSeq.
func (h *Handle[V]) DrainMinBoundedSeq(bound uint64, max int, emit func(key uint64, value V, seq uint64)) int {
	if h.bufCap > 0 && max > h.bufCap {
		h.fillHint = max
		defer func() { h.fillHint = 0 }()
	}
	for n := 0; n < max; n++ {
		k, v, s, ok := h.TryDeleteMinBoundedSeq(bound)
		if !ok {
			return n
		}
		emit(k, v, s)
	}
	if max < 0 {
		return 0
	}
	return max
}

// Compact physically reclaims logically deleted and Drop-filtered items from
// every structure this handle owns or shares: its deletion buffer is
// discarded, its DistLSM is purged block-by-block, and the shared k-LSM is
// purged through this handle's cursor (distlsm.Purge / sharedlsm.Purge).
// Ordinary merges apply the filter only when blocks collide at a level, so a
// long-lived high-level block can hold filter-positive garbage indefinitely;
// Compact is the explicit pressure valve. Items removed here have their
// references released exactly once through the §4.4 retirement protocol.
// Owner only, like every handle operation; other handles' DistLSMs are
// untouched (their garbage is bounded by the per-handle size bound ~2(k+1)).
func (h *Handle[V]) Compact() {
	if h.bufCap > 0 {
		h.bufInvalidate()
	}
	if h.q.cfg.Mode != SharedOnly {
		h.dist.Purge()
	}
	if h.q.cfg.Mode != DistOnly {
		h.q.shared.Purge(h.cursor)
	}
}
