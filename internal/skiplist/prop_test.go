package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"klsm/internal/xrand"
)

// TestPropSequentialMatchesSortedMultiset: arbitrary insert/delete-min
// sequences agree with a sorted-slice oracle.
func TestPropSequentialMatchesSortedMultiset(t *testing.T) {
	rng := xrand.NewSeeded(17)
	f := func(ops []uint16) bool {
		l := New(8)
		var ref []uint64
		for _, op := range ops {
			if op&1 == 0 || len(ref) == 0 {
				key := uint64(op >> 1)
				l.Insert(rng, key)
				i := sort.Search(len(ref), func(i int) bool { return ref[i] >= key })
				ref = append(ref, 0)
				copy(ref[i+1:], ref[i:])
				ref[i] = key
			} else {
				got, ok := l.DeleteMin()
				if !ok || got != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if !l.CheckSorted() {
				return false
			}
		}
		return l.LiveLen() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropClaimAnyNodeConserves: claiming arbitrary nodes via TryClaim (the
// SprayList's access pattern) never loses or duplicates keys.
func TestPropClaimAnyNodeConserves(t *testing.T) {
	rng := xrand.NewSeeded(23)
	f := func(keys []uint64, picks []uint8) bool {
		l := New(4)
		for _, k := range keys {
			l.Insert(rng, k)
		}
		claimed := 0
		for _, p := range picks {
			// Walk p nodes in from the head and claim the landing node.
			cur := l.Next(l.Head(), 0)
			for i := 0; i < int(p) && cur != nil; i++ {
				cur = l.Next(cur, 0)
			}
			if cur != nil && !l.Deleted(cur) && l.TryClaim(cur) {
				claimed++
			}
		}
		// Remaining live + claimed must equal inserted.
		return l.LiveLen()+claimed == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRestructurePreservesLive: restructuring after arbitrary deletion
// patterns never drops a live key.
func TestPropRestructurePreservesLive(t *testing.T) {
	rng := xrand.NewSeeded(29)
	f := func(keys []uint64, deletions uint8) bool {
		if len(keys) == 0 {
			return true
		}
		l := New(1 << 30) // manual restructure only
		for _, k := range keys {
			l.Insert(rng, k)
		}
		want := len(keys)
		for i := 0; i < int(deletions)%len(keys); i++ {
			if _, ok := l.DeleteMin(); ok {
				want--
			}
		}
		l.Restructure()
		if l.LiveLen() != want {
			return false
		}
		return l.CheckSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
