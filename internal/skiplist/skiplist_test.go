package skiplist

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/xrand"
)

func TestEmptyList(t *testing.T) {
	l := New(0)
	if k, ok := l.DeleteMin(); ok {
		t.Fatalf("DeleteMin on empty = %d", k)
	}
	if l.LiveLen() != 0 || !l.CheckSorted() {
		t.Fatal("empty list inconsistent")
	}
}

func TestInsertDeleteSequential(t *testing.T) {
	l := New(0)
	rng := xrand.NewSeeded(1)
	keys := []uint64{5, 3, 9, 1, 7, 3, 5}
	for _, k := range keys {
		l.Insert(rng, k)
	}
	if !l.CheckSorted() {
		t.Fatal("list unsorted after inserts")
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, want := range sorted {
		got, ok := l.DeleteMin()
		if !ok || got != want {
			t.Fatalf("pop %d: got %d (%v), want %d", i, got, ok, want)
		}
	}
	if _, ok := l.DeleteMin(); ok {
		t.Fatal("drained list returned a key")
	}
}

func TestSortedExtractionLarge(t *testing.T) {
	l := New(16)
	rng := xrand.NewSeeded(2)
	const n = 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 1_000_000
		l.Insert(rng, keys[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, want := range keys {
		got, ok := l.DeleteMin()
		if !ok || got != want {
			t.Fatalf("pop %d: got %d (%v), want %d", i, got, ok, want)
		}
	}
}

func TestInterleavedInsertDeleteMin(t *testing.T) {
	l := New(8)
	rng := xrand.NewSeeded(3)
	// Repeatedly insert keys below the current minimum region to stress
	// insertion into/around the deleted prefix.
	for round := 0; round < 200; round++ {
		for i := 0; i < 10; i++ {
			l.Insert(rng, rng.Uint64()%1000)
		}
		for i := 0; i < 8; i++ {
			l.DeleteMin()
		}
		if !l.CheckSorted() {
			t.Fatalf("round %d: unsorted", round)
		}
	}
}

func TestTryClaimExactlyOnce(t *testing.T) {
	l := New(0)
	rng := xrand.NewSeeded(4)
	l.Insert(rng, 42)
	n := l.Next(l.Head(), 0)
	if n == nil || n.Key() != 42 {
		t.Fatalf("navigation broken: %v", n)
	}
	if !l.TryClaim(n) {
		t.Fatal("first claim failed")
	}
	if l.TryClaim(n) {
		t.Fatal("second claim succeeded")
	}
	if !l.Deleted(n) {
		t.Fatal("claimed node not Deleted")
	}
	if _, ok := l.DeleteMin(); ok {
		t.Fatal("DeleteMin returned the externally claimed key")
	}
}

func TestRestructureExcisesPrefix(t *testing.T) {
	l := New(1 << 30) // never auto-restructure
	rng := xrand.NewSeeded(5)
	for i := uint64(0); i < 100; i++ {
		l.Insert(rng, i)
	}
	for i := 0; i < 60; i++ {
		l.DeleteMin()
	}
	if p := l.DeletedPrefixLen(); p != 60 {
		t.Fatalf("deleted prefix = %d, want 60", p)
	}
	l.Restructure()
	if p := l.DeletedPrefixLen(); p != 0 {
		t.Fatalf("deleted prefix after restructure = %d", p)
	}
	if l.LiveLen() != 40 {
		t.Fatalf("live = %d, want 40", l.LiveLen())
	}
	// Remaining keys still extract in order.
	for want := uint64(60); want < 100; want++ {
		got, ok := l.DeleteMin()
		if !ok || got != want {
			t.Fatalf("got %d (%v), want %d", got, ok, want)
		}
	}
}

func TestInsertSmallerThanDeletedPrefix(t *testing.T) {
	l := New(1 << 30)
	rng := xrand.NewSeeded(6)
	for i := uint64(10); i < 20; i++ {
		l.Insert(rng, i)
	}
	// Delete 10..14, leaving a deleted prefix with keys 10-14.
	for i := 0; i < 5; i++ {
		l.DeleteMin()
	}
	// Insert keys smaller than the deleted prefix keys.
	l.Insert(rng, 3)
	l.Insert(rng, 7)
	got1, _ := l.DeleteMin()
	got2, _ := l.DeleteMin()
	if got1 != 3 || got2 != 7 {
		t.Fatalf("got %d,%d, want 3,7", got1, got2)
	}
	if got3, _ := l.DeleteMin(); got3 != 15 {
		t.Fatalf("got %d, want 15", got3)
	}
}

// TestConcurrentConservation: disjoint ranges inserted and drained by many
// goroutines; every key exactly once.
func TestConcurrentConservation(t *testing.T) {
	const workers = 8
	n := 4000
	if testing.Short() {
		n = 600
	}
	l := New(32)
	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.NewSeeded(uint64(id) + 1)
			base := uint64(id * n)
			for i := 0; i < n; i++ {
				l.Insert(rng, base+uint64(i))
			}
			for {
				k, ok := l.DeleteMin()
				if !ok {
					return
				}
				results[id] = append(results[id], k)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	total := 0
	for _, keys := range results {
		total += len(keys)
		for _, k := range keys {
			seen[k]++
		}
	}
	// Workers may exit on an empty observation while others still insert;
	// drain the remainder.
	for {
		k, ok := l.DeleteMin()
		if !ok {
			break
		}
		seen[k]++
		total++
	}
	if total != workers*n {
		t.Fatalf("extracted %d of %d", total, workers*n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d extracted %d times", k, c)
		}
	}
}

// TestConcurrentMixedSmallKeys hammers the deleted-prefix insertion race:
// all keys drawn from a tiny range so inserts constantly land inside the
// prefix delete-min is consuming.
func TestConcurrentMixedSmallKeys(t *testing.T) {
	const workers = 8
	ops := 30000
	if testing.Short() {
		ops = 5000
	}
	l := New(16)
	var wg sync.WaitGroup
	var inserted, deleted [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.NewSeeded(uint64(id) * 13)
			for i := 0; i < ops; i++ {
				if rng.Bool() {
					l.Insert(rng, rng.Uint64()%64)
					inserted[id]++
				} else if _, ok := l.DeleteMin(); ok {
					deleted[id]++
				}
			}
		}(w)
	}
	wg.Wait()
	var ins, del int64
	for w := 0; w < workers; w++ {
		ins += inserted[w]
		del += deleted[w]
	}
	rest := int64(l.LiveLen())
	if del+rest != ins {
		t.Fatalf("conservation violated: inserted %d, deleted %d, remaining %d", ins, del, rest)
	}
	if !l.CheckSorted() {
		t.Fatal("unsorted after stress")
	}
}

func TestNavigationLevels(t *testing.T) {
	l := New(0)
	rng := xrand.NewSeeded(7)
	for i := uint64(0); i < 1000; i++ {
		l.Insert(rng, i)
	}
	// Some upper level must be populated with 1000 geometric towers.
	populated := 0
	for lvl := 1; lvl < MaxHeight; lvl++ {
		if l.Next(l.Head(), lvl) != nil {
			populated++
		}
	}
	if populated < 5 {
		t.Fatalf("only %d upper levels populated for 1000 nodes", populated)
	}
	// Walking level 3 must visit keys in increasing order (live nodes).
	prev := uint64(0)
	first := true
	for n := l.Next(l.Head(), 3); n != nil; n = l.Next(n, 3) {
		if l.Deleted(n) {
			continue
		}
		if !first && n.Key() < prev {
			t.Fatalf("level 3 order violated: %d after %d", n.Key(), prev)
		}
		prev, first = n.Key(), false
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New(32)
	rng := xrand.NewSeeded(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(rng, rng.Uint64())
	}
}

func BenchmarkInsertDeletePair(b *testing.B) {
	l := New(32)
	rng := xrand.NewSeeded(1)
	for i := 0; i < 1024; i++ {
		l.Insert(rng, rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(rng, rng.Uint64())
		l.DeleteMin()
	}
}
