// Package skiplist implements the lock-free skiplist priority queue
// substrate shared by the Lindén & Jonsson baseline and the SprayList
// baseline (the two skiplist-based comparison queues of the paper's
// Figure 3).
//
// The design follows Lindén & Jonsson ("A skiplist-based concurrent
// priority queue with minimal memory contention", OPODIS 2013): delete-min
// logically deletes the front node with a *single* CAS that marks the
// node's bottom-level next pointer, leaving the deleted prefix physically
// linked; the prefix is excised in batch (one CAS on the head per level)
// only when it grows past a configurable bound. Marking the next pointer —
// rather than a flag on the node — is essential: it simultaneously blocks
// insertions after deleted nodes, which is what makes batched physical
// removal safe.
//
// Go cannot steal mark bits from pointers safely, so a mark is represented
// by pointing next[0] at a dedicated marker Node that wraps the true
// successor. Tests and both queue packages only observe this through the
// helpers (Next, Deleted, TryClaim).
//
// Keys may repeat; each Insert creates its own node. Claimed (logically
// deleted) nodes are reclaimed by Go's garbage collector once the batch
// excision unlinks them — the GC also makes the head CASes ABA-safe.
package skiplist

import (
	"sync/atomic"

	"klsm/internal/xrand"
)

// MaxHeight bounds skiplist towers; 2^24 expected items is far beyond the
// benchmark sizes.
const MaxHeight = 24

// Node is a skiplist node. Exported (opaquely) so that the SprayList can
// navigate the structure; only Key is public state.
type Node struct {
	key    uint64
	marker bool
	next   []atomic.Pointer[Node]
}

// Key returns the node's key. Undefined for head/marker nodes, which
// callers never observe through the public helpers.
func (n *Node) Key() uint64 { return n.key }

// List is the lock-free skiplist.
type List struct {
	head *Node
	// boundOffset is the deleted-prefix length that triggers batch physical
	// removal (Lindén & Jonsson's BoundOffset parameter).
	boundOffset int
}

// New returns an empty list with the given restructuring bound (<= 0 picks
// the default of 32, in the range the original evaluation found best).
func New(boundOffset int) *List {
	if boundOffset <= 0 {
		boundOffset = 32
	}
	h := &Node{next: make([]atomic.Pointer[Node], MaxHeight)}
	return &List{head: h, boundOffset: boundOffset}
}

// Head returns the head sentinel for navigation (SprayList sprays from it).
func (l *List) Head() *Node { return l.head }

// Deleted reports whether n has been logically deleted (claimed).
func (l *List) Deleted(n *Node) bool {
	if n == l.head {
		return false
	}
	r := n.next[0].Load()
	return r != nil && r.marker
}

// succ0 returns n's true bottom-level successor, skipping the marker
// wrapper if n is deleted.
func (l *List) succ0(n *Node) *Node {
	r := n.next[0].Load()
	if r != nil && r.marker {
		return r.next[0].Load()
	}
	return r
}

// Next returns n's successor at the given level for navigation. At level 0
// it skips marker wrappers; deleted nodes themselves are returned (callers
// skip them via Deleted).
func (l *List) Next(n *Node, level int) *Node {
	if level == 0 {
		return l.succ0(n)
	}
	if level >= len(n.next) {
		return nil
	}
	return n.next[level].Load()
}

// TryClaim attempts to logically delete n by marking its bottom-level next
// pointer. Exactly one claimer over n's lifetime succeeds. n must not be
// the head.
func (l *List) TryClaim(n *Node) bool {
	for {
		raw := n.next[0].Load()
		if raw != nil && raw.marker {
			return false // already claimed
		}
		m := &Node{marker: true, next: make([]atomic.Pointer[Node], 1)}
		m.next[0].Store(raw)
		if n.next[0].CompareAndSwap(raw, m) {
			return true
		}
	}
}

// randomHeight draws a geometric(1/2) tower height in [1, MaxHeight].
func randomHeight(rng *xrand.Source) int {
	h := 1
	for h < MaxHeight && rng.Bool() {
		h++
	}
	return h
}

// Insert adds key to the list. rng supplies the tower height; it must be
// owned by the calling goroutine.
func (l *List) Insert(rng *xrand.Source, key uint64) {
	height := randomHeight(rng)
	n := &Node{key: key, next: make([]atomic.Pointer[Node], height)}

	for {
		preds, succs, bottomExpected, ok := l.find(key, height)
		if !ok {
			continue // a pred was deleted under us; retry
		}
		n.next[0].Store(bottomExpected)
		if !preds[0].next[0].CompareAndSwap(bottomExpected, n) {
			continue // contention at the insertion point; retry
		}
		// Bottom-level link is the linearization point. Now link the upper
		// levels best-effort: if n has been claimed already, stop — the
		// restructuring pass will never need the tower.
		for level := 1; level < height; level++ {
			for {
				if l.Deleted(n) {
					return
				}
				n.next[level].Store(succs[level])
				if preds[level].next[level].CompareAndSwap(succs[level], n) {
					break
				}
				// Re-find this level's neighborhood and retry.
				p, s := l.findAtLevel(key, level)
				preds[level], succs[level] = p, s
			}
		}
		return
	}
}

// find locates, for levels 0..height-1, the last node with key <= the
// target (preds) and its raw successor (succs). At the bottom level it
// returns the exact raw pointer read from preds[0] so the caller's CAS
// validates atomicity. Deleted nodes encountered at upper levels are helped
// out of the way; at the bottom they are skipped without unlinking (batch
// restructuring owns physical removal there). Returns ok=false when the
// walk ran into a node deleted mid-traversal and should restart.
func (l *List) find(key uint64, height int) (preds, succs [MaxHeight]*Node, bottomExpected *Node, ok bool) {
	x := l.head
	for level := MaxHeight - 1; level >= 1; level-- {
		for {
			nxt := x.next[level].Load()
			if nxt == nil {
				break
			}
			if l.Deleted(nxt) {
				// Help unlink the deleted node at this level.
				after := nxt.next[level].Load()
				if !x.next[level].CompareAndSwap(nxt, after) {
					// Someone else changed the neighborhood; re-read.
					if l.Deleted(x) {
						return preds, succs, nil, false
					}
					continue
				}
				continue
			}
			if nxt.key <= key {
				x = nxt
				continue
			}
			break
		}
		if level < height {
			preds[level] = x
			succs[level] = x.next[level].Load()
		}
	}

	// Bottom level: advance only across live nodes with key <= target; the
	// raw successor chain (which may start with deleted nodes) is preserved
	// as the CAS-expected value.
	for {
		raw := x.next[0].Load()
		if raw != nil && raw.marker {
			// x itself was claimed during the walk; restart.
			return preds, succs, nil, false
		}
		// First live node at or after raw.
		z := raw
		for z != nil && l.Deleted(z) {
			z = l.succ0(z)
		}
		if z != nil && z.key <= key {
			x = z
			continue
		}
		preds[0] = x
		return preds, succs, raw, true
	}
}

// findAtLevel re-finds the insertion neighborhood at one upper level. It
// never advances into deleted nodes; the resulting pred may therefore be
// conservative (further left than necessary), which only costs an extra CAS
// retry, never correctness — upper levels are navigation hints and searches
// only advance to nodes whose key is <= the target.
func (l *List) findAtLevel(key uint64, level int) (pred, succ *Node) {
	x := l.head
	for lv := MaxHeight - 1; lv >= level; lv-- {
		for {
			nxt := x.next[lv].Load()
			if nxt == nil || nxt.key > key || l.Deleted(nxt) {
				break
			}
			x = nxt
		}
	}
	return x, x.next[level].Load()
}

// DeleteMin claims and returns the minimum live key (Lindén & Jonsson's
// delete-min: scan the bottom level from the head, counting the deleted
// prefix; claim the first live node with one CAS; trigger batch physical
// removal when the prefix exceeds the bound). ok=false means the list was
// observed empty.
func (l *List) DeleteMin() (uint64, bool) {
	offset := 0
	cur := l.head.next[0].Load() // head is never marked
	for cur != nil {
		raw := cur.next[0].Load()
		if raw != nil && raw.marker {
			// cur is already deleted; step over it.
			offset++
			cur = raw.next[0].Load()
			continue
		}
		m := &Node{marker: true, next: make([]atomic.Pointer[Node], 1)}
		m.next[0].Store(raw)
		if cur.next[0].CompareAndSwap(raw, m) {
			if offset >= l.boundOffset {
				l.Restructure()
			}
			return cur.key, true
		}
		// CAS failed: cur was claimed or a node was inserted right after
		// it; re-examine cur.
	}
	return 0, false
}

// Restructure batch-excises the deleted prefix: per level, one CAS swings
// the head pointer past the dead nodes. Exported so the SprayList's cleaner
// role can invoke it.
func (l *List) Restructure() {
	// Upper levels first so searches never descend into a region the bottom
	// excision already removed.
	for level := MaxHeight - 1; level >= 1; level-- {
		first := l.head.next[level].Load()
		if first == nil || !l.Deleted(first) {
			continue
		}
		x := first
		for x != nil && l.Deleted(x) {
			x = x.next[level].Load()
		}
		l.head.next[level].CompareAndSwap(first, x)
	}
	first := l.head.next[0].Load()
	if first == nil || !l.Deleted(first) {
		return
	}
	x := first
	for x != nil && l.Deleted(x) {
		x = l.succ0(x)
	}
	l.head.next[0].CompareAndSwap(first, x)
}

// DeletedPrefixLen counts the deleted prefix at the bottom level (tests and
// the SprayList cleaner heuristic).
func (l *List) DeletedPrefixLen() int {
	n := 0
	cur := l.head.next[0].Load()
	for cur != nil && l.Deleted(cur) {
		n++
		cur = l.succ0(cur)
	}
	return n
}

// CheckSorted verifies that live keys appear in non-decreasing order along
// the bottom level (quiescent tests only).
func (l *List) CheckSorted() bool {
	prev := uint64(0)
	cur := l.head.next[0].Load()
	for cur != nil {
		if !l.Deleted(cur) {
			if cur.key < prev {
				return false
			}
			prev = cur.key
		}
		cur = l.succ0(cur)
	}
	return true
}

// LiveLen counts live nodes (quiescent tests only).
func (l *List) LiveLen() int {
	n := 0
	cur := l.head.next[0].Load()
	for cur != nil {
		if !l.Deleted(cur) {
			n++
		}
		cur = l.succ0(cur)
	}
	return n
}
