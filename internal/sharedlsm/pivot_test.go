package sharedlsm

import (
	"testing"

	"klsm/internal/xrand"
)

// TestLargeKDrainCompletes is the regression test for the large-k
// performance collapse: draining a large prefill at k=4096 must terminate
// promptly (the original code paid O(dead) per delete and O(k) pivot
// recalculation per stale candidate, which turns this drain quadratic).
func TestLargeKDrainCompletes(t *testing.T) {
	n := 200000
	if testing.Short() {
		n = 20000
	}
	s := New[int](4096, true)
	c := newCursor(s, 1)
	src := xrand.NewSeeded(5)
	// Insert in chunks of 512 to mimic DistLSM overflow blocks.
	chunk := make([]uint64, 0, 512)
	for i := 0; i < n; i++ {
		chunk = append(chunk, src.Uint64())
		if len(chunk) == 512 {
			s.Insert(c, blockOf(chunk...))
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		s.Insert(c, blockOf(chunk...))
	}
	got := 0
	for {
		if _, ok := deleteMin(s, c); !ok {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d", got, n)
	}
}

// TestSetKTakesEffect verifies run-time reconfiguration: after SetK(0) the
// next snapshots behave exactly.
func TestSetKTakesEffect(t *testing.T) {
	s := New[int](1<<16, false) // huge k, no local ordering
	c := newCursor(s, 1)
	for i := uint64(0); i < 512; i++ {
		s.Insert(c, blockOf(512-i))
	}
	s.SetK(0)
	if s.K() != 0 {
		t.Fatalf("K = %d", s.K())
	}
	// Force a fresh snapshot + pivot recalculation through an insert.
	s.Insert(c, blockOf(100000))
	// With k=0 every subsequent delete must be the exact minimum.
	want := uint64(1)
	for i := 0; i < 512; i++ {
		k, ok := deleteMin(s, c)
		if !ok {
			t.Fatalf("empty after %d deletes", i)
		}
		if k != want {
			t.Fatalf("after SetK(0): got %d, want %d", k, want)
		}
		want++
	}
}

func TestSetKNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int](4, true).SetK(-2)
}

// TestWindowExhaustionRecovers: consume the whole candidate window and
// verify find-min recalculates pivots rather than reporting empty (the
// needPivots path).
func TestWindowExhaustionRecovers(t *testing.T) {
	s := New[int](8, true)
	c := newCursor(s, 1)
	s.Insert(c, blockOf(func() []uint64 {
		keys := make([]uint64, 1024)
		for i := range keys {
			keys[i] = uint64(i)
		}
		return keys
	}()...))
	// Delete more keys than one pivot window holds; every delete must
	// succeed and stay within the bound.
	for i := 0; i < 1024; i++ {
		k, ok := deleteMin(s, c)
		if !ok {
			t.Fatalf("spurious empty after %d deletes", i)
		}
		if k >= uint64(i+1+8) {
			t.Fatalf("delete %d returned %d, beyond k-bound window", i, k)
		}
	}
}
