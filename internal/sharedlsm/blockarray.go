// Package sharedlsm implements the shared k-LSM priority queue of paper §4.1
// (Listings 2 and 3).
//
// All threads see one atomic pointer to an immutable BlockArray. Updates are
// copy-on-write: a thread copies the array into a private snapshot, mutates
// the snapshot (insert, consolidate, pivot recalculation), and publishes it
// with a single compare-and-swap. Blocks themselves are shared between
// snapshots; they are never mutated after publication except for their
// filled counter, which may only shrink (trimming logically deleted tails),
// so every snapshot remains internally consistent.
//
// Delete-min relaxation: each BlockArray carries pivot offsets separating,
// per block, the keys guaranteed to be among the k+1 smallest of the whole
// array. find-min draws uniformly from that candidate set, falling back to
// the exact block minimum when the drawn item was already taken — this is
// the "any of the k+1 smallest" relaxation of the paper. Local ordering is
// layered on top through per-block Bloom filters: the minimum of every block
// that may contain the calling handle's items is compared against the random
// choice and the smaller key wins, so a handle never skips its own items.
//
// Go-specific note: the paper stamps the shared pointer with truncated
// version numbers to defeat ABA under manual memory reuse (§4.4). Go's GC
// cannot recycle a BlockArray while any handle still references it as
// `observed`, so the raw pointer CAS is ABA-safe here.
//
// Memory reclamation (§4.4): blocks a winning CAS drops from the array
// park in an epoch-tagged limbo list and recycle once every registered
// cursor's stamp has passed their epoch (and the queue-wide spy guard is
// quiescent) — see the Shared type for the full scheme. With item
// reclamation on, the same proof releases each dead block's per-item
// references: a winning cursor acquires references for the blocks it
// created (creator-only, after its CAS; Insert acquires the incoming
// block's on entry — a no-op for DistLSM overflow blocks that arrive
// carrying transferred references), and the pool that finally recycles or
// drops a block releases them, returning taken items whose last reference
// died to that handle's item pool. Failed attempts never touch the counts:
// their fresh blocks recycle unreffed through discardFresh. See DESIGN.md,
// "Deterministic item reclamation".
package sharedlsm

import (
	"sort"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// BlockArray is the immutable-once-published array of blocks (Listing 2).
// Mutating methods must only be called while the instance is private to one
// thread.
type BlockArray[V any] struct {
	// blocks is sorted by strictly decreasing level.
	blocks []*block.Block[V]
	// pivots[i] is the first index in blocks[i] whose key is <= the pivot
	// key; the suffix [pivots[i], filled) is the block's slice of the global
	// k+1-smallest candidate set. Offsets are computed against a filled
	// value read at calculation time and are clamped by readers, because
	// filled may shrink concurrently.
	pivots []int
	// k is the relaxation parameter the pivots were computed for.
	k int
	// pivotKey is the pivot key the offsets were computed against: one of
	// the k+1 smallest keys present at calculation time. Every candidate in
	// the pivot ranges has key <= pivotKey, and at most k keys present are
	// strictly smaller — the window uses it as its entry-validity bound.
	pivotKey uint64
	// minKey is the smallest key present at the last pivot calculation
	// (^0 when the array was empty). The array is immutable once published
	// except for shrinking, so minKey lower-bounds every key the array can
	// ever hold — the sticky skip-shared hint re-validates against it.
	minKey uint64
	// published marks arrays that won their CAS. Set by the owning cursor
	// just before the publication attempt and cleared on failure, so it is
	// only ever written while the array is private; cursors use it to
	// decide whether a superseded snapshot shell may be reused (§4.4).
	published bool
}

// newBlockArray returns an empty private array for relaxation parameter k.
func newBlockArray[V any](k int) *BlockArray[V] {
	return &BlockArray[V]{k: k}
}

// copyInto takes a private deep copy of a into dst, reusing dst's slices
// (block pointers are shared, the slices are not), as in Listing 2. dst is
// either fresh or a recycled never-published snapshot shell.
func (a *BlockArray[V]) copyInto(dst *BlockArray[V]) {
	dst.blocks = append(dst.blocks[:0], a.blocks...)
	dst.pivots = append(dst.pivots[:0], a.pivots...)
	dst.k = a.k
	dst.pivotKey = a.pivotKey
	dst.minKey = a.minKey
	dst.published = false
}

// alloc is the §4.4 recycling context a cursor threads through snapshot
// mutations: the owning handle's block pool, the list of blocks created
// during the current attempt (private until the snapshot wins its CAS, so
// recyclable if it does not), and scratch buffers for the hot consolidate/
// pivot paths. A nil *alloc disables pooling and scratch reuse.
type alloc[V any] struct {
	pool  *block.Pool[V]
	fresh []*block.Block[V]

	runScratch  []*block.Block[V]
	pivotHeap   []pivotCur
	pivotFilled []int
}

// blockPool returns the pool, nil-safe.
func (al *alloc[V]) blockPool() *block.Pool[V] {
	if al == nil {
		return nil
	}
	return al.pool
}

// note records a block created during the current attempt.
func (al *alloc[V]) note(b *block.Block[V]) {
	if al != nil {
		al.fresh = append(al.fresh, b)
	}
}

// unnote removes b from the fresh list, reporting whether it was there. A
// true result proves b is private (created this attempt, never published),
// so the caller may recycle it immediately.
func (al *alloc[V]) unnote(b *block.Block[V]) bool {
	if al == nil {
		return false
	}
	for i, f := range al.fresh {
		if f == b {
			last := len(al.fresh) - 1
			al.fresh[i] = al.fresh[last]
			al.fresh[last] = nil
			al.fresh = al.fresh[:last]
			return true
		}
	}
	return false
}

// discardFresh recycles every block created during a failed attempt.
func (al *alloc[V]) discardFresh() {
	if al == nil {
		return
	}
	for i, b := range al.fresh {
		al.fresh[i] = nil
		al.pool.Put(b)
	}
	al.fresh = al.fresh[:0]
}

// commitFresh forgets the fresh list after a successful publication (the
// blocks are now shared and must not be recycled from here).
func (al *alloc[V]) commitFresh() {
	if al == nil {
		return
	}
	clear(al.fresh)
	al.fresh = al.fresh[:0]
}

// empty reports whether the array holds no blocks.
func (a *BlockArray[V]) empty() bool { return len(a.blocks) == 0 }

// Blocks exposes the block count for tests.
func (a *BlockArray[V]) Blocks() int { return len(a.blocks) }

// BlockAt returns the block at index i, or nil when out of range. Callers
// must treat the block as read-only.
func (a *BlockArray[V]) BlockAt(i int) *block.Block[V] {
	if i < 0 || i >= len(a.blocks) {
		return nil
	}
	return a.blocks[i]
}

// insert adds nb at its level position and consolidates (Listing 2: "insert
// adds a block to the BlockArray at its correct level position, and calls
// consolidate to ensure that the levels of blocks in the array are strictly
// decreasing"). nb itself is never recycled here: until the snapshot wins
// its CAS the caller retries with the same block.
func (a *BlockArray[V]) insert(nb *block.Block[V], drop block.DropFunc[V], al *alloc[V]) {
	pos := len(a.blocks)
	for pos > 0 && a.blocks[pos-1].Level() <= nb.Level() {
		pos--
	}
	a.blocks = append(a.blocks, nil)
	copy(a.blocks[pos+1:], a.blocks[pos:])
	a.blocks[pos] = nb
	a.consolidate(drop, true, al)
}

// consolidate shrinks blocks, merges level collisions, and compacts the
// array (Listing 2's two passes, expressed as one merge-stack pass). It
// reports whether the array changed structurally — the signal that
// publishing the snapshot is worthwhile.
//
// Pivots are recalculated only when the structure changed or the caller
// demands it (needPivots; used when the candidate window is exhausted):
// the O(k log B) selection would otherwise dominate large-k delete-min.
func (a *BlockArray[V]) consolidate(drop block.DropFunc[V], needPivots bool, al *alloc[V]) bool {
	changed := false
	pool := al.blockPool()
	var runs []*block.Block[V]
	if al != nil {
		runs = al.runScratch[:0]
	} else {
		runs = make([]*block.Block[V], 0, len(a.blocks))
	}
	for idx, b := range a.blocks {
		if b == nil || b.Filled() == 0 {
			changed = true
			continue
		}
		// Shrink only trims the logically deleted *tail*; with large k,
		// deletions land uniformly in the candidate suffix and dead items
		// accumulate mid-block, degrading every subsequent find-min. When
		// the block is mostly dead (and big enough for the copy to
		// amortize), compact it whole. Deletions only ever land under a
		// pivot and pivots only extend toward the block head, so every
		// un-trimmed dead item sits inside the *current* suffix [p, f) —
		// counting dead there measures the whole block. The trigger is
		// dead*2 >= f (half the block), not dead*2 >= f-p (half the
		// suffix): the suffix condition made steady drains of a large
		// block quadratic — each window's worth of deletions re-copied
		// all f items — while the whole-block condition charges each O(f)
		// copy to f/2 deaths, amortized O(1) per delete. Blocks whose
		// drained region forms a contiguous tail (bounded drains, FIFO-ish
		// deadline loads) never need the copy at all: the tail trim below
		// reclaims them incrementally.
		if idx < len(a.pivots) {
			f := b.Filled()
			p := a.pivots[idx]
			if p > f {
				p = f
			}
			const minCompact = 64
			if f-p >= minCompact {
				dead := 0
				for j := p; j < f; j++ {
					if b.Item(j).Taken() {
						dead++
					}
				}
				if dead*2 >= f {
					nb := b.CopyIn(pool, b.Level())
					al.note(nb)
					b = nb
					changed = true
				}
			}
		}
		s := b.ShrinkIn(pool)
		if s != b {
			// A compaction copy: fresh this attempt. If b itself was fresh
			// it just became garbage and is private, so recycle it now.
			al.note(s)
			if al.unnote(b) {
				pool.Put(b)
			}
			changed = true
		}
		if s.Empty() {
			if al.unnote(s) {
				pool.Put(s)
			}
			changed = true
			continue
		}
		for len(runs) > 0 && runs[len(runs)-1].Level() <= s.Level() {
			top := runs[len(runs)-1]
			m := block.MergeIn(pool, top, s, drop)
			al.note(m)
			// Merged-away inputs that were created this attempt are private
			// garbage; recycle. Published inputs are reclaimed later by the
			// epoch scheme once the winning snapshot drops them.
			if al.unnote(top) {
				pool.Put(top)
			}
			if al.unnote(s) {
				pool.Put(s)
			}
			s = m
			runs = runs[:len(runs)-1]
			changed = true
		}
		if s.Empty() {
			if al.unnote(s) {
				pool.Put(s)
			}
			changed = true
			continue
		}
		runs = append(runs, s)
	}
	if len(runs) != len(a.blocks) {
		changed = true
	}
	if al != nil {
		// Keep the superseded backing array as scratch for the next pass.
		al.runScratch = a.blocks
	}
	a.blocks = runs
	if changed || needPivots {
		a.calculatePivots(al)
	}
	return changed
}

// pivotCur is calculatePivots' per-block tail cursor.
type pivotCur struct {
	key uint64
	blk int
	idx int // current cursor position within the block
}

// calculatePivots selects a pivot key that is one of the k+1 smallest keys
// present and records, per block, the offset of the first key <= pivot
// (Listing 2). Logically deleted items participate: including them only
// tightens the candidate set, and find-min's fallback handles them.
func (a *BlockArray[V]) calculatePivots(al *alloc[V]) {
	n := len(a.blocks)
	if cap(a.pivots) < n {
		a.pivots = make([]int, n)
	} else {
		a.pivots = a.pivots[:n]
	}
	a.pivotKey = 0
	a.minKey = ^uint64(0)
	if n == 0 {
		return
	}

	// Multiway selection of the (k+1)-th smallest key: walk each block from
	// its tail (minimum) toward its head with a cursor, always advancing the
	// block whose cursor key is globally smallest, k+1 times. A tiny manual
	// heap keyed by cursor key keeps this O(k log B). The heap and filled
	// scratch come from the cursor's recycling context when available.
	type cur = pivotCur
	var heapArr []cur
	var filled []int
	if al != nil {
		if cap(al.pivotHeap) < n {
			al.pivotHeap = make([]cur, 0, n)
		}
		if cap(al.pivotFilled) < n {
			al.pivotFilled = make([]int, n)
		}
		heapArr = al.pivotHeap[:0]
		filled = al.pivotFilled[:n]
		defer func() {
			al.pivotHeap = heapArr[:0]
		}()
	} else {
		heapArr = make([]cur, 0, n)
		filled = make([]int, n)
	}
	heapPush := func(c cur) {
		heapArr = append(heapArr, c)
		i := len(heapArr) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heapArr[p].key <= heapArr[i].key {
				break
			}
			heapArr[p], heapArr[i] = heapArr[i], heapArr[p]
			i = p
		}
	}
	heapPop := func() cur {
		top := heapArr[0]
		last := len(heapArr) - 1
		heapArr[0] = heapArr[last]
		heapArr = heapArr[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heapArr[l].key < heapArr[small].key {
				small = l
			}
			if r < last && heapArr[r].key < heapArr[small].key {
				small = r
			}
			if small == i {
				break
			}
			heapArr[i], heapArr[small] = heapArr[small], heapArr[i]
			i = small
		}
		return top
	}

	for i, b := range a.blocks {
		f := b.Filled()
		filled[i] = f
		a.pivots[i] = f // default: empty candidate range
		if f > 0 {
			heapPush(cur{key: b.Item(f - 1).Key(), blk: i, idx: f - 1})
		}
	}

	pivot := uint64(0)
	for taken := 0; taken <= a.k && len(heapArr) > 0; taken++ {
		c := heapPop()
		pivot = c.key
		if taken == 0 {
			a.minKey = c.key
		}
		if c.idx > 0 {
			ni := c.idx - 1
			heapPush(cur{key: a.blocks[c.blk].Item(ni).Key(), blk: c.blk, idx: ni})
		}
	}
	a.pivotKey = pivot

	// Per block, find the first index whose key is <= pivot. Blocks are
	// sorted descending, so this is a standard binary search.
	for i, b := range a.blocks {
		f := filled[i]
		a.pivots[i] = sort.Search(f, func(j int) bool {
			return b.Item(j).Key() <= pivot
		})
	}
}

// candWindow is a cursor's cached delete-min candidate window, maintained
// incrementally across snapshot states. Recomputing the candidate set —
// walking every block's pivot range and re-running the Bloom-filter
// local-ordering scan — on every FindMin call dominates the delete side once
// allocation is gone, and rebuilding it from scratch on every snapshot change
// (the previous design) costs O(k) per insert-churned delete at large k
// (EXPERIMENTS E14). The window therefore keeps its entries across snapshot
// changes and, on each sync, materializes only what the new state added: the
// pivot ranges of blocks it has never seen, and the extension [p_new, lo) of
// blocks whose pivot offset moved below the low-water mark lo already
// materialized (known tracks lo per block). Taken and out-of-range entries
// are trimmed lazily, at draw time.
//
// Entries are version-stamped item references (item.Snap), not pinned
// pointers: an entry may outlive the snapshot (and the §4.4 pin) it was read
// under, and the item may be taken, recycled and Reset into a new incarnation
// meanwhile. The version check at draw time — and TryTakeAt in the caller —
// detects exactly that, so a retained entry is either the same live
// incarnation whose key was once within a snapshot's k+1 smallest, or it is
// discarded.
//
// Why a retained entry still satisfies the rank bound: a live item present in
// a published array is present in every later published array (merges carry
// live items forward; consolidation filters only taken/dropped ones), and
// the cursor's snapshot is a copy of a published array it validated against
// the shared pointer. So a live entry with key <= the *current* snapshot's
// pivotKey is inside the current candidate bound — at most k keys of the
// snapshot multiset are strictly smaller — regardless of which snapshot it
// was materialized under. Entry validity at draw time is therefore exactly:
// version unchanged AND key <= bound (the sync-time pivotKey).
//
// Random pop order: instead of shuffling the whole window up front, next()
// draws one entry uniformly at random from the unconsumed suffix and swaps it
// to the front — an on-demand Fisher–Yates step, identical in distribution to
// the eager shuffle but O(1) per draw and compatible with appends. Two
// bounded deviations from the per-call uniform draw are documented in
// DESIGN.md: an item that migrated between blocks across a consolidation can
// transiently hold two valid entries (double draw weight) until one is
// consumed or a full rebuild dedups it, and entries the deletion buffer
// consumed pop in ascending key order. Neither affects the rank bound, which
// needs only that every returned key is within the pivot bound.
type candWindow[V any] struct {
	snap *BlockArray[V]
	gen  uint64
	pos  int
	// bound is the snapshot's pivotKey at the last sync: an entry is a valid
	// candidate iff its version is unchanged and its key is <= bound.
	bound uint64
	// dirty marks that live candidates may have left the window without
	// being taken — consumed into a deletion buffer, or discarded because
	// the bound moved below their key — since the last full build. A dry
	// window with dirty set must rebuild fully (re-materializing them from
	// the blocks, where they still live) before concluding the candidate
	// set is exhausted; otherwise those items would be unreachable until an
	// unrelated structural change.
	dirty bool
	// items is the candidate set: [0, pos) is consumed, [pos, len) is the
	// pool next() draws from.
	items []item.Snap[V]
	// known records, per block of the synced state, the lowest pivot index
	// already materialized; sync extends only below it. scratch is the
	// previous generation's backing array, recycled to avoid allocation.
	known   []winSrc[V]
	scratch []winSrc[V]
	// local caches the blocks whose Bloom filter may contain the owning
	// handle's id, so the local-ordering overlay skips the per-call filter
	// scan over all blocks. lcur/lkey/lver are fillLocal's per-block merge
	// cursors and cached head entries, kept here to avoid per-fill
	// allocations.
	local []*block.Block[V]
	lcur  []int
	lkey  []uint64
	lver  []uint64
}

// winSrc is the window's per-block low-water mark: indices [lo, filled) of
// blk have been materialized (under some earlier filled value; filled only
// shrinks, so the range can only have lost entries since).
type winSrc[V any] struct {
	blk *block.Block[V]
	lo  int
}

// windowSlack bounds the garbage the window tolerates before a full rebuild:
// once the unconsumed suffix exceeds this, most of it is dead or out of
// range (the live in-bound candidates number at most k+1) and the rebuild is
// cheaper than draw-time trimming of the accumulated entries.
func windowSlack(k int) int { return 2*(k+1) + 64 }

// sync brings the window up to date with array a at generation gen. When
// full is false it repairs incrementally: new blocks contribute their whole
// pivot range, known blocks only the extension below their low-water mark.
// A full build (forced, first use, or slack exceeded) resets and
// materializes every pivot range. It returns the number of entries
// materialized and whether a full build ran.
func (w *candWindow[V]) sync(a *BlockArray[V], gen uint64, localID int64, full bool) (int, bool) {
	if !full {
		full = len(w.known) == 0 || len(w.items)-w.pos > windowSlack(a.k)
	}
	if full {
		w.items = w.items[:0]
		w.pos = 0
		w.known = w.known[:0]
		w.dirty = false
	}
	mat := 0
	nk := w.scratch[:0]
	w.local = w.local[:0]
	for i, b := range a.blocks {
		f := b.Filled()
		p := a.pivots[i]
		if p > f {
			p = f
		}
		// hi is the exclusive end of the range still to materialize: the
		// whole clamped pivot range for unseen blocks, only [p, lo) for
		// blocks already materialized down to lo.
		lo, hi := p, f
		for _, src := range w.known {
			if src.blk == b {
				if src.lo < lo {
					lo = src.lo
				}
				if src.lo < hi {
					hi = src.lo
				}
				break
			}
		}
		for j := p; j < hi; j++ {
			it := b.Item(j)
			ver := it.Version()
			if ver&1 != 0 {
				continue
			}
			w.items = append(w.items, item.Snap[V]{It: it, Ver: ver, Key: it.Key()})
			mat++
		}
		nk = append(nk, winSrc[V]{blk: b, lo: lo})
		if localID >= 0 && b.Bloom().MayContain(uint64(localID)) {
			w.local = append(w.local, b)
		}
	}
	w.scratch = w.known[:0]
	w.known = nk
	w.snap, w.gen = a, gen
	w.bound = a.pivotKey
	if !full {
		// Entries whose key now exceeds the (possibly lowered) bound are
		// stranded until a rebuild; be conservative and mark the window.
		w.dirty = true
	}
	return mat, full
}

// next draws one valid candidate uniformly at random from the unconsumed
// entries (an on-demand Fisher–Yates step: swap the drawn entry to pos) and
// returns it without consuming it — if the caller loses the take race, the
// next draw revalidates it via its version. Invalid entries encountered are
// compacted away. ok is false when no valid entry remains.
func (w *candWindow[V]) next(rng *xrand.Source) (item.Snap[V], bool) {
	for w.pos < len(w.items) {
		j := w.pos
		if n := len(w.items) - w.pos; n > 1 {
			j += rng.Intn(n)
		}
		e := w.items[j]
		w.items[j] = w.items[w.pos]
		w.items[w.pos] = e
		if e.It.Version() == e.Ver {
			if e.Key <= w.bound {
				return e, true
			}
			// Live but above the current bound: stranded until rebuild.
			w.dirty = true
		}
		w.pos++
	}
	return item.Snap[V]{}, false
}

// consume advances past the entry next just returned, removing it from the
// draw pool. Used by the deletion-buffer fill, which claims entries later
// (by version) rather than immediately; the window marks itself dirty since
// the entry may never be taken and must then be recoverable by rebuild.
func (w *candWindow[V]) consume() {
	w.pos++
	w.dirty = true
}

// localOverlay applies local ordering on top of the drawn candidate: the
// current minima of all Bloom-matching blocks compete with cand and the
// smaller key wins, as in findMin's per-call scan. Each block's logically
// deleted tail is trimmed in place first (the paper's benign only-shrinking
// race on filled) — otherwise the item the caller took one call ago would be
// handed back as a dead candidate and trigger a full consolidation per
// delete. The returned snap may reference a logically deleted item under a
// race (odd Ver) — the caller treats that as the consolidate signal, because
// the block's true live minimum may still undercut the candidate.
func (w *candWindow[V]) localOverlay(cand item.Snap[V]) item.Snap[V] {
	for _, b := range w.local {
		if b.ShrinkInPlace() == 0 {
			continue
		}
		it := b.Min()
		if it == nil {
			continue
		}
		if k := it.Key(); k < cand.Key {
			cand = item.Snap[V]{It: it, Ver: it.Version(), Key: k}
		}
	}
	return cand
}

// fillLocal collects the room globally-smallest live keys across the
// caller's Bloom-matching blocks — a k-way ascending merge of the blocks'
// live prefixes, none above capKey — for a deletion buffer, and returns the
// guard: a key lower-bounding every live key of those blocks that was NOT
// collected (^0 when everything was). Ascending buffered pops at or below
// min(capKey, guard) can never skip one of the owner's smaller
// shared-resident keys: any such key was collected into the same buffer and
// sorts first. This is what lets the buffer hold several own-block
// candidates at once, where the draw path's overlay bound admits only the
// single current minimum. The merge matters: filling block-by-block lets
// one block exhaust room with keys that a later block's minimum then cuts
// at the guard, shrinking the effective fill to a handful of entries.
// Entries are not consumed from the window; the version check at pop time
// discards the duplicates.
func (w *candWindow[V]) fillLocal(dst []item.Snap[V], room int, capKey uint64) ([]item.Snap[V], uint64) {
	guard := ^uint64(0)
	if len(w.local) == 0 || room <= 0 {
		return dst, guard
	}
	// Blocks are sorted descending, so walking j downward yields ascending
	// keys; cur[i] is block i's smallest uncollected index (-1 = exhausted).
	// Each block's head candidate (index, key, version) is cached so a merge
	// pick costs len(local) integer compares plus one head reload, not a
	// rescan of every block's atomics. advance skips dead entries and folds
	// keys beyond capKey into the guard (taken entries below j lower-bound
	// the live ones above, so such a key bounds the whole uncollected rest).
	cur, keys, vers := w.lcur[:0], w.lkey[:0], w.lver[:0]
	advance := func(b *block.Block[V], j int) (int, uint64, uint64) {
		for j >= 0 {
			it := b.Item(j)
			ver := it.Version()
			if ver&1 == 0 {
				k := it.Key()
				if k > capKey {
					if k < guard {
						guard = k
					}
					break
				}
				return j, k, ver
			}
			j--
		}
		return -1, 0, 0
	}
	for _, b := range w.local {
		j, k, v := advance(b, b.ShrinkInPlace()-1)
		cur, keys, vers = append(cur, j), append(keys, k), append(vers, v)
	}
	w.lcur, w.lkey, w.lver = cur, keys, vers
	for room > 0 {
		best := -1
		var bestKey uint64
		for i, k := range keys {
			if cur[i] >= 0 && (best < 0 || k < bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return dst, guard
		}
		b := w.local[best]
		dst = append(dst, item.Snap[V]{It: b.Item(cur[best]), Ver: vers[best], Key: bestKey})
		room--
		cur[best], keys[best], vers[best] = advance(b, cur[best]-1)
	}
	// room exhausted: the smallest uncollected live key caps the guard.
	for i, k := range keys {
		if cur[i] >= 0 && k < guard {
			guard = k
		}
	}
	return dst, guard
}

// overlayBound returns a key that lower-bounds the live minimum of every
// Bloom-matching block: candidates at or below it cannot violate local
// ordering. Taken block minima are handled conservatively (their key still
// lower-bounds the block's live minimum, keys being sorted). ^0 when no
// local blocks exist.
func (w *candWindow[V]) overlayBound() uint64 {
	ov := ^uint64(0)
	for _, b := range w.local {
		if b.ShrinkInPlace() == 0 {
			continue
		}
		it := b.Min()
		if it == nil {
			continue
		}
		if k := it.Key(); k < ov {
			ov = k
		}
	}
	return ov
}

// findMin draws one item uniformly from the candidate set (Listing 2's
// find_min). It returns nil when no candidates remain (all ranges consumed),
// signalling the caller to consolidate. The returned item may be logically
// deleted — per the paper, the caller reacts to that by consolidating.
//
// With localID >= 0, local ordering is enforced: the minima of all blocks
// whose Bloom filter may contain localID compete with the random choice and
// the smaller key wins.
func (a *BlockArray[V]) findMin(rng *xrand.Source, localID int64) *item.Item[V] {
	n := len(a.blocks)
	if n == 0 {
		return nil
	}
	// Snapshot filled once per block: it may shrink concurrently and the
	// two-pass selection below must agree with the totals.
	var rangesBuf [block.MaxLevel + 2]int
	var filledBuf [block.MaxLevel + 2]int
	ranges := rangesBuf[:n]
	filled := filledBuf[:n]
	total := 0
	for i, b := range a.blocks {
		f := b.Filled()
		p := a.pivots[i]
		if p > f {
			p = f
		}
		filled[i] = f
		ranges[i] = f - p
		total += f - p
	}

	// Draw uniformly from the candidate set. Every live item in the set has
	// a key <= pivot, so *any* of them preserves the k+1 bound; when a draw
	// lands on a logically deleted item we re-draw a few times and try a
	// bounded backward scan near the tail (trimming the dead tail in place
	// via the paper's benign only-shrinking race on filled) before giving
	// up. Only when the set appears mostly dead do we hand back a dead item
	// to trigger the caller's consolidation — without the bounds on the
	// salvage work, large-k configurations degrade to O(dead) per delete.
	const (
		redraws  = 4
		tailScan = 64
	)
	var candidate *item.Item[V]
	if total > 0 {
	attempts:
		for attempt := 0; attempt < redraws; attempt++ {
			r := rng.Intn(total)
			for i, b := range a.blocks {
				if ranges[i] <= 0 {
					continue
				}
				if r >= ranges[i] {
					r -= ranges[i]
					continue
				}
				// Candidate set of block i is the suffix [filled-ranges, filled).
				if r != ranges[i]-1 {
					it := b.Item(filled[i] - ranges[i] + r)
					if !it.Taken() {
						candidate = it
						break attempts
					}
					candidate = it // dead; remember as consolidate signal
					continue attempts
				}
				// Tail draw: trim the dead tail, then scan a bounded window
				// backwards for a live minimum.
				b.ShrinkInPlace()
				lo := filled[i] - ranges[i]
				if bounded := filled[i] - tailScan; bounded > lo {
					lo = bounded
				}
				for j := filled[i] - 1; j >= lo; j-- {
					it := b.Item(j)
					if !it.Taken() {
						candidate = it
						break attempts
					}
				}
				candidate = b.Item(filled[i] - 1) // dead; consolidate signal
				continue attempts
			}
			break // r exhausted all ranges (concurrent shrink); bail out
		}
	}

	if localID >= 0 && candidate != nil {
		// Local ordering competes *downward* only: the overlay minimum may
		// replace a drawn candidate (its key then stays within the pivot
		// bound), but with no candidate at all it would bound nothing — the
		// caller must consolidate instead, which recalculates pivots and
		// produces a bounded candidate set.
		id := uint64(localID)
		for i, b := range a.blocks {
			if !b.Bloom().MayContain(id) {
				continue
			}
			if filled[i] == 0 {
				continue
			}
			it := b.Item(filled[i] - 1)
			if it.Key() < candidate.Key() {
				candidate = it
			}
		}
	}
	return candidate
}

// LiveCount scans all blocks for live items (tests and diagnostics only).
func (a *BlockArray[V]) LiveCount() int {
	n := 0
	for _, b := range a.blocks {
		n += b.LiveCount()
	}
	return n
}

// CheckInvariants validates structure for tests: strictly decreasing levels,
// sorted blocks, pivot offsets within bounds.
func (a *BlockArray[V]) CheckInvariants() bool {
	prev := block.MaxLevel + 2
	for i, b := range a.blocks {
		if b == nil || b.Empty() {
			return false
		}
		if b.Level() >= prev {
			return false
		}
		if !b.SortedDesc() {
			return false
		}
		if i < len(a.pivots) && a.pivots[i] < 0 {
			return false
		}
		prev = b.Level()
	}
	return true
}
