package sharedlsm

import (
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// newReclaimCursor is newPooledCursor plus an attached item pool, mirroring
// what core does per handle with item reclamation on.
func newReclaimCursor(s *Shared[int], g *block.Guard, id uint64) (*Cursor[int], *block.Pool[int], *item.Pool[int]) {
	p := block.NewPool[int](g)
	ip := item.NewPool[int]()
	p.SetItemPool(ip)
	c := s.NewCursor(id, xrand.NewSeeded(id*77+13))
	c.SetPool(p)
	return c, p, ip
}

// TestLimboOverflowReleasesItemsExactlyOnce covers the limbo-overflow drop
// path: a pinned cursor keeps the epoch scheme from draining, the limbo
// list grows past the old 256-block bound (the non-reclaiming cap, at which
// blocks used to fall to the GC with their items), and once the pin lifts,
// every deleted item must still be released to the item pool exactly once —
// including the items of blocks that were parked beyond that bound.
func TestLimboOverflowReleasesItemsExactlyOnce(t *testing.T) {
	var g block.Guard
	s := New[int](4, true)
	s.SetGuard(&g)
	cA, pA, ipA := newReclaimCursor(s, &g, 1)
	cB, _, _ := newReclaimCursor(s, &g, 2)

	// Pin: cB observes the current epoch and then goes idle, so nothing
	// retired at later epochs may drain while its stamp stays behind. (A
	// cursor that has never loaded a non-nil shared pointer carries the
	// inactive stamp and pins nothing, so seed one insert first.)
	const n = 600
	rng := xrand.NewSeeded(99)
	keys := make(map[uint64]bool, n)
	seed := rng.Uint64n(1 << 40)
	keys[seed] = true
	sb := pA.Get(0)
	sb.AddOwner(1)
	sb.Append(ipA.Get(seed, int(seed)))
	s.Insert(cA, sb)
	s.FindMin(cB)

	// Phase 1: churn through cA. Every winning push that merges blocks away
	// parks the superseded ones in limbo, where the pin keeps them.
	for i := 1; i < n; i++ {
		k := rng.Uint64n(1 << 40)
		for keys[k] {
			k = rng.Uint64n(1 << 40)
		}
		keys[k] = true
		b := pA.Get(0)
		b.AddOwner(1)
		b.Append(ipA.Get(k, int(k)))
		s.Insert(cA, b)
	}

	// Phase 2: take everything, letting FindMin's consolidations push the
	// dead structure into limbo too.
	taken := int64(0)
	for {
		it := s.FindMin(cA)
		if it == nil {
			break
		}
		if it.TryTake() {
			taken++
		}
	}
	if taken != n {
		t.Fatalf("took %d of %d", taken, n)
	}

	parked := s.LimboLen()
	if parked <= 256 {
		t.Fatalf("limbo holds %d blocks, want > 256 (the old drop bound) — overflow path not exercised", parked)
	}
	if leaked := s.LimboLeaked(); leaked != 0 {
		t.Fatalf("%d blocks leaked below the reclaim cap", leaked)
	}
	if got := ipA.Puts(); got != 0 {
		// Nothing may release while the pin holds: a release here would
		// mean an item was reclaimed while cB could still reach its block.
		t.Fatalf("%d items released under an active epoch pin", got)
	}

	// Phase 3: lift the pin and drain. Every taken item's last block
	// reference dies now, so the ledger must balance exactly.
	s.RefreshStamp(cB)
	s.DrainRetired(cA)
	if got := ipA.Puts(); got != taken {
		t.Fatalf("items released = %d, want exactly %d", got, taken)
	}
	if st := pA.Stats(); st.ItemsLostLive != 0 {
		t.Fatalf("%d live items hit refcount zero", st.ItemsLostLive)
	}
	if s.LimboLen() != 0 {
		t.Fatalf("limbo still holds %d blocks after drain", s.LimboLen())
	}
}

// TestInsertReturnsMergedAwayLineageBlock: a block that arrives carrying
// its lineage's transferred references (a DistLSM overflow) and is merged
// away inside the winning attempt must be handed back to the caller, NOT
// recycled here — an ungated release could reclaim an item while a spy
// still reads it through the caller's not-yet-unlinked donor blocks. An
// entry-acquired block (the shared side took its references itself) is
// recycled internally as before.
func TestInsertReturnsMergedAwayLineageBlock(t *testing.T) {
	var g block.Guard
	s := New[int](4, true)
	s.SetGuard(&g)
	c, p, ip := newReclaimCursor(s, &g, 1)

	// Seed the array so the next insert triggers a level-collision merge.
	seed := p.Get(0)
	seed.AddOwner(1)
	seed.Append(ip.Get(50, 50))
	if got := s.Insert(c, seed); got != nil {
		t.Fatalf("entry-acquired seed came back (%p)", got)
	}

	// A lineage-carrying block: references acquired before entry, as a
	// DistLSM overflow block's are (transferred from its donors).
	nb := p.Get(0)
	nb.AddOwner(1)
	it := ip.Get(10, 10)
	nb.Append(it)
	nb.AcquireRefs()
	if it.Refs() != 1 {
		t.Fatalf("refs = %d before insert", it.Refs())
	}
	got := s.Insert(c, nb)
	if got != nb {
		t.Fatalf("merged-away lineage block not returned (got %p, want %p)", got, nb)
	}
	if !nb.HoldsRefs() {
		t.Fatal("returned block no longer holds its references")
	}
	// The merged shared block acquired its own reference post-CAS.
	if it.Refs() != 2 {
		t.Fatalf("refs = %d after merge, want 2 (lineage + shared copy)", it.Refs())
	}
	// The caller retires it after its unlink stores; quiescent guard
	// releases immediately and exactly once.
	p.Retire(got)
	if it.Refs() != 1 {
		t.Fatalf("refs = %d after caller retire, want 1", it.Refs())
	}
}

// TestLimboCapNonReclaiming: without an item pool the old 256-block cap
// still applies and overflow falls to the GC (counted, not released).
func TestLimboCapNonReclaiming(t *testing.T) {
	var g block.Guard
	s := New[int](4, true)
	s.SetGuard(&g)
	cA, pA := newPooledCursor(s, &g, 1)
	cB, _ := newPooledCursor(s, &g, 2)
	rng := xrand.NewSeeded(7)
	s.Insert(cA, singletonIn(pA, 1, rng.Uint64n(1<<40)))
	s.FindMin(cB) // pin (the seed insert makes the shared pointer non-nil)

	for i := 0; i < 800; i++ {
		s.Insert(cA, singletonIn(pA, 1, rng.Uint64n(1<<40)))
	}
	if got := s.LimboLen(); got > sharedLimboCap {
		t.Fatalf("limbo grew to %d, cap is %d", got, sharedLimboCap)
	}
	if s.LimboLeaked() == 0 {
		t.Fatal("expected overflow drops at the non-reclaiming cap")
	}
}
