package sharedlsm

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// blockOf builds a private block from keys (sorted descending internally).
func blockOf(keys ...uint64) *block.Block[int] {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	b := block.New[int](block.LevelForCount(len(sorted)))
	for _, k := range sorted {
		b.Append(item.New(k, 0))
	}
	return b
}

// insertKeys inserts each key as its own block (the k=0 shaped workload),
// tagging the block with the cursor's handle ID as the combined queue's
// DistLSM would.
func insertKeys(s *Shared[int], c *Cursor[int], keys ...uint64) {
	for _, k := range keys {
		b := blockOf(k)
		b.AddOwner(c.id)
		s.Insert(c, b)
	}
}

// deleteMin performs the combined-queue deletion protocol against the shared
// k-LSM only: FindMin + TryTake until success or empty.
func deleteMin(s *Shared[int], c *Cursor[int]) (uint64, bool) {
	for {
		it := s.FindMin(c)
		if it == nil {
			return 0, false
		}
		if it.TryTake() {
			return it.Key(), true
		}
	}
}

func newCursor(s *Shared[int], id uint64) *Cursor[int] {
	return s.NewCursor(id, xrand.NewSeeded(id*2654435761+1))
}

func TestEmptySharedLSM(t *testing.T) {
	s := New[int](4, true)
	c := newCursor(s, 1)
	if !s.Empty() {
		t.Fatal("fresh queue not Empty")
	}
	if it := s.FindMin(c); it != nil {
		t.Fatalf("FindMin on empty = %v", it)
	}
}

func TestInsertThenFindMinExactWithKZero(t *testing.T) {
	s := New[int](0, true)
	c := newCursor(s, 1)
	insertKeys(s, c, 5, 3, 9, 1, 7)
	// k = 0: find-min must return the exact minimum.
	want := []uint64{1, 3, 5, 7, 9}
	for _, w := range want {
		k, ok := deleteMin(s, c)
		if !ok || k != w {
			t.Fatalf("got %d (%v), want %d", k, ok, w)
		}
	}
	if _, ok := deleteMin(s, c); ok {
		t.Fatal("delete on drained queue succeeded")
	}
}

func TestBulkBlockInsert(t *testing.T) {
	s := New[int](0, true)
	c := newCursor(s, 1)
	s.Insert(c, blockOf(10, 20, 30, 40))
	s.Insert(c, blockOf(5, 15, 25, 35))
	arr := s.Snapshot()
	if arr == nil || !arr.CheckInvariants() {
		t.Fatal("invariants violated after bulk inserts")
	}
	want := []uint64{5, 10, 15, 20, 25, 30, 35, 40}
	for _, w := range want {
		k, ok := deleteMin(s, c)
		if !ok || k != w {
			t.Fatalf("got %d (%v), want %d", k, ok, w)
		}
	}
}

// TestRelaxationBoundSingleThread verifies Lemma 2 specialized to one
// thread: every delete-min returns a key of rank <= k+1 among live keys.
func TestRelaxationBoundSingleThread(t *testing.T) {
	for _, k := range []int{0, 1, 4, 16, 64} {
		s := New[int](k, true)
		c := newCursor(s, 1)
		src := xrand.NewSeeded(uint64(k) + 7)

		var live []uint64 // kept sorted ascending
		insert := func(key uint64) {
			i := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			live = append(live, 0)
			copy(live[i+1:], live[i:])
			live[i] = key
		}
		for i := 0; i < 300; i++ {
			key := src.Uint64() % 10000
			s.Insert(c, blockOf(key))
			insert(key)
		}
		for len(live) > 0 {
			key, ok := deleteMin(s, c)
			if !ok {
				t.Fatalf("k=%d: queue empty with %d live keys", k, len(live))
			}
			rank := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if rank > k {
				t.Fatalf("k=%d: returned key %d has rank %d > k", k, key, rank)
			}
			// Remove one occurrence of key.
			i := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if i == len(live) || live[i] != key {
				t.Fatalf("k=%d: returned key %d not live", k, key)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
}

// TestLocalOrderingNeverSkipsOwnItems: with local ordering, a handle that
// inserted the global minimum must receive it, even for large k.
func TestLocalOrderingNeverSkipsOwnItems(t *testing.T) {
	s := New[int](1<<20, true) // k so large the random pick is ~arbitrary
	mine := newCursor(s, 1)
	other := newCursor(s, 2)
	// Other handle floods with large keys.
	for i := uint64(0); i < 200; i++ {
		s.Insert(other, blockOf(1000+i))
	}
	// This handle inserts small keys; it must get them back in order.
	insertKeys(s, mine, 5, 3, 8)
	for _, want := range []uint64{3, 5, 8} {
		k, ok := deleteMin(s, mine)
		if !ok || k != want {
			t.Fatalf("local ordering violated: got %d (%v), want %d", k, ok, want)
		}
	}
}

func TestWithoutLocalOrderingStillBounded(t *testing.T) {
	s := New[int](2, false)
	c := newCursor(s, 1)
	insertKeys(s, c, 50, 40, 30, 20, 10)
	// Bound still holds: first deletion returns one of the 3 smallest.
	k, ok := deleteMin(s, c)
	if !ok || k > 30 {
		t.Fatalf("relaxation bound violated without local ordering: %d", k)
	}
}

func TestTwoCursorsSeeEachOthersInserts(t *testing.T) {
	s := New[int](0, true)
	a := newCursor(s, 1)
	b := newCursor(s, 2)
	s.Insert(a, blockOf(7))
	if it := s.FindMin(b); it == nil || it.Key() != 7 {
		t.Fatalf("cursor b sees %v, want key 7", it)
	}
	k, ok := deleteMin(s, b)
	if !ok || k != 7 {
		t.Fatalf("cursor b deleted %d (%v)", k, ok)
	}
	if it := s.FindMin(a); it != nil {
		t.Fatalf("cursor a still sees %v after b drained", it)
	}
}

// TestConcurrentConservation: T goroutines each insert n disjoint keys and
// then the group drains the queue; every key must be extracted exactly once.
func TestConcurrentConservation(t *testing.T) {
	const workers = 8
	n := 3000
	if testing.Short() {
		n = 500
	}
	for _, k := range []int{0, 4, 256} {
		s := New[int](k, true)
		var wg sync.WaitGroup
		extracted := make([][]uint64, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := newCursor(s, uint64(id+1))
				base := uint64(id * n)
				for i := 0; i < n; i++ {
					s.Insert(c, blockOf(base+uint64(i)))
				}
				for {
					key, ok := deleteMin(s, c)
					if !ok {
						return
					}
					extracted[id] = append(extracted[id], key)
				}
			}(w)
		}
		wg.Wait()
		seen := make(map[uint64]int)
		total := 0
		for _, keys := range extracted {
			for _, key := range keys {
				seen[key]++
				total += 1
			}
		}
		if total != workers*n {
			t.Fatalf("k=%d: extracted %d keys, want %d", k, total, workers*n)
		}
		for key, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("k=%d: key %d extracted %d times", k, key, cnt)
			}
		}
	}
}

func TestInsertEmptyBlockNoop(t *testing.T) {
	s := New[int](4, true)
	c := newCursor(s, 1)
	s.Insert(c, block.New[int](0))
	s.Insert(c, nil)
	if !s.Empty() {
		t.Fatal("inserting empty/nil block changed the queue")
	}
}

func TestDropCallbackDuringConsolidate(t *testing.T) {
	s := New[int](0, true)
	stale := map[uint64]bool{20: true, 40: true}
	s.SetDrop(func(key uint64, _ int) bool { return stale[key] })
	c := newCursor(s, 1)
	insertKeys(s, c, 10, 20, 30, 40, 50)
	var got []uint64
	for {
		k, ok := deleteMin(s, c)
		if !ok {
			break
		}
		got = append(got, k)
	}
	for _, k := range got {
		if stale[k] {
			t.Fatalf("stale key %d returned", k)
		}
	}
	// 10, 30, 50 must all come out (drop applies only during merges, so some
	// stale keys may be returned... no: they were inserted as single blocks
	// and merged at insert time, where drop runs).
	if len(got) != 3 || got[0] != 10 || got[1] != 30 || got[2] != 50 {
		t.Fatalf("got %v, want [10 30 50]", got)
	}
}

func BenchmarkSharedInsertK256(b *testing.B) {
	s := New[struct{}](256, true)
	c := s.NewCursor(1, xrand.NewSeeded(1))
	src := xrand.NewSeeded(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := block.New[struct{}](0)
		blk.Append(item.New(src.Uint64(), struct{}{}))
		s.Insert(c, blk)
	}
}
