package sharedlsm

import (
	"sync"
	"testing"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// newPooledCursor builds a cursor wired to a fresh pool sharing guard g,
// mirroring what core does per handle.
func newPooledCursor(s *Shared[int], g *block.Guard, id uint64) (*Cursor[int], *block.Pool[int]) {
	p := block.NewPool[int](g)
	c := s.NewCursor(id, xrand.NewSeeded(id*77+13))
	c.SetPool(p)
	return c, p
}

func singletonIn(p *block.Pool[int], id uint64, key uint64) *block.Block[int] {
	b := p.Get(0)
	b.AddOwner(id)
	b.Append(item.New(key, int(key)))
	return b
}

// TestPooledSharedSequential drives insert/find-min/take cycles through a
// pooled cursor and checks behavior plus eventual block recycling.
func TestPooledSharedSequential(t *testing.T) {
	var g block.Guard
	s := New[int](8, true)
	s.SetGuard(&g)
	c, p := newPooledCursor(s, &g, 1)

	const n = 5000
	inserted := make(map[uint64]bool, n)
	rng := xrand.NewSeeded(5)
	for i := 0; i < n; i++ {
		k := rng.Uint64n(1 << 40)
		for inserted[k] {
			k = rng.Uint64n(1 << 40)
		}
		inserted[k] = true
		s.Insert(c, singletonIn(p, 1, k))
	}
	got := 0
	for {
		it := s.FindMin(c)
		if it == nil {
			break
		}
		if !it.TryTake() {
			t.Fatal("sequential take failed")
		}
		if !inserted[it.Key()] {
			t.Fatalf("unknown key %d", it.Key())
		}
		delete(inserted, it.Key())
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d items", got, n)
	}
	st := p.Stats()
	if st.Hits == 0 || st.Puts == 0 {
		t.Fatalf("pooled shared path never recycled: %+v", st)
	}
	if !s.guard.Quiescent() {
		t.Fatal("guard not quiescent after sequential run")
	}
}

// TestPooledSharedConcurrent hammers the epoch-reclamation scheme: several
// pooled cursors insert and delete concurrently while recycled blocks flow
// between the shared limbo and the per-cursor pools. Run under -race this
// is the §4.4 safety check for the shared k-LSM.
func TestPooledSharedConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency stress; skipped with -short")
	}
	var g block.Guard
	s := New[int](64, true)
	s.SetGuard(&g)

	const (
		workers = 4
		perW    = 8000
	)
	var wg sync.WaitGroup
	var taken, inserts [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, p := newPooledCursor(s, &g, uint64(id)+1)
			rng := xrand.NewSeeded(uint64(id)*991 + 7)
			for i := 0; i < perW; i++ {
				if rng.Bool() {
					s.Insert(c, singletonIn(p, uint64(id)+1, rng.Uint64n(1<<32)))
					inserts[id]++
				} else {
					it := s.FindMin(c)
					if it != nil && it.TryTake() {
						taken[id]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain what remains; conservation demands inserts == takes + drained.
	c, _ := newPooledCursor(s, &g, 99)
	var drained int64
	for {
		it := s.FindMin(c)
		if it == nil {
			break
		}
		if it.TryTake() {
			drained++
		}
	}
	var totalTaken, totalIns int64
	for w := 0; w < workers; w++ {
		totalTaken += taken[w]
		totalIns += inserts[w]
	}
	if totalTaken+drained != totalIns {
		t.Fatalf("conservation violated: %d inserted, %d taken + %d drained",
			totalIns, totalTaken, drained)
	}
	if snap := s.Snapshot(); snap != nil && snap.LiveCount() != 0 {
		t.Fatalf("%d live items left after drain", snap.LiveCount())
	}
}
