package sharedlsm

import (
	"sort"
	"sync"
	"testing"

	"klsm/internal/xrand"
)

// newCached returns a Shared with the candidate-window cache enabled, the
// configuration the combined queue uses by default.
func newCached(k int, localOrdering bool) *Shared[int] {
	s := New[int](k, localOrdering)
	s.SetMinCaching(true)
	return s
}

// TestMinCachingRelaxationBound mirrors TestRelaxationBoundSingleThread with
// the candidate window on: popping successive cached candidates must stay
// within the k+1-smallest bound at every step.
func TestMinCachingRelaxationBound(t *testing.T) {
	for _, k := range []int{0, 1, 4, 16, 64} {
		s := newCached(k, true)
		c := newCursor(s, 1)
		src := xrand.NewSeeded(uint64(k) + 7)

		var live []uint64 // kept sorted ascending
		insert := func(key uint64) {
			i := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			live = append(live, 0)
			copy(live[i+1:], live[i:])
			live[i] = key
		}
		for i := 0; i < 300; i++ {
			key := src.Uint64() % 10000
			s.Insert(c, blockOf(key))
			insert(key)
		}
		for len(live) > 0 {
			key, ok := deleteMin(s, c)
			if !ok {
				t.Fatalf("k=%d: queue empty with %d live keys", k, len(live))
			}
			rank := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if rank > k {
				t.Fatalf("k=%d: returned key %d has rank %d > k", k, key, rank)
			}
			i := sort.Search(len(live), func(i int) bool { return live[i] >= key })
			if i == len(live) || live[i] != key {
				t.Fatalf("k=%d: returned key %d not live", k, key)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
}

// TestMinCachingLocalOrdering: the cached window's local-ordering overlay
// must still hand a handle its own minimum first.
func TestMinCachingLocalOrdering(t *testing.T) {
	s := newCached(1<<20, true)
	mine := newCursor(s, 1)
	other := newCursor(s, 2)
	for i := uint64(0); i < 200; i++ {
		s.Insert(other, blockOf(1000+i))
	}
	insertKeys(s, mine, 5, 3, 8)
	for _, want := range []uint64{3, 5, 8} {
		k, ok := deleteMin(s, mine)
		if !ok || k != want {
			t.Fatalf("local ordering violated with min caching: got %d (%v), want %d", k, ok, want)
		}
	}
}

// TestMinHintLifecycle: a successful FindMin arms the hint; any publication
// that moves the shared pointer disarms it.
func TestMinHintLifecycle(t *testing.T) {
	s := newCached(4, true)
	c := newCursor(s, 1)
	if _, ok := s.MinHint(c); ok {
		t.Fatal("fresh cursor has a hint")
	}
	insertKeys(s, c, 30, 10, 20)
	it := s.FindMin(c)
	if it == nil {
		t.Fatal("FindMin found nothing")
	}
	hint, ok := s.MinHint(c)
	if !ok {
		t.Fatal("no hint after successful FindMin")
	}
	if hint != it.Key() {
		t.Fatalf("hint %d != candidate key %d", hint, it.Key())
	}
	// The hint is a lower bound on every key the shared side can supply.
	if hint > 10 {
		t.Fatalf("hint %d exceeds live minimum 10", hint)
	}
	// A publication moves the pointer: the hint must expire.
	insertKeys(s, c, 5)
	if _, ok := s.MinHint(c); ok {
		t.Fatal("hint survived a publication")
	}
	// The next FindMin re-arms it, now covering the smaller key.
	it = s.FindMin(c)
	if it == nil || it.Key() != 5 {
		t.Fatalf("FindMin after insert = %v, want key 5", it)
	}
	if hint, ok := s.MinHint(c); !ok || hint != 5 {
		t.Fatalf("re-armed hint = %d (%v), want 5", hint, ok)
	}
}

// TestMinHintDisabled: with caching off the hint must never arm, so the
// combined queue's skip-shared fast path stays off too.
func TestMinHintDisabled(t *testing.T) {
	s := New[int](4, true)
	c := newCursor(s, 1)
	insertKeys(s, c, 10)
	if it := s.FindMin(c); it == nil {
		t.Fatal("FindMin found nothing")
	}
	if _, ok := s.MinHint(c); ok {
		t.Fatal("hint armed with min caching disabled")
	}
}

// TestStickyHintCrossPublication covers the sticky generalization of the
// skip-shared hint: a publication that moves the shared pointer no longer
// kills the hint outright — the skip is re-granted when the new array's
// minimum-key floor proves the shared side holds nothing below the local
// key, re-arming the hint on the new array; the budget bounds consecutive
// sticks and an undercutting publication denies and resets.
func TestStickyHintCrossPublication(t *testing.T) {
	s := newCached(4, true)
	s.SetStickyHint(2)
	c := newCursor(s, 1)
	insertKeys(s, c, 100, 200, 300)
	it := s.FindMin(c)
	if it == nil || it.Key() != 100 {
		t.Fatalf("FindMin = %v, want key 100", it)
	}
	// Exact path: same array, local key at or below the hint — no stick.
	if !s.SkipShared(c, 50) {
		t.Fatal("exact-array skip denied")
	}
	if got := c.HintSticks.Load(); got != 0 {
		t.Fatalf("exact skip counted as a stick: %d", got)
	}
	// A publication moves the pointer; the floor 100 ≥ 50 proves no shared
	// key undercuts the local one → sticky skip, hint re-armed.
	insertKeys(s, c, 150)
	if !s.SkipShared(c, 50) {
		t.Fatal("sticky skip denied despite floor ≥ local key")
	}
	if got := c.HintSticks.Load(); got != 1 {
		t.Fatalf("HintSticks = %d, want 1", got)
	}
	// Re-armed on the new array: the next skip is exact again.
	if !s.SkipShared(c, 50) {
		t.Fatal("re-armed skip denied")
	}
	if got := c.HintSticks.Load(); got != 1 {
		t.Fatalf("exact skip after re-arm counted as a stick: %d", got)
	}
	// Budget: a second consecutive stick is the last the budget of 2 allows.
	insertKeys(s, c, 160)
	if !s.SkipShared(c, 50) {
		t.Fatal("second sticky skip denied")
	}
	insertKeys(s, c, 170)
	if s.SkipShared(c, 50) {
		t.Fatal("sticky skip granted past the budget")
	}
	// A real shared query resets the streak and re-arms.
	if s.FindMin(c) == nil {
		t.Fatal("FindMin found nothing")
	}
	insertKeys(s, c, 180)
	if !s.SkipShared(c, 50) {
		t.Fatal("sticky skip denied after streak reset")
	}
	// An undercutting publication (floor below the local key) must deny:
	// the shared side now holds a key the local minimum does not dominate.
	insertKeys(s, c, 10)
	if s.SkipShared(c, 50) {
		t.Fatal("skip granted with shared key 10 below local 50")
	}
}

// TestStickyHintDisabled: with a zero sticky budget the hint dies with its
// array — the pre-sticky MinHint behavior.
func TestStickyHintDisabled(t *testing.T) {
	s := newCached(4, true)
	c := newCursor(s, 1)
	insertKeys(s, c, 100)
	if s.FindMin(c) == nil {
		t.Fatal("FindMin found nothing")
	}
	if !s.SkipShared(c, 50) {
		t.Fatal("exact-array skip denied")
	}
	insertKeys(s, c, 150)
	if s.SkipShared(c, 50) {
		t.Fatal("cross-publication skip granted with stickiness disabled")
	}
}

// TestMinCachingWindowExhaustion drains far past one window's worth of
// candidates so exhaustion → pivot recalculation → rebuild cycles are
// exercised.
func TestMinCachingWindowExhaustion(t *testing.T) {
	s := newCached(2, true)
	c := newCursor(s, 1)
	const n = 500
	for i := 0; i < n; i++ {
		s.Insert(c, blockOf(uint64(i^0x155)))
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		k, ok := deleteMin(s, c)
		if !ok {
			t.Fatalf("empty after %d of %d deletions", i, n)
		}
		if seen[k] {
			t.Fatalf("key %d extracted twice", k)
		}
		seen[k] = true
	}
	if k, ok := deleteMin(s, c); ok {
		t.Fatalf("extra key %d after full drain", k)
	}
}

// TestMinCachingConcurrentConservation mirrors TestConcurrentConservation
// with the candidate window on: exactly-once extraction under contention.
func TestMinCachingConcurrentConservation(t *testing.T) {
	const workers = 8
	n := 3000
	if testing.Short() {
		n = 500
	}
	for _, k := range []int{0, 4, 256} {
		s := newCached(k, true)
		var wg sync.WaitGroup
		extracted := make([][]uint64, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := newCursor(s, uint64(id+1))
				base := uint64(id * n)
				for i := 0; i < n; i++ {
					s.Insert(c, blockOf(base+uint64(i)))
				}
				for {
					key, ok := deleteMin(s, c)
					if !ok {
						return
					}
					extracted[id] = append(extracted[id], key)
				}
			}(w)
		}
		wg.Wait()
		seen := make(map[uint64]int)
		total := 0
		for _, keys := range extracted {
			for _, key := range keys {
				seen[key]++
				total++
			}
		}
		if total != workers*n {
			t.Fatalf("k=%d: extracted %d keys, want %d", k, total, workers*n)
		}
		for key, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("k=%d: key %d extracted %d times", k, key, cnt)
			}
		}
	}
}
