package sharedlsm

import (
	"sync"
	"sync/atomic"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// sharedLimboCap bounds the queue of dropped-but-not-yet-reclaimable blocks;
// overflow is abandoned to the garbage collector (the Go backstop §4.4's C++
// original lacks). With item reclamation on, a dropped block leaks its item
// references too, so reclaiming queues use the larger bound before giving
// up; either way the overflow is counted in LimboLeaked.
const (
	sharedLimboCap        = 256
	sharedLimboCapReclaim = 2048
)

// retiredBlock is a block dropped from a published BlockArray, tagged with
// the epoch of the CAS that dropped it.
type retiredBlock[V any] struct {
	b     *block.Block[V]
	epoch uint64
}

// Shared is the shared k-LSM priority queue (Listing 3): one atomic pointer
// to the current BlockArray, updated copy-on-write.
//
// Memory reclamation (§4.4): the paper stamps the shared pointer with
// truncated version numbers to defeat ABA under manual reuse; under Go's GC
// the raw pointer CAS is ABA-safe, but recycling the blocks of superseded
// arrays still needs a proof that no thread reads them. That proof is epoch
// based. Shared keeps a global epoch counter; every cursor stamps itself
// with the current epoch before loading the shared pointer, so any block a
// cursor can ever reach lives in an array it loaded at-or-after its stamp.
// A winning CAS that drops blocks bumps the epoch to E and parks the blocks
// in a limbo list tagged E; they recycle once every stamped cursor has
// advanced to a stamp >= E (and the queue-wide spy guard is quiescent, which
// covers non-cursor readers such as melds and spies on blocks that migrated
// in from a DistLSM eviction). Cursors that never refreshed — or that have
// been deactivated — carry the ^0 sentinel and pin nothing.
type Shared[V any] struct {
	ptr atomic.Pointer[BlockArray[V]]
	// k is the relaxation parameter. It is atomic because the paper allows
	// reconfiguring k at run time (§1); each BlockArray snapshot carries
	// the k its pivots were computed with, so a change takes effect on the
	// next snapshot mutation.
	k    atomic.Int64
	drop block.DropFunc[V]
	// localOrdering enables the Bloom-filter check that guarantees a handle
	// never skips its own items. On by default; the ablation benchmark
	// switches it off.
	localOrdering bool
	// minCaching enables the per-cursor candidate-window cache (and the
	// MinHint fast path built on it): FindMin pops successive candidates
	// from a window maintained incrementally across snapshot states instead
	// of re-running the pivot-range draw and Bloom scan on every call.
	// Semantics are identical either way — every candidate the window
	// supplies is within the same k+1-smallest bound. Set before the queue
	// is shared.
	minCaching bool
	// stickyOps bounds how many consecutive skip-shared decisions a cursor
	// may re-validate across shared publications (the MultiQueue-style
	// sticky hint); 0 disables the sticky extension and the hint dies with
	// its array, as in MinHint. Set before the queue is shared.
	stickyOps int

	// epoch counts winning publications that dropped blocks.
	epoch atomic.Uint64
	// guard is the queue-wide reader guard shared with the DistLSM pools;
	// nil when pooling is disabled.
	guard *block.Guard
	// cursors is the copy-on-write registry of stamped cursors, scanned for
	// the minimum stamp when draining limbo. Registration is rare; regMu
	// serializes it.
	regMu   sync.Mutex
	cursors atomic.Pointer[[]*Cursor[V]]
	// limbo holds dropped published blocks awaiting epoch quiescence.
	// limboMu is only ever TryLock'ed on the operation paths: on contention
	// the winner parks the blocks on its own cursor (pending) instead of
	// blocking, preserving lock-freedom, and retries on its next push.
	// limboMinEpoch caches the smallest epoch present so a drain attempt
	// that cannot release anything costs O(1) instead of a full scan.
	limboMu       sync.Mutex
	limbo         []retiredBlock[V]
	limboMinEpoch uint64
	// limboLeaked counts blocks dropped to the GC at the limbo cap — with
	// item reclamation on, the one escape that also leaks item references.
	limboLeaked atomic.Int64
}

// New returns an empty shared k-LSM with relaxation parameter k >= 0.
func New[V any](k int, localOrdering bool) *Shared[V] {
	if k < 0 {
		panic("sharedlsm: negative k")
	}
	s := &Shared[V]{localOrdering: localOrdering}
	s.k.Store(int64(k))
	return s
}

// SetDrop installs the lazy-deletion callback used during merges. Must be
// called before the queue is shared.
func (s *Shared[V]) SetDrop(drop block.DropFunc[V]) { s.drop = drop }

// SetMinCaching toggles the candidate-window cache on cursors of this
// structure. Must be called before the queue is shared.
func (s *Shared[V]) SetMinCaching(enabled bool) { s.minCaching = enabled }

// SetStickyHint sets the sticky skip-shared budget: the number of
// consecutive operations a cursor's hint may survive shared publications by
// re-validating against the new array's minimum-key floor (see SkipShared).
// 0 disables stickiness. Must be called before the queue is shared.
func (s *Shared[V]) SetStickyHint(ops int) { s.stickyOps = ops }

// SetGuard installs the queue-wide reader guard gating block reclamation
// (§4.4). Must be called before the queue is shared; leaving it unset only
// matters for cursors with pools, whose limbo then drains on cursor stamps
// alone — pass the same guard the DistLSM pools use so spy traffic is
// respected.
func (s *Shared[V]) SetGuard(g *block.Guard) { s.guard = g }

// K returns the current relaxation parameter.
func (s *Shared[V]) K() int { return int(s.k.Load()) }

// SetK changes the relaxation parameter at run time (paper §1). Snapshots
// taken before the change keep their old pivot sets, so the new bound takes
// full effect once in-flight snapshots are superseded.
func (s *Shared[V]) SetK(k int) {
	if k < 0 {
		panic("sharedlsm: negative k")
	}
	s.k.Store(int64(k))
}

// inactiveStamp marks a cursor that pins no epoch: it has never loaded the
// shared pointer, or it has been deactivated.
const inactiveStamp = ^uint64(0)

// Cursor carries one handle's thread-local view (the paper's thread_local
// observed/snapshot pointers) plus its RNG and identity. A Cursor must only
// be used by its owning goroutine.
type Cursor[V any] struct {
	observed *BlockArray[V]
	snapshot *BlockArray[V]
	id       uint64
	rng      *xrand.Source

	// stamp is the epoch pin: every array this cursor may still read was
	// loaded from the shared pointer at-or-after this epoch. Advanced on
	// every refresh (the only point where old references are dropped);
	// inactiveStamp pins nothing.
	stamp atomic.Uint64
	// al is the §4.4 recycling context (nil: pooling off).
	al *alloc[V]
	// pending holds blocks this cursor dropped from the shared structure
	// but could not hand to the limbo list because limboMu was contended.
	// Owner-only; flushed on the next refresh, push, or explicit drain, so
	// a contended retire defers reclamation instead of leaking it.
	pending []retiredBlock[V]
	// spare is a superseded, never-published snapshot shell whose slices
	// the next refresh reuses.
	spare *BlockArray[V]

	// win is the cached candidate window (used when the Shared has
	// minCaching on); gen counts snapshot replacements and in-place
	// snapshot mutations, invalidating the window. Owner-only.
	win candWindow[V]
	gen uint64
	// hintArr/hintKey record the shared array and candidate key of the last
	// successful FindMin. While the shared pointer still equals hintArr,
	// hintKey lower-bounds both the count argument of the ρ bound (at most
	// k live keys in the shared structure are smaller) and the minima of
	// every block that may hold this handle's items — so a caller whose
	// local minimum is <= hintKey may skip the shared side entirely (see
	// MinHint and SkipShared). Owner-only.
	hintArr *BlockArray[V]
	hintKey uint64
	// hintStreak counts consecutive sticky re-validations (SkipShared skips
	// granted across a publication); reset whenever the shared side is
	// actually queried or a re-validation fails, so stickiness cannot starve
	// the shared structure of maintenance. Owner-only.
	hintStreak int

	// ConsolidatePushes counts published consolidations, for the ablation
	// benchmarks. Atomic so diagnostics can read counters concurrently.
	ConsolidatePushes atomic.Int64
	// InsertRetries counts failed insert CAS attempts.
	InsertRetries atomic.Int64
	// WindowBuilds counts full candidate-window materializations,
	// WindowRepairs incremental ones, and WindowItems the total candidate
	// entries materialized by either — the per-delete window cost the E14
	// regression flagged at large k. The regression test guarding that cost
	// reads these.
	WindowBuilds  atomic.Int64
	WindowRepairs atomic.Int64
	WindowItems   atomic.Int64
	// HintSkips counts shared-side queries skipped on a valid hint
	// (exact-pointer or sticky); HintSticks counts the sticky subset, where
	// the skip was granted by minimum-key re-validation across a
	// publication rather than pointer equality.
	HintSkips  atomic.Int64
	HintSticks atomic.Int64
}

// NewCursor returns a cursor for handle id and registers it with the
// reclamation epoch scheme.
func (s *Shared[V]) NewCursor(id uint64, rng *xrand.Source) *Cursor[V] {
	c := &Cursor[V]{id: id, rng: rng}
	c.stamp.Store(inactiveStamp)
	s.regMu.Lock()
	var next []*Cursor[V]
	if cur := s.cursors.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, c)
	s.cursors.Store(&next)
	s.regMu.Unlock()
	return c
}

// SetPool installs the owning handle's block pool on the cursor (§4.4).
// Must be called before the cursor is used.
func (c *Cursor[V]) SetPool(p *block.Pool[V]) {
	if p == nil {
		c.al = nil
		return
	}
	c.al = &alloc[V]{pool: p}
}

// RetireCursor withdraws a cursor from the epoch scheme and deregisters it.
// Call when the owning handle closes; the cursor must not be used
// afterwards.
func (s *Shared[V]) RetireCursor(c *Cursor[V]) {
	c.stamp.Store(inactiveStamp)
	c.hintArr = nil
	// Hand any parked retired blocks over before the cursor disappears;
	// blocking is fine here (close path, not an operation path).
	if len(c.pending) > 0 {
		s.limboMu.Lock()
		s.appendPendingLocked(c)
		s.drainLimboLocked(c)
		s.limboMu.Unlock()
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	cur := s.cursors.Load()
	if cur == nil {
		return
	}
	next := make([]*Cursor[V], 0, len(*cur))
	for _, other := range *cur {
		if other != c {
			next = append(next, other)
		}
	}
	s.cursors.Store(&next)
}

// refresh re-reads the shared pointer and takes a private snapshot
// (Listing 3's refresh_snapshot). The epoch stamp is advanced first —
// before the pointer load, so the pin provably covers everything the new
// snapshot can reach — and blocks created during a failed previous attempt
// recycle here, since the retry abandons them.
func (s *Shared[V]) refresh(c *Cursor[V]) {
	prev := c.snapshot
	if prev != nil && !prev.published {
		c.al.discardFresh()
		c.spare = prev
	}
	// Retry handing parked retired blocks to the limbo list (a previous
	// flush lost the TryLock race); cheap no-op when nothing is parked.
	s.flushPending(c)
	// The snapshot is about to be replaced (possibly by a recycled shell at
	// the same address): invalidate the candidate window.
	c.gen++
	c.stamp.Store(s.epoch.Load())
	c.observed = s.ptr.Load()
	if c.observed == nil {
		c.snapshot = nil
	} else {
		shell := c.takeShell()
		c.observed.copyInto(shell)
		// Pick up run-time k changes: the next pivot recalculation on this
		// snapshot uses the current parameter.
		shell.k = s.K()
		c.snapshot = shell
	}
}

// takeShell returns a private snapshot shell, reusing the spare one (a
// superseded never-published snapshot) when available. The caller resets or
// overwrites its contents.
func (c *Cursor[V]) takeShell() *BlockArray[V] {
	shell := c.spare
	c.spare = nil
	if shell == nil {
		shell = newBlockArray[V](0)
	}
	return shell
}

// push attempts to publish the cursor's snapshot (Listing 3's
// push_snapshot). After success the cursor's observed pointer is stale by
// design: the next operation re-snapshots before mutating, so a published
// array is never written again. On success the blocks the transition
// dropped are handed to the reclamation scheme.
func (s *Shared[V]) push(c *Cursor[V]) bool {
	if c.snapshot != nil {
		c.snapshot.published = true
	}
	if !s.ptr.CompareAndSwap(c.observed, c.snapshot) {
		if c.snapshot != nil {
			c.snapshot.published = false
		}
		return false
	}
	if c.al != nil {
		// §4.4 proper: acquire item references for the blocks this cursor
		// created and just published. Only the creator ever walks a block
		// (carried-over blocks acquired at their own publication), so the
		// reffed flag needs no synchronization; and acquiring only after a
		// *winning* CAS keeps failed attempts free of refcount traffic,
		// which contended workloads feel directly. Safety of the deferred
		// walk: every item in a fresh block is still referenced by the
		// superseded array's blocks, which this cursor parks only below —
		// and any holder a concurrent winner drops meanwhile stays pinned
		// by this cursor's epoch stamp, which advances strictly after this
		// push completes.
		for _, b := range c.al.fresh {
			b.AcquireRefs()
		}
		c.al.commitFresh()
		s.retireDropped(c)
	}
	return true
}

// retireDropped parks every block of the superseded array that the winning
// snapshot no longer references on the cursor, tagged with the new epoch,
// then tries to flush them to the limbo list and drain. Runs on the
// winner's goroutine right after its CAS.
func (s *Shared[V]) retireDropped(c *Cursor[V]) {
	old, won := c.observed, c.snapshot
	if old == nil {
		return
	}
	e := s.epoch.Add(1)
	for _, b := range old.blocks {
		if won != nil && containsBlock(won.blocks, b) {
			continue
		}
		c.pending = append(c.pending, retiredBlock[V]{b: b, epoch: e})
	}
	s.flushPending(c)
}

// flushPending tries to move the cursor's pending retired blocks into the
// limbo list and drain what has quiesced. TryLock keeps the operation paths
// lock-free: on contention the blocks simply stay parked on the cursor
// (owner-only) until the next attempt.
func (s *Shared[V]) flushPending(c *Cursor[V]) {
	if len(c.pending) == 0 {
		return
	}
	if !s.limboMu.TryLock() {
		return
	}
	s.appendPendingLocked(c)
	s.drainLimboLocked(c)
	s.limboMu.Unlock()
}

// appendPendingLocked moves c's pending entries into the limbo list up to
// the cap; overflow falls to the GC and is counted in LimboLeaked. Caller
// holds limboMu.
func (s *Shared[V]) appendPendingLocked(c *Cursor[V]) {
	limboCap := sharedLimboCap
	if c.al != nil && c.al.pool.Reclaiming() {
		limboCap = sharedLimboCapReclaim
	}
	for i := range c.pending {
		if len(s.limbo) >= limboCap {
			s.limboLeaked.Add(int64(len(c.pending) - i))
			break
		}
		if len(s.limbo) == 0 || c.pending[i].epoch < s.limboMinEpoch {
			s.limboMinEpoch = c.pending[i].epoch
		}
		s.limbo = append(s.limbo, c.pending[i])
	}
	clear(c.pending)
	c.pending = c.pending[:0]
}

// drainLimboLocked moves every limbo block whose epoch every stamped cursor
// has passed — other than c itself, which provably re-reads the shared
// pointer before touching any block again — into c's pool. Caller holds
// limboMu.
func (s *Shared[V]) drainLimboLocked(c *Cursor[V]) {
	if len(s.limbo) == 0 || !s.guard.Quiescent() {
		return
	}
	minStamp := inactiveStamp
	if curs := s.cursors.Load(); curs != nil {
		for _, other := range *curs {
			if other == c {
				continue
			}
			if st := other.stamp.Load(); st < minStamp {
				minStamp = st
			}
		}
	}
	if s.limboMinEpoch > minStamp {
		return // every entry is still pinned: skip the scan
	}
	kept := s.limbo[:0]
	newMin := inactiveStamp
	for _, r := range s.limbo {
		if r.epoch <= minStamp {
			c.al.pool.Put(r.b)
		} else {
			if r.epoch < newMin {
				newMin = r.epoch
			}
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(s.limbo); i++ {
		s.limbo[i] = retiredBlock[V]{}
	}
	s.limbo = kept
	s.limboMinEpoch = newMin
}

// containsBlock reports whether blocks contains b (arrays are short).
func containsBlock[V any](blocks []*block.Block[V], b *block.Block[V]) bool {
	for _, x := range blocks {
		if x == b {
			return true
		}
	}
	return false
}

// Insert publishes a block of items. It loops refresh → mutate snapshot →
// CAS until it wins; failure implies another thread published first
// (lock-freedom: someone always progresses). Ownership of nb transfers to
// the shared structure on entry: its item references are acquired here
// (§4.4 proper) unless it already carries them (a DistLSM overflow block
// with transferred lineage references) — nb may hold items that exist in
// no published block yet, and without nb's own references a failed
// attempt's discard would dip them to zero mid-retry.
//
// The return value is non-nil exactly when nb was merged away inside the
// winning attempt AND arrived carrying its lineage's references: its
// filtered items' only references are then still attached to nb, and
// releasing them here — with no guard or epoch gating — could reclaim an
// item while a spy still reads it through the caller's not-yet-unlinked
// donor blocks. The caller must hand the returned block to its pool's
// Retire *after* the stores that unlink those donors. Blocks this call
// acquired itself (no prior holders exist) are recycled internally and nil
// is returned. (A merged-away nb that stays in the *published* array until
// a later CAS drops it needs no special handling: the inserting cursor's
// own epoch stamp — advanced only on its next refresh, after its unlink
// stores — pins the limbo entry until then.)
func (s *Shared[V]) Insert(c *Cursor[V], nb *block.Block[V]) *block.Block[V] {
	if nb == nil || nb.Empty() {
		return nil
	}
	entryReffed := nb.HoldsRefs()
	if c.al != nil {
		nb.AcquireRefs()
	}
	for {
		s.refresh(c)
		if c.snapshot == nil {
			shell := c.takeShell()
			shell.blocks = shell.blocks[:0]
			shell.pivots = shell.pivots[:0]
			shell.published = false
			shell.k = s.K()
			c.snapshot = shell
		}
		c.snapshot.insert(nb, s.drop, c.al)
		if c.snapshot.empty() {
			// Everything (including nb) was consumed by the drop callback
			// or concurrent deletion; publish the empty state as nil. An
			// empty array holds no fresh blocks (consolidate recycles every
			// fresh block it drops), so discardFresh is a defensive no-op
			// kept symmetric with FindMin's empty path.
			c.al.discardFresh()
			if !c.snapshot.published {
				c.spare = c.snapshot
			}
			c.snapshot = nil
		}
		if s.push(c) {
			// If the winning snapshot does not reference nb, the block was
			// merged away inside this (private) attempt and was never
			// published: recycle it (§4.4). Matters most in shared-only
			// mode, where every insert passes a level-0 block.
			// Lineage-carrying blocks go back to the caller instead of
			// being recycled here (see above).
			if c.al != nil && (c.snapshot == nil || !containsBlock(c.snapshot.blocks, nb)) {
				if entryReffed {
					return nb
				}
				c.al.pool.Put(nb)
			}
			return nil
		}
		c.InsertRetries.Add(1)
	}
}

// FindMin returns a live item that is one of the k+1 smallest keys in the
// shared k-LSM, or nil if the queue is (relaxed-)empty. The item is not
// taken; callers race on item.TryTake and call FindMin again on failure.
// New callers should prefer FindMinSnap, whose version-stamped result stays
// claimable (TryTakeAt) even for window entries retained across snapshots.
func (s *Shared[V]) FindMin(c *Cursor[V]) *item.Item[V] {
	e, ok := s.FindMinSnap(c)
	if !ok {
		return nil
	}
	return e.It
}

// syncWindow brings c's candidate window up to date with its snapshot state,
// preferring an incremental repair over a full rebuild, and maintains the
// window cost counters. Caller guarantees c.snapshot != nil.
func (s *Shared[V]) syncWindow(c *Cursor[V], localID int64) {
	if c.win.snap == c.snapshot && c.win.gen == c.gen {
		return
	}
	mat, full := c.win.sync(c.snapshot, c.gen, localID, false)
	if full {
		c.WindowBuilds.Add(1)
	} else {
		c.WindowRepairs.Add(1)
	}
	c.WindowItems.Add(int64(mat))
}

// localID returns the Bloom-filter identity FindMin enforces local ordering
// with, or -1 when local ordering is off.
func (s *Shared[V]) localID(c *Cursor[V]) int64 {
	if s.localOrdering {
		return int64(c.id)
	}
	return -1
}

// FindMinSnap is FindMin returning a version-stamped reference: callers
// claim the result with It.TryTakeAt(Ver), which fails — instead of deleting
// a different incarnation — if the item was taken (and possibly recycled)
// since the window captured it. ok is false when the queue is
// (relaxed-)empty.
//
// This is Listing 3's find_min loop: stale candidates trigger consolidation
// of the private snapshot, and structural changes are pushed so other
// threads benefit from the cleanup. With min caching on, the per-call
// pivot-range draw and Bloom scan are replaced by draws from the cursor's
// candidate window, which is repaired incrementally when the snapshot state
// changes and rebuilt in full only when entries may have been stranded (see
// candWindow).
func (s *Shared[V]) FindMinSnap(c *Cursor[V]) (item.Snap[V], bool) {
	for {
		if s.ptr.Load() != c.observed {
			s.refresh(c)
		}
		if c.snapshot == nil {
			return item.Snap[V]{}, false
		}
		localID := s.localID(c)
		dry := false
		if s.minCaching {
			s.syncWindow(c, localID)
			// Only a window-backed candidate may be returned: the local-
			// ordering overlay competes *downward* against it, so the
			// result's key is <= the window entry's key <= pivot and the
			// k+1 bound holds. When the window runs dry, an overlay-only
			// block minimum would bound nothing — arbitrarily many smaller
			// live keys can sit in other blocks — so fall through to the
			// consolidation below (dry forces the pivot recalculation),
			// which extends the window. (Returning the overlay-only minimum
			// here was a genuine relaxation violation, caught by the k-bound
			// quality suite at k=0.)
			if e, ok := c.win.next(c.rng); ok {
				e = c.win.localOverlay(e)
				if e.Ver&1 == 0 {
					// Record the skip-shared hint: e.Key <= the drawn entry's
					// key <= pivot (so at most k live shared keys are
					// smaller) and <= every Bloom-matching block minimum (so
					// skipping cannot violate local ordering). A real query
					// ran, so the sticky streak restarts.
					c.hintArr, c.hintKey = c.observed, e.Key
					c.hintStreak = 0
					return e, true
				}
				// Overlay handed back a taken block minimum: the block's
				// live minimum may undercut every candidate — consolidate.
			} else if c.win.dirty {
				// The window ran dry but entries were consumed unclaimed or
				// stranded since the last full build; they are still live in
				// the blocks, so rebuild before concluding exhaustion.
				mat, _ := c.win.sync(c.snapshot, c.gen, localID, true)
				c.WindowBuilds.Add(1)
				c.WindowItems.Add(int64(mat))
				continue
			} else {
				dry = true
			}
		} else {
			it := c.snapshot.findMin(c.rng, localID)
			if it == nil {
				dry = true
			} else if v := it.Version(); v&1 == 0 {
				return item.Snap[V]{It: it, Ver: v, Key: it.Key()}, true
			}
		}
		// Candidate stale (or no candidates): clean up. When the candidate
		// set is exhausted (dry), pivots must be recalculated to extend it;
		// for a merely-stale candidate the recalculation is only worth it
		// if the pass changes the structure (consolidate decides).
		c.gen++ // consolidate mutates the snapshot in place
		push := c.snapshot.consolidate(s.drop, dry, c.al)
		if c.snapshot.empty() {
			if !c.snapshot.published {
				c.al.discardFresh()
				c.spare = c.snapshot
			}
			c.snapshot = nil
			push = true
		}
		if push {
			if s.push(c) {
				c.ConsolidatePushes.Add(1)
			}
			// Regardless of CAS outcome the next iteration refreshes:
			// either we published (observed is stale now) or someone else
			// did (shared moved).
		}
	}
}

// Purge physically removes drop-filtered items from the shared structure:
// each snapshot block whose contents the filter (or logical deletion)
// touches is replaced by a CopyDropIn copy, the snapshot is consolidated
// with a pivot recalculation, and the result is pushed. Ordinary
// consolidation applies the filter only on level-collision merges, so a
// large high-level block full of filter-positive items can otherwise sit
// untouched indefinitely — Purge is the explicit compaction pass that
// reclaims it. Without a configured drop filter it is a no-op (plain
// consolidation already handles logically deleted items well enough).
//
// Reference safety mirrors FindMinSnap's consolidate path: the cursor's
// epoch stamp (taken in refresh before the pointer load) pins every block
// the snapshot can reach, fresh copies acquire their item references at the
// winning push, and the superseded originals release theirs through the
// epoch-gated retirement — so items the filter claims are released exactly
// once, by their original block's retirement. Items claimed during a failed
// CAS attempt stay claimed; they are filter-positive garbage either way and
// remain referenced by the still-published originals.
func (s *Shared[V]) Purge(c *Cursor[V]) {
	if s.drop == nil {
		return
	}
	for {
		s.refresh(c)
		if c.snapshot == nil {
			return
		}
		a := c.snapshot
		pool := c.al.blockPool()
		for i, b := range a.blocks {
			if b == nil || b.Empty() {
				continue
			}
			nb := b.CopyDropIn(pool, b.Level(), s.drop)
			if nb.Filled() == b.Filled() {
				// Nothing dropped or dead in this block: keep the original.
				// The copy was never noted and never acquired references, so
				// recycling it releases nothing.
				if pool != nil {
					pool.Put(nb)
				}
				continue
			}
			c.al.note(nb)
			a.blocks[i] = nb
		}
		c.gen++ // the snapshot was mutated in place: invalidate the window
		a.consolidate(s.drop, true, c.al)
		if a.empty() {
			if !a.published {
				c.al.discardFresh()
				c.spare = a
			}
			c.snapshot = nil
		}
		if s.push(c) {
			return
		}
		// Lost the publication race: refresh and retry with the new array.
	}
}

// FillCandidates moves up to max candidates into dst for a per-handle
// deletion buffer: random window draws below the overlay bound (consumed
// from the window without being taken) plus the ascending live prefixes of
// the caller's own Bloom-matching blocks (left in place; pop-time version
// checks discard the window duplicates). On return with a non-empty append
// or a usable bound, anchor is the published array the entries were drawn
// under and capKey a key such that, while the shared pointer still equals
// anchor, (a) at most k live keys in the shared structure are below capKey
// and (b) every live key below capKey in a Bloom-matching block of the
// caller is itself among the appended entries. Entries may exceed capKey
// (the local guard can land below the pivot after the fill); the caller
// must drop those, and then ascending pops of the survivors preserve both
// the ρ = T·k bound and local ordering for as long as the anchor holds —
// the buffer must be discarded when it stops holding. anchor is nil (with
// capKey ^0) when the shared structure is empty, which the caller validates
// the same way: the shared pointer still being nil means zero shared keys
// exist. ok is false only when min caching is off (no window to fill from).
//
// The entries are *not* taken: a flushed buffer simply discards them, and
// the items remain live in the blocks (the window marks itself dirty so a
// later dry-window rebuild re-materializes them).
func (s *Shared[V]) FillCandidates(c *Cursor[V], dst []item.Snap[V], max int) (_ []item.Snap[V], anchor *BlockArray[V], capKey uint64, ok bool) {
	if !s.minCaching {
		return dst, nil, 0, false
	}
	base := len(dst)
	repivoted := false
	for {
		if s.ptr.Load() != c.observed {
			s.refresh(c)
		}
		if c.snapshot == nil {
			return dst, nil, ^uint64(0), true
		}
		localID := s.localID(c)
		s.syncWindow(c, localID)
		ov := c.win.overlayBound()
		pivot := c.snapshot.pivotKey
		hint := pivot
		if ov < hint {
			hint = ov
		}
		blocked := false
		for len(dst)-base < max {
			e, valid := c.win.next(c.rng)
			if !valid {
				break
			}
			if e.Key > ov {
				// An own-block minimum undercuts the entry; drawn candidates
				// above it cannot be buffered directly (a pop could skip the
				// caller's own smaller key) — the local prefix fill below
				// covers that region instead.
				blocked = true
				break
			}
			c.win.consume()
			dst = append(dst, e)
		}
		// Collect the owner's Bloom-matching blocks' ascending live prefixes
		// directly (the draw above admits only keys at or below the single
		// current own minimum, which starves the buffer whenever the minimum
		// is shared-resident). The guard lower-bounds every uncollected local
		// live key, so it replaces the overlay bound as the local-ordering
		// cap: everything local below the cap is in the buffer and ascending
		// pops meet it first.
		var guard uint64
		dst, guard = c.win.fillLocal(dst, max-(len(dst)-base), pivot)
		capKey = pivot
		if guard < capKey {
			capKey = guard
		}
		if len(dst) > base || blocked {
			// A fill is short when it comes under both the request and half
			// the pivot's own capacity (k+1 keys): as deletes consume the
			// keys under the snapshot's pivot, each refill collects fewer
			// entries but nothing ever triggers a pivot recalculation —
			// fills shrink toward one entry and the buffer's amortization
			// collapses. The k/2 cap keeps large drain fills from paying a
			// consolidation for a target no pivot could ever meet.
			short := len(dst)-base < min(max, c.snapshot.k/2+1)
			if !repivoted && short {
				// Discard the partial fill (consumed window draws stay
				// recoverable via the dirty rebuild), recalculate the pivots
				// once, and refill at the extended bound.
				repivoted = true
				dst = dst[:base]
				c.gen++
				push := c.snapshot.consolidate(s.drop, true, c.al)
				if c.snapshot.empty() {
					if !c.snapshot.published {
						c.al.discardFresh()
						c.spare = c.snapshot
					}
					c.snapshot = nil
					push = true
				}
				if push && s.push(c) {
					c.ConsolidatePushes.Add(1)
				}
				continue
			}
			if len(dst) > base {
				// A real query ran: re-arm the skip-shared hint. hint =
				// min(overlay bound, pivot) satisfies both hint guarantees at
				// fill time — at most k live shared keys below it, and no
				// Bloom-matching block minimum below it.
				c.hintArr, c.hintKey = c.observed, hint
				c.hintStreak = 0
			}
			return dst, c.observed, capKey, true
		}
		// Window dry: run the same maintenance FindMinSnap would, then
		// retry. Stranded entries rebuild first; then consolidation extends
		// the pivot ranges or empties the structure.
		if c.win.dirty {
			mat, _ := c.win.sync(c.snapshot, c.gen, localID, true)
			c.WindowBuilds.Add(1)
			c.WindowItems.Add(int64(mat))
			continue
		}
		c.gen++
		push := c.snapshot.consolidate(s.drop, true, c.al)
		if c.snapshot.empty() {
			if !c.snapshot.published {
				c.al.discardFresh()
				c.spare = c.snapshot
			}
			c.snapshot = nil
			push = true
		}
		if push && s.push(c) {
			c.ConsolidatePushes.Add(1)
		}
	}
}

// PtrIs reports whether the published shared pointer currently equals a —
// the validity check for deletion-buffer anchors handed out by
// FillCandidates (nil anchors validate an empty shared structure).
func (s *Shared[V]) PtrIs(a *BlockArray[V]) bool { return s.ptr.Load() == a }

// MinHint returns the key of c's last successful FindMin candidate, valid
// only while the shared pointer still equals the array that produced it
// (and min caching is on). While valid, the hint guarantees two things about
// the current shared structure: at most k live keys in it are smaller than
// the hint (the candidate was within the array's pivot range, and a
// published array only loses items), and no block that may contain c's own
// items has a minimum below it (block minima only rise as tails are taken).
// A caller whose local minimum is <= the hint may therefore return the local
// minimum without consulting the shared side at all — both the ρ = T·k
// bound and local ordering are preserved.
func (s *Shared[V]) MinHint(c *Cursor[V]) (uint64, bool) {
	if !s.minCaching || c.hintArr == nil || s.ptr.Load() != c.hintArr {
		return 0, false
	}
	return c.hintKey, true
}

// SkipShared reports whether a caller holding a local candidate with key
// localKey may return it without consulting the shared structure at all.
// It is the sticky generalization of MinHint: while the shared pointer still
// equals the hint's array, the skip is granted exactly as MinHint would
// (localKey <= hintKey, no streak budget — the hint is proven for that
// array). When the pointer has moved, the hint re-validates against the new
// array's minimum-key floor instead of dying: a published array's minKey
// lower-bounds every key it can ever hold, so minKey >= localKey proves the
// shared structure holds *zero* live keys below localKey — the ρ bound
// (0 <= k smaller keys) and local ordering (every own-block minimum >=
// minKey >= localKey) both hold trivially, and the hint re-arms on the new
// array with hintKey = minKey. Such cross-publication re-validations are
// MultiQueue-style stickiness and are bounded by the configured budget
// (SetStickyHint), counted per consecutive streak; the streak — and, on a
// failed re-validation, the decision — resets so a handle cannot indefinitely
// avoid the shared-side maintenance its deletes are meant to share.
func (s *Shared[V]) SkipShared(c *Cursor[V], localKey uint64) bool {
	if !s.minCaching || c.hintArr == nil {
		return false
	}
	cur := s.ptr.Load()
	if cur == c.hintArr {
		if localKey <= c.hintKey {
			c.HintSkips.Add(1)
			return true
		}
		return false
	}
	if s.stickyOps <= 0 || c.hintStreak >= s.stickyOps {
		c.hintStreak = 0
		return false
	}
	if cur == nil {
		// The shared structure emptied: zero shared keys, skip trivially
		// valid. The hint cannot re-arm on nil; keep the old one so the next
		// call re-validates against whatever is published then.
		c.hintStreak++
		c.HintSkips.Add(1)
		c.HintSticks.Add(1)
		return true
	}
	if floor := cur.minKey; floor >= localKey {
		c.hintStreak++
		c.HintSkips.Add(1)
		c.HintSticks.Add(1)
		c.hintArr, c.hintKey = cur, floor
		return true
	}
	c.hintStreak = 0
	return false
}

// RefreshStamp re-stamps c with the current epoch without touching its
// snapshot. Only valid when the cursor's owner performs no concurrent
// operation and will re-read the shared pointer before dereferencing any
// block it loaded under an older stamp (shutdown/test quiesce contexts):
// advancing the stamp lifts c's pin on the epochs in between, letting limbo
// entries those epochs held back finally drain.
func (s *Shared[V]) RefreshStamp(c *Cursor[V]) {
	c.stamp.Store(s.epoch.Load())
}

// DrainRetired flushes c's parked retired blocks and drains every limbo
// entry all cursor stamps have passed, blocking on the limbo lock. Intended
// for shutdown and test quiesce paths (after RefreshStamp on every cursor);
// the operation paths drain opportunistically instead and never block.
func (s *Shared[V]) DrainRetired(c *Cursor[V]) {
	if c.al == nil {
		return
	}
	s.limboMu.Lock()
	s.appendPendingLocked(c)
	s.drainLimboLocked(c)
	s.limboMu.Unlock()
}

// LimboLeaked returns the number of retired blocks dropped to the GC at the
// limbo cap (each leaking its item references when reclamation is on).
func (s *Shared[V]) LimboLeaked() int64 { return s.limboLeaked.Load() }

// LimboLen returns the current limbo length, for tests.
func (s *Shared[V]) LimboLen() int {
	s.limboMu.Lock()
	defer s.limboMu.Unlock()
	return len(s.limbo)
}

// Empty reports whether the shared pointer is nil. A false result does not
// guarantee live items exist (they may all be logically deleted); it is a
// fast-path hint only.
func (s *Shared[V]) Empty() bool { return s.ptr.Load() == nil }

// Snapshot returns the current BlockArray for tests and diagnostics; callers
// must treat it as read-only.
func (s *Shared[V]) Snapshot() *BlockArray[V] { return s.ptr.Load() }
