package sharedlsm

import (
	"sync/atomic"

	"klsm/internal/block"
	"klsm/internal/item"
	"klsm/internal/xrand"
)

// Shared is the shared k-LSM priority queue (Listing 3): one atomic pointer
// to the current BlockArray, updated copy-on-write.
type Shared[V any] struct {
	ptr atomic.Pointer[BlockArray[V]]
	// k is the relaxation parameter. It is atomic because the paper allows
	// reconfiguring k at run time (§1); each BlockArray snapshot carries
	// the k its pivots were computed with, so a change takes effect on the
	// next snapshot mutation.
	k    atomic.Int64
	drop block.DropFunc[V]
	// localOrdering enables the Bloom-filter check that guarantees a handle
	// never skips its own items. On by default; the ablation benchmark
	// switches it off.
	localOrdering bool
}

// New returns an empty shared k-LSM with relaxation parameter k >= 0.
func New[V any](k int, localOrdering bool) *Shared[V] {
	if k < 0 {
		panic("sharedlsm: negative k")
	}
	s := &Shared[V]{localOrdering: localOrdering}
	s.k.Store(int64(k))
	return s
}

// SetDrop installs the lazy-deletion callback used during merges. Must be
// called before the queue is shared.
func (s *Shared[V]) SetDrop(drop block.DropFunc[V]) { s.drop = drop }

// K returns the current relaxation parameter.
func (s *Shared[V]) K() int { return int(s.k.Load()) }

// SetK changes the relaxation parameter at run time (paper §1). Snapshots
// taken before the change keep their old pivot sets, so the new bound takes
// full effect once in-flight snapshots are superseded.
func (s *Shared[V]) SetK(k int) {
	if k < 0 {
		panic("sharedlsm: negative k")
	}
	s.k.Store(int64(k))
}

// Cursor carries one handle's thread-local view (the paper's thread_local
// observed/snapshot pointers) plus its RNG and identity. A Cursor must only
// be used by its owning goroutine.
type Cursor[V any] struct {
	observed *BlockArray[V]
	snapshot *BlockArray[V]
	id       uint64
	rng      *xrand.Source

	// ConsolidatePushes counts published consolidations, for the ablation
	// benchmarks. Atomic so diagnostics can read counters concurrently.
	ConsolidatePushes atomic.Int64
	// InsertRetries counts failed insert CAS attempts.
	InsertRetries atomic.Int64
}

// NewCursor returns a cursor for handle id.
func (s *Shared[V]) NewCursor(id uint64, rng *xrand.Source) *Cursor[V] {
	return &Cursor[V]{id: id, rng: rng}
}

// refresh re-reads the shared pointer and takes a private snapshot
// (Listing 3's refresh_snapshot).
func (s *Shared[V]) refresh(c *Cursor[V]) {
	c.observed = s.ptr.Load()
	if c.observed == nil {
		c.snapshot = nil
	} else {
		c.snapshot = c.observed.copy()
		// Pick up run-time k changes: the next pivot recalculation on this
		// snapshot uses the current parameter.
		c.snapshot.k = s.K()
	}
}

// push attempts to publish the cursor's snapshot (Listing 3's
// push_snapshot). After success the cursor's observed pointer is stale by
// design: the next operation re-snapshots before mutating, so a published
// array is never written again.
func (s *Shared[V]) push(c *Cursor[V]) bool {
	return s.ptr.CompareAndSwap(c.observed, c.snapshot)
}

// Insert publishes a block of items. It loops refresh → mutate snapshot →
// CAS until it wins; failure implies another thread published first
// (lock-freedom: someone always progresses).
func (s *Shared[V]) Insert(c *Cursor[V], nb *block.Block[V]) {
	if nb == nil || nb.Empty() {
		return
	}
	for {
		s.refresh(c)
		if c.snapshot == nil {
			c.snapshot = newBlockArray[V](s.K())
		}
		c.snapshot.insert(nb, s.drop)
		if c.snapshot.empty() {
			// Everything (including nb) was consumed by the drop callback
			// or concurrent deletion; publish the empty state as nil.
			c.snapshot = nil
		}
		if s.push(c) {
			return
		}
		c.InsertRetries.Add(1)
	}
}

// FindMin returns a live item that is one of the k+1 smallest keys in the
// shared k-LSM, or nil if the queue is (relaxed-)empty. The item is not
// taken; callers race on item.TryTake and call FindMin again on failure.
//
// This is Listing 3's find_min loop: stale candidates trigger consolidation
// of the private snapshot, and structural changes are pushed so other
// threads benefit from the cleanup.
func (s *Shared[V]) FindMin(c *Cursor[V]) *item.Item[V] {
	for {
		if s.ptr.Load() != c.observed {
			s.refresh(c)
		}
		if c.snapshot == nil {
			return nil
		}
		localID := int64(-1)
		if s.localOrdering {
			localID = int64(c.id)
		}
		it := c.snapshot.findMin(c.rng, localID)
		if it != nil && !it.Taken() {
			return it
		}
		// Candidate stale (or no candidates): clean up. When the candidate
		// window is exhausted (nil), pivots must be recalculated to extend
		// it; for a merely-stale candidate the recalculation is only worth
		// it if the pass changes the structure (consolidate decides).
		push := c.snapshot.consolidate(s.drop, it == nil)
		if c.snapshot.empty() {
			c.snapshot = nil
			push = true
		}
		if push {
			if s.push(c) {
				c.ConsolidatePushes.Add(1)
			}
			// Regardless of CAS outcome the next iteration refreshes:
			// either we published (observed is stale now) or someone else
			// did (shared moved).
		}
	}
}

// Empty reports whether the shared pointer is nil. A false result does not
// guarantee live items exist (they may all be logically deleted); it is a
// fast-path hint only.
func (s *Shared[V]) Empty() bool { return s.ptr.Load() == nil }

// Snapshot returns the current BlockArray for tests and diagnostics; callers
// must treat it as read-only.
func (s *Shared[V]) Snapshot() *BlockArray[V] { return s.ptr.Load() }
