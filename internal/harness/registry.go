package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"klsm/internal/pqs"
	"klsm/internal/pqs/heaplock"
	"klsm/internal/pqs/klsmq"
	"klsm/internal/pqs/linden"
	"klsm/internal/pqs/multiq"
	"klsm/internal/pqs/spraylist"
	"klsm/internal/pqs/wimmer"
	"klsm/internal/sssp"
)

// QueueSpec names one benchmarked configuration and builds fresh instances.
// The names match the paper's Figure 3/4 legends.
type QueueSpec struct {
	Name string
	// New builds a queue sized for the given thread count.
	New func(threads int) pqs.Queue
	// NewSSSP builds the queue for the SSSP benchmark (with the lazy-
	// deletion hook where supported).
	NewSSSP sssp.QueueFactory
}

// Figure3Specs returns the queue line-up of the throughput benchmark
// (Figure 3): Heap+Lock, Lindén & Jonsson, SprayList, MultiQueue, k-LSM
// with k ∈ {0,4,256,4096}, and the DLSM.
func Figure3Specs() []QueueSpec {
	specs := []QueueSpec{
		{Name: "HeapLock", New: func(int) pqs.Queue { return heaplock.New() }},
		{Name: "Linden", New: func(int) pqs.Queue { return linden.New(0) }},
		{Name: "SprayList", New: func(t int) pqs.Queue { return spraylist.New(spraylist.Config{Threads: t}) }},
		{Name: "MultiQ", New: func(t int) pqs.Queue { return multiq.New(multiq.Config{C: 2, Threads: t, Arity: 8}) }},
	}
	for _, k := range []int{0, 4, 256, 4096} {
		k := k
		specs = append(specs, QueueSpec{
			Name: fmt.Sprintf("kLSM(%d)", k),
			New:  func(int) pqs.Queue { return klsmq.New(k) },
		})
	}
	specs = append(specs, QueueSpec{Name: "DLSM", New: func(int) pqs.Queue { return klsmq.NewDLSM() }})
	return specs
}

// Figure4Specs returns the SSSP line-up (Figure 4): the Wimmer et al.
// centralized and hybrid k-PQs and the k-LSM, each parameterized by k.
func Figure4Specs(k int) []QueueSpec {
	return []QueueSpec{
		{
			Name:    "Centralized-k",
			NewSSSP: func(workers int, drop func(uint64) bool) pqs.Queue { return wimmer.NewCentralized(k) },
		},
		{
			Name:    "Hybrid-k",
			NewSSSP: func(workers int, drop func(uint64) bool) pqs.Queue { return wimmer.NewHybrid(k) },
		},
		{
			Name:    "kLSM",
			NewSSSP: func(workers int, drop func(uint64) bool) pqs.Queue { return klsmq.NewWithDrop(k, drop) },
		},
	}
}

// ExtraSpecs returns ablation configurations that are selectable by name in
// the throughput tool but are not part of the paper's Figure 3 legend (so
// "all" and the figure benchmarks stay faithful to the paper).
func ExtraSpecs() []QueueSpec {
	specs := []QueueSpec{
		{Name: "kLSM(256)-nomincache", New: func(int) pqs.Queue { return klsmq.NewNoMinCache(256) }},
		{Name: "kLSM(256)-nopool", New: func(int) pqs.Queue { return klsmq.NewNoPooling(256) }},
		{Name: "kLSM(256)-noreclaim", New: func(int) pqs.Queue { return klsmq.NewNoReclaim(256) }},
	}
	// Deletion-buffer and sticky-hint ablations (E15/E16) plus the large-k
	// frontier points of the window sweep, at every k the sweep visits.
	for _, k := range []int{256, 4096, 8192, 65536} {
		k := k
		specs = append(specs,
			QueueSpec{Name: fmt.Sprintf("kLSM(%d)-nobuf", k), New: func(int) pqs.Queue { return klsmq.NewNoDelBuf(k) }},
			QueueSpec{Name: fmt.Sprintf("kLSM(%d)-nosticky", k), New: func(int) pqs.Queue { return klsmq.NewNoSticky(k) }},
		)
	}
	for _, k := range []int{8192, 65536} {
		k := k
		specs = append(specs, QueueSpec{
			Name: fmt.Sprintf("kLSM(%d)", k),
			New:  func(int) pqs.Queue { return klsmq.New(k) },
		})
	}
	return specs
}

// LookupFigure3 returns the named specs (comma-separated list, "all" for
// everything in the Figure 3 legend; the ExtraSpecs ablations resolve by
// name only). Unknown names return an error listing the choices.
func LookupFigure3(names string) ([]QueueSpec, error) {
	all := Figure3Specs()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := map[string]QueueSpec{}
	var known []string
	for _, s := range append(all, ExtraSpecs()...) {
		byName[strings.ToLower(s.Name)] = s
		known = append(known, s.Name)
	}
	var out []QueueSpec
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		s, ok := byName[strings.ToLower(n)]
		if !ok {
			sort.Strings(known)
			return nil, fmt.Errorf("unknown queue %q (choices: %s, all)", n, strings.Join(known, ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseIntList parses "1,2,3" into ints.
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
