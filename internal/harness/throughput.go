// Package harness drives the paper's experiments: the throughput benchmark
// of Figure 3 (uniformly random 50/50 insert/delete-min mix on a prefilled
// queue), the SSSP sweeps of Figure 4, and the rank-error quality
// measurement that validates the ρ = T·k relaxation bound empirically.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/pqs"
	"klsm/internal/xrand"
)

// ThroughputConfig parameterizes one throughput measurement (one point of
// Figure 3).
type ThroughputConfig struct {
	// Queue under test (fresh instance per run).
	Queue pqs.Queue
	// Threads is the number of worker goroutines.
	Threads int
	// Prefill is the number of random keys inserted before the timed phase
	// (10^6 and 10^7 in the paper).
	Prefill int
	// Duration of the timed phase (10 s in the paper).
	Duration time.Duration
	// KeyRange bounds the random keys (exclusive); 0 means full uint64.
	KeyRange uint64
	// InsertRatio is the fraction of operations that are inserts; 0 means
	// the paper's 50/50 mix. Values near 1 grow the queue during the run,
	// values near 0 drain it.
	InsertRatio float64
	// Seed makes workloads reproducible.
	Seed uint64
	// BatchSize > 1 drives the timed phase through the v2 batch operations
	// (pqs.BatchHandle): each step inserts a batch of BatchSize random keys
	// or drains up to BatchSize keys, and Ops counts individual keys so
	// results stay comparable with the single-operation mode. Handles
	// without batch support fall back to loops of BatchSize single
	// operations — the equivalent-singles baseline by construction.
	BatchSize int
}

// ThroughputResult is one measured point.
type ThroughputResult struct {
	// Ops is the total completed operations (inserts + delete-min attempts
	// that returned a key; failed attempts are not counted, matching a
	// "throughput of successful operations" reading).
	Ops int64
	// FailedDeletes counts delete-min attempts that found nothing. In
	// batch mode (BatchSize > 1) a drain makes at most one failed attempt
	// per call — a short or empty drain ends on exactly one failure — so
	// absolute failure counts are not comparable across batch sizes, only
	// within one mode.
	FailedDeletes int64
	// Elapsed is the measured wall time of the timed phase.
	Elapsed time.Duration
	// PerThreadPerSec is the Figure 3 metric: throughput/thread/second.
	PerThreadPerSec float64
}

// Throughput runs one measurement.
func Throughput(cfg ThroughputConfig) ThroughputResult {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	insertRatio := cfg.InsertRatio
	if insertRatio <= 0 {
		insertRatio = 0.5
	}
	keyRange := cfg.KeyRange

	var (
		ready    sync.WaitGroup
		done     sync.WaitGroup
		start    = make(chan struct{})
		stop     atomic.Bool
		ops      = make([]int64, cfg.Threads)
		failures = make([]int64, cfg.Threads)
	)

	perThreadPrefill := cfg.Prefill / cfg.Threads
	extra := cfg.Prefill - perThreadPrefill*cfg.Threads

	for w := 0; w < cfg.Threads; w++ {
		ready.Add(1)
		done.Add(1)
		go func(id int) {
			defer done.Done()
			h := cfg.Queue.NewHandle()
			rng := xrand.NewSeeded(cfg.Seed*1_000_003 + uint64(id))
			draw := func() uint64 {
				if keyRange == 0 {
					return rng.Uint64()
				}
				return rng.Uint64n(keyRange)
			}
			// Prefill phase: spread across workers so handle-local
			// structures (DistLSMs, MultiQueue heaps) are realistically
			// populated.
			n := perThreadPrefill
			if id == 0 {
				n += extra
			}
			for i := 0; i < n; i++ {
				h.Insert(draw())
			}
			pqs.FlushHandle(h)
			ready.Done()
			<-start

			var localOps, localFail int64
			if cfg.BatchSize > 1 {
				bh, _ := h.(pqs.BatchHandle)
				keys := make([]uint64, cfg.BatchSize)
				dst := make([]uint64, 0, cfg.BatchSize)
				for !stop.Load() {
					// One stop check per 64 steps, as in the single loop;
					// each step moves BatchSize keys.
					for b := 0; b < 64; b++ {
						if rng.Float64() < insertRatio {
							for i := range keys {
								keys[i] = draw()
							}
							if bh != nil {
								bh.InsertBatch(keys)
							} else {
								for _, k := range keys {
									h.Insert(k)
								}
							}
							localOps += int64(len(keys))
						} else {
							if bh != nil {
								dst = bh.DrainMin(dst[:0], cfg.BatchSize)
							} else {
								dst = dst[:0]
								for i := 0; i < cfg.BatchSize; i++ {
									k, ok := h.TryDeleteMin()
									if !ok {
										break
									}
									dst = append(dst, k)
								}
							}
							localOps += int64(len(dst))
							if len(dst) < cfg.BatchSize {
								// A short (or empty) drain ended on exactly
								// one failed TryDeleteMin, so FailedDeletes
								// counts failed delete attempts in both
								// modes — a batch drain just makes at most
								// one failed attempt per call, vs. one per
								// op in single mode.
								localFail++
							}
						}
					}
				}
			} else {
				for !stop.Load() {
					// Check the stop flag every batch to keep Load overhead
					// out of the measured inner loop.
					for b := 0; b < 64; b++ {
						if rng.Float64() < insertRatio {
							h.Insert(draw())
							localOps++
						} else if _, ok := h.TryDeleteMin(); ok {
							localOps++
						} else {
							localFail++
						}
					}
				}
			}
			ops[id] = localOps
			failures[id] = localFail
		}(w)
	}

	ready.Wait()
	runtime.GC() // keep prefill garbage out of the timed phase
	begin := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)

	var res ThroughputResult
	for w := 0; w < cfg.Threads; w++ {
		res.Ops += ops[w]
		res.FailedDeletes += failures[w]
	}
	res.Elapsed = elapsed
	res.PerThreadPerSec = float64(res.Ops) / elapsed.Seconds() / float64(cfg.Threads)
	return res
}
