package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// BenchPoint is one (queue, thread-count, batch-size) cell of a recorded
// sweep as serialized into the BENCH_<tag>.json trajectory files. Batch 0
// (omitted) is the single-operation mode; Batch B > 1 drives the run
// through the v2 batch API (or, for the klsmd load generator, B items per
// HTTP request), with ops always counted per key so modes compare
// directly.
type BenchPoint struct {
	Queue             string  `json:"queue"`
	Threads           int     `json:"threads"`
	Batch             int     `json:"batch,omitempty"`
	MeanOpsPerThread  float64 `json:"mean_ops_per_thread_per_s"`
	CI95              float64 `json:"ci95"`
	FailedDeletesMean float64 `json:"failed_deletes_mean"`

	// Workload names the operation mix for harnesses that sweep more than
	// one (cmd/timerbench: "insert", "cancel", "expire"); empty for the
	// classic single-mix sweeps, so existing files parse unchanged.
	Workload string `json:"workload,omitempty"`
	// Extra carries workload-specific side metrics (cmd/timerbench records
	// footprint and live-count series endpoints here to document the
	// bounded-footprint claim). Nil for the classic sweeps.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchFile is the top-level BENCH_<tag>.json document, shared by
// cmd/throughput (in-process sweeps) and cmd/klsmload (sweeps over a live
// klsmd) so the recorded trajectory stays diffable across harnesses.
type BenchFile struct {
	Tag        string       `json:"tag"`
	Timestamp  string       `json:"timestamp"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	GitSHA     string       `json:"git_sha,omitempty"`
	Prefill    int          `json:"prefill"`
	DurationS  float64      `json:"duration_s"`
	Reps       int          `json:"reps"`
	InsertMix  float64      `json:"insert_mix"`
	KeyRange   uint64       `json:"keyrange"`
	Seed       uint64       `json:"seed"`
	Results    []BenchPoint `json:"results"`
}

// NewBenchFile starts a document with the environment header every recorded
// sweep carries (GOMAXPROCS, CPU count, git SHA, wall-clock timestamp).
func NewBenchFile(tag string) BenchFile {
	return BenchFile{
		Tag:        tag,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitSHA:     GitSHA(),
	}
}

// Write writes the document to dir/BENCH_<tag>.json and returns the path.
func (f *BenchFile) Write(dir string) (string, error) {
	path := filepath.Join(dir, "BENCH_"+f.Tag+".json")
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
