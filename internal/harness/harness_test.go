package harness

import (
	"testing"
	"time"

	"klsm/internal/pqs/klsmq"
	"klsm/internal/pqs/linden"
	"klsm/internal/pqs/multiq"
)

// smokeDuration keeps the wall-clock loops short under -short while still
// exercising the timed phase.
func smokeDuration(d time.Duration) time.Duration {
	if testing.Short() {
		return 10 * time.Millisecond
	}
	return d
}

func TestThroughputSmoke(t *testing.T) {
	res := Throughput(ThroughputConfig{
		Queue:    klsmq.New(256),
		Threads:  4,
		Prefill:  10000,
		Duration: smokeDuration(50 * time.Millisecond),
		Seed:     1,
	})
	if res.Ops <= 0 {
		t.Fatalf("no operations completed: %+v", res)
	}
	if res.PerThreadPerSec <= 0 {
		t.Fatalf("bad metric: %+v", res)
	}
	if res.Elapsed < smokeDuration(50*time.Millisecond) {
		t.Fatalf("elapsed %v shorter than configured duration", res.Elapsed)
	}
}

// TestThroughputBatchModes smokes the BatchSize path on a queue with
// native batch support (k-LSM, pqs.BatchHandle) and on one without
// (Lindén & Jonsson), which must fall back to equivalent single-op loops.
func TestThroughputBatchModes(t *testing.T) {
	for _, cfg := range []ThroughputConfig{
		{Queue: klsmq.New(256), Threads: 2, Prefill: 5000, BatchSize: 8},
		{Queue: linden.New(0), Threads: 2, Prefill: 5000, BatchSize: 8},
	} {
		cfg.Duration = smokeDuration(30 * time.Millisecond)
		cfg.Seed = 3
		res := Throughput(cfg)
		if res.Ops <= 0 || res.PerThreadPerSec <= 0 {
			t.Fatalf("batch run produced no throughput: %+v", res)
		}
	}
}

func TestThroughputDefaultsAndKeyRange(t *testing.T) {
	res := Throughput(ThroughputConfig{
		Queue:    linden.New(0),
		Threads:  0, // defaults to 1
		Prefill:  100,
		Duration: smokeDuration(20 * time.Millisecond),
		KeyRange: 1000,
		Seed:     2,
	})
	if res.Ops <= 0 {
		t.Fatalf("no ops: %+v", res)
	}
}

func TestRankErrorExactQueue(t *testing.T) {
	// An exact queue must show zero rank error.
	res := RankError(linden.New(0), 500, 4000, 3)
	if res.Deletes == 0 {
		t.Fatal("no deletes measured")
	}
	if res.MaxRank != 0 {
		t.Fatalf("exact queue max rank = %d", res.MaxRank)
	}
	if res.MeanRank != 0 {
		t.Fatalf("exact queue mean rank = %v", res.MeanRank)
	}
}

// TestRankErrorKLSMBound verifies the structural relaxation empirically:
// a single-handle k-LSM must never exceed rank k.
func TestRankErrorKLSMBound(t *testing.T) {
	for _, k := range []int{0, 4, 64, 256} {
		res := RankError(klsmq.New(k), 1000, 6000, uint64(k)+7)
		if res.Deletes == 0 {
			t.Fatalf("k=%d: no deletes", k)
		}
		if res.MaxRank > k {
			t.Fatalf("k=%d: observed rank %d beyond the structural bound", k, res.MaxRank)
		}
	}
}

func TestRankErrorMultiQHasErrors(t *testing.T) {
	// With 8 local heaps and single-threaded two-choice, rank errors are
	// expected (that is the point of the measurement).
	res := RankError(multiq.New(multiq.Config{C: 2, Threads: 4}), 2000, 8000, 11)
	if res.Deletes == 0 {
		t.Fatal("no deletes")
	}
	if res.MeanRank == 0 {
		t.Log("MultiQueue showed zero mean rank error on this seed (unusual but not wrong)")
	}
	// Histogram mass must equal total deletes.
	var sum int64
	for _, c := range res.RankHist {
		sum += c
	}
	if sum != res.Deletes {
		t.Fatalf("histogram mass %d != deletes %d", sum, res.Deletes)
	}
}

func TestFigure3SpecsComplete(t *testing.T) {
	specs := Figure3Specs()
	want := []string{"HeapLock", "Linden", "SprayList", "MultiQ", "kLSM(0)", "kLSM(4)", "kLSM(256)", "kLSM(4096)", "DLSM"}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Fatalf("spec %d = %q, want %q", i, s.Name, want[i])
		}
		q := s.New(2)
		h := q.NewHandle()
		h.Insert(5)
		if k, ok := h.TryDeleteMin(); !ok || k != 5 {
			t.Fatalf("%s: basic op failed: %d %v", s.Name, k, ok)
		}
	}
}

func TestFigure4SpecsComplete(t *testing.T) {
	specs := Figure4Specs(256)
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	for _, s := range specs {
		q := s.NewSSSP(2, func(uint64) bool { return false })
		h := q.NewHandle()
		h.Insert(9)
		if k, ok := h.TryDeleteMin(); !ok || k != 9 {
			t.Fatalf("%s: basic op failed", s.Name)
		}
	}
}

func TestLookupFigure3(t *testing.T) {
	all, err := LookupFigure3("all")
	if err != nil || len(all) != 9 {
		t.Fatalf("all: %v, %d specs", err, len(all))
	}
	some, err := LookupFigure3("linden, kLSM(256)")
	if err != nil || len(some) != 2 {
		t.Fatalf("subset lookup failed: %v", err)
	}
	if _, err := LookupFigure3("nonsense"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("ParseIntList: %v %v", got, err)
	}
	if _, err := ParseIntList("a,b"); err == nil {
		t.Fatal("bad list accepted")
	}
	if _, err := ParseIntList(""); err == nil {
		t.Fatal("empty list accepted")
	}
}
