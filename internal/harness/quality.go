package harness

import (
	"klsm/internal/ostat"
	"klsm/internal/pqs"
	"klsm/internal/xrand"
)

// QualityResult summarizes the rank errors observed during a sequential
// replay: for every delete-min, the rank of the returned key among all live
// keys (0 = exact minimum).
type QualityResult struct {
	Deletes  int64
	MaxRank  int
	MeanRank float64
	// RankHist[r] counts deletions that returned the key of rank r, capped
	// at len(RankHist)-1 (the last bucket aggregates the tail).
	RankHist []int64
}

// RankError measures a queue's delete-min rank error on a single-handle
// replay: prefill keys, then a 50/50 random mix, tracking the exact live
// multiset in an order-statistic treap. For the k-LSM with one handle the
// structural bound guarantees MaxRank <= k; for heuristic queues
// (SprayList, MultiQueue) this measures their empirical quality.
func RankError(q pqs.Queue, prefill, ops int, seed uint64) QualityResult {
	h := q.NewHandle()
	rng := xrand.NewSeeded(seed)
	tree := ostat.New(seed + 1)
	const histSize = 1 << 14
	res := QualityResult{RankHist: make([]int64, histSize)}

	insert := func() {
		key := rng.Uint64() % (1 << 40)
		h.Insert(key)
		tree.Insert(key)
	}
	for i := 0; i < prefill; i++ {
		insert()
	}
	var rankSum int64
	for i := 0; i < ops; i++ {
		if rng.Bool() || tree.Len() == 0 {
			insert()
			continue
		}
		key, ok := h.TryDeleteMin()
		if !ok {
			continue
		}
		rank := tree.Rank(key)
		if !tree.Delete(key) {
			// The queue returned a key we do not consider live — a
			// conservation violation. Record it as a pathological rank.
			rank = histSize - 1
		}
		res.Deletes++
		rankSum += int64(rank)
		if rank > res.MaxRank {
			res.MaxRank = rank
		}
		b := rank
		if b >= histSize {
			b = histSize - 1
		}
		res.RankHist[b]++
	}
	if res.Deletes > 0 {
		res.MeanRank = float64(rankSum) / float64(res.Deletes)
	}
	return res
}
