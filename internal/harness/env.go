package harness

import (
	"os/exec"
	"strings"
)

// GitSHA returns the HEAD commit of the working tree the benchmark binary
// runs in, or "" when git (or a repository) is unavailable. Recorded into
// every BENCH_*.json header so results diff like-for-like across commits.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
