package sssp

import (
	"testing"

	"klsm/internal/graph"
	"klsm/internal/pqs"
	"klsm/internal/pqs/heaplock"
	"klsm/internal/pqs/klsmq"
	"klsm/internal/pqs/linden"
	"klsm/internal/pqs/multiq"
	"klsm/internal/pqs/spraylist"
	"klsm/internal/pqs/wimmer"
)

// factories returns every queue configuration the SSSP benchmark exercises.
func factories() map[string]QueueFactory {
	return map[string]QueueFactory{
		"klsm256": func(workers int, drop func(uint64) bool) pqs.Queue {
			return klsmq.NewWithDrop(256, drop)
		},
		"klsm0": func(workers int, drop func(uint64) bool) pqs.Queue {
			return klsmq.NewWithDrop(0, drop)
		},
		"klsmNoDrop": func(workers int, drop func(uint64) bool) pqs.Queue {
			return klsmq.New(256)
		},
		"dlsm": func(workers int, drop func(uint64) bool) pqs.Queue {
			return klsmq.NewDLSM()
		},
		"heaplock": func(workers int, drop func(uint64) bool) pqs.Queue {
			return heaplock.New()
		},
		"linden": func(workers int, drop func(uint64) bool) pqs.Queue {
			return linden.New(0)
		},
		"spraylist": func(workers int, drop func(uint64) bool) pqs.Queue {
			return spraylist.New(spraylist.Config{Threads: workers})
		},
		"multiq": func(workers int, drop func(uint64) bool) pqs.Queue {
			return multiq.New(multiq.Config{C: 2, Threads: workers})
		},
		"centralized256": func(workers int, drop func(uint64) bool) pqs.Queue {
			return wimmer.NewCentralized(256)
		},
		"hybrid256": func(workers int, drop func(uint64) bool) pqs.Queue {
			return wimmer.NewHybrid(256)
		},
	}
}

// TestAllQueuesMatchOracle is the integration test of the whole stack:
// every queue type must produce exact shortest paths despite relaxation.
func TestAllQueuesMatchOracle(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 120
	}
	g := graph.ErdosRenyi(n, 0.08, 100000, 99)
	want, _ := graph.Dijkstra(g, 0)
	for name, f := range factories() {
		f := f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 4} {
				res := Run(g, 0, workers, f)
				for v := range want {
					if res.Dist[v] != want[v] {
						t.Fatalf("workers=%d: dist[%d] = %d, oracle %d", workers, v, res.Dist[v], want[v])
					}
				}
				if res.Processed == 0 {
					t.Fatalf("workers=%d: no entries processed", workers)
				}
			}
		})
	}
}

func TestDenseGraphMatchesOracle(t *testing.T) {
	// Dense graphs (the paper uses p=0.5) have short shortest-path trees
	// and massive relaxation pressure.
	n := 200
	if testing.Short() {
		n = 80
	}
	g := graph.ErdosRenyi(n, 0.5, 100_000_000, 7)
	want, _ := graph.Dijkstra(g, 0)
	f := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.NewWithDrop(256, drop)
	}
	res := Run(g, 0, 8, f)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, oracle %d", v, res.Dist[v], want[v])
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two components: nodes 0-4 in a ring, 5-9 isolated.
	g := &graph.CSR{
		N:       10,
		RowPtr:  []int64{0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 5},
		Targets: []uint32{1, 2, 3, 4, 0},
		Weights: []uint32{1, 1, 1, 1, 1},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.NewWithDrop(16, drop)
	}
	res := Run(g, 0, 2, f)
	for v := 5; v < 10; v++ {
		if res.Dist[v] != graph.Unreached {
			t.Fatalf("isolated node %d got distance %d", v, res.Dist[v])
		}
	}
	for v, want := range []uint64{0, 1, 2, 3, 4} {
		if res.Dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := &graph.CSR{N: 1, RowPtr: []int64{0, 0}}
	f := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.New(4)
	}
	res := Run(g, 0, 2, f)
	if res.Dist[0] != 0 {
		t.Fatalf("dist[0] = %d", res.Dist[0])
	}
}

func TestStaleCounting(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.2, 1000, 11)
	f := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.New(1024) // no lazy deletion: stale entries must be popped
	}
	res := Run(g, 0, 4, f)
	if res.Processed < int64(g.N) {
		t.Fatalf("Processed = %d < n", res.Processed)
	}
	// Processed = useful + stale; with re-insertion there are usually some
	// stale pops, and the identity must hold regardless.
	if res.Stale < 0 || res.Stale > res.Processed {
		t.Fatalf("Stale = %d out of range", res.Stale)
	}
}

func BenchmarkSSSPKLSM256W4(b *testing.B) {
	g := graph.ErdosRenyi(1000, 0.1, 100_000_000, 3)
	f := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.NewWithDrop(256, drop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, 0, 4, f)
	}
}
