// Package sssp implements the paper's SSSP benchmark (§6, Figure 4): a
// label-correcting variant of Dijkstra's algorithm parallelized in the
// straightforward way over a concurrent priority queue.
//
// Instead of decrease-key, improved distance labels are re-inserted and
// stale queue entries are discarded when popped (lazy deletion). Because
// relaxed queues may return entries out of order, workers must tolerate
// both stale entries and re-expansion; the algorithm remains correct for
// any queue that loses no entries, and terminates because labels strictly
// decrease.
//
// Termination uses idle consensus rather than an in-flight counter: a
// worker that observes the queue empty registers as idle and keeps
// re-probing; only when every worker is simultaneously idle — so nobody is
// processing an entry that could spawn new ones, and the queue looks empty
// from every handle — do workers exit. A counter of queued entries would be
// simpler, but it breaks under the lazy-deletion extension: entries the
// queue drops during internal maintenance are never popped, so a count of
// inserts minus pops never returns to zero. Idle consensus is insensitive
// to how entries leave the queue. It relies on every live entry being
// reachable from at least its inserting handle (true for all queues here:
// k-LSM local ordering/spying, MultiQueue sweeps, exact global structures,
// and the Wimmer buffers after the pre-idle Flush).
//
// (dist, node) pairs are packed into the uint64 key — dist in the high
// bits, node in the low bits — so every benchmarked queue, relaxed or
// exact, runs the identical workload through the bare-key interface.
package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/graph"
	"klsm/internal/pqs"
)

// Result of a parallel SSSP run.
type Result struct {
	// Dist[v] is the computed shortest distance from the source
	// (graph.Unreached if none).
	Dist []uint64
	// Processed counts queue entries popped in total; Processed minus the
	// sequential baseline's pop count is the "additional iterations" metric
	// the paper reports for Figure 4 (right).
	Processed int64
	// Stale counts popped entries discarded because a better label existed.
	Stale int64
	// Elapsed is the wall-clock execution time (the Figure 4 metric).
	Elapsed time.Duration
}

// QueueFactory builds the queue for one run. drop is the lazy-deletion
// predicate over packed keys (true = the entry is stale and may be
// discarded during queue maintenance); factories for queues without lazy
// deletion support simply ignore it.
type QueueFactory func(workers int, drop func(key uint64) bool) pqs.Queue

// Run computes SSSP from src over g with the given number of workers.
func Run(g *graph.CSR, src uint32, workers int, factory QueueFactory) Result {
	if workers <= 0 {
		workers = 1
	}
	shift := graph.NodeShift(g.N)
	mask := uint64(1)<<shift - 1

	dist := make([]atomic.Uint64, g.N)
	for i := range dist {
		dist[i].Store(graph.Unreached)
	}
	dist[src].Store(0)

	drop := func(key uint64) bool {
		return key>>shift > dist[key&mask].Load()
	}
	q := factory(workers, drop)

	var idle atomic.Int64
	var processed, stale atomic.Int64

	seed := q.NewHandle()
	seed.Insert(0<<shift | uint64(src))
	pqs.FlushHandle(seed)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			var localProcessed, localStale int64
			defer func() {
				processed.Add(localProcessed)
				stale.Add(localStale)
			}()

			process := func(key uint64) {
				localProcessed++
				d := key >> shift
				u := key & mask
				if d > dist[u].Load() {
					localStale++
					return
				}
				targets, weights := g.Neighbors(uint32(u))
				for i, v := range targets {
					nd := d + uint64(weights[i])
					for {
						cur := dist[v].Load()
						if nd >= cur {
							break
						}
						if dist[v].CompareAndSwap(cur, nd) {
							h.Insert(nd<<shift | uint64(v))
							break
						}
					}
				}
			}

			for {
				if key, ok := h.TryDeleteMin(); ok {
					process(key)
					continue
				}
				// Observed empty: publish anything we hold, register idle,
				// and keep probing until either work appears or everyone is
				// idle at once.
				pqs.FlushHandle(h)
				idle.Add(1)
				for {
					if key, ok := h.TryDeleteMin(); ok {
						idle.Add(-1)
						process(key)
						break
					}
					if idle.Load() == int64(workers) {
						// Every worker sees an empty queue and none is
						// processing: no entry exists and none can appear.
						return
					}
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := make([]uint64, g.N)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return Result{
		Dist:      out,
		Processed: processed.Load(),
		Stale:     stale.Load(),
		Elapsed:   elapsed,
	}
}
