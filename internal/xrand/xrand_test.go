package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStreams(t *testing.T) {
	a := NewSeeded(42)
	b := NewSeeded(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a := NewSeeded(1)
	b := NewSeeded(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collide %d/1000 times", same)
	}
}

func TestNewGivesDistinctStreams(t *testing.T) {
	a, b := New(), New()
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("two auto-seeded sources produced identical prefixes")
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := NewSeeded(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded stream looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSeeded(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSeeded(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewSeeded(1).Uint64n(0)
}

// TestIntnUniform checks a chi-squared-ish bound on bucket counts: with
// 60000 draws over 6 buckets each bucket expects 10000; allow 5% deviation.
func TestIntnUniform(t *testing.T) {
	s := NewSeeded(99)
	const buckets, draws = 6, 60000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Intn(buckets)]++
	}
	for b, c := range count {
		if math.Abs(float64(c)-draws/buckets) > 0.05*draws/buckets {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %d", b, c, draws/buckets)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSeeded(3)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / 100000; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	s := NewSeeded(5)
	p := make([]int, 64)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUint64nProperty(t *testing.T) {
	s := NewSeeded(11)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolBalanced(t *testing.T) {
	s := NewSeeded(21)
	trues := 0
	for i := 0; i < 100000; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < 48000 || trues > 52000 {
		t.Fatalf("Bool heavily biased: %d/100000 true", trues)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(1000)
	}
	_ = sink
}
