// Package xrand provides small, fast, allocation-free pseudo-random number
// generators for use in concurrent data structures and benchmark harnesses.
//
// The global generators in math/rand serialize all callers on a mutex, which
// distorts scalability measurements. Every concurrent actor in this repository
// (queue handle, benchmark worker, SSSP worker) therefore owns a private
// xrand.Source seeded from a shared atomic sequence, so random decisions
// (pivot selection, victim selection, workload keys) never synchronize between
// threads.
package xrand

import (
	"math/bits"
	"sync/atomic"
)

// seedSeq hands out distinct seeds to generators created without an explicit
// seed. SplitMix64 of a strictly increasing sequence gives well-distributed,
// non-zero initial states.
var seedSeq atomic.Uint64

// Source is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; each goroutine must own its Source.
//
// xoshiro256** (Blackman & Vigna) passes BigCrush, has a 2^256-1 period, and
// needs only a handful of arithmetic instructions per number, which matters in
// delete-min hot paths that draw a random candidate on every call.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source with an automatically chosen, process-unique seed.
func New() *Source {
	return NewSeeded(seedSeq.Add(0x9e3779b97f4a7c15))
}

// NewSeeded returns a Source deterministically derived from seed. Two Sources
// built from the same seed yield identical streams, which the tests rely on.
func NewSeeded(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from a single 64-bit value using SplitMix64,
// as recommended by the xoshiro authors. A zero seed is valid.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		// The all-zero state is the only invalid xoshiro state.
		s.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns the next value truncated to 32 bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of naive `Uint64() % n` without a division in the common case.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := s.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			// No bias possible for this draw.
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm fills p with a uniform random permutation of 0..len(p)-1.
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
