// Package binheap implements a sequential d-ary min-heap over uint64 keys.
//
// It is the building block for three of the paper's comparison queues: the
// "Heap + Lock" baseline of Figure 3 (binary heap behind a spinlock), the
// MultiQueue of Rihani et al. (which the paper runs with 8-ary heaps,
// matching the Boost d-ary heap they used), and the reconstructed Wimmer et
// al. k-priority queues. It also serves as the oracle in conformance tests.
package binheap

// Heap is a sequential d-ary min-heap. Not safe for concurrent use; callers
// provide their own synchronization.
type Heap struct {
	keys  []uint64
	arity int
}

// New returns an empty heap with the given arity (2 for binary, 8 to match
// the paper's MultiQueue configuration). Arity below 2 panics.
func New(arity int) *Heap {
	if arity < 2 {
		panic("binheap: arity must be >= 2")
	}
	return &Heap{arity: arity}
}

// Len returns the number of stored keys.
func (h *Heap) Len() int { return len(h.keys) }

// Empty reports whether the heap holds no keys.
func (h *Heap) Empty() bool { return len(h.keys) == 0 }

// Peek returns the minimum key without removing it.
func (h *Heap) Peek() (uint64, bool) {
	if len(h.keys) == 0 {
		return 0, false
	}
	return h.keys[0], true
}

// Push adds a key.
func (h *Heap) Push(key uint64) {
	h.keys = append(h.keys, key)
	h.siftUp(len(h.keys) - 1)
}

// Pop removes and returns the minimum key.
func (h *Heap) Pop() (uint64, bool) {
	n := len(h.keys)
	if n == 0 {
		return 0, false
	}
	min := h.keys[0]
	h.keys[0] = h.keys[n-1]
	h.keys = h.keys[:n-1]
	if len(h.keys) > 0 {
		h.siftDown(0)
	}
	return min, true
}

// PopBulk removes up to n smallest keys into dst and returns the extended
// slice. Used by the batched Wimmer-style queues to amortize lock holds.
func (h *Heap) PopBulk(dst []uint64, n int) []uint64 {
	for i := 0; i < n; i++ {
		k, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, k)
	}
	return dst
}

// PushBulk adds all keys.
func (h *Heap) PushBulk(keys []uint64) {
	for _, k := range keys {
		h.Push(k)
	}
}

func (h *Heap) siftUp(i int) {
	key := h.keys[i]
	for i > 0 {
		parent := (i - 1) / h.arity
		if h.keys[parent] <= key {
			break
		}
		h.keys[i] = h.keys[parent]
		i = parent
	}
	h.keys[i] = key
}

func (h *Heap) siftDown(i int) {
	n := len(h.keys)
	key := h.keys[i]
	for {
		first := i*h.arity + 1
		if first >= n {
			break
		}
		last := first + h.arity
		if last > n {
			last = n
		}
		smallest := first
		for c := first + 1; c < last; c++ {
			if h.keys[c] < h.keys[smallest] {
				smallest = c
			}
		}
		if h.keys[smallest] >= key {
			break
		}
		h.keys[i] = h.keys[smallest]
		i = smallest
	}
	h.keys[i] = key
}
