package binheap

import (
	"sort"
	"testing"
	"testing/quick"

	"klsm/internal/xrand"
)

func TestEmpty(t *testing.T) {
	h := New(2)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("fresh heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty succeeded")
	}
}

func TestBadArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity 1 did not panic")
		}
	}()
	New(1)
}

func TestHeapSortAllArities(t *testing.T) {
	for _, arity := range []int{2, 3, 4, 8} {
		src := xrand.NewSeeded(uint64(arity))
		h := New(arity)
		keys := make([]uint64, 2000)
		for i := range keys {
			keys[i] = src.Uint64() % 10000
			h.Push(keys[i])
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, want := range keys {
			got, ok := h.Pop()
			if !ok || got != want {
				t.Fatalf("arity %d, pop %d: got %d (%v), want %d", arity, i, got, ok, want)
			}
		}
		if !h.Empty() {
			t.Fatalf("arity %d: heap not empty after full drain", arity)
		}
	}
}

func TestPeekMatchesPop(t *testing.T) {
	h := New(4)
	src := xrand.NewSeeded(9)
	for i := 0; i < 500; i++ {
		h.Push(src.Uint64())
	}
	for !h.Empty() {
		p, _ := h.Peek()
		g, _ := h.Pop()
		if p != g {
			t.Fatalf("Peek %d != Pop %d", p, g)
		}
	}
}

func TestPopBulkAndPushBulk(t *testing.T) {
	h := New(2)
	h.PushBulk([]uint64{5, 1, 4, 2, 3})
	got := h.PopBulk(nil, 3)
	want := []uint64{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("PopBulk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopBulk = %v, want %v", got, want)
		}
	}
	// Asking for more than available returns what exists.
	rest := h.PopBulk(nil, 10)
	if len(rest) != 2 || rest[0] != 4 || rest[1] != 5 {
		t.Fatalf("PopBulk remainder = %v", rest)
	}
}

func TestPropSortedDrain(t *testing.T) {
	f := func(keys []uint64) bool {
		h := New(8)
		for _, k := range keys {
			h.Push(k)
		}
		prev := uint64(0)
		for i := 0; i < len(keys); i++ {
			k, ok := h.Pop()
			if !ok || k < prev {
				return false
			}
			prev = k
		}
		return h.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicates(t *testing.T) {
	h := New(2)
	for i := 0; i < 10; i++ {
		h.Push(7)
	}
	for i := 0; i < 10; i++ {
		if k, ok := h.Pop(); !ok || k != 7 {
			t.Fatalf("pop %d: %d (%v)", i, k, ok)
		}
	}
}

func BenchmarkPushPopBinary(b *testing.B) {
	benchArity(b, 2)
}

func BenchmarkPushPop8Ary(b *testing.B) {
	benchArity(b, 8)
}

func benchArity(b *testing.B, arity int) {
	h := New(arity)
	src := xrand.NewSeeded(3)
	for i := 0; i < 1024; i++ {
		h.Push(src.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(src.Uint64())
		h.Pop()
	}
}
