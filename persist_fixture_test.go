package klsm

import (
	"bytes"
	"encoding/hex"
	"testing"

	"klsm/internal/walfault"
)

// The on-disk image below was produced by the durability layer as of the
// segment-checkpoint release (PR 7): a MANIFEST with no frozen lines, one
// checkpoint segment holding (key 10, seq 1, "a") and (key 20, seq 2, "bb"),
// and a WAL tail logging insert(seq 3, key 5, "ccc"), delete(seq 2) and
// insert(seq 4, key 30, "dddd"). The bytes are the compatibility contract:
// every later release must recover this directory — and leave its files
// byte-identical, since nothing here is torn or compactable-by-default.
var fixturePR7 = map[string]string{
	"seg-000001": "4b4c534d53454731020a01016114020262621a3071e7",
	"wal-000002": "07000000ed83155752cc7a8e0103050363636303000000e9918adf7932d8c002021408000000b6eed69e89d35f4e01041e0464646464",
	"MANIFEST":   "6b6c736d2d6d616e69666573742076310a6e65787473657120330a77616c2077616c2d3030303030320a7365676d656e74207365672d30303030303120320a6372632036613461343736660a",
}

func TestRecoverPR7FormatFixture(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{})
	for name, hexData := range fixturePR7 {
		data, err := hex.DecodeString(hexData)
		if err != nil {
			t.Fatalf("bad fixture hex for %s: %v", name, err)
		}
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	q, err := OpenFS(fs, "fixture", StringValue{})
	if err != nil {
		t.Fatalf("OpenFS on PR7 fixture: %v", err)
	}
	st := q.PersistStats()
	rec := st.Recovery
	if !rec.Recovered || rec.SegmentItems != 1 || rec.WALRecords != 3 ||
		rec.WALInserts != 2 || rec.WALDeletes != 1 || rec.UnknownDeletes != 0 ||
		rec.TornBytes != 0 || rec.FrozenWALs != 0 {
		t.Errorf("recovery stats: %+v", rec)
	}
	if st.NextSeq != 5 {
		t.Errorf("NextSeq = %d, want 5 (max fixture seq + 1)", st.NextSeq)
	}
	// Recovery appends nothing, so every fixture byte must be untouched
	// (checked before draining — the drain below logs delete records).
	for name, hexData := range fixturePR7 {
		wantBytes, _ := hex.DecodeString(hexData)
		gotBytes, err := fs.ReadFile(name)
		if err != nil {
			t.Fatalf("%s missing after recovery: %v", name, err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("%s not byte-identical after recovery:\n got %x\nwant %x", name, gotBytes, wantBytes)
		}
	}
	got := q.DrainMin(nil, 10)
	want := []KV[uint64, string]{{Key: 5, Value: "ccc"}, {Key: 10, Value: "a"}, {Key: 30, Value: "dddd"}}
	if len(got) != len(want) {
		t.Fatalf("recovered %d items (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("item %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
