package klsm

import (
	"container/heap"
	"testing"
)

// fuzzHeap is the exact-PQ oracle for fuzzing.
type fuzzHeap []uint64

func (h fuzzHeap) Len() int            { return len(h) }
func (h fuzzHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h fuzzHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fuzzHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *fuzzHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// FuzzSingleHandleExact drives a single-handle queue with byte-decoded
// operations and cross-checks every result against an exact heap: with one
// handle and local ordering, every configuration must behave exactly.
// Run with `go test -fuzz FuzzSingleHandleExact` for coverage-guided
// exploration; the seed corpus runs in ordinary `go test` invocations.
func FuzzSingleHandleExact(f *testing.F) {
	f.Add([]byte{0x00, 0x13, 0x07, 0x01, 0xff, 0x20})
	f.Add([]byte("insert-delete-insert"))
	f.Add([]byte{0x02, 0x04, 0x06, 0x01, 0x03, 0x05, 0x01, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		ks := []int{0, 4, 256}
		k := 0
		if len(data) > 0 {
			k = ks[int(data[0])%len(ks)]
		}
		q := New[struct{}](WithRelaxation(k))
		h := q.NewHandle()
		ref := &fuzzHeap{}
		for i, b := range data {
			if b&1 == 0 || ref.Len() == 0 {
				key := uint64(b>>1) + uint64(i)<<7
				h.Insert(key, struct{}{})
				heap.Push(ref, key)
			} else {
				got, _, ok := h.TryDeleteMin()
				want := heap.Pop(ref).(uint64)
				if !ok {
					t.Fatalf("op %d: spurious empty with %d live keys", i, ref.Len()+1)
				}
				if got != want {
					t.Fatalf("op %d: got %d, want %d (single handle must be exact)", i, got, want)
				}
			}
			if q.Size() != ref.Len() {
				t.Fatalf("op %d: Size %d, oracle %d", i, q.Size(), ref.Len())
			}
		}
	})
}

// FuzzConservationWithReconfig interleaves inserts, deletes, melds of an
// empty queue, and run-time k changes, checking the conservation invariant
// (nothing lost, nothing duplicated).
func FuzzConservationWithReconfig(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return
		}
		q := New[struct{}](WithRelaxation(8))
		h := q.NewHandle()
		inserted := map[uint64]int{}
		extracted := map[uint64]int{}
		ins, del := 0, 0
		for i, b := range data {
			switch b % 4 {
			case 0, 1:
				key := uint64(b) + uint64(i)
				h.Insert(key, struct{}{})
				inserted[key]++
				ins++
			case 2:
				if k, _, ok := h.TryDeleteMin(); ok {
					extracted[k]++
					del++
				}
			case 3:
				q.SetRelaxation(int(b) % 512)
			}
		}
		for {
			k, _, ok := h.TryDeleteMin()
			if !ok {
				break
			}
			extracted[k]++
			del++
		}
		if ins != del {
			t.Fatalf("conservation violated: %d inserted, %d extracted", ins, del)
		}
		for k, c := range extracted {
			if inserted[k] < c {
				t.Fatalf("key %d extracted %d times but inserted %d", k, c, inserted[k])
			}
		}
	})
}
