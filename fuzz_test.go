package klsm

import (
	"container/heap"
	"testing"

	"klsm/internal/binheap"
)

// fuzzHeap is the exact-PQ oracle for fuzzing.
type fuzzHeap []uint64

func (h fuzzHeap) Len() int            { return len(h) }
func (h fuzzHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h fuzzHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *fuzzHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *fuzzHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// FuzzSingleHandleExact drives a single-handle queue with byte-decoded
// operations and cross-checks every result against an exact heap: with one
// handle and local ordering, every configuration must behave exactly.
// Run with `go test -fuzz FuzzSingleHandleExact` for coverage-guided
// exploration; the seed corpus runs in ordinary `go test` invocations.
func FuzzSingleHandleExact(f *testing.F) {
	f.Add([]byte{0x00, 0x13, 0x07, 0x01, 0xff, 0x20})
	f.Add([]byte("insert-delete-insert"))
	f.Add([]byte{0x02, 0x04, 0x06, 0x01, 0x03, 0x05, 0x01, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		ks := []int{0, 4, 256}
		k := 0
		if len(data) > 0 {
			k = ks[int(data[0])%len(ks)]
		}
		q := New[struct{}](WithRelaxation(k))
		h := q.NewHandle()
		ref := &fuzzHeap{}
		for i, b := range data {
			if b&1 == 0 || ref.Len() == 0 {
				key := uint64(b>>1) + uint64(i)<<7
				h.Insert(key, struct{}{})
				heap.Push(ref, key)
			} else {
				got, _, ok := h.TryDeleteMin()
				want := heap.Pop(ref).(uint64)
				if !ok {
					t.Fatalf("op %d: spurious empty with %d live keys", i, ref.Len()+1)
				}
				if got != want {
					t.Fatalf("op %d: got %d, want %d (single handle must be exact)", i, got, want)
				}
			}
			if q.Size() != ref.Len() {
				t.Fatalf("op %d: Size %d, oracle %d", i, q.Size(), ref.Len())
			}
		}
	})
}

// FuzzMixedOpsRelaxed drives the full operation surface — insert,
// delete-min, handle open/close, and Quiesce — against a model binheap with
// relaxation-aware matching: every returned key must be among the ρ+1
// smallest the model holds, with ρ = T·k for the peak number of open
// handles (closed handles drain to the shared structure, so their items
// stay matched). The first byte also selects the deletion-buffer capacity
// (including off and a degenerate size 1), so the corpus exercises buffered
// candidates surviving — and flushing across — Quiesce, handle close, and
// the final drain. The seed corpus encodes interleavings that have been
// load-bearing in development: close-with-items mid-stream, quiesce between
// bursts, drain-after-churn (the dry-candidate-window shape behind the
// overlay-only relaxation bug the k-bound suite caught), handle churn
// around reclamation, and a warm-buffer quiesce/close sequence.
func FuzzMixedOpsRelaxed(f *testing.F) {
	// insert bursts, then drain through a fresh handle after a close.
	f.Add([]byte{0x10, 0x00, 0x08, 0x10, 0x18, 0x05, 0x20, 0x03, 0x0b, 0x13, 0x1b})
	// quiesce between bursts, close while the guard state is warm.
	f.Add([]byte{0x00, 0x08, 0x07, 0x10, 0x18, 0x06, 0x07, 0x03, 0x0b})
	// drain-after-churn: many inserts, then deletes through a second handle
	// (the dry-window / overlay-only shape at small k).
	f.Add([]byte{0x40, 0x00, 0x08, 0x10, 0x18, 0x20, 0x28, 0x05, 0x03, 0x0b, 0x13, 0x1b, 0x23, 0x2b, 0x33})
	// close/open churn interleaved with everything, ending in quiesce.
	f.Add([]byte{0x00, 0x05, 0x08, 0x06, 0x10, 0x05, 0x03, 0x06, 0x18, 0x07, 0x0b, 0x07})
	// warm-buffer lifecycle at k=64 with the full 32-entry buffer: deletes
	// fill the buffer, a quiesce publishes under it (anchor break), a handle
	// opens and closes around further buffered pops, then the drain flushes
	// whatever is left — conservation must hold throughout.
	f.Add([]byte{0xb0, 0x00, 0x08, 0x10, 0x18, 0x20, 0x03, 0x04, 0x07, 0x0b, 0x05, 0x1b, 0x06, 0x13, 0x07, 0x23})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		ks := []int{0, 4, 64}
		bufs := []int{32, 0, 1, 4}
		k, buf := 0, 32
		if len(data) > 0 {
			k = ks[int(data[0]>>6)%len(ks)]
			buf = bufs[int(data[0]>>4)%len(bufs)]
		}
		q := New[struct{}](WithRelaxation(k), WithDeletionBuffer(buf))
		model := binheap.New(2)
		const maxOpen = 4
		handles := []*Handle[struct{}]{q.NewHandle()}
		peakOpen := 1
		active := 0
		var scratch []uint64

		// matchRelaxed removes key from the model if it ranks within the
		// ρ+1 smallest, reporting whether it did.
		matchRelaxed := func(key uint64) bool {
			rho := peakOpen * k
			scratch = scratch[:0]
			found := false
			for i := 0; i <= rho; i++ {
				m, ok := model.Pop()
				if !ok {
					break
				}
				if m == key {
					found = true
					break
				}
				scratch = append(scratch, m)
			}
			model.PushBulk(scratch)
			return found
		}

		inserted, deleted := 0, 0
		for i, b := range data {
			h := handles[active]
			switch b % 8 {
			case 0, 1, 2:
				key := uint64(b>>3) + uint64(i)<<5
				h.Insert(key, struct{}{})
				model.Push(key)
				inserted++
			case 3, 4:
				key, _, ok := h.TryDeleteMin()
				if !ok {
					continue
				}
				if !matchRelaxed(key) {
					t.Fatalf("op %d: key %d is not among the ρ+1=%d smallest live keys (k=%d, T=%d)",
						i, key, peakOpen*k+1, k, peakOpen)
				}
				deleted++
			case 5:
				if len(handles) < maxOpen {
					handles = append(handles, q.NewHandle())
					active = len(handles) - 1
					if len(handles) > peakOpen {
						peakOpen = len(handles)
					}
				} else {
					active = (active + 1) % len(handles)
				}
			case 6:
				if len(handles) > 1 {
					h.Close()
					handles = append(handles[:active], handles[active+1:]...)
					active %= len(handles)
				}
			case 7:
				q.Quiesce()
			}
		}

		// Drain everything through the first surviving handle; every
		// remaining model key must come back exactly once.
		h := handles[0]
		misses := 0
		for model.Len() > 0 {
			key, _, ok := h.TryDeleteMin()
			if !ok {
				if misses++; misses > 1000 {
					t.Fatalf("queue ran dry with %d keys still live in the model", model.Len())
				}
				continue
			}
			misses = 0
			if !matchRelaxed(key) {
				t.Fatalf("drain: key %d is not among the ρ+1 smallest live keys", key)
			}
			deleted++
		}
		if deleted != inserted {
			t.Fatalf("conservation violated: %d inserted, %d extracted", inserted, deleted)
		}
		if _, _, ok := h.TryDeleteMin(); ok {
			t.Fatal("delete-min succeeded on an empty queue")
		}
		q.Quiesce()
	})
}

// FuzzConservationWithReconfig interleaves inserts, deletes, melds of an
// empty queue, and run-time k changes, checking the conservation invariant
// (nothing lost, nothing duplicated).
func FuzzConservationWithReconfig(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return
		}
		q := New[struct{}](WithRelaxation(8))
		h := q.NewHandle()
		inserted := map[uint64]int{}
		extracted := map[uint64]int{}
		ins, del := 0, 0
		for i, b := range data {
			switch b % 4 {
			case 0, 1:
				key := uint64(b) + uint64(i)
				h.Insert(key, struct{}{})
				inserted[key]++
				ins++
			case 2:
				if k, _, ok := h.TryDeleteMin(); ok {
					extracted[k]++
					del++
				}
			case 3:
				q.SetRelaxation(int(b) % 512)
			}
		}
		for {
			k, _, ok := h.TryDeleteMin()
			if !ok {
				break
			}
			extracted[k]++
			del++
		}
		if ins != del {
			t.Fatalf("conservation violated: %d inserted, %d extracted", ins, del)
		}
		for k, c := range extracted {
			if inserted[k] < c {
				t.Fatalf("key %d extracted %d times but inserted %d", k, c, inserted[k])
			}
		}
	})
}
