// Benchmarks regenerating the paper's evaluation (§6), one family per
// figure, plus the ablations indexed in DESIGN.md. See EXPERIMENTS.md for
// the mapping to the paper and recorded results.
//
// Figure 3 (throughput/thread/s, 50/50 mix, prefilled):
//
//	go test -bench 'BenchmarkFig3' -cpu 1,2,4,8 -benchtime 1s
//
// The per-op time reported at -cpu T is the inverse of throughput/thread;
// paper scale uses KLSM_BENCH_PREFILL=10000000.
//
// Figure 4 (SSSP execution time):
//
//	go test -bench 'BenchmarkFig4' -benchtime 5x
//
// Ablations: BenchmarkAblation*.
package klsm

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"klsm/internal/graph"
	"klsm/internal/harness"
	"klsm/internal/pqs"
	"klsm/internal/pqs/klsmq"
	"klsm/internal/sssp"
	"klsm/internal/xrand"
)

// benchPrefill returns the Figure 3 prefill size (paper: 1e6 and 1e7),
// overridable via KLSM_BENCH_PREFILL for paper-scale runs.
func benchPrefill() int {
	if s := os.Getenv("KLSM_BENCH_PREFILL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 100_000
}

// benchGraphNodes returns the Figure 4 graph size (paper: 10000 nodes at
// p=0.5), overridable via KLSM_BENCH_NODES.
func benchGraphNodes() int {
	if s := os.Getenv("KLSM_BENCH_NODES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 1 {
			return v
		}
	}
	return 1000
}

// runMix drives the 50/50 throughput mix under b.RunParallel; sweep thread
// counts with -cpu 1,2,4,8,... so ns/op at -cpu T is per-thread op latency
// (the reciprocal of Figure 3's throughput/thread/s).
func runMix(b *testing.B, q pqs.Queue) {
	if testing.Short() {
		b.Skip("multi-second throughput loop; skipped with -short")
	}
	b.ReportAllocs()
	prefill := benchPrefill()
	h := q.NewHandle()
	rng := xrand.NewSeeded(42)
	for i := 0; i < prefill; i++ {
		h.Insert(rng.Uint64())
	}
	pqs.FlushHandle(h)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		rng := xrand.New()
		for pb.Next() {
			if rng.Bool() {
				h.Insert(rng.Uint64())
			} else {
				h.TryDeleteMin()
			}
		}
	})
}

// runBatchInsert measures per-key insert cost through the public API; b.N
// counts keys, so ns/op is directly comparable between the batched and the
// equivalent-singles arm. The queue is drained outside the timer whenever it
// grows past a bound, keeping the measured structure at steady-state size.
func runBatchInsert(b *testing.B, size int, batched bool) {
	b.ReportAllocs()
	q := New[struct{}]()
	h := q.NewHandle()
	rng := xrand.NewSeeded(977)
	keys := make([]uint64, size)
	pending := 0
	b.ResetTimer()
	for n := 0; n < b.N; n += size {
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		if batched {
			h.InsertBatch(keys, nil)
		} else {
			for _, k := range keys {
				h.Insert(k, struct{}{})
			}
		}
		pending += size
		if pending >= 1<<16 {
			b.StopTimer()
			for {
				if _, _, ok := h.TryDeleteMin(); !ok {
					break
				}
			}
			pending = 0
			b.StartTimer()
		}
	}
}

// BenchmarkBatchInsert compares Handle.InsertBatch against the equivalent
// loop of single Inserts at the issue's batch sizes (DESIGN.md, "Batch
// operations"; recorded in BENCH_pr5-batchapi-sweep.json / EXPERIMENTS.md
// E14). The structural claim under test: a batch of n keys is one sort plus
// one ⌈log₂n⌉-level block publication, versus n level-0 merge cascades.
func BenchmarkBatchInsert(b *testing.B) {
	for _, size := range []int{8, 64, 512} {
		size := size
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) { runBatchInsert(b, size, true) })
		b.Run(fmt.Sprintf("single-%d", size), func(b *testing.B) { runBatchInsert(b, size, false) })
	}
}

// BenchmarkFig3Throughput is the Figure 3 queue line-up.
func BenchmarkFig3Throughput(b *testing.B) {
	for _, spec := range harness.Figure3Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			// Thread-count-sized queues (SprayList, MultiQueue) use the
			// -cpu value, which b.RunParallel exposes as GOMAXPROCS.
			runMix(b, spec.New(runtime.GOMAXPROCS(0)))
		})
	}
}

// fig4Graph lazily builds and caches the benchmark graph.
var fig4Cache *graph.CSR

func fig4Graph(b *testing.B) *graph.CSR {
	if testing.Short() {
		b.Skip("multi-second SSSP benchmark; skipped with -short")
	}
	if fig4Cache == nil {
		n := benchGraphNodes()
		fig4Cache = graph.ErdosRenyi(n, 0.5, 100_000_000, 42)
	}
	return fig4Cache
}

// BenchmarkFig4SSSPThreads is Figure 4 (left): SSSP time vs. worker count
// at k=256 for the three queues.
func BenchmarkFig4SSSPThreads(b *testing.B) {
	g := fig4Graph(b)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, spec := range harness.Figure4Specs(256) {
			spec := spec
			b.Run(fmt.Sprintf("%s/workers=%d", spec.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := sssp.Run(g, 0, workers, spec.NewSSSP)
					b.ReportMetric(float64(res.Processed), "pops/run")
				}
			})
		}
	}
}

// BenchmarkFig4SSSPK is Figure 4 (right): SSSP time vs. k at a fixed worker
// count.
func BenchmarkFig4SSSPK(b *testing.B) {
	g := fig4Graph(b)
	_, seqPops := graph.Dijkstra(g, 0)
	const workers = 4 // the paper fixes 10 threads; scale to local cores
	for _, k := range []int{0, 1, 4, 16, 64, 256, 1024, 4096, 16384} {
		for _, spec := range harness.Figure4Specs(k) {
			spec := spec
			b.Run(fmt.Sprintf("%s/k=%d", spec.Name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := sssp.Run(g, 0, workers, spec.NewSSSP)
					b.ReportMetric(float64(res.Processed-seqPops), "extra-iters")
				}
			})
		}
	}
}

// BenchmarkAblationLocalOrdering measures the cost of the Bloom-filter
// local-ordering check (DESIGN.md E6).
func BenchmarkAblationLocalOrdering(b *testing.B) {
	b.Run("on", func(b *testing.B) { runMix(b, klsmq.New(256)) })
	b.Run("off", func(b *testing.B) { runMix(b, klsmq.NewNoLocalOrdering(256)) })
}

// BenchmarkAblationLazyDeletion measures the §4.5 lazy-deletion extension's
// effect on SSSP (DESIGN.md E7): with the Drop hook, stale entries are
// purged during maintenance; without it every stale entry must be popped.
func BenchmarkAblationLazyDeletion(b *testing.B) {
	g := fig4Graph(b)
	with := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.NewWithDrop(256, drop)
	}
	without := func(workers int, drop func(uint64) bool) pqs.Queue {
		return klsmq.New(256)
	}
	b.Run("with-drop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sssp.Run(g, 0, 4, with)
			b.ReportMetric(float64(res.Stale), "stale-pops/run")
		}
	})
	b.Run("without-drop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := sssp.Run(g, 0, 4, without)
			b.ReportMetric(float64(res.Stale), "stale-pops/run")
		}
	})
}

// BenchmarkAblationPooling measures the §4.4 block/item recycling: the same
// Figure 3 mix with the per-handle pools on (default) and off. The headline
// metric is allocs/op — pooling must cut it by well over half — with the
// ns/op delta showing what that garbage costs.
func BenchmarkAblationPooling(b *testing.B) {
	b.Run("on", func(b *testing.B) { runMix(b, klsmq.New(256)) })
	b.Run("off", func(b *testing.B) { runMix(b, klsmq.NewNoPooling(256)) })
}

// BenchmarkAblationReclaim measures the §4.4 deterministic item-reclamation
// scheme (DESIGN.md E11/E12): the Figure 3 mix with item refcounts on
// (default) and off (items GC-backstopped). Allocs/op must stay ~0 in both
// modes and B/op is lower with reclamation on. With the lineage-transfer
// acquisition (E12 — references move through merges instead of being
// re-acquired per generation), the measured overhead is parity-to-~5% on
// the single-core box, down from PR 3's ~11–21% (EXPERIMENTS.md E12).
func BenchmarkAblationReclaim(b *testing.B) {
	b.Run("on", func(b *testing.B) { runMix(b, klsmq.New(256)) })
	b.Run("off", func(b *testing.B) { runMix(b, klsmq.NewNoReclaim(256)) })
}

// BenchmarkAblationMinCache measures the delete-min fast path (DESIGN.md
// E9): the Figure 3 mix with the min-caching layer (DistLSM per-block min
// cache, shared-k-LSM candidate window, skip-shared hint) on (default) and
// off. Run at -cpu 4 or higher for the acceptance comparison.
func BenchmarkAblationMinCache(b *testing.B) {
	b.Run("on", func(b *testing.B) { runMix(b, klsmq.New(256)) })
	b.Run("off", func(b *testing.B) { runMix(b, klsmq.NewNoMinCache(256)) })
}

// BenchmarkAblationSpy isolates the spy path (DESIGN.md E8): consumers
// delete far more than they insert, so their DistLSMs run dry and most
// delete-mins must spy — the DLSM's known scalability limit (§7). A trickle
// of inserts (1 in 8 ops) keeps the structure live; without it the
// benchmark degenerates into scanning permanently dead producer blocks.
func BenchmarkAblationSpy(b *testing.B) {
	if testing.Short() {
		b.Skip("throughput loop; skipped with -short")
	}
	b.ReportAllocs()
	q := klsmq.NewDLSM()
	producer := q.NewHandle()
	rng := xrand.NewSeeded(7)
	for i := 0; i < 10_000; i++ {
		producer.Insert(rng.Uint64())
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle() // empty DistLSM: deletes must spy first
		r := xrand.New()
		for pb.Next() {
			if r.Intn(8) == 0 {
				h.Insert(r.Uint64())
			} else {
				h.TryDeleteMin()
			}
		}
	})
}

// BenchmarkAblationKSweep shows the throughput/quality knob of the k-LSM
// directly: the same mix at increasing k.
func BenchmarkAblationKSweep(b *testing.B) {
	for _, k := range []int{0, 4, 64, 256, 4096} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runMix(b, klsmq.New(k))
		})
	}
}

// BenchmarkQualityRankError reports the empirical rank-error statistics of
// the relaxed queues as benchmark metrics (DESIGN.md E5).
func BenchmarkQualityRankError(b *testing.B) {
	if testing.Short() {
		b.Skip("sequential quality replay; skipped with -short")
	}
	for _, k := range []int{4, 256, 4096} {
		k := k
		b.Run(fmt.Sprintf("kLSM-nolocal-k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := harness.RankError(klsmq.NewNoLocalOrdering(k), 10_000, 50_000, uint64(i))
				b.ReportMetric(float64(res.MaxRank), "max-rank")
				b.ReportMetric(res.MeanRank, "mean-rank")
			}
		})
	}
}
