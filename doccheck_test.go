package klsm

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestPublicAPIDocumented is the docs gate run by CI: every exported
// identifier in the root package — types, functions, methods, and exported
// fields/consts/vars — must carry a doc comment. The public API is the
// contract; an undocumented addition fails the build.
func TestPublicAPIDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, ok := pkgs["klsm"]
	if !ok {
		t.Fatalf("root package not found (got %v)", pkgs)
	}

	var missing []string
	report := func(pos token.Pos, what string) {
		missing = append(missing, fset.Position(pos).String()+": "+what)
	}
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !receiverExported(d.Recv) {
					continue // method on an unexported type
				}
				if d.Doc.Text() == "" {
					report(d.Pos(), "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if d.Doc.Text() == "" && s.Doc.Text() == "" {
							report(s.Pos(), "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							if d.Doc.Text() == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
								report(n.Pos(), "value "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Fatalf("public identifiers without doc comments:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// receiverExported reports whether a method receiver names an exported type.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver Queue[V]
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
