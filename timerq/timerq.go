// Package timerq is a deadline manager for millions of timers over the
// k-LSM relaxed priority queue, with first-class cancellation.
//
// Timers are (deadline, payload) pairs identified by a TimerID. Schedule
// inserts, Cancel and Reschedule are O(1) registry operations that never
// touch the priority queue, and a tick-driven Expire batch-drains every
// timer due by "now" through the queue's bounded drain. Relaxation is a
// feature here, not a compromise: firing a timer up to ρ = T·k ranks early
// within one tick is invisible at tick granularity, and the relaxed queue's
// throughput headroom is exactly what a timeout manager for millions of
// connections needs (see DESIGN.md "Timer subsystem" for the safety
// argument, and cmd/timerbench for the measured comparison against a
// hierarchical timing wheel and against the strict k=0 configuration).
//
// Cancellation is lazy, in three layers:
//
//  1. The sharded tombstone registry (ID → generation) is the source of
//     truth. Cancel removes the registry record; the queue entry remains as
//     a tombstone.
//  2. Expiry consults the registry: a drained entry whose (ID, generation)
//     no longer matches is discarded, never emitted. Removal under the
//     registry shard lock makes fire-vs-cancel-vs-reschedule exactly-once.
//  3. Tombstones are physically reclaimed by the queue's merge filter
//     (klsm.NewOrderedWithDrop): whenever a merge, delete or compaction
//     pass copies over a tombstoned entry, it is dropped. A
//     cancellation-pressure heuristic triggers a full Compact when the
//     tombstone estimate outgrows the live count, so the structure's
//     footprint stays bounded even under adversarial cancel-heavy load
//     that never naturally merges the affected blocks.
package timerq

import (
	"sync"
	"sync/atomic"
	"time"

	"klsm"
)

// tref is the queue payload: the timer's identity plus the generation it
// was enqueued under. Two words — the actual payload lives in the registry.
type tref struct {
	id  TimerID
	gen uint64
}

// expireBatch is the per-round drain size of Expire: large enough to
// amortize the drain's window refills (it exceeds the default deletion
// buffer several times over), small enough to keep emit latency and the
// per-round buffer allocation modest.
const expireBatch = 256

// config collects the Option-settable knobs.
type config struct {
	queueOpts []klsm.Option
	// pressure is the garbage/live ratio beyond which a Compact triggers.
	pressure float64
	// minGarbage floors the trigger: below this many estimated tombstoned
	// entries, compaction never runs (it would reclaim too little to pay
	// for the pass).
	minGarbage int64
}

// Option configures New.
type Option func(*config)

// WithQueueOptions passes options through to the underlying klsm queue:
// relaxation (klsm.WithRelaxation), mode, pooling, and every other
// klsm.Option. The default is klsm's default configuration (combined
// k-LSM, k = 256).
func WithQueueOptions(opts ...klsm.Option) Option {
	return func(c *config) { c.queueOpts = append(c.queueOpts, opts...) }
}

// WithCompactionPressure tunes the cancellation-pressure heuristic: a
// compaction pass triggers once the estimated tombstoned-entry count
// exceeds both ratio × (live timers) and min. The defaults (ratio 1.0,
// min 4096) compact when garbage outweighs live content; a ratio <= 0
// disables ratio-based triggering entirely (compaction then only runs via
// explicit Compact calls).
func WithCompactionPressure(ratio float64, min int) Option {
	return func(c *config) {
		c.pressure = ratio
		c.minGarbage = int64(min)
	}
}

// Queue is the timer subsystem: a deadline-keyed relaxed priority queue
// plus the tombstone registry that makes cancellation O(1). All methods
// are safe for concurrent use by any number of goroutines.
type Queue[P any] struct {
	q   *klsm.OrderedQueue[time.Time, tref]
	reg *registry[P]

	nextID atomic.Uint64
	// garbage estimates the tombstoned entries still physically present in
	// the queue: incremented by Cancel and Reschedule, decremented when
	// expiry pops a stale entry, lowered wholesale after a Compact. An
	// overestimate (merges silently reclaim tombstones too) only makes
	// compaction slightly eager. It doubles as the merge filter's fast
	// path: at zero, merges skip the registry lookup entirely, so
	// cancellation-free workloads pay nothing for the filter.
	garbage atomic.Int64
	// compacting serializes pressure-triggered compactions (a second
	// trigger while one runs is dropped, not queued).
	compacting atomic.Bool
	// expireMu serializes Expire's drain loop. Concurrent expirers remain
	// correct without it (the registry arbitrates exactly-once), but they
	// duplicate work at the queue layer: each one's bounded drain spies
	// the same due blocks out of idle handles' local structures, tripling
	// copies that then die as garbage. One expirer at a time keeps the
	// drain's structural work linear in the due population; Schedule,
	// Cancel and Reschedule never touch this lock.
	expireMu sync.Mutex

	scheduled   atomic.Int64
	canceled    atomic.Int64
	fired       atomic.Int64
	rescheduled atomic.Int64
	compactions atomic.Int64

	pressure   float64
	minGarbage int64
}

// New returns an empty timer queue for payloads of type P.
func New[P any](opts ...Option) *Queue[P] {
	cfg := config{pressure: 1.0, minGarbage: 4096}
	for _, o := range opts {
		o(&cfg)
	}
	tq := &Queue[P]{
		reg:        &registry[P]{},
		pressure:   cfg.pressure,
		minGarbage: cfg.minGarbage,
	}
	// The merge filter: an entry is garbage exactly when its (id, gen) is
	// no longer the registry's live record. Registry-add strictly precedes
	// the queue insert in Schedule/Reschedule, so the filter can never
	// claim a live timer's entry. The garbage fast path keeps merge passes
	// lookup-free until the first cancellation.
	drop := func(_ time.Time, r tref) bool {
		if tq.garbage.Load() == 0 {
			return false
		}
		return !tq.reg.alive(r.id, r.gen)
	}
	tq.q = klsm.NewOrderedWithDrop[time.Time, tref](klsm.TimeKey(), drop, cfg.queueOpts...)
	return tq
}

// Schedule registers a timer firing at deadline and returns its ID. The
// deadline must be inside TimeKey's representable window; outside it a
// *klsm.TimeKeyRangeError is returned and nothing is scheduled (a silently
// clamped deadline could fire ~300 years off). Deadlines in the past are
// valid and fire on the next Expire.
func (q *Queue[P]) Schedule(deadline time.Time, payload P) (TimerID, error) {
	if err := klsm.CheckTimeKey(deadline); err != nil {
		return 0, err
	}
	id := TimerID(q.nextID.Add(1))
	// Registry first, queue second: from the instant the entry is
	// queue-visible, the merge filter finds it alive.
	q.reg.add(id, 1, deadline.UnixNano(), payload)
	q.q.Insert(deadline, tref{id: id, gen: 1})
	q.scheduled.Add(1)
	return id, nil
}

// Cancel deregisters the timer, reporting whether it was still pending
// (false: already fired, already canceled, or never scheduled). O(1): only
// the registry is touched; the queue entry becomes a tombstone that expiry
// skips and merges physically reclaim. Cancellation wins or loses against
// a concurrent Expire atomically — the payload is delivered exactly once
// or not at all, never both.
func (q *Queue[P]) Cancel(id TimerID) bool {
	if !q.reg.cancel(id) {
		return false
	}
	q.canceled.Add(1)
	q.garbage.Add(1)
	q.maybeCompact()
	return true
}

// Reschedule moves a pending timer to a new deadline, reporting whether it
// was still pending. The deadline window rule matches Schedule. Internally
// the timer's generation advances and a fresh queue entry is inserted; the
// superseded entry becomes a tombstone. A timer that fires concurrently
// with its Reschedule does one or the other — fires at the old deadline or
// moves — never both.
func (q *Queue[P]) Reschedule(id TimerID, deadline time.Time) (bool, error) {
	if err := klsm.CheckTimeKey(deadline); err != nil {
		return false, err
	}
	gen, ok := q.reg.bump(id, deadline.UnixNano())
	if !ok {
		return false, nil
	}
	q.rescheduled.Add(1)
	q.garbage.Add(1) // the superseded queue entry
	q.q.Insert(deadline, tref{id: id, gen: gen})
	q.maybeCompact()
	return true, nil
}

// Expire fires every timer due at or before now: due entries are
// batch-drained from the queue (bounded drain — entries past now are never
// touched), arbitrated against the registry, and emit is invoked once per
// surviving timer with its ID, deadline and payload. It returns the number
// fired. Within one Expire call the emit order is the queue's relaxed pop
// order — deadline order up to ρ = T·k ranks — which is invisible at tick
// granularity (every emitted timer is genuinely due). Multiple goroutines
// may call Expire concurrently; each due timer fires exactly once, on one
// of them. A return of 0 is a strong signal: no reachable timer was due at
// the drain's bound, including timers stranded in idle handles' local
// structures (the queue's due-bounded spy pass covers them).
func (q *Queue[P]) Expire(now time.Time, emit func(id TimerID, deadline time.Time, payload P)) int {
	q.expireMu.Lock()
	defer q.expireMu.Unlock()
	fired := 0
	buf := make([]klsm.KV[time.Time, tref], 0, expireBatch)
	for {
		buf = q.q.DrainMinBounded(buf[:0], expireBatch, now)
		for _, kv := range buf {
			payload, ok := q.reg.fire(kv.Value.id, kv.Value.gen)
			if !ok {
				// Tombstone (canceled or superseded): physically gone now.
				q.garbage.Add(-1)
				continue
			}
			q.fired.Add(1)
			fired++
			emit(kv.Value.id, kv.Key, payload)
		}
		if len(buf) < expireBatch {
			break
		}
	}
	q.maybeCompact()
	return fired
}

// Deadline returns a pending timer's current deadline (UTC), with ok false
// when the timer is no longer pending.
func (q *Queue[P]) Deadline(id TimerID) (deadline time.Time, ok bool) {
	ns, ok := q.reg.lookup(id)
	if !ok {
		return time.Time{}, false
	}
	return time.Unix(0, ns).UTC(), true
}

// Len returns the number of pending timers — exactly (registry count), not
// the queue's entry count, which additionally holds unreclaimed tombstones
// (see Footprint).
func (q *Queue[P]) Len() int { return int(q.reg.live.Load()) }

// Footprint returns the physical entry count of the underlying queue's
// published blocks: pending timers plus tombstones not yet reclaimed. A
// Footprint that stays within a small factor of Len across ticks is the
// signal that lazy cancellation is keeping up; cmd/timerbench records it.
func (q *Queue[P]) Footprint() int { return q.q.Footprint() }

// Compact synchronously purges tombstoned entries from the whole queue
// structure (see klsm.Queue.Compact). The pressure heuristic calls this
// automatically; it is exported for callers that want deterministic
// compaction points (between ticks, say).
func (q *Queue[P]) Compact() {
	q.q.Compact()
	q.compactions.Add(1)
}

// maybeCompact runs Compact when the tombstone estimate exceeds both the
// configured floor and ratio × live — at most one compaction at a time,
// extra triggers dropped. The estimate is lowered by what the pass could
// have seen, not zeroed: cancellations racing the compaction keep their
// count.
func (q *Queue[P]) maybeCompact() {
	if q.pressure <= 0 {
		return
	}
	g := q.garbage.Load()
	if g < q.minGarbage || float64(g) < q.pressure*float64(q.reg.live.Load()) {
		return
	}
	if !q.compacting.CompareAndSwap(false, true) {
		return
	}
	defer q.compacting.Store(false)
	q.Compact()
	q.garbage.Add(-g)
}

// Stats is a snapshot of the queue's operation counters.
type Stats struct {
	// Scheduled, Canceled, Rescheduled, Fired count successful operations
	// since New.
	Scheduled, Canceled, Rescheduled, Fired int64
	// Compactions counts completed Compact passes (explicit and
	// pressure-triggered).
	Compactions int64
	// GarbageEstimate is the current tombstoned-entry estimate driving the
	// pressure heuristic.
	GarbageEstimate int64
	// Pending and Footprint mirror Len and Footprint at snapshot time.
	Pending, Footprint int
}

// Stats returns a racy snapshot of the operation counters.
func (q *Queue[P]) Stats() Stats {
	return Stats{
		Scheduled:       q.scheduled.Load(),
		Canceled:        q.canceled.Load(),
		Rescheduled:     q.rescheduled.Load(),
		Fired:           q.fired.Load(),
		Compactions:     q.compactions.Load(),
		GarbageEstimate: q.garbage.Load(),
		Pending:         q.Len(),
		Footprint:       q.Footprint(),
	}
}
