package timerq

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klsm"
)

// base is an arbitrary in-window instant all test deadlines hang off.
var base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return base.Add(d) }

func TestScheduleExpireBasic(t *testing.T) {
	q := New[string]()
	ids := make(map[TimerID]string)
	for i := 0; i < 100; i++ {
		id, err := q.Schedule(at(time.Duration(i)*time.Millisecond), fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatalf("Schedule: %v", err)
		}
		if id == 0 {
			t.Fatalf("Schedule returned zero TimerID")
		}
		if _, dup := ids[id]; dup {
			t.Fatalf("duplicate TimerID %d", id)
		}
		ids[id] = fmt.Sprintf("p%d", i)
	}
	if got := q.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}

	// Nothing is due before the first deadline... except timer 0 itself.
	fired := map[TimerID]string{}
	n := q.Expire(at(50*time.Millisecond), func(id TimerID, deadline time.Time, p string) {
		if deadline.After(at(50 * time.Millisecond)) {
			t.Errorf("fired timer with deadline %v after bound", deadline)
		}
		fired[id] = p
	})
	if n != 51 { // deadlines 0..50ms inclusive
		t.Fatalf("Expire fired %d, want 51", n)
	}
	if q.Len() != 49 {
		t.Fatalf("Len after partial expire = %d, want 49", q.Len())
	}
	// The rest fire on a later tick; none fire twice.
	n = q.Expire(at(time.Hour), func(id TimerID, _ time.Time, p string) {
		if _, dup := fired[id]; dup {
			t.Errorf("timer %d fired twice", id)
		}
		fired[id] = p
	})
	if n != 49 {
		t.Fatalf("second Expire fired %d, want 49", n)
	}
	for id, want := range ids {
		if got, ok := fired[id]; !ok || got != want {
			t.Fatalf("timer %d: fired payload %q ok=%v, want %q", id, got, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after full expire = %d, want 0", q.Len())
	}
	// Empty queue: Expire is a no-op.
	if n := q.Expire(at(2*time.Hour), func(TimerID, time.Time, string) {}); n != 0 {
		t.Fatalf("Expire on empty queue fired %d", n)
	}
}

func TestPastDeadlineFires(t *testing.T) {
	q := New[int]()
	if _, err := q.Schedule(at(-time.Hour), 7); err != nil {
		t.Fatalf("Schedule in the past: %v", err)
	}
	var got int
	if n := q.Expire(at(0), func(_ TimerID, _ time.Time, p int) { got = p }); n != 1 {
		t.Fatalf("Expire fired %d, want 1", n)
	}
	if got != 7 {
		t.Fatalf("payload = %d, want 7", got)
	}
}

func TestCancel(t *testing.T) {
	q := New[int]()
	id1, _ := q.Schedule(at(time.Millisecond), 1)
	id2, _ := q.Schedule(at(2*time.Millisecond), 2)

	if !q.Cancel(id1) {
		t.Fatalf("Cancel(live) = false")
	}
	if q.Cancel(id1) {
		t.Fatalf("Cancel(already canceled) = true")
	}
	if q.Cancel(TimerID(999999)) {
		t.Fatalf("Cancel(never scheduled) = true")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}

	var fired []int
	q.Expire(at(time.Hour), func(_ TimerID, _ time.Time, p int) { fired = append(fired, p) })
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	if q.Cancel(id2) {
		t.Fatalf("Cancel(already fired) = true")
	}
}

func TestReschedule(t *testing.T) {
	q := New[string]()
	id, _ := q.Schedule(at(time.Millisecond), "x")

	ok, err := q.Reschedule(id, at(time.Hour))
	if err != nil || !ok {
		t.Fatalf("Reschedule = %v, %v", ok, err)
	}
	if dl, ok := q.Deadline(id); !ok || !dl.Equal(at(time.Hour)) {
		t.Fatalf("Deadline = %v, %v; want %v", dl, ok, at(time.Hour))
	}

	// Old deadline passes: nothing fires (the stale entry is a tombstone).
	if n := q.Expire(at(time.Minute), func(TimerID, time.Time, string) {}); n != 0 {
		t.Fatalf("Expire at old deadline fired %d, want 0", n)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}

	// New deadline: fires once, at the new deadline.
	var deadlines []time.Time
	n := q.Expire(at(2*time.Hour), func(_ TimerID, dl time.Time, _ string) { deadlines = append(deadlines, dl) })
	if n != 1 || len(deadlines) != 1 || !deadlines[0].Equal(at(time.Hour)) {
		t.Fatalf("Expire fired %d with deadlines %v, want 1 at %v", n, deadlines, at(time.Hour))
	}

	if ok, _ := q.Reschedule(id, at(3*time.Hour)); ok {
		t.Fatalf("Reschedule(fired timer) = true")
	}
}

// TestRescheduleEarlier moves a timer backward in time — the fresh queue
// entry lands below keys already seen — and checks it still fires.
func TestRescheduleEarlier(t *testing.T) {
	q := New[int]()
	id, _ := q.Schedule(at(time.Hour), 1)
	if ok, err := q.Reschedule(id, at(time.Millisecond)); !ok || err != nil {
		t.Fatalf("Reschedule earlier = %v, %v", ok, err)
	}
	n := q.Expire(at(time.Minute), func(TimerID, time.Time, int) {})
	if n != 1 {
		t.Fatalf("Expire fired %d, want 1", n)
	}
	// The stale (later) entry must not resurrect the timer.
	if n := q.Expire(at(2*time.Hour), func(TimerID, time.Time, int) {}); n != 0 {
		t.Fatalf("stale entry fired: %d", n)
	}
}

func TestDeadlineRangeRejected(t *testing.T) {
	q := New[int]()
	var rangeErr *klsm.TimeKeyRangeError
	tooEarly := time.Date(1500, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := q.Schedule(tooEarly, 0); !errors.As(err, &rangeErr) {
		t.Fatalf("Schedule(out of window) err = %v, want *TimeKeyRangeError", err)
	}
	if q.Len() != 0 {
		t.Fatalf("rejected Schedule left Len = %d", q.Len())
	}
	id, _ := q.Schedule(at(0), 0)
	if _, err := q.Reschedule(id, tooEarly); !errors.As(err, &rangeErr) {
		t.Fatalf("Reschedule(out of window) err = %v, want *TimeKeyRangeError", err)
	}
	if dl, ok := q.Deadline(id); !ok || !dl.Equal(at(0)) {
		t.Fatalf("failed Reschedule moved deadline: %v %v", dl, ok)
	}
}

// TestCancelHeavyFootprintBounded drives the cancellation-pressure
// heuristic: schedule far-future timers and cancel most of them, in waves,
// and require the queue's physical footprint to stay within a constant
// factor of the live count instead of accumulating every tombstone.
func TestCancelHeavyFootprintBounded(t *testing.T) {
	const (
		waves    = 8
		perWave  = 20000
		cancelPc = 90 // cancel 90% of each wave
	)
	q := New[int](WithCompactionPressure(0.5, 1024))
	rng := rand.New(rand.NewSource(1))
	live := 0
	for w := 0; w < waves; w++ {
		ids := make([]TimerID, 0, perWave)
		for i := 0; i < perWave; i++ {
			id, err := q.Schedule(at(time.Duration(1+rng.Intn(1<<20))*time.Second), i)
			if err != nil {
				t.Fatalf("Schedule: %v", err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if rng.Intn(100) < cancelPc {
				if q.Cancel(id) {
					live--
				}
			}
		}
		live += perWave
	}
	if got := q.Len(); got != live {
		t.Fatalf("Len = %d, want %d", got, live)
	}
	st := q.Stats()
	if st.Compactions == 0 {
		t.Fatalf("pressure heuristic never compacted: %+v", st)
	}
	// One explicit compaction settles in-flight estimates, then the bound:
	// the total tombstones created vastly exceed any allowed slack, so this
	// fails if tombstones accumulate.
	q.Compact()
	fp := q.Footprint()
	limit := 4*live + 4096
	if fp > limit {
		t.Fatalf("Footprint %d exceeds %d (live %d): tombstones accumulating", fp, limit, live)
	}
	// Everything left must still fire exactly once.
	fired := 0
	q.Expire(at(1<<21*time.Second), func(TimerID, time.Time, int) { fired++ })
	if fired != live {
		t.Fatalf("fired %d, want %d", fired, live)
	}
}

// TestConcurrentExactlyOnce races schedulers, cancelers and expirers and
// asserts every timer either fires exactly once or is canceled exactly
// once — never both, never neither, never twice.
func TestConcurrentExactlyOnce(t *testing.T) {
	const (
		schedulers = 4
		perSched   = 3000
	)
	q := New[uint64](WithCompactionPressure(1.0, 512))
	var (
		firedCount [schedulers * perSched]atomic.Int32
		canceled   [schedulers * perSched]atomic.Bool
		idOf       [schedulers * perSched]TimerID
		scheduled  atomic.Int64
		done       atomic.Bool
	)
	var wg sync.WaitGroup

	for s := 0; s < schedulers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < perSched; i++ {
				slot := s*perSched + i
				id, err := q.Schedule(at(time.Duration(rng.Intn(1000))*time.Microsecond), uint64(slot))
				if err != nil {
					t.Errorf("Schedule: %v", err)
					return
				}
				idOf[slot] = id
				scheduled.Add(1)
				// Cancel roughly half, sometimes after a reschedule.
				if rng.Intn(2) == 0 {
					if rng.Intn(4) == 0 {
						q.Reschedule(id, at(time.Duration(rng.Intn(2000))*time.Microsecond))
					}
					if q.Cancel(id) {
						canceled[slot].Store(true)
					}
				}
			}
		}(s)
	}

	// Expirers run concurrently with scheduling, firing whatever is due.
	var ewg sync.WaitGroup
	for e := 0; e < 3; e++ {
		ewg.Add(1)
		go func() {
			defer ewg.Done()
			for !done.Load() {
				q.Expire(at(2*time.Millisecond), func(_ TimerID, _ time.Time, slot uint64) {
					firedCount[slot].Add(1)
				})
			}
			// Final sweep after all scheduling settled.
			q.Expire(at(2*time.Millisecond), func(_ TimerID, _ time.Time, slot uint64) {
				firedCount[slot].Add(1)
			})
		}()
	}

	wg.Wait()
	done.Store(true)
	ewg.Wait()

	for slot := range firedCount {
		f := firedCount[slot].Load()
		c := canceled[slot].Load()
		switch {
		case f > 1:
			t.Fatalf("slot %d (timer %d) fired %d times", slot, idOf[slot], f)
		case f == 1 && c:
			t.Fatalf("slot %d (timer %d) both fired and canceled", slot, idOf[slot])
		case f == 0 && !c:
			t.Fatalf("slot %d (timer %d) neither fired nor canceled", slot, idOf[slot])
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
}

// TestExpireConcurrentNoDuplicates hammers one due population with many
// concurrent expirers; the registry arbitration must hand each timer to
// exactly one of them.
func TestExpireConcurrentNoDuplicates(t *testing.T) {
	const n = 50000
	q := New[int]()
	for i := 0; i < n; i++ {
		if _, err := q.Schedule(at(time.Duration(i)*time.Microsecond), i); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	var seen [n]atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for e := 0; e < 8; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fired := q.Expire(at(time.Hour), func(_ TimerID, _ time.Time, p int) {
				seen[p].Add(1)
			})
			total.Add(int64(fired))
		}()
	}
	wg.Wait()
	if total.Load() != n {
		t.Fatalf("total fired %d, want %d", total.Load(), n)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("timer %d fired %d times", i, c)
		}
	}
}

func TestStatsAndDeadline(t *testing.T) {
	q := New[int]()
	id, _ := q.Schedule(at(time.Second), 1)
	if dl, ok := q.Deadline(id); !ok || !dl.Equal(at(time.Second)) {
		t.Fatalf("Deadline = %v, %v", dl, ok)
	}
	q.Schedule(at(2*time.Second), 2)
	id3, _ := q.Schedule(at(3*time.Second), 3)
	q.Cancel(id3)
	q.Reschedule(id, at(4*time.Second))
	q.Expire(at(2*time.Second), func(TimerID, time.Time, int) {})

	st := q.Stats()
	if st.Scheduled != 3 || st.Canceled != 1 || st.Rescheduled != 1 || st.Fired != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.Pending != 1 {
		t.Fatalf("Pending = %d, want 1", st.Pending)
	}
	if _, ok := q.Deadline(id3); ok {
		t.Fatalf("Deadline(canceled) reported live")
	}
}

// TestStrictMode runs the basic flow at k = 0 (strict ordering) to confirm
// timer semantics are relaxation-independent.
func TestStrictMode(t *testing.T) {
	q := New[int](WithQueueOptions(klsm.WithRelaxation(0)))
	for i := 0; i < 1000; i++ {
		q.Schedule(at(time.Duration(i)*time.Millisecond), i)
	}
	fired := 0
	q.Expire(at(500*time.Millisecond), func(TimerID, time.Time, int) { fired++ })
	if fired != 501 {
		t.Fatalf("strict Expire fired %d, want 501", fired)
	}
}
