package timerq

import (
	"sync"
	"sync/atomic"
)

// TimerID identifies one scheduled timer for the lifetime of its Queue.
// IDs are allocated densely from 1 and never reused; the zero TimerID is
// never issued, so it can serve as a "no timer" sentinel in caller state.
type TimerID uint64

// shardCount is the tombstone-registry shard count (power of two; IDs are
// dense, so id&mask spreads adjacent timers across shards). 64 shards keep
// the per-shard mutexes uncontended for any realistic expirer/scheduler
// concurrency while the merge filter consults the registry from every
// handle's merge passes.
const shardCount = 64

// entry is a live timer's registry record: its current generation (bumped
// by Reschedule, so stale queue entries self-identify), its deadline in
// UnixNano, and the payload — which lives only here, never in the queue,
// so the priority-queue entries stay two words regardless of P.
type entry[P any] struct {
	gen      uint64
	deadline int64
	payload  P
}

// shard is one mutex-guarded slice of the registry.
type shard[P any] struct {
	mu sync.Mutex
	m  map[TimerID]entry[P]
	// padding to a cache line would go here on a machine where false
	// sharing between adjacent shard mutexes is measurable; the map header
	// already spaces them beyond one word.
}

// registry is the sharded tombstone registry: presence of (id, gen) is the
// single source of truth for "this timer is live". Schedule adds before the
// queue insert (so the merge filter can never drop a live-but-unqueued
// entry), Cancel and a successful fire remove, Reschedule bumps gen —
// making every older queue entry for the id garbage the filter can claim.
type registry[P any] struct {
	shards [shardCount]shard[P]
	// live counts registered timers (adds minus removes), read lock-free
	// by Len and the compaction-pressure heuristic.
	live atomic.Int64
}

func (r *registry[P]) shardOf(id TimerID) *shard[P] {
	return &r.shards[uint64(id)&(shardCount-1)]
}

// add registers a timer. The id is fresh (never reused), so no collision
// check is needed.
func (r *registry[P]) add(id TimerID, gen uint64, deadline int64, payload P) {
	s := r.shardOf(id)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[TimerID]entry[P])
	}
	s.m[id] = entry[P]{gen: gen, deadline: deadline, payload: payload}
	s.mu.Unlock()
	r.live.Add(1)
}

// cancel removes the timer if it is live, reporting whether it was. This is
// the entire cancellation fast path: the queue entry becomes a tombstone
// the expiry check skips and the merge filter eventually reclaims.
func (r *registry[P]) cancel(id TimerID) bool {
	s := r.shardOf(id)
	s.mu.Lock()
	_, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if ok {
		r.live.Add(-1)
	}
	return ok
}

// fire removes the timer iff (id, gen) matches the live record, returning
// its payload. The removal under the shard lock is the exactly-once
// arbitration point between expiry, cancellation and reschedule: whichever
// removes (or bumps) first wins, every other path sees a mismatch.
func (r *registry[P]) fire(id TimerID, gen uint64) (payload P, ok bool) {
	s := r.shardOf(id)
	s.mu.Lock()
	e, present := s.m[id]
	if !present || e.gen != gen {
		s.mu.Unlock()
		var zero P
		return zero, false
	}
	delete(s.m, id)
	s.mu.Unlock()
	r.live.Add(-1)
	return e.payload, true
}

// bump advances a live timer's generation and deadline for Reschedule,
// returning the new generation. The old queue entry — still carrying the
// previous gen — is garbage from this moment on.
func (r *registry[P]) bump(id TimerID, deadline int64) (gen uint64, ok bool) {
	s := r.shardOf(id)
	s.mu.Lock()
	e, present := s.m[id]
	if !present {
		s.mu.Unlock()
		return 0, false
	}
	e.gen++
	e.deadline = deadline
	s.m[id] = e
	s.mu.Unlock()
	return e.gen, true
}

// alive reports whether (id, gen) is the live record — the merge filter's
// query. Anything else (canceled, fired, or superseded by a reschedule) is
// garbage the filter may physically drop.
func (r *registry[P]) alive(id TimerID, gen uint64) bool {
	s := r.shardOf(id)
	s.mu.Lock()
	e, present := s.m[id]
	s.mu.Unlock()
	return present && e.gen == gen
}

// lookup returns a live timer's deadline for introspection.
func (r *registry[P]) lookup(id TimerID) (deadline int64, ok bool) {
	s := r.shardOf(id)
	s.mu.Lock()
	e, present := s.m[id]
	s.mu.Unlock()
	if !present {
		return 0, false
	}
	return e.deadline, true
}
