package klsm

import (
	"encoding/json"
	"fmt"
)

// ValueCodec serializes payloads of type V for the durability layer: every
// persisted insert writes Encode(value) into the write-ahead log, and
// recovery rebuilds values with Decode. Open requires one; queues created by
// New never serialize and need none. It is the payload-side sibling of
// KeyCodec: keys translate into the uint64 priority space, values translate
// into bytes.
//
// A codec must be stateless enough for concurrent use: inserts encode inline
// on their caller's goroutine, possibly many at once. Recovery decodes
// single-threaded.
type ValueCodec[V any] interface {
	// Encode appends the serialized form of v to dst and returns the
	// extended slice (append semantics — dst may be nil or recycled
	// scratch). An error aborts the operation: Insert panics on it
	// (documented there), Checkpoint returns it.
	Encode(dst []byte, v V) ([]byte, error)
	// Decode rebuilds a value. data is only valid during the call (it
	// aliases a replay buffer); implementations must copy anything they
	// retain.
	Decode(data []byte) (V, error)
}

// BytesValue is the ValueCodec for raw []byte payloads. Decode copies, so
// recovered values never alias recovery buffers.
type BytesValue struct{}

// Encode implements ValueCodec.
func (BytesValue) Encode(dst []byte, v []byte) ([]byte, error) { return append(dst, v...), nil }

// Decode implements ValueCodec.
func (BytesValue) Decode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	return append([]byte(nil), data...), nil
}

// StringValue is the ValueCodec for string payloads.
type StringValue struct{}

// Encode implements ValueCodec.
func (StringValue) Encode(dst []byte, v string) ([]byte, error) { return append(dst, v...), nil }

// Decode implements ValueCodec.
func (StringValue) Decode(data []byte) (string, error) { return string(data), nil }

// NoValue is the ValueCodec for valueless queues (V = struct{}): it encodes
// to zero bytes, keeping WAL records as small as the key alone allows.
type NoValue struct{}

// Encode implements ValueCodec.
func (NoValue) Encode(dst []byte, _ struct{}) ([]byte, error) { return dst, nil }

// Decode implements ValueCodec.
func (NoValue) Decode(data []byte) (struct{}, error) {
	if len(data) != 0 {
		return struct{}{}, fmt.Errorf("klsm: NoValue: %d unexpected payload bytes", len(data))
	}
	return struct{}{}, nil
}

// jsonValue adapts encoding/json into a ValueCodec.
type jsonValue[V any] struct{}

func (jsonValue[V]) Encode(dst []byte, v V) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

func (jsonValue[V]) Decode(data []byte) (V, error) {
	var v V
	err := json.Unmarshal(data, &v)
	return v, err
}

// JSONValue returns a ValueCodec that serializes V with encoding/json — the
// zero-effort codec for struct payloads. Applications with hot insert paths
// should prefer a hand-written codec; JSON encoding allocates per insert.
func JSONValue[V any]() ValueCodec[V] { return jsonValue[V]{} }
