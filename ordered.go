package klsm

// OrderedQueue is a Queue over an application key type K, translated into
// the engine's uint64 priority space by an order-preserving KeyCodec. The
// codec is applied at the API boundary only — the lock-free engine, its
// relaxation bound ρ = T·k, and local ordering all operate on the encoded
// keys, so every Queue guarantee carries over verbatim to the order the
// codec preserves. Create one with NewOrdered; access it through explicit
// OrderedHandles (the fast path) or the handle-free queue-level methods.
type OrderedQueue[K, V any] struct {
	q     *Queue[V]
	codec KeyCodec[K]
}

// OrderedHandle is one goroutine's access point to an OrderedQueue, the
// codec-translating counterpart of Handle. Like a Handle it must not be
// used by two goroutines concurrently.
type OrderedHandle[K, V any] struct {
	h     *Handle[V]
	codec KeyCodec[K]
}

// NewOrdered returns an empty queue keyed by K through codec, configured by
// opts exactly like New. Use the built-in codecs (Uint64Key, Int64Key,
// Float64Key, TimeKey, StringPrefixKey) or any custom KeyCodec
// implementation.
func NewOrdered[K, V any](codec KeyCodec[K], opts ...Option) *OrderedQueue[K, V] {
	if codec == nil {
		panic("klsm: nil KeyCodec")
	}
	return &OrderedQueue[K, V]{q: New[V](opts...), codec: codec}
}

// NewOrderedWithDrop is NewOrdered with a lazy-deletion callback (see
// NewWithDrop); the callback receives decoded keys.
func NewOrderedWithDrop[K, V any](codec KeyCodec[K], drop func(key K, value V) bool, opts ...Option) *OrderedQueue[K, V] {
	if codec == nil {
		panic("klsm: nil KeyCodec")
	}
	var wrapped DropFunc[V]
	if drop != nil {
		wrapped = func(key uint64, value V) bool { return drop(codec.Decode(key), value) }
	}
	return &OrderedQueue[K, V]{q: NewWithDrop(wrapped, opts...), codec: codec}
}

// OpenOrdered is Open for ordered key types: a persistent queue rooted at
// dir, keyed by K through keyCodec, with payloads serialized by valueCodec.
// Only the encoded uint64 keys are persisted, so the key codec must be
// stable across restarts (the same caveat as any persisted encoding).
func OpenOrdered[K, V any](dir string, keyCodec KeyCodec[K], valueCodec ValueCodec[V], opts ...Option) (*OrderedQueue[K, V], error) {
	if keyCodec == nil {
		panic("klsm: nil KeyCodec")
	}
	q, err := Open(dir, valueCodec, opts...)
	if err != nil {
		return nil, err
	}
	return &OrderedQueue[K, V]{q: q, codec: keyCodec}, nil
}

// Close shuts the queue down; see Queue.Close.
func (q *OrderedQueue[K, V]) Close() error { return q.q.Close() }

// Sync blocks until every prior operation is durable; see Queue.Sync.
func (q *OrderedQueue[K, V]) Sync() error { return q.q.Sync() }

// Checkpoint compacts the durability state; see Queue.Checkpoint.
func (q *OrderedQueue[K, V]) Checkpoint() error { return q.q.Checkpoint() }

// PersistStats returns the durability counters; see Queue.PersistStats.
func (q *OrderedQueue[K, V]) PersistStats() PersistStats { return q.q.PersistStats() }

// NewHandle registers a new handle; see Queue.NewHandle for the handle
// contract and the effect on ρ.
func (q *OrderedQueue[K, V]) NewHandle() *OrderedHandle[K, V] {
	return &OrderedHandle[K, V]{h: q.q.NewHandle(), codec: q.codec}
}

// Codec returns the queue's key codec.
func (q *OrderedQueue[K, V]) Codec() KeyCodec[K] { return q.codec }

// Size returns the approximate number of keys; see Queue.Size.
func (q *OrderedQueue[K, V]) Size() int { return q.q.Size() }

// K returns the current relaxation parameter; see Queue.K.
func (q *OrderedQueue[K, V]) K() int { return q.q.K() }

// SetRelaxation reconfigures k at run time; see Queue.SetRelaxation for
// propagation and validation semantics.
func (q *OrderedQueue[K, V]) SetRelaxation(k int) { q.q.SetRelaxation(k) }

// Rho returns the current worst-case relaxation bound T·k; see Queue.Rho.
func (q *OrderedQueue[K, V]) Rho() int { return q.q.Rho() }

// Quiesce drives deferred reclamation to completion; see Queue.Quiesce for
// the (non-)concurrency contract.
func (q *OrderedQueue[K, V]) Quiesce() { q.q.Quiesce() }

// Insert adds key with the given payload without an explicit handle; see
// Queue.Insert for the handle-free trade-offs.
func (q *OrderedQueue[K, V]) Insert(key K, value V) {
	q.q.Insert(q.codec.Encode(key), value)
}

// TryDeleteMin removes and returns a key among the ρ+1 smallest (in codec
// order) without an explicit handle; see Queue.TryDeleteMin.
func (q *OrderedQueue[K, V]) TryDeleteMin() (key K, value V, ok bool) {
	ek, value, ok := q.q.TryDeleteMin()
	if !ok {
		var zero K
		return zero, value, false
	}
	return q.codec.Decode(ek), value, true
}

// PeekMin returns a key TryDeleteMin could return without removing it; see
// Queue.PeekMin.
func (q *OrderedQueue[K, V]) PeekMin() (key K, value V, ok bool) {
	ek, value, ok := q.q.PeekMin()
	if !ok {
		var zero K
		return zero, value, false
	}
	return q.codec.Decode(ek), value, true
}

// InsertBatch inserts len(keys) keys in one structural operation through a
// registry handle; see Handle.InsertBatch for semantics. The borrowed
// handle's encode scratch is reused, so steady-state handle-free batch
// inserts allocate nothing for the translation.
func (q *OrderedQueue[K, V]) InsertBatch(keys []K, values []V) {
	h := q.q.borrowHandle()
	defer q.q.returnHandle(h)
	insertBatchEncoded(h, q.codec, keys, values)
}

// DrainMin removes up to n items through a registry handle, appending them
// to dst in pop order; see Handle.DrainMin.
func (q *OrderedQueue[K, V]) DrainMin(dst []KV[K, V], n int) []KV[K, V] {
	h := q.q.borrowHandle()
	defer q.q.returnHandle(h)
	return drainMinDecoded(h, q.codec, dst, n)
}

// DrainMinBounded removes up to n items whose keys are at or below bound (in
// codec order) through a registry handle, appending them to dst in pop
// order; see Handle.DrainMinBounded for the bounded-drain contract. This is
// the tick primitive for deadline queues: with TimeKey, bound is "now" and
// the result is every due item, early-exited with a strong "nothing further
// due" signal.
func (q *OrderedQueue[K, V]) DrainMinBounded(dst []KV[K, V], n int, bound K) []KV[K, V] {
	h := q.q.borrowHandle()
	defer q.q.returnHandle(h)
	return drainMinBoundedDecoded(h, q.codec, dst, n, q.codec.Encode(bound))
}

// SetMergeFilter installs the lazy-deletion filter after construction but
// before the first handle exists; the callback receives decoded keys. See
// Queue.SetMergeFilter for the contract and panics, and NewOrderedWithDrop
// for the construction-time equivalent.
func (q *OrderedQueue[K, V]) SetMergeFilter(drop func(key K, value V) bool) {
	var wrapped DropFunc[V]
	if drop != nil {
		codec := q.codec
		wrapped = func(key uint64, value V) bool { return drop(codec.Decode(key), value) }
	}
	q.q.SetMergeFilter(wrapped)
}

// Footprint returns the physical item-slot count of the queue's published
// blocks; see Queue.Footprint.
func (q *OrderedQueue[K, V]) Footprint() int { return q.q.Footprint() }

// Compact physically reclaims logically deleted and filter-dropped items
// through a registry handle; see Queue.Compact.
func (q *OrderedQueue[K, V]) Compact() { q.q.Compact() }

// insertBatchEncoded encodes keys into the handle's encode scratch (owned
// exclusively by the caller while it holds the handle) and runs the engine
// batch insert; the scratch stays on the handle for reuse.
func insertBatchEncoded[K, V any](h *Handle[V], codec KeyCodec[K], keys []K, values []V) {
	enc := h.enc[:0]
	for _, k := range keys {
		enc = append(enc, codec.Encode(k))
	}
	h.enc = enc
	h.InsertBatch(enc, values)
}

// drainMinDecoded pops up to n items through h, decoding keys into dst,
// with the same persistence routing as Handle.DrainMin (each pop logs its
// delete record on a persistent queue).
func drainMinDecoded[K, V any](h *Handle[V], codec KeyCodec[K], dst []KV[K, V], n int) []KV[K, V] {
	if p := h.persist(); p != nil {
		h.h.DrainMinSeq(n, func(k uint64, v V, seq uint64) {
			p.appendDelete(k, seq)
			dst = append(dst, KV[K, V]{Key: codec.Decode(k), Value: v})
		})
		return dst
	}
	h.h.DrainMin(n, func(k uint64, v V) {
		dst = append(dst, KV[K, V]{Key: codec.Decode(k), Value: v})
	})
	return dst
}

// drainMinBoundedDecoded is drainMinDecoded restricted to encoded keys at or
// below bound; see Handle.DrainMinBounded.
func drainMinBoundedDecoded[K, V any](h *Handle[V], codec KeyCodec[K], dst []KV[K, V], n int, bound uint64) []KV[K, V] {
	if p := h.persist(); p != nil {
		h.h.DrainMinBoundedSeq(bound, n, func(k uint64, v V, seq uint64) {
			p.appendDelete(k, seq)
			dst = append(dst, KV[K, V]{Key: codec.Decode(k), Value: v})
		})
		return dst
	}
	h.h.DrainMinBounded(bound, n, func(k uint64, v V) {
		dst = append(dst, KV[K, V]{Key: codec.Decode(k), Value: v})
	})
	return dst
}

// Close retires the handle; see Handle.Close.
func (h *OrderedHandle[K, V]) Close() { h.h.Close() }

// Meld absorbs all items of other into this handle's queue; see
// Handle.Meld. The queues must share one codec (key spaces are translated
// identically).
func (h *OrderedHandle[K, V]) Meld(other *OrderedQueue[K, V]) {
	if other == nil {
		return
	}
	h.h.Meld(other.q)
}

// Insert adds key with the given payload; see Handle.Insert.
func (h *OrderedHandle[K, V]) Insert(key K, value V) {
	h.h.Insert(h.codec.Encode(key), value)
}

// TryDeleteMin removes and returns a key among the ρ+1 smallest in codec
// order, preferring this handle's own keys; see Handle.TryDeleteMin.
func (h *OrderedHandle[K, V]) TryDeleteMin() (key K, value V, ok bool) {
	ek, value, ok := h.h.TryDeleteMin()
	if !ok {
		var zero K
		return zero, value, false
	}
	return h.codec.Decode(ek), value, true
}

// PeekMin returns a key TryDeleteMin could return without removing it; see
// Handle.PeekMin.
func (h *OrderedHandle[K, V]) PeekMin() (key K, value V, ok bool) {
	ek, value, ok := h.h.PeekMin()
	if !ok {
		var zero K
		return zero, value, false
	}
	return h.codec.Decode(ek), value, true
}

// InsertBatch inserts len(keys) keys in one structural operation; see
// Handle.InsertBatch for the batching semantics and the values contract.
// The encode scratch is retained on the underlying handle, so steady-state
// batch inserts do not allocate for the translation.
func (h *OrderedHandle[K, V]) InsertBatch(keys []K, values []V) {
	insertBatchEncoded(h.h, h.codec, keys, values)
}

// DrainMin removes up to n items, appending them to dst in pop order; see
// Handle.DrainMin for the per-pop contract and early-exit semantics.
func (h *OrderedHandle[K, V]) DrainMin(dst []KV[K, V], n int) []KV[K, V] {
	return drainMinDecoded(h.h, h.codec, dst, n)
}

// DrainMinBounded removes up to n items whose keys are at or below bound in
// codec order, appending them to dst in pop order; see Handle.DrainMinBounded.
func (h *OrderedHandle[K, V]) DrainMinBounded(dst []KV[K, V], n int, bound K) []KV[K, V] {
	return drainMinBoundedDecoded(h.h, h.codec, dst, n, h.codec.Encode(bound))
}

// TryDeleteMinBounded removes and returns a relaxed-minimal key only when it
// is at or below bound in codec order; see Handle.TryDeleteMinBounded.
func (h *OrderedHandle[K, V]) TryDeleteMinBounded(bound K) (key K, value V, ok bool) {
	ek, value, ok := h.h.TryDeleteMinBounded(h.codec.Encode(bound))
	if !ok {
		var zero K
		return zero, value, false
	}
	return h.codec.Decode(ek), value, true
}

// Compact physically reclaims logically deleted and filter-dropped items
// from this handle's structures; see Handle.Compact.
func (h *OrderedHandle[K, V]) Compact() { h.h.Compact() }
