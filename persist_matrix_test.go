package klsm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"klsm/internal/ostat"
	"klsm/internal/segment"
	"klsm/internal/walfault"
	"klsm/internal/xrand"
)

// matrixConfigs enumerates the engine-option rows of the crash-recovery
// matrix: every §4.4 memory-management feature must be invisible to
// durability, because the WAL records logical operations (key, seq), never
// engine state. Each row runs every crash mode.
func matrixConfigs() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"pooling=off", []Option{WithPooling(false)}},
		{"reclaim=off", []Option{WithItemReclamation(false)}},
		{"mincache=off", []Option{WithMinCaching(false)}},
		{"delbuf=off", []Option{WithDeletionBuffer(0)}},
	}
}

// snapshotKeys returns the exact live key multiset of a quiescent queue via
// the checkpoint scan, as a count map (duplicate keys are legal).
func snapshotKeys[V any](q *Queue[V]) map[uint64]int {
	got := map[uint64]int{}
	q.q.SnapshotLive(func(k uint64, _ uint64, _ V) { got[k]++ })
	return got
}

// kBoundPhase runs the zero-slack relaxation check on a recovered queue: a
// single-goroutine random interleaving of inserts and deletes across several
// handles, with the recovered live multiset pre-seeded into an
// order-statistic treap so every pop is ranked against the exact live set —
// recovered items included. Recovery rebuilds the queue through the same
// block machinery as normal inserts, so ρ = T·k must hold with zero slack.
func kBoundPhase[V any](t *testing.T, q *Queue[V], zero V, seed uint64) {
	t.Helper()
	const handles = 3
	hs := make([]*Handle[V], handles)
	for i := range hs {
		hs[i] = q.NewHandle()
	}
	tree := ostat.New(seed)
	for k, n := range snapshotKeys(q) {
		for i := 0; i < n; i++ {
			tree.Insert(k)
		}
	}
	rng := xrand.NewSeeded(seed*2654435761 + 1)
	maxRank := 0
	for i := 0; i < 4000; i++ {
		h := hs[rng.Intn(handles)]
		if rng.Intn(10) < 4 || tree.Len() == 0 {
			key := rng.Uint64n(1 << 40)
			tree.Insert(key)
			h.Insert(key, zero)
			continue
		}
		key, _, ok := h.TryDeleteMin()
		if !ok {
			continue
		}
		rho := q.Rho()
		rank := tree.Rank(key)
		if !tree.Delete(key) {
			t.Fatalf("k-bound phase op %d: returned key %d is not live (conservation violation)", i, key)
		}
		if rank > rho {
			t.Fatalf("k-bound phase op %d: rank %d exceeds ρ = T·k = %d (relaxation violated)", i, rank, rho)
		}
		if rank > maxRank {
			maxRank = rank
		}
	}
	rho := q.Rho()
	for _, h := range hs {
		h.Close()
	}
	t.Logf("k-bound phase: max observed rank %d (bound ρ = %d)", maxRank, rho)
}

// TestCrashRecoveryMatrix crosses the engine-option rows with four
// crash/recovery modes:
//
//   - clean: Close, reopen, exact multiset must survive;
//   - kill: fs.Crash mid-run after an explicit Sync — acked operations
//     must survive exactly once, unacked inserts are at-most-once;
//   - torn: a WAL whose final record is physically cut mid-frame — Open
//     must truncate the tail and recover everything before it;
//   - corruptckpt: a bit flipped in a checkpoint segment — Open must
//     refuse with ErrCorruptCheckpoint, never panic or silently drop.
//
// After every successful recovery the queue passes the zero-slack k-bound
// check seeded with its recovered content.
func TestCrashRecoveryMatrix(t *testing.T) {
	for ci, cfg := range matrixConfigs() {
		cfg := cfg
		seed := uint64(ci)*7919 + 11
		t.Run(cfg.name+"/clean", func(t *testing.T) {
			fs := walfault.NewMemFS(walfault.Faults{Seed: seed})
			q := mustOpenFS(t, fs, cfg.opts)
			h := q.NewHandle()
			want := map[uint64]int{}
			rng := xrand.NewSeeded(seed)
			for i := 0; i < 3000; i++ {
				if rng.Intn(10) < 7 {
					k := rng.Uint64n(1 << 32)
					h.Insert(k, "v")
					want[k]++
				} else if k, _, ok := h.TryDeleteMin(); ok {
					want[k]--
					if want[k] == 0 {
						delete(want, k)
					}
				}
			}
			h.Close()
			if err := q.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			q2 := mustOpenFS(t, fs, cfg.opts)
			assertMultiset(t, snapshotKeys(q2), want)
			kBoundPhase(t, q2, "v", seed)
		})

		t.Run(cfg.name+"/kill", func(t *testing.T) {
			fs := walfault.NewMemFS(walfault.Faults{Seed: seed})
			q := mustOpenFS(t, fs, cfg.opts)
			h := q.NewHandle()
			rng := xrand.NewSeeded(seed + 1)
			ackedIns := map[uint64]bool{}
			pendIns := map[uint64]bool{}
			delAny := map[uint64]bool{}
			ackedDel := map[uint64]bool{}
			pendDel := map[uint64]bool{}
			nextKey := uint64(0)
			for i := 0; i < 2500; i++ {
				if rng.Intn(10) < 7 {
					k := nextKey
					nextKey++
					h.Insert(k, "v")
					pendIns[k] = true
				} else if k, _, ok := h.TryDeleteMin(); ok {
					pendDel[k] = true
					delAny[k] = true
				}
				if i == 2000 {
					if err := q.Sync(); err != nil {
						t.Fatalf("Sync: %v", err)
					}
					for k := range pendIns {
						ackedIns[k] = true
						delete(pendIns, k)
					}
					for k := range pendDel {
						ackedDel[k] = true
						delete(pendDel, k)
					}
				}
			}
			// Kill: writer goroutine may be mid-batch; the kept prefix is
			// whatever the scheduler got to disk.
			fs.Crash()
			q.p.log.Abandon()
			q2, err := openFS(fs, "mem", StringValue{}, cfg.opts...)
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			got := snapshotKeys(q2)
			for k, n := range got {
				if n > 1 {
					t.Fatalf("key %d recovered %d times (duplicate)", k, n)
				}
				if k >= nextKey {
					t.Fatalf("fabricated key %d", k)
				}
				if ackedDel[k] {
					t.Fatalf("acked-deleted key %d resurrected", k)
				}
			}
			for k := range ackedIns {
				if !delAny[k] && got[k] == 0 {
					t.Fatalf("acked insert %d lost", k)
				}
			}
			kBoundPhase(t, q2, "v", seed+2)
		})

		t.Run(cfg.name+"/torn", func(t *testing.T) {
			fs := walfault.NewMemFS(walfault.Faults{Seed: seed})
			q := mustOpenFS(t, fs, cfg.opts)
			h := q.NewHandle()
			want := map[uint64]int{}
			for k := uint64(0); k < 500; k++ {
				h.Insert(k, "v")
				want[k]++
			}
			h.Insert(1<<40, "torn-victim")
			h.Close()
			if err := q.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Cut the final record mid-frame: physically what a crash during
			// the last append leaves behind. Recovery must drop exactly the
			// cut record and keep everything before it.
			m, err := segment.ReadManifest(fs)
			if err != nil {
				t.Fatalf("manifest: %v", err)
			}
			data, err := fs.ReadFile(m.WAL)
			if err != nil {
				t.Fatalf("read WAL: %v", err)
			}
			if err := fs.Truncate(m.WAL, int64(len(data))-3); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			q2 := mustOpenFS(t, fs, cfg.opts)
			if tb := q2.PersistStats().Recovery.TornBytes; tb <= 0 {
				t.Fatalf("expected torn tail, TornBytes = %d", tb)
			}
			assertMultiset(t, snapshotKeys(q2), want)
			kBoundPhase(t, q2, "v", seed+3)
		})

		t.Run(cfg.name+"/corruptckpt", func(t *testing.T) {
			fs := walfault.NewMemFS(walfault.Faults{Seed: seed})
			q := mustOpenFS(t, fs, cfg.opts)
			h := q.NewHandle()
			for k := uint64(0); k < 800; k++ {
				h.Insert(k, "v")
			}
			h.Close()
			if err := q.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if err := q.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			m, err := segment.ReadManifest(fs)
			if err != nil {
				t.Fatalf("manifest: %v", err)
			}
			if len(m.Segments) == 0 {
				t.Fatal("checkpoint produced no segments")
			}
			if err := fs.FlipBit(m.Segments[0].Name, 200); err != nil {
				t.Fatalf("FlipBit: %v", err)
			}
			_, err = openFS(fs, "mem", StringValue{}, cfg.opts...)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("Open on corrupt segment: got %v, want ErrCorruptCheckpoint", err)
			}
		})
	}
}

// mustOpenFS opens a persistent StringValue queue over fs with the row's
// engine options, failing the test on error.
func mustOpenFS(t *testing.T, fs walfault.FS, opts []Option) *Queue[string] {
	t.Helper()
	q, err := openFS(fs, "mem", StringValue{}, opts...)
	if err != nil {
		t.Fatalf("openFS: %v", err)
	}
	return q
}

// assertMultiset fails unless got and want are the same key multiset.
func assertMultiset(t *testing.T, got, want map[uint64]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("key %d: recovered %d copies, want %d", k, got[k], n)
		}
	}
	for k, n := range got {
		if want[k] == 0 && n != 0 {
			t.Fatalf("key %d: recovered %d copies, want none", k, n)
		}
	}
}

// TestRecoveryConcurrentReuse reopens a crashed queue and immediately hits
// it from several goroutines — recovery must hand back a queue in a fully
// consistent engine state, not one that only survives single-threaded use.
func TestRecoveryConcurrentReuse(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 99})
	q := mustOpenFS(t, fs, nil)
	h := q.NewHandle()
	for k := uint64(0); k < 5000; k++ {
		h.Insert(k, "x")
	}
	if err := q.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	fs.Crash()
	q.p.log.Abandon()

	q2 := mustOpenFS(t, fs, nil)
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wh := q2.NewHandle()
			defer wh.Close()
			rng := xrand.NewSeeded(uint64(w) + 1)
			for i := 0; i < 2000; i++ {
				runtime.Gosched()
				if rng.Intn(10) < 3 {
					wh.Insert(10_000+uint64(w)*100_000+uint64(i), "y")
				} else if k, _, ok := wh.TryDeleteMin(); ok {
					if _, dup := popped.LoadOrStore(k, w); dup {
						panic(fmt.Sprintf("key %d popped twice", k))
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent reuse of recovered queue hung")
	}
	if err := q2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
