package klsm

// Handle-free queue-level operations.
//
// v1 required every caller to manage an explicit per-goroutine Handle. That
// remains the fast path — a Handle pins its DistLSM, its snapshot cursor and
// its pools to one goroutine with zero synchronization — but it is the wrong
// default for callers whose goroutines are short-lived or framework-managed
// (worker pools, per-request goroutines), where handle churn either leaks
// registered handles (growing ρ = T·k without bound) or forces awkward
// plumbing.
//
// The queue-level operations below borrow a Handle from an internal
// registry for the duration of one operation and return it afterwards.
// Exclusive ownership while borrowed preserves the one-goroutine-per-handle
// contract; returned handles are recycled instead of closed, so the handle
// count T — and with it ρ — is bounded by the peak number of concurrent
// handle-free operations, not by the number of goroutines that ever touched
// the queue.

// borrowHandle takes a free handle from the registry, registering a new one
// only when the registry is empty (first use, or all free handles are
// borrowed by concurrent operations).
func (q *Queue[V]) borrowHandle() *Handle[V] {
	q.freeMu.Lock()
	if n := len(q.freeHandles); n > 0 {
		h := q.freeHandles[n-1]
		q.freeHandles[n-1] = nil
		q.freeHandles = q.freeHandles[:n-1]
		q.freeMu.Unlock()
		return h
	}
	q.freeMu.Unlock()
	return q.NewHandle()
}

// returnHandle puts a borrowed handle back. The mutex hand-off orders the
// borrower's operations before the next borrower's, so consecutive users of
// one handle never overlap — the single-goroutine contract holds.
func (q *Queue[V]) returnHandle(h *Handle[V]) {
	q.freeMu.Lock()
	q.freeHandles = append(q.freeHandles, h)
	q.freeMu.Unlock()
}

// Insert adds key with the given payload without an explicit Handle, using
// a registry handle for the single operation. Semantics match
// Handle.Insert. Prefer an explicit Handle on hot paths: the borrow costs
// one uncontended mutex acquisition per operation and forfeits handle
// affinity (local ordering applies per registry handle, not per goroutine).
//
// All handle-free operations return their borrowed handle via defer: a
// panic escaping the operation (a batch length mismatch, a faulty codec in
// the ordered wrappers) must not strand a registered handle outside the
// registry — that would grow ρ = T·k on every recovered panic, the exact
// leak the registry exists to prevent.
func (q *Queue[V]) Insert(key uint64, value V) {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	h.Insert(key, value)
}

// TryDeleteMin removes and returns a key among the ρ+1 smallest without an
// explicit Handle, with the same relaxed contract as Handle.TryDeleteMin.
// See Insert for the cost trade-off of the handle-free path.
func (q *Queue[V]) TryDeleteMin() (key uint64, value V, ok bool) {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	return h.TryDeleteMin()
}

// PeekMin returns a key TryDeleteMin could return without removing it,
// using a registry handle. The result is relaxed exactly like
// Handle.PeekMin's and may be stale by the time the caller acts on it.
func (q *Queue[V]) PeekMin() (key uint64, value V, ok bool) {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	return h.PeekMin()
}

// InsertBatch inserts len(keys) keys in one structural operation through a
// registry handle; see Handle.InsertBatch for the batching semantics and
// the values contract.
func (q *Queue[V]) InsertBatch(keys []uint64, values []V) {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	h.InsertBatch(keys, values)
}

// DrainMin removes up to n items through a registry handle, appending them
// to dst in pop order and returning the extended slice; see Handle.DrainMin
// for the per-pop contract and early-exit semantics.
func (q *Queue[V]) DrainMin(dst []KV[uint64, V], n int) []KV[uint64, V] {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	return h.DrainMin(dst, n)
}

// DrainMinBounded removes up to n items with keys at or below bound through
// a registry handle, appending them to dst in pop order and returning the
// extended slice; see Handle.DrainMinBounded for the bounded-drain contract
// and the strength of its early-exit signal.
func (q *Queue[V]) DrainMinBounded(dst []KV[uint64, V], n int, bound uint64) []KV[uint64, V] {
	h := q.borrowHandle()
	defer q.returnHandle(h)
	return h.DrainMinBounded(dst, n, bound)
}
