package klsm

import (
	"fmt"
	"sync"
	"testing"

	"klsm/internal/ostat"
	"klsm/internal/xrand"
)

// qualityConfigs enumerates the option combinations the k-bound suite runs
// across: the §4.4 reclamation, the min-caching fast path, the deletion
// buffer, and the sticky skip-shared hint must all be invisible to the
// relaxation guarantee. The default rows run buffer and stickiness on (their
// defaults), so the ablation rows complete the buffer on/off × sticky on/off
// square; buffered-but-untaken candidates stay live and must count toward
// the bound, which is exactly what the treap's live multiset asserts.
func qualityConfigs() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"reclaim=on/mincache=on", nil},
		{"reclaim=off/mincache=on", []Option{WithItemReclamation(false)}},
		{"reclaim=on/mincache=off", []Option{WithMinCaching(false)}},
		{"reclaim=off/mincache=off", []Option{WithItemReclamation(false), WithMinCaching(false)}},
		{"delbuf=off/sticky=on", []Option{WithDeletionBuffer(0)}},
		{"delbuf=on/sticky=off", []Option{WithStickyHint(0)}},
		{"delbuf=off/sticky=off", []Option{WithDeletionBuffer(0), WithStickyHint(0)}},
	}
}

// TestKBoundInterleavedHandles is the enforcement arm of the quality suite:
// P handles driven from one goroutine in a random interleaving, with the
// exact live multiset tracked in an order-statistic treap. Every returned
// key must be among the ρ+1 = T·k+1 smallest live keys — the paper's
// structural bound, asserted with zero slack (no measurement races exist
// in a single-goroutine interleaving). A violation of the relaxation
// contract anywhere in the stack fails this test deterministically.
func TestKBoundInterleavedHandles(t *testing.T) {
	const handles = 4
	for _, k := range []int{0, 8, 256} {
		for _, cfg := range qualityConfigs() {
			t.Run(fmt.Sprintf("k=%d/%s", k, cfg.name), func(t *testing.T) {
				q := New[int](append([]Option{WithRelaxation(k)}, cfg.opts...)...)
				hs := make([]*Handle[int], handles)
				for i := range hs {
					hs[i] = q.NewHandle()
				}
				rho := handles * k
				tree := ostat.New(uint64(k)*31 + 7)
				rng := xrand.NewSeeded(uint64(k)*131 + 5)
				maxRank := 0
				const ops = 20_000
				for i := 0; i < ops; i++ {
					h := hs[rng.Intn(handles)]
					if rng.Intn(10) < 6 || tree.Len() == 0 {
						key := rng.Uint64n(1 << 40)
						tree.Insert(key)
						h.Insert(key, i)
						continue
					}
					key, _, ok := h.TryDeleteMin()
					if !ok {
						continue
					}
					rank := tree.Rank(key)
					if !tree.Delete(key) {
						t.Fatalf("op %d: returned key %d is not live (conservation violation)", i, key)
					}
					if rank > rho {
						t.Fatalf("op %d: rank %d exceeds ρ = T·k = %d (relaxation violated)", i, rank, rho)
					}
					if rank > maxRank {
						maxRank = rank
					}
				}
				t.Logf("max observed rank %d (bound ρ = %d)", maxRank, rho)
			})
		}
	}
}

// TestKBoundBatchOps extends the zero-slack enforcement arm to the v2
// surface: a single-goroutine random interleaving of InsertBatch (sizes up
// to 512), DrainMin, handle-free queue-level operations, and the v1
// single-item ops, with the exact live multiset in an order-statistic
// treap. Every key any drain or delete returns must be among the ρ+1
// smallest live keys at its pop, where ρ = T·k uses the live handle count
// (the registry handle backing the handle-free ops counts toward T like
// any other). Zero measurement slack: a relaxation violation anywhere in
// the batch-block publication or the drain loop fails deterministically.
func TestKBoundBatchOps(t *testing.T) {
	const handles = 3
	for _, k := range []int{0, 8, 256} {
		for _, cfg := range qualityConfigs() {
			t.Run(fmt.Sprintf("k=%d/%s", k, cfg.name), func(t *testing.T) {
				q := New[int](append([]Option{WithRelaxation(k)}, cfg.opts...)...)
				hs := make([]*Handle[int], handles)
				for i := range hs {
					hs[i] = q.NewHandle()
				}
				tree := ostat.New(uint64(k)*17 + 3)
				rng := xrand.NewSeeded(uint64(k)*257 + 13)
				maxRank := 0
				// checkPop asserts one returned key against the live treap.
				checkPop := func(op string, key uint64) {
					rho := q.Rho()
					rank := tree.Rank(key)
					if !tree.Delete(key) {
						t.Fatalf("%s: returned key %d is not live (conservation violation)", op, key)
					}
					if rank > rho {
						t.Fatalf("%s: rank %d exceeds ρ = T·k = %d (relaxation violated)", op, rank, rho)
					}
					if rank > maxRank {
						maxRank = rank
					}
				}
				var dst []KV[uint64, int]
				const rounds = 3000
				for i := 0; i < rounds; i++ {
					h := hs[rng.Intn(handles)]
					switch rng.Intn(10) {
					case 0, 1, 2: // batch insert, random size
						n := 1 + int(rng.Uint64n(64))
						if rng.Intn(20) == 0 {
							n = 512
						}
						keys := make([]uint64, n)
						for j := range keys {
							keys[j] = rng.Uint64n(1 << 40)
							tree.Insert(keys[j])
						}
						h.InsertBatch(keys, nil)
					case 3, 4: // single insert (v1 path in the mix)
						key := rng.Uint64n(1 << 40)
						tree.Insert(key)
						h.Insert(key, i)
					case 5: // handle-free single insert
						key := rng.Uint64n(1 << 40)
						tree.Insert(key)
						q.Insert(key, i)
					case 6, 7: // batch drain; each pop checked in pop order
						dst = h.DrainMin(dst[:0], 1+int(rng.Uint64n(48)))
						for _, kv := range dst {
							checkPop("DrainMin", kv.Key)
						}
					case 8: // handle-free drain
						dst = q.DrainMin(dst[:0], 1+int(rng.Uint64n(16)))
						for _, kv := range dst {
							checkPop("Queue.DrainMin", kv.Key)
						}
					default: // handle-free single delete
						key, _, ok := q.TryDeleteMin()
						if ok {
							checkPop("Queue.TryDeleteMin", key)
						}
					}
				}
				t.Logf("max observed rank %d (final bound ρ = %d)", maxRank, q.Rho())
			})
		}
	}
}

// TestKBoundConcurrentBatch is the race-mode arm for the v2 surface:
// workers drive their own handles with batch and single operations while
// some traffic goes through the handle-free registry. Inserts update tree
// and queue in step; rank-checked deletes hold the lock across the take so
// the rank is measured at the linearization point, where the tree lags by
// at most the number of concurrent takers — the measured bound is
// ρ + (P-1) with ρ = T·k read live (registry handles included). Run under
// -race in CI alongside TestKBoundConcurrent.
func TestKBoundConcurrentBatch(t *testing.T) {
	const (
		workers = 4
		k       = 64
		rounds  = 2500
	)
	for _, cfg := range qualityConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			q := New[int](append([]Option{WithRelaxation(k)}, cfg.opts...)...)
			var (
				mu      sync.Mutex
				tree    = ostat.New(431)
				maxRank int
				checked int64
				bad     error
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := q.NewHandle()
					rng := xrand.NewSeeded(uint64(w)*104729 + 17)
					var dst []KV[uint64, int]
					for i := 0; i < rounds; i++ {
						switch r := rng.Intn(100); {
						case r < 30: // batch insert, tree and queue in step
							n := 1 + int(rng.Uint64n(32))
							keys := make([]uint64, n)
							for j := range keys {
								keys[j] = rng.Uint64n(1 << 40)
							}
							mu.Lock()
							for _, key := range keys {
								tree.Insert(key)
							}
							h.InsertBatch(keys, nil)
							mu.Unlock()
						case r < 45: // single insert
							key := rng.Uint64n(1 << 40)
							mu.Lock()
							tree.Insert(key)
							h.Insert(key, i)
							mu.Unlock()
						case r < 55: // handle-free insert
							key := rng.Uint64n(1 << 40)
							mu.Lock()
							tree.Insert(key)
							q.Insert(key, i)
							mu.Unlock()
						case r < 65: // rank-checked delete at the linearization point
							mu.Lock()
							key, _, ok := h.TryDeleteMin()
							if ok {
								rank := tree.Rank(key)
								present := tree.Delete(key)
								bound := q.Rho() + workers - 1
								checked++
								if rank > maxRank {
									maxRank = rank
								}
								if !present && bad == nil {
									bad = fmt.Errorf("worker %d: returned key %d not live", w, key)
								}
								if rank > bound && bad == nil {
									bad = fmt.Errorf("worker %d: rank %d exceeds ρ+P-1 = %d", w, rank, bound)
								}
							}
							mu.Unlock()
						default: // free-running batch drain: conservation only
							dst = h.DrainMin(dst[:0], 1+int(rng.Uint64n(24)))
							mu.Lock()
							for _, kv := range dst {
								if !tree.Delete(kv.Key) && bad == nil {
									bad = fmt.Errorf("worker %d: drained key %d not live", w, kv.Key)
								}
							}
							mu.Unlock()
						}
					}
				}(w)
			}
			wg.Wait()
			if bad != nil {
				t.Fatal(bad)
			}
			if checked == 0 {
				t.Fatal("no rank-checked deletes ran")
			}
			t.Logf("max observed rank %d over %d checked deletes", maxRank, checked)
		})
	}
}

// TestKBoundConcurrent races P goroutines over their own handles while an
// order-statistic treap tracks the live multiset under a mutex. Inserts
// update tree and queue atomically; most deletes run fully concurrent (the
// take races freely, only the tree removal is locked) and check just
// conservation — one in eight holds the lock across the take so its rank
// is measured at the linearization point. At that moment the tree can lag
// by at most P-1 concurrently taken-but-not-yet-removed keys, so the
// measured rank is bounded by ρ + (P-1) = T·k + P - 1 < (k+1)·P — the
// issue-level bound. Run under -race in CI; this is where the reclamation
// machinery, the min caches, and the relaxation bound are exercised
// against real interleavings.
func TestKBoundConcurrent(t *testing.T) {
	const (
		workers = 4
		k       = 64
		ops     = 15_000
	)
	for _, cfg := range qualityConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			q := New[int](append([]Option{WithRelaxation(k)}, cfg.opts...)...)
			bound := (k+1)*workers - 1
			var (
				mu      sync.Mutex
				tree    = ostat.New(99)
				maxRank int
				checked int64
				bad     error
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := q.NewHandle()
					rng := xrand.NewSeeded(uint64(w)*7919 + 3)
					for i := 0; i < ops; i++ {
						r := rng.Intn(80)
						switch {
						case r < 48: // insert, tree and queue in step
							key := rng.Uint64n(1 << 40)
							mu.Lock()
							tree.Insert(key)
							h.Insert(key, i)
							mu.Unlock()
						case r < 52: // rank-checked delete at the linearization point
							mu.Lock()
							key, _, ok := h.TryDeleteMin()
							if ok {
								rank := tree.Rank(key)
								present := tree.Delete(key)
								checked++
								if rank > maxRank {
									maxRank = rank
								}
								if !present && bad == nil {
									bad = fmt.Errorf("worker %d: returned key %d not live", w, key)
								}
								if rank > bound && bad == nil {
									bad = fmt.Errorf("worker %d: rank %d exceeds (k+1)·P-1 = %d", w, rank, bound)
								}
							}
							mu.Unlock()
						default: // free-running delete: conservation only
							key, _, ok := h.TryDeleteMin()
							if !ok {
								continue
							}
							mu.Lock()
							if !tree.Delete(key) && bad == nil {
								bad = fmt.Errorf("worker %d: returned key %d not live", w, key)
							}
							mu.Unlock()
						}
					}
				}(w)
			}
			wg.Wait()
			if bad != nil {
				t.Fatal(bad)
			}
			if checked == 0 {
				t.Fatal("no rank-checked deletes ran")
			}
			t.Logf("max observed rank %d over %d checked deletes (bound %d)", maxRank, checked, bound)
		})
	}
}
