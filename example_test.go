package klsm_test

import (
	"fmt"

	"klsm"
)

// A single quiescent handle behaves like an exact priority queue (local
// ordering), which keeps examples deterministic.
func ExampleNew() {
	q := klsm.New[string]()
	h := q.NewHandle() // one handle per goroutine — never share

	h.Insert(42, "answer")
	h.Insert(7, "lucky")
	h.Insert(13, "unlucky")

	for {
		key, val, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		fmt.Println(key, val)
	}
	// Output:
	// 7 lucky
	// 13 unlucky
	// 42 answer
}

func ExampleWithRelaxation() {
	// k = 0 is the strictest (exact) setting; larger k relaxes delete-min
	// to any of the T·k+1 smallest keys in exchange for scalability.
	q := klsm.New[int](klsm.WithRelaxation(0))
	h := q.NewHandle()
	for i := 5; i > 0; i-- {
		h.Insert(uint64(i), i*i)
	}
	key, val, _ := h.TryDeleteMin()
	fmt.Println(key, val, q.Rho())
	// Output:
	// 1 1 0
}

func ExampleWithPooling() {
	// Pooling (default on) recycles internal blocks and item wrappers
	// through per-handle free lists; disabling it only changes the
	// allocation profile, never behavior.
	pooled := klsm.New[string]()
	plain := klsm.New[string](klsm.WithPooling(false))

	for _, q := range []*klsm.Queue[string]{pooled, plain} {
		h := q.NewHandle()
		h.Insert(1, "same")
		key, val, ok := h.TryDeleteMin()
		fmt.Println(key, val, ok)
	}
	// Output:
	// 1 same true
	// 1 same true
}

func ExampleWithItemReclamation() {
	// Item reclamation (default on) reference-counts every block slot so
	// deleted items return to a free list the moment their last
	// referencing block dies — deterministic reuse instead of the GC
	// backstop. Disabling it is the ablation baseline; semantics are
	// identical either way.
	q := klsm.New[int](klsm.WithItemReclamation(false))
	h := q.NewHandle()
	h.Insert(3, 30)
	h.Insert(1, 10)
	key, val, ok := h.TryDeleteMin()
	fmt.Println(key, val, ok)
	// Output:
	// 1 10 true
}

func ExampleWithMinCaching() {
	// Min caching (default on) is the delete-min fast path: each handle
	// caches block minima and its shared candidate window across calls.
	// Disabling it exists for the ablation benchmarks.
	q := klsm.New[string](klsm.WithMinCaching(false))
	h := q.NewHandle()
	h.Insert(2, "b")
	h.Insert(1, "a")
	key, val, ok := h.TryDeleteMin()
	fmt.Println(key, val, ok)
	// Output:
	// 1 a true
}

func ExampleQueue_SetRelaxation() {
	// k is run-time configurable (paper §1): loosen it under load, tighten
	// it when ordering matters more than throughput.
	q := klsm.New[int](klsm.WithRelaxation(1024))
	h := q.NewHandle()
	h.Insert(9, 9)
	q.SetRelaxation(4)
	fmt.Println(q.K(), q.Rho())
	// Output:
	// 4 4
}

func ExampleNewOrdered() {
	// v2 ordered keys: any ordered type with an order-preserving codec.
	// Float64Key gives IEEE totalOrder (NaNs at the extremes, -0 < +0);
	// TimeKey, Int64Key, StringPrefixKey and custom codecs plug in the
	// same way. The engine stays uint64 underneath — guarantees carry over.
	q := klsm.NewOrdered[float64, string](klsm.Float64Key(), klsm.WithRelaxation(0))
	h := q.NewHandle()

	h.Insert(2.5, "late")
	h.Insert(-1.5, "early")
	h.Insert(0.25, "middle")

	for {
		key, val, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		fmt.Println(key, val)
	}
	// Output:
	// -1.5 early
	// 0.25 middle
	// 2.5 late
}

func ExampleQueue_Insert() {
	// Handle-free operations borrow a registered handle from an internal
	// registry per call: no setup, and ρ = T·k stays bounded by the peak
	// concurrency of handle-free calls, not by goroutine churn. Explicit
	// handles remain the fast path.
	q := klsm.New[string]()
	q.Insert(2, "two")
	q.Insert(1, "one")
	key, val, ok := q.TryDeleteMin()
	fmt.Println(key, val, ok)
	// Output:
	// 1 one true
}

func ExampleHandle_InsertBatch() {
	// A batch insert sorts once and publishes one block at level ⌈log₂n⌉ —
	// one merge cascade for the whole batch instead of n single-insert
	// cascades. values may be nil for zero-value payloads.
	q := klsm.New[string]()
	h := q.NewHandle()

	h.InsertBatch(
		[]uint64{30, 10, 20},
		[]string{"thirty", "ten", "twenty"},
	)
	fmt.Println(q.Size())
	key, val, _ := h.TryDeleteMin()
	fmt.Println(key, val)
	// Output:
	// 3
	// 10 ten
}

func ExampleHandle_DrainMin() {
	// DrainMin pops up to n items per call (append semantics, so the
	// destination slice can be recycled across calls); a short result
	// signals relaxed-emptiness like a failed TryDeleteMin.
	q := klsm.New[string]()
	h := q.NewHandle()
	h.InsertBatch([]uint64{4, 2, 1, 3}, nil)

	batch := h.DrainMin(nil, 3)
	for _, kv := range batch {
		fmt.Println(kv.Key)
	}
	fmt.Println("left:", q.Size())
	// Output:
	// 1
	// 2
	// 3
	// left: 1
}

func ExampleNewWithDrop() {
	// The §4.5 lazy-deletion callback discards stale entries during
	// maintenance — SSSP uses it to skip superseded distance labels.
	stale := map[uint64]bool{2: true}
	q := klsm.NewWithDrop[string](func(key uint64, _ string) bool {
		return stale[key]
	})
	h := q.NewHandle()
	h.Insert(2, "stale")
	h.Insert(5, "fresh")
	for {
		key, val, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		fmt.Println(key, val)
	}
	// Output:
	// 5 fresh
}
