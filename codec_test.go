package klsm

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"klsm/internal/xrand"
)

// TestUint64CodecIdentity pins the identity codec.
func TestUint64CodecIdentity(t *testing.T) {
	c := Uint64Key()
	rng := xrand.NewSeeded(1)
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if c.Encode(k) != k || c.Decode(k) != k {
			t.Fatalf("identity violated for %d", k)
		}
	}
}

// TestInt64CodecOrder is the order-preservation property test for Int64Key:
// random pairs (plus the boundary values) must encode in int64 order, and
// Decode must invert Encode exactly.
func TestInt64CodecOrder(t *testing.T) {
	c := Int64Key()
	rng := xrand.NewSeeded(2)
	keys := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	for i := 0; i < 2000; i++ {
		keys = append(keys, int64(rng.Uint64()))
	}
	for _, a := range keys {
		if c.Decode(c.Encode(a)) != a {
			t.Fatalf("roundtrip failed for %d", a)
		}
	}
	for i := 0; i < 20000; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if (a < b) != (c.Encode(a) < c.Encode(b)) {
			t.Fatalf("order violated: %d vs %d → %d vs %d", a, b, c.Encode(a), c.Encode(b))
		}
	}
}

// float64TotalLess is the reference IEEE totalOrder predicate the codec
// must realize: specials ranked by class, finite values compared by <.
func float64TotalLess(a, b float64) bool {
	rank := func(f float64) int {
		switch {
		case math.IsNaN(f) && math.Signbit(f):
			return 0
		case math.IsNaN(f):
			return 6
		case math.IsInf(f, -1):
			return 1
		case math.IsInf(f, 1):
			return 5
		case f == 0 && math.Signbit(f):
			return 2 // -0
		case f == 0:
			return 3 // +0
		default:
			return 4 // finite nonzero — compare by value below
		}
	}
	ra, rb := rank(a), rank(b)
	if ra != rb {
		// -0/+0 and finite nonzero interleave by value, handle below.
		if (ra == 2 || ra == 3) && rb == 4 {
			return 0 < b
		}
		if ra == 4 && (rb == 2 || rb == 3) {
			return a < 0
		}
		return ra < rb
	}
	if ra == 4 {
		return a < b
	}
	return false // same class: equal (NaN payloads tested separately)
}

// TestFloat64CodecTotalOrder is the float64 totality property test: over
// random finite values and every special (NaN of both signs, ±Inf, ±0) the
// encoding must realize a total order consistent with < on comparable
// values, -0 < +0, and NaNs at the extremes; Decode must be a bitwise
// inverse.
func TestFloat64CodecTotalOrder(t *testing.T) {
	c := Float64Key()
	rng := xrand.NewSeeded(3)
	negNaN := math.Float64frombits(0xFFF8000000000001)
	keys := []float64{
		negNaN, math.NaN(), math.Inf(-1), math.Inf(1),
		math.Copysign(0, -1), 0,
		-math.MaxFloat64, math.MaxFloat64,
		-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64,
	}
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) {
			continue // random NaN payloads covered by the fixed specials
		}
		keys = append(keys, f)
	}
	for _, a := range keys {
		if math.Float64bits(c.Decode(c.Encode(a))) != math.Float64bits(a) {
			t.Fatalf("bitwise roundtrip failed for %x", math.Float64bits(a))
		}
	}
	for i := 0; i < 30000; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if float64TotalLess(a, b) && c.Encode(a) >= c.Encode(b) {
			t.Fatalf("total order violated: %v (%x) not below %v (%x)",
				a, c.Encode(a), b, c.Encode(b))
		}
	}
	// The totality acceptance list, in required encoded order.
	ordered := []float64{negNaN, math.Inf(-1), -1.5, math.Copysign(0, -1), 0, 1.5, math.Inf(1), math.NaN()}
	for i := 1; i < len(ordered); i++ {
		if c.Encode(ordered[i-1]) >= c.Encode(ordered[i]) {
			t.Fatalf("specials out of order at %d: %v !< %v", i, ordered[i-1], ordered[i])
		}
	}
}

// TestTimeCodecOrder checks order preservation and round-tripping for
// TimeKey over random instants within the documented UnixNano window.
func TestTimeCodecOrder(t *testing.T) {
	c := TimeKey()
	rng := xrand.NewSeeded(4)
	keys := []time.Time{
		time.Unix(0, math.MinInt64).Add(time.Nanosecond),
		time.Unix(0, 0),
		time.Unix(0, math.MaxInt64),
		time.Date(2026, 7, 26, 0, 0, 0, 0, time.UTC),
	}
	for i := 0; i < 2000; i++ {
		keys = append(keys, time.Unix(0, int64(rng.Uint64())))
	}
	for _, a := range keys {
		if !c.Decode(c.Encode(a)).Equal(a) {
			t.Fatalf("roundtrip failed for %v", a)
		}
	}
	for i := 0; i < 20000; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a.Before(b) != (c.Encode(a) < c.Encode(b)) {
			t.Fatalf("order violated: %v vs %v", a, b)
		}
	}
}

// TestTimeCodecRangeClamp pins the TimeKey out-of-window behavior at both
// window edges: instants before the earliest UnixNano-representable instant
// clamp to priority 0, instants after the latest clamp to ^0, ordering
// against every in-window instant is (weakly) preserved instead of the
// pre-guard silent wraparound, and CheckTimeKey accepts exactly the window
// (edges included) with a typed *TimeKeyRangeError outside it.
func TestTimeCodecRangeClamp(t *testing.T) {
	c := TimeKey()
	loEdge := time.Unix(0, math.MinInt64)
	hiEdge := time.Unix(0, math.MaxInt64)
	below := []time.Time{
		loEdge.Add(-time.Nanosecond),
		loEdge.Add(-1000 * time.Hour),
		time.Date(1000, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	above := []time.Time{
		hiEdge.Add(time.Nanosecond),
		hiEdge.Add(1000 * time.Hour),
		time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	inside := []time.Time{loEdge, time.Unix(0, 0), time.Now(), hiEdge}
	for _, a := range below {
		if got := c.Encode(a); got != 0 {
			t.Fatalf("Encode(%v) = %d, want clamp to 0", a, got)
		}
		if err := CheckTimeKey(a); err == nil {
			t.Fatalf("CheckTimeKey(%v) = nil, want range error", a)
		}
	}
	for _, a := range above {
		if got := c.Encode(a); got != ^uint64(0) {
			t.Fatalf("Encode(%v) = %d, want clamp to ^0", a, got)
		}
		if err := CheckTimeKey(a); err == nil {
			t.Fatalf("CheckTimeKey(%v) = nil, want range error", a)
		}
	}
	for _, a := range inside {
		if err := CheckTimeKey(a); err != nil {
			t.Fatalf("CheckTimeKey(%v) = %v, want nil (in window)", a, err)
		}
	}
	// Weak order across the clamp boundary: below <= inside <= above, with
	// strict order against the window interior (the edges themselves share
	// the clamped priorities by construction).
	for _, lo := range below {
		for _, mid := range inside[1 : len(inside)-1] {
			if c.Encode(lo) >= c.Encode(mid) {
				t.Fatalf("clamped %v not below in-window %v", lo, mid)
			}
		}
		for _, hi := range above {
			if c.Encode(lo) >= c.Encode(hi) {
				t.Fatalf("clamped %v not below clamped-high %v", lo, hi)
			}
		}
	}
	for _, hi := range above {
		for _, mid := range inside[1 : len(inside)-1] {
			if c.Encode(hi) <= c.Encode(mid) {
				t.Fatalf("clamped %v not above in-window %v", hi, mid)
			}
		}
	}
	// The typed error names the offending key and is the documented type.
	var rangeErr *TimeKeyRangeError
	if err := CheckTimeKey(above[0]); !errors.As(err, &rangeErr) {
		t.Fatalf("CheckTimeKey error type = %T, want *TimeKeyRangeError", err)
	} else if !rangeErr.Key.Equal(above[0]) || rangeErr.Error() == "" {
		t.Fatalf("range error content wrong: %v", rangeErr)
	}
}

// TestStringPrefixCodecOrder checks the weak order-preservation contract of
// StringPrefixKey: a <= b implies Encode(a) <= Encode(b) over random byte
// strings of varied lengths, and Decode returns the trimmed canonical
// prefix.
func TestStringPrefixCodecOrder(t *testing.T) {
	c := StringPrefixKey()
	rng := xrand.NewSeeded(5)
	keys := []string{"", "a", "ab", "abcdefgh", "abcdefghi", "abcdefgz", "\x00", "zzzzzzzzz"}
	for i := 0; i < 1500; i++ {
		n := rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(byte(rng.Intn(256)))
		}
		keys = append(keys, sb.String())
	}
	for i := 0; i < 30000; i++ {
		a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
		if a < b && c.Encode(a) > c.Encode(b) {
			t.Fatalf("weak order violated: %q vs %q", a, b)
		}
	}
	// Decode canonicalization.
	for _, k := range []struct{ in, want string }{
		{"", ""}, {"abc", "abc"}, {"abcdefghi", "abcdefgh"}, {"a\x00\x00", "a"},
	} {
		if got := c.Decode(c.Encode(k.in)); got != k.want {
			t.Fatalf("Decode(Encode(%q)) = %q, want %q", k.in, got, k.want)
		}
	}
	// CheckKeyCodec usage for a deliberately lossy codec: pairs the codec
	// is allowed to collapse (same trimmed 8-byte prefix) compare equal.
	pcmp := func(a, b string) int {
		trim := func(s string) string {
			if len(s) > 8 {
				s = s[:8]
			}
			return strings.TrimRight(s, "\x00")
		}
		return strings.Compare(trim(a), trim(b))
	}
	if a, b, ok := CheckKeyCodec(c, keys[:300], pcmp); !ok {
		t.Fatalf("StringPrefixKey failed the prefix-aware self-check on (%q, %q)", a, b)
	}
}

// TestCheckKeyCodec exercises the exported self-check helper on a passing
// and a deliberately broken codec.
func TestCheckKeyCodec(t *testing.T) {
	cmp := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if _, _, ok := CheckKeyCodec(Int64Key(), []int64{-5, -1, 0, 3, 9}, cmp); !ok {
		t.Fatal("Int64Key failed its own self-check")
	}
	if a, b, ok := CheckKeyCodec(brokenCodec{}, []int64{-5, -1, 0, 3, 9}, cmp); ok {
		t.Fatal("broken codec passed the self-check")
	} else if a >= b {
		t.Fatalf("reported pair (%d, %d) not a counterexample", a, b)
	}
	// A codec that collapses keys cmp declares distinct must be caught too.
	if _, _, ok := CheckKeyCodec(collapsingCodec{}, []int64{-5, -1, 0, 3, 9}, cmp); ok {
		t.Fatal("collapsing codec passed a strict-cmp self-check")
	}
}

// brokenCodec violates order on purpose (negatives map above positives).
type brokenCodec struct{}

func (brokenCodec) Encode(k int64) uint64 { return uint64(k) }
func (brokenCodec) Decode(e uint64) int64 { return int64(e) }

// collapsingCodec maps every key to one priority — order-consistent but
// totally lossy.
type collapsingCodec struct{}

func (collapsingCodec) Encode(int64) uint64 { return 7 }
func (collapsingCodec) Decode(uint64) int64 { return 0 }
