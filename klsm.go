package klsm

import (
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/core"
)

// Queue is a lock-free relaxed concurrent priority queue over uint64 keys
// with payloads of type V. Create one with New. Two access styles exist:
// explicit per-goroutine Handles (the fast path — see NewHandle) and the
// handle-free queue-level operations (Queue.Insert, Queue.TryDeleteMin,
// Queue.PeekMin and the batch variants), which borrow handles from an
// internal registry. For ordered key types other than uint64, wrap the
// queue via NewOrdered.
type Queue[V any] struct {
	q *core.Queue[V]

	// p is the durability state; nil for queues created by New. Non-nil
	// routes every mutation through the write-ahead log (see Open).
	p *persister[V]
	// closed flips on Close; operations afterwards return or panic with
	// ErrClosed.
	closed atomic.Bool

	// freeMu guards freeHandles, the registry backing the handle-free
	// operations: handles not currently borrowed by an in-flight
	// queue-level operation. Recycling keeps T — and ρ = T·k — bounded by
	// the peak concurrency of handle-free ops rather than goroutine churn.
	freeMu      sync.Mutex
	freeHandles []*Handle[V]
}

// Handle is one goroutine's access point to a Queue. A Handle must not be
// used by two goroutines concurrently; create one Handle per worker.
type Handle[V any] struct {
	h *core.Handle[V]
	// q backs the closed check and the persistence routing.
	q *Queue[V]
	// enc is the ordered-API batch-encode scratch. Owner-only, like the
	// handle itself — registry borrowers own it exclusively while borrowed.
	enc []uint64
	// vbuf is the value-codec scratch of the persistent insert path.
	// Owner-only, like enc.
	vbuf []byte
}

// persist performs the per-operation preamble: it panics with ErrClosed on
// a closed queue and returns the durability state (nil for queues created
// by New). One atomic load on the hot path.
func (h *Handle[V]) persist() *persister[V] {
	q := h.q
	if q == nil {
		return nil
	}
	if q.closed.Load() {
		panic(ErrClosed)
	}
	return q.p
}

// DropFunc is the lazy-deletion callback (paper §4.5): return true for items
// that have become irrelevant (for example, stale distance labels in SSSP)
// and the queue discards them during its next maintenance pass over them
// instead of returning them from TryDeleteMin.
type DropFunc[V any] func(key uint64, value V) bool

// resolveOptions applies opts to the defaults: the paper's recommended
// general-purpose setting (combined k-LSM, k = 256, local ordering) with
// §4.4 memory pooling enabled, and — for persistent queues — 2ms
// timer-driven group commit.
func resolveOptions(opts []Option) options {
	cfg := options{
		k:             256,
		mode:          core.Combined,
		localOrdering: true,
		pooling:       true,
		minCaching:    true,
		reclaim:       true,
		delBuf:        32,
		stickyOps:     64,
		syncInterval:  2 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.syncInterval < 0 { // WithSyncInterval(0): explicitly timerless
		cfg.syncInterval = 0
	}
	return cfg
}

// coreConfig translates resolved options into the engine configuration.
func coreConfig[V any](cfg options) core.Config[V] {
	return core.Config[V]{
		K:                      cfg.k,
		Mode:                   cfg.mode,
		LocalOrdering:          cfg.localOrdering,
		DisablePooling:         !cfg.pooling,
		DisableMinCaching:      !cfg.minCaching,
		DisableItemReclamation: !cfg.reclaim,
		DisableDeletionBuffer:  cfg.delBuf <= 0,
		DeletionBufferSize:     cfg.delBuf,
		DisableStickyHint:      cfg.stickyOps <= 0,
		StickyHintOps:          cfg.stickyOps,
	}
}

// newCoreQueue builds the engine queue for resolved options, wiring the
// optional lazy-deletion callback.
func newCoreQueue[V any](cfg options, drop func(key uint64, value V) bool) *core.Queue[V] {
	ccfg := coreConfig[V](cfg)
	ccfg.Drop = drop
	return core.NewQueue(ccfg)
}

// New returns an empty queue configured by opts. The default configuration
// is the paper's recommended general-purpose setting: the combined k-LSM
// with k = 256, local ordering enabled, §4.4 memory pooling with
// deterministic item reclamation on, and the delete-min min-caching fast
// path on. For a durable queue use Open — New panics if WithPersistence is
// among opts, because persistence needs a ValueCodec that cannot travel
// through the non-generic Option type.
func New[V any](opts ...Option) *Queue[V] {
	cfg := resolveOptions(opts)
	if cfg.persistDir != "" {
		panic("klsm: WithPersistence requires klsm.Open (New cannot take the value codec)")
	}
	return &Queue[V]{q: newCoreQueue[V](cfg, nil)}
}

// NewWithDrop is New with a lazy-deletion callback; the callback type is
// generic, so it cannot be passed through Option.
func NewWithDrop[V any](drop DropFunc[V], opts ...Option) *Queue[V] {
	cfg := resolveOptions(opts)
	if cfg.persistDir != "" {
		panic("klsm: WithPersistence requires klsm.Open (New cannot take the value codec)")
	}
	var coreDrop func(key uint64, value V) bool
	if drop != nil {
		coreDrop = func(key uint64, value V) bool { return drop(key, value) }
	}
	return &Queue[V]{q: newCoreQueue[V](cfg, coreDrop)}
}

// NewHandle registers a new handle. Handles count toward the relaxation
// bound: with T handles, TryDeleteMin returns one of the T·k+1 smallest
// keys.
func (q *Queue[V]) NewHandle() *Handle[V] {
	if q.closed.Load() {
		panic(ErrClosed)
	}
	return &Handle[V]{h: q.q.NewHandle(), q: q}
}

// SetMergeFilter installs the lazy-deletion filter after construction but
// strictly before the queue's first handle exists (explicit or borrowed):
// from then on, items the callback reports stale are discarded by deletes
// and peeks instead of returned, physically dropped whenever a merge or
// Compact pass copies over them, and never resurface. It is the
// post-construction alternative to NewWithDrop for callers whose filter
// closes over state built after the queue — a cancellation registry keyed
// by queue contents, say; prefer NewWithDrop when construction order
// allows. The callback must be safe for concurrent calls from any handle's
// merges and must be stable for a given item (once true, always true), or
// an item may be dropped on one path and returned on another.
//
// SetMergeFilter panics once any handle has been created, and on persistent
// queues: filter-dropped items bypass the WAL's delete records, so recovery
// would resurrect every item the filter removed.
func (q *Queue[V]) SetMergeFilter(drop DropFunc[V]) {
	if q.closed.Load() {
		panic(ErrClosed)
	}
	if q.p != nil {
		panic("klsm: SetMergeFilter on a persistent queue would desync the WAL (dropped items leave no delete records)")
	}
	var coreDrop func(key uint64, value V) bool
	if drop != nil {
		coreDrop = func(key uint64, value V) bool { return drop(key, value) }
	}
	q.q.SetDrop(coreDrop)
}

// Size returns the number of keys in the queue. Like the paper's size
// operation it is approximate: the result may deviate from the exact count
// by up to the relaxation bound ρ = T·k while operations are in flight.
func (q *Queue[V]) Size() int { return q.q.Size() }

// K returns the current relaxation parameter.
func (q *Queue[V]) K() int { return q.q.K() }

// MaxRelaxation is the largest accepted relaxation parameter: larger k is
// clamped to it by New and SetRelaxation (beyond this bound the per-handle
// structure saturates anyway, and unbounded k would let ρ = T·k arithmetic
// overflow). Negative k panics in both.
const MaxRelaxation = core.MaxRelaxation

// SetRelaxation reconfigures k at run time (paper §1). The change takes
// effect promptly but not atomically: the shared structure adopts the new
// bound on its next update, and each handle applies it on its next insert.
// During the transition the effective per-handle bound is the larger of the
// old and new k. No-op for queues created WithDistributedOnly.
//
// Validation matches New: k < 0 panics (also on WithDistributedOnly queues,
// where the value is otherwise ignored), and k > MaxRelaxation is clamped.
func (q *Queue[V]) SetRelaxation(k int) { q.q.SetRelaxation(k) }

// Rho returns the current worst-case relaxation bound T·k, where T is the
// number of handles created so far.
func (q *Queue[V]) Rho() int { return q.q.Rho() }

// Footprint returns the number of physical item slots the queue's published
// blocks currently hold: live items plus logically deleted or filter-dropped
// ones that no compaction pass has reclaimed yet. It is a racy diagnostic
// snapshot intended for observing memory pressure — under a merge filter,
// Size cannot serve that purpose because merge-time drops are invisible to
// its insert/delete counters. Footprint bounded across time is the signal
// that lazy deletion is keeping up (see Compact).
func (q *Queue[V]) Footprint() int { return q.q.FootprintItems() }

// Compact physically reclaims logically deleted and filter-dropped items:
// every idle registry handle's local structure and the shared k-LSM are
// purged block-by-block (dropped items' references released exactly once
// through the §4.4 ledger) and re-consolidated. Ordinary merges apply the
// filter only when blocks collide at a level, so without occasional
// compaction a long-lived high-level block can hold filter-positive
// garbage indefinitely; call Compact when Footprint degrades relative to
// Size — or use timerq, which automates exactly that heuristic for
// timers. Safe to call concurrently with other operations. Explicit
// Handles are owner-only and are not swept — their owners call
// Handle.Compact themselves.
func (q *Queue[V]) Compact() {
	if q.closed.Load() {
		panic(ErrClosed)
	}
	// Borrow the whole free list at once: each Compact purges only its
	// own handle's local structure (plus the shared k-LSM), so sweeping a
	// single borrowed handle would strand filter-dropped items in the
	// other registry handles' local structures indefinitely. Concurrent
	// handle-free operations simply register fresh handles meanwhile.
	q.freeMu.Lock()
	hs := q.freeHandles
	q.freeHandles = nil
	q.freeMu.Unlock()
	if len(hs) == 0 {
		hs = append(hs, q.borrowHandle())
	}
	for _, h := range hs {
		h.Compact()
	}
	q.freeMu.Lock()
	q.freeHandles = append(q.freeHandles, hs...)
	q.freeMu.Unlock()
}

// Quiesce drives every deferred §4.4 reclamation step to completion:
// DistLSM consolidation, shared-structure maintenance, and the guard- and
// epoch-gated limbo drains, including obligations handed over by closed
// handles. After Quiesce on a fully drained queue, every recyclable block
// and item has returned to a free list. It must not run concurrently with
// any handle operation; call it at shutdown or between test phases.
func (q *Queue[V]) Quiesce() { q.q.Quiesce() }

// Meld absorbs all items of other into q through handle h. Exactly-once
// deletion holds throughout, but the operation is not linearizable (see
// paper §4.5): concurrent observers may see intermediate states. other must
// be quiescent for inserts during the meld and should be discarded
// afterwards.
//
// Meld panics when either queue is persistent: melded items move by block
// adoption and would bypass the write-ahead log, silently losing them on
// recovery. Drain the source and re-insert instead.
func (h *Handle[V]) Meld(other *Queue[V]) {
	if other == nil {
		return
	}
	if h.persist() != nil || other.p != nil {
		panic("klsm: Meld on a persistent queue would bypass the WAL; drain and re-insert instead")
	}
	if other.closed.Load() {
		panic(ErrClosed)
	}
	h.h.Meld(other.q)
}

// Close retires the handle: locally batched items move to the shared
// structure (staying reachable without it) and the handle stops counting
// toward ρ = T·k. Call it when a worker goroutine exits for good; the
// handle must not be used afterwards. Closing is optional for short-lived
// queues but prevents unbounded victim-list growth under handle churn.
func (h *Handle[V]) Close() {
	h.persist()
	h.h.Close()
}

// Insert adds key with the given payload. Insert always succeeds and is
// lock-free; on a persistent queue it additionally appends a WAL record
// (in memory — disk I/O happens on the group-commit writer), is durable
// once a Sync covering it returns, and panics if the ValueCodec rejects
// value. Insert panics with ErrClosed after Close.
func (h *Handle[V]) Insert(key uint64, value V) {
	if p := h.persist(); p != nil {
		seq := p.seq.Add(1)
		h.vbuf = p.appendInsert(h.vbuf[:0], key, value, seq)
		h.h.InsertSeq(key, value, seq)
		return
	}
	h.h.Insert(key, value)
}

// TryDeleteMin removes and returns a key among the ρ+1 smallest in the
// queue (ρ = T·k), preferring this handle's own minimal key (local
// ordering). ok is false when no key was found; under concurrent
// modification this can be spurious, so callers with external knowledge
// that items remain should retry. On a persistent queue a successful
// delete appends a WAL record; once a Sync covering it returns, the item
// will not reappear after a crash (unacknowledged deletes may be
// redelivered — at-least-once, like any write-behind log).
func (h *Handle[V]) TryDeleteMin() (key uint64, value V, ok bool) {
	if p := h.persist(); p != nil {
		k, v, seq, ok := h.h.TryDeleteMinSeq()
		if ok {
			p.appendDelete(k, seq)
		}
		return k, v, ok
	}
	return h.h.TryDeleteMin()
}

// PeekMin returns a key TryDeleteMin could return, without removing it. The
// result is relaxed exactly like TryDeleteMin's and may be stale by the
// time the caller acts on it. With the deletion buffer enabled (the
// default), PeekMin observes the same buffered candidate the next
// TryDeleteMin on this handle would pop.
func (h *Handle[V]) PeekMin() (key uint64, value V, ok bool) {
	h.persist()
	return h.h.PeekMin()
}

// TryDeleteMinBounded is TryDeleteMin restricted to keys at or below bound:
// it removes and returns a relaxed-minimal key only when that key is <=
// bound, leaving everything above the bound untouched. A false result is a
// stronger signal than TryDeleteMin's emptiness — before concluding
// dryness, the queue runs a due-bounded spy pass that pulls in qualifying
// keys stranded in idle handles' local structures, so false means no
// reachable key <= bound existed at that moment. This is the deadline
// primitive ("pop the next item due by now"); timerq builds on it. On a
// persistent queue a successful delete logs its WAL record like
// TryDeleteMin.
func (h *Handle[V]) TryDeleteMinBounded(bound uint64) (key uint64, value V, ok bool) {
	if p := h.persist(); p != nil {
		k, v, seq, ok := h.h.TryDeleteMinBoundedSeq(bound)
		if ok {
			p.appendDelete(k, seq)
		}
		return k, v, ok
	}
	return h.h.TryDeleteMinBounded(bound)
}

// Compact physically reclaims logically deleted and merge-filter-dropped
// items from this handle's local structure and the shared k-LSM; see
// Queue.Compact for when that matters. Owner-only like every handle
// operation.
func (h *Handle[V]) Compact() {
	h.persist()
	h.h.Compact()
}
