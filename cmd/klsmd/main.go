// Command klsmd serves a sharded k-LSM priority queue over HTTP: S shards
// behind consistent hashing on topic, group-commit enqueue batching,
// streaming drains, backpressure, and per-shard counters at /statsz.
//
// In-memory service on four shards:
//
//	klsmd -addr :7070 -shards 4
//
// Durable service (each shard keeps a WAL + checkpoints under -dir;
// restarting on the same directory recovers every acknowledged insert
// exactly once):
//
//	klsmd -addr :7070 -shards 4 -dir /var/lib/klsmd
//
// API (see internal/server):
//
//	POST /v1/enqueue  {"topic":"t","items":[{"key":1,"value":"v"}]}
//	POST /v1/dequeue  {"topic":"t","max":32}   ("*" = global)
//	GET  /v1/drain?topic=t&max=100000&batch=512   (NDJSON stream)
//	GET  /statsz, /healthz
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests drain, pending
// enqueue batches flush, and every shard is closed (WAL fsynced).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"klsm"
	"klsm/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards       = flag.Int("shards", 4, "number of queue shards")
		k            = flag.Int("k", 256, "relaxation parameter per shard (bound composes to S*T*k)")
		dir          = flag.String("dir", "", "persistence root (empty = in-memory); shard i lives in dir/shard-000i")
		syncInterval = flag.Duration("sync-interval", 2*time.Millisecond, "WAL group-commit interval (persistent mode)")
		maxInflight  = flag.Int64("max-inflight", 32<<20, "in-flight request-byte bound before 429 (backpressure; <0 disables)")
		checkpoint   = flag.Bool("checkpoint-on-exit", false, "compact shard WALs into checkpoint segments during shutdown")
		ckptBytes    = flag.Int64("checkpoint-wal-bytes", 64<<20, "per-shard WAL size that triggers an automatic checkpoint (persistent mode; 0 disables the size trigger)")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "per-shard max age of un-checkpointed work before an automatic checkpoint (0 disables the age trigger)")
	)
	flag.Parse()

	qopts := []klsm.Option{klsm.WithRelaxation(*k), klsm.WithSyncInterval(*syncInterval)}
	if *dir != "" {
		qopts = append(qopts, klsm.WithAutoCheckpoint(*ckptBytes, *ckptEvery))
	}
	srv, err := server.New(server.Config{
		Shards:           *shards,
		Dir:              *dir,
		QueueOptions:     qopts,
		MaxInFlightBytes: *maxInflight,
	})
	if err != nil {
		log.Fatalf("klsmd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("klsmd: %v", err)
	}
	mode := "in-memory"
	if *dir != "" {
		mode = fmt.Sprintf("persistent dir=%s", *dir)
	}
	log.Printf("klsmd: serving on http://%s (shards=%d k=%d %s)", ln.Addr(), *shards, *k, mode)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("klsmd: serve: %v", err)
		}
		return
	case s := <-sig:
		log.Printf("klsmd: %v: shutting down", s)
	}

	if *checkpoint {
		// Checkpoint is safe under traffic, but draining HTTP first makes
		// the compaction capture the final state; the Shutdown below then
		// closes everything (a second Shutdown only repeats the idempotent
		// close step).
		ctx, cancel := context.WithTimeout(context.Background(), server.ShutdownTimeout)
		srv.ShutdownHTTP(ctx)
		cancel()
		for i := 0; i < srv.Router().Shards(); i++ {
			if err := srv.Router().Queue(i).Checkpoint(); err != nil {
				log.Printf("klsmd: checkpoint shard %d: %v", i, err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), server.ShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("klsmd: shutdown: %v", err)
	}
	st := srv.Stats()
	log.Printf("klsmd: closed cleanly (enqueued=%d dequeued=%d remaining=%d rejected=%d)",
		st.Enqueued, st.Dequeued, st.Size, st.Rejected)
}
