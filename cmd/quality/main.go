// Command quality measures delete-min rank error (relaxation quality): for
// each queue, the rank of every returned key among the live keys during a
// sequential replay, tracked exactly with an order-statistic treap.
//
// This validates the paper's central guarantee empirically: the k-LSM's
// observed maximum rank never exceeds k with one handle (ρ = T·k in
// general), while the SprayList and MultiQueue show unbounded tails. It is
// the E5 ablation experiment of DESIGN.md.
//
//	quality -klist 0,4,256,4096 -prefill 10000 -ops 100000
//
// With -ablate, each k also runs the PR 6 delete-min ablations (deletion
// buffer off, sticky hint off). With -json <tag>, the results are
// additionally written to BENCH_<tag>.json (-jsondir redirects the output
// directory).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"klsm/internal/harness"
	"klsm/internal/pqs"
	"klsm/internal/pqs/klsmq"
	"klsm/internal/pqs/linden"
	"klsm/internal/pqs/multiq"
	"klsm/internal/pqs/spraylist"
)

// rankPoint is one queue's rank-error row as serialized into the
// BENCH_<tag>.json document.
type rankPoint struct {
	Queue    string  `json:"queue"`
	Deletes  int64   `json:"deletes"`
	MaxRank  int     `json:"max_rank"`
	MeanRank float64 `json:"mean_rank"`
	Bound    string  `json:"bound"`
}

// rankFile is the top-level BENCH_<tag>.json document.
type rankFile struct {
	Tag        string      `json:"tag"`
	Kind       string      `json:"kind"`
	Timestamp  string      `json:"timestamp"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	GitSHA     string      `json:"git_sha,omitempty"`
	Prefill    int         `json:"prefill"`
	Ops        int         `json:"ops"`
	Seed       uint64      `json:"seed"`
	Results    []rankPoint `json:"results"`
}

func main() {
	var (
		klistFlag = flag.String("klist", "0,4,256,4096", "k values for the k-LSM")
		prefill   = flag.Int("prefill", 10_000, "keys inserted before measuring")
		ops       = flag.Int("ops", 100_000, "measured operations (50/50 mix)")
		seed      = flag.Uint64("seed", 7, "workload seed")
		threads   = flag.Int("threads", 8, "design-point T for SprayList/MultiQueue sizing")
		ablate    = flag.Bool("ablate", false, "add deletion-buffer/sticky-hint ablation rows per k")
		csv       = flag.Bool("csv", false, "emit CSV")
		jsonTag   = flag.String("json", "", "also write the results as BENCH_<tag>.json")
		jsonDir   = flag.String("jsondir", ".", "directory for the -json output file")
	)
	flag.Parse()

	klist, err := harness.ParseIntList(*klistFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}

	type entry struct {
		name  string
		queue pqs.Queue
		bound string
	}
	var entries []entry
	entries = append(entries, entry{"Linden", linden.New(0), "0 (exact)"})
	for _, k := range klist {
		entries = append(entries, entry{
			fmt.Sprintf("kLSM(%d)", k),
			klsmq.New(k),
			fmt.Sprintf("%d (=k, single handle)", k),
		})
	}
	// With local ordering, a single handle always receives its own minimum,
	// so the rank error is exactly 0 — which validates local ordering but
	// hides the k-relaxation. The no-local-ordering rows expose the spread
	// of the uniform selection among the k+1 smallest.
	for _, k := range klist {
		entries = append(entries, entry{
			fmt.Sprintf("kLSM(%d)-nolocal", k),
			klsmq.NewNoLocalOrdering(k),
			fmt.Sprintf("%d (=k)", k),
		})
	}
	if *ablate {
		for _, k := range klist {
			entries = append(entries, entry{
				fmt.Sprintf("kLSM(%d)-nobuf", k),
				klsmq.NewNoDelBuf(k),
				fmt.Sprintf("%d (=k, single handle)", k),
			})
			entries = append(entries, entry{
				fmt.Sprintf("kLSM(%d)-nosticky", k),
				klsmq.NewNoSticky(k),
				fmt.Sprintf("%d (=k, single handle)", k),
			})
		}
	}
	entries = append(entries, entry{
		fmt.Sprintf("SprayList(T=%d)", *threads),
		spraylist.New(spraylist.Config{Threads: *threads}),
		"none (probabilistic)",
	})
	entries = append(entries, entry{
		fmt.Sprintf("MultiQ(c=2,T=%d)", *threads),
		multiq.New(multiq.Config{C: 2, Threads: *threads}),
		"none",
	})

	if *csv {
		fmt.Println("queue,deletes,max_rank,mean_rank,bound")
	} else {
		fmt.Printf("# rank error over %d ops after %d prefill (sequential replay)\n", *ops, *prefill)
		fmt.Printf("%-18s %10s %10s %12s  %s\n", "queue", "deletes", "max rank", "mean rank", "worst-case bound")
	}
	out := rankFile{
		Tag:        *jsonTag,
		Kind:       "rank-error",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GitSHA:     harness.GitSHA(),
		Prefill:    *prefill,
		Ops:        *ops,
		Seed:       *seed,
	}
	for _, e := range entries {
		res := harness.RankError(e.queue, *prefill, *ops, *seed)
		out.Results = append(out.Results, rankPoint{
			Queue:    e.name,
			Deletes:  res.Deletes,
			MaxRank:  res.MaxRank,
			MeanRank: res.MeanRank,
			Bound:    e.bound,
		})
		if *csv {
			fmt.Printf("%s,%d,%d,%.3f,%q\n", e.name, res.Deletes, res.MaxRank, res.MeanRank, e.bound)
		} else {
			fmt.Printf("%-18s %10d %10d %12.3f  %s\n", e.name, res.Deletes, res.MaxRank, res.MeanRank, e.bound)
		}
	}

	if *jsonTag != "" {
		path := filepath.Join(*jsonDir, "BENCH_"+*jsonTag+".json")
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "quality: marshal:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "quality:", err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("# wrote %s\n", path)
		}
	}
}
