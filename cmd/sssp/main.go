// Command sssp regenerates the paper's Figure 4: execution time of the
// parallel label-correcting SSSP benchmark on Erdős–Rényi graphs, comparing
// the k-LSM against the Wimmer et al. centralized and hybrid k-priority
// queues.
//
// Figure 4 left (time vs. threads at k=256), paper scale:
//
//	sssp -sweep threads -threads 1,2,3,5,10,20,40,80 -k 256 -nodes 10000 -p 0.5 -reps 30
//
// Figure 4 right (time vs. k at 10 threads), paper scale:
//
//	sssp -sweep k -threads 10 -klist 0,1,4,16,64,256,1024,4096,16384 -nodes 10000 -p 0.5 -reps 30
//
// The tool also reports the "additional iterations compared to a sequential
// execution" metric the paper quotes in §6.1 (+362 for the k-LSM at k=256).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"klsm/internal/graph"
	"klsm/internal/harness"
	"klsm/internal/sssp"
	"klsm/internal/stats"
)

func main() {
	var (
		sweep       = flag.String("sweep", "threads", "'threads' (Fig 4 left) or 'k' (Fig 4 right)")
		threadsFlag = flag.String("threads", "1,2,4,8", "thread counts for -sweep threads; single value used for -sweep k")
		k           = flag.Int("k", 256, "relaxation parameter for -sweep threads")
		klistFlag   = flag.String("klist", "0,1,4,16,64,256,1024,4096,16384", "k values for -sweep k")
		nodes       = flag.Int("nodes", 2000, "graph nodes (paper: 10000)")
		p           = flag.Float64("p", 0.5, "edge probability (paper: 0.5)")
		maxW        = flag.Uint64("maxweight", 100_000_000, "max edge weight (paper: 10^8)")
		reps        = flag.Int("reps", 5, "repetitions per point (paper: 30)")
		seed        = flag.Uint64("seed", 42, "graph seed")
		csv         = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	threads, err := harness.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sssp:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "# generating G(%d, %.2f) with weights [1,%d]...\n", *nodes, *p, *maxW)
	g := graph.ErdosRenyi(*nodes, *p, uint32(*maxW), *seed)
	fmt.Fprintf(os.Stderr, "# %d nodes, %d edges; GOMAXPROCS=%d\n", g.N, g.Edges(), runtime.GOMAXPROCS(0))
	_, seqPops := graph.Dijkstra(g, 0)
	fmt.Fprintf(os.Stderr, "# sequential Dijkstra pops: %d\n", seqPops)

	oracle, _ := graph.Dijkstra(g, 0)
	verify := func(name string, res sssp.Result) {
		for v := range oracle {
			if res.Dist[v] != oracle[v] {
				fmt.Fprintf(os.Stderr, "sssp: %s produced WRONG distance at node %d\n", name, v)
				os.Exit(1)
			}
		}
	}

	// measure runs one warmup (discarded: first-run allocator and cache
	// effects otherwise dominate small graphs) plus reps measured runs.
	measure := func(spec harness.QueueSpec, workers int) (times, extras []float64) {
		res := sssp.Run(g, 0, workers, spec.NewSSSP)
		verify(spec.Name, res)
		for r := 0; r < *reps; r++ {
			res := sssp.Run(g, 0, workers, spec.NewSSSP)
			verify(spec.Name, res)
			times = append(times, res.Elapsed.Seconds())
			extras = append(extras, float64(res.Processed-seqPops))
		}
		return times, extras
	}

	switch *sweep {
	case "threads":
		if *csv {
			fmt.Println("queue,threads,k,reps,mean_time_s,ci95_s,extra_iterations_mean")
		} else {
			fmt.Printf("# Figure 4 (left): execution time (s), k=%d\n", *k)
			fmt.Printf("%-14s %8s %16s %14s\n", "queue", "threads", "time (s)", "extra iters")
		}
		for _, spec := range harness.Figure4Specs(*k) {
			for _, t := range threads {
				times, extras := measure(spec, t)
				ts, es := stats.Summarize(times), stats.Summarize(extras)
				if *csv {
					fmt.Printf("%s,%d,%d,%d,%.6f,%.6f,%.1f\n", spec.Name, t, *k, *reps, ts.Mean, ts.CI95, es.Mean)
				} else {
					fmt.Printf("%-14s %8d %16s %14.0f\n", spec.Name, t, ts.String(), es.Mean)
				}
			}
		}
	case "k":
		klist, err := harness.ParseIntList(*klistFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sssp:", err)
			os.Exit(1)
		}
		t := threads[0]
		if *csv {
			fmt.Println("queue,threads,k,reps,mean_time_s,ci95_s,extra_iterations_mean")
		} else {
			fmt.Printf("# Figure 4 (right): execution time (s) vs k, threads=%d\n", t)
			fmt.Printf("%-14s %8s %16s %14s\n", "queue", "k", "time (s)", "extra iters")
		}
		for _, kv := range klist {
			for _, spec := range harness.Figure4Specs(kv) {
				times, extras := measure(spec, t)
				ts, es := stats.Summarize(times), stats.Summarize(extras)
				if *csv {
					fmt.Printf("%s,%d,%d,%d,%.6f,%.6f,%.1f\n", spec.Name, t, kv, *reps, ts.Mean, ts.CI95, es.Mean)
				} else {
					fmt.Printf("%-14s %8d %16s %14.0f\n", spec.Name, kv, ts.String(), es.Mean)
				}
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "sssp: unknown sweep %q (threads|k)\n", *sweep)
		os.Exit(1)
	}
}
