// Command klsmload drives insert/dequeue mixes against a klsmd server and
// records the sweep in the same BENCH_<tag>.json schema cmd/throughput
// writes, so the served queue joins the recorded throughput trajectory.
//
// Against a running server:
//
//	klsmload -addr http://127.0.0.1:7070 -workers 1,2,4 -batch 16 -duration 1s -reps 3 -json pr8-klsmd
//
// Self-hosted (boots an in-process server on a loopback port, still over
// real HTTP; -persist puts the shards in a temporary durable directory):
//
//	klsmload -launch -shards 4 -workers 1,2,4 -batch 8,64 -json pr8-klsmd
//
// Rows are named klsmd(S=<shards>[,wal]); threads is the worker count and
// batch the items per request, matching the throughput tool's per-key op
// accounting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"klsm"
	"klsm/internal/harness"
	"klsm/internal/loadgen"
	"klsm/internal/server"
	"klsm/internal/stats"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running klsmd (e.g. http://127.0.0.1:7070)")
		launch      = flag.Bool("launch", false, "boot an in-process server on a loopback port instead of -addr")
		shards      = flag.Int("shards", 4, "shard count for -launch")
		k           = flag.Int("k", 256, "relaxation parameter for -launch")
		persist     = flag.Bool("persist", false, "-launch with durable shards in a temp directory")
		workersFlag = flag.String("workers", "1,2,4", "comma-separated worker counts")
		batchFlag   = flag.String("batch", "16", "comma-separated items-per-request sizes")
		duration    = flag.Duration("duration", time.Second, "timed phase length per rep")
		opsFlag     = flag.Int64("ops", 0, "bound reps by acked key count instead of -duration")
		mix         = flag.Float64("mix", 0.5, "fraction of requests that enqueue")
		topics      = flag.Int("topics", 16, "distinct topics (consistent-hashed onto shards)")
		prefillN    = flag.Int("prefill", 20_000, "keys enqueued before each rep's timed phase")
		keyRange    = flag.Uint64("keyrange", 0, "bound for random keys (0 = full uint64)")
		reps        = flag.Int("reps", 3, "repetitions per (workers, batch) point")
		seed        = flag.Uint64("seed", 1, "base workload seed")
		jsonTag     = flag.String("json", "", "write the sweep as BENCH_<tag>.json")
		jsonDir     = flag.String("jsondir", ".", "directory for the -json output file")
		drainAfter  = flag.Bool("drain", true, "globally drain the server between reps (keeps queue size from compounding)")
	)
	flag.Parse()

	base := *addr
	queueName := "klsmd"
	var shutdown func()
	if *launch {
		if base != "" {
			fatal(fmt.Errorf("-launch and -addr are mutually exclusive"))
		}
		dir := ""
		if *persist {
			d, err := os.MkdirTemp("", "klsmload-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(d)
			dir = d
		}
		srv, err := server.New(server.Config{
			Shards:       *shards,
			Dir:          dir,
			QueueOptions: []klsm.Option{klsm.WithRelaxation(*k)},
		})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(ln)
		base = "http://" + ln.Addr().String()
		queueName = fmt.Sprintf("klsmd(S=%d)", *shards)
		if *persist {
			queueName = fmt.Sprintf("klsmd(S=%d,wal)", *shards)
		}
		shutdown = func() {
			ctx, cancel := context.WithTimeout(context.Background(), server.ShutdownTimeout)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("# launched %s on %s\n", queueName, base)
	} else if base == "" {
		fatal(fmt.Errorf("need -addr or -launch"))
	}

	workers, err := harness.ParseIntList(*workersFlag)
	if err != nil {
		fatal(err)
	}
	batches, err := harness.ParseIntList(*batchFlag)
	if err != nil {
		fatal(err)
	}

	out := harness.NewBenchFile(*jsonTag)
	out.Prefill = *prefillN
	out.DurationS = duration.Seconds()
	out.Reps = *reps
	out.InsertMix = *mix
	out.KeyRange = *keyRange
	out.Seed = *seed

	fmt.Printf("# klsmd loadgen: base=%s mix=%.2f prefill=%d duration=%v reps=%d\n",
		base, *mix, *prefillN, *duration, *reps)
	fmt.Printf("%-20s %8s %8s %14s %10s %10s\n", "queue", "workers", "batch", "acked/w/s", "rejected", "errors")
	cli := loadgen.NewClient(base)
	for _, b := range batches {
		for _, w := range workers {
			var samples, failed []float64
			var rejected, errs int64
			for r := 0; r < *reps; r++ {
				res, err := loadgen.Run(loadgen.Config{
					BaseURL:     base,
					Workers:     w,
					Ops:         *opsFlag,
					Duration:    *duration,
					InsertRatio: *mix,
					Batch:       b,
					Topics:      *topics,
					KeyRange:    *keyRange,
					Seed:        *seed + uint64(r)*7919,
					Prefill:     *prefillN,
				})
				if err != nil {
					fatal(err)
				}
				samples = append(samples, res.PerWorkerPerSec)
				failed = append(failed, float64(res.FailedDeletes))
				rejected += res.Rejected
				errs += res.Errors
				if *drainAfter {
					if _, err := cli.Drain("*", -1, 4096, nil); err != nil {
						fatal(fmt.Errorf("inter-rep drain: %w", err))
					}
				}
			}
			s := stats.Summarize(samples)
			fmean := stats.Summarize(failed).Mean
			bp := harness.BenchPoint{
				Queue:             queueName,
				Threads:           w,
				MeanOpsPerThread:  s.Mean,
				CI95:              s.CI95,
				FailedDeletesMean: fmean,
			}
			if b > 1 {
				bp.Batch = b
			}
			out.Results = append(out.Results, bp)
			fmt.Printf("%-20s %8d %8d %14s %10d %10d\n", queueName, w, b,
				fmt.Sprintf("%.3gk ±%.2g", s.Mean/1e3, s.CI95/1e3), rejected, errs)
		}
	}

	if shutdown != nil {
		shutdown()
	}
	if *jsonTag != "" {
		path, err := out.Write(*jsonDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "klsmload:", err)
	os.Exit(1)
}
