// Command throughput regenerates the paper's Figure 3: throughput per
// thread per second of the 50/50 insert/delete-min benchmark over prefilled
// queues, for every comparison queue and thread count.
//
// Paper-scale invocation (Figure 3, left and right panels):
//
//	throughput -prefill 1000000  -threads 1,2,3,5,10,20,40,80 -duration 10s -reps 30
//	throughput -prefill 10000000 -threads 1,2,3,5,10,20,40,80 -duration 10s -reps 30
//
// The defaults are laptop-scale (smaller prefill, shorter runs, fewer
// repetitions) so the full sweep finishes in minutes; the shape of the
// curves — who wins, where relaxation pays off — is preserved.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"klsm/internal/harness"
	"klsm/internal/stats"
)

func main() {
	var (
		threadsFlag  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		queuesFlag   = flag.String("queues", "all", "comma-separated queue names or 'all'")
		prefill      = flag.Int("prefill", 100_000, "keys inserted before the timed phase")
		duration     = flag.Duration("duration", 500*time.Millisecond, "timed phase length")
		reps         = flag.Int("reps", 5, "repetitions per point (paper: 30)")
		keyRange     = flag.Uint64("keyrange", 0, "bound for random keys (0 = full uint64)")
		insertRatio  = flag.Float64("mix", 0.5, "fraction of inserts in the op mix (paper: 0.5)")
		seed         = flag.Uint64("seed", 1, "base workload seed")
		csv          = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		maxProcsInfo = flag.Bool("envinfo", true, "print environment header")
	)
	flag.Parse()

	threads, err := harness.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	specs, err := harness.LookupFigure3(*queuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}

	if *maxProcsInfo && !*csv {
		fmt.Printf("# Figure 3 throughput benchmark: prefill=%d duration=%v reps=%d GOMAXPROCS=%d\n",
			*prefill, *duration, *reps, runtime.GOMAXPROCS(0))
		fmt.Printf("# metric: successful operations / thread / second (mean ±95%% CI)\n")
	}
	if *csv {
		fmt.Println("queue,threads,prefill,duration_s,reps,mean_ops_per_thread_per_s,ci95,failed_deletes_mean")
	} else {
		fmt.Printf("%-12s", "queue")
		for _, t := range threads {
			fmt.Printf(" %14s", fmt.Sprintf("T=%d", t))
		}
		fmt.Println()
	}

	for _, spec := range specs {
		if !*csv {
			fmt.Printf("%-12s", spec.Name)
		}
		for _, t := range threads {
			var samples []float64
			var failed []float64
			for r := 0; r < *reps; r++ {
				res := harness.Throughput(harness.ThroughputConfig{
					Queue:       spec.New(t),
					Threads:     t,
					Prefill:     *prefill,
					Duration:    *duration,
					KeyRange:    *keyRange,
					InsertRatio: *insertRatio,
					Seed:        *seed + uint64(r)*7919,
				})
				samples = append(samples, res.PerThreadPerSec)
				failed = append(failed, float64(res.FailedDeletes))
			}
			s := stats.Summarize(samples)
			if *csv {
				fmt.Printf("%s,%d,%d,%.3f,%d,%.1f,%.1f,%.1f\n",
					spec.Name, t, *prefill, duration.Seconds(), *reps,
					s.Mean, s.CI95, stats.Summarize(failed).Mean)
			} else {
				fmt.Printf(" %14s", fmt.Sprintf("%.3gM ±%.1g", s.Mean/1e6, s.CI95/1e6))
			}
		}
		if !*csv {
			fmt.Println()
		}
	}
}
