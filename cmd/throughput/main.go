// Command throughput regenerates the paper's Figure 3: throughput per
// thread per second of the 50/50 insert/delete-min benchmark over prefilled
// queues, for every comparison queue and thread count.
//
// Paper-scale invocation (Figure 3, left and right panels):
//
//	throughput -prefill 1000000  -threads 1,2,3,5,10,20,40,80 -duration 10s -reps 30
//	throughput -prefill 10000000 -threads 1,2,3,5,10,20,40,80 -duration 10s -reps 30
//
// The defaults are laptop-scale (smaller prefill, shorter runs, fewer
// repetitions) so the full sweep finishes in minutes; the shape of the
// curves — who wins, where relaxation pays off — is preserved.
//
// With -batch B1,B2,... each queue is additionally swept through the v2
// batch API (InsertBatch/DrainMin moving B keys per call, ops still counted
// per key); -batch 0,8,64,512 produces the batch-vs-singles comparison of
// EXPERIMENTS.md E14.
//
// With -json <tag>, the full sweep is additionally written to
// BENCH_<tag>.json (see EXPERIMENTS.md for the recorded runs); -jsondir
// redirects the output directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"klsm/internal/harness"
	"klsm/internal/pqs"
	"klsm/internal/pqs/klsmp"
	"klsm/internal/stats"
)

func main() {
	var (
		threadsFlag  = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		queuesFlag   = flag.String("queues", "all", "comma-separated queue names or 'all'")
		prefill      = flag.Int("prefill", 100_000, "keys inserted before the timed phase")
		duration     = flag.Duration("duration", 500*time.Millisecond, "timed phase length")
		reps         = flag.Int("reps", 5, "repetitions per point (paper: 30)")
		keyRange     = flag.Uint64("keyrange", 0, "bound for random keys (0 = full uint64)")
		insertRatio  = flag.Float64("mix", 0.5, "fraction of inserts in the op mix (paper: 0.5)")
		batchFlag    = flag.String("batch", "0", "comma-separated batch sizes; 0 = single ops, B>1 = InsertBatch/DrainMin of B keys")
		persistFlag  = flag.String("persist", "", "comma-separated group-commit intervals (e.g. 0,1ms,2ms); each adds a persistent kLSM(256)+wal row backed by a real temp-dir WAL")
		seed         = flag.Uint64("seed", 1, "base workload seed")
		csv          = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonTag      = flag.String("json", "", "also write the sweep as BENCH_<tag>.json")
		jsonDir      = flag.String("jsondir", ".", "directory for the -json output file")
		maxProcsInfo = flag.Bool("envinfo", true, "print environment header")
	)
	flag.Parse()

	threads, err := harness.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	specs, err := harness.LookupFigure3(*queuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	batches, err := harness.ParseIntList(*batchFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	for _, b := range batches {
		// 0 is the single-op mode; 1 or negatives would silently run as
		// singles too and produce JSON rows indistinguishable from batch 0.
		if b != 0 && b < 2 {
			fmt.Fprintf(os.Stderr, "throughput: bad batch size %d (use 0 for single ops, or >= 2)\n", b)
			os.Exit(1)
		}
	}

	for _, part := range strings.Split(*persistFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "throughput: bad -persist interval %q: %v\n", part, err)
			os.Exit(1)
		}
		if d < 0 {
			fmt.Fprintf(os.Stderr, "throughput: negative -persist interval %q\n", part)
			os.Exit(1)
		}
		// The persistent twin of the default combined k-LSM: the same
		// engine behind klsm.Open, logging to a real temp-dir WAL with
		// group commit at interval d (0 = fsync only on close).
		specs = append(specs, harness.QueueSpec{
			Name: fmt.Sprintf("kLSM(256)+wal(%s)", d),
			New:  func(int) pqs.Queue { return klsmp.New(256, d) },
		})
	}

	if *maxProcsInfo && !*csv {
		fmt.Printf("# Figure 3 throughput benchmark: prefill=%d duration=%v reps=%d GOMAXPROCS=%d\n",
			*prefill, *duration, *reps, runtime.GOMAXPROCS(0))
		fmt.Printf("# metric: successful operations / thread / second (mean ±95%% CI)\n")
	}
	if *csv {
		fmt.Println("queue,batch,threads,prefill,duration_s,reps,mean_ops_per_thread_per_s,ci95,failed_deletes_mean")
	} else {
		fmt.Printf("%-12s", "queue")
		for _, t := range threads {
			fmt.Printf(" %14s", fmt.Sprintf("T=%d", t))
		}
		fmt.Println()
	}

	out := harness.NewBenchFile(*jsonTag)
	out.Prefill = *prefill
	out.DurationS = duration.Seconds()
	out.Reps = *reps
	out.InsertMix = *insertRatio
	out.KeyRange = *keyRange
	out.Seed = *seed
	for _, spec := range specs {
		for _, batch := range batches {
			label := spec.Name
			if batch > 1 {
				label = fmt.Sprintf("%s/b%d", spec.Name, batch)
			}
			if !*csv {
				fmt.Printf("%-12s", label)
			}
			for _, t := range threads {
				var samples []float64
				var failed []float64
				for r := 0; r < *reps; r++ {
					q := spec.New(t)
					res := harness.Throughput(harness.ThroughputConfig{
						Queue:       q,
						Threads:     t,
						Prefill:     *prefill,
						Duration:    *duration,
						KeyRange:    *keyRange,
						InsertRatio: *insertRatio,
						Seed:        *seed + uint64(r)*7919,
						BatchSize:   batch,
					})
					// Persistent queues hold a WAL and a temp directory;
					// releasing them between reps keeps runs independent.
					if c, ok := q.(io.Closer); ok {
						if err := c.Close(); err != nil {
							fmt.Fprintln(os.Stderr, "throughput: close:", err)
							os.Exit(1)
						}
					}
					samples = append(samples, res.PerThreadPerSec)
					failed = append(failed, float64(res.FailedDeletes))
				}
				s := stats.Summarize(samples)
				fmean := stats.Summarize(failed).Mean
				bp := harness.BenchPoint{
					Queue:             spec.Name,
					Threads:           t,
					MeanOpsPerThread:  s.Mean,
					CI95:              s.CI95,
					FailedDeletesMean: fmean,
				}
				if batch > 1 {
					bp.Batch = batch
				}
				out.Results = append(out.Results, bp)
				if *csv {
					fmt.Printf("%s,%d,%d,%d,%.3f,%d,%.1f,%.1f,%.1f\n",
						spec.Name, batch, t, *prefill, duration.Seconds(), *reps,
						s.Mean, s.CI95, fmean)
				} else {
					fmt.Printf(" %14s", fmt.Sprintf("%.3gM ±%.1g", s.Mean/1e6, s.CI95/1e6))
				}
			}
			if !*csv {
				fmt.Println()
			}
		}
	}

	if *jsonTag != "" {
		path, err := out.Write(*jsonDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "throughput:", err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("# wrote %s\n", path)
		}
	}
}
