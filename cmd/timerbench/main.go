// Command timerbench measures the timerq deadline manager against a
// hierarchical timing wheel and against itself at strict relaxation
// (k = 0), over the three mixes a timer subsystem lives on:
//
//   - insert: threads schedule fresh timers with uniformly random future
//     deadlines as fast as they can (connection-setup storms).
//   - cancel: a prefilled pending set is churned with a configurable
//     cancellation fraction (-cancelmix, default 0.5): each op either
//     cancels a live timer or schedules a replacement (timeouts that
//     almost never fire — the I/O-timeout pattern). A sampler records the
//     physical footprint across the run; the series endpoints land in the
//     JSON "extra" field to document that lazy cancellation plus the
//     pressure heuristic keeps the structure bounded instead of
//     accumulating every tombstone.
//   - expire: a prefilled pending set whose deadlines are spread across
//     -ticks tick instants is drained tick by tick, threads racing to
//     claim ticks and batch-expire them (the steady-state tick loop).
//
// Paper-scale invocation (EXPERIMENTS.md E20):
//
//	timerbench -timers 1000000 -threads 1,4,8 -reps 5 -json pr10-timer-sweep
//
// The defaults are laptop-scale so the full sweep finishes in well under a
// minute; the shape — where the wheel's single mutex saturates, what
// relaxation buys at expiry, whether cancel-heavy footprint stays flat —
// is preserved.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"klsm"
	"klsm/internal/harness"
	"klsm/internal/pqs/timingwheel"
	"klsm/internal/stats"
	"klsm/timerq"
)

// base anchors every deadline in the bench; any in-window instant works.
var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// tickDur is the tick resolution: deadlines quantize to it in the expire
// workload and the wheel resolves to it.
const tickDur = time.Millisecond

// engine abstracts the two contenders behind the operations the workloads
// need. Payloads are a bare int — the identity is what's measured.
type engine interface {
	Schedule(deadline time.Time, payload int) uint64
	Cancel(id uint64) bool
	// Expire fires every timer due at or before now, returning the count.
	Expire(now time.Time) int
	Len() int
	// Footprint is the physical entry count: pending plus unreclaimed
	// tombstones for timerq, identical to Len for the eager-cancel wheel.
	Footprint() int
}

type timerqEngine struct{ q *timerq.Queue[int] }

func (e *timerqEngine) Schedule(d time.Time, p int) uint64 {
	id, err := e.q.Schedule(d, p)
	if err != nil {
		panic(err) // bench deadlines are always in-window
	}
	return uint64(id)
}
func (e *timerqEngine) Cancel(id uint64) bool { return e.q.Cancel(timerq.TimerID(id)) }
func (e *timerqEngine) Expire(now time.Time) int {
	return e.q.Expire(now, func(timerq.TimerID, time.Time, int) {})
}
func (e *timerqEngine) Len() int       { return e.q.Len() }
func (e *timerqEngine) Footprint() int { return e.q.Footprint() }

type wheelEngine struct{ w *timingwheel.Wheel[int] }

func (e *wheelEngine) Schedule(d time.Time, p int) uint64 {
	return uint64(e.w.Schedule(d, p))
}
func (e *wheelEngine) Cancel(id uint64) bool { return e.w.Cancel(timingwheel.ID(id)) }
func (e *wheelEngine) Expire(now time.Time) int {
	return e.w.Advance(now, func(timingwheel.ID, int) {})
}
func (e *wheelEngine) Len() int       { return e.w.Len() }
func (e *wheelEngine) Footprint() int { return e.w.Len() }

type engineSpec struct {
	name string
	new  func() engine
}

func specs() []engineSpec {
	tq := func(k int) func() engine {
		return func() engine {
			return &timerqEngine{q: timerq.New[int](
				timerq.WithQueueOptions(klsm.WithRelaxation(k)),
			)}
		}
	}
	return []engineSpec{
		{"wheel", func() engine { return &wheelEngine{w: timingwheel.New[int](base, tickDur)} }},
		{"timerq(k=0)", tq(0)},
		{"timerq(k=256)", tq(256)},
		{"timerq(k=1024)", tq(1024)},
	}
}

func main() {
	var (
		threadsFlag = flag.String("threads", "1,4,8", "comma-separated thread counts")
		queuesFlag  = flag.String("queues", "all", "comma-separated engine names or 'all'")
		workFlag    = flag.String("workloads", "insert,cancel,expire", "comma-separated workload names")
		timers      = flag.Int("timers", 200_000, "pending-timer population per run (paper scale: 1000000+)")
		cancelMix   = flag.Float64("cancelmix", 0.5, "cancellation fraction of the cancel workload (>= 0.5 for the bounded-footprint claim)")
		duration    = flag.Duration("duration", 500*time.Millisecond, "timed-phase length of the cancel workload")
		ticks       = flag.Int("ticks", 512, "tick instants the expire workload spreads deadlines over")
		reps        = flag.Int("reps", 3, "repetitions per point")
		seed        = flag.Uint64("seed", 1, "base workload seed")
		jsonTag     = flag.String("json", "", "also write the sweep as BENCH_<tag>.json")
		jsonDir     = flag.String("jsondir", ".", "directory for the -json output file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "timerbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	threads, err := harness.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerbench:", err)
		os.Exit(1)
	}
	engines, err := pickEngines(*queuesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerbench:", err)
		os.Exit(1)
	}
	workloads, err := pickWorkloads(*workFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timerbench:", err)
		os.Exit(1)
	}
	if *cancelMix < 0 || *cancelMix > 1 {
		fmt.Fprintf(os.Stderr, "timerbench: -cancelmix %v out of [0,1]\n", *cancelMix)
		os.Exit(1)
	}

	fmt.Printf("# timer subsystem benchmark: timers=%d cancelmix=%.2f ticks=%d reps=%d GOMAXPROCS=%d\n",
		*timers, *cancelMix, *ticks, *reps, runtime.GOMAXPROCS(0))
	fmt.Printf("# metric: operations / thread / second (mean ±95%% CI); extra columns per workload\n")

	out := harness.NewBenchFile(*jsonTag)
	out.Prefill = *timers
	out.DurationS = duration.Seconds()
	out.Reps = *reps
	out.InsertMix = 1 - *cancelMix
	out.Seed = *seed

	cfg := benchConfig{
		timers:    *timers,
		cancelMix: *cancelMix,
		duration:  *duration,
		ticks:     *ticks,
		reps:      *reps,
		seed:      *seed,
	}
	for _, wl := range workloads {
		fmt.Printf("\n## workload: %s\n", wl.name)
		for _, es := range engines {
			for _, t := range threads {
				pt := wl.run(es, t, cfg)
				out.Results = append(out.Results, pt)
				fmt.Printf("%-16s T=%-3d %12.0f ±%-10.0f %s\n",
					es.name, t, pt.MeanOpsPerThread, pt.CI95, extraString(pt.Extra))
			}
		}
	}

	if *jsonTag != "" {
		path, err := out.Write(*jsonDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timerbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", path)
	}
}

type benchConfig struct {
	timers    int
	cancelMix float64
	duration  time.Duration
	ticks     int
	reps      int
	seed      uint64
}

type workload struct {
	name string
	run  func(es engineSpec, threads int, cfg benchConfig) harness.BenchPoint
}

func pickEngines(names string) ([]engineSpec, error) {
	all := specs()
	if names == "all" {
		return all, nil
	}
	var out []engineSpec
	for _, name := range splitList(names) {
		found := false
		for _, es := range all {
			if es.name == name {
				out = append(out, es)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown engine %q", name)
		}
	}
	return out, nil
}

func pickWorkloads(names string) ([]workload, error) {
	all := map[string]workload{
		"insert": {"insert", runInsert},
		"cancel": {"cancel", runCancel},
		"expire": {"expire", runExpire},
	}
	var out []workload
	for _, name := range splitList(names) {
		wl, ok := all[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		out = append(out, wl)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// deadlineIn returns a deadline on one of cfg.ticks tick instants past base.
func deadlineIn(rng *rand.Rand, ticks int) time.Time {
	return base.Add(time.Duration(1+rng.Intn(ticks)) * tickDur)
}

// runInsert times T threads scheduling timers/T fresh timers each.
func runInsert(es engineSpec, threads int, cfg benchConfig) harness.BenchPoint {
	perThread := cfg.timers / threads
	samples := make([]float64, 0, cfg.reps)
	for rep := 0; rep < cfg.reps; rep++ {
		e := es.new()
		var wg sync.WaitGroup
		start := time.Now()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(rep*threads+t)))
				for i := 0; i < perThread; i++ {
					e.Schedule(deadlineIn(rng, cfg.ticks), i)
				}
			}(t)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		samples = append(samples, float64(perThread)/elapsed)
	}
	s := stats.Summarize(samples)
	return harness.BenchPoint{
		Queue: es.name, Threads: threads, Workload: "insert",
		MeanOpsPerThread: s.Mean, CI95: s.CI95,
	}
}

// runCancel churns a prefilled population: each op cancels a live timer
// with probability cancelMix, else schedules a replacement. A sampler
// records the footprint series; its endpoints document boundedness.
func runCancel(es engineSpec, threads int, cfg benchConfig) harness.BenchPoint {
	samples := make([]float64, 0, cfg.reps)
	var extra map[string]float64
	for rep := 0; rep < cfg.reps; rep++ {
		e := es.new()
		// Prefill, remembering ids per worker so cancels stay thread-local.
		pools := make([][]uint64, threads)
		perThread := cfg.timers / threads
		var pwg sync.WaitGroup
		for t := 0; t < threads; t++ {
			pwg.Add(1)
			go func(t int) {
				defer pwg.Done()
				rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(1000+rep*threads+t)))
				pool := make([]uint64, 0, perThread*2)
				for i := 0; i < perThread; i++ {
					pool = append(pool, e.Schedule(deadlineIn(rng, cfg.ticks), i))
				}
				pools[t] = pool
			}(t)
		}
		pwg.Wait()

		var (
			stop    atomic.Bool
			ops     atomic.Int64
			sampMu  sync.Mutex
			fpSamps []float64
		)
		// Footprint sampler: ~20 samples across the timed phase.
		var swg sync.WaitGroup
		swg.Add(1)
		go func() {
			defer swg.Done()
			interval := cfg.duration / 20
			if interval < time.Millisecond {
				interval = time.Millisecond
			}
			for !stop.Load() {
				fp := float64(e.Footprint())
				sampMu.Lock()
				fpSamps = append(fpSamps, fp)
				sampMu.Unlock()
				time.Sleep(interval)
			}
		}()

		var wg sync.WaitGroup
		start := time.Now()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(2000+rep*threads+t)))
				pool := pools[t]
				n := int64(0)
				for !stop.Load() {
					if len(pool) > 0 && rng.Float64() < cfg.cancelMix {
						i := rng.Intn(len(pool))
						e.Cancel(pool[i])
						pool[i] = pool[len(pool)-1]
						pool = pool[:len(pool)-1]
					} else {
						pool = append(pool, e.Schedule(deadlineIn(rng, cfg.ticks), t))
					}
					n++
				}
				ops.Add(n)
			}(t)
		}
		time.Sleep(cfg.duration)
		stop.Store(true)
		wg.Wait()
		swg.Wait()
		elapsed := time.Since(start).Seconds()
		samples = append(samples, float64(ops.Load())/float64(threads)/elapsed)

		if rep == cfg.reps-1 {
			fpEnd := float64(e.Footprint())
			live := float64(e.Len())
			maxFP, midFP := 0.0, 0.0
			if len(fpSamps) > 0 {
				for _, f := range fpSamps {
					if f > maxFP {
						maxFP = f
					}
				}
				midFP = fpSamps[len(fpSamps)/2]
			}
			extra = map[string]float64{
				"live_end":      live,
				"footprint_end": fpEnd,
				"footprint_mid": midFP,
				"footprint_max": maxFP,
			}
			if live > 0 {
				extra["fp_over_live_end"] = fpEnd / live
			}
		}
	}
	s := stats.Summarize(samples)
	return harness.BenchPoint{
		Queue: es.name, Threads: threads, Workload: "cancel",
		MeanOpsPerThread: s.Mean, CI95: s.CI95, Extra: extra,
	}
}

// runExpire is the steady-state tick loop: timers are prefilled across
// cfg.ticks instants, then threads race to claim ticks; the claimer of
// tick k batch-expires everything due at it AND schedules a tick's worth
// of replacement timers at future deadlines, keeping the pending
// population roughly constant — the shape a live timeout manager actually
// runs (expiry never happens in a vacuum; new work arrives while old work
// fires). After the last tick a final sweep drains the replacements. The
// metric is fired timers per thread per second over the whole loop, so an
// engine whose schedule path drags (strict k = 0 consolidates the shared
// structure on nearly every insert) pays for it where a timer subsystem
// would: in delivered-expiry throughput.
func runExpire(es engineSpec, threads int, cfg benchConfig) harness.BenchPoint {
	samples := make([]float64, 0, cfg.reps)
	var extra map[string]float64
	for rep := 0; rep < cfg.reps; rep++ {
		e := es.new()
		perThread := cfg.timers / threads
		var pwg sync.WaitGroup
		for t := 0; t < threads; t++ {
			pwg.Add(1)
			go func(t int) {
				defer pwg.Done()
				rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(3000+rep*threads+t)))
				for i := 0; i < perThread; i++ {
					e.Schedule(deadlineIn(rng, cfg.ticks), i)
				}
			}(t)
		}
		pwg.Wait()
		total := perThread * threads
		perTick := cfg.timers / cfg.ticks

		var (
			tick  atomic.Int64
			fired atomic.Int64
			wg    sync.WaitGroup
		)
		start := time.Now()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(4000+rep*threads+t)))
				for {
					k := tick.Add(1)
					if k > int64(cfg.ticks) {
						return
					}
					fired.Add(int64(e.Expire(base.Add(time.Duration(k) * tickDur))))
					// Replacements land strictly after the tick sweep's
					// horizon, uniformly over one more window.
					for i := 0; i < perTick; i++ {
						d := base.Add(time.Duration(int(k)+1+rng.Intn(cfg.ticks)) * tickDur)
						e.Schedule(d, i)
					}
				}
			}(t)
		}
		wg.Wait()
		// Final sweep: collect the replacements (and any stragglers the
		// racing bounded drains left — tick claim order is not monotonic).
		fired.Add(int64(e.Expire(base.Add(time.Duration(2*cfg.ticks+2) * tickDur))))
		elapsed := time.Since(start).Seconds()
		want := int64(total + cfg.ticks*perTick)
		if got := fired.Load(); got != want {
			fmt.Fprintf(os.Stderr, "timerbench: %s expire fired %d of %d\n", es.name, got, want)
			os.Exit(1)
		}
		samples = append(samples, float64(fired.Load())/float64(threads)/elapsed)
		if rep == cfg.reps-1 {
			extra = map[string]float64{"footprint_end": float64(e.Footprint())}
		}
	}
	s := stats.Summarize(samples)
	return harness.BenchPoint{
		Queue: es.name, Threads: threads, Workload: "expire",
		MeanOpsPerThread: s.Mean, CI95: s.CI95, Extra: extra,
	}
}

func extraString(extra map[string]float64) string {
	if extra == nil {
		return ""
	}
	keys := []string{"live_end", "footprint_mid", "footprint_end", "footprint_max", "fp_over_live_end"}
	out := ""
	for _, k := range keys {
		if v, ok := extra[k]; ok {
			out += fmt.Sprintf(" %s=%.0f", k, v)
		}
	}
	return out
}
