package klsm

import (
	"testing"

	"klsm/internal/xrand"
)

// TestPooledAllocationBudget is the §4.4 acceptance bar: with pooling on
// (the default), steady-state insert + try-delete-min must average at most
// one heap allocation per operation on a warmed-up queue. The remaining
// trickle is the item slab (1/256 inserts) plus rare free-list growth; the
// block-per-insert and slice-per-merge garbage of the unpooled path must be
// gone.
func TestPooledAllocationBudget(t *testing.T) {
	q := New[struct{}]()
	h := q.NewHandle()
	rng := xrand.NewSeeded(3)

	// Prefill and churn enough to reach the steady state: the LSM levels
	// the mix touches exist, the free lists are warm, and overflow to the
	// shared k-LSM happens on its regular cadence.
	const prefill = 50_000
	for i := 0; i < prefill; i++ {
		h.Insert(rng.Uint64(), struct{}{})
	}
	for i := 0; i < 100_000; i++ {
		if rng.Bool() {
			h.Insert(rng.Uint64(), struct{}{})
		} else {
			h.TryDeleteMin()
		}
	}

	const opsPerRun = 2000
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < opsPerRun/2; i++ {
			h.Insert(rng.Uint64(), struct{}{})
			h.TryDeleteMin()
		}
	})
	perOp := allocs / opsPerRun
	t.Logf("steady-state allocations: %.4f per op (%.0f per %d ops)", perOp, allocs, opsPerRun)
	if perOp > 1.0 {
		t.Fatalf("pooled steady state allocates %.3f per op, budget is <= 1", perOp)
	}
}

// TestPoolingToggleSemantics: WithPooling(false) must change only the
// allocation profile, never observable behavior.
func TestPoolingToggleSemantics(t *testing.T) {
	on := New[int]()
	off := New[int](WithPooling(false))
	hOn, hOff := on.NewHandle(), off.NewHandle()
	rng := xrand.NewSeeded(11)
	for op := 0; op < 20_000; op++ {
		if rng.Bool() {
			k := rng.Uint64n(1 << 30)
			hOn.Insert(k, int(k))
			hOff.Insert(k, int(k))
		} else {
			k1, v1, ok1 := hOn.TryDeleteMin()
			k2, v2, ok2 := hOff.TryDeleteMin()
			if ok1 != ok2 || k1 != k2 || v1 != v2 {
				t.Fatalf("op %d: pooled (%d,%d,%v) != unpooled (%d,%d,%v)",
					op, k1, v1, ok1, k2, v2, ok2)
			}
		}
	}
	if on.Size() != off.Size() {
		t.Fatalf("Size %d != %d", on.Size(), off.Size())
	}
}
