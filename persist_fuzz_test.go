package klsm

import (
	"strings"
	"testing"

	"klsm/internal/segment"
	"klsm/internal/wal"
)

// walSeed builds a valid little WAL image for the fuzz corpus.
func walSeed() []byte {
	var b []byte
	b = wal.AppendRecord(b, wal.Op{Seq: 1, Key: 42, Value: []byte("v")})
	b = wal.AppendRecord(b, wal.Op{Seq: 2, Key: 7})
	b = wal.AppendRecord(b, wal.Op{Delete: true, Seq: 1, Key: 42})
	return b
}

// FuzzWALReplay throws arbitrary bytes at the WAL decoder. The contract
// under attack: Scan never panics, never allocates proportionally to a
// length field (only to real input), and classifies every input as clean,
// torn, or corrupt — with GoodLen always a prefix of the input that rescans
// cleanly to the same records. This is the decoder recovery trusts with a
// file that a crash, a disk, or an attacker may have mangled arbitrarily.
func FuzzWALReplay(f *testing.F) {
	seed := walSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add([]byte{})           // empty log
	f.Add(seed[3:])           // misaligned start
	flip := append([]byte(nil), seed...)
	flip[6] ^= 0x40 // payload damage in the first record
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // keep the forward corruption probe O(n²) affordable
		}
		var ops []wal.Op
		res, err := wal.Scan(data, func(op wal.Op) {
			ops = append(ops, wal.Op{Delete: op.Delete, Seq: op.Seq, Key: op.Key,
				Value: append([]byte(nil), op.Value...)})
		})
		if res.GoodLen < 0 || res.GoodLen > int64(len(data)) {
			t.Fatalf("GoodLen %d outside [0, %d]", res.GoodLen, len(data))
		}
		if err != nil {
			return // refused: typed error, no further guarantees to check
		}
		if res.Records != len(ops) {
			t.Fatalf("Records = %d, emitted %d", res.Records, len(ops))
		}
		if res.Torn == (res.GoodLen == int64(len(data))) && len(data) > 0 {
			t.Fatalf("Torn = %v inconsistent with GoodLen %d of %d", res.Torn, res.GoodLen, len(data))
		}
		// The clean prefix must rescan to exactly the same records: this is
		// what recovery truncates to and appends after.
		var again int
		res2, err2 := wal.Scan(data[:res.GoodLen], func(op wal.Op) {
			if op.Delete != ops[again].Delete || op.Seq != ops[again].Seq || op.Key != ops[again].Key {
				t.Fatalf("rescan record %d mismatch", again)
			}
			again++
		})
		if err2 != nil || res2.Torn || again != len(ops) {
			t.Fatalf("clean prefix rescan: err=%v torn=%v records=%d/%d", err2, res2.Torn, again, len(ops))
		}
	})
}

// FuzzManifestParse throws arbitrary bytes at the MANIFEST parser: never a
// panic, never unbounded allocation — hostile counts are rejected before any
// slice is sized, and every accepted manifest re-encodes to bytes that parse
// back equal.
func FuzzManifestParse(f *testing.F) {
	good := segment.AppendManifest(nil, segment.Manifest{
		NextSeq:  99,
		WAL:      "wal-000002",
		Segments: []segment.Ref{{Name: "seg-000001", Count: 3}},
	})
	f.Add(good)
	f.Add([]byte("klsm-manifest v1\n"))
	f.Add([]byte("klsm-manifest v1\nnextseq 1\nwal wal-000001\ncrc deadbeef\n"))
	trunc := append([]byte(nil), good[:len(good)-4]...)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		m, err := segment.ParseManifest(data)
		if err != nil {
			return
		}
		if strings.ContainsAny(m.WAL, "/\\") {
			t.Fatalf("accepted manifest with path separator in WAL name %q", m.WAL)
		}
		reenc := segment.AppendManifest(nil, m)
		m2, err := segment.ParseManifest(reenc)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if m2.NextSeq != m.NextSeq || m2.WAL != m.WAL || len(m2.Segments) != len(m.Segments) {
			t.Fatal("manifest round trip mismatch")
		}
	})
}

// FuzzSegmentParse throws arbitrary bytes at the checkpoint-segment parser:
// the whole-file checksum gate means random input is virtually always
// refused, and refusal must be a typed error — never a panic, never an
// allocation driven by an unvalidated count field.
func FuzzSegmentParse(f *testing.F) {
	good := segment.Append(nil, []segment.Entry{
		{Key: 1, Seq: 10, Value: []byte("a")},
		{Key: 2, Seq: 11},
	})
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add([]byte("KLSMSEG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		entries, err := segment.Parse(data)
		if err != nil {
			return
		}
		reenc := segment.Append(nil, entries)
		back, err := segment.Parse(reenc)
		if err != nil {
			t.Fatalf("re-encoded segment rejected: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("segment round trip: %d entries back, want %d", len(back), len(entries))
		}
	})
}
