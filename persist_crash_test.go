package klsm

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"klsm/internal/segment"
	"klsm/internal/wal"
	"klsm/internal/walfault"
	"klsm/internal/xrand"
)

// ledger is one worker's view of its own operations' durability. A Sync
// that returns nil acknowledges every operation the worker performed before
// the call (program order gives the happens-before); everything after is
// uncertain until the next ack.
type ledger struct {
	ackedIns map[uint64]bool // keys inserted and acknowledged
	pendIns  map[uint64]bool // inserted, not yet acknowledged
	ackedDel map[uint64]bool // deleted and acknowledged
	pendDel  map[uint64]bool // deleted, not yet acknowledged
}

func newLedger() *ledger {
	return &ledger{
		ackedIns: map[uint64]bool{},
		pendIns:  map[uint64]bool{},
		ackedDel: map[uint64]bool{},
		pendDel:  map[uint64]bool{},
	}
}

// ack moves pending operations to acknowledged.
func (l *ledger) ack() {
	for k := range l.pendIns {
		l.ackedIns[k] = true
		delete(l.pendIns, k)
	}
	for k := range l.pendDel {
		l.ackedDel[k] = true
		delete(l.pendDel, k)
	}
}

// TestCrashRecoveryStress is the tentpole's acceptance test: 100+ simulated
// kill -9 cycles against a persistent queue under concurrent load, with
// fault injection garbling torn tails, verifying after every crash that
//
//   - every acknowledged insert whose delete was never logged is recovered
//     exactly once,
//   - no key is ever recovered twice,
//   - acknowledged deletes stay deleted,
//   - every recovered key was actually inserted (no fabrication),
//
// where "acknowledged" means a Sync covering the operation returned nil
// before the crash. Runs under -race in CI: the crash fires from a separate
// goroutine mid-operation, exactly like a signal would.
func TestCrashRecoveryStress(t *testing.T) {
	cycles := 120
	if testing.Short() {
		cycles = 25
	}
	const workers = 4
	fs := walfault.NewMemFS(walfault.Faults{TornGarbleRate: 2, Seed: 2024})
	rng := xrand.NewSeeded(4242)
	nextKey := uint64(0) // unique key source, partitioned per worker by stride

	var refusals, tornRecoveries int
	expectLive := map[uint64]bool{} // acked inserts that must be recovered
	neverAgain := map[uint64]bool{} // acked deletes: must never reappear

	for cycle := 0; cycle < cycles; cycle++ {
		q, err := openFS(fs, "mem", NoValue{}, WithSyncInterval(5*time.Millisecond))
		if err != nil {
			// Provable mid-log corruption: the injected bit flip landed in
			// the torn tail with complete records after it. Open must refuse
			// (never panic, never silently drop). The operator repair is to
			// truncate at the damaged record, discarding it and everything
			// after — all of which was un-fsynced at the crash (the flip
			// lands in the torn tail) and therefore unacknowledged.
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("cycle %d: Open failed with non-corruption error: %v", cycle, err)
			}
			refusals++
			m, merr := segment.ReadManifest(fs)
			if merr != nil {
				t.Fatalf("cycle %d: manifest unreadable during repair: %v", cycle, merr)
			}
			data, rerr := fs.ReadFile(m.WAL)
			if rerr != nil {
				t.Fatalf("cycle %d: WAL unreadable during repair: %v", cycle, rerr)
			}
			res, serr := wal.Scan(data, func(wal.Op) {})
			if serr == nil {
				t.Fatalf("cycle %d: Open refused but rescan found no corruption", cycle)
			}
			if terr := fs.Truncate(m.WAL, res.GoodLen); terr != nil {
				t.Fatalf("cycle %d: repair truncate: %v", cycle, terr)
			}
			q, err = openFS(fs, "mem", NoValue{}, WithSyncInterval(5*time.Millisecond))
			if err != nil {
				t.Fatalf("cycle %d: Open after repair: %v", cycle, err)
			}
		}
		if q.PersistStats().Recovery.TornBytes > 0 {
			tornRecoveries++
		}

		// Verify the recovered content against the previous cycle's ledger
		// conclusions, draining the queue empty (the drain logs deletes,
		// which the pre-crash Sync below acknowledges).
		h := q.NewHandle()
		seen := map[uint64]bool{}
		misses := 0
		for misses < 3 {
			k, _, ok := h.TryDeleteMin()
			if !ok {
				if q.Size() == 0 {
					misses++
				}
				continue
			}
			misses = 0
			if seen[k] {
				t.Fatalf("cycle %d: key %d recovered twice (duplicate)", cycle, k)
			}
			if neverAgain[k] {
				t.Fatalf("cycle %d: acked-deleted key %d resurrected", cycle, k)
			}
			seen[k] = true
		}
		for k := range expectLive {
			if !seen[k] {
				t.Fatalf("cycle %d: acked insert %d lost", cycle, k)
			}
		}
		for k := range seen {
			if k >= nextKey {
				t.Fatalf("cycle %d: fabricated key %d (never inserted)", cycle, k)
			}
		}
		h.Close()
		if err := q.Sync(); err != nil {
			t.Fatalf("cycle %d: ack of verification drain: %v", cycle, err)
		}
		// The drain's deletes are now acknowledged: everything just seen is
		// gone for good and must never be recovered again.
		for k := range seen {
			neverAgain[k] = true
		}

		// Concurrent op phase: workers insert unique keys, delete, and sync
		// on their own cadence while the driver pulls the plug.
		keyBase := nextKey
		ledgers := make([]*ledger, workers)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			w := w
			led := newLedger()
			ledgers[w] = led
			wrng := xrand.NewSeeded(uint64(cycle)*131 + uint64(w) + 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				wh := q.NewHandle()
				local := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Yield every iteration: on a single-CPU machine the
					// spinning workers would otherwise starve the WAL writer
					// goroutine and the group-commit timer, leaving nothing
					// on "disk" to tear.
					runtime.Gosched()
					switch r := wrng.Intn(100); {
					case r == 99: // rare explicit ack: the torn-tail window stays wide
						if err := q.Sync(); err == nil {
							led.ack()
						}
					case r >= 80:
						if k, _, ok := wh.TryDeleteMin(); ok {
							led.pendDel[k] = true
						}
					default:
						key := keyBase + local*workers + uint64(w)
						local++
						wh.Insert(key, struct{}{})
						led.pendIns[key] = true
					}
				}
			}()
		}
		// Let the workers run briefly, then kill everything mid-flight. The
		// window straddles the 5ms group-commit interval, so some cycles
		// crash with everything synced, some with a fat unsynced tail.
		time.Sleep(time.Duration(3000+rng.Intn(12000)) * time.Microsecond)
		fs.Crash()
		close(stop)
		wg.Wait()
		q.p.log.Abandon()
		nextKey = keyBase + 16*workers*1_000_000 // new unique range next cycle

		// Merge the worker ledgers into next cycle's expectations. A pending
		// delete makes its key uncertain; an acked delete forbids it; an
		// acked insert with no delete logged anywhere must survive.
		ackedIns := map[uint64]bool{}
		delAcked := map[uint64]bool{}
		delAny := map[uint64]bool{}
		for _, led := range ledgers {
			for k := range led.ackedIns {
				ackedIns[k] = true
			}
			for k := range led.ackedDel {
				delAcked[k] = true
				delAny[k] = true
			}
			for k := range led.pendDel {
				delAny[k] = true
			}
		}
		expectLive = map[uint64]bool{}
		for k := range ackedIns {
			if !delAny[k] {
				expectLive[k] = true
			}
		}
		// Acked deletes must stay deleted across all future cycles. (A
		// worker's delete can target another worker's insert; the WAL's
		// file-order guarantee — durable delete implies durable insert —
		// makes the classification sound regardless of which worker acked.)
		for k := range delAcked {
			if expectLive[k] {
				t.Fatalf("cycle %d: key %d both acked-live and acked-deleted", cycle, k)
			}
			neverAgain[k] = true
		}
	}
	t.Logf("%d cycles: %d corruption refusals (repaired), %d torn-tail truncations",
		cycles, refusals, tornRecoveries)
	if refusals == 0 && !testing.Short() {
		t.Log("note: no mid-log corruption refusal exercised this seed")
	}
}
