package klsm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"klsm/internal/segment"
	"klsm/internal/walfault"
	"klsm/internal/xrand"
)

// crashQueue simulates kill -9: the filesystem tears its unsynced tails and
// invalidates handles, then the WAL writer goroutine is reaped. The queue
// object is garbage afterwards, exactly like a dead process's heap.
func crashQueue[V any](q *Queue[V], fs *walfault.MemFS) {
	fs.Crash()
	q.p.log.Abandon()
}

// drainAllStrings empties a single-threaded queue, returning the multiset
// of key/value pairs as "key/value" strings.
func drainAllStrings(t *testing.T, q *Queue[string]) map[string]int {
	t.Helper()
	h := q.NewHandle()
	defer h.Close()
	got := map[string]int{}
	misses := 0
	for i := 0; ; i++ {
		if i > 10_000_000 {
			t.Fatal("drain did not terminate")
		}
		k, v, ok := h.TryDeleteMin()
		if !ok {
			if q.Size() == 0 {
				misses++
				if misses >= 3 {
					return got
				}
			}
			continue
		}
		misses = 0
		got[fmt.Sprintf("%d/%s", k, v)]++
	}
}

func TestPersistFreshOpenEmpty(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 1})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	ps := q.PersistStats()
	if ps.Recovery.Recovered {
		t.Fatal("fresh directory reported as recovered")
	}
	if ps.NextSeq != 1 {
		t.Fatalf("NextSeq = %d on fresh queue", ps.NextSeq)
	}
	if q.Size() != 0 {
		t.Fatalf("fresh queue has %d items", q.Size())
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
}

// Clean close → reopen must reproduce the exact key/value multiset,
// including batch inserts and values, with deleted items gone.
func TestPersistRoundTripCleanClose(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 2})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	rng := xrand.NewSeeded(99)
	model := map[string]int{}
	for i := 0; i < 1500; i++ {
		k := rng.Uint64n(1 << 20)
		v := fmt.Sprintf("v%d", i)
		h.Insert(k, v)
		model[fmt.Sprintf("%d/%s", k, v)]++
	}
	// A couple of batches, one with nil values.
	keys := make([]uint64, 300)
	vals := make([]string, 300)
	for i := range keys {
		keys[i] = rng.Uint64n(1 << 20)
		vals[i] = fmt.Sprintf("b%d", i)
		model[fmt.Sprintf("%d/%s", keys[i], vals[i])]++
	}
	h.InsertBatch(keys, vals)
	nilKeys := []uint64{7, 7, 9}
	h.InsertBatch(nilKeys, nil)
	for _, k := range nilKeys {
		model[fmt.Sprintf("%d/", k)]++
	}
	// Delete a slice of the minimum, via both single pops and a drain.
	for i := 0; i < 400; i++ {
		k, v, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		key := fmt.Sprintf("%d/%s", k, v)
		if model[key] == 0 {
			t.Fatalf("deleted unknown pair %s", key)
		}
		model[key]--
	}
	for _, kv := range h.DrainMin(nil, 200) {
		key := fmt.Sprintf("%d/%s", kv.Key, kv.Value)
		if model[key] == 0 {
			t.Fatalf("drained unknown pair %s", key)
		}
		model[key]--
	}
	h.Close()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	if !q2.PersistStats().Recovery.Recovered {
		t.Fatal("reopen not marked recovered")
	}
	got := drainAllStrings(t, q2)
	for kv, n := range model {
		if n == 0 {
			delete(model, kv)
		}
	}
	if len(got) != len(model) {
		t.Fatalf("recovered %d distinct pairs, want %d", len(got), len(model))
	}
	for kv, n := range model {
		if got[kv] != n {
			t.Fatalf("pair %s: recovered %d, want %d", kv, got[kv], n)
		}
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
}

// After a crash, every op covered by a nil Sync survives exactly once and
// acked deletes stay deleted.
func TestPersistCrashKeepsAcked(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 3})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	acked := map[string]int{}
	for i := 0; i < 100; i++ {
		k := uint64(1000 + i)
		h.Insert(k, fmt.Sprintf("a%d", i))
		acked[fmt.Sprintf("%d/a%d", k, i)]++
	}
	// Delete the 10 smallest, then ack everything so far.
	for i := 0; i < 10; i++ {
		k, v, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		key := fmt.Sprintf("%d/%s", k, v)
		if acked[key] == 0 {
			t.Fatalf("deleted unknown pair %s", key)
		}
		delete(acked, key)
	}
	if err := q.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unacked churn: may or may not survive, but only at most once each.
	for i := 0; i < 50; i++ {
		h.Insert(uint64(5000+i), fmt.Sprintf("u%d", i))
	}
	crashQueue(q, fs)

	q2, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	got := drainAllStrings(t, q2)
	for kv := range acked {
		if got[kv] != 1 {
			t.Fatalf("acked pair %s recovered %d times, want exactly 1", kv, got[kv])
		}
		delete(got, kv)
	}
	for kv, n := range got {
		if n != 1 {
			t.Fatalf("pair %s recovered %d times", kv, n)
		}
		var k uint64
		var v string
		if _, err := fmt.Sscanf(kv, "%d/%s", &k, &v); err != nil || k < 5000 || v[0] != 'u' {
			t.Fatalf("recovered pair %s is neither acked nor pending", kv)
		}
	}
	q2.Close()
}

// Checkpoint moves state into segments, resets the WAL, and survives both a
// clean close and a crash afterwards.
func TestPersistCheckpoint(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 4})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	model := map[string]int{}
	for i := 0; i < 3000; i++ {
		k := uint64(i * 7 % 4096)
		v := fmt.Sprintf("c%d", i)
		h.Insert(k, v)
		model[fmt.Sprintf("%d/%s", k, v)]++
	}
	for i := 0; i < 500; i++ {
		k, v, ok := h.TryDeleteMin()
		if !ok {
			t.Fatal("unexpected empty")
		}
		model[fmt.Sprintf("%d/%s", k, v)]--
	}
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ps := q.PersistStats()
	if ps.Checkpoints != 1 || ps.Segments == 0 {
		t.Fatalf("after checkpoint: %+v", ps)
	}
	m, err := segment.ReadManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 || m.WAL == "wal-000001" {
		t.Fatalf("manifest not rotated: %+v", m)
	}
	if data, err := fs.ReadFile(m.WAL); err != nil || len(data) != 0 {
		t.Fatalf("new WAL not empty: %d bytes, %v", len(data), err)
	}
	if _, err := fs.ReadFile("wal-000001"); err == nil {
		t.Fatal("old WAL not removed after checkpoint")
	}

	// Post-checkpoint ops land in the new WAL; ack them; crash.
	for i := 0; i < 200; i++ {
		k := uint64(100_000 + i)
		v := fmt.Sprintf("p%d", i)
		h.Insert(k, v)
		model[fmt.Sprintf("%d/%s", k, v)]++
	}
	if err := q.Sync(); err != nil {
		t.Fatal(err)
	}
	crashQueue(q, fs)

	q2, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	rs := q2.PersistStats().Recovery
	if rs.SegmentItems == 0 {
		t.Fatalf("recovery loaded no segment items: %+v", rs)
	}
	got := drainAllStrings(t, q2)
	for kv, n := range model {
		if n == 0 {
			delete(model, kv)
		}
	}
	if len(got) != len(model) {
		t.Fatalf("recovered %d distinct pairs, want %d", len(got), len(model))
	}
	for kv, n := range model {
		if got[kv] != n {
			t.Fatalf("pair %s: recovered %d, want %d", kv, got[kv], n)
		}
	}
	q2.Close()
}

// Close-then-op semantics: typed errors from error-returning operations,
// ErrClosed panics from error-less ones.
func TestPersistCloseSemantics(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 5})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	h.Insert(1, "one")
	h.Close()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := q.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	mustPanicClosed := func(name string, f func()) {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrClosed) {
				t.Fatalf("%s after Close: panic %v, want ErrClosed", name, r)
			}
		}()
		f()
	}
	h2 := &Handle[string]{q: q} // stand-in: real handles cannot be created on a closed queue
	mustPanicClosed("Handle.Insert", func() { h2.Insert(2, "two") })
	mustPanicClosed("Handle.TryDeleteMin", func() { h2.TryDeleteMin() })
	mustPanicClosed("Queue.Insert", func() { q.Insert(3, "three") })
	mustPanicClosed("Queue.TryDeleteMin", func() { q.TryDeleteMin() })
	mustPanicClosed("Queue.NewHandle", func() { q.NewHandle() })
}

// Close works (and gates ops) on plain New queues too.
func TestCloseNonPersistent(t *testing.T) {
	q := New[int]()
	q.Insert(1, 1) // puts a registry handle in play
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close: %v", err)
	}
	if err := q.Checkpoint(); !errors.Is(err, ErrNotPersistent) {
		t.Fatalf("Checkpoint on New queue: %v, want ErrNotPersistent", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Insert after Close did not panic")
		}
	}()
	q.Insert(2, 2)
}

func TestNewPanicsWithPersistence(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("New(WithPersistence) did not panic")
		}
	}()
	New[int](WithPersistence("/tmp/nope"))
}

func TestMeldPanicsOnPersistentQueue(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 6})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	other := New[string]()
	h := q.NewHandle()
	defer h.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Meld on persistent queue did not panic")
		}
	}()
	h.Meld(other)
}

// Mid-log WAL corruption (a flipped bit in durable data with intact records
// after it) must refuse with ErrCorruptWAL, never recover silently.
func TestOpenRejectsMidLogCorruptWAL(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 7})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	for i := 0; i < 50; i++ {
		h.Insert(uint64(i), "x")
	}
	h.Close()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit early in the durable image: records after it are intact.
	if err := fs.FlipBit("wal-000001", 40*8+3); err != nil {
		t.Fatal(err)
	}
	if _, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0)); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("Open on corrupt WAL: %v, want ErrCorruptWAL", err)
	}
}

// A corrupted checkpoint segment must refuse with ErrCorruptCheckpoint.
func TestOpenRejectsCorruptSegment(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 8})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	for i := 0; i < 500; i++ {
		h.Insert(uint64(i), fmt.Sprintf("s%d", i))
	}
	h.Close()
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m, err := segment.ReadManifest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipBit(m.Segments[0].Name, 100*8); err != nil {
		t.Fatal(err)
	}
	if _, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0)); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("Open on corrupt segment: %v, want ErrCorruptCheckpoint", err)
	}
}

// A corrupted MANIFEST must refuse with ErrCorruptCheckpoint.
func TestOpenRejectsCorruptManifest(t *testing.T) {
	fs := walfault.NewMemFS(walfault.Faults{Seed: 9})
	q, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipBit(segment.ManifestName, 8*8); err != nil {
		t.Fatal(err)
	}
	if _, err := openFS(fs, "mem", StringValue{}, WithSyncInterval(0)); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("Open on corrupt manifest: %v, want ErrCorruptCheckpoint", err)
	}
}

// OpenOrdered over the real filesystem (walfault.OS), with a key codec and
// the JSON value codec — the full public persistence surface end to end.
func TestOpenOrderedRealFS(t *testing.T) {
	dir := t.TempDir()
	type task struct {
		Name string
		N    int
	}
	q, err := OpenOrdered[int64](dir, Int64Key(), JSONValue[task](), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	q.Insert(-5, task{Name: "urgent", N: 1})
	q.Insert(10, task{Name: "later", N: 2})
	q.Insert(0, task{Name: "zero", N: 3})
	if err := q.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	q.Insert(-20, task{Name: "urgent2", N: 4})
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenOrdered[int64](dir, Int64Key(), JSONValue[task](), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		k int64
		n int
	}{{-20, 4}, {-5, 1}, {0, 3}, {10, 2}}
	for _, w := range want {
		k, v, ok := q2.TryDeleteMin()
		if !ok || k != w.k || v.N != w.n {
			t.Fatalf("pop: got (%d,%+v,%v), want key %d n %d", k, v, ok, w.k, w.n)
		}
	}
	if _, _, ok := q2.TryDeleteMin(); ok {
		t.Fatal("queue not empty after draining")
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
}

// Recovery speed acceptance: a million-item queue must reopen in seconds.
func TestRecoverMillionItems(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-item recovery test skipped in -short")
	}
	fs := walfault.NewMemFS(walfault.Faults{Seed: 10})
	q, err := openFS(fs, "mem", NoValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	h := q.NewHandle()
	const total = 1_000_000
	const chunk = 100_000
	keys := make([]uint64, chunk)
	rng := xrand.NewSeeded(77)
	for off := 0; off < total; off += chunk {
		for i := range keys {
			keys[i] = rng.Uint64n(1 << 40)
		}
		h.InsertBatch(keys, nil)
	}
	h.Close()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	q2, err := openFS(fs, "mem", NoValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if q2.Size() != total {
		t.Fatalf("recovered %d items, want %d", q2.Size(), total)
	}
	t.Logf("recovered %d items from WAL in %v", total, elapsed)
	if elapsed > 30*time.Second {
		t.Fatalf("recovery took %v — acceptance is seconds, not minutes", elapsed)
	}
	// Checkpoint, then recover again from segments: must be at least as fast.
	if err := q2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	q3, err := openFS(fs, "mem", NoValue{}, WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	segElapsed := time.Since(start)
	if q3.Size() != total {
		t.Fatalf("segment recovery got %d items, want %d", q3.Size(), total)
	}
	t.Logf("recovered %d items from segments in %v", total, segElapsed)
	q3.Close()
}
