package klsm

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"klsm/internal/segment"
	"klsm/internal/wal"
	"klsm/internal/walfault"
	"klsm/internal/xrand"
)

// fuseDisarmed is the fuse value that never counts down to a kill.
const fuseDisarmed = 1 << 60

// fuseFS wraps a MemFS so a simulated kill stops the whole filesystem, not
// just pre-crash file handles: once the fuse counts down to zero (or kill is
// called), every later operation — including Create and Rename through fresh
// handles — fails with ErrCrashed. Without this, a background checkpoint
// goroutine that outlives the "kill" by a few microseconds could still stage
// files and publish manifests, which no dead process can do. The fuse makes
// the kill land on an exact filesystem-operation boundary, so a sweep of
// fuse values crashes a checkpoint between any two of its steps.
type fuseFS struct {
	m      *walfault.MemFS
	fuse   atomic.Int64
	halted atomic.Bool
}

func newFuseFS(m *walfault.MemFS) *fuseFS {
	f := &fuseFS{m: m}
	f.fuse.Store(fuseDisarmed)
	return f
}

func (f *fuseFS) op() error {
	if f.halted.Load() {
		return walfault.ErrCrashed
	}
	if f.fuse.Add(-1) <= 0 {
		f.kill()
		return walfault.ErrCrashed
	}
	return nil
}

// kill halts the filesystem and crashes the disk image (idempotent).
func (f *fuseFS) kill() {
	if !f.halted.Swap(true) {
		f.m.Crash()
	}
}

// revive re-arms the filesystem for the next process lifetime.
func (f *fuseFS) revive() {
	f.fuse.Store(fuseDisarmed)
	f.halted.Store(false)
}

func (f *fuseFS) Create(name string) (walfault.File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	h, err := f.m.Create(name)
	if err != nil {
		return nil, err
	}
	return &fuseFile{File: h, fs: f}, nil
}

func (f *fuseFS) Append(name string) (walfault.File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	h, err := f.m.Append(name)
	if err != nil {
		return nil, err
	}
	return &fuseFile{File: h, fs: f}, nil
}

func (f *fuseFS) ReadFile(name string) ([]byte, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.m.ReadFile(name)
}

func (f *fuseFS) Rename(oldname, newname string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.m.Rename(oldname, newname)
}

func (f *fuseFS) Remove(name string) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.m.Remove(name)
}

func (f *fuseFS) Truncate(name string, size int64) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.m.Truncate(name, size)
}

func (f *fuseFS) List() ([]string, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.m.List()
}

func (f *fuseFS) SyncDir() error {
	if err := f.op(); err != nil {
		return err
	}
	return f.m.SyncDir()
}

type fuseFile struct {
	walfault.File
	fs *fuseFS
}

func (h *fuseFile) Write(p []byte) (int, error) {
	if err := h.fs.op(); err != nil {
		return 0, err
	}
	return h.File.Write(p)
}

func (h *fuseFile) Sync() error {
	if err := h.fs.op(); err != nil {
		return err
	}
	return h.File.Sync()
}

// testCrash finishes a simulated kill for a queue whose filesystem has
// already been halted: the scheduler goroutine is stopped (its in-flight
// checkpoint attempt fails fast against the halted FS) and the WAL writer is
// abandoned without flushing, exactly as a real kill drops both.
func (p *persister[V]) testCrash() {
	if p.sched != nil {
		p.sched.Stop()
	}
	p.log.Abandon()
}

// TestAutoCheckpointCrashStress runs the crash-recovery stress cycle with the
// automatic checkpoint scheduler enabled and aggressive triggers, so kills
// land before, during and after scheduled checkpoints (the op-count fuse
// places some kills on exact filesystem-operation boundaries inside a
// checkpoint: after the M1 manifest, between rotation and compaction, mid
// segment write, before the retired-file removals). After every crash it
// asserts, before reopening:
//
//   - every file the on-disk MANIFEST names (live WAL, frozen WALs,
//     segments) still exists — a checkpoint or orphan sweep must never
//     remove a manifest-named file, whatever it was doing when killed;
//   - recovery then restores every acknowledged insert exactly once and
//     resurrects no acknowledged delete (the same ledger rules as
//     TestCrashRecoveryStress).
func TestAutoCheckpointCrashStress(t *testing.T) {
	cycles := 80
	if testing.Short() {
		cycles = 20
	}
	const workers = 4
	raw := walfault.NewMemFS(walfault.Faults{TornGarbleRate: 4, Seed: 77})
	fs := newFuseFS(raw)
	rng := xrand.NewSeeded(7777)
	nextKey := uint64(0)

	opts := []Option{
		WithSyncInterval(5 * time.Millisecond),
		WithAutoCheckpoint(4<<10, 5*time.Millisecond),
	}

	var refusals, frozenRecoveries, fuseKills int
	var autoCkpts, autoFails int64
	expectLive := map[uint64]bool{}
	neverAgain := map[uint64]bool{}

	// repairChain truncates provable mid-log corruption out of every WAL in
	// the manifest chain — the operator procedure when garbled torn bytes
	// land ahead of intact records. Everything dropped was unsynced at the
	// crash, hence unacknowledged.
	repairChain := func(cycle int) {
		m, err := segment.ReadManifest(raw)
		if err != nil {
			t.Fatalf("cycle %d: manifest unreadable during repair: %v", cycle, err)
		}
		repaired := false
		for _, name := range append(append([]string(nil), m.Frozen...), m.WAL) {
			data, err := raw.ReadFile(name)
			if err != nil {
				t.Fatalf("cycle %d: %s unreadable during repair: %v", cycle, name, err)
			}
			res, serr := wal.Scan(data, func(wal.Op) {})
			if serr != nil {
				if terr := raw.Truncate(name, res.GoodLen); terr != nil {
					t.Fatalf("cycle %d: repair truncate %s: %v", cycle, name, terr)
				}
				repaired = true
			}
		}
		if !repaired {
			t.Fatalf("cycle %d: Open refused but rescan found no corruption", cycle)
		}
	}

	for cycle := 0; cycle < cycles; cycle++ {
		fs.revive()
		q, err := openFS[struct{}](fs, "mem", NoValue{}, opts...)
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("cycle %d: Open failed with non-corruption error: %v", cycle, err)
			}
			refusals++
			repairChain(cycle)
			q, err = openFS[struct{}](fs, "mem", NoValue{}, opts...)
			if err != nil {
				t.Fatalf("cycle %d: Open after repair: %v", cycle, err)
			}
		}
		if q.PersistStats().Recovery.FrozenWALs > 0 {
			frozenRecoveries++
		}

		// Verify recovered content against the previous cycle's ledger.
		h := q.NewHandle()
		seen := map[uint64]bool{}
		misses := 0
		for misses < 3 {
			k, _, ok := h.TryDeleteMin()
			if !ok {
				if q.Size() == 0 {
					misses++
				}
				continue
			}
			misses = 0
			if seen[k] {
				t.Fatalf("cycle %d: key %d recovered twice (duplicate)", cycle, k)
			}
			if neverAgain[k] {
				t.Fatalf("cycle %d: acked-deleted key %d resurrected", cycle, k)
			}
			seen[k] = true
		}
		for k := range expectLive {
			if !seen[k] {
				t.Fatalf("cycle %d: acked insert %d lost", cycle, k)
			}
		}
		for k := range seen {
			if k >= nextKey {
				t.Fatalf("cycle %d: fabricated key %d (never inserted)", cycle, k)
			}
		}
		h.Close()
		if err := q.Sync(); err != nil {
			t.Fatalf("cycle %d: ack of verification drain: %v", cycle, err)
		}
		for k := range seen {
			neverAgain[k] = true
		}

		// Op phase: concurrent workers while checkpoints fire on size/age
		// triggers. Half the cycles arm the fuse so the kill lands on an
		// exact fs-op boundary; the rest kill on a timer.
		if rng.Intn(2) == 0 {
			fs.fuse.Store(int64(5 + rng.Intn(60)))
		}
		keyBase := nextKey
		ledgers := make([]*ledger, workers)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			w := w
			led := newLedger()
			ledgers[w] = led
			wrng := xrand.NewSeeded(uint64(cycle)*977 + uint64(w) + 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				wh := q.NewHandle()
				local := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					runtime.Gosched()
					switch r := wrng.Intn(100); {
					case r == 99:
						if err := q.Sync(); err == nil {
							led.ack()
						}
					case r >= 80:
						if k, _, ok := wh.TryDeleteMin(); ok {
							led.pendDel[k] = true
						}
					default:
						key := keyBase + local*workers + uint64(w)
						local++
						wh.Insert(key, struct{}{})
						led.pendIns[key] = true
					}
				}
			}()
		}
		time.Sleep(time.Duration(4000+rng.Intn(16000)) * time.Microsecond)
		if fs.halted.Load() {
			fuseKills++
		}
		fs.kill()
		close(stop)
		wg.Wait()
		st := q.PersistStats()
		autoCkpts += st.AutoCheckpoints
		autoFails += st.AutoCheckpointFailures
		q.p.testCrash()
		nextKey = keyBase + 16*workers*1_000_000

		// Whatever the checkpoint was doing when killed, every file the
		// committed manifest names must still exist.
		m, err := segment.ReadManifest(raw)
		if err != nil {
			t.Fatalf("cycle %d: manifest unreadable after crash: %v", cycle, err)
		}
		names, err := raw.List()
		if err != nil {
			t.Fatalf("cycle %d: List after crash: %v", cycle, err)
		}
		have := map[string]bool{}
		for _, n := range names {
			have[n] = true
		}
		needed := append(append([]string(nil), m.Frozen...), m.WAL)
		for _, ref := range m.Segments {
			needed = append(needed, ref.Name)
		}
		for _, n := range needed {
			if !have[n] {
				t.Fatalf("cycle %d: manifest-named file %s missing after crash (manifest: wal=%s frozen=%v segments=%d)",
					cycle, n, m.WAL, m.Frozen, len(m.Segments))
			}
		}

		// Merge ledgers into next cycle's expectations.
		ackedIns := map[uint64]bool{}
		delAcked := map[uint64]bool{}
		delAny := map[uint64]bool{}
		for _, led := range ledgers {
			for k := range led.ackedIns {
				ackedIns[k] = true
			}
			for k := range led.ackedDel {
				delAcked[k] = true
				delAny[k] = true
			}
			for k := range led.pendDel {
				delAny[k] = true
			}
		}
		expectLive = map[uint64]bool{}
		for k := range ackedIns {
			if !delAny[k] {
				expectLive[k] = true
			}
		}
		for k := range delAcked {
			if expectLive[k] {
				t.Fatalf("cycle %d: key %d both acked-live and acked-deleted", cycle, k)
			}
			neverAgain[k] = true
		}
	}
	t.Logf("%d cycles: %d auto checkpoints (%d failed attempts), %d fuse kills, %d frozen-WAL recoveries, %d corruption refusals",
		cycles, autoCkpts, autoFails, fuseKills, frozenRecoveries, refusals)
	if autoCkpts == 0 && !testing.Short() {
		t.Error("no automatic checkpoint completed across the whole run — triggers never fired")
	}
}

// TestCheckpointKillSweep kills a checkpoint at every filesystem-operation
// boundary in turn: iteration n lets exactly n operations through before the
// crash, so collectively the sweep crashes after the staged-WAL create, mid
// M1 manifest write, before and after the rotation, mid segment write, mid M2
// manifest write, and between each retired-file removal. Every cut must leave
// a directory that (a) still contains every manifest-named file and (b)
// recovers exactly the acknowledged live set — no step of a checkpoint is
// allowed to need a later step for correctness.
func TestCheckpointKillSweep(t *testing.T) {
	const keys = 20
	const deleted = 5
	var failedCuts, frozenCuts, cleanRuns int
	for n := 1; n <= 48; n++ {
		raw := walfault.NewMemFS(walfault.Faults{})
		fs := newFuseFS(raw)
		q, err := openFS[struct{}](fs, "mem", NoValue{})
		if err != nil {
			t.Fatalf("n=%d: open: %v", n, err)
		}
		h := q.NewHandle()
		for i := 0; i < keys; i++ {
			h.Insert(uint64(i), struct{}{})
		}
		for i := 0; i < deleted; i++ {
			if _, _, ok := h.TryDeleteMin(); !ok {
				t.Fatalf("n=%d: queue empty at delete %d", n, i)
			}
		}
		h.Close()
		if err := q.Sync(); err != nil {
			t.Fatalf("n=%d: ack: %v", n, err)
		}

		fs.fuse.Store(int64(n))
		if err := q.p.checkpoint(); err != nil {
			failedCuts++
		} else if !fs.halted.Load() {
			cleanRuns++
		}
		fs.kill()
		q.p.testCrash()

		m, err := segment.ReadManifest(raw)
		if err != nil {
			t.Fatalf("n=%d: manifest unreadable after kill: %v", n, err)
		}
		names, err := raw.List()
		if err != nil {
			t.Fatalf("n=%d: List: %v", n, err)
		}
		have := map[string]bool{}
		for _, name := range names {
			have[name] = true
		}
		needed := append(append([]string(nil), m.Frozen...), m.WAL)
		for _, ref := range m.Segments {
			needed = append(needed, ref.Name)
		}
		for _, name := range needed {
			if !have[name] {
				t.Fatalf("n=%d: manifest-named file %s missing after mid-checkpoint kill", n, name)
			}
		}

		fs.revive()
		q2, err := openFS[struct{}](fs, "mem", NoValue{})
		if err != nil {
			t.Fatalf("n=%d: reopen after mid-checkpoint kill: %v", n, err)
		}
		if q2.PersistStats().Recovery.FrozenWALs > 0 {
			frozenCuts++
		}
		got := q2.DrainMin(nil, keys+1)
		if len(got) != keys-deleted {
			t.Fatalf("n=%d: recovered %d items, want %d (%v)", n, len(got), keys-deleted, got)
		}
		for i, kv := range got {
			if want := uint64(deleted + i); kv.Key != want {
				t.Fatalf("n=%d: item %d = key %d, want %d", n, i, kv.Key, want)
			}
		}
		if err := q2.Close(); err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
	}
	t.Logf("sweep: %d cuts failed the checkpoint, %d recovered through frozen WALs, %d ran to completion",
		failedCuts, frozenCuts, cleanRuns)
	if failedCuts == 0 || frozenCuts == 0 || cleanRuns == 0 {
		t.Errorf("sweep missed a regime: failedCuts=%d frozenCuts=%d cleanRuns=%d — widen the fuse range",
			failedCuts, frozenCuts, cleanRuns)
	}
}
