package klsm

import (
	"encoding/binary"
	"math"
	"time"
)

// KeyCodec maps an application key type K into the engine's uint64 priority
// space, preserving order: for every pair of keys a <= b (in K's intended
// order), Encode(a) <= Encode(b) must hold, with smaller encoded values
// meaning higher priority. The queue engine itself stays a uint64 machine —
// a codec is a pure, stateless translation layer applied at the API
// boundary, so it adds no synchronization and no per-item state.
//
// Decode inverts Encode for the codecs where that is possible. Codecs that
// discard information (StringPrefixKey) document what Decode returns
// instead; applications that need the exact original key should carry it in
// the payload V and treat the key purely as a priority.
//
// Custom codecs plug in by implementing this interface; the order
// requirement above is the entire contract. CheckKeyCodec provides a
// randomized self-check for codec authors, and the built-in codecs are
// covered by property tests.
type KeyCodec[K any] interface {
	// Encode maps key into the uint64 priority space, preserving order.
	Encode(key K) uint64
	// Decode maps an encoded priority back to a key. For lossy codecs the
	// result is the canonical representative of the encoding (see the
	// specific codec's documentation).
	Decode(enc uint64) K
}

// uint64Codec is the identity codec.
type uint64Codec struct{}

func (uint64Codec) Encode(key uint64) uint64 { return key }
func (uint64Codec) Decode(enc uint64) uint64 { return enc }

// Uint64Key returns the identity codec for native uint64 priorities — the
// v1 key type, for callers migrating to the ordered API without changing
// their key space.
func Uint64Key() KeyCodec[uint64] { return uint64Codec{} }

// int64Codec flips the sign bit, mapping math.MinInt64..math.MaxInt64
// monotonically onto 0..math.MaxUint64.
type int64Codec struct{}

func (int64Codec) Encode(key int64) uint64 { return uint64(key) ^ (1 << 63) }
func (int64Codec) Decode(enc uint64) int64 { return int64(enc ^ (1 << 63)) }

// Int64Key returns the order-preserving codec for signed 64-bit keys:
// negative priorities sort before positive ones, exactly as int64 ordering
// dictates. Encode and Decode are exact inverses.
func Int64Key() KeyCodec[int64] { return int64Codec{} }

// float64Codec implements the classic total-order bit trick: non-negative
// floats have their sign bit set (shifting them above all negatives), and
// negative floats are bitwise complemented (reversing their backwards bit
// order). The result is IEEE 754 totalOrder:
//
//	-NaN < -Inf < negative finites < -0 < +0 < positive finites < +Inf < +NaN
type float64Codec struct{}

func (float64Codec) Encode(key float64) uint64 {
	bits := math.Float64bits(key)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

func (float64Codec) Decode(enc uint64) float64 {
	if enc&(1<<63) != 0 {
		return math.Float64frombits(enc &^ (1 << 63))
	}
	return math.Float64frombits(^enc)
}

// Float64Key returns the order-preserving codec for float64 keys with the
// IEEE 754 totalOrder treatment of the special values: every NaN bit
// pattern gets a definite position (negative NaNs below -Inf, positive NaNs
// above +Inf) instead of poisoning comparisons, and -0 sorts immediately
// before +0. On non-NaN keys the order is the ordinary < on float64.
// Encode and Decode are exact inverses (bit-for-bit, including NaN
// payloads).
func Float64Key() KeyCodec[float64] { return float64Codec{} }

// timeKeyMin and timeKeyMax are the edges of the UnixNano-representable
// window: the earliest and latest instants whose nanoseconds-since-1970
// count fits an int64 (April 1677 and April 2262, roughly). time.Unix
// normalizes the out-of-range nanosecond argument, so both are exact.
var (
	timeKeyMin = time.Unix(0, math.MinInt64)
	timeKeyMax = time.Unix(0, math.MaxInt64)
)

// TimeKeyRangeError reports a time.Time key outside the UnixNano-encodable
// window (see TimeKey). It is returned by CheckTimeKey — and through it by
// deadline-accepting APIs like timerq.Schedule — for callers that must
// reject rather than clamp.
type TimeKeyRangeError struct {
	// Key is the offending instant.
	Key time.Time
}

// Error implements error.
func (e *TimeKeyRangeError) Error() string {
	side := "after"
	edge := timeKeyMax
	if e.Key.Before(timeKeyMin) {
		side, edge = "before", timeKeyMin
	}
	return "klsm: time key " + e.Key.Format(time.RFC3339) + " is " + side +
		" the UnixNano-encodable window edge " + edge.Format(time.RFC3339)
}

// CheckTimeKey reports whether t can be encoded exactly by TimeKey: it
// returns nil for instants inside the UnixNano window (edges included) and
// a *TimeKeyRangeError outside it, where Encode clamps. Deadline APIs call
// this to reject unrepresentable deadlines instead of silently saturating.
func CheckTimeKey(t time.Time) error {
	if t.Before(timeKeyMin) || t.After(timeKeyMax) {
		return &TimeKeyRangeError{Key: t}
	}
	return nil
}

// timeCodec maps through UnixNano with the int64 sign-bit flip, clamping
// instants outside the representable window to its edges (UnixNano itself is
// undefined there — the unguarded conversion used to wrap silently and
// mis-order by up to the whole key space).
type timeCodec struct{}

func (timeCodec) Encode(key time.Time) uint64 {
	if key.Before(timeKeyMin) {
		return 0
	}
	if key.After(timeKeyMax) {
		return ^uint64(0)
	}
	return uint64(key.UnixNano()) ^ (1 << 63)
}
func (timeCodec) Decode(enc uint64) time.Time { return time.Unix(0, int64(enc^(1<<63))).UTC() }

// TimeKey returns the order-preserving codec for time.Time keys (earlier
// instants are higher priority — the natural shape for deadline and
// event-simulation queues). Keys are mapped through UnixNano, so exact
// encoding covers instants representable in nanoseconds since 1970, roughly
// years 1678 through 2262. Instants outside that window are clamped to the
// corresponding window edge — ordering against every in-window key is
// preserved (weakly: all earlier-than-window instants collapse to one
// priority, likewise all later-than-window ones) instead of the silent
// integer wraparound that would order year 2263 before 1970. Callers that
// need to reject rather than clamp use CheckTimeKey, which returns a typed
// *TimeKeyRangeError. Decode returns the instant in UTC with nanosecond
// precision: the monotonic reading and location of the original are not
// round-tripped (time.Time.Equal still holds), and clamped keys decode to
// the window edge they clamped to.
func TimeKey() KeyCodec[time.Time] { return timeCodec{} }

// stringPrefixCodec packs the first 8 bytes big-endian.
type stringPrefixCodec struct{}

func (stringPrefixCodec) Encode(key string) uint64 {
	var enc uint64
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		enc |= uint64(key[i]) << (56 - 8*uint(i))
	}
	return enc
}

func (stringPrefixCodec) Decode(enc uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], enc)
	n := 8
	for n > 0 && buf[n-1] == 0 {
		n--
	}
	return string(buf[:n])
}

// StringPrefixKey returns the codec for string keys ordered by their first
// 8 bytes (big-endian packed). It is weakly order-preserving: a <= b always
// implies Encode(a) <= Encode(b), so the relaxation bound holds over the
// true lexicographic order — but strings sharing an 8-byte prefix collapse
// to the same priority and tie-break arbitrarily among themselves, and
// trailing NUL bytes are indistinguishable from absent bytes. Decode
// returns the canonical representative: the prefix with trailing NULs
// trimmed. Keep the full string in the payload when it matters.
func StringPrefixKey() KeyCodec[string] { return stringPrefixCodec{} }

// CheckKeyCodec verifies the KeyCodec order contract on a caller-supplied
// sample of keys: whenever cmp(a, b) < 0, the codec must order the pair
// strictly — Encode(a) < Encode(b). Pairs the codec is allowed to collapse
// to one priority must therefore compare equal under cmp (return 0 for
// them); this is how a deliberately lossy codec like StringPrefixKey is
// checked (cmp treating prefix-equal strings as equal), while an
// accidentally collapsing codec fails on the pairs cmp declared distinct.
// It returns the first offending pair, or ok = true. Intended for codec
// authors' tests; the built-in codecs pass it by construction.
func CheckKeyCodec[K any](codec KeyCodec[K], keys []K, cmp func(a, b K) int) (a, b K, ok bool) {
	for i := range keys {
		for j := range keys {
			ea, eb := codec.Encode(keys[i]), codec.Encode(keys[j])
			if cmp(keys[i], keys[j]) < 0 && ea >= eb {
				return keys[i], keys[j], false
			}
		}
	}
	var za, zb K
	return za, zb, true
}
