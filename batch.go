package klsm

// KV is one key/payload pair, as returned by the batch drain operations.
type KV[K, V any] struct {
	// Key is the priority key the pair was inserted under.
	Key K
	// Value is the payload inserted with the key.
	Value V
}

// InsertBatch inserts len(keys) keys in one structural operation. The batch
// is sorted once and published as a single block at level ⌈log₂n⌉ — one
// merge cascade for the whole batch instead of n independent insert
// cascades, which is the LSM's own internal batching (§4.1) surfaced at the
// API; for pre-sorted input the sort degenerates to a verification scan.
// Each key becomes visible to every handle at the batch block's publication,
// and the relaxation bound ρ = T·k is preserved for every batch size
// (oversized blocks overflow to the shared structure exactly like merged
// ones). values supplies the payloads pairwise; it may be nil, inserting
// zero values, but any non-nil values must have len(values) == len(keys) or
// InsertBatch panics.
// On a persistent queue the batch reserves a contiguous run of durability
// sequence numbers, logs one WAL record per key, and publishes the block
// stamped with them; the whole batch is durable once a Sync covering it
// returns.
func (h *Handle[V]) InsertBatch(keys []uint64, values []V) {
	if p := h.persist(); p != nil {
		h.insertBatchLogged(p, keys, values)
		return
	}
	h.h.InsertBatch(keys, values)
}

// insertBatchLogged is the persistent InsertBatch path: validate first (a
// length mismatch must panic before any record is logged), then log, then
// publish.
func (h *Handle[V]) insertBatchLogged(p *persister[V], keys []uint64, values []V) {
	if values != nil && len(values) != len(keys) {
		panic("klsm: InsertBatch: len(values) != len(keys)")
	}
	n := len(keys)
	if n == 0 {
		return
	}
	end := p.seq.Add(uint64(n))
	base := end - uint64(n) + 1
	seqs := make([]uint64, n)
	var zero V
	for i, k := range keys {
		seqs[i] = base + uint64(i)
		v := zero
		if values != nil {
			v = values[i]
		}
		h.vbuf = p.appendInsert(h.vbuf[:0], k, v, seqs[i])
	}
	h.h.InsertBatchSeqs(keys, values, seqs)
}

// DrainMin removes up to n items, appends them to dst in pop order, and
// returns the extended slice (append semantics: pass a nil or recycled
// slice). Each pop individually satisfies the relaxed TryDeleteMin
// contract; the drain stops early when the queue is relaxed-empty, so
// len(result) - len(dst) < n signals emptiness exactly like a false
// TryDeleteMin. The candidate window persists across the pops, making a
// steady-state drain one window build plus n O(1) pops.
// On a persistent queue every pop logs its delete record, with the same
// acknowledgement rule as TryDeleteMin.
func (h *Handle[V]) DrainMin(dst []KV[uint64, V], n int) []KV[uint64, V] {
	if p := h.persist(); p != nil {
		h.h.DrainMinSeq(n, func(k uint64, v V, seq uint64) {
			p.appendDelete(k, seq)
			dst = append(dst, KV[uint64, V]{Key: k, Value: v})
		})
		return dst
	}
	h.h.DrainMin(n, func(k uint64, v V) {
		dst = append(dst, KV[uint64, V]{Key: k, Value: v})
	})
	return dst
}

// DrainMinBounded is DrainMin restricted to keys at or below bound: it
// removes up to n items with qualifying keys, appends them to dst in pop
// order, and returns the extended slice. The drain stops early when no
// reachable key <= bound remains (see TryDeleteMinBounded for the strength
// of that signal); a short result therefore means "nothing further is due",
// not necessarily "the queue is empty". The per-pop relaxation contract and
// the persistent-queue logging rule match DrainMin exactly.
func (h *Handle[V]) DrainMinBounded(dst []KV[uint64, V], n int, bound uint64) []KV[uint64, V] {
	if p := h.persist(); p != nil {
		h.h.DrainMinBoundedSeq(bound, n, func(k uint64, v V, seq uint64) {
			p.appendDelete(k, seq)
			dst = append(dst, KV[uint64, V]{Key: k, Value: v})
		})
		return dst
	}
	h.h.DrainMinBounded(bound, n, func(k uint64, v V) {
		dst = append(dst, KV[uint64, V]{Key: k, Value: v})
	})
	return dst
}
