module klsm

go 1.24
